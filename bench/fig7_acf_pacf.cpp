// Figure 7 — ACF and PACF correlograms for the selected series with the
// 95% confidence band.
//
// Paper finding: "the selected series has certain degree of correlation
// with its past at certain lag value, e.g., lag = 3 ... However, such a
// correlation is not strong enough because its value is greatly
// deviated from 1."
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "timeseries/acf.hpp"

int main() {
  using namespace rrp;
  const auto trace = bench::shared_trace(market::VmClass::C1Medium);
  const auto series = trace.hourly(24 * 300, 24 * 361);

  const std::size_t max_lag = 30;  // ~1.25 seasonal periods
  const auto r = ts::acf(series, max_lag);
  const auto p = ts::pacf(series, max_lag);
  const double band = ts::white_noise_band(series.size());

  Table table("Figure 7: ACF / PACF (95% band = +/-" +
              Table::num(band, 4) + ")");
  table.set_header({"lag", "acf", "", "pacf", " "});
  auto bar = [](double v) {
    const int len = static_cast<int>(std::fabs(v) * 30.0);
    return std::string(static_cast<std::size_t>(std::min(len, 30)),
                       v >= 0 ? '+' : '-');
  };
  std::size_t significant = 0;
  double max_abs_acf = 0.0;
  for (std::size_t k = 1; k <= max_lag; ++k) {
    table.add_row({std::to_string(k), Table::num(r[k], 3), bar(r[k]),
                   Table::num(p[k - 1], 3), bar(p[k - 1])});
    if (std::fabs(r[k]) > band) ++significant;
    max_abs_acf = std::max(max_abs_acf, std::fabs(r[k]));
  }
  table.print(std::cout);

  std::cout << "significant ACF lags: " << significant << "/" << max_lag
            << "; max |acf| at lag >= 1: " << Table::num(max_abs_acf, 3)
            << "\n";
  std::cout << "paper shape check: some lags exceed the 95% band (the "
               "series is not white noise) but every correlation is far "
               "from 1 -> only weak predictability\n";
  return 0;
}
