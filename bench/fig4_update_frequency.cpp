// Figure 4 — Variation of daily spot price update frequency
// (linux-c1-medium).
//
// Paper shape: the update count per day fluctuates substantially from
// day to day (roughly 0-25 updates) rather than being constant, which
// is why the tick stream must be regularised before time-series
// analysis.
//
// The second half turns the update frequency into a planning cost: a
// planner that re-estimates its model at every update pays a per-replan
// maintenance bill, so we time the rolling-horizon pipeline (wall clock
// via common::real_clock(), never the simulation clock) in both replan
// modes and report model-maintenance time separately from solve time.
#include <algorithm>
#include <iostream>
#include <numeric>

#include "bench_util.hpp"
#include "common/deadline.hpp"
#include "common/table.hpp"
#include "core/policies.hpp"
#include "core/rolling_horizon.hpp"

int main() {
  using namespace rrp;
  const auto trace = bench::shared_trace(market::VmClass::C1Medium);
  const auto counts = trace.daily_update_counts();

  std::vector<double> as_double(counts.begin(), counts.end());
  std::cout << "Figure 4: daily update counts over "
            << counts.size() << " days\n  "
            << sparkline(as_double, 76) << "\n\n";

  Table table("Daily update-frequency summary (c1.medium)");
  table.set_header({"statistic", "value"});
  const double total = static_cast<double>(
      std::accumulate(counts.begin(), counts.end(), std::size_t{0}));
  table.add_row({"days", std::to_string(counts.size())});
  table.add_row({"total updates", Table::num(total, 0)});
  table.add_row({"mean/day",
                 Table::num(total / static_cast<double>(counts.size()), 2)});
  table.add_row({"min/day",
                 std::to_string(*std::min_element(counts.begin(),
                                                  counts.end()))});
  table.add_row({"max/day",
                 std::to_string(*std::max_element(counts.begin(),
                                                  counts.end()))});
  table.print(std::cout);

  // Distribution of daily counts, the histogram behind the figure.
  Table hist("Days by update-count bucket");
  hist.set_header({"updates/day", "days"});
  const std::size_t buckets[] = {0, 5, 10, 15, 20, 25};
  for (std::size_t b = 0; b + 1 < std::size(buckets) + 1; ++b) {
    const std::size_t lo = buckets[b];
    const std::size_t hi =
        b + 1 < std::size(buckets) ? buckets[b + 1] : 1000;
    std::size_t days = 0;
    for (auto c : counts)
      if (c >= lo && c < hi) ++days;
    hist.add_row({std::to_string(lo) + (hi == 1000 ? "+" : "-" +
                                          std::to_string(hi - 1)),
                  std::to_string(days)});
    if (hi == 1000) break;
  }
  hist.print(std::cout);
  std::cout << "paper shape check: irregular, non-constant sampling -> "
               "hourly LOCF regularisation required\n\n";

  // What the update frequency costs the planner: re-plan with a model
  // refresh at every slot (the high-cadence regime the figure
  // motivates) and split wall-clock between model maintenance and the
  // solve itself.  Timings use the real clock — the simulation clock
  // auto-advances on reads and must never time anything.
  const common::Clock& wall = common::real_clock();
  const auto in = bench::make_inputs(market::VmClass::C1Medium, 48, 60);

  Table lat("Per-replan wall-clock at update frequency 1/slot (48 slots)");
  lat.set_header({"replan mode", "p50 (ms)", "p95 (ms)", "maintenance (ms)",
                  "solve+plan (ms)"});
  for (const core::ReplanMode mode :
       {core::ReplanMode::Rebuild, core::ReplanMode::Incremental}) {
    core::PolicyConfig policy = core::det_predict_policy();
    policy.model_update_every = 1;
    policy.replan_mode = mode;
    policy.sarima_refit.scratch.optimizer.max_evaluations = 400;

    const double t0 = wall.now_seconds();
    const auto result = core::simulate_policy(in, policy);
    const double elapsed = wall.now_seconds() - t0;

    double replan_total = 0.0;
    for (double s : result.replan_seconds) replan_total += s;
    lat.add_row(
        {core::to_string(mode),
         Table::num(core::latency_percentile(result.replan_seconds, 50.0) *
                        1e3, 3),
         Table::num(core::latency_percentile(result.replan_seconds, 95.0) *
                        1e3, 3),
         Table::num(result.model_maintenance_seconds * 1e3, 2),
         Table::num((replan_total - result.model_maintenance_seconds) * 1e3,
                    2)});
    std::cout << "  " << core::to_string(mode) << ": "
              << result.replan_seconds.size() << " replans, "
              << result.model_refreshes
              << " model refreshes, total wall " << Table::num(elapsed, 3)
              << " s\n";
  }
  lat.print(std::cout);
  std::cout << "maintenance dominates rebuild; incremental keeps the "
               "per-update bill bounded by new data\n";
  return 0;
}
