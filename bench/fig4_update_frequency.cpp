// Figure 4 — Variation of daily spot price update frequency
// (linux-c1-medium).
//
// Paper shape: the update count per day fluctuates substantially from
// day to day (roughly 0-25 updates) rather than being constant, which
// is why the tick stream must be regularised before time-series
// analysis.
#include <algorithm>
#include <iostream>
#include <numeric>

#include "bench_util.hpp"
#include "common/table.hpp"

int main() {
  using namespace rrp;
  const auto trace = bench::shared_trace(market::VmClass::C1Medium);
  const auto counts = trace.daily_update_counts();

  std::vector<double> as_double(counts.begin(), counts.end());
  std::cout << "Figure 4: daily update counts over "
            << counts.size() << " days\n  "
            << sparkline(as_double, 76) << "\n\n";

  Table table("Daily update-frequency summary (c1.medium)");
  table.set_header({"statistic", "value"});
  const double total = static_cast<double>(
      std::accumulate(counts.begin(), counts.end(), std::size_t{0}));
  table.add_row({"days", std::to_string(counts.size())});
  table.add_row({"total updates", Table::num(total, 0)});
  table.add_row({"mean/day",
                 Table::num(total / static_cast<double>(counts.size()), 2)});
  table.add_row({"min/day",
                 std::to_string(*std::min_element(counts.begin(),
                                                  counts.end()))});
  table.add_row({"max/day",
                 std::to_string(*std::max_element(counts.begin(),
                                                  counts.end()))});
  table.print(std::cout);

  // Distribution of daily counts, the histogram behind the figure.
  Table hist("Days by update-count bucket");
  hist.set_header({"updates/day", "days"});
  const std::size_t buckets[] = {0, 5, 10, 15, 20, 25};
  for (std::size_t b = 0; b + 1 < std::size(buckets) + 1; ++b) {
    const std::size_t lo = buckets[b];
    const std::size_t hi =
        b + 1 < std::size(buckets) ? buckets[b + 1] : 1000;
    std::size_t days = 0;
    for (auto c : counts)
      if (c >= lo && c < hi) ++days;
    hist.add_row({std::to_string(lo) + (hi == 1000 ? "+" : "-" +
                                          std::to_string(hi - 1)),
                  std::to_string(days)});
    if (hi == 1000) break;
  }
  hist.print(std::cout);
  std::cout << "paper shape check: irregular, non-constant sampling -> "
               "hourly LOCF regularisation required\n";
  return 0;
}
