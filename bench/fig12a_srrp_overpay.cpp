// Figure 12(a) — SRRP performance: overpay percentage relative to the
// ideal-case cost, per VM class and policy.
//
// Paper setup: an oracle feeding the realised spot prices to DRRP
// defines the ideal-case cost; policies are on-demand, det-predict,
// sto-predict, det-exp-mean and sto-exp-mean, executed in a rolling
// horizon (DRRP lookahead 24h, SRRP 6h).  Paper findings: "the
// on-demand scheme yields the most overpay" and "SRRP model is more
// cost efficient than its DRRP counterpart for all three VM classes".
//
// Each class runs through the Monte Carlo evaluation harness (paired
// trials over demand realisations and market windows) and reports the
// mean overpay with a 95% confidence interval on the mean cost.
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/evaluation.hpp"

int main() {
  using namespace rrp;

  Table table("Figure 12(a): overpay vs ideal-case cost (8 paired "
              "trials; +/- = 95% CI on mean cost, % of mean)");
  table.set_header({"class", "on-demand", "det-predict", "sto-predict",
                    "det-exp-mean", "sto-exp-mean"});

  bool srrp_beats_drrp = true, on_demand_worst = true;
  for (market::VmClass vm : market::evaluation_classes()) {
    core::EvaluationConfig cfg;
    cfg.vm = vm;
    cfg.eval_hours = 72;
    cfg.trials = 8;
    cfg.window_shift_hours = 96;
    cfg.seed = bench::kMasterSeed;
    const auto result =
        core::evaluate_policies(cfg, core::figure12a_policies());

    std::vector<std::string> row = {std::string(market::info(vm).name)};
    for (const auto& p : result.policies) {
      row.push_back(Table::pct(p.mean_overpay) + " +/-" +
                    Table::pct(p.ci_half_width / p.mean_cost));
    }
    table.add_row(row);

    const double on_demand = result.by_name("on-demand").mean_overpay;
    if (result.by_name("sto-predict").mean_overpay >
        result.by_name("det-predict").mean_overpay + 1e-9)
      srrp_beats_drrp = false;
    if (result.by_name("sto-exp-mean").mean_overpay >
        result.by_name("det-exp-mean").mean_overpay + 1e-9)
      srrp_beats_drrp = false;
    for (const auto& p : result.policies) {
      if (p.policy != "on-demand" && p.mean_overpay > on_demand + 1e-9)
        on_demand_worst = false;
    }
  }
  table.print(std::cout);

  std::cout << "paper shape check: on-demand overpays most "
            << (on_demand_worst ? "(reproduced)" : "(NOT reproduced!)")
            << "; SRRP beats its DRRP counterpart "
            << (srrp_beats_drrp ? "(reproduced)" : "(NOT reproduced!)")
            << "\n";
  return 0;
}
