// Shared setup for the figure-reproduction benches: every bench uses
// the same master seed so the synthetic market is identical across
// binaries, mirroring how the paper draws every figure from one
// collected data set.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "core/demand.hpp"
#include "core/rolling_horizon.hpp"
#include "market/trace_generator.hpp"

namespace rrp::bench {

inline constexpr std::uint64_t kMasterSeed = 2012;  // IPDPS'12

/// The shared synthetic market trace for a class (deterministic).
inline market::SpotTrace shared_trace(market::VmClass vm) {
  return market::generate_trace(vm, kMasterSeed);
}

/// Simulation inputs over `eval_hours`, with `history_days` of price
/// history before the evaluation window.
inline core::SimulationInputs make_inputs(market::VmClass vm,
                                          std::size_t eval_hours,
                                          std::size_t history_days = 60,
                                          std::uint64_t demand_seed = 1) {
  const auto trace = shared_trace(vm);
  const auto hourly = trace.hourly();
  const std::size_t history_hours = 24 * history_days;
  core::SimulationInputs in;
  in.vm = vm;
  in.history.assign(hourly.begin(),
                    hourly.begin() + static_cast<long>(history_hours));
  in.actual_spot.assign(
      hourly.begin() + static_cast<long>(history_hours),
      hourly.begin() + static_cast<long>(history_hours + eval_hours));
  Rng rng(demand_seed * 0x9e3779b9ULL + static_cast<std::uint64_t>(vm));
  in.demand =
      core::generate_demand(eval_hours, core::DemandConfig{}, rng);
  return in;
}

}  // namespace rrp::bench
