// Figure 11 — Sensitivity analysis for DRRP.
//
// Left panel: starting from the m1.large base ratio (~67%), scale the
// computing cost upward in one direction and the I/O cost in the other;
// "the cost reduction achieved by DRRP becomes more salient for
// expensive computational resources".
// Right panel: sweep the demand mean from 0.2 to 1.6 GB/h; "cost
// reduction is not noticeable for heavy service demand".
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/demand.hpp"
#include "core/wagner_whitin.hpp"

namespace {

using namespace rrp;

double cost_ratio(double compute_price, double io_scale, double demand_mean,
                  std::size_t trials, std::uint64_t seed) {
  Rng rng(seed);
  double opt_sum = 0.0, naive_sum = 0.0;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    core::DrrpInstance inst;
    core::DemandConfig cfg;
    cfg.mean = demand_mean;
    Rng trial_rng = rng.split();
    inst.demand = core::generate_demand(24, cfg, trial_rng);
    inst.compute_price.assign(24, compute_price);
    inst.costs = market::CostModel::paper_defaults().with_io_scaled(io_scale);
    // The Wagner-Whitin DP is exact for these uncapacitated instances
    // and lets the sweep use many trials.
    opt_sum += core::solve_drrp_wagner_whitin(inst).cost.total();
    naive_sum += core::no_plan_schedule(inst).cost.total();
  }
  return opt_sum / naive_sum;
}

}  // namespace

int main() {
  const std::size_t kTrials = 200;
  const double base = cost_ratio(0.4, 1.0, 0.4, kTrials, 11000);
  std::cout << "base ratio (m1.large, demand 0.4): " << rrp::Table::pct(base)
            << "  (paper: ~67%)\n\n";

  rrp::Table left("Figure 11 (left): cost ratio vs CPU / I/O price scaling");
  left.set_header({"direction", "step", "cost ratio"});
  // One direction: I/O fixed, computing cost grows in steps of +0.1.
  for (int step = 0; step <= 4; ++step) {
    const double cp = 0.4 + 0.1 * step;
    left.add_row({"CPU +" + rrp::Table::num(0.1 * step, 1),
                  rrp::Table::num(cp, 1) + "/h",
                  rrp::Table::pct(cost_ratio(cp, 1.0, 0.4, kTrials,
                                             12000 + step))});
  }
  // Other direction: computing fixed, I/O cost grows in steps of +0.1
  // (scale on the paper's 0.2 base: +0.1 => x1.5, ...).
  for (int step = 1; step <= 4; ++step) {
    const double io_scale = (0.2 + 0.1 * step) / 0.2;
    left.add_row({"I/O +" + rrp::Table::num(0.1 * step, 1),
                  "x" + rrp::Table::num(io_scale, 1),
                  rrp::Table::pct(cost_ratio(0.4, io_scale, 0.4, kTrials,
                                             13000 + step))});
  }
  left.print(std::cout);

  rrp::Table right("Figure 11 (right): cost ratio vs demand mean");
  right.set_header({"demand mean (GB/h)", "cost ratio"});
  for (double mean : {0.2, 0.4, 0.8, 1.2, 1.6}) {
    right.add_row({rrp::Table::num(mean, 1),
                   rrp::Table::pct(cost_ratio(0.4, 1.0, mean, kTrials,
                                              14000 +
                                                  static_cast<int>(mean *
                                                                   10)))});
  }
  right.print(std::cout);

  std::cout << "paper shape check: ratio falls as CPU gets dearer, rises "
               "as I/O gets dearer, and approaches 100% as demand keeps "
               "instances busy\n";
  return 0;
}
