// Figure 5 — Histogram plot for the selected spot price history
// (linux-c1-medium) with a kernel density and a fitted normal curve.
//
// Paper finding: "normal distribution is inadequate to approximate the
// selected data set.  This conclusion is further supported by the
// Shapiro-Wilk test for normality."
#include <algorithm>
#include <iostream>

#include "bench_util.hpp"
#include "common/special.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "timeseries/diagnostics.hpp"

int main() {
  using namespace rrp;
  const auto trace = bench::shared_trace(market::VmClass::C1Medium);
  // The paper's representative window: two months of hourly prices
  // ([12/1/2010, 1/31/2011] in the original data set).
  const auto series = trace.hourly(24 * 300, 24 * 361);

  const double mean = stats::mean(series);
  const double sd = stats::stddev(series);
  const auto hist = stats::histogram(series, 20);

  Table table("Figure 5: histogram vs fitted normal (c1.medium, 61 days "
              "hourly)");
  table.set_header({"bin center", "count", "kde", "normal", "bar"});
  std::vector<double> centers(hist.counts.size());
  for (std::size_t i = 0; i < centers.size(); ++i)
    centers[i] = hist.bin_center(i);
  const auto dens = stats::kde(series, centers);
  const std::size_t max_count =
      *std::max_element(hist.counts.begin(), hist.counts.end());
  for (std::size_t i = 0; i < hist.counts.size(); ++i) {
    const double normal_density =
        special::normal_pdf((centers[i] - mean) / sd) / sd;
    const int bar_len = static_cast<int>(
        40.0 * static_cast<double>(hist.counts[i]) /
        static_cast<double>(max_count));
    table.add_row({Table::num(centers[i], 4),
                   std::to_string(hist.counts[i]), Table::num(dens[i], 1),
                   Table::num(normal_density, 1),
                   std::string(static_cast<std::size_t>(bar_len), '#')});
  }
  table.print(std::cout);

  const auto sw = ts::shapiro_wilk(
      std::span(series).subspan(0, std::min<std::size_t>(series.size(),
                                                         5000)));
  const auto jb = ts::jarque_bera(series);
  Table tests("Normality tests");
  tests.set_header({"test", "statistic", "p-value", "verdict"});
  tests.add_row({"Shapiro-Wilk", Table::num(sw.statistic, 4),
                 Table::num(sw.p_value, 6),
                 sw.p_value < 0.05 ? "reject normality" : "cannot reject"});
  tests.add_row({"Jarque-Bera", Table::num(jb.statistic, 2),
                 Table::num(jb.p_value, 6),
                 jb.p_value < 0.05 ? "reject normality" : "cannot reject"});
  tests.print(std::cout);
  std::cout << "paper shape check: spot prices are NOT normal -> "
               "parametric normal approximations (prior work) are "
               "inadequate\n";
  return 0;
}
