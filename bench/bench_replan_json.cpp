// Machine-readable re-plan latency suite: writes BENCH_replan.json
// (consumed by tools/check_perf.py in the CI perf-smoke job).
//
// Measures the per-re-plan wall-clock of the rolling-horizon simulator
// with per-replan model refresh (model_update_every = 1) in both
// ReplanMode::Rebuild and ReplanMode::Incremental, across price
// histories 256..4096 hours.  The headline claims (ISSUE 10):
//
//   * incremental latency stays flat (<= 1.3x from 256 to 4096) because
//     every maintenance step is bounded by new data, not total history;
//   * rebuild grows with the window, so incremental wins >= 5x at
//     history = 2048 (gated in CI against BENCH_replan.baseline.json).
//
// The policy is det-predict (DRRP + SARIMA bids): it exercises the full
// maintenance stack — sliding distribution, warm SARIMA refit — with
// the solve itself (Wagner-Whitin) near-free, so the measurement
// isolates model-maintenance cost.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/policies.hpp"
#include "core/rolling_horizon.hpp"
#include "obs/obs.hpp"

namespace {

using namespace rrp;

constexpr std::size_t kEvalHours = 48;
constexpr std::size_t kBoundedWindow = 24 * 7;  // forecast + diagnostics

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Inputs with an exact history length in hours (bench_util's
/// make_inputs rounds to days).
core::SimulationInputs inputs_with_history(market::VmClass vm,
                                           std::size_t history_hours) {
  const auto trace = bench::shared_trace(vm);
  const auto hourly = trace.hourly();
  core::SimulationInputs in;
  in.vm = vm;
  const std::size_t total = history_hours + kEvalHours;
  in.history.assign(hourly.begin(), hourly.begin() + static_cast<long>(
                                        history_hours));
  in.actual_spot.assign(hourly.begin() + static_cast<long>(history_hours),
                        hourly.begin() + static_cast<long>(total));
  Rng rng(0x9e3779b9ULL + static_cast<std::uint64_t>(vm));
  in.demand = core::generate_demand(kEvalHours, core::DemandConfig{}, rng);
  return in;
}

struct Record {
  std::string name;
  std::size_t history = 0;
  std::string mode;
  std::size_t replans = 0;
  double mean_replan_seconds = 0.0;
  double p50_replan_seconds = 0.0;
  double p95_replan_seconds = 0.0;
  double model_maintenance_seconds = 0.0;
  std::size_t model_refreshes = 0;
  std::size_t sarima_kept = 0;
  std::size_t sarima_warm = 0;
  std::size_t sarima_scratch = 0;
  double total_cost = 0.0;
};

Record run_case(std::size_t history, core::ReplanMode mode) {
  const market::VmClass vm = market::VmClass::C1Medium;
  const core::SimulationInputs in = inputs_with_history(vm, history);

  core::PolicyConfig policy = core::det_predict_policy();
  policy.fit_window = history;
  policy.model_update_every = 1;
  policy.replan_mode = mode;
  // Bounded per-replan work for the incremental path; the rebuild path
  // ignores these bounds by design (it refits over the full window).
  policy.forecast_window = kBoundedWindow;
  policy.sarima_refit.diagnostic_window = kBoundedWindow;
  // A 400-evaluation budget keeps the bench wall-clock sane and applies
  // to both modes' cold fits, so the comparison stays fair.
  policy.sarima_refit.scratch.optimizer.max_evaluations = 400;
  policy.sarima_refit.warm_max_evaluations = 200;

  const auto result = core::simulate_policy(in, policy);

  Record rec;
  rec.history = history;
  rec.mode = core::to_string(mode);
  rec.name = "replan_h" + std::to_string(history) + "_" + rec.mode;
  rec.replans = result.replan_seconds.size();
  double total = 0.0;
  for (double s : result.replan_seconds) total += s;
  rec.mean_replan_seconds =
      rec.replans > 0 ? total / static_cast<double>(rec.replans) : 0.0;
  rec.p50_replan_seconds =
      core::latency_percentile(result.replan_seconds, 50.0);
  rec.p95_replan_seconds =
      core::latency_percentile(result.replan_seconds, 95.0);
  rec.model_maintenance_seconds = result.model_maintenance_seconds;
  rec.model_refreshes = result.model_refreshes;
  rec.sarima_kept = result.sarima_refits_kept;
  rec.sarima_warm = result.sarima_warm_refits;
  rec.sarima_scratch = result.sarima_scratch_refits;
  rec.total_cost = result.total_cost();

  std::cerr << rec.name << ": mean " << fmt(rec.mean_replan_seconds * 1e3)
            << " ms, p95 " << fmt(rec.p95_replan_seconds * 1e3)
            << " ms, maintenance "
            << fmt(rec.model_maintenance_seconds * 1e3) << " ms over "
            << rec.model_refreshes << " refreshes\n";
  return rec;
}

void write_json(const std::vector<Record>& records, std::ostream& out) {
  out << "{\n";
  out << "  \"schema\": \"rrp-bench-replan-v1\",\n";
  out << "  \"observability\": "
      << (RRP_OBSERVABILITY_ENABLED ? "true" : "false") << ",\n";
  out << "  \"eval_hours\": " << kEvalHours << ",\n";
  out << "  \"results\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    out << "    {\"name\": \"" << r.name << "\", \"history\": " << r.history
        << ", \"mode\": \"" << r.mode << "\""
        << ", \"replans\": " << r.replans
        << ", \"mean_replan_seconds\": " << fmt(r.mean_replan_seconds)
        << ", \"p50_replan_seconds\": " << fmt(r.p50_replan_seconds)
        << ", \"p95_replan_seconds\": " << fmt(r.p95_replan_seconds)
        << ", \"model_maintenance_seconds\": "
        << fmt(r.model_maintenance_seconds)
        << ", \"model_refreshes\": " << r.model_refreshes
        << ", \"sarima_kept\": " << r.sarima_kept
        << ", \"sarima_warm\": " << r.sarima_warm
        << ", \"sarima_scratch\": " << r.sarima_scratch
        << ", \"total_cost\": " << fmt(r.total_cost) << "}"
        << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main() {
  const std::vector<std::size_t> histories = {256, 512, 1024, 2048, 4096};
  std::vector<Record> records;
  for (std::size_t h : histories) {
    records.push_back(run_case(h, rrp::core::ReplanMode::Rebuild));
    records.push_back(run_case(h, rrp::core::ReplanMode::Incremental));
  }
  write_json(records, std::cout);
  std::ofstream file("BENCH_replan.json");
  write_json(records, file);
  std::cerr << "wrote BENCH_replan.json\n";
  return 0;
}
