// Extension — Markov-conditional scenario trees vs the paper's
// unconditional sampling.
//
// The paper's bid-dependent dynamic sampling (Section IV-C) draws every
// stage from the same base distribution, even though its own Figure 7
// shows material serial correlation in hourly prices.  This bench
// compares the realised rolling-horizon cost of SRRP with (a) the
// paper's iid tree and (b) a tree whose stage distributions are
// conditioned on the parent state through a fitted Markov chain.
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"

int main() {
  using namespace rrp;
  const std::size_t kEvalHours = 72;
  const std::size_t kTrials = 6;

  Table table("Extension: iid vs Markov-conditional SRRP trees (72h, "
              "mean of " + std::to_string(kTrials) + " trials)");
  table.set_header({"class", "sto-exp-mean (iid)", "sto-markov",
                    "markov advantage"});
  for (market::VmClass vm : market::evaluation_classes()) {
    double iid_cost = 0.0, markov_cost = 0.0;
    for (std::size_t trial = 0; trial < kTrials; ++trial) {
      const auto inputs = bench::make_inputs(vm, kEvalHours,
                                             60 + 3 * trial, trial + 1);
      iid_cost += core::simulate_policy(inputs, core::sto_exp_mean_policy())
                      .total_cost() /
                  kTrials;
      markov_cost += core::simulate_policy(inputs, core::sto_markov_policy())
                         .total_cost() /
                     kTrials;
    }
    table.add_row({std::string(market::info(vm).name),
                   Table::num(iid_cost, 3), Table::num(markov_cost, 3),
                   Table::pct(1.0 - markov_cost / iid_cost)});
  }
  table.print(std::cout);
  std::cout << "takeaway: conditioning the tree on the observed state "
               "exploits the serial correlation the paper measured but "
               "did not model; gains are modest because hourly spot "
               "prices revert quickly\n";
  return 0;
}
