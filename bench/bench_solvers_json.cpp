// Machine-readable solver benchmark (ISSUE 5): median-of-5 wall times
// for the simplex, DRRP and SRRP solves, branch & bound node
// throughput, and the warm-start hit rate, written to
// BENCH_solvers.json for the CI perf-smoke job (tools/check_perf.py
// compares nodes/sec against the checked-in baseline).
//
// The headline metric is `srrp_warm_speedup`: B&B node throughput with
// warm starts on vs. off (jobs = 1) on the SRRP deterministic
// equivalent — the aggregated formulation, whose weak LP relaxation
// forces a real tree search, so per-node LP cost dominates.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/deadline.hpp"
#include "common/rng.hpp"
#include "core/demand.hpp"
#include "core/drrp.hpp"
#include "core/price_distribution.hpp"
#include "core/srrp.hpp"
#include "lp/simplex.hpp"
#include "milp/branch_and_bound.hpp"
#include "obs/obs.hpp"

namespace {

using namespace rrp;

double now() { return common::real_clock().now_seconds(); }

constexpr int kRepeats = 5;

/// Median-of-kRepeats wall time of `f` (seconds).
template <typename F>
double median_seconds(F&& f) {
  std::vector<double> times;
  times.reserve(kRepeats);
  for (int i = 0; i < kRepeats; ++i) {
    const double t0 = now();
    f();
    times.push_back(now() - t0);
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

struct Record {
  std::string name;
  double median_seconds = 0.0;
  // B&B-only fields (absent from the JSON for plain LP solves).
  bool has_tree_stats = false;
  std::size_t nodes = 0;
  double nodes_per_second = 0.0;
  double warm_hit_rate = 0.0;
  // Root-cut and sparse-LU factorisation telemetry.
  std::size_t cuts_added = 0;
  double root_gap_closed = 0.0;
  double mean_fill_ratio = 0.0;
  double refactor_cadence = 0.0;
};

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

void write_json(const std::vector<Record>& records, double srrp_warm_speedup,
                std::ostream& out) {
  out << "{\n";
  out << "  \"schema\": \"rrp-bench-solvers-v3\",\n";
  out << "  \"repeats\": " << kRepeats << ",\n";
  // Whether the RRP_OBSERVABILITY instrumentation macros were compiled
  // in; check_perf.py's --obs-off gate requires an ON/OFF pair.
  out << "  \"observability\": "
      << (RRP_OBSERVABILITY_ENABLED ? "true" : "false") << ",\n";
  // Full registry snapshot after all measured solves: counters for
  // pivots, refactorisations, nodes, cuts, recoveries and friends.
  out << "  \"metrics\": " << obs::global_registry().scrape().to_json()
      << ",\n";
  out << "  \"srrp_warm_speedup\": " << fmt(srrp_warm_speedup) << ",\n";
  out << "  \"results\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    out << "    {\"name\": \"" << r.name << "\", \"median_seconds\": "
        << fmt(r.median_seconds);
    if (r.has_tree_stats) {
      out << ", \"nodes\": " << r.nodes
          << ", \"nodes_per_second\": " << fmt(r.nodes_per_second)
          << ", \"warm_hit_rate\": " << fmt(r.warm_hit_rate)
          << ", \"cuts_added\": " << r.cuts_added
          << ", \"root_gap_closed\": " << fmt(r.root_gap_closed)
          << ", \"mean_fill_ratio\": " << fmt(r.mean_fill_ratio)
          << ", \"refactor_cadence\": " << fmt(r.refactor_cadence);
    }
    out << "}" << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
}

lp::LinearProgram random_lp(std::size_t vars, std::size_t rows,
                            std::uint64_t seed) {
  Rng rng(seed);
  lp::LinearProgram prog;
  for (std::size_t j = 0; j < vars; ++j)
    prog.add_variable(0.0, rng.uniform(1.0, 5.0), rng.uniform(-2.0, 2.0));
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<lp::Entry> entries;
    for (std::size_t j = 0; j < vars; ++j)
      if (rng.bernoulli(0.4)) entries.push_back({j, rng.uniform(-1.0, 1.0)});
    if (entries.empty()) entries.push_back({0, 1.0});
    prog.add_row(std::move(entries), -rng.uniform(0.5, 3.0),
                 rng.uniform(0.5, 3.0));
  }
  return prog;
}

core::DrrpInstance drrp_instance(std::size_t horizon) {
  Rng rng(11);
  core::DrrpInstance inst;
  inst.demand = core::generate_demand(horizon, core::DemandConfig{}, rng);
  inst.compute_price.assign(horizon, 0.4);
  return inst;
}

core::SrrpInstance srrp_instance(std::size_t width) {
  Rng rng(13);
  std::vector<double> history;
  for (int i = 0; i < 1000; ++i)
    history.push_back(0.05 + 0.03 * rng.uniform());
  const auto base =
      core::EmpiricalPriceDistribution::from_history(history, 12);
  const std::vector<std::size_t> widths = {width, 2, 2, 1, 1};
  const std::vector<double> bids(widths.size(), 0.065);
  core::SrrpInstance inst;
  inst.demand =
      core::generate_demand(widths.size(), core::DemandConfig{}, rng);
  inst.tree = core::ScenarioTree::build(
      core::make_stage_supports(base, bids, 0.2, widths));
  return inst;
}

/// One measured MILP configuration: runs the solve kRepeats times,
/// records the median wall time and the (deterministic) tree stats of
/// a single run.
template <typename Solve>
Record bench_milp(std::string name, Solve&& solve) {
  Record rec;
  rec.name = std::move(name);
  std::size_t nodes = 0, warm = 0, cold = 0;
  rec.median_seconds = median_seconds([&] {
    const auto r = solve();
    nodes = r.nodes_explored;
    warm = r.warm_started_nodes;
    cold = r.cold_solved_nodes;
    rec.cuts_added = r.cuts_added;
    rec.root_gap_closed = r.root_gap_closed;
    rec.mean_fill_ratio = r.factor_stats.mean_fill_ratio();
    rec.refactor_cadence = r.factor_stats.refactor_cadence();
  });
  rec.has_tree_stats = true;
  rec.nodes = nodes;
  rec.nodes_per_second =
      rec.median_seconds > 0.0 ? static_cast<double>(nodes) /
                                     rec.median_seconds
                               : 0.0;
  const std::size_t lps = warm + cold;
  rec.warm_hit_rate =
      lps > 0 ? static_cast<double>(warm) / static_cast<double>(lps) : 0.0;
  std::cerr << rec.name << ": " << fmt(rec.median_seconds * 1e3) << " ms, "
            << nodes << " nodes, " << fmt(rec.nodes_per_second)
            << " nodes/s, warm " << fmt(100.0 * rec.warm_hit_rate)
            << "%, cuts " << rec.cuts_added << " (gap closed "
            << fmt(100.0 * rec.root_gap_closed) << "%), fill "
            << fmt(rec.mean_fill_ratio) << ", refactor cadence "
            << fmt(rec.refactor_cadence) << "\n";
  return rec;
}

/// Throughput-probe options: node-limited, root cuts off so nodes/sec
/// keeps measuring raw per-node LP cost (cuts would collapse the tree
/// and turn the metric into a cut-quality measurement).
milp::BnbOptions tree_options(bool warm_start, std::size_t jobs) {
  milp::BnbOptions opt;
  opt.warm_start = warm_start;
  opt.jobs = jobs;
  opt.max_nodes = 300;  // throughput probe; optimality not required
  opt.root_cuts = false;
  return opt;
}

/// Solve-to-optimality options for the cut-effectiveness entries: the
/// node counts (not wall time) are the gated metric.
milp::BnbOptions opt_options(bool cuts) {
  milp::BnbOptions opt;
  opt.warm_start = true;
  opt.jobs = 1;
  opt.root_cuts = cuts;
  return opt;
}

}  // namespace

int main() {
  std::vector<Record> records;

  // Plain simplex: one dense cold solve.
  {
    const auto prog = random_lp(120, 60, 42);
    Record rec;
    rec.name = "simplex_dense_120x60";
    rec.median_seconds = median_seconds([&] { (void)lp::solve(prog); });
    std::cerr << rec.name << ": " << fmt(rec.median_seconds * 1e3)
              << " ms\n";
    records.push_back(rec);
  }

  // DRRP aggregated (weak relaxation -> real tree), warm on vs off.
  {
    const auto inst = drrp_instance(24);
    for (const bool warm : {true, false}) {
      records.push_back(bench_milp(
          std::string("drrp_aggregated_h24_") + (warm ? "warm" : "cold"),
          [&] {
            return core::solve_drrp(inst, tree_options(warm, 1),
                                    core::DrrpFormulation::Aggregated);
          }));
    }
  }

  // DRRP aggregated solved to optimality with root (l,S) cuts on vs
  // off: the node counts are the gated metric (check_perf.py enforces
  // per-entry max_nodes caps), demonstrating the cut-driven search
  // collapse on a real lot-sizing tree.
  {
    const auto inst = drrp_instance(16);
    for (const bool cuts : {false, true}) {
      records.push_back(bench_milp(
          std::string("drrp_aggregated_h16_opt_") +
              (cuts ? "cuts" : "nocuts"),
          [&] {
            return core::solve_drrp(inst, opt_options(cuts),
                                    core::DrrpFormulation::Aggregated);
          }));
    }
  }

  // SRRP deterministic equivalent at three tree widths, warm on vs off,
  // plus one parallel configuration.
  double warm_nps = 0.0, cold_nps = 0.0;
  int width_count = 0;
  for (const std::size_t width : {std::size_t{2}, std::size_t{3},
                                  std::size_t{4}}) {
    const auto inst = srrp_instance(width);
    for (const bool warm : {true, false}) {
      Record rec = bench_milp(
          "srrp_aggregated_w" + std::to_string(width) + "_" +
              (warm ? "warm" : "cold"),
          [&] {
            return core::solve_srrp(inst, tree_options(warm, 1),
                                    core::SrrpFormulation::Aggregated);
          });
      (warm ? warm_nps : cold_nps) += rec.nodes_per_second;
      records.push_back(std::move(rec));
    }
    ++width_count;
  }
  {
    const auto inst = srrp_instance(3);
    records.push_back(bench_milp("srrp_aggregated_w3_warm_jobs4", [&] {
      return core::solve_srrp(inst, tree_options(true, 4),
                              core::SrrpFormulation::Aggregated);
    }));
  }

  const double srrp_warm_speedup =
      cold_nps > 0.0 ? warm_nps / cold_nps : 0.0;
  std::cerr << "srrp_warm_speedup (mean nodes/s, warm / cold): "
            << fmt(srrp_warm_speedup) << "x\n";

  write_json(records, srrp_warm_speedup, std::cout);
  std::ofstream file("BENCH_solvers.json");
  write_json(records, srrp_warm_speedup, file);
  std::cerr << "wrote BENCH_solvers.json\n";
  return 0;
}
