// Extension — time-varying workloads (the paper's future work: "Our
// future work will investigate stochastic optimization solutions for
// cloud resource provisioning with time-varying workloads").
//
// Compares, under demand realised from N(mu, sigma) per slot:
//   * mean-demand SRRP  — scenario tree over prices only, demand fixed
//     at its mean (the paper's model), shortfalls patched by emergency
//     rentals at the realised price;
//   * joint SRRP        — scenario tree over joint (price, demand)
//     states via the per-vertex-demand generalisation.
// The joint planner should price in demand spikes and carry protective
// inventory, with the gap widening in the demand's volatility.
#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/srrp_dp.hpp"

namespace {

using namespace rrp;

/// Three-point demand approximation of N(mu, sigma) clipped at zero:
/// mu - sigma, mu, mu + sigma with probabilities 0.25/0.5/0.25 (exact
/// mean, variance sigma^2/2 — a standard lattice compression).
std::vector<core::JointPoint> joint_stage(
    const std::vector<core::PricePoint>& prices, double mu, double sigma) {
  std::vector<core::JointPoint> out;
  const double demand_levels[3] = {std::max(mu - sigma, 0.0), mu,
                                   mu + sigma};
  const double demand_probs[3] = {0.25, 0.5, 0.25};
  for (const core::PricePoint& p : prices) {
    for (int k = 0; k < 3; ++k) {
      core::JointPoint j;
      j.price = p;
      j.price.prob = p.prob * demand_probs[k];
      // Nudge duplicate prices apart (ScenarioTree tolerates equal
      // prices, but distinct states read better in reports).
      j.price.price += 1e-7 * k;
      j.demand = demand_levels[k];
      out.push_back(j);
    }
  }
  return out;
}

}  // namespace

int main() {
  using namespace rrp;
  const market::VmClass vm = market::VmClass::M1Large;
  const double lambda = market::info(vm).on_demand_hourly;
  const std::size_t kStages = 4;
  const double mu = 0.4;

  const auto inputs = bench::make_inputs(vm, 24);
  const auto dist =
      core::EmpiricalPriceDistribution::from_history(inputs.history, 8);
  const double bid = rrp::stats::mean(inputs.history);

  Table table("Extension: joint (price, demand) scenario trees, " +
              std::to_string(kStages) + " stages");
  table.set_header({"demand sigma", "mean-demand plan E[cost]",
                    "joint plan E[cost]", "joint advantage"});
  for (double sigma : {0.05, 0.1, 0.2, 0.3}) {
    // Price supports per stage: bid-truncated, reduced.
    std::vector<double> bids(kStages, bid);
    std::vector<std::size_t> widths = {3, 2, 1, 1};
    const auto price_supports =
        core::make_stage_supports(dist, bids, lambda, widths);

    // Joint tree and its exact plan.
    std::vector<std::vector<core::JointPoint>> joint_supports;
    for (const auto& stage : price_supports)
      joint_supports.push_back(joint_stage(stage, mu, sigma));
    auto [tree, vertex_demand] = core::build_joint_tree(joint_supports);
    core::SrrpInstance joint;
    joint.vm = vm;
    joint.demand.assign(kStages, mu);
    joint.tree = std::move(tree);
    joint.vertex_demand = std::move(vertex_demand);
    const auto joint_plan = core::solve_srrp_tree_dp(joint);

    // Mean-demand plan evaluated on the same joint tree: execute its
    // per-stage decisions along every scenario, topping up shortfalls
    // at the realised price.
    core::SrrpInstance mean_inst;
    mean_inst.vm = vm;
    mean_inst.demand.assign(kStages, mu);
    mean_inst.tree = core::ScenarioTree::build(price_supports);
    const auto mean_plan = core::solve_srrp_tree_dp(mean_inst);

    double mean_expected = 0.0;
    for (std::size_t leaf : joint.tree.leaves()) {
      const auto path = joint.tree.path_from_root(leaf);
      // Match each joint vertex to the mean-tree vertex with the same
      // per-stage price-state index (stage supports align: each price
      // point expanded into 3 demand states).
      double store = 0.0, cost = 0.0;
      std::size_t mean_vertex = mean_inst.tree.root();
      for (std::size_t j = 0; j < path.size(); ++j) {
        const std::size_t v = path[j];
        // Joint children enumerate (price-state x demand-state); the
        // matching mean-tree child is index / 3.
        const auto joint_children =
            joint.tree.children(joint.tree.vertex(v).parent);
        std::size_t idx = 0;
        for (std::size_t k = 0; k < joint_children.size(); ++k)
          if (joint_children[k] == v) idx = k;
        mean_vertex = mean_inst.tree.children(mean_vertex)[idx / 3];

        const double d = joint.demand_at_vertex(v);
        double alpha = mean_plan.alpha[mean_vertex];
        bool rented = mean_plan.chi[mean_vertex] != 0;
        if (store + alpha < d) {  // emergency top-up at realised price
          alpha = d - store;
          rented = true;
        }
        store = std::max(store + alpha - d, 0.0);
        cost += joint.costs.generation_cost(alpha, j) +
                joint.costs.holding(j) * store +
                joint.costs.delivery_cost(d, j) +
                (rented ? joint.tree.vertex(v).price : 0.0);
      }
      mean_expected += joint.tree.vertex(leaf).path_prob * cost;
    }

    table.add_row({Table::num(sigma, 2), Table::num(mean_expected, 4),
                   Table::num(joint_plan.expected_cost, 4),
                   Table::pct(1.0 - joint_plan.expected_cost /
                                        mean_expected)});
  }
  table.print(std::cout);
  std::cout << "takeaway: a plan that prices demand states into the "
               "tree consistently beats the mean-demand plan (~10%+ "
               "here): it front-loads generation before expensive "
               "high-demand states instead of paying for emergency "
               "top-ups at realised prices\n";
  return 0;
}
