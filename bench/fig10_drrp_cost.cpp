// Figure 10 — Cost comparison for DRRP and resource rental without
// planning (upper panel), and DRRP's cost structure per VM class
// (lower panel).
//
// Paper setup: 24-hour horizon, hourly slots, demand ~ N(0.4, 0.2) GB,
// on-demand prices {0.2, 0.4, 0.8}, Section V-A cost parameters.
// Paper findings: DRRP cost is significantly lower than no-planning;
// the reduction grows with instance power (~16%/33%/49%); the compute
// share is roughly stable while I/O+storage grows with class size.
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/demand.hpp"
#include "core/drrp.hpp"

int main() {
  using namespace rrp;
  const std::size_t kTrials = 40;  // average out demand noise

  Table upper("Figure 10 (upper): daily per-instance cost");
  upper.set_header({"class", "no-plan", "DRRP", "reduction"});
  Table lower("Figure 10 (lower): DRRP cost structure");
  lower.set_header({"class", "compute", "I/O+storage", "transfer"});

  double prev_reduction = -1.0;
  bool monotone = true;
  for (market::VmClass vm : market::evaluation_classes()) {
    const double cp = market::info(vm).on_demand_hourly;
    double no_plan_total = 0.0, drrp_total = 0.0;
    core::CostBreakdown drrp_acc;
    Rng rng(9000 + static_cast<std::uint64_t>(vm));
    for (std::size_t trial = 0; trial < kTrials; ++trial) {
      core::DrrpInstance inst;
      inst.vm = vm;
      Rng trial_rng = rng.split();
      inst.demand =
          core::generate_demand(24, core::DemandConfig{}, trial_rng);
      inst.compute_price.assign(24, cp);
      const auto plan = core::solve_drrp(inst);
      const auto naive = core::no_plan_schedule(inst);
      drrp_total += plan.cost.total();
      no_plan_total += naive.cost.total();
      drrp_acc.compute += plan.cost.compute;
      drrp_acc.holding += plan.cost.holding;
      drrp_acc.transfer_in += plan.cost.transfer_in;
      drrp_acc.transfer_out += plan.cost.transfer_out;
    }
    const double n = static_cast<double>(kTrials);
    const double reduction = 1.0 - drrp_total / no_plan_total;
    upper.add_row({std::string(market::info(vm).name),
                   Table::num(no_plan_total / n, 2),
                   Table::num(drrp_total / n, 2), Table::pct(reduction)});
    const double total = drrp_acc.total();
    lower.add_row({std::string(market::info(vm).name),
                   Table::pct(drrp_acc.compute / total),
                   Table::pct(drrp_acc.holding / total),
                   Table::pct(drrp_acc.transfer() / total)});
    if (reduction < prev_reduction) monotone = false;
    prev_reduction = reduction;
  }
  upper.print(std::cout);
  lower.print(std::cout);
  std::cout << "paper shape check: reduction grows with class price "
            << (monotone ? "(reproduced)" : "(NOT reproduced!)")
            << "; paper reports ~16%/33%/49%\n";
  return 0;
}
