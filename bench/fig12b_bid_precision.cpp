// Figure 12(b) — Impact of bid-price approximation precision on SRRP
// (VM class c1.medium).
//
// Paper setup: taking the cost derived by the actual realisation of the
// spot price as the baseline, create artificial bid prices deviating
// +/-2% to 10% from the actual realisation and measure the percent cost
// error the approximation introduces (bids further than 10% out are
// "out of the price range").  We realise the deviated bids as a
// constant level (1+delta) times the realised window's mean price: a
// per-hour multiplicative deviation would lose *every* auction for any
// negative delta (bid_t < spot_t always) and produce a cliff rather
// than the paper's graded errors.  Paper findings: "the errors increase
// as approximation becomes less accurate", with under-/over-bidding
// asymmetric; their own SARIMA bids landed near -12%, "generally
// acceptable".
#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

int main() {
  using namespace rrp;
  const std::size_t kEvalHours = 72;
  const auto inputs = bench::make_inputs(market::VmClass::C1Medium,
                                         kEvalHours);
  const double realized_level = stats::mean(inputs.actual_spot);

  auto deviated_policy = [&](double deviation) {
    core::PolicyConfig policy = core::sto_exp_mean_policy();
    policy.name = "sto-deviated";
    policy.bids = core::BidStrategy::FixedValue;
    policy.fixed_bid = realized_level * (1.0 + deviation);
    return policy;
  };

  // Baseline: bids at the exact level of the actual realisation.
  const double baseline =
      core::simulate_policy(inputs, deviated_policy(0.0)).total_cost();
  std::cout << "baseline cost (bid level = realised mean "
            << Table::num(realized_level, 4)
            << "): " << Table::num(baseline, 3) << "\n\n";

  Table table("Figure 12(b): percent cost error vs bid deviation "
              "(c1.medium)");
  table.set_header({"deviation", "cost", "percent error"});
  double err_neg10 = 0.0, err_neg2 = 0.0, err_pos2 = 0.0, err_pos10 = 0.0;
  for (int pct : {-10, -8, -6, -4, -2, 2, 4, 6, 8, 10}) {
    const double cost =
        core::simulate_policy(inputs, deviated_policy(pct / 100.0))
            .total_cost();
    const double err = (cost - baseline) / baseline;
    table.add_row({std::to_string(pct) + "%", Table::num(cost, 3),
                   Table::pct(err)});
    if (pct == -10) err_neg10 = err;
    if (pct == -2) err_neg2 = err;
    if (pct == 2) err_pos2 = err;
    if (pct == 10) err_pos10 = err;
  }
  table.print(std::cout);

  // The paper's own best approximation: SARIMA-predicted bids.
  const double pred_cost =
      core::simulate_policy(inputs, core::sto_predict_policy()).total_cost();
  std::cout << "sto-predict (SARIMA bids) percent error: "
            << Table::pct((pred_cost - baseline) / baseline)
            << "  (paper observed about -12%: "
               "over/under mixture, generally acceptable)\n";
  const bool graded = std::abs(err_neg10) >= std::abs(err_neg2) - 1e-9 &&
                      std::abs(err_pos10) >= std::abs(err_pos2) - 1e-9;
  const bool asymmetric =
      std::abs(std::abs(err_neg2) - std::abs(err_pos2)) > 0.01 ||
      std::abs(std::abs(err_neg10) - std::abs(err_pos10)) > 0.01;
  std::cout << "paper shape check: error grows with |deviation| "
            << (graded ? "(reproduced)" : "(NOT reproduced!)")
            << "; under- vs over-bidding asymmetric "
            << (asymmetric ? "(reproduced)" : "(NOT reproduced!)") << "\n";
  return 0;
}
