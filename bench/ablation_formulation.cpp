// Ablation — MILP formulation strength (DESIGN.md decisions 1 & 2).
//
// Compares, on identical DRRP instances, (a) the paper's aggregated
// formulation with a loose big-B, (b) the same with the lot-sizing
// tightened per-slot bound, (c) the facility-location reformulation,
// and (d) the Wagner-Whitin dynamic program.  All four are exact; the
// point is the orders-of-magnitude difference in search effort.
#include <iostream>

#include "bench_util.hpp"
#include "common/deadline.hpp"
#include "common/table.hpp"
#include "core/demand.hpp"
#include "core/wagner_whitin.hpp"

namespace {

using namespace rrp;

double now() { return common::real_clock().now_seconds(); }

struct Outcome {
  double cost = 0.0;
  double seconds = 0.0;
  std::size_t nodes = 0;
};

Outcome run(const core::DrrpInstance& inst, core::DrrpFormulation form) {
  const double t0 = now();
  const auto plan = core::solve_drrp(inst, {}, form);
  return {plan.cost.total(), now() - t0, plan.nodes_explored};
}

}  // namespace

int main() {
  Rng rng(2222);
  // A modest horizon keeps the weakest variant finishable.
  const std::size_t kHorizon = 14;
  core::DrrpInstance inst;
  inst.demand = core::generate_demand(kHorizon, core::DemandConfig{}, rng);
  inst.compute_price.assign(kHorizon, 0.4);

  Table table("Ablation: DRRP formulation strength (T=" +
              std::to_string(kHorizon) + ")");
  table.set_header({"variant", "optimal cost", "B&B nodes", "time"});

  core::DrrpInstance loose = inst;
  loose.tighten_forcing_bound = false;
  const Outcome agg_loose = run(loose, core::DrrpFormulation::Aggregated);
  table.add_row({"aggregated, loose big-B", Table::num(agg_loose.cost, 4),
                 std::to_string(agg_loose.nodes),
                 Table::num(agg_loose.seconds * 1e3, 1) + " ms"});

  const Outcome agg_tight = run(inst, core::DrrpFormulation::Aggregated);
  table.add_row({"aggregated, tight big-B", Table::num(agg_tight.cost, 4),
                 std::to_string(agg_tight.nodes),
                 Table::num(agg_tight.seconds * 1e3, 1) + " ms"});

  const Outcome fl = run(inst, core::DrrpFormulation::FacilityLocation);
  table.add_row({"facility location", Table::num(fl.cost, 4),
                 std::to_string(fl.nodes),
                 Table::num(fl.seconds * 1e3, 1) + " ms"});

  const double t0 = now();
  const auto ww = core::solve_drrp_wagner_whitin(inst);
  const double ww_seconds = now() - t0;
  table.add_row({"Wagner-Whitin DP", Table::num(ww.cost.total(), 4), "-",
                 Table::num(ww_seconds * 1e3, 3) + " ms"});
  table.print(std::cout);

  const bool all_equal =
      std::abs(agg_loose.cost - fl.cost) < 1e-5 &&
      std::abs(agg_tight.cost - fl.cost) < 1e-5 &&
      std::abs(ww.cost.total() - fl.cost) < 1e-5;
  std::cout << "all variants optimal-equal: "
            << (all_equal ? "yes" : "NO (bug!)") << "\n"
            << "takeaway: the paper's formulation is exact but needs a "
               "strong solver; the FL reformulation/DP close the gap at "
               "the root\n";
  return 0;
}
