// Figure 6 — Data decomposition for the selected data series into
// trend, seasonal (period 24) and remainder.
//
// Paper finding: "the target series does not exhibit clear trend, but
// advertises certain cyclic pattern as shown in the seasonal
// decomposition" — motivating a *seasonal* ARIMA model.
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "timeseries/decompose.hpp"
#include "timeseries/diagnostics.hpp"

int main() {
  using namespace rrp;
  const auto trace = bench::shared_trace(market::VmClass::C1Medium);
  const auto series = trace.hourly(24 * 300, 24 * 361);
  const auto dec = ts::decompose_additive(series, 24);

  std::cout << "Figure 6: classical additive decomposition (period 24)\n";
  std::cout << "  data:      " << sparkline(series, 76) << "\n";
  std::vector<double> trend, remainder;
  for (double v : dec.trend)
    if (!std::isnan(v)) trend.push_back(v);
  for (double v : dec.remainder)
    if (!std::isnan(v)) remainder.push_back(v);
  std::cout << "  trend:     " << sparkline(trend, 76) << "\n";
  std::cout << "  seasonal:  " << sparkline(dec.seasonal_profile(), 24)
            << "  (one period)\n";
  std::cout << "  remainder: " << sparkline(remainder, 76) << "\n\n";

  // Variance attribution: how much of the signal each component holds.
  const double var_data = stats::variance(series);
  const double var_trend = stats::variance(trend);
  const double var_seasonal = stats::variance(dec.seasonal_profile());
  const double var_rem = stats::variance(remainder);
  Table table("Component variance share");
  table.set_header({"component", "variance", "share of data variance"});
  table.add_row({"data", Table::num(var_data * 1e6, 2) + "e-6", "100%"});
  table.add_row({"trend", Table::num(var_trend * 1e6, 2) + "e-6",
                 Table::pct(var_trend / var_data)});
  table.add_row({"seasonal", Table::num(var_seasonal * 1e6, 2) + "e-6",
                 Table::pct(var_seasonal / var_data)});
  table.add_row({"remainder", Table::num(var_rem * 1e6, 2) + "e-6",
                 Table::pct(var_rem / var_data)});
  table.print(std::cout);

  // The paper's prerequisite step: "we verify that our test series is
  // statistically stationary ... and does not require further
  // differencing".
  const auto kpss = ts::kpss_level(series);
  std::cout << "KPSS level-stationarity: statistic "
            << Table::num(kpss.statistic, 3) << ", p "
            << (kpss.p_value >= 0.10 ? ">= 0.10"
                                     : Table::num(kpss.p_value, 3))
            << " -> "
            << (ts::is_level_stationary(series)
                    ? "stationary, d = 0 (as in the paper)"
                    : "non-stationary, differencing needed")
            << "\n";
  std::cout << "paper shape check: no dominant trend; a mild but real "
               "seasonal (daily) component; remainder carries most "
               "variance -> SARIMA with s=24, d=0\n";
  return 0;
}
