// Ablation — bid level vs realised cost and availability (paper
// Section IV's bidding discussion).
//
// The paper assumes ASPs bid their true valuation and argues that
// "intentionally overbidding (or underbidding) is not dominant".  This
// bench sweeps a fixed bid from deep under the market to the on-demand
// price and reports realised rolling cost, out-of-bid events and the
// standalone availability profile of that bid — showing the flat
// region that makes aggressive overbidding pointless and the cliff that
// punishes underbidding.
#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "market/auction.hpp"

int main() {
  using namespace rrp;
  const market::VmClass vm = market::VmClass::C1Medium;
  const double lambda = market::info(vm).on_demand_hourly;
  const auto inputs = bench::make_inputs(vm, 72);
  const double ideal = core::ideal_case_cost(inputs);

  struct Level {
    const char* label;
    double bid;
  };
  const double q25 = stats::quantile(inputs.history, 0.25);
  const double q50 = stats::quantile(inputs.history, 0.50);
  const double q90 = stats::quantile(inputs.history, 0.90);
  const double q99 = stats::quantile(inputs.history, 0.99);
  const double mean = stats::mean(inputs.history);
  const Level levels[] = {
      {"q25 of history", q25},   {"median", q50},
      {"mean (truthful)", mean}, {"q90", q90},
      {"q99", q99},              {"2x mean (overbid)", 2.0 * mean},
      {"on-demand price", lambda}};

  Table table("Ablation: fixed bid level (c1.medium, 72h SRRP rolling)");
  table.set_header({"bid level", "bid $", "uptime", "interruptions",
                    "realised cost", "overpay", "out-of-bid"});
  for (const Level& level : levels) {
    core::PolicyConfig policy = core::sto_exp_mean_policy();
    policy.name = "sto-fixed";
    policy.bids = core::BidStrategy::FixedValue;
    policy.fixed_bid = level.bid;
    const auto result = core::simulate_policy(inputs, policy);
    const auto avail =
        market::analyze_availability(inputs.actual_spot, level.bid);
    table.add_row({level.label, Table::num(level.bid, 4),
                   Table::pct(avail.uptime_fraction),
                   std::to_string(avail.interruptions),
                   Table::num(result.total_cost(), 3),
                   Table::pct(core::overpay_fraction(result.total_cost(),
                                                     ideal)),
                   std::to_string(result.out_of_bid_events)});
  }
  table.print(std::cout);
  std::cout << "takeaway: below the market the fallback to on-demand "
               "dominates cost; above ~q90 extra bid aggressiveness buys "
               "almost nothing (winners pay the spot price, not the "
               "bid) — consistent with the paper's truthful-bidding "
               "assumption\n";
  return 0;
}
