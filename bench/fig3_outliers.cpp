// Figure 3 — Box-and-whisker diagram for spot price data sets.
//
// Paper finding: whiskers at 1.5 IQR; "more outliers present in more
// powerful VM class ... even for the most powerful instance
// (c1.xlarge), the number of outliers still contributes a trivial
// amount to the overall data set (< 3%)".
#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

int main() {
  using namespace rrp;
  Table table("Figure 3: spot-price box summaries (whiskers at 1.5 IQR)");
  table.set_header({"class", "min", "q1", "median", "q3", "max",
                    "outliers", "n"});
  double prev_fraction = -1.0;
  bool monotone = true;
  for (const auto& cls : market::all_classes()) {
    const auto trace = bench::shared_trace(cls.id);
    const auto prices = trace.prices();
    const auto box = stats::box_summary(prices);
    table.add_row({std::string(cls.name), Table::num(box.min, 3),
                   Table::num(box.q1, 3), Table::num(box.median, 3),
                   Table::num(box.q3, 3), Table::num(box.max, 3),
                   Table::pct(box.outlier_fraction, 2),
                   std::to_string(box.n)});
    if (box.outlier_fraction + 1e-9 < prev_fraction) monotone = false;
    prev_fraction = box.outlier_fraction;
    if (box.outlier_fraction >= 0.03) {
      std::cout << "WARNING: " << cls.name
                << " exceeds the paper's <3% outlier share\n";
    }
  }
  table.print(std::cout);
  std::cout << "paper shape check: outlier share "
            << (monotone ? "grows" : "does NOT grow")
            << " with class size; all classes < 3%\n";
  return 0;
}
