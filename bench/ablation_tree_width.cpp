// Ablation — scenario-tree branching width (DESIGN.md decision 3).
//
// Two questions per width configuration:
//  (a) model value: how much does a richer tree improve the *expected*
//      plan cost of a single SRRP instance (solved exactly by the tree
//      DP)?
//  (b) tractability: how large does the deterministic-equivalent MILP
//      get, and how long does branch & bound need — the reason the
//      paper keeps SRRP horizons short and we keep trees lean?
// Plus the end-to-end check: realised rolling-horizon cost, averaged
// over several demand streams.
#include <iostream>

#include "bench_util.hpp"
#include "common/deadline.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/srrp_dp.hpp"

namespace {

using namespace rrp;

double now() { return common::real_clock().now_seconds(); }

}  // namespace

int main() {
  const market::VmClass vm = market::VmClass::M1Xlarge;
  const auto base_inputs = bench::make_inputs(vm, 48);
  const double lambda = market::info(vm).on_demand_hourly;
  const auto dist = core::EmpiricalPriceDistribution::from_history(
      base_inputs.history, 12);
  // Bid low enough that the out-of-bid state carries real probability:
  // hedging quality is what tree width buys.
  const double bid = rrp::stats::quantile(base_inputs.history, 0.5);

  struct WidthConfig {
    const char* label;
    std::vector<std::size_t> widths;
  };
  const WidthConfig configs[] = {
      {"{2,1,1,1,1,1}", {2, 1, 1, 1, 1, 1}},
      {"{2,2,1,1,1,1}", {2, 2, 1, 1, 1, 1}},
      {"{3,2,2,1,1,1}", {3, 2, 2, 1, 1, 1}},
      {"{4,3,2,1,1,1}", {4, 3, 2, 1, 1, 1}},
      {"{4,3,2,2,1,1}", {4, 3, 2, 2, 1, 1}},
      {"{5,4,3,2,1,1}", {5, 4, 3, 2, 1, 1}},
  };

  Table model_table("Ablation (a): expected plan cost & MILP effort per "
                    "width (m1.xlarge, bid at the median price)");
  model_table.set_header({"stage widths", "vertices", "E[plan cost] (DP)",
                          "DP time", "MILP rows", "MILP nodes",
                          "MILP time"});
  rrp::Rng demand_rng(777);
  const auto demand = core::generate_demand(6, core::DemandConfig{},
                                            demand_rng);
  for (const auto& cfg : configs) {
    std::vector<double> bids(6, bid);
    core::SrrpInstance inst;
    inst.vm = vm;
    inst.demand = demand;
    inst.tree = core::ScenarioTree::build(
        core::make_stage_supports(dist, bids, lambda, cfg.widths));

    const double t0 = now();
    const auto dp = core::solve_srrp_tree_dp(inst);
    const double dp_seconds = now() - t0;

    core::SrrpFlVariables vars;
    const auto model = core::build_srrp_facility_location(inst, &vars);
    // MILP effort grows steeply with tree width; cap the node budget
    // and skip the largest trees entirely (the DP column is exact
    // either way).
    std::string milp_nodes = "-", milp_time = "skipped";
    if (inst.tree.num_vertices() <= 60) {
      milp::BnbOptions opt;
      opt.relative_gap = 1e-4;
      opt.max_nodes = 200;
      const double t2 = now();
      const auto milp_result = core::solve_srrp(
          inst, opt, core::SrrpFormulation::FacilityLocation);
      const double milp_seconds = now() - t2;
      milp_nodes = std::to_string(milp_result.nodes_explored) +
                   (milp_result.status == milp::MipStatus::Optimal
                        ? ""
                        : "+ (node limit)");
      milp_time = Table::num(milp_seconds, 2) + " s";
    }
    model_table.add_row(
        {cfg.label, std::to_string(inst.tree.num_vertices()),
         Table::num(dp.expected_cost, 4),
         Table::num(dp_seconds * 1e3, 2) + " ms",
         std::to_string(model.num_constraints()), milp_nodes, milp_time});
  }
  model_table.print(std::cout);

  Table sim_table("Ablation (b): realised 48h rolling cost (mean of 4 "
                  "demand streams)");
  sim_table.set_header({"stage widths", "realised cost", "out-of-bid"});
  for (const auto& cfg : configs) {
    double cost = 0.0;
    double oob = 0.0;
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      auto inputs = bench::make_inputs(vm, 48, 60, seed);
      core::PolicyConfig policy = core::sto_exp_mean_policy();
      policy.name = "sto-width";
      policy.stage_widths = cfg.widths;
      const auto result = core::simulate_policy(inputs, policy);
      cost += result.total_cost() / 4.0;
      oob += static_cast<double>(result.out_of_bid_events) / 4.0;
    }
    sim_table.add_row({cfg.label, Table::num(cost, 3),
                       Table::num(oob, 1)});
  }
  sim_table.print(std::cout);

  std::cout << "takeaway: expected plan cost stabilises after a bushy "
               "first stage or two, while the MILP deterministic "
               "equivalent grows sharply with width — the DP makes the "
               "width knob nearly free\n";
  return 0;
}
