// Micro-benchmarks (google-benchmark) for the solver substrates:
// simplex pricing rules, branch & bound on knapsacks, DRRP formulation
// scaling with the horizon, SARIMA fitting, and scenario-tree SRRP.
#include <benchmark/benchmark.h>

#include <memory>

#include "common/deadline.hpp"
#include "common/rng.hpp"
#include "core/demand.hpp"
#include "core/drrp.hpp"
#include "core/srrp.hpp"
#include "core/srrp_dp.hpp"
#include "core/wagner_whitin.hpp"
#include "lp/simplex.hpp"
#include "milp/branch_and_bound.hpp"
#include "obs/obs.hpp"
#include "timeseries/arima.hpp"

namespace {

using namespace rrp;

lp::LinearProgram random_lp(std::size_t vars, std::size_t rows,
                            std::uint64_t seed) {
  Rng rng(seed);
  lp::LinearProgram prog;
  for (std::size_t j = 0; j < vars; ++j)
    prog.add_variable(0.0, rng.uniform(1.0, 5.0), rng.uniform(-2.0, 2.0));
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<lp::Entry> entries;
    for (std::size_t j = 0; j < vars; ++j)
      if (rng.bernoulli(0.4)) entries.push_back({j, rng.uniform(-1.0, 1.0)});
    if (entries.empty()) entries.push_back({0, 1.0});
    prog.add_row(std::move(entries), -rng.uniform(0.5, 3.0),
                 rng.uniform(0.5, 3.0));
  }
  return prog;
}

void BM_SimplexDantzig(benchmark::State& state) {
  const auto prog = random_lp(static_cast<std::size_t>(state.range(0)),
                              static_cast<std::size_t>(state.range(0)) / 2,
                              42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lp::solve(prog));
  }
}
BENCHMARK(BM_SimplexDantzig)->Arg(20)->Arg(60)->Arg(120);

void BM_SimplexBland(benchmark::State& state) {
  const auto prog = random_lp(static_cast<std::size_t>(state.range(0)),
                              static_cast<std::size_t>(state.range(0)) / 2,
                              42);
  lp::SimplexOptions opt;
  opt.pricing = lp::Pricing::Bland;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lp::solve(prog, opt));
  }
}
BENCHMARK(BM_SimplexBland)->Arg(20)->Arg(60)->Arg(120);

void BM_KnapsackBnB(benchmark::State& state) {
  Rng rng(7);
  milp::Model model;
  milp::LinExpr value, weight;
  for (int i = 0; i < state.range(0); ++i) {
    const milp::Var b = model.add_binary();
    value += rng.uniform(1.0, 20.0) * milp::LinExpr(b);
    weight += rng.uniform(1.0, 10.0) * milp::LinExpr(b);
  }
  model.set_objective(value, milp::Objective::Maximize);
  model.add_constraint(std::move(weight) <=
                       2.5 * static_cast<double>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(milp::solve(model));
  }
}
BENCHMARK(BM_KnapsackBnB)->Arg(10)->Arg(16)->Arg(22);

core::DrrpInstance drrp_instance(std::size_t horizon) {
  Rng rng(11);
  core::DrrpInstance inst;
  inst.demand = core::generate_demand(horizon, core::DemandConfig{}, rng);
  inst.compute_price.assign(horizon, 0.4);
  return inst;
}

void BM_DrrpFacilityLocation(benchmark::State& state) {
  const auto inst = drrp_instance(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::solve_drrp(inst, {}, core::DrrpFormulation::FacilityLocation));
  }
}
BENCHMARK(BM_DrrpFacilityLocation)->Arg(12)->Arg(24)->Arg(48);

// Deadline-polling overhead (ISSUE 2 acceptance: <2% vs. no deadline).
// Same MILP solve as BM_DrrpFacilityLocation but with a generous armed
// deadline, so every node and pivot pays the poll against the real
// monotonic clock without ever expiring.
void BM_DrrpFacilityLocationDeadline(benchmark::State& state) {
  const auto inst = drrp_instance(static_cast<std::size_t>(state.range(0)));
  milp::BnbOptions opt;
  for (auto _ : state) {
    opt.deadline = common::Deadline::after(3600.0);
    benchmark::DoNotOptimize(
        core::solve_drrp(inst, opt, core::DrrpFormulation::FacilityLocation));
  }
}
BENCHMARK(BM_DrrpFacilityLocationDeadline)->Arg(12)->Arg(24)->Arg(48);

// Warm-start lever (ISSUE 5): the aggregated formulation's weak
// relaxation forces a real tree, so per-node LP cost dominates and the
// parent-basis dual re-optimisation shows up directly.  Arg is the
// warm_start switch.
void BM_DrrpAggregatedWarmStart(benchmark::State& state) {
  const auto inst = drrp_instance(24);
  milp::BnbOptions opt;
  opt.warm_start = state.range(0) != 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::solve_drrp(inst, opt, core::DrrpFormulation::Aggregated));
  }
}
BENCHMARK(BM_DrrpAggregatedWarmStart)->Arg(0)->Arg(1);

// Parallel tree search: Arg is the jobs count (1 = inline worker).
void BM_DrrpAggregatedJobs(benchmark::State& state) {
  const auto inst = drrp_instance(24);
  milp::BnbOptions opt;
  opt.jobs = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::solve_drrp(inst, opt, core::DrrpFormulation::Aggregated));
  }
}
BENCHMARK(BM_DrrpAggregatedJobs)->Arg(1)->Arg(2)->Arg(4);

void BM_DrrpWagnerWhitin(benchmark::State& state) {
  const auto inst = drrp_instance(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve_drrp_wagner_whitin(inst));
  }
}
BENCHMARK(BM_DrrpWagnerWhitin)->Arg(12)->Arg(24)->Arg(48)->Arg(96);

void BM_SrrpFacilityLocation(benchmark::State& state) {
  Rng rng(13);
  std::vector<double> history;
  for (int i = 0; i < 1000; ++i)
    history.push_back(0.05 + 0.03 * rng.uniform());
  const auto base = core::EmpiricalPriceDistribution::from_history(history,
                                                                   12);
  const std::size_t width = static_cast<std::size_t>(state.range(0));
  std::vector<std::size_t> widths = {width, 2, 2, 1, 1, 1};
  std::vector<double> bids(6, 0.065);
  core::SrrpInstance inst;
  inst.demand = core::generate_demand(6, core::DemandConfig{}, rng);
  inst.tree = core::ScenarioTree::build(
      core::make_stage_supports(base, bids, 0.2, widths));
  milp::BnbOptions opt;
  opt.relative_gap = 1e-3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::solve_srrp(inst, opt, core::SrrpFormulation::FacilityLocation));
  }
}
BENCHMARK(BM_SrrpFacilityLocation)->Arg(2)->Arg(3)->Arg(4);

void BM_SrrpTreeDp(benchmark::State& state) {
  Rng rng(13);
  std::vector<double> history;
  for (int i = 0; i < 1000; ++i)
    history.push_back(0.05 + 0.03 * rng.uniform());
  const auto base = core::EmpiricalPriceDistribution::from_history(history,
                                                                   12);
  const std::size_t width = static_cast<std::size_t>(state.range(0));
  std::vector<std::size_t> widths = {width, 2, 2, 1, 1, 1};
  std::vector<double> bids(6, 0.065);
  core::SrrpInstance inst;
  inst.demand = core::generate_demand(6, core::DemandConfig{}, rng);
  inst.tree = core::ScenarioTree::build(
      core::make_stage_supports(base, bids, 0.2, widths));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve_srrp_tree_dp(inst));
  }
}
BENCHMARK(BM_SrrpTreeDp)->Arg(2)->Arg(3)->Arg(4)->Arg(8);

// Instrumentation overhead pair (ISSUE 9 acceptance: <2% on warm SRRP
// node throughput).  Both args run the same warm aggregated SRRP solve
// with the macros compiled in; Arg 1 additionally enables span
// recording and installs an event sink, so every RRP_TRACE_SPAN and
// RRP_OBS_EVENT site pays its full armed cost instead of one relaxed
// load.  The JSON suite's obs-on/obs-off gate (tools/check_perf.py
// --obs-off) compares separate ON/OFF builds; this pair isolates the
// runtime arming cost within one build.
class DiscardSink final : public obs::EventSink {
 public:
  void write(const obs::Event&) override {}
};

void BM_SrrpAggregatedObs(benchmark::State& state) {
  Rng rng(13);
  std::vector<double> history;
  for (int i = 0; i < 1000; ++i)
    history.push_back(0.05 + 0.03 * rng.uniform());
  const auto base = core::EmpiricalPriceDistribution::from_history(history,
                                                                   12);
  std::vector<std::size_t> widths = {3, 2, 2, 1, 1, 1};
  std::vector<double> bids(6, 0.065);
  core::SrrpInstance inst;
  inst.demand = core::generate_demand(6, core::DemandConfig{}, rng);
  inst.tree = core::ScenarioTree::build(
      core::make_stage_supports(base, bids, 0.2, widths));
  milp::BnbOptions opt;
  opt.relative_gap = 1e-3;
  opt.warm_start = true;
  const bool armed = state.range(0) != 0;
  auto& recorder = obs::TraceRecorder::instance();
  if (armed) {
    recorder.enable();
    obs::EventLog::instance().set_sink(std::make_shared<DiscardSink>());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::solve_srrp(inst, opt, core::SrrpFormulation::Aggregated));
  }
  if (armed) {
    recorder.disable();
    recorder.clear();
    obs::EventLog::instance().set_sink(nullptr);
  }
}
BENCHMARK(BM_SrrpAggregatedObs)->Arg(0)->Arg(1);

void BM_SarimaFit(benchmark::State& state) {
  Rng rng(17);
  std::vector<double> x(static_cast<std::size_t>(state.range(0)), 0.06);
  for (std::size_t t = 1; t < x.size(); ++t)
    x[t] = 0.06 + 0.7 * (x[t - 1] - 0.06) + rng.normal(0.0, 0.002);
  ts::SarimaOrder order;
  order.p = 2;
  order.q = 1;
  order.P = 1;
  order.s = 24;
  ts::SarimaFitOptions opt;
  opt.optimizer.max_evaluations = 2000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ts::fit_sarima(x, order, opt));
  }
}
BENCHMARK(BM_SarimaFit)->Arg(256)->Arg(720)->Arg(1440);

}  // namespace

BENCHMARK_MAIN();
