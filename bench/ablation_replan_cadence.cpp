// Ablation — re-plan cadence (paper Section V-D).
//
// "In practice, the resource rental planning is often conducted in a
// rolling horizon fashion, i.e., a revised plan is issued periodically
// (after a few slots of the whole planning horizon) to include the new
// information."  This bench quantifies what that periodicity costs:
// realised cost versus the cadence, for the deterministic and the
// stochastic planner.
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"

int main() {
  using namespace rrp;
  const std::size_t kEvalHours = 72;
  const std::size_t kTrials = 4;

  Table table("Ablation: re-plan cadence vs realised cost (m1.large, "
              "72h, mean of " + std::to_string(kTrials) + " trials)");
  table.set_header({"re-plan every", "det-exp-mean", "sto-exp-mean"});
  for (std::size_t cadence : {std::size_t{1}, std::size_t{2},
                              std::size_t{3}, std::size_t{6}}) {
    double det_cost = 0.0, sto_cost = 0.0;
    for (std::size_t trial = 0; trial < kTrials; ++trial) {
      const auto inputs = bench::make_inputs(market::VmClass::M1Large,
                                             kEvalHours, 60, trial + 1);
      core::PolicyConfig det = core::det_exp_mean_policy();
      det.replan_every = cadence;
      core::PolicyConfig sto = core::sto_exp_mean_policy();
      sto.replan_every = std::min(cadence, sto.lookahead);
      det_cost += core::simulate_policy(inputs, det).total_cost() / kTrials;
      sto_cost += core::simulate_policy(inputs, sto).total_cost() / kTrials;
    }
    table.add_row({std::to_string(cadence) + "h",
                   Table::num(det_cost, 3), Table::num(sto_cost, 3)});
  }
  table.print(std::cout);
  std::cout << "takeaway: every cadence stays demand-feasible and costs "
               "move only a few percent.  Notably, hourly re-planning is "
               "not automatically best: committing to a plan for several "
               "slots can avoid the sliding-window end-effects of "
               "re-planned lot-sizing, while the SRRP tree descent is "
               "nearly cadence-insensitive (its recourse already encodes "
               "the future states)\n";
  return 0;
}
