// Figure 8 — Day-ahead prediction for the selected series.
//
// Paper method: fit on two months of hourly prices, forecast the next
// day with the best SARIMA order found by auto.arima (most test series
// fit SARIMA(2,0,1|2)(2,0,0)_24).  Paper finding: "While this model
// returns the least prediction error compared to other models, its
// mean squared prediction error (MSPE) is only slightly better than
// the simple prediction using the expected mean value.  Therefore, it
// does not yield satisfactory accuracy."
#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "timeseries/arima.hpp"
#include "timeseries/auto_arima.hpp"
#include "timeseries/ets.hpp"

int main() {
  using namespace rrp;
  const auto trace = bench::shared_trace(market::VmClass::C1Medium);
  // Estimation set: two months; validation set: the following day.
  const auto window = trace.hourly(24 * 300, 24 * 362);
  std::vector<double> train(window.begin(), window.end() - 24);
  std::vector<double> test(window.end() - 24, window.end());

  ts::AutoArimaOptions opt;
  opt.seasonal_period = 24;
  opt.max_p = 3;
  opt.max_q = 2;
  opt.max_P = 2;
  opt.max_Q = 0;
  opt.d = 0;
  opt.D = 0;
  opt.max_total_order = 6;
  opt.fit.optimizer.max_evaluations = 4000;
  const auto selected = ts::auto_arima(train, opt);
  const auto& m = selected.model;
  std::cout << "auto.arima: SARIMA(" << m.order.p << ",0," << m.order.q
            << ")(" << m.order.P << ",0," << m.order.Q << ")_24, AICc "
            << Table::num(m.aicc, 1) << " (searched "
            << selected.models_evaluated << " orders)\n\n";

  const auto interval = ts::forecast_interval(m, train, 24, 0.95);
  const auto& sarima = interval.point;
  const auto mean_pred = ts::mean_forecast(train, 24);

  Table table("Figure 8: day-ahead forecast vs actual (c1.medium)");
  table.set_header({"hour", "actual", "sarima", "95% band", "mean-pred"});
  std::size_t covered = 0;
  for (std::size_t h = 0; h < 24; ++h) {
    if (test[h] >= interval.lower[h] && test[h] <= interval.upper[h])
      ++covered;
    table.add_row({std::to_string(h), Table::num(test[h], 4),
                   Table::num(sarima[h], 4),
                   "[" + Table::num(interval.lower[h], 4) + ", " +
                       Table::num(interval.upper[h], 4) + "]",
                   Table::num(mean_pred[h], 4)});
  }
  table.print(std::cout);
  std::cout << "95% band covered " << covered << "/24 actual prices\n\n";

  // Robust comparison: repeat the day-ahead exercise over ten rolling
  // validation days with the once-fitted model ("extensive trials").
  const auto extended = trace.hourly(24 * 300, 24 * 372);
  double mspe_sarima = 0.0, mspe_mean = 0.0, mspe_ets = 0.0;
  const std::size_t kDays = 10;
  ts::EtsOptions ets_opt;
  ets_opt.season = 24;
  for (std::size_t day = 0; day < kDays; ++day) {
    const std::size_t split = (61 + day) * 24;
    std::vector<double> hist(extended.begin(),
                             extended.begin() + static_cast<long>(split));
    std::vector<double> actual(
        extended.begin() + static_cast<long>(split),
        extended.begin() + static_cast<long>(split + 24));
    mspe_sarima += stats::mse(actual, ts::forecast(m, hist, 24)) / kDays;
    mspe_mean += stats::mse(actual, ts::mean_forecast(hist, 24)) / kDays;
    const auto ets = ts::fit_ets(hist, ets_opt);
    mspe_ets += stats::mse(actual, ts::forecast(ets, 24)) / kDays;
  }
  Table score("Prediction error (mean over " + std::to_string(kDays) +
              " day-ahead trials)");
  score.set_header({"predictor", "MSPE", "vs mean predictor"});
  score.add_row({"SARIMA", Table::num(mspe_sarima * 1e6, 3) + "e-6",
                 Table::pct(mspe_sarima / mspe_mean)});
  score.add_row({"Holt-Winters", Table::num(mspe_ets * 1e6, 3) + "e-6",
                 Table::pct(mspe_ets / mspe_mean)});
  score.add_row({"expected mean", Table::num(mspe_mean * 1e6, 3) + "e-6",
                 "100%"});
  score.print(std::cout);

  std::cout << "paper shape check: SARIMA is only "
            << (mspe_sarima < mspe_mean ? "slightly better than"
                                        : "comparable to")
            << " the mean predictor -> prediction alone cannot "
               "parameterise DRRP; motivates SRRP\n";
  return 0;
}
