file(REMOVE_RECURSE
  "CMakeFiles/rrp.dir/rrp_cli.cpp.o"
  "CMakeFiles/rrp.dir/rrp_cli.cpp.o.d"
  "rrp"
  "rrp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
