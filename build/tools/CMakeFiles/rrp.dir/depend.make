# Empty dependencies file for rrp.
# This may be replaced when dependencies are built.
