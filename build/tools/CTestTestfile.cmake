# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_usage "/root/repo/build/tools/rrp")
set_tests_properties(cli_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_plan "/root/repo/build/tools/rrp" "plan" "--hours" "6" "--seed" "3")
set_tests_properties(cli_plan PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_analyze "/root/repo/build/tools/rrp" "analyze" "--seed" "3")
set_tests_properties(cli_analyze PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_simulate "/root/repo/build/tools/rrp" "simulate" "--hours" "12" "--policy" "det-exp-mean" "--seed" "3")
set_tests_properties(cli_simulate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_simulate_srrp "/root/repo/build/tools/rrp" "simulate" "--hours" "12" "--policy" "sto-exp-mean" "--replan" "3" "--seed" "3")
set_tests_properties(cli_simulate_srrp PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_availability "/root/repo/build/tools/rrp" "availability" "--bid" "0.062")
set_tests_properties(cli_availability PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_trace_roundtrip "/root/repo/build/tools/rrp" "trace" "--out" "/root/repo/build/tools/t.csv" "--days" "40" "--seed" "3")
set_tests_properties(cli_trace_roundtrip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_analyze_file "/root/repo/build/tools/rrp" "analyze" "--trace" "/root/repo/build/tools/t.csv")
set_tests_properties(cli_analyze_file PROPERTIES  DEPENDS "cli_trace_roundtrip" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_bad_policy "/root/repo/build/tools/rrp" "simulate" "--policy" "nonsense")
set_tests_properties(cli_bad_policy PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;23;add_test;/root/repo/tools/CMakeLists.txt;0;")
