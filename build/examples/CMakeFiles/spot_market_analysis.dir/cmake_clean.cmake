file(REMOVE_RECURSE
  "CMakeFiles/spot_market_analysis.dir/spot_market_analysis.cpp.o"
  "CMakeFiles/spot_market_analysis.dir/spot_market_analysis.cpp.o.d"
  "spot_market_analysis"
  "spot_market_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spot_market_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
