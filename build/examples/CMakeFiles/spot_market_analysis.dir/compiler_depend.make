# Empty compiler generated dependencies file for spot_market_analysis.
# This may be replaced when dependencies are built.
