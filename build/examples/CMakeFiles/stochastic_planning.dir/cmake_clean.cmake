file(REMOVE_RECURSE
  "CMakeFiles/stochastic_planning.dir/stochastic_planning.cpp.o"
  "CMakeFiles/stochastic_planning.dir/stochastic_planning.cpp.o.d"
  "stochastic_planning"
  "stochastic_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stochastic_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
