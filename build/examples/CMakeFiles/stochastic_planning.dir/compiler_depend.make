# Empty compiler generated dependencies file for stochastic_planning.
# This may be replaced when dependencies are built.
