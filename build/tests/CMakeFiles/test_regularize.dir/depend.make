# Empty dependencies file for test_regularize.
# This may be replaced when dependencies are built.
