file(REMOVE_RECURSE
  "CMakeFiles/test_regularize.dir/test_regularize.cpp.o"
  "CMakeFiles/test_regularize.dir/test_regularize.cpp.o.d"
  "test_regularize"
  "test_regularize.pdb"
  "test_regularize[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_regularize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
