# Empty dependencies file for test_rolling_horizon.
# This may be replaced when dependencies are built.
