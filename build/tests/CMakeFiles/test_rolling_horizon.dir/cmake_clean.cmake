file(REMOVE_RECURSE
  "CMakeFiles/test_rolling_horizon.dir/test_rolling_horizon.cpp.o"
  "CMakeFiles/test_rolling_horizon.dir/test_rolling_horizon.cpp.o.d"
  "test_rolling_horizon"
  "test_rolling_horizon.pdb"
  "test_rolling_horizon[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rolling_horizon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
