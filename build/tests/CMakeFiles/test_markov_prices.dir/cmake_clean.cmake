file(REMOVE_RECURSE
  "CMakeFiles/test_markov_prices.dir/test_markov_prices.cpp.o"
  "CMakeFiles/test_markov_prices.dir/test_markov_prices.cpp.o.d"
  "test_markov_prices"
  "test_markov_prices.pdb"
  "test_markov_prices[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_markov_prices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
