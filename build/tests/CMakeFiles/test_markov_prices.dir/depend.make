# Empty dependencies file for test_markov_prices.
# This may be replaced when dependencies are built.
