file(REMOVE_RECURSE
  "CMakeFiles/test_srrp.dir/test_srrp.cpp.o"
  "CMakeFiles/test_srrp.dir/test_srrp.cpp.o.d"
  "test_srrp"
  "test_srrp.pdb"
  "test_srrp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_srrp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
