# Empty dependencies file for test_srrp.
# This may be replaced when dependencies are built.
