# Empty dependencies file for test_solver_consistency.
# This may be replaced when dependencies are built.
