file(REMOVE_RECURSE
  "CMakeFiles/test_solver_consistency.dir/test_solver_consistency.cpp.o"
  "CMakeFiles/test_solver_consistency.dir/test_solver_consistency.cpp.o.d"
  "test_solver_consistency"
  "test_solver_consistency.pdb"
  "test_solver_consistency[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_solver_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
