# Empty compiler generated dependencies file for test_milp_bruteforce.
# This may be replaced when dependencies are built.
