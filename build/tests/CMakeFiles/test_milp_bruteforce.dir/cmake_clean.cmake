file(REMOVE_RECURSE
  "CMakeFiles/test_milp_bruteforce.dir/test_milp_bruteforce.cpp.o"
  "CMakeFiles/test_milp_bruteforce.dir/test_milp_bruteforce.cpp.o.d"
  "test_milp_bruteforce"
  "test_milp_bruteforce.pdb"
  "test_milp_bruteforce[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_milp_bruteforce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
