file(REMOVE_RECURSE
  "CMakeFiles/test_srrp_dp.dir/test_srrp_dp.cpp.o"
  "CMakeFiles/test_srrp_dp.dir/test_srrp_dp.cpp.o.d"
  "test_srrp_dp"
  "test_srrp_dp.pdb"
  "test_srrp_dp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_srrp_dp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
