# Empty dependencies file for test_srrp_dp.
# This may be replaced when dependencies are built.
