file(REMOVE_RECURSE
  "CMakeFiles/test_scenario_tree.dir/test_scenario_tree.cpp.o"
  "CMakeFiles/test_scenario_tree.dir/test_scenario_tree.cpp.o.d"
  "test_scenario_tree"
  "test_scenario_tree.pdb"
  "test_scenario_tree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scenario_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
