# Empty dependencies file for test_scenario_tree.
# This may be replaced when dependencies are built.
