file(REMOVE_RECURSE
  "CMakeFiles/test_arima.dir/test_arima.cpp.o"
  "CMakeFiles/test_arima.dir/test_arima.cpp.o.d"
  "test_arima"
  "test_arima.pdb"
  "test_arima[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arima.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
