file(REMOVE_RECURSE
  "CMakeFiles/test_auto_arima.dir/test_auto_arima.cpp.o"
  "CMakeFiles/test_auto_arima.dir/test_auto_arima.cpp.o.d"
  "test_auto_arima"
  "test_auto_arima.pdb"
  "test_auto_arima[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_auto_arima.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
