# Empty dependencies file for test_auto_arima.
# This may be replaced when dependencies are built.
