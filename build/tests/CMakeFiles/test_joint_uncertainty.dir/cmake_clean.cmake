file(REMOVE_RECURSE
  "CMakeFiles/test_joint_uncertainty.dir/test_joint_uncertainty.cpp.o"
  "CMakeFiles/test_joint_uncertainty.dir/test_joint_uncertainty.cpp.o.d"
  "test_joint_uncertainty"
  "test_joint_uncertainty.pdb"
  "test_joint_uncertainty[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_joint_uncertainty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
