# Empty dependencies file for test_joint_uncertainty.
# This may be replaced when dependencies are built.
