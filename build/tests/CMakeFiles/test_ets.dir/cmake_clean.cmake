file(REMOVE_RECURSE
  "CMakeFiles/test_ets.dir/test_ets.cpp.o"
  "CMakeFiles/test_ets.dir/test_ets.cpp.o.d"
  "test_ets"
  "test_ets.pdb"
  "test_ets[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
