# Empty dependencies file for test_ets.
# This may be replaced when dependencies are built.
