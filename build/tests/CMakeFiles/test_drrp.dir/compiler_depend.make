# Empty compiler generated dependencies file for test_drrp.
# This may be replaced when dependencies are built.
