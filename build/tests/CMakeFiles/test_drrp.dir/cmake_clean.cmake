file(REMOVE_RECURSE
  "CMakeFiles/test_drrp.dir/test_drrp.cpp.o"
  "CMakeFiles/test_drrp.dir/test_drrp.cpp.o.d"
  "test_drrp"
  "test_drrp.pdb"
  "test_drrp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_drrp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
