# Empty compiler generated dependencies file for test_price_distribution.
# This may be replaced when dependencies are built.
