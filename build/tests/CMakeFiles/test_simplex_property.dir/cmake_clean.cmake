file(REMOVE_RECURSE
  "CMakeFiles/test_simplex_property.dir/test_simplex_property.cpp.o"
  "CMakeFiles/test_simplex_property.dir/test_simplex_property.cpp.o.d"
  "test_simplex_property"
  "test_simplex_property.pdb"
  "test_simplex_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simplex_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
