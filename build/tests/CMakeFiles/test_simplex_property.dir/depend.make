# Empty dependencies file for test_simplex_property.
# This may be replaced when dependencies are built.
