# Empty dependencies file for test_wagner_whitin.
# This may be replaced when dependencies are built.
