file(REMOVE_RECURSE
  "CMakeFiles/test_wagner_whitin.dir/test_wagner_whitin.cpp.o"
  "CMakeFiles/test_wagner_whitin.dir/test_wagner_whitin.cpp.o.d"
  "test_wagner_whitin"
  "test_wagner_whitin.pdb"
  "test_wagner_whitin[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wagner_whitin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
