# Empty dependencies file for test_milp_model.
# This may be replaced when dependencies are built.
