file(REMOVE_RECURSE
  "CMakeFiles/test_milp_model.dir/test_milp_model.cpp.o"
  "CMakeFiles/test_milp_model.dir/test_milp_model.cpp.o.d"
  "test_milp_model"
  "test_milp_model.pdb"
  "test_milp_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_milp_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
