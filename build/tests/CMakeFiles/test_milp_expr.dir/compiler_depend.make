# Empty compiler generated dependencies file for test_milp_expr.
# This may be replaced when dependencies are built.
