file(REMOVE_RECURSE
  "CMakeFiles/fig8_prediction.dir/fig8_prediction.cpp.o"
  "CMakeFiles/fig8_prediction.dir/fig8_prediction.cpp.o.d"
  "fig8_prediction"
  "fig8_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
