# Empty dependencies file for fig4_update_frequency.
# This may be replaced when dependencies are built.
