file(REMOVE_RECURSE
  "CMakeFiles/fig4_update_frequency.dir/fig4_update_frequency.cpp.o"
  "CMakeFiles/fig4_update_frequency.dir/fig4_update_frequency.cpp.o.d"
  "fig4_update_frequency"
  "fig4_update_frequency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_update_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
