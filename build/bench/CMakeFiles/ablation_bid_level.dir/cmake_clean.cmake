file(REMOVE_RECURSE
  "CMakeFiles/ablation_bid_level.dir/ablation_bid_level.cpp.o"
  "CMakeFiles/ablation_bid_level.dir/ablation_bid_level.cpp.o.d"
  "ablation_bid_level"
  "ablation_bid_level.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bid_level.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
