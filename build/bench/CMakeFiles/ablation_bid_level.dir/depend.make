# Empty dependencies file for ablation_bid_level.
# This may be replaced when dependencies are built.
