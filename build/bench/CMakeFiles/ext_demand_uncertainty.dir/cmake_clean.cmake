file(REMOVE_RECURSE
  "CMakeFiles/ext_demand_uncertainty.dir/ext_demand_uncertainty.cpp.o"
  "CMakeFiles/ext_demand_uncertainty.dir/ext_demand_uncertainty.cpp.o.d"
  "ext_demand_uncertainty"
  "ext_demand_uncertainty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_demand_uncertainty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
