# Empty compiler generated dependencies file for ext_demand_uncertainty.
# This may be replaced when dependencies are built.
