file(REMOVE_RECURSE
  "CMakeFiles/fig6_decomposition.dir/fig6_decomposition.cpp.o"
  "CMakeFiles/fig6_decomposition.dir/fig6_decomposition.cpp.o.d"
  "fig6_decomposition"
  "fig6_decomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
