# Empty compiler generated dependencies file for fig6_decomposition.
# This may be replaced when dependencies are built.
