# Empty dependencies file for ext_markov_tree.
# This may be replaced when dependencies are built.
