file(REMOVE_RECURSE
  "CMakeFiles/ext_markov_tree.dir/ext_markov_tree.cpp.o"
  "CMakeFiles/ext_markov_tree.dir/ext_markov_tree.cpp.o.d"
  "ext_markov_tree"
  "ext_markov_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_markov_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
