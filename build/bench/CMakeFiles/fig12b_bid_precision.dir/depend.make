# Empty dependencies file for fig12b_bid_precision.
# This may be replaced when dependencies are built.
