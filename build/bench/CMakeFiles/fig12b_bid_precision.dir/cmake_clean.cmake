file(REMOVE_RECURSE
  "CMakeFiles/fig12b_bid_precision.dir/fig12b_bid_precision.cpp.o"
  "CMakeFiles/fig12b_bid_precision.dir/fig12b_bid_precision.cpp.o.d"
  "fig12b_bid_precision"
  "fig12b_bid_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12b_bid_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
