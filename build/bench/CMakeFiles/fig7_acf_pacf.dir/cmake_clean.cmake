file(REMOVE_RECURSE
  "CMakeFiles/fig7_acf_pacf.dir/fig7_acf_pacf.cpp.o"
  "CMakeFiles/fig7_acf_pacf.dir/fig7_acf_pacf.cpp.o.d"
  "fig7_acf_pacf"
  "fig7_acf_pacf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_acf_pacf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
