# Empty compiler generated dependencies file for fig7_acf_pacf.
# This may be replaced when dependencies are built.
