# Empty dependencies file for ablation_replan_cadence.
# This may be replaced when dependencies are built.
