file(REMOVE_RECURSE
  "CMakeFiles/ablation_replan_cadence.dir/ablation_replan_cadence.cpp.o"
  "CMakeFiles/ablation_replan_cadence.dir/ablation_replan_cadence.cpp.o.d"
  "ablation_replan_cadence"
  "ablation_replan_cadence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_replan_cadence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
