file(REMOVE_RECURSE
  "CMakeFiles/fig3_outliers.dir/fig3_outliers.cpp.o"
  "CMakeFiles/fig3_outliers.dir/fig3_outliers.cpp.o.d"
  "fig3_outliers"
  "fig3_outliers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_outliers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
