# Empty dependencies file for fig3_outliers.
# This may be replaced when dependencies are built.
