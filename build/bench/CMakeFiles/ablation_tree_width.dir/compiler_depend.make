# Empty compiler generated dependencies file for ablation_tree_width.
# This may be replaced when dependencies are built.
