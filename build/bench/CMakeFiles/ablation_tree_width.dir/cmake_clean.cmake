file(REMOVE_RECURSE
  "CMakeFiles/ablation_tree_width.dir/ablation_tree_width.cpp.o"
  "CMakeFiles/ablation_tree_width.dir/ablation_tree_width.cpp.o.d"
  "ablation_tree_width"
  "ablation_tree_width.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tree_width.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
