file(REMOVE_RECURSE
  "CMakeFiles/fig11_sensitivity.dir/fig11_sensitivity.cpp.o"
  "CMakeFiles/fig11_sensitivity.dir/fig11_sensitivity.cpp.o.d"
  "fig11_sensitivity"
  "fig11_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
