# Empty dependencies file for fig12a_srrp_overpay.
# This may be replaced when dependencies are built.
