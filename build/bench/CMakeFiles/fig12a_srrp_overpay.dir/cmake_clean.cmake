file(REMOVE_RECURSE
  "CMakeFiles/fig12a_srrp_overpay.dir/fig12a_srrp_overpay.cpp.o"
  "CMakeFiles/fig12a_srrp_overpay.dir/fig12a_srrp_overpay.cpp.o.d"
  "fig12a_srrp_overpay"
  "fig12a_srrp_overpay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12a_srrp_overpay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
