# Empty dependencies file for rrp_lp.
# This may be replaced when dependencies are built.
