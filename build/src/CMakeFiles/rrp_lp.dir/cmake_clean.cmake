file(REMOVE_RECURSE
  "CMakeFiles/rrp_lp.dir/lp/model.cpp.o"
  "CMakeFiles/rrp_lp.dir/lp/model.cpp.o.d"
  "CMakeFiles/rrp_lp.dir/lp/presolve.cpp.o"
  "CMakeFiles/rrp_lp.dir/lp/presolve.cpp.o.d"
  "CMakeFiles/rrp_lp.dir/lp/simplex.cpp.o"
  "CMakeFiles/rrp_lp.dir/lp/simplex.cpp.o.d"
  "librrp_lp.a"
  "librrp_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrp_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
