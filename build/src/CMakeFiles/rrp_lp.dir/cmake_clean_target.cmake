file(REMOVE_RECURSE
  "librrp_lp.a"
)
