file(REMOVE_RECURSE
  "librrp_ts.a"
)
