file(REMOVE_RECURSE
  "CMakeFiles/rrp_ts.dir/timeseries/acf.cpp.o"
  "CMakeFiles/rrp_ts.dir/timeseries/acf.cpp.o.d"
  "CMakeFiles/rrp_ts.dir/timeseries/arima.cpp.o"
  "CMakeFiles/rrp_ts.dir/timeseries/arima.cpp.o.d"
  "CMakeFiles/rrp_ts.dir/timeseries/auto_arima.cpp.o"
  "CMakeFiles/rrp_ts.dir/timeseries/auto_arima.cpp.o.d"
  "CMakeFiles/rrp_ts.dir/timeseries/decompose.cpp.o"
  "CMakeFiles/rrp_ts.dir/timeseries/decompose.cpp.o.d"
  "CMakeFiles/rrp_ts.dir/timeseries/diagnostics.cpp.o"
  "CMakeFiles/rrp_ts.dir/timeseries/diagnostics.cpp.o.d"
  "CMakeFiles/rrp_ts.dir/timeseries/ets.cpp.o"
  "CMakeFiles/rrp_ts.dir/timeseries/ets.cpp.o.d"
  "CMakeFiles/rrp_ts.dir/timeseries/optimize.cpp.o"
  "CMakeFiles/rrp_ts.dir/timeseries/optimize.cpp.o.d"
  "CMakeFiles/rrp_ts.dir/timeseries/regularize.cpp.o"
  "CMakeFiles/rrp_ts.dir/timeseries/regularize.cpp.o.d"
  "CMakeFiles/rrp_ts.dir/timeseries/series.cpp.o"
  "CMakeFiles/rrp_ts.dir/timeseries/series.cpp.o.d"
  "librrp_ts.a"
  "librrp_ts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrp_ts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
