
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/timeseries/acf.cpp" "src/CMakeFiles/rrp_ts.dir/timeseries/acf.cpp.o" "gcc" "src/CMakeFiles/rrp_ts.dir/timeseries/acf.cpp.o.d"
  "/root/repo/src/timeseries/arima.cpp" "src/CMakeFiles/rrp_ts.dir/timeseries/arima.cpp.o" "gcc" "src/CMakeFiles/rrp_ts.dir/timeseries/arima.cpp.o.d"
  "/root/repo/src/timeseries/auto_arima.cpp" "src/CMakeFiles/rrp_ts.dir/timeseries/auto_arima.cpp.o" "gcc" "src/CMakeFiles/rrp_ts.dir/timeseries/auto_arima.cpp.o.d"
  "/root/repo/src/timeseries/decompose.cpp" "src/CMakeFiles/rrp_ts.dir/timeseries/decompose.cpp.o" "gcc" "src/CMakeFiles/rrp_ts.dir/timeseries/decompose.cpp.o.d"
  "/root/repo/src/timeseries/diagnostics.cpp" "src/CMakeFiles/rrp_ts.dir/timeseries/diagnostics.cpp.o" "gcc" "src/CMakeFiles/rrp_ts.dir/timeseries/diagnostics.cpp.o.d"
  "/root/repo/src/timeseries/ets.cpp" "src/CMakeFiles/rrp_ts.dir/timeseries/ets.cpp.o" "gcc" "src/CMakeFiles/rrp_ts.dir/timeseries/ets.cpp.o.d"
  "/root/repo/src/timeseries/optimize.cpp" "src/CMakeFiles/rrp_ts.dir/timeseries/optimize.cpp.o" "gcc" "src/CMakeFiles/rrp_ts.dir/timeseries/optimize.cpp.o.d"
  "/root/repo/src/timeseries/regularize.cpp" "src/CMakeFiles/rrp_ts.dir/timeseries/regularize.cpp.o" "gcc" "src/CMakeFiles/rrp_ts.dir/timeseries/regularize.cpp.o.d"
  "/root/repo/src/timeseries/series.cpp" "src/CMakeFiles/rrp_ts.dir/timeseries/series.cpp.o" "gcc" "src/CMakeFiles/rrp_ts.dir/timeseries/series.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rrp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
