# Empty dependencies file for rrp_ts.
# This may be replaced when dependencies are built.
