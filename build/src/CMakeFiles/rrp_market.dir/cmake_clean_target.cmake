file(REMOVE_RECURSE
  "librrp_market.a"
)
