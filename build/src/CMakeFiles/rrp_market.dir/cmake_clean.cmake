file(REMOVE_RECURSE
  "CMakeFiles/rrp_market.dir/market/auction.cpp.o"
  "CMakeFiles/rrp_market.dir/market/auction.cpp.o.d"
  "CMakeFiles/rrp_market.dir/market/cost_model.cpp.o"
  "CMakeFiles/rrp_market.dir/market/cost_model.cpp.o.d"
  "CMakeFiles/rrp_market.dir/market/instance_types.cpp.o"
  "CMakeFiles/rrp_market.dir/market/instance_types.cpp.o.d"
  "CMakeFiles/rrp_market.dir/market/spot_trace.cpp.o"
  "CMakeFiles/rrp_market.dir/market/spot_trace.cpp.o.d"
  "CMakeFiles/rrp_market.dir/market/trace_generator.cpp.o"
  "CMakeFiles/rrp_market.dir/market/trace_generator.cpp.o.d"
  "librrp_market.a"
  "librrp_market.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrp_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
