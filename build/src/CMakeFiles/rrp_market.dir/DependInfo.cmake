
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/market/auction.cpp" "src/CMakeFiles/rrp_market.dir/market/auction.cpp.o" "gcc" "src/CMakeFiles/rrp_market.dir/market/auction.cpp.o.d"
  "/root/repo/src/market/cost_model.cpp" "src/CMakeFiles/rrp_market.dir/market/cost_model.cpp.o" "gcc" "src/CMakeFiles/rrp_market.dir/market/cost_model.cpp.o.d"
  "/root/repo/src/market/instance_types.cpp" "src/CMakeFiles/rrp_market.dir/market/instance_types.cpp.o" "gcc" "src/CMakeFiles/rrp_market.dir/market/instance_types.cpp.o.d"
  "/root/repo/src/market/spot_trace.cpp" "src/CMakeFiles/rrp_market.dir/market/spot_trace.cpp.o" "gcc" "src/CMakeFiles/rrp_market.dir/market/spot_trace.cpp.o.d"
  "/root/repo/src/market/trace_generator.cpp" "src/CMakeFiles/rrp_market.dir/market/trace_generator.cpp.o" "gcc" "src/CMakeFiles/rrp_market.dir/market/trace_generator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rrp_ts.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rrp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
