# Empty compiler generated dependencies file for rrp_market.
# This may be replaced when dependencies are built.
