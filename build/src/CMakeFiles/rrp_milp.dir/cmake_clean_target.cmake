file(REMOVE_RECURSE
  "librrp_milp.a"
)
