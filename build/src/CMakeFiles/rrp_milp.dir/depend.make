# Empty dependencies file for rrp_milp.
# This may be replaced when dependencies are built.
