file(REMOVE_RECURSE
  "CMakeFiles/rrp_milp.dir/milp/branch_and_bound.cpp.o"
  "CMakeFiles/rrp_milp.dir/milp/branch_and_bound.cpp.o.d"
  "CMakeFiles/rrp_milp.dir/milp/expr.cpp.o"
  "CMakeFiles/rrp_milp.dir/milp/expr.cpp.o.d"
  "CMakeFiles/rrp_milp.dir/milp/model.cpp.o"
  "CMakeFiles/rrp_milp.dir/milp/model.cpp.o.d"
  "librrp_milp.a"
  "librrp_milp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrp_milp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
