file(REMOVE_RECURSE
  "librrp_core.a"
)
