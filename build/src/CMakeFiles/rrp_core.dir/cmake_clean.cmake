file(REMOVE_RECURSE
  "CMakeFiles/rrp_core.dir/core/demand.cpp.o"
  "CMakeFiles/rrp_core.dir/core/demand.cpp.o.d"
  "CMakeFiles/rrp_core.dir/core/drrp.cpp.o"
  "CMakeFiles/rrp_core.dir/core/drrp.cpp.o.d"
  "CMakeFiles/rrp_core.dir/core/evaluation.cpp.o"
  "CMakeFiles/rrp_core.dir/core/evaluation.cpp.o.d"
  "CMakeFiles/rrp_core.dir/core/fleet.cpp.o"
  "CMakeFiles/rrp_core.dir/core/fleet.cpp.o.d"
  "CMakeFiles/rrp_core.dir/core/markov_prices.cpp.o"
  "CMakeFiles/rrp_core.dir/core/markov_prices.cpp.o.d"
  "CMakeFiles/rrp_core.dir/core/policies.cpp.o"
  "CMakeFiles/rrp_core.dir/core/policies.cpp.o.d"
  "CMakeFiles/rrp_core.dir/core/price_distribution.cpp.o"
  "CMakeFiles/rrp_core.dir/core/price_distribution.cpp.o.d"
  "CMakeFiles/rrp_core.dir/core/rolling_horizon.cpp.o"
  "CMakeFiles/rrp_core.dir/core/rolling_horizon.cpp.o.d"
  "CMakeFiles/rrp_core.dir/core/scenario_tree.cpp.o"
  "CMakeFiles/rrp_core.dir/core/scenario_tree.cpp.o.d"
  "CMakeFiles/rrp_core.dir/core/srrp.cpp.o"
  "CMakeFiles/rrp_core.dir/core/srrp.cpp.o.d"
  "CMakeFiles/rrp_core.dir/core/srrp_dp.cpp.o"
  "CMakeFiles/rrp_core.dir/core/srrp_dp.cpp.o.d"
  "CMakeFiles/rrp_core.dir/core/wagner_whitin.cpp.o"
  "CMakeFiles/rrp_core.dir/core/wagner_whitin.cpp.o.d"
  "librrp_core.a"
  "librrp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
