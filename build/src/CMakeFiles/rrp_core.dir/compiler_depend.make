# Empty compiler generated dependencies file for rrp_core.
# This may be replaced when dependencies are built.
