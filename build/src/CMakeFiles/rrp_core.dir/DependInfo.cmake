
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/demand.cpp" "src/CMakeFiles/rrp_core.dir/core/demand.cpp.o" "gcc" "src/CMakeFiles/rrp_core.dir/core/demand.cpp.o.d"
  "/root/repo/src/core/drrp.cpp" "src/CMakeFiles/rrp_core.dir/core/drrp.cpp.o" "gcc" "src/CMakeFiles/rrp_core.dir/core/drrp.cpp.o.d"
  "/root/repo/src/core/evaluation.cpp" "src/CMakeFiles/rrp_core.dir/core/evaluation.cpp.o" "gcc" "src/CMakeFiles/rrp_core.dir/core/evaluation.cpp.o.d"
  "/root/repo/src/core/fleet.cpp" "src/CMakeFiles/rrp_core.dir/core/fleet.cpp.o" "gcc" "src/CMakeFiles/rrp_core.dir/core/fleet.cpp.o.d"
  "/root/repo/src/core/markov_prices.cpp" "src/CMakeFiles/rrp_core.dir/core/markov_prices.cpp.o" "gcc" "src/CMakeFiles/rrp_core.dir/core/markov_prices.cpp.o.d"
  "/root/repo/src/core/policies.cpp" "src/CMakeFiles/rrp_core.dir/core/policies.cpp.o" "gcc" "src/CMakeFiles/rrp_core.dir/core/policies.cpp.o.d"
  "/root/repo/src/core/price_distribution.cpp" "src/CMakeFiles/rrp_core.dir/core/price_distribution.cpp.o" "gcc" "src/CMakeFiles/rrp_core.dir/core/price_distribution.cpp.o.d"
  "/root/repo/src/core/rolling_horizon.cpp" "src/CMakeFiles/rrp_core.dir/core/rolling_horizon.cpp.o" "gcc" "src/CMakeFiles/rrp_core.dir/core/rolling_horizon.cpp.o.d"
  "/root/repo/src/core/scenario_tree.cpp" "src/CMakeFiles/rrp_core.dir/core/scenario_tree.cpp.o" "gcc" "src/CMakeFiles/rrp_core.dir/core/scenario_tree.cpp.o.d"
  "/root/repo/src/core/srrp.cpp" "src/CMakeFiles/rrp_core.dir/core/srrp.cpp.o" "gcc" "src/CMakeFiles/rrp_core.dir/core/srrp.cpp.o.d"
  "/root/repo/src/core/srrp_dp.cpp" "src/CMakeFiles/rrp_core.dir/core/srrp_dp.cpp.o" "gcc" "src/CMakeFiles/rrp_core.dir/core/srrp_dp.cpp.o.d"
  "/root/repo/src/core/wagner_whitin.cpp" "src/CMakeFiles/rrp_core.dir/core/wagner_whitin.cpp.o" "gcc" "src/CMakeFiles/rrp_core.dir/core/wagner_whitin.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rrp_milp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rrp_ts.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rrp_market.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rrp_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rrp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
