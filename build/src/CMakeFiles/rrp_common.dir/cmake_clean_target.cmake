file(REMOVE_RECURSE
  "librrp_common.a"
)
