# Empty dependencies file for rrp_common.
# This may be replaced when dependencies are built.
