file(REMOVE_RECURSE
  "CMakeFiles/rrp_common.dir/common/csv.cpp.o"
  "CMakeFiles/rrp_common.dir/common/csv.cpp.o.d"
  "CMakeFiles/rrp_common.dir/common/matrix.cpp.o"
  "CMakeFiles/rrp_common.dir/common/matrix.cpp.o.d"
  "CMakeFiles/rrp_common.dir/common/rng.cpp.o"
  "CMakeFiles/rrp_common.dir/common/rng.cpp.o.d"
  "CMakeFiles/rrp_common.dir/common/special.cpp.o"
  "CMakeFiles/rrp_common.dir/common/special.cpp.o.d"
  "CMakeFiles/rrp_common.dir/common/stats.cpp.o"
  "CMakeFiles/rrp_common.dir/common/stats.cpp.o.d"
  "CMakeFiles/rrp_common.dir/common/table.cpp.o"
  "CMakeFiles/rrp_common.dir/common/table.cpp.o.d"
  "CMakeFiles/rrp_common.dir/common/thread_pool.cpp.o"
  "CMakeFiles/rrp_common.dir/common/thread_pool.cpp.o.d"
  "librrp_common.a"
  "librrp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
