// Classical additive seasonal decomposition (paper Figure 6): the
// series is split into trend (centred moving average), seasonal
// (phase-averaged detrended values, centred to sum to zero) and
// remainder, following R's `decompose()`.
#pragma once

#include <span>
#include <vector>

namespace rrp::ts {

struct Decomposition {
  std::vector<double> trend;     ///< NaN at the edges the MA cannot cover
  std::vector<double> seasonal;  ///< periodic, mean zero over one period
  std::vector<double> remainder; ///< x - trend - seasonal (NaN at edges)
  std::size_t period = 0;

  /// Seasonal profile for one period (seasonal[0..period)).
  std::vector<double> seasonal_profile() const;
};

/// Decomposes `x` with the given seasonal period (>= 2; x must cover at
/// least two full periods).
Decomposition decompose_additive(std::span<const double> x,
                                 std::size_t period);

}  // namespace rrp::ts
