// Basic series transforms: lagged differencing (the "I" in ARIMA, plus
// its seasonal analogue) and inversion for turning differenced-scale
// forecasts back into level forecasts.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace rrp::ts {

/// y_t = x_t - x_{t-lag}; output has size x.size() - lag.
/// Requires lag >= 1 and x.size() > lag.
std::vector<double> difference(std::span<const double> x, std::size_t lag);

/// Applies `times` rounds of lag-`lag` differencing.
std::vector<double> difference(std::span<const double> x, std::size_t lag,
                               std::size_t times);

/// Inverts one round of lag-`lag` differencing: given the last `lag`
/// level values preceding the forecast origin and the differenced-scale
/// continuation, reconstructs the level-scale continuation.
std::vector<double> undifference(std::span<const double> history_tail,
                                 std::span<const double> diffed,
                                 std::size_t lag);

/// Splits x into (head of n_train, remaining tail).
std::pair<std::vector<double>, std::vector<double>> split_at(
    std::span<const double> x, std::size_t n_train);

/// Subtracts the mean; returns (centered series, mean).
std::pair<std::vector<double>, double> center(std::span<const double> x);

}  // namespace rrp::ts
