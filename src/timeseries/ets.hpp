// Additive Holt-Winters exponential smoothing (ETS(A,A,A) family with
// optional trend/seasonal components).
//
// A second, structurally different forecaster next to SARIMA: the paper
// argues ARIMA "retains great flexibility ... and is relatively
// lightweight compared to machine learning techniques"; Holt-Winters is
// the even lighter classical alternative and a useful cross-check that
// the spot series' unpredictability is a property of the data, not of
// one model family.
#pragma once

#include <span>
#include <vector>

#include "timeseries/optimize.hpp"

namespace rrp::ts {

struct EtsOptions {
  bool trend = false;          ///< additive trend component
  std::size_t season = 0;      ///< seasonal period (0 = none)
  /// Fixed smoothing weights; NaN = optimise by SSE via Nelder-Mead.
  double alpha = -1.0;         ///< level weight in (0,1); <0 = optimise
  double beta = -1.0;          ///< trend weight; <0 = optimise
  double gamma = -1.0;         ///< seasonal weight; <0 = optimise
  NelderMeadOptions optimizer;
};

struct EtsModel {
  EtsOptions options;
  double alpha = 0.0, beta = 0.0, gamma = 0.0;
  double level = 0.0;              ///< final smoothed level
  double trend = 0.0;              ///< final trend increment
  std::vector<double> seasonal;    ///< final seasonal state (one period)
  double sse = 0.0;                ///< in-sample one-step SSE
  std::size_t n = 0;
};

/// Fits the smoother on `x` (requires >= 2 full periods when seasonal,
/// >= 4 points otherwise).
EtsModel fit_ets(std::span<const double> x, const EtsOptions& options = {});

/// h-step-ahead forecasts from the fitted terminal state.
std::vector<double> forecast(const EtsModel& model, std::size_t h);

}  // namespace rrp::ts
