#include "timeseries/arima.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/special.hpp"
#include "common/stats.hpp"
#include "obs/obs.hpp"
#include "timeseries/acf.hpp"
#include "timeseries/diagnostics.hpp"
#include "timeseries/series.hpp"

namespace rrp::ts {

namespace {

/// Multiplies two lag polynomials given as coefficient arrays with
/// c[0] = 1 implied at index 0 of each input (inputs include index 0).
std::vector<double> poly_multiply(std::span<const double> a,
                                  std::span<const double> b) {
  std::vector<double> out(a.size() + b.size() - 1, 0.0);
  for (std::size_t i = 0; i < a.size(); ++i)
    for (std::size_t j = 0; j < b.size(); ++j) out[i + j] += a[i] * b[j];
  return out;
}

/// Builds the polynomial 1 + sign * sum_k c_k B^{k*step}.
std::vector<double> lag_poly(std::span<const double> coeffs, double sign,
                             std::size_t step) {
  std::vector<double> poly(coeffs.size() * step + 1, 0.0);
  poly[0] = 1.0;
  for (std::size_t k = 0; k < coeffs.size(); ++k)
    poly[(k + 1) * step] = sign * coeffs[k];
  return poly;
}

/// Maps unconstrained optimiser parameters to coefficients of a
/// stationary AR polynomial via tanh + Durbin-Levinson.
std::vector<double> constrain_ar(std::span<const double> raw) {
  // tanh rounds to exactly +-1.0 for |raw| >~ 19, which pacf_to_ar
  // rejects; warm starts seeded near the stationarity boundary can push
  // the optimiser there, so keep the partials strictly inside (-1, 1).
  constexpr double kEdge = 1.0 - 1e-9;
  std::vector<double> partial(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i)
    partial[i] = std::clamp(std::tanh(raw[i]), -kEdge, kEdge);
  return pacf_to_ar(partial);
}

/// Inverse of the fitter's `unpack`: the unconstrained optimiser vector
/// that maps back to (the stationary projection of) the model's
/// coefficients.  Seeds warm-started refits at the incumbent.
std::vector<double> raw_parameters(const SarimaModel& m) {
  std::vector<double> raw;
  auto append = [&raw](std::span<const double> coeffs, bool negate) {
    std::vector<double> c(coeffs.begin(), coeffs.end());
    if (negate)
      for (double& v : c) v = -v;
    const std::vector<double> partial = ar_to_pacf(c);
    for (double p : partial) raw.push_back(std::atanh(p));
  };
  append(m.phi, false);
  append(m.theta, true);  // MA went through the negated AR map
  append(m.sphi, false);
  append(m.stheta, true);
  if (m.has_mean) raw.push_back(m.mean);
  return raw;
}

}  // namespace

std::size_t SarimaModel::num_parameters() const {
  return order.num_coefficients() + (has_mean ? 1 : 0) + 1;  // + sigma^2
}

std::vector<double> expand_ar(std::span<const double> phi,
                              std::span<const double> sphi, std::size_t s) {
  // (1 - sum phi B)(1 - sum sphi B^s) = sum c_l B^l with c_0 = 1; the
  // recursion coefficient on lag l is -c_l.
  const auto nonseasonal = lag_poly(phi, -1.0, 1);
  const auto seasonal = lag_poly(sphi, -1.0, std::max<std::size_t>(s, 1));
  const auto prod = poly_multiply(nonseasonal, seasonal);
  std::vector<double> out(prod.size() - 1);
  for (std::size_t l = 1; l < prod.size(); ++l) out[l - 1] = -prod[l];
  return out;
}

std::vector<double> expand_ma(std::span<const double> theta,
                              std::span<const double> stheta, std::size_t s) {
  const auto nonseasonal = lag_poly(theta, 1.0, 1);
  const auto seasonal = lag_poly(stheta, 1.0, std::max<std::size_t>(s, 1));
  const auto prod = poly_multiply(nonseasonal, seasonal);
  std::vector<double> out(prod.size() - 1);
  for (std::size_t l = 1; l < prod.size(); ++l) out[l - 1] = prod[l];
  return out;
}

std::vector<double> apply_differencing(std::span<const double> x,
                                       const SarimaOrder& order) {
  std::vector<double> w(x.begin(), x.end());
  if (order.d > 0) w = difference(w, 1, order.d);
  if (order.D > 0) {
    RRP_EXPECTS(order.s >= 2);
    w = difference(w, order.s, order.D);
  }
  return w;
}

std::vector<double> css_residuals(std::span<const double> z,
                                  std::span<const double> ar_full,
                                  std::span<const double> ma_full) {
  std::vector<double> e(z.size(), 0.0);
  for (std::size_t t = 0; t < z.size(); ++t) {
    double pred = 0.0;
    for (std::size_t l = 1; l <= ar_full.size(); ++l) {
      if (t < l) break;
      pred += ar_full[l - 1] * z[t - l];
    }
    for (std::size_t l = 1; l <= ma_full.size(); ++l) {
      if (t < l) break;
      pred += ma_full[l - 1] * e[t - l];
    }
    e[t] = z[t] - pred;
  }
  return e;
}

namespace {

/// Shared fit body.  `warm_start` empty means the classic cold start
/// (zero coefficients, sample mean); otherwise it must match the
/// parameter-vector layout and the optimiser is seeded there.
SarimaModel fit_sarima_impl(std::span<const double> x,
                            const SarimaOrder& order,
                            const SarimaFitOptions& options,
                            std::span<const double> warm_start) {
  RRP_TRACE_SPAN("ts.fit_sarima");
  RRP_TRACE_ARG("n", x.size());
  RRP_EXPECTS(!order.has_seasonal() || order.s >= 2);
  const std::vector<double> w = apply_differencing(x, order);
  const std::size_t max_ar_lag =
      order.p + order.P * std::max<std::size_t>(order.s, 1);
  const std::size_t max_ma_lag =
      order.q + order.Q * std::max<std::size_t>(order.s, 1);
  RRP_EXPECTS(w.size() > std::max(max_ar_lag, max_ma_lag) + 2);

  const bool include_mean =
      options.mean == SarimaFitOptions::Mean::Include ||
      (options.mean == SarimaFitOptions::Mean::Auto &&
       order.d + order.D == 0);

  const std::size_t np = order.p, nq = order.q, nP = order.P, nQ = order.Q;
  const std::size_t n_coef = np + nq + nP + nQ;
  const double w_mean = rrp::stats::mean(w);

  // Parameter vector layout: [phi raw | theta raw | sphi raw | stheta
  // raw | mean (if included)].
  struct Unpacked {
    std::vector<double> phi, theta, sphi, stheta;
    double mean;
  };
  auto unpack = [&](const std::vector<double>& u) {
    Unpacked r;
    std::size_t k = 0;
    r.phi = constrain_ar({u.data() + k, np});
    k += np;
    // Invertible MA: (1 + sum theta B) stable iff (1 - sum(-theta) B)
    // stationary, so constrain through the AR map and negate.
    r.theta = constrain_ar({u.data() + k, nq});
    for (double& v : r.theta) v = -v;
    k += nq;
    r.sphi = constrain_ar({u.data() + k, nP});
    k += nP;
    r.stheta = constrain_ar({u.data() + k, nQ});
    for (double& v : r.stheta) v = -v;
    k += nQ;
    r.mean = include_mean ? u[k] : 0.0;
    return r;
  };

  auto css_of = [&](const std::vector<double>& u) {
    const Unpacked r = unpack(u);
    const auto ar_full = expand_ar(r.phi, r.sphi, order.s);
    const auto ma_full = expand_ma(r.theta, r.stheta, order.s);
    std::vector<double> z(w.size());
    for (std::size_t t = 0; t < w.size(); ++t) z[t] = w[t] - r.mean;
    const auto e = css_residuals(z, ar_full, ma_full);
    // Skip the warm-up residuals that condition on unknown pre-sample
    // values.
    double sse = 0.0;
    const std::size_t start = std::max(ar_full.size(), ma_full.size());
    for (std::size_t t = start; t < e.size(); ++t) sse += e[t] * e[t];
    return sse;
  };

  std::vector<double> start(n_coef + (include_mean ? 1 : 0), 0.0);
  if (include_mean) start.back() = w_mean;
  if (!warm_start.empty()) {
    RRP_EXPECTS(warm_start.size() == start.size());
    start.assign(warm_start.begin(), warm_start.end());
  }

  NelderMeadResult opt_result;
  if (start.empty()) {
    opt_result.x = {};
    opt_result.value = css_of({});
    opt_result.converged = true;
  } else {
    NelderMeadOptions nm = options.optimizer;
    // The mean lives on the data scale; everything else is O(1).
    opt_result = nelder_mead(css_of, start, nm);
  }
  RRP_COUNTER_ADD("rrp.ts.sarima_fits", 1);
  RRP_COUNTER_ADD("rrp.ts.sarima_fit_evaluations", opt_result.evaluations);
  RRP_TRACE_ARG("evaluations", opt_result.evaluations);

  const Unpacked fitted = unpack(opt_result.x);
  SarimaModel model;
  model.order = order;
  model.phi = fitted.phi;
  model.theta = fitted.theta;
  model.sphi = fitted.sphi;
  model.stheta = fitted.stheta;
  model.ar_full = expand_ar(fitted.phi, fitted.sphi, order.s);
  model.ma_full = expand_ma(fitted.theta, fitted.stheta, order.s);
  model.mean = fitted.mean;
  model.has_mean = include_mean;
  model.css = opt_result.value;
  const std::size_t start_t =
      std::max(model.ar_full.size(), model.ma_full.size());
  model.n_effective = w.size() - start_t;
  RRP_ENSURES(model.n_effective > 0);
  const double n = static_cast<double>(model.n_effective);
  model.sigma2 = std::max(model.css / n, 1e-300);
  model.log_likelihood =
      -0.5 * n * (std::log(2.0 * M_PI * model.sigma2) + 1.0);
  const double k = static_cast<double>(model.num_parameters());
  model.aic = -2.0 * model.log_likelihood + 2.0 * k;
  model.bic = -2.0 * model.log_likelihood + k * std::log(n);
  model.aicc = n - k - 1.0 > 0.0
                   ? model.aic + 2.0 * k * (k + 1.0) / (n - k - 1.0)
                   : std::numeric_limits<double>::infinity();
  return model;
}

}  // namespace

SarimaModel fit_sarima(std::span<const double> x, const SarimaOrder& order,
                       const SarimaFitOptions& options) {
  return fit_sarima_impl(x, order, options, {});
}

const char* to_string(SarimaRefitAction action) {
  switch (action) {
    case SarimaRefitAction::Kept:
      return "kept";
    case SarimaRefitAction::WarmRefit:
      return "warm_refit";
    case SarimaRefitAction::ScratchRefit:
      return "scratch_refit";
  }
  return "unknown";
}

SarimaRefitResult refit_sarima(const SarimaModel& incumbent,
                               std::span<const double> x,
                               const SarimaRefitOptions& options) {
  RRP_TRACE_SPAN("ts.warm_refit");
  RRP_TRACE_ARG("n", x.size());
  RRP_EXPECTS(incumbent.sigma2 > 0.0);
  RRP_EXPECTS(options.warm_variance_ratio >= 1.0);
  RRP_EXPECTS(options.scratch_variance_ratio >= options.warm_variance_ratio);
  const SarimaOrder& order = incumbent.order;

  // Diagnostic window: clamp the configured tail up so the order stays
  // estimable after differencing, and to the available history.
  const std::size_t s1 = std::max<std::size_t>(order.s, 1);
  const std::size_t max_lag =
      std::max(order.p + order.P * s1, order.q + order.Q * s1);
  const std::size_t diff_len = order.d + order.D * order.s;
  const std::size_t min_window =
      diff_len + std::max(max_lag + 3, 2 * options.ljung_box_lags + 2);
  RRP_EXPECTS(x.size() >= min_window);
  const std::size_t window =
      std::min(x.size(), std::max(options.diagnostic_window, min_window));
  const std::span<const double> tail = x.subspan(x.size() - window);

  // Diagnose the incumbent on the window: one CSS pass, no refit yet.
  const std::vector<double> w = apply_differencing(tail, order);
  std::vector<double> z(w.size());
  for (std::size_t t = 0; t < w.size(); ++t) z[t] = w[t] - incumbent.mean;
  const auto e = css_residuals(z, incumbent.ar_full, incumbent.ma_full);
  const std::size_t start =
      std::max(incumbent.ar_full.size(), incumbent.ma_full.size());
  RRP_EXPECTS(e.size() > start);
  double sse = 0.0;
  for (std::size_t t = start; t < e.size(); ++t) sse += e[t] * e[t];
  const std::size_t n_eff = e.size() - start;

  SarimaRefitResult out;
  out.variance_ratio =
      (sse / static_cast<double>(n_eff)) / incumbent.sigma2;
  const std::span<const double> resid(e.data() + start, n_eff);
  const std::size_t fitted = order.num_coefficients();
  std::size_t lags = std::max(options.ljung_box_lags, fitted + 1);
  if (n_eff > lags + 1) {
    try {
      out.ljung_box_p = ljung_box(resid, lags, fitted).p_value;
    } catch (const Error&) {
      // Degenerate residuals (e.g. zero variance on a flat regime):
      // nothing left to whiten, treat as passing.
      out.ljung_box_p = 1.0;
    }
  }

  if (out.variance_ratio <= options.warm_variance_ratio &&
      out.ljung_box_p >= options.ljung_box_alpha) {
    out.action = SarimaRefitAction::Kept;
    out.model = incumbent;
    RRP_COUNTER_ADD("rrp.ts.refits_kept", 1);
    RRP_TRACE_ARG("action", static_cast<int>(out.action));
    return out;
  }

  // Mean handling must follow the incumbent, or the warm-start vector
  // would not match the parameter layout.
  SarimaFitOptions refit_opts = options.scratch;
  refit_opts.mean = incumbent.has_mean ? SarimaFitOptions::Mean::Include
                                       : SarimaFitOptions::Mean::Exclude;
  if (out.variance_ratio <= options.scratch_variance_ratio) {
    refit_opts.optimizer.max_evaluations = options.warm_max_evaluations;
    out.action = SarimaRefitAction::WarmRefit;
    out.model =
        fit_sarima_impl(tail, order, refit_opts, raw_parameters(incumbent));
    RRP_COUNTER_ADD("rrp.ts.warm_refits", 1);
  } else {
    out.action = SarimaRefitAction::ScratchRefit;
    out.model = fit_sarima_impl(tail, order, refit_opts, {});
    RRP_COUNTER_ADD("rrp.ts.scratch_refits", 1);
  }
  RRP_TRACE_ARG("action", static_cast<int>(out.action));
  return out;
}

std::vector<double> forecast(const SarimaModel& model,
                             std::span<const double> x, std::size_t h) {
  RRP_EXPECTS(h >= 1);
  const SarimaOrder& order = model.order;

  // Record intermediate series so each differencing layer can be
  // inverted in turn: first the d first-differences, then the D
  // seasonal differences.
  std::vector<std::vector<double>> layers;
  layers.emplace_back(x.begin(), x.end());
  for (std::size_t i = 0; i < order.d; ++i)
    layers.push_back(difference(layers.back(), 1));
  for (std::size_t i = 0; i < order.D; ++i)
    layers.push_back(difference(layers.back(), order.s));

  const std::vector<double>& w = layers.back();
  std::vector<double> z(w.size());
  for (std::size_t t = 0; t < w.size(); ++t) z[t] = w[t] - model.mean;
  const auto e = css_residuals(z, model.ar_full, model.ma_full);

  // Recursive point forecasts on the differenced scale; future
  // innovations are zero.
  std::vector<double> zext = z;
  std::vector<double> eext = e;
  for (std::size_t step = 0; step < h; ++step) {
    const std::size_t t = zext.size();
    double pred = 0.0;
    for (std::size_t l = 1; l <= model.ar_full.size(); ++l) {
      if (t < l) break;
      pred += model.ar_full[l - 1] * zext[t - l];
    }
    for (std::size_t l = 1; l <= model.ma_full.size(); ++l) {
      if (t < l) break;
      pred += model.ma_full[l - 1] * eext[t - l];
    }
    zext.push_back(pred);
    eext.push_back(0.0);
  }
  std::vector<double> w_hat(zext.end() - static_cast<std::ptrdiff_t>(h),
                            zext.end());
  for (double& v : w_hat) v += model.mean;

  // Invert the differencing, deepest layer first.
  std::vector<double> cur = std::move(w_hat);
  for (std::size_t i = 0; i < order.D; ++i) {
    const auto& base = layers[layers.size() - 2 - i];
    cur = undifference(base, cur, order.s);
  }
  for (std::size_t i = 0; i < order.d; ++i) {
    const auto& base = layers[order.d - 1 - i];
    cur = undifference(base, cur, 1);
  }
  RRP_ENSURES(cur.size() == h);
  return cur;
}

std::vector<double> mean_forecast(std::span<const double> x, std::size_t h) {
  return std::vector<double>(h, rrp::stats::mean(x));
}

std::vector<double> psi_weights(const SarimaModel& model, std::size_t h) {
  RRP_EXPECTS(h >= 1);
  // Full autoregressive polynomial: phi(B) * Phi(B^s) * (1-B)^d *
  // (1-B^s)^D, as a coefficient array with index = lag.
  std::vector<double> ar_poly(model.ar_full.size() + 1, 0.0);
  ar_poly[0] = 1.0;
  for (std::size_t l = 1; l < ar_poly.size(); ++l)
    ar_poly[l] = -model.ar_full[l - 1];
  const std::vector<double> diff1 = {1.0, -1.0};
  for (std::size_t i = 0; i < model.order.d; ++i)
    ar_poly = poly_multiply(ar_poly, diff1);
  if (model.order.D > 0) {
    std::vector<double> diffs(model.order.s + 1, 0.0);
    diffs[0] = 1.0;
    diffs[model.order.s] = -1.0;
    for (std::size_t i = 0; i < model.order.D; ++i)
      ar_poly = poly_multiply(ar_poly, diffs);
  }
  // Recursion coefficients a_l = -c_l and MA coefficients m_l.
  std::vector<double> psi(h, 0.0);
  psi[0] = 1.0;
  for (std::size_t j = 1; j < h; ++j) {
    double v = j <= model.ma_full.size() ? model.ma_full[j - 1] : 0.0;
    for (std::size_t l = 1; l <= j && l < ar_poly.size(); ++l)
      v += -ar_poly[l] * psi[j - l];
    psi[j] = v;
  }
  return psi;
}

ForecastInterval forecast_interval(const SarimaModel& model,
                                   std::span<const double> x, std::size_t h,
                                   double level) {
  RRP_EXPECTS(level > 0.0 && level < 1.0);
  ForecastInterval out;
  out.level = level;
  out.point = forecast(model, x, h);
  const auto psi = psi_weights(model, h);
  const double z = special::normal_quantile(0.5 + level / 2.0);
  out.lower.resize(h);
  out.upper.resize(h);
  double var = 0.0;
  for (std::size_t step = 0; step < h; ++step) {
    var += psi[step] * psi[step] * model.sigma2;
    const double half_width = z * std::sqrt(var);
    out.lower[step] = out.point[step] - half_width;
    out.upper[step] = out.point[step] + half_width;
  }
  return out;
}

}  // namespace rrp::ts
