// Derivative-free minimisation (Nelder-Mead) used to fit SARIMA models
// by conditional sum-of-squares.  Kept generic: any callable on a
// parameter vector can be minimised.
#pragma once

#include <functional>
#include <vector>

namespace rrp::ts {

struct NelderMeadOptions {
  std::size_t max_evaluations = 20000;
  double initial_step = 0.1;     ///< simplex edge relative to start point
  double tolerance = 1e-10;      ///< spread of simplex values at convergence
  double tolerance_x = 1e-7;     ///< simplex diameter at convergence
  double reflection = 1.0;
  double expansion = 2.0;
  double contraction = 0.5;
  double shrink = 0.5;
};

struct NelderMeadResult {
  std::vector<double> x;
  double value = 0.0;
  std::size_t evaluations = 0;
  bool converged = false;
};

/// Minimises `fn` starting from `start`.  The objective may return
/// +infinity to reject a region (used for penalised constraints).
NelderMeadResult nelder_mead(
    const std::function<double(const std::vector<double>&)>& fn,
    std::vector<double> start, const NelderMeadOptions& options = {});

}  // namespace rrp::ts
