#include "timeseries/ets.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace rrp::ts {

namespace {

/// One full smoothing pass; returns the SSE of one-step errors and, via
/// out-params, the terminal state.
double smoothing_pass(std::span<const double> x, const EtsOptions& opt,
                      double alpha, double beta, double gamma,
                      double* level_out, double* trend_out,
                      std::vector<double>* seasonal_out) {
  const std::size_t s = opt.season;
  double level, trend = 0.0;
  std::vector<double> seasonal;

  std::size_t start;
  if (s >= 2) {
    // Initialise from the first period: level = its mean, seasonal =
    // deviations from it.
    double mean0 = 0.0;
    for (std::size_t i = 0; i < s; ++i) mean0 += x[i];
    mean0 /= static_cast<double>(s);
    level = mean0;
    seasonal.resize(s);
    for (std::size_t i = 0; i < s; ++i) seasonal[i] = x[i] - mean0;
    if (opt.trend) {
      double mean1 = 0.0;
      for (std::size_t i = s; i < 2 * s && i < x.size(); ++i) mean1 += x[i];
      mean1 /= static_cast<double>(s);
      trend = (mean1 - mean0) / static_cast<double>(s);
    }
    start = s;
  } else {
    level = x[0];
    if (opt.trend) trend = x[1] - x[0];
    start = opt.trend ? 2 : 1;
  }

  double sse = 0.0;
  for (std::size_t t = start; t < x.size(); ++t) {
    const double season_term = s >= 2 ? seasonal[t % s] : 0.0;
    const double fitted = level + (opt.trend ? trend : 0.0) + season_term;
    const double err = x[t] - fitted;
    sse += err * err;
    const double prev_level = level;
    level = alpha * (x[t] - season_term) +
            (1.0 - alpha) * (level + (opt.trend ? trend : 0.0));
    if (opt.trend) {
      trend = beta * (level - prev_level) + (1.0 - beta) * trend;
    }
    if (s >= 2) {
      seasonal[t % s] =
          gamma * (x[t] - level) + (1.0 - gamma) * seasonal[t % s];
    }
  }
  if (level_out != nullptr) *level_out = level;
  if (trend_out != nullptr) *trend_out = trend;
  if (seasonal_out != nullptr) *seasonal_out = std::move(seasonal);
  return sse;
}

double squash(double raw) {  // unconstrained -> (0.0001, 0.9999)
  return 0.0001 + 0.9998 / (1.0 + std::exp(-raw));
}

}  // namespace

EtsModel fit_ets(std::span<const double> x, const EtsOptions& opt) {
  if (opt.season >= 1) RRP_EXPECTS(opt.season >= 2);
  if (opt.season >= 2) {
    RRP_EXPECTS(x.size() >= 2 * opt.season + 1);
  } else {
    RRP_EXPECTS(x.size() >= 4);
  }

  // Which weights are free?
  std::vector<int> free_slots;  // 0 = alpha, 1 = beta, 2 = gamma
  if (opt.alpha < 0.0) free_slots.push_back(0);
  if (opt.trend && opt.beta < 0.0) free_slots.push_back(1);
  if (opt.season >= 2 && opt.gamma < 0.0) free_slots.push_back(2);

  auto weights_of = [&](const std::vector<double>& u) {
    double a = opt.alpha >= 0.0 ? opt.alpha : 0.3;
    double b = opt.beta >= 0.0 ? opt.beta : 0.1;
    double g = opt.gamma >= 0.0 ? opt.gamma : 0.1;
    for (std::size_t k = 0; k < free_slots.size(); ++k) {
      const double v = squash(u[k]);
      if (free_slots[k] == 0) a = v;
      if (free_slots[k] == 1) b = v;
      if (free_slots[k] == 2) g = v;
    }
    return std::array<double, 3>{a, b, g};
  };

  std::vector<double> best_u(free_slots.size(), 0.0);
  if (!free_slots.empty()) {
    auto objective = [&](const std::vector<double>& u) {
      const auto w = weights_of(u);
      return smoothing_pass(x, opt, w[0], w[1], w[2], nullptr, nullptr,
                            nullptr);
    };
    NelderMeadOptions nm = opt.optimizer;
    const auto fit = nelder_mead(objective, best_u, nm);
    best_u = fit.x;
  }

  EtsModel model;
  model.options = opt;
  const auto w = weights_of(best_u);
  model.alpha = w[0];
  model.beta = opt.trend ? w[1] : 0.0;
  model.gamma = opt.season >= 2 ? w[2] : 0.0;
  model.n = x.size();
  model.sse = smoothing_pass(x, opt, w[0], w[1], w[2], &model.level,
                             &model.trend, &model.seasonal);
  return model;
}

std::vector<double> forecast(const EtsModel& model, std::size_t h) {
  RRP_EXPECTS(h >= 1);
  std::vector<double> out(h);
  const std::size_t s = model.options.season;
  for (std::size_t step = 0; step < h; ++step) {
    double v = model.level;
    if (model.options.trend)
      v += static_cast<double>(step + 1) * model.trend;
    if (s >= 2) v += model.seasonal[(model.n + step) % s];
    out[step] = v;
  }
  return out;
}

}  // namespace rrp::ts
