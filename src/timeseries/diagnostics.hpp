// Statistical tests used by the predictability study:
//  * Shapiro-Wilk normality test (paper Figure 5 rejects normality of
//    the spot-price distribution) — Royston's AS R94 approximation;
//  * Ljung-Box portmanteau test for residual whiteness;
//  * Jarque-Bera as a cheap second normality opinion.
#pragma once

#include <span>

namespace rrp::ts {

struct TestResult {
  double statistic = 0.0;
  double p_value = 0.0;
};

/// Shapiro-Wilk W test.  Requires 3 <= n <= 5000.  Small p-values
/// reject normality.
TestResult shapiro_wilk(std::span<const double> x);

/// Ljung-Box test of no autocorrelation up to `lags`; `fitted_params`
/// adjusts the degrees of freedom when applied to model residuals.
TestResult ljung_box(std::span<const double> x, std::size_t lags,
                     std::size_t fitted_params = 0);

/// Jarque-Bera normality test (chi-square with 2 df).
TestResult jarque_bera(std::span<const double> x);

/// KPSS test of level stationarity (Kwiatkowski et al. 1992), used by
/// the paper's step "we verify that our test series is statistically
/// stationary ... and does not require further differencing".  The
/// NULL is stationarity, so LARGE statistics / small p-values indicate
/// a unit root.  The long-run variance uses a Bartlett kernel with the
/// Schwert bandwidth; the p-value is interpolated from the published
/// critical values (upper tail, clamped to [0.01, 0.10] outside the
/// table).
TestResult kpss_level(std::span<const double> x);

/// Convenience: true when KPSS cannot reject stationarity at the given
/// significance level (default 5%).
bool is_level_stationary(std::span<const double> x, double alpha = 0.05);

}  // namespace rrp::ts
