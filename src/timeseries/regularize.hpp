// Conversion of irregularly spaced spot-price ticks into an equally
// spaced hourly series (paper Section IV-A2): "At the start of each
// hour, the spot price is set to be the most recent updated price in
// the last hour.  If no update appears in the last hour, the spot price
// is considered unchanged."  Also provides the daily update-frequency
// view of Figure 4.
#pragma once

#include <vector>

namespace rrp::ts {

/// One spot-price update at an arbitrary time (in hours since epoch).
struct Tick {
  double time_hours = 0.0;
  double value = 0.0;
};

/// Converts ticks to an hourly last-observation-carried-forward series
/// covering hour indices [first_hour, last_hour).  Ticks must be sorted
/// by time; at least one tick at or before first_hour must exist to
/// seed the carry-forward.
std::vector<double> hourly_locf(const std::vector<Tick>& ticks,
                                long first_hour, long last_hour);

/// Number of updates falling into each day ([day*24, (day+1)*24)),
/// covering days [0, ceil(max_time/24)).  Ticks must be sorted.
std::vector<std::size_t> daily_update_counts(const std::vector<Tick>& ticks);

}  // namespace rrp::ts
