// Automatic SARIMA order selection, mirroring R's forecast::auto.arima
// as used by the paper: a grid search over (p,q)x(P,Q) with the
// differencing orders chosen by simple stationarity heuristics, scored
// by corrected AIC.  The grid is evaluated in parallel.
#pragma once

#include <span>

#include "timeseries/arima.hpp"

namespace rrp::ts {

struct AutoArimaOptions {
  std::size_t max_p = 3, max_q = 3;
  std::size_t max_P = 2, max_Q = 2;
  std::size_t seasonal_period = 0;  ///< 0 disables the seasonal part
  /// Differencing orders; -1 selects automatically via the heuristics.
  int d = -1;
  int D = -1;
  /// Cap on p+q+P+Q, pruning the expensive corner of the grid.
  std::size_t max_total_order = 7;
  enum class Criterion { Aic, Aicc, Bic };
  Criterion criterion = Criterion::Aicc;
  SarimaFitOptions fit;
};

struct AutoArimaResult {
  SarimaModel model;
  std::size_t models_evaluated = 0;
};

/// Chooses the plain differencing order in {0,1,2} by the classic
/// variance heuristic: difference while it reduces the sample variance.
std::size_t choose_d(std::span<const double> x);

/// Chooses the seasonal differencing order in {0,1}: difference when
/// the lag-s autocorrelation exceeds 0.9 (strong stable seasonality).
std::size_t choose_D(std::span<const double> x, std::size_t s);

/// Fits every order in the grid and returns the best model by the
/// selected criterion.
AutoArimaResult auto_arima(std::span<const double> x,
                           const AutoArimaOptions& options = {});

struct AutoArimaRefitResult {
  SarimaModel model;
  std::size_t models_evaluated = 0;  ///< 0 when the order search was skipped
  bool order_search_skipped = false;
  SarimaRefitAction action = SarimaRefitAction::Kept;
};

/// Incremental counterpart of auto_arima (ISSUE 10): while the
/// incumbent order still passes the refit diagnostics (Kept or
/// WarmRefit from refit_sarima), the grid search is skipped entirely
/// and only the coefficients are maintained.  Only severe drift
/// (ScratchRefit) re-runs the full order search.
AutoArimaRefitResult auto_arima_refit(const SarimaModel& incumbent,
                                      std::span<const double> x,
                                      const SarimaRefitOptions& refit,
                                      const AutoArimaOptions& search = {});

}  // namespace rrp::ts
