// Autocorrelation and partial autocorrelation functions with 95%
// confidence bands (paper Figure 7), and the Durbin-Levinson recursion
// shared with stationarity-constrained SARIMA parametrisation.
#pragma once

#include <span>
#include <vector>

namespace rrp::ts {

/// Sample ACF at lags 0..max_lag (r_0 = 1), using the standard biased
/// normalisation (dividing by n, as R's acf does).
std::vector<double> acf(std::span<const double> x, std::size_t max_lag);

/// Sample PACF at lags 1..max_lag via Durbin-Levinson on the ACF.
std::vector<double> pacf(std::span<const double> x, std::size_t max_lag);

/// The +/- band outside which a sample autocorrelation is significant
/// at 95% under the white-noise null: 1.96 / sqrt(n).
double white_noise_band(std::size_t n);

/// Durbin-Levinson: converts partial autocorrelations (|r_i| < 1) into
/// AR coefficients of a guaranteed-stationary AR(k) process.  Used by
/// the SARIMA fitter to keep the optimiser inside the stationary region.
std::vector<double> pacf_to_ar(std::span<const double> partial);

/// Inverse Durbin-Levinson: recovers the partial autocorrelations from
/// AR(k) coefficients, so pacf_to_ar(ar_to_pacf(phi)) == phi for any
/// stationary phi.  Partials of a (numerically) non-stationary input
/// are clamped just inside (-1, 1), making the round trip a projection
/// onto the stationary region.  Seeds warm-started SARIMA refits
/// (refit_sarima) at the incumbent parameter vector.
std::vector<double> ar_to_pacf(std::span<const double> ar);

}  // namespace rrp::ts
