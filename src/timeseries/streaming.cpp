#include "timeseries/streaming.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "obs/obs.hpp"

namespace rrp::ts {

namespace {

bool usable(double value) { return std::isfinite(value) && value > 0.0; }

}  // namespace

std::vector<Tick> sanitize_ticks(const std::vector<Tick>& ticks) {
  for (std::size_t i = 1; i < ticks.size(); ++i)
    RRP_EXPECTS(ticks[i - 1].time_hours <= ticks[i].time_hours);
  std::vector<Tick> out;
  out.reserve(ticks.size());
  for (const Tick& t : ticks)
    if (usable(t.value)) out.push_back(t);
  return out;
}

OnlineRegularizer::OnlineRegularizer(long first_hour)
    : first_hour_(first_hour),
      next_hour_(first_hour),
      last_time_(-std::numeric_limits<double>::infinity()) {}

bool OnlineRegularizer::push(const Tick& tick) {
  RRP_EXPECTS(std::isfinite(tick.time_hours));
  RRP_EXPECTS(tick.time_hours >= last_time_);
  last_time_ = tick.time_hours;
  if (!usable(tick.value)) {
    ++ticks_rejected_;
    return false;
  }
  // A tick for an hour already emitted would rewrite history: the batch
  // path would have consumed it at that hour.
  RRP_EXPECTS(series_.empty() ||
              tick.time_hours > static_cast<double>(next_hour_ - 1));
  if (!seeded_) {
    // Same seeding contract as hourly_locf: the first (usable) tick
    // must be at or before the start of the grid.
    RRP_EXPECTS(tick.time_hours <= static_cast<double>(first_hour_));
    seeded_ = true;
  }
  pending_.push_back(tick);
  ++ticks_accepted_;
  return true;
}

void OnlineRegularizer::advance_to(long last_hour) {
  if (last_hour <= next_hour_) return;
  RRP_EXPECTS(seeded_);
  RRP_TRACE_SPAN("ts.online_regularize");
  RRP_TRACE_ARG("hours", last_hour - next_hour_);
  RRP_COUNTER_ADD("rrp.ts.online_regularize_hours",
                  static_cast<std::uint64_t>(last_hour - next_hour_));
  series_.reserve(series_.size() +
                  static_cast<std::size_t>(last_hour - next_hour_));
  if (series_.empty()) current_ = pending_.front().value;
  for (long h = next_hour_; h < last_hour; ++h) {
    // Mirror of the hourly_locf inner loop: the last tick at or before
    // the start of hour h is the price in force.
    while (!pending_.empty() &&
           pending_.front().time_hours <= static_cast<double>(h)) {
      current_ = pending_.front().value;
      pending_.pop_front();
    }
    series_.push_back(current_);
  }
  next_hour_ = last_hour;
}

}  // namespace rrp::ts
