#include "timeseries/auto_arima.hpp"

#include <cmath>
#include <limits>
#include <vector>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "common/sync.hpp"
#include "common/thread_pool.hpp"
#include "obs/obs.hpp"
#include "timeseries/acf.hpp"
#include "timeseries/series.hpp"

namespace rrp::ts {

std::size_t choose_d(std::span<const double> x) {
  RRP_EXPECTS(x.size() >= 8);
  // Difference while the series looks near-integrated (lag-1 sample
  // autocorrelation close to 1).  A plain variance-reduction rule would
  // over-difference any strongly autocorrelated stationary series
  // (differencing reduces variance whenever rho_1 > 1/2).
  constexpr double kUnitRootAcf = 0.9;
  std::vector<double> cur(x.begin(), x.end());
  std::size_t d = 0;
  while (d < 2 && cur.size() >= 4) {
    double r1;
    try {
      r1 = acf(cur, 1)[1];
    } catch (const rrp::Error&) {
      break;  // constant after differencing: definitely stop
    }
    if (r1 < kUnitRootAcf) break;
    cur = difference(cur, 1);
    ++d;
  }
  return d;
}

std::size_t choose_D(std::span<const double> x, std::size_t s) {
  RRP_EXPECTS(s >= 2);
  if (x.size() < 3 * s) return 0;
  const auto r = acf(x, s);
  return std::fabs(r[s]) > 0.9 ? 1 : 0;
}

AutoArimaResult auto_arima(std::span<const double> x,
                           const AutoArimaOptions& options) {
  const std::size_t s = options.seasonal_period;
  const std::size_t d =
      options.d >= 0 ? static_cast<std::size_t>(options.d) : choose_d(x);
  const std::size_t D =
      s >= 2 ? (options.D >= 0 ? static_cast<std::size_t>(options.D)
                               : choose_D(x, s))
             : 0;

  std::vector<SarimaOrder> grid;
  const std::size_t maxP = s >= 2 ? options.max_P : 0;
  const std::size_t maxQ = s >= 2 ? options.max_Q : 0;
  for (std::size_t p = 0; p <= options.max_p; ++p) {
    for (std::size_t q = 0; q <= options.max_q; ++q) {
      for (std::size_t P = 0; P <= maxP; ++P) {
        for (std::size_t Q = 0; Q <= maxQ; ++Q) {
          if (p + q + P + Q == 0) continue;
          if (p + q + P + Q > options.max_total_order) continue;
          SarimaOrder order;
          order.p = p;
          order.d = d;
          order.q = q;
          order.P = P;
          order.D = D;
          order.Q = Q;
          order.s = s;
          grid.push_back(order);
        }
      }
    }
  }
  RRP_EXPECTS(!grid.empty());
  RRP_TRACE_SPAN("ts.auto_arima");
  RRP_TRACE_ARG("candidates", grid.size());
  RRP_COUNTER_ADD("rrp.ts.auto_arima_searches", 1);
  RRP_COUNTER_ADD("rrp.ts.auto_arima_candidates", grid.size());

  std::vector<double> scores(grid.size(),
                             std::numeric_limits<double>::infinity());
  std::vector<SarimaModel> models(grid.size());
  Mutex mu;
  std::size_t evaluated = 0;
  global_pool().parallel_for(grid.size(), [&](std::size_t i) {
    SarimaModel m;
    try {
      m = fit_sarima(x, grid[i], options.fit);
    } catch (const rrp::Error&) {
      return;  // not enough data for this order: skip it
    }
    double score = 0.0;
    switch (options.criterion) {
      case AutoArimaOptions::Criterion::Aic: score = m.aic; break;
      case AutoArimaOptions::Criterion::Aicc: score = m.aicc; break;
      case AutoArimaOptions::Criterion::Bic: score = m.bic; break;
    }
    MutexLock lock(mu);
    scores[i] = score;
    models[i] = std::move(m);
    ++evaluated;
  });

  std::size_t best = grid.size();
  double best_score = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < grid.size(); ++i) {
    if (scores[i] < best_score) {
      best_score = scores[i];
      best = i;
    }
  }
  if (best == grid.size())
    throw NumericalError("auto_arima: no candidate order could be fitted");

  AutoArimaResult result;
  result.model = std::move(models[best]);
  result.models_evaluated = evaluated;
  return result;
}

AutoArimaRefitResult auto_arima_refit(const SarimaModel& incumbent,
                                      std::span<const double> x,
                                      const SarimaRefitOptions& refit,
                                      const AutoArimaOptions& search) {
  SarimaRefitResult maintained = refit_sarima(incumbent, x, refit);
  AutoArimaRefitResult out;
  out.action = maintained.action;
  if (maintained.action != SarimaRefitAction::ScratchRefit) {
    // Incumbent order still explains the new data: keep it, skip the
    // grid entirely.
    out.model = std::move(maintained.model);
    out.order_search_skipped = true;
    RRP_COUNTER_ADD("rrp.ts.auto_arima_searches_skipped", 1);
    return out;
  }
  AutoArimaResult searched = auto_arima(x, search);
  out.model = std::move(searched.model);
  out.models_evaluated = searched.models_evaluated;
  return out;
}

}  // namespace rrp::ts
