#include "timeseries/regularize.hpp"

#include <cmath>

#include "common/error.hpp"

namespace rrp::ts {

std::vector<double> hourly_locf(const std::vector<Tick>& ticks,
                                long first_hour, long last_hour) {
  RRP_EXPECTS(first_hour < last_hour);
  RRP_EXPECTS(!ticks.empty());
  for (std::size_t i = 1; i < ticks.size(); ++i)
    RRP_EXPECTS(ticks[i - 1].time_hours <= ticks[i].time_hours);
  RRP_EXPECTS(ticks.front().time_hours <= static_cast<double>(first_hour));

  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(last_hour - first_hour));
  std::size_t idx = 0;
  double current = ticks.front().value;
  for (long h = first_hour; h < last_hour; ++h) {
    // Consume every tick with time <= start of hour h; the last one seen
    // is the price in force at that decision point.
    while (idx < ticks.size() &&
           ticks[idx].time_hours <= static_cast<double>(h)) {
      current = ticks[idx].value;
      ++idx;
    }
    out.push_back(current);
  }
  return out;
}

std::vector<std::size_t> daily_update_counts(const std::vector<Tick>& ticks) {
  if (ticks.empty()) return {};
  for (std::size_t i = 1; i < ticks.size(); ++i)
    RRP_EXPECTS(ticks[i - 1].time_hours <= ticks[i].time_hours);
  RRP_EXPECTS(ticks.front().time_hours >= 0.0);
  const auto days = static_cast<std::size_t>(
      std::ceil((ticks.back().time_hours + 1e-9) / 24.0));
  std::vector<std::size_t> counts(std::max<std::size_t>(days, 1), 0);
  for (const Tick& t : ticks) {
    auto day = static_cast<std::size_t>(t.time_hours / 24.0);
    if (day >= counts.size()) day = counts.size() - 1;
    ++counts[day];
  }
  return counts;
}

}  // namespace rrp::ts
