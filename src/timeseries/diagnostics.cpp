#include "timeseries/diagnostics.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/special.hpp"
#include "common/stats.hpp"
#include "timeseries/acf.hpp"

namespace rrp::ts {

TestResult shapiro_wilk(std::span<const double> x) {
  // Royston (1995), Applied Statistics algorithm AS R94.
  const std::size_t n = x.size();
  RRP_EXPECTS(n >= 3 && n <= 5000);
  std::vector<double> sorted(x.begin(), x.end());
  std::sort(sorted.begin(), sorted.end());
  RRP_EXPECTS(sorted.back() > sorted.front());  // non-degenerate sample

  const double nd = static_cast<double>(n);

  // Expected normal order statistics (Blom approximation) and their
  // normalised weights.
  std::vector<double> m(n);
  for (std::size_t i = 0; i < n; ++i) {
    m[i] = special::normal_quantile((static_cast<double>(i + 1) - 0.375) /
                                    (nd + 0.25));
  }
  double msq = 0.0;
  for (double v : m) msq += v * v;

  std::vector<double> a(n);
  const double rsn = 1.0 / std::sqrt(nd);
  if (n == 3) {
    a[0] = -std::sqrt(0.5);
    a[1] = 0.0;
    a[2] = std::sqrt(0.5);
  } else {
    const double c_n = m[n - 1] / std::sqrt(msq);
    const double c_n1 = m[n - 2] / std::sqrt(msq);
    // Polynomial corrections for the two extreme weights.
    const double an =
        c_n + 0.221157 * rsn - 0.147981 * std::pow(rsn, 2) -
        2.071190 * std::pow(rsn, 3) + 4.434685 * std::pow(rsn, 4) -
        2.706056 * std::pow(rsn, 5);
    const double an1 =
        c_n1 + 0.042981 * rsn - 0.293762 * std::pow(rsn, 2) -
        1.752461 * std::pow(rsn, 3) + 5.682633 * std::pow(rsn, 4) -
        3.582633 * std::pow(rsn, 5);
    double phi;
    if (n > 5) {
      phi = (msq - 2.0 * m[n - 1] * m[n - 1] - 2.0 * m[n - 2] * m[n - 2]) /
            (1.0 - 2.0 * an * an - 2.0 * an1 * an1);
    } else {
      phi = (msq - 2.0 * m[n - 1] * m[n - 1]) / (1.0 - 2.0 * an * an);
    }
    RRP_ENSURES(phi > 0.0);
    for (std::size_t i = 0; i < n; ++i) a[i] = m[i] / std::sqrt(phi);
    a[n - 1] = an;
    a[0] = -an;
    if (n > 5) {
      a[n - 2] = an1;
      a[1] = -an1;
    }
  }

  const double mean = stats::mean(sorted);
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    num += a[i] * sorted[i];
    den += (sorted[i] - mean) * (sorted[i] - mean);
  }
  const double w = num * num / den;

  TestResult out;
  out.statistic = w;
  if (n == 3) {
    // Exact distribution for n = 3.
    const double pi6 = 1.90985931710274;  // 6/pi
    const double stqr = 1.04719755119660;  // asin(sqrt(3/4))
    out.p_value =
        std::clamp(pi6 * (std::asin(std::sqrt(w)) - stqr), 0.0, 1.0);
    return out;
  }
  const double lw = std::log(1.0 - w);
  double mu, sigma;
  if (n <= 11) {
    const double g = -2.273 + 0.459 * nd;
    mu = 0.5440 - 0.39978 * nd + 0.025054 * nd * nd -
         0.0006714 * nd * nd * nd;
    sigma = std::exp(1.3822 - 0.77857 * nd + 0.062767 * nd * nd -
                     0.0020322 * nd * nd * nd);
    const double z = (-std::log(g - lw) - mu) / sigma;
    out.p_value = 1.0 - special::normal_cdf(z);
  } else {
    const double ln = std::log(nd);
    mu = -1.5861 - 0.31082 * ln - 0.083751 * ln * ln +
         0.0038915 * ln * ln * ln;
    sigma = std::exp(-0.4803 - 0.082676 * ln + 0.0030302 * ln * ln);
    const double z = (lw - mu) / sigma;
    out.p_value = 1.0 - special::normal_cdf(z);
  }
  out.p_value = std::clamp(out.p_value, 0.0, 1.0);
  return out;
}

TestResult ljung_box(std::span<const double> x, std::size_t lags,
                     std::size_t fitted_params) {
  RRP_EXPECTS(lags >= 1);
  RRP_EXPECTS(lags > fitted_params);
  const std::size_t n = x.size();
  RRP_EXPECTS(n > lags + 1);
  const auto r = acf(x, lags);
  double q = 0.0;
  const double nd = static_cast<double>(n);
  for (std::size_t k = 1; k <= lags; ++k) {
    q += r[k] * r[k] / (nd - static_cast<double>(k));
  }
  q *= nd * (nd + 2.0);
  TestResult out;
  out.statistic = q;
  out.p_value = special::chi_square_sf(
      q, static_cast<double>(lags - fitted_params));
  return out;
}

TestResult kpss_level(std::span<const double> x) {
  const std::size_t n = x.size();
  RRP_EXPECTS(n >= 12);
  const double nd = static_cast<double>(n);
  const double mean = stats::mean(x);

  // Partial sums of demeaned observations.
  std::vector<double> e(n), s(n);
  double acc = 0.0;
  for (std::size_t t = 0; t < n; ++t) {
    e[t] = x[t] - mean;
    acc += e[t];
    s[t] = acc;
  }
  double eta = 0.0;
  for (double v : s) eta += v * v;
  eta /= nd * nd;

  // Long-run variance: Bartlett kernel, Schwert bandwidth.
  const auto bandwidth = static_cast<std::size_t>(
      std::floor(4.0 * std::pow(nd / 100.0, 0.25)));
  double lrv = 0.0;
  for (double v : e) lrv += v * v;
  lrv /= nd;
  for (std::size_t lag = 1; lag <= bandwidth; ++lag) {
    double gamma = 0.0;
    for (std::size_t t = lag; t < n; ++t) gamma += e[t] * e[t - lag];
    gamma /= nd;
    const double weight =
        1.0 - static_cast<double>(lag) / static_cast<double>(bandwidth + 1);
    lrv += 2.0 * weight * gamma;
  }
  RRP_ENSURES(lrv > 0.0);

  TestResult out;
  out.statistic = eta / lrv;

  // Level-stationarity critical values (KPSS Table 1).
  static constexpr double kCrit[] = {0.347, 0.463, 0.574, 0.739};
  static constexpr double kAlpha[] = {0.10, 0.05, 0.025, 0.01};
  if (out.statistic <= kCrit[0]) {
    out.p_value = 0.10;  // "at least 10%": stationarity not rejected
  } else if (out.statistic >= kCrit[3]) {
    out.p_value = 0.01;
  } else {
    for (int i = 0; i < 3; ++i) {
      if (out.statistic <= kCrit[i + 1]) {
        const double f =
            (out.statistic - kCrit[i]) / (kCrit[i + 1] - kCrit[i]);
        out.p_value = kAlpha[i] + f * (kAlpha[i + 1] - kAlpha[i]);
        break;
      }
    }
  }
  return out;
}

bool is_level_stationary(std::span<const double> x, double alpha) {
  RRP_EXPECTS(alpha >= 0.01 && alpha <= 0.10);
  return kpss_level(x).p_value > alpha;
}

TestResult jarque_bera(std::span<const double> x) {
  RRP_EXPECTS(x.size() >= 8);
  const double n = static_cast<double>(x.size());
  const double s = stats::skewness(x);
  const double k = stats::excess_kurtosis(x);
  TestResult out;
  out.statistic = n / 6.0 * (s * s + 0.25 * k * k);
  out.p_value = special::chi_square_sf(out.statistic, 2.0);
  return out;
}

}  // namespace rrp::ts
