#include "timeseries/acf.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace rrp::ts {

std::vector<double> acf(std::span<const double> x, std::size_t max_lag) {
  RRP_EXPECTS(x.size() >= 2);
  RRP_EXPECTS(max_lag < x.size());
  const double m = rrp::stats::mean(x);
  const std::size_t n = x.size();
  double c0 = 0.0;
  for (double v : x) c0 += (v - m) * (v - m);
  c0 /= static_cast<double>(n);
  RRP_EXPECTS(c0 > 0.0);
  std::vector<double> r(max_lag + 1, 0.0);
  r[0] = 1.0;
  for (std::size_t k = 1; k <= max_lag; ++k) {
    double ck = 0.0;
    for (std::size_t t = k; t < n; ++t) ck += (x[t] - m) * (x[t - k] - m);
    ck /= static_cast<double>(n);
    r[k] = ck / c0;
  }
  return r;
}

std::vector<double> pacf(std::span<const double> x, std::size_t max_lag) {
  RRP_EXPECTS(max_lag >= 1);
  const std::vector<double> r = acf(x, max_lag);
  // Durbin-Levinson recursion over the autocorrelation sequence.
  std::vector<double> out(max_lag, 0.0);
  std::vector<double> phi(max_lag + 1, 0.0), prev(max_lag + 1, 0.0);
  double v = 1.0;
  for (std::size_t k = 1; k <= max_lag; ++k) {
    double num = r[k];
    for (std::size_t j = 1; j < k; ++j) num -= prev[j] * r[k - j];
    const double a = num / v;
    phi[k] = a;
    for (std::size_t j = 1; j < k; ++j) phi[j] = prev[j] - a * prev[k - j];
    v *= (1.0 - a * a);
    if (v <= 0.0) v = 1e-12;  // numerically degenerate, keep going
    out[k - 1] = a;
    prev = phi;
  }
  return out;
}

double white_noise_band(std::size_t n) {
  RRP_EXPECTS(n >= 2);
  return 1.96 / std::sqrt(static_cast<double>(n));
}

std::vector<double> pacf_to_ar(std::span<const double> partial) {
  for (double r : partial) RRP_EXPECTS(std::fabs(r) < 1.0);
  const std::size_t k = partial.size();
  std::vector<double> phi(k, 0.0), prev(k, 0.0);
  for (std::size_t j = 0; j < k; ++j) {
    const double a = partial[j];
    phi[j] = a;
    for (std::size_t i = 0; i < j; ++i) phi[i] = prev[i] - a * prev[j - 1 - i];
    prev = phi;
  }
  return phi;
}

std::vector<double> ar_to_pacf(std::span<const double> ar) {
  // Runs the Durbin-Levinson step-down: at order j the last coefficient
  // IS the j-th partial, and the order-(j-1) coefficients satisfy
  // prev[i] = (cur[i] + a * cur[j-1-i]) / (1 - a^2).
  const std::size_t k = ar.size();
  std::vector<double> partial(k, 0.0);
  std::vector<double> cur(ar.begin(), ar.end());
  constexpr double kEdge = 1.0 - 1e-9;
  for (std::size_t j = k; j > 0; --j) {
    double a = cur[j - 1];
    if (!(std::fabs(a) < kEdge)) a = std::copysign(kEdge, a);
    partial[j - 1] = a;
    const double denom = std::max(1.0 - a * a, 1e-12);
    std::vector<double> prev(j - 1, 0.0);
    for (std::size_t i = 0; i + 1 < j; ++i)
      prev[i] = (cur[i] + a * cur[j - 2 - i]) / denom;
    cur = std::move(prev);
  }
  return partial;
}

}  // namespace rrp::ts
