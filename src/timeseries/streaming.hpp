// Incremental regularisation of irregular spot-price tick streams
// (ISSUE 10).
//
// `hourly_locf()` (regularize.hpp) re-scans the whole tick vector on
// every call, so a live consumer re-regularising after each new update
// pays O(total history) per tick.  OnlineRegularizer keeps the LOCF
// cursor between calls: ingesting a tick is O(1), and extending the
// hourly grid costs O(new hours + new ticks) regardless of how much
// history has already been consumed.  Its output is defined to be
// bit-identical to the batch path:
//
//   online.series() == hourly_locf(sanitize_ticks(all ticks),
//                                  first_hour, next_hour)
//
// where sanitize_ticks() drops the unusable ticks (non-finite or
// non-positive values) a faulty feed can deliver — the same ticks
// push() rejects, so chaos streams regularise identically either way.
#pragma once

#include <deque>
#include <vector>

#include "timeseries/regularize.hpp"

namespace rrp::ts {

/// Batch-side twin of OnlineRegularizer::push()'s rejection rule:
/// removes ticks whose value is NaN, infinite or <= 0.  Times must be
/// non-decreasing (checked).  The survivors feed hourly_locf().
std::vector<Tick> sanitize_ticks(const std::vector<Tick>& ticks);

class OnlineRegularizer {
 public:
  /// Grid starts at hour index `first_hour`.  At least one accepted
  /// tick with time <= first_hour must arrive before the first
  /// advance_to() (same seeding contract as hourly_locf).
  explicit OnlineRegularizer(long first_hour);

  /// Ingests one tick.  Times must be non-decreasing across calls and
  /// not precede an hour already emitted.  Returns false (and drops the
  /// tick) when the value is unusable — NaN, infinite or <= 0 — exactly
  /// the ticks sanitize_ticks() removes from a batch stream.
  bool push(const Tick& tick);

  /// Extends the hourly series to cover [first_hour, last_hour),
  /// consuming buffered ticks.  O(new hours + ticks consumed); already
  /// emitted hours are never revisited.  No-op when last_hour <=
  /// next_hour().
  void advance_to(long last_hour);

  /// The regularised hourly series emitted so far, hour indices
  /// [first_hour(), next_hour()).
  const std::vector<double>& series() const { return series_; }

  long first_hour() const { return first_hour_; }
  /// The first hour index not yet emitted.
  long next_hour() const { return next_hour_; }
  /// Ticks ingested (accepted) so far.
  std::size_t ticks_accepted() const { return ticks_accepted_; }
  /// Unusable ticks dropped by push().
  std::size_t ticks_rejected() const { return ticks_rejected_; }

 private:
  long first_hour_;
  long next_hour_;
  bool seeded_ = false;        ///< an accepted tick covers first_hour_
  double current_ = 0.0;       ///< last accepted value (LOCF carry)
  double last_time_ = 0.0;     ///< monotonicity check across push()es
  std::deque<Tick> pending_;   ///< accepted ticks not yet consumed
  std::vector<double> series_;
  std::size_t ticks_accepted_ = 0;
  std::size_t ticks_rejected_ = 0;
};

}  // namespace rrp::ts
