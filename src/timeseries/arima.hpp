// Seasonal ARIMA estimation and forecasting.
//
// The paper's predictability study fits SARIMA(p,d,q)(P,D,Q)_24 models
// to hourly spot prices (Section IV-A) and finds SARIMA(2,0,1|2)(2,0,0)_24
// to minimise AIC.  This module reproduces that machinery from scratch:
//
//  * multiplicative seasonal lag polynomials expanded to plain AR/MA
//    coefficient vectors;
//  * conditional-sum-of-squares (CSS) estimation, optimised by
//    Nelder-Mead over a partial-autocorrelation parametrisation that
//    keeps the AR side stationary and the MA side invertible by
//    construction;
//  * recursive multi-step forecasting with differencing inversion.
#pragma once

#include <span>
#include <vector>

#include "timeseries/optimize.hpp"

namespace rrp::ts {

/// SARIMA(p,d,q)(P,D,Q)_s orders.  s == 0 (or P=D=Q=0) means no
/// seasonal part.
struct SarimaOrder {
  std::size_t p = 0, d = 0, q = 0;
  std::size_t P = 0, D = 0, Q = 0;
  std::size_t s = 0;

  std::size_t num_coefficients() const { return p + q + P + Q; }
  bool has_seasonal() const { return s > 0 && (P > 0 || D > 0 || Q > 0); }
};

struct SarimaFitOptions {
  /// Include a mean term for the differenced series.  Defaults to the
  /// R convention: only when no differencing is applied.
  enum class Mean { Auto, Include, Exclude };
  Mean mean = Mean::Auto;
  NelderMeadOptions optimizer;
};

struct SarimaModel {
  SarimaOrder order;
  // Raw polynomial coefficients as reported (phi/theta non-seasonal,
  // sphi/stheta seasonal).
  std::vector<double> phi, theta, sphi, stheta;
  // Expanded coefficients on the differenced scale: value at index l-1
  // multiplies lag l.
  std::vector<double> ar_full, ma_full;
  double mean = 0.0;     ///< mean of the differenced series (0 if excluded)
  bool has_mean = false;
  double sigma2 = 0.0;   ///< CSS innovation variance estimate
  double css = 0.0;      ///< conditional sum of squared residuals
  std::size_t n_effective = 0;
  double log_likelihood = 0.0;
  double aic = 0.0, aicc = 0.0, bic = 0.0;

  /// Number of estimated parameters (coefficients + mean + variance),
  /// the `k` used in the information criteria.
  std::size_t num_parameters() const;
};

/// Expands (1 - sum phi_i B^i)(1 - sum sphi_j B^{js}) into plain lag
/// coefficients a_l such that the AR recursion reads
/// z_t = sum_l a_l z_{t-l} + ...; exposed for testing.
std::vector<double> expand_ar(std::span<const double> phi,
                              std::span<const double> sphi, std::size_t s);

/// Expands (1 + sum theta_i B^i)(1 + sum stheta_j B^{js}); the result
/// m_l multiplies e_{t-l} in the MA recursion.
std::vector<double> expand_ma(std::span<const double> theta,
                              std::span<const double> stheta, std::size_t s);

/// Applies the model's (d, D_s) differencing to a level series.
std::vector<double> apply_differencing(std::span<const double> x,
                                       const SarimaOrder& order);

/// CSS residuals of a coefficient set on a differenced, mean-free
/// series; e_t = z_t - sum a_l z_{t-l} - sum m_l e_{t-l} with unknown
/// pre-sample values set to zero.
std::vector<double> css_residuals(std::span<const double> z,
                                  std::span<const double> ar_full,
                                  std::span<const double> ma_full);

/// Fits the model by CSS.  Requires enough observations to difference
/// and to cover the longest expanded lag.
SarimaModel fit_sarima(std::span<const double> x, const SarimaOrder& order,
                       const SarimaFitOptions& options = {});

// --- Incremental model maintenance (ISSUE 10) ------------------------
//
// A rolling-horizon consumer refits its price model every few slots.
// Refitting from scratch costs O(window * evaluations); refit_sarima
// instead diagnoses the incumbent on a bounded tail of new data and
// escalates only as far as the drift demands:
//
//   Kept          innovation variance and Ljung-Box whiteness still
//                 pass: the incumbent is returned untouched (one CSS
//                 pass over the diagnostic window).
//   WarmRefit     mild drift: re-estimate on the diagnostic window,
//                 with Nelder-Mead seeded at the incumbent parameter
//                 vector (via ar_to_pacf) and a small evaluation cap.
//   ScratchRefit  severe drift: full fit on the diagnostic window from
//                 the default cold start.

enum class SarimaRefitAction { Kept, WarmRefit, ScratchRefit };

const char* to_string(SarimaRefitAction action);

struct SarimaRefitOptions {
  /// Nelder-Mead evaluation cap for warm-started refits (the cold-start
  /// cap lives in `scratch.optimizer`).
  std::size_t warm_max_evaluations = 400;
  /// Keep the incumbent while (residual variance on new data) /
  /// (incumbent sigma2) stays at or below this ratio...
  double warm_variance_ratio = 1.5;
  /// ...warm-refit up to this ratio, and refit from scratch beyond it.
  double scratch_variance_ratio = 3.0;
  /// Ljung-Box whiteness: a residual p-value below alpha fails the
  /// incumbent even when the variance ratio passes.
  double ljung_box_alpha = 0.01;
  std::size_t ljung_box_lags = 24;
  /// Tail of `x` used for diagnostics AND re-estimation: bounds the
  /// refit cost by new-data volume instead of total history.  Clamped
  /// up so the order remains estimable.
  std::size_t diagnostic_window = 24 * 14;
  /// Full-fit options for the ScratchRefit tier (and the base options —
  /// mean handling — for WarmRefit).
  SarimaFitOptions scratch;
};

struct SarimaRefitResult {
  SarimaModel model;
  SarimaRefitAction action = SarimaRefitAction::Kept;
  double variance_ratio = 0.0;  ///< new-data residual var / incumbent sigma2
  double ljung_box_p = 1.0;     ///< residual whiteness on the window
};

/// Maintains `incumbent` against the series `x` (oldest first, newest
/// last; the diagnostic window is its tail).  Never throws on drift —
/// the action tells the caller what was paid.
SarimaRefitResult refit_sarima(const SarimaModel& incumbent,
                               std::span<const double> x,
                               const SarimaRefitOptions& options = {});

/// h-step-ahead forecast from the end of `x` (the series the model was
/// fitted on, or a compatible continuation).
std::vector<double> forecast(const SarimaModel& model,
                             std::span<const double> x, std::size_t h);

/// Baseline predictor used by the paper's comparison: repeats the
/// sample mean of `x` h times.
std::vector<double> mean_forecast(std::span<const double> x, std::size_t h);

/// Point forecasts with symmetric Gaussian prediction intervals.
struct ForecastInterval {
  std::vector<double> point;
  std::vector<double> lower;
  std::vector<double> upper;
  double level = 0.95;
};

/// h-step forecasts plus level-% prediction intervals from the model's
/// psi-weight (MA-infinity) representation: Var(h) = sigma^2 *
/// sum_{j<h} psi_j^2, with the differencing operators folded into the
/// AR side so integrated models get the correct widening bands.
ForecastInterval forecast_interval(const SarimaModel& model,
                                   std::span<const double> x, std::size_t h,
                                   double level = 0.95);

/// The first `h` psi weights (psi_0 = 1) of the model including its
/// differencing factors; exposed for testing.
std::vector<double> psi_weights(const SarimaModel& model, std::size_t h);

}  // namespace rrp::ts
