#include "timeseries/decompose.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace rrp::ts {

namespace {
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
}

std::vector<double> Decomposition::seasonal_profile() const {
  return {seasonal.begin(),
          seasonal.begin() + static_cast<std::ptrdiff_t>(period)};
}

Decomposition decompose_additive(std::span<const double> x,
                                 std::size_t period) {
  RRP_EXPECTS(period >= 2);
  RRP_EXPECTS(x.size() >= 2 * period);
  const std::size_t n = x.size();

  Decomposition d;
  d.period = period;
  d.trend.assign(n, kNaN);
  d.seasonal.assign(n, 0.0);
  d.remainder.assign(n, kNaN);

  // Centred moving average trend.  For even periods this is the classic
  // 2xMA: a window of period+1 points with half weights at the ends.
  if (period % 2 == 1) {
    const std::size_t half = period / 2;
    for (std::size_t t = half; t + half < n; ++t) {
      double acc = 0.0;
      for (std::size_t j = t - half; j <= t + half; ++j) acc += x[j];
      d.trend[t] = acc / static_cast<double>(period);
    }
  } else {
    const std::size_t half = period / 2;
    for (std::size_t t = half; t + half < n; ++t) {
      double acc = 0.5 * x[t - half] + 0.5 * x[t + half];
      for (std::size_t j = t - half + 1; j <= t + half - 1; ++j) acc += x[j];
      d.trend[t] = acc / static_cast<double>(period);
    }
  }

  // Phase means of the detrended series.
  std::vector<double> phase_sum(period, 0.0);
  std::vector<std::size_t> phase_n(period, 0);
  for (std::size_t t = 0; t < n; ++t) {
    if (std::isnan(d.trend[t])) continue;
    phase_sum[t % period] += x[t] - d.trend[t];
    ++phase_n[t % period];
  }
  std::vector<double> profile(period, 0.0);
  double mean_of_means = 0.0;
  for (std::size_t p = 0; p < period; ++p) {
    RRP_ENSURES(phase_n[p] > 0);
    profile[p] = phase_sum[p] / static_cast<double>(phase_n[p]);
    mean_of_means += profile[p];
  }
  mean_of_means /= static_cast<double>(period);
  for (double& v : profile) v -= mean_of_means;  // centre to zero mean

  for (std::size_t t = 0; t < n; ++t) {
    d.seasonal[t] = profile[t % period];
    if (!std::isnan(d.trend[t]))
      d.remainder[t] = x[t] - d.trend[t] - d.seasonal[t];
  }
  return d;
}

}  // namespace rrp::ts
