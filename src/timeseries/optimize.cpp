#include "timeseries/optimize.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace rrp::ts {

NelderMeadResult nelder_mead(
    const std::function<double(const std::vector<double>&)>& fn,
    std::vector<double> start, const NelderMeadOptions& opt) {
  const std::size_t n = start.size();
  RRP_EXPECTS(n >= 1);

  NelderMeadResult result;
  result.evaluations = 0;
  auto eval = [&](const std::vector<double>& x) {
    ++result.evaluations;
    const double v = fn(x);
    return std::isnan(v) ? std::numeric_limits<double>::infinity() : v;
  };

  // Initial simplex: start point plus one perturbed vertex per dimension.
  std::vector<std::vector<double>> simplex;
  std::vector<double> values;
  simplex.push_back(start);
  values.push_back(eval(start));
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> v = start;
    const double step =
        opt.initial_step * (std::fabs(v[i]) > 1e-8 ? std::fabs(v[i]) : 1.0);
    v[i] += step;
    simplex.push_back(v);
    values.push_back(eval(simplex.back()));
  }

  std::vector<std::size_t> order(n + 1);
  while (result.evaluations < opt.max_evaluations) {
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&values](std::size_t a,
                                                    std::size_t b) {
      return values[a] < values[b];
    });
    const std::size_t best = order.front();
    const std::size_t worst = order.back();
    const std::size_t second_worst = order[n - 1];

    if (std::isfinite(values[best]) &&
        values[worst] - values[best] <
            opt.tolerance * (1.0 + std::fabs(values[best]))) {
      // Value spread alone can vanish with vertices straddling the
      // minimum; also require the simplex itself to have collapsed.
      double diameter = 0.0;
      for (std::size_t k = 0; k <= n; ++k) {
        for (std::size_t i = 0; i < n; ++i) {
          diameter = std::max(
              diameter, std::fabs(simplex[k][i] - simplex[best][i]) /
                            (1.0 + std::fabs(simplex[best][i])));
        }
      }
      if (diameter < opt.tolerance_x) {
        result.converged = true;
        break;
      }
    }

    // Centroid of all but the worst vertex.
    std::vector<double> centroid(n, 0.0);
    for (std::size_t k = 0; k <= n; ++k) {
      if (k == worst) continue;
      for (std::size_t i = 0; i < n; ++i) centroid[i] += simplex[k][i];
    }
    for (double& c : centroid) c /= static_cast<double>(n);

    auto along = [&](double t) {
      std::vector<double> x(n);
      for (std::size_t i = 0; i < n; ++i)
        x[i] = centroid[i] + t * (centroid[i] - simplex[worst][i]);
      return x;
    };

    const std::vector<double> reflected = along(opt.reflection);
    const double fr = eval(reflected);
    if (fr < values[best]) {
      const std::vector<double> expanded = along(opt.expansion);
      const double fe = eval(expanded);
      if (fe < fr) {
        simplex[worst] = expanded;
        values[worst] = fe;
      } else {
        simplex[worst] = reflected;
        values[worst] = fr;
      }
    } else if (fr < values[second_worst]) {
      simplex[worst] = reflected;
      values[worst] = fr;
    } else {
      const bool outside = fr < values[worst];
      const std::vector<double> contracted =
          along(outside ? opt.contraction : -opt.contraction);
      const double fc = eval(contracted);
      if (fc < std::min(fr, values[worst])) {
        simplex[worst] = contracted;
        values[worst] = fc;
      } else {
        // Shrink toward the best vertex.
        for (std::size_t k = 0; k <= n; ++k) {
          if (k == best) continue;
          for (std::size_t i = 0; i < n; ++i) {
            simplex[k][i] = simplex[best][i] +
                            opt.shrink * (simplex[k][i] - simplex[best][i]);
          }
          values[k] = eval(simplex[k]);
        }
      }
    }
  }

  const auto best_it = std::min_element(values.begin(), values.end());
  result.value = *best_it;
  result.x = simplex[static_cast<std::size_t>(
      std::distance(values.begin(), best_it))];
  return result;
}

}  // namespace rrp::ts
