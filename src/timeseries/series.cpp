#include "timeseries/series.hpp"

#include "common/error.hpp"
#include "common/stats.hpp"

namespace rrp::ts {

std::vector<double> difference(std::span<const double> x, std::size_t lag) {
  RRP_EXPECTS(lag >= 1);
  RRP_EXPECTS(x.size() > lag);
  std::vector<double> out(x.size() - lag);
  for (std::size_t t = lag; t < x.size(); ++t) out[t - lag] = x[t] - x[t - lag];
  return out;
}

std::vector<double> difference(std::span<const double> x, std::size_t lag,
                               std::size_t times) {
  std::vector<double> cur(x.begin(), x.end());
  for (std::size_t i = 0; i < times; ++i) cur = difference(cur, lag);
  return cur;
}

std::vector<double> undifference(std::span<const double> history_tail,
                                 std::span<const double> diffed,
                                 std::size_t lag) {
  RRP_EXPECTS(lag >= 1);
  RRP_EXPECTS(history_tail.size() >= lag);
  // levels buffer: last `lag` known values followed by reconstruction.
  std::vector<double> levels(history_tail.end() -
                                 static_cast<std::ptrdiff_t>(lag),
                             history_tail.end());
  std::vector<double> out;
  out.reserve(diffed.size());
  for (std::size_t i = 0; i < diffed.size(); ++i) {
    const double level = levels[levels.size() - lag] + diffed[i];
    levels.push_back(level);
    out.push_back(level);
  }
  return out;
}

std::pair<std::vector<double>, std::vector<double>> split_at(
    std::span<const double> x, std::size_t n_train) {
  RRP_EXPECTS(n_train <= x.size());
  return {std::vector<double>(x.begin(),
                              x.begin() + static_cast<std::ptrdiff_t>(n_train)),
          std::vector<double>(x.begin() + static_cast<std::ptrdiff_t>(n_train),
                              x.end())};
}

std::pair<std::vector<double>, double> center(std::span<const double> x) {
  const double m = rrp::stats::mean(x);
  std::vector<double> out(x.begin(), x.end());
  for (double& v : out) v -= m;
  return {std::move(out), m};
}

}  // namespace rrp::ts
