#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <utility>

#include "common/error.hpp"

namespace rrp {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto fut = packaged.get_future();
  {
    MutexLock lock(mutex_);
    RRP_EXPECTS(!stopping_);
    tasks_.push(std::move(packaged));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (n == 1 || size() == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  Mutex error_mutex;
  auto chunk = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        MutexLock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };
  std::vector<std::future<void>> futs;
  const std::size_t helpers = std::min(size(), n) - 1;
  futs.reserve(helpers);
  for (std::size_t i = 0; i < helpers; ++i) futs.push_back(submit(chunk));
  chunk();  // caller participates
  for (auto& f : futs) f.get();
  if (first_error) std::rethrow_exception(first_error);
}

bool ThreadPool::try_execute_one() {
  std::packaged_task<void()> task;
  {
    MutexLock lock(mutex_);
    if (tasks_.empty()) return false;
    task = std::move(tasks_.front());
    tasks_.pop();
  }
  task();
  return true;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && tasks_.empty()) cv_.wait(lock);
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

TaskGroup::~TaskGroup() {
  // Wait out stragglers so no task outlives the state it references; any
  // exception was either already rethrown by wait() or is dropped here
  // (destructors must not throw).
  MutexLock lock(mutex_);
  while (pending_ != 0) {
    lock.unlock();
    if (!pool_.try_execute_one()) {
      lock.lock();
      if (pending_ == 0) break;
      done_cv_.wait_for(lock, std::chrono::milliseconds(1));
      continue;
    }
    lock.lock();
  }
}

void TaskGroup::run(std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    ++pending_;
  }
  pool_.submit([this, task = std::move(task)] {
    try {
      task();
    } catch (...) {
      MutexLock lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    // Notify under the mutex: once a waiter observes pending_ == 0 it
    // may destroy this TaskGroup, so the notify must be sequenced
    // before the waiter can re-acquire the lock and see the count.
    MutexLock lock(mutex_);
    --pending_;
    done_cv_.notify_all();
  });
}

void TaskGroup::wait() {
  for (;;) {
    {
      MutexLock lock(mutex_);
      if (pending_ == 0) {
        std::exception_ptr err = std::exchange(first_error_, nullptr);
        lock.unlock();
        if (err) std::rethrow_exception(err);
        return;
      }
    }
    // Help: run queued pool tasks (ours or anyone's) instead of parking.
    if (!pool_.try_execute_one()) {
      MutexLock lock(mutex_);
      if (pending_ == 0) continue;  // re-check the exit condition
      // A tracked task is running on a worker but the queue is empty;
      // nap briefly rather than spin (bounded because tracked tasks
      // notify on completion).
      done_cv_.wait_for(lock, std::chrono::milliseconds(1));
    }
  }
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace rrp
