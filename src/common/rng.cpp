#include "common/rng.hpp"

#include <cmath>

namespace rrp {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
  has_cached_normal_ = false;
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

Rng Rng::split() {
  // Mix two outputs into a child seed; advances this stream by two draws.
  const std::uint64_t a = (*this)();
  const std::uint64_t b = (*this)();
  return Rng(a ^ rotl(b, 31));
}

double Rng::uniform() {
  // 53-bit mantissa -> [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  RRP_EXPECTS(lo < hi);
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  RRP_EXPECTS(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Lemire-style rejection to remove modulo bias.
  const std::uint64_t limit = (~std::uint64_t{0}) - (~std::uint64_t{0}) % span;
  std::uint64_t draw;
  do {
    draw = (*this)();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double sd) {
  RRP_EXPECTS(sd >= 0.0);
  return mean + sd * normal();
}

double Rng::truncated_normal(double mean, double sd, double lo) {
  RRP_EXPECTS(sd > 0.0);
  // Rejection is fine for the regimes used here (lo well below mean+5sd).
  for (int attempt = 0; attempt < 10000; ++attempt) {
    const double x = normal(mean, sd);
    if (x >= lo) return x;
  }
  throw NumericalError("truncated_normal: acceptance region too small");
}

double Rng::exponential(double lambda) {
  RRP_EXPECTS(lambda > 0.0);
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / lambda;
}

std::int64_t Rng::poisson(double lambda) {
  RRP_EXPECTS(lambda >= 0.0);
  if (lambda == 0.0) return 0;
  if (lambda < 30.0) {
    const double limit = std::exp(-lambda);
    std::int64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation with continuity correction for large means.
  const double x = normal(lambda, std::sqrt(lambda));
  return x < 0.0 ? 0 : static_cast<std::int64_t>(x + 0.5);
}

bool Rng::bernoulli(double p) {
  RRP_EXPECTS(p >= 0.0 && p <= 1.0);
  return uniform() < p;
}

std::size_t Rng::categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    RRP_EXPECTS(w >= 0.0);
    total += w;
  }
  RRP_EXPECTS(total > 0.0);
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // numerical edge: return last positive index
}

}  // namespace rrp
