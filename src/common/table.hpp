// Console table rendering for the figure-reproduction harnesses.  Each
// bench binary prints the same rows/series the paper's figure reports,
// formatted as an aligned ASCII table.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace rrp {

/// An aligned console table with a title, column headers and rows.
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  /// Sets the column headers; must be called before adding rows.
  void set_header(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 4);

  /// Formats as a percentage ("12.3%").
  static std::string pct(double fraction, int precision = 1);

  void print(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Renders a crude ASCII sparkline of a series (used to show trace/
/// forecast shapes in bench output without a plotting stack).
std::string sparkline(const std::vector<double>& values, int width = 60);

}  // namespace rrp
