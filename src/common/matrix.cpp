#include "common/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace rrp {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  RRP_EXPECTS(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  RRP_EXPECTS(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

std::span<double> Matrix::row(std::size_t r) {
  RRP_EXPECTS(r < rows_);
  return {data_.data() + r * cols_, cols_};
}

std::span<const double> Matrix::row(std::size_t r) const {
  RRP_EXPECTS(r < rows_);
  return {data_.data() + r * cols_, cols_};
}

std::vector<double> Matrix::multiply(std::span<const double> x) const {
  RRP_EXPECTS(x.size() == cols_);
  std::vector<double> y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* a = data_.data() + r * cols_;
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += a[c] * x[c];
    y[r] = acc;
  }
  return y;
}

std::vector<double> Matrix::multiply_transpose(
    std::span<const double> x) const {
  RRP_EXPECTS(x.size() == rows_);
  std::vector<double> y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* a = data_.data() + r * cols_;
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (std::size_t c = 0; c < cols_; ++c) y[c] += a[c] * xr;
  }
  return y;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  RRP_EXPECTS(cols_ == rhs.rows_);
  Matrix out(rows_, rhs.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      const double* b = rhs.data_.data() + k * rhs.cols_;
      double* o = out.data_.data() + i * rhs.cols_;
      for (std::size_t j = 0; j < rhs.cols_; ++j) o[j] += aik * b[j];
    }
  }
  return out;
}

Matrix Matrix::inverse() const {
  RRP_EXPECTS(rows_ == cols_);
  const std::size_t n = rows_;
  Matrix a = *this;
  Matrix inv = identity(n);
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    double best = std::fabs(a(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double v = std::fabs(a(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-12) throw NumericalError("Matrix::inverse: singular");
    if (pivot != col) {
      std::swap_ranges(a.row(col).begin(), a.row(col).end(),
                       a.row(pivot).begin());
      std::swap_ranges(inv.row(col).begin(), inv.row(col).end(),
                       inv.row(pivot).begin());
    }
    const double diag = a(col, col);
    for (std::size_t c = 0; c < n; ++c) {
      a(col, c) /= diag;
      inv(col, c) /= diag;
    }
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const double factor = a(r, col);
      if (factor == 0.0) continue;
      for (std::size_t c = 0; c < n; ++c) {
        a(r, c) -= factor * a(col, c);
        inv(r, c) -= factor * inv(col, c);
      }
    }
  }
  return inv;
}

std::vector<double> Matrix::solve(std::span<const double> b) const {
  RRP_EXPECTS(rows_ == cols_);
  RRP_EXPECTS(b.size() == rows_);
  const std::size_t n = rows_;
  Matrix a = *this;
  std::vector<double> x(b.begin(), b.end());
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    double best = std::fabs(a(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double v = std::fabs(a(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-12) throw NumericalError("Matrix::solve: singular");
    if (pivot != col) {
      std::swap_ranges(a.row(col).begin(), a.row(col).end(),
                       a.row(pivot).begin());
      std::swap(x[col], x[pivot]);
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a(r, col) / a(col, col);
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a(r, c) -= factor * a(col, c);
      x[r] -= factor * x[col];
    }
  }
  for (std::size_t ri = n; ri-- > 0;) {
    double acc = x[ri];
    for (std::size_t c = ri + 1; c < n; ++c) acc -= a(ri, c) * x[c];
    x[ri] = acc / a(ri, ri);
  }
  return x;
}

double Matrix::max_abs_diff(const Matrix& other) const {
  RRP_EXPECTS(rows_ == other.rows_ && cols_ == other.cols_);
  double worst = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i)
    worst = std::max(worst, std::fabs(data_[i] - other.data_[i]));
  return worst;
}

}  // namespace rrp
