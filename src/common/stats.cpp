#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace rrp::stats {

double mean(std::span<const double> x) {
  RRP_EXPECTS(!x.empty());
  double s = 0.0;
  for (double v : x) s += v;
  return s / static_cast<double>(x.size());
}

double variance(std::span<const double> x) {
  RRP_EXPECTS(x.size() >= 2);
  const double m = mean(x);
  double ss = 0.0;
  for (double v : x) ss += (v - m) * (v - m);
  return ss / static_cast<double>(x.size() - 1);
}

double stddev(std::span<const double> x) { return std::sqrt(variance(x)); }

double skewness(std::span<const double> x) {
  RRP_EXPECTS(x.size() >= 3);
  const double n = static_cast<double>(x.size());
  const double m = mean(x);
  double m2 = 0.0, m3 = 0.0;
  for (double v : x) {
    const double d = v - m;
    m2 += d * d;
    m3 += d * d * d;
  }
  m2 /= n;
  m3 /= n;
  RRP_EXPECTS(m2 > 0.0);
  const double g1 = m3 / std::pow(m2, 1.5);
  return std::sqrt(n * (n - 1.0)) / (n - 2.0) * g1;
}

double excess_kurtosis(std::span<const double> x) {
  RRP_EXPECTS(x.size() >= 4);
  const double n = static_cast<double>(x.size());
  const double m = mean(x);
  double m2 = 0.0, m4 = 0.0;
  for (double v : x) {
    const double d = v - m;
    m2 += d * d;
    m4 += d * d * d * d;
  }
  m2 /= n;
  m4 /= n;
  RRP_EXPECTS(m2 > 0.0);
  return m4 / (m2 * m2) - 3.0;
}

double quantile(std::span<const double> x, double p) {
  RRP_EXPECTS(!x.empty());
  RRP_EXPECTS(p >= 0.0 && p <= 1.0);
  std::vector<double> sorted(x.begin(), x.end());
  std::sort(sorted.begin(), sorted.end());
  const double h = (static_cast<double>(sorted.size()) - 1.0) * p;
  const auto lo = static_cast<std::size_t>(std::floor(h));
  const auto hi = static_cast<std::size_t>(std::ceil(h));
  const double frac = h - std::floor(h);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double median(std::span<const double> x) { return quantile(x, 0.5); }

BoxSummary box_summary(std::span<const double> x, double whisker_k) {
  RRP_EXPECTS(!x.empty());
  RRP_EXPECTS(whisker_k >= 0.0);
  BoxSummary b;
  b.n = x.size();
  b.min = *std::min_element(x.begin(), x.end());
  b.max = *std::max_element(x.begin(), x.end());
  b.q1 = quantile(x, 0.25);
  b.median = quantile(x, 0.5);
  b.q3 = quantile(x, 0.75);
  b.iqr = b.q3 - b.q1;
  b.lower_fence = b.q1 - whisker_k * b.iqr;
  b.upper_fence = b.q3 + whisker_k * b.iqr;
  for (double v : x)
    if (v < b.lower_fence || v > b.upper_fence) ++b.n_outliers;
  b.outlier_fraction =
      static_cast<double>(b.n_outliers) / static_cast<double>(b.n);
  return b;
}

std::vector<double> trim_outliers(std::span<const double> x,
                                  double whisker_k) {
  const BoxSummary b = box_summary(x, whisker_k);
  std::vector<double> out;
  out.reserve(x.size() - b.n_outliers);
  for (double v : x)
    if (v >= b.lower_fence && v <= b.upper_fence) out.push_back(v);
  return out;
}

double Histogram::bin_center(std::size_t i) const {
  return lo + (static_cast<double>(i) + 0.5) * bin_width();
}

double Histogram::bin_width() const {
  return (hi - lo) / static_cast<double>(counts.size());
}

std::size_t Histogram::total() const {
  std::size_t t = 0;
  for (auto c : counts) t += c;
  return t;
}

Histogram histogram(std::span<const double> x, double lo, double hi,
                    std::size_t bins) {
  RRP_EXPECTS(bins >= 1);
  RRP_EXPECTS(lo < hi);
  Histogram h;
  h.lo = lo;
  h.hi = hi;
  h.counts.assign(bins, 0);
  const double width = (hi - lo) / static_cast<double>(bins);
  for (double v : x) {
    auto idx = static_cast<std::ptrdiff_t>((v - lo) / width);
    idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                     static_cast<std::ptrdiff_t>(bins) - 1);
    ++h.counts[static_cast<std::size_t>(idx)];
  }
  return h;
}

Histogram histogram(std::span<const double> x, std::size_t bins) {
  RRP_EXPECTS(!x.empty());
  double lo = *std::min_element(x.begin(), x.end());
  double hi = *std::max_element(x.begin(), x.end());
  if (lo == hi) {  // degenerate constant sample: widen symmetrically
    lo -= 0.5;
    hi += 0.5;
  }
  return histogram(x, lo, hi, bins);
}

std::vector<double> kde(std::span<const double> x,
                        std::span<const double> at) {
  RRP_EXPECTS(x.size() >= 2);
  const double sd = stddev(x);
  const double iqr = quantile(x, 0.75) - quantile(x, 0.25);
  const double n = static_cast<double>(x.size());
  // Silverman: 0.9 * min(sd, iqr/1.34) * n^{-1/5}; guard degenerate spread.
  double spread = std::min(sd, iqr / 1.34);
  if (spread <= 0.0) spread = std::max(sd, 1e-12);
  const double h = 0.9 * spread * std::pow(n, -0.2);
  std::vector<double> out(at.size(), 0.0);
  const double norm = 1.0 / (n * h * std::sqrt(2.0 * M_PI));
  for (std::size_t i = 0; i < at.size(); ++i) {
    double acc = 0.0;
    for (double xi : x) {
      const double z = (at[i] - xi) / h;
      acc += std::exp(-0.5 * z * z);
    }
    out[i] = acc * norm;
  }
  return out;
}

double pearson_correlation(std::span<const double> x,
                           std::span<const double> y) {
  RRP_EXPECTS(x.size() == y.size());
  RRP_EXPECTS(x.size() >= 2);
  const double mx = mean(x), my = mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  RRP_EXPECTS(sxx > 0.0 && syy > 0.0);
  return sxy / std::sqrt(sxx * syy);
}

double mse(std::span<const double> actual,
           std::span<const double> predicted) {
  RRP_EXPECTS(actual.size() == predicted.size());
  RRP_EXPECTS(!actual.empty());
  double s = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const double d = actual[i] - predicted[i];
    s += d * d;
  }
  return s / static_cast<double>(actual.size());
}

}  // namespace rrp::stats
