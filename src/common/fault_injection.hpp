// Deterministic fault injection for chaos testing.
//
// A FaultInjector is a seeded schedule of failures that the solve
// pipeline consults at well-defined points: the rolling-horizon loop asks
// for solver faults (timeouts, synthetic numerical failures) and price
// feed faults (gaps, NaN ticks, outlier spikes, delayed updates) per
// slot, and rrp::lp::solve consumes "armed" LP failures so the branch &
// bound recovery ladder can be exercised attempt by attempt.  Everything
// is derived from the seed and the configured slots — two injectors with
// the same seed and schedule produce byte-identical fault streams, which
// is what lets the chaos suite assert exact degradation telemetry.
//
// Production code paths never require an injector; every hook is a
// nullable pointer that defaults to "no faults".
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>

#include "common/rng.hpp"
#include "common/sync.hpp"

namespace rrp::testing {

/// Fault observed by the rolling-horizon loop when it attempts a re-plan.
enum class SolverFaultKind {
  Timeout,           ///< the solve's deadline expires before any progress
  NumericalFailure,  ///< the solve escalates rrp::NumericalError
};

/// Fault applied to the observed price tick for a slot.  Settlement always
/// uses the true market price — these model a broken telemetry feed, not a
/// broken market.
enum class PriceFaultKind {
  Gap,      ///< no tick arrives for the slot
  Nan,      ///< the tick arrives as NaN
  Spike,    ///< the tick is multiplied by an outlier factor
  Delayed,  ///< the previous tick is re-delivered late instead
};

const char* to_string(SolverFaultKind kind);
const char* to_string(PriceFaultKind kind);

struct PriceFault {
  PriceFaultKind kind = PriceFaultKind::Gap;
  /// Multiplier applied to the true tick for Spike faults; unused
  /// otherwise.
  double spike_factor = 1.0;
};

/// Armed revocation of a held spot instance (ISSUE 7).  Fires when the
/// rolling-horizon loop holds a won spot instance at the armed slot;
/// slots without a spot acquisition ignore the fault.
struct RevocationFault {
  bool storm = false;      ///< class-wide storm vs single reclaim
  double fraction = 0.5;   ///< slot fraction at which the revocation hits
};

class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed = 0) : rng_(seed) {}

  // The armed-LP-failure counter and the fault schedule are consumed
  // concurrently (B&B workers, parallel re-plan sweeps); keep the
  // injector pinned to one place.  The schedule maps are guarded by an
  // internal mutex so tests may even reconfigure an injector while a
  // solve is in flight.
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // -- schedule configuration (one solver + one price fault per slot;
  //    re-injecting a slot overwrites the earlier entry) ----------------
  void inject_solver_timeout(std::size_t slot);
  void inject_solver_numerical_failure(std::size_t slot);
  void inject_price_gap(std::size_t slot);
  void inject_price_nan(std::size_t slot);
  /// Spike with a seeded outlier factor drawn uniformly from [20, 100] —
  /// far beyond any plausible market move, so the feed sanitiser must
  /// reject it.
  void inject_price_spike(std::size_t slot);
  void inject_price_spike(std::size_t slot, double factor);
  void inject_price_delay(std::size_t slot);

  // -- revocation faults (one per slot; re-injecting overwrites) --------
  /// Arms a single-instance revocation with a seeded interruption
  /// fraction drawn uniformly from [0.05, 0.95).
  void inject_revocation(std::size_t slot);
  void inject_revocation(std::size_t slot, double fraction);
  /// Arms a class-wide revocation storm (seeded fraction).
  void inject_revocation_storm(std::size_t slot);
  void inject_revocation_storm(std::size_t slot, double fraction);
  /// Seeded bulk schedule over slots [0, horizon): each slot is armed
  /// with a single revocation with probability `rate` and upgraded to a
  /// storm with probability `storm_rate` (independent draws from the
  /// injector seed, so the timeline is a pure function of seed +
  /// arguments).  Returns the number of slots armed.
  std::size_t schedule_revocations(std::size_t horizon, double rate,
                                   double storm_rate = 0.0);

  // -- LP-level failures -----------------------------------------------
  /// Arms the next `count` calls into rrp::lp::solve (via
  /// SimplexOptions::fault_injector) to throw rrp::NumericalError.  Lets
  /// tests fail exactly the first k attempts of the branch & bound
  /// recovery ladder.
  void arm_lp_failures(std::size_t count) {
    armed_lp_failures_.store(count, std::memory_order_relaxed);
  }

  /// Consumes one armed LP failure; true if the caller must fail.  Safe
  /// to call from multiple B&B worker threads at once: the counter is
  /// drained with a compare-exchange loop so exactly `count` calls fail.
  bool consume_lp_fault() const {
    std::size_t n = armed_lp_failures_.load(std::memory_order_relaxed);
    while (n != 0) {
      if (armed_lp_failures_.compare_exchange_weak(
              n, n - 1, std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }

  std::size_t armed_lp_failures() const {
    return armed_lp_failures_.load(std::memory_order_relaxed);
  }

  // -- queries -----------------------------------------------------------
  std::optional<SolverFaultKind> solver_fault(std::size_t slot) const;
  std::optional<PriceFault> price_fault(std::size_t slot) const;
  std::optional<RevocationFault> revocation_fault(std::size_t slot) const;

  std::size_t num_solver_faults() const {
    MutexLock lock(mutex_);
    return solver_faults_.size();
  }
  std::size_t num_price_faults() const {
    MutexLock lock(mutex_);
    return price_faults_.size();
  }
  std::size_t num_revocation_faults() const {
    MutexLock lock(mutex_);
    return revocation_faults_.size();
  }

 private:
  mutable Mutex mutex_;
  std::map<std::size_t, SolverFaultKind> solver_faults_
      RRP_GUARDED_BY(mutex_);
  std::map<std::size_t, PriceFault> price_faults_ RRP_GUARDED_BY(mutex_);
  std::map<std::size_t, RevocationFault> revocation_faults_
      RRP_GUARDED_BY(mutex_);
  Rng rng_ RRP_GUARDED_BY(mutex_);
  mutable std::atomic<std::size_t> armed_lp_failures_{0};
};

}  // namespace rrp::testing
