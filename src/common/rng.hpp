// Deterministic random number generation.
//
// The standard library's distribution objects are implementation-defined,
// so reproducing experiment tables bit-for-bit across toolchains requires
// owning both the generator (xoshiro256**) and the samplers.  Every
// experiment in bench/ derives its streams from a fixed master seed.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.hpp"

namespace rrp {

/// xoshiro256** 1.0 by Blackman & Vigna, seeded through SplitMix64.
/// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initialises the state from a 64-bit seed via SplitMix64.
  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()();

  /// Deterministically derives an independent child stream.  Used to give
  /// each VM class / trial / stage its own stream so adding one consumer
  /// does not shift every other consumer's samples.
  [[nodiscard]] Rng split();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).  Requires lo < hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (cached second variate).
  double normal();

  /// Normal with the given mean and standard deviation (sd >= 0).
  double normal(double mean, double sd);

  /// Normal truncated to [lo, +inf) by rejection; the paper's demand
  /// stream is N(0.4, 0.2) "always positive".
  double truncated_normal(double mean, double sd, double lo);

  /// Exponential with rate lambda > 0.
  double exponential(double lambda);

  /// Poisson with mean lambda >= 0 (Knuth for small, normal approx large).
  std::int64_t poisson(double lambda);

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p);

  /// Samples an index in [0, weights.size()) proportional to weights.
  /// Requires at least one strictly positive weight.
  std::size_t categorical(const std::vector<double>& weights);

 private:
  std::uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace rrp
