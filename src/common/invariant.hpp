// Compile-out-able runtime invariant checks for the solver core.
//
// Three tiers of machine-checked contracts exist in rrp:
//
//   tier 0  RRP_EXPECTS / RRP_ENSURES (common/error.hpp)
//           Cheap argument/return contracts on public entry points.
//           Always on, in every build type.
//
//   tier 1  RRP_INVARIANT / RRP_INVARIANT_MSG (this header)
//           Cheap (at most O(n)) structural invariants inside the
//           solvers: basis consistency, bound monotonicity, probability
//           mass, inventory balance.  Compiled in only when the CMake
//           option RRP_CHECK_INVARIANTS is ON (which defines
//           RRP_ENABLE_INVARIANTS); otherwise every macro expands to a
//           no-op that does not evaluate its arguments.
//
//   tier 2  RRP_DCHECK / RRP_DCHECK_MSG (this header)
//           Expensive diagnostics (e.g. verifying B^-1 * B ~= I, full
//           primal feasibility re-checks).  Same gate as tier 1; kept
//           as a separate macro so a future split (e.g. sampling) does
//           not need to re-touch call sites.
//
// Violations throw rrp::ContractViolation carrying file/line so tests
// can assert on them; library code never calls std::abort.  Checked
// builds also count evaluated checks (rrp::invariant_checks_executed)
// so tests can prove a code path actually exercised its invariants.
#pragma once

#include <cstdint>
#include <string>

#include "common/error.hpp"

#if defined(RRP_INVARIANTS_FORCE_OFF)
#define RRP_INVARIANTS_ENABLED 0
#elif defined(RRP_ENABLE_INVARIANTS)
#define RRP_INVARIANTS_ENABLED 1
#else
#define RRP_INVARIANTS_ENABLED 0
#endif

namespace rrp {

/// Number of invariant/dcheck conditions evaluated so far in this
/// process (0 in builds with RRP_CHECK_INVARIANTS=OFF).  Monotone,
/// thread-safe; useful for asserting that a solve exercised checks.
std::uint64_t invariant_checks_executed() noexcept;

namespace detail {

void count_invariant_check() noexcept;

[[noreturn]] void invariant_fail(const char* kind, const char* cond,
                                 const char* file, int line,
                                 const std::string& detail);

}  // namespace detail
}  // namespace rrp

#if RRP_INVARIANTS_ENABLED

#define RRP_INVARIANT(cond)                                                 \
  do {                                                                      \
    ::rrp::detail::count_invariant_check();                                 \
    if (!(cond))                                                            \
      ::rrp::detail::invariant_fail("invariant", #cond, __FILE__, __LINE__, \
                                    {});                                    \
  } while (false)

#define RRP_INVARIANT_MSG(cond, msg)                                     \
  do {                                                                      \
    ::rrp::detail::count_invariant_check();                                 \
    if (!(cond))                                                            \
      ::rrp::detail::invariant_fail("invariant", #cond, __FILE__, __LINE__, \
                                    (msg));                                 \
  } while (false)

#define RRP_DCHECK(cond)                                                    \
  do {                                                                      \
    ::rrp::detail::count_invariant_check();                                 \
    if (!(cond))                                                            \
      ::rrp::detail::invariant_fail("dcheck", #cond, __FILE__, __LINE__,    \
                                    {});                                    \
  } while (false)

#define RRP_DCHECK_MSG(cond, msg)                                        \
  do {                                                                      \
    ::rrp::detail::count_invariant_check();                                 \
    if (!(cond))                                                            \
      ::rrp::detail::invariant_fail("dcheck", #cond, __FILE__, __LINE__,    \
                                    (msg));                                 \
  } while (false)

#else  // !RRP_INVARIANTS_ENABLED

// No-op expansions: the condition is parsed (so it cannot bit-rot) but
// never evaluated, and the expansion folds away entirely.
#define RRP_INVARIANT(cond) \
  do {                      \
    (void)sizeof(!(cond));  \
  } while (false)
#define RRP_INVARIANT_MSG(cond, msg) \
  do {                                  \
    (void)sizeof(!(cond));              \
  } while (false)
#define RRP_DCHECK(cond)   \
  do {                     \
    (void)sizeof(!(cond)); \
  } while (false)
#define RRP_DCHECK_MSG(cond, msg) \
  do {                               \
    (void)sizeof(!(cond));           \
  } while (false)

#endif  // RRP_INVARIANTS_ENABLED
