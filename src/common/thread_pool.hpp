// A small fixed-size thread pool with a parallel_for helper.
//
// Used to fan out embarrassingly parallel work: per-VM-class MILP solves,
// Monte-Carlo trials in the rolling-horizon simulator, and the SARIMA
// order grid search.  All parallelism in rrp flows through this pool so
// determinism is preserved: tasks receive their index and write to
// pre-sized slots; no cross-task RNG sharing.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace rrp {

class ThreadPool {
 public:
  /// Creates `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains outstanding tasks and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; the returned future propagates exceptions.
  std::future<void> submit(std::function<void()> task);

  /// Runs fn(i) for i in [0, n), blocking until all complete.  The first
  /// captured exception is rethrown on the caller's thread.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Shared process-wide pool for library internals.
ThreadPool& global_pool();

}  // namespace rrp
