// A small fixed-size thread pool with a parallel_for helper.
//
// Used to fan out embarrassingly parallel work: per-VM-class MILP solves,
// Monte-Carlo trials in the rolling-horizon simulator, and the SARIMA
// order grid search.  All parallelism in rrp flows through this pool so
// determinism is preserved: tasks receive their index and write to
// pre-sized slots; no cross-task RNG sharing.
#pragma once

#include <cstddef>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <vector>

#include "common/sync.hpp"

namespace rrp {

class ThreadPool {
 public:
  /// Creates `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains outstanding tasks and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; the returned future propagates exceptions.
  std::future<void> submit(std::function<void()> task);

  /// Runs fn(i) for i in [0, n), blocking until all complete.  The first
  /// captured exception is rethrown on the caller's thread.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Pops one queued task (if any) and runs it on the calling thread.
  /// Returns false when the queue was empty.  This is the "help while
  /// waiting" primitive: a caller blocked on work it submitted can drain
  /// the queue instead of sleeping, so nested fan-out (e.g. parallel
  /// MILP solves inside a parallel simulation sweep) cannot deadlock the
  /// pool.
  bool try_execute_one();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  Mutex mutex_;
  CondVar cv_;
  std::queue<std::packaged_task<void()>> tasks_ RRP_GUARDED_BY(mutex_);
  bool stopping_ RRP_GUARDED_BY(mutex_) = false;
};

/// A work handle over a batch of pool tasks.  `run` enqueues a task that
/// is tracked by this group; `wait` blocks until every tracked task has
/// finished, *helping* — executing queued pool tasks on the calling
/// thread — while the group is still pending, and rethrows the first
/// exception any tracked task raised.  Unlike collecting futures from
/// ThreadPool::submit, a TaskGroup never parks the caller while runnable
/// work exists, which keeps nested pool usage deadlock free.
///
/// The destructor waits for stragglers (swallowing their exceptions), so
/// a group never outlives the state its tasks reference.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool) : pool_(pool) {}
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Enqueues `task` on the pool and tracks it in this group.
  void run(std::function<void()> task);

  /// Blocks until all tasks run so far have completed, executing queued
  /// pool work on this thread while waiting.  Rethrows the first tracked
  /// exception.  The group is reusable after wait() returns.
  void wait();

 private:
  ThreadPool& pool_;
  Mutex mutex_;
  CondVar done_cv_;
  std::size_t pending_ RRP_GUARDED_BY(mutex_) = 0;
  std::exception_ptr first_error_ RRP_GUARDED_BY(mutex_);
};

/// Shared process-wide pool for library internals.
ThreadPool& global_pool();

}  // namespace rrp
