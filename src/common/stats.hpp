// Descriptive statistics used across the predictability study (paper
// Section IV-A): quantiles, box-and-whisker outlier fences, histograms,
// and the moment summaries the trace generator is calibrated against.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace rrp::stats {

/// Arithmetic mean.  Requires a non-empty sample.
double mean(std::span<const double> x);

/// Unbiased sample variance (n-1 denominator).  Requires n >= 2.
double variance(std::span<const double> x);

/// Unbiased sample standard deviation.  Requires n >= 2.
double stddev(std::span<const double> x);

/// Sample skewness (adjusted Fisher-Pearson).  Requires n >= 3.
double skewness(std::span<const double> x);

/// Sample excess kurtosis.  Requires n >= 4.
double excess_kurtosis(std::span<const double> x);

/// Quantile with linear interpolation (R type-7, the R default used by
/// the paper's box plots).  p in [0, 1]; requires a non-empty sample.
double quantile(std::span<const double> x, double p);

/// Median (type-7 quantile at p = 0.5).
double median(std::span<const double> x);

/// Five-number summary plus IQR-based whisker fences, matching the
/// box-and-whisker construction of paper Figure 3.
struct BoxSummary {
  double min = 0, q1 = 0, median = 0, q3 = 0, max = 0;
  double iqr = 0;
  double lower_fence = 0;  ///< q1 - whisker_k * iqr
  double upper_fence = 0;  ///< q3 + whisker_k * iqr
  std::size_t n = 0;
  std::size_t n_outliers = 0;      ///< points beyond either fence
  double outlier_fraction = 0.0;   ///< n_outliers / n
};

/// Computes the box summary with whiskers at `whisker_k` IQRs (paper
/// uses the conventional 1.5).
BoxSummary box_summary(std::span<const double> x, double whisker_k = 1.5);

/// Returns a copy of `x` with points beyond the box fences removed
/// ("having trimmed out the outliers", paper Section IV-A2).
std::vector<double> trim_outliers(std::span<const double> x,
                                  double whisker_k = 1.5);

/// Fixed-width histogram over [lo, hi] with `bins` equal bins.
struct Histogram {
  double lo = 0, hi = 0;
  std::vector<std::size_t> counts;
  /// Center of bin i.
  double bin_center(std::size_t i) const;
  double bin_width() const;
  std::size_t total() const;
};

/// Builds a histogram; values outside [lo, hi] are clamped into the
/// boundary bins.  Requires bins >= 1 and lo < hi.
Histogram histogram(std::span<const double> x, double lo, double hi,
                    std::size_t bins);

/// Builds a histogram spanning the sample range.
Histogram histogram(std::span<const double> x, std::size_t bins);

/// Gaussian kernel density estimate evaluated at `at`, using Silverman's
/// rule-of-thumb bandwidth (the "density" curve in paper Figure 5).
std::vector<double> kde(std::span<const double> x,
                        std::span<const double> at);

/// Pearson correlation coefficient.  Requires equal sizes, n >= 2 and
/// non-degenerate inputs.
double pearson_correlation(std::span<const double> x,
                           std::span<const double> y);

/// Mean squared (prediction) error between two equally sized series.
double mse(std::span<const double> actual, std::span<const double> predicted);

}  // namespace rrp::stats
