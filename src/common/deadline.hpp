// Wall-clock budgets for anytime solving.
//
// A Deadline is a cheap, copyable handle that solver loops poll once per
// iteration/node; when it expires the solver returns its best incumbent
// and proven bound instead of running on (the "anytime contract").  Time
// flows through an injectable Clock so tests drive expiry with a
// FakeClock and stay fully deterministic; this file is the only place in
// the library allowed to touch std::chrono directly (enforced by the
// `no-raw-clock` rrp_lint rule).
#pragma once

#include <cstdint>

#include "common/sync.hpp"

namespace rrp::common {

/// Monotonic time source measured in seconds.  Implementations must be
/// non-decreasing; absolute origin is unspecified.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual double now_seconds() const = 0;
};

/// The process-wide monotonic clock (std::chrono::steady_clock).
const Clock& real_clock();

/// Deterministic clock for tests.  `set`/`advance` move time manually;
/// `set_auto_advance` makes every read advance time by a fixed step, so
/// "the deadline expires after exactly N solver iterations" is a
/// reproducible scenario rather than a race against the host machine.
/// Reads and writes are serialised internally so a FakeClock can drive
/// deadlines polled concurrently by parallel branch & bound workers
/// (auto-advance then counts total polls across all threads).
class FakeClock final : public Clock {
 public:
  explicit FakeClock(double start_seconds = 0.0) : now_(start_seconds) {}

  double now_seconds() const override {
    MutexLock lock(mutex_);
    ++reads_;
    const double t = now_;
    now_ += step_;
    return t;
  }

  void set(double seconds) {
    MutexLock lock(mutex_);
    now_ = seconds;
  }
  void advance(double seconds) {
    MutexLock lock(mutex_);
    now_ += seconds;
  }
  void set_auto_advance(double seconds_per_read) {
    MutexLock lock(mutex_);
    step_ = seconds_per_read;
  }

  /// Number of now_seconds() calls so far (deadline polls observed).
  std::uint64_t reads() const {
    MutexLock lock(mutex_);
    return reads_;
  }

 private:
  mutable Mutex mutex_;
  mutable double now_ RRP_GUARDED_BY(mutex_) = 0.0;
  double step_ RRP_GUARDED_BY(mutex_) = 0.0;
  mutable std::uint64_t reads_ RRP_GUARDED_BY(mutex_) = 0;
};

/// A point in time after which a solve must wind down.  Default-constructed
/// deadlines are unlimited and cost a single pointer compare per poll, so
/// threading one through hot loops is free when no budget is set.
class Deadline {
 public:
  /// Unlimited: never expires.
  Deadline() = default;

  static Deadline unlimited() { return Deadline{}; }

  /// Expires `seconds` from now on the process monotonic clock.  A
  /// non-finite budget yields an unlimited deadline; zero or negative
  /// budgets are already expired.  NaN budgets are rejected.
  static Deadline after(double seconds);

  /// Same, but against an injected clock (tests).  The clock must
  /// outlive the deadline.
  static Deadline after(double seconds, const Clock& clock);

  bool is_unlimited() const { return clock_ == nullptr; }

  bool expired() const {
    return clock_ != nullptr && clock_->now_seconds() >= expires_at_;
  }

  /// Seconds until expiry (negative once past it); +infinity when
  /// unlimited.
  double remaining_seconds() const;

 private:
  Deadline(const Clock* clock, double expires_at)
      : clock_(clock), expires_at_(expires_at) {}

  const Clock* clock_ = nullptr;  // null = unlimited
  double expires_at_ = 0.0;
};

}  // namespace rrp::common
