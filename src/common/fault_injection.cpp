#include "common/fault_injection.hpp"

#include <cmath>

#include "common/error.hpp"

namespace rrp::testing {

const char* to_string(SolverFaultKind kind) {
  switch (kind) {
    case SolverFaultKind::Timeout:
      return "solver-timeout";
    case SolverFaultKind::NumericalFailure:
      return "numerical-failure";
  }
  return "unknown";
}

const char* to_string(PriceFaultKind kind) {
  switch (kind) {
    case PriceFaultKind::Gap:
      return "price-gap";
    case PriceFaultKind::Nan:
      return "price-nan";
    case PriceFaultKind::Spike:
      return "price-spike";
    case PriceFaultKind::Delayed:
      return "price-delayed";
  }
  return "unknown";
}

void FaultInjector::inject_solver_timeout(std::size_t slot) {
  MutexLock lock(mutex_);
  solver_faults_[slot] = SolverFaultKind::Timeout;
}

void FaultInjector::inject_solver_numerical_failure(std::size_t slot) {
  MutexLock lock(mutex_);
  solver_faults_[slot] = SolverFaultKind::NumericalFailure;
}

void FaultInjector::inject_price_gap(std::size_t slot) {
  MutexLock lock(mutex_);
  price_faults_[slot] = PriceFault{PriceFaultKind::Gap, 1.0};
}

void FaultInjector::inject_price_nan(std::size_t slot) {
  MutexLock lock(mutex_);
  price_faults_[slot] = PriceFault{PriceFaultKind::Nan, 1.0};
}

void FaultInjector::inject_price_spike(std::size_t slot) {
  double factor;
  {
    MutexLock lock(mutex_);
    factor = rng_.uniform(20.0, 100.0);
  }
  inject_price_spike(slot, factor);
}

void FaultInjector::inject_price_spike(std::size_t slot, double factor) {
  RRP_EXPECTS(std::isfinite(factor) && factor > 0.0);
  MutexLock lock(mutex_);
  price_faults_[slot] = PriceFault{PriceFaultKind::Spike, factor};
}

void FaultInjector::inject_price_delay(std::size_t slot) {
  MutexLock lock(mutex_);
  price_faults_[slot] = PriceFault{PriceFaultKind::Delayed, 1.0};
}

void FaultInjector::inject_revocation(std::size_t slot) {
  double fraction;
  {
    MutexLock lock(mutex_);
    fraction = rng_.uniform(0.05, 0.95);
  }
  inject_revocation(slot, fraction);
}

void FaultInjector::inject_revocation(std::size_t slot, double fraction) {
  RRP_EXPECTS(std::isfinite(fraction) && fraction > 0.0 && fraction < 1.0);
  MutexLock lock(mutex_);
  revocation_faults_[slot] = RevocationFault{false, fraction};
}

void FaultInjector::inject_revocation_storm(std::size_t slot) {
  double fraction;
  {
    MutexLock lock(mutex_);
    fraction = rng_.uniform(0.05, 0.95);
  }
  inject_revocation_storm(slot, fraction);
}

void FaultInjector::inject_revocation_storm(std::size_t slot,
                                            double fraction) {
  RRP_EXPECTS(std::isfinite(fraction) && fraction > 0.0 && fraction < 1.0);
  MutexLock lock(mutex_);
  revocation_faults_[slot] = RevocationFault{true, fraction};
}

std::size_t FaultInjector::schedule_revocations(std::size_t horizon,
                                                double rate,
                                                double storm_rate) {
  RRP_EXPECTS(rate >= 0.0 && rate <= 1.0);
  RRP_EXPECTS(storm_rate >= 0.0 && storm_rate <= 1.0);
  MutexLock lock(mutex_);
  std::size_t armed = 0;
  for (std::size_t slot = 0; slot < horizon; ++slot) {
    // Fixed draw count per slot: the timeline for slot t never depends
    // on which earlier slots were armed.
    const double u_hit = rng_.uniform();
    const double u_storm = rng_.uniform();
    const double fraction = rng_.uniform(0.05, 0.95);
    if (u_hit >= rate) continue;
    revocation_faults_[slot] =
        RevocationFault{u_storm < storm_rate, fraction};
    ++armed;
  }
  return armed;
}

std::optional<SolverFaultKind> FaultInjector::solver_fault(
    std::size_t slot) const {
  MutexLock lock(mutex_);
  const auto it = solver_faults_.find(slot);
  if (it == solver_faults_.end()) return std::nullopt;
  return it->second;
}

std::optional<PriceFault> FaultInjector::price_fault(std::size_t slot) const {
  MutexLock lock(mutex_);
  const auto it = price_faults_.find(slot);
  if (it == price_faults_.end()) return std::nullopt;
  return it->second;
}

std::optional<RevocationFault> FaultInjector::revocation_fault(
    std::size_t slot) const {
  MutexLock lock(mutex_);
  const auto it = revocation_faults_.find(slot);
  if (it == revocation_faults_.end()) return std::nullopt;
  return it->second;
}

}  // namespace rrp::testing
