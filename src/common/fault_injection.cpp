#include "common/fault_injection.hpp"

#include <cmath>

#include "common/error.hpp"

namespace rrp::testing {

const char* to_string(SolverFaultKind kind) {
  switch (kind) {
    case SolverFaultKind::Timeout:
      return "solver-timeout";
    case SolverFaultKind::NumericalFailure:
      return "numerical-failure";
  }
  return "unknown";
}

const char* to_string(PriceFaultKind kind) {
  switch (kind) {
    case PriceFaultKind::Gap:
      return "price-gap";
    case PriceFaultKind::Nan:
      return "price-nan";
    case PriceFaultKind::Spike:
      return "price-spike";
    case PriceFaultKind::Delayed:
      return "price-delayed";
  }
  return "unknown";
}

void FaultInjector::inject_solver_timeout(std::size_t slot) {
  MutexLock lock(mutex_);
  solver_faults_[slot] = SolverFaultKind::Timeout;
}

void FaultInjector::inject_solver_numerical_failure(std::size_t slot) {
  MutexLock lock(mutex_);
  solver_faults_[slot] = SolverFaultKind::NumericalFailure;
}

void FaultInjector::inject_price_gap(std::size_t slot) {
  MutexLock lock(mutex_);
  price_faults_[slot] = PriceFault{PriceFaultKind::Gap, 1.0};
}

void FaultInjector::inject_price_nan(std::size_t slot) {
  MutexLock lock(mutex_);
  price_faults_[slot] = PriceFault{PriceFaultKind::Nan, 1.0};
}

void FaultInjector::inject_price_spike(std::size_t slot) {
  double factor;
  {
    MutexLock lock(mutex_);
    factor = rng_.uniform(20.0, 100.0);
  }
  inject_price_spike(slot, factor);
}

void FaultInjector::inject_price_spike(std::size_t slot, double factor) {
  RRP_EXPECTS(std::isfinite(factor) && factor > 0.0);
  MutexLock lock(mutex_);
  price_faults_[slot] = PriceFault{PriceFaultKind::Spike, factor};
}

void FaultInjector::inject_price_delay(std::size_t slot) {
  MutexLock lock(mutex_);
  price_faults_[slot] = PriceFault{PriceFaultKind::Delayed, 1.0};
}

std::optional<SolverFaultKind> FaultInjector::solver_fault(
    std::size_t slot) const {
  MutexLock lock(mutex_);
  const auto it = solver_faults_.find(slot);
  if (it == solver_faults_.end()) return std::nullopt;
  return it->second;
}

std::optional<PriceFault> FaultInjector::price_fault(std::size_t slot) const {
  MutexLock lock(mutex_);
  const auto it = price_faults_.find(slot);
  if (it == price_faults_.end()) return std::nullopt;
  return it->second;
}

}  // namespace rrp::testing
