// Annotated synchronization primitives: the one home of raw std::mutex.
//
// Every lock in rrp flows through these wrappers so lock discipline is a
// *compile-time* contract, not a convention: the types carry Clang
// thread-safety capability annotations, and the CI `thread-safety` job
// builds the whole tree with `-Wthread-safety -Werror`, rejecting any
// read of a RRP_GUARDED_BY field without its mutex held, any
// RRP_REQUIRES call on an unheld mutex, and any unbalanced
// acquire/release.  Under non-Clang compilers the macros expand to
// nothing and the wrappers are zero-cost shims over the std types.
//
// The AST lint (tools/lint/rrp_lint_ast.py, rule raw-sync-primitive)
// forbids std::mutex / std::lock_guard / std::condition_variable
// everywhere outside this header, and rule unnamed-lock-temporary
// catches the `MutexLock{mu_};` immediately-destructed bug class — which
// is additionally rejected at compile time by the [[nodiscard]]
// constructors below (see tests/negative_compile/).
#pragma once

#include <condition_variable>
#include <mutex>

// -- Clang thread-safety attribute spellings ------------------------------
#if defined(__clang__) && !defined(SWIG) && defined(__has_attribute)
#if __has_attribute(capability)
#define RRP_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef RRP_THREAD_ANNOTATION_
#define RRP_THREAD_ANNOTATION_(x)  // no-op outside Clang
#endif

/// Declares a type to be a lockable capability ("mutex").
#define RRP_CAPABILITY(x) RRP_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII type that acquires a capability at construction and
/// releases it at destruction.
#define RRP_SCOPED_CAPABILITY RRP_THREAD_ANNOTATION_(scoped_lockable)

/// Field may only be read or written while holding `x`.
#define RRP_GUARDED_BY(x) RRP_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer field whose *pointee* is protected by `x`.
#define RRP_PT_GUARDED_BY(x) RRP_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function may only be called while holding the listed capabilities.
#define RRP_REQUIRES(...) \
  RRP_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function acquires the listed capabilities (held on return).
#define RRP_ACQUIRE(...) \
  RRP_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities (unheld on return).
#define RRP_RELEASE(...) \
  RRP_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function acquires the capability only when it returns `result`.
#define RRP_TRY_ACQUIRE(result, ...) \
  RRP_THREAD_ANNOTATION_(try_acquire_capability(result, __VA_ARGS__))

/// Function must be called with the listed capabilities *not* held
/// (deadlock prevention: it acquires them itself).
#define RRP_EXCLUDES(...) RRP_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the named capability.
#define RRP_RETURN_CAPABILITY(x) RRP_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch for code whose locking is correct but inexpressible
/// (e.g. locking protocols proven by thread joins).  Use sparingly and
/// leave a comment explaining why the analysis cannot see the proof.
#define RRP_NO_THREAD_SAFETY_ANALYSIS \
  RRP_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace rrp {

class CondVar;

/// A standard mutex carrying the "mutex" capability.  Prefer MutexLock
/// over calling lock()/unlock() directly; the manual form exists for
/// protocols RAII cannot express.
class RRP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() RRP_ACQUIRE() { mu_.lock(); }
  void unlock() RRP_RELEASE() { mu_.unlock(); }
  bool try_lock() RRP_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  friend class MutexLock;
  std::mutex mu_;
};

/// RAII lock over a Mutex: acquires at construction, releases at
/// destruction, with explicit unlock()/lock() for protocols that drop
/// the lock mid-scope (e.g. TaskGroup's help-while-waiting loop).
///
/// The constructor is [[nodiscard]] so the immediately-destructed
/// temporary `MutexLock{mu_};` — which locks and unlocks in the same
/// statement, guarding nothing — fails compilation under -Werror on GCC
/// and Clang alike.  The parenthesised spelling `MutexLock(mu_);` is a
/// vexing-parse *declaration* of a new variable and fails too, because
/// MutexLock has no default constructor.
class RRP_SCOPED_CAPABILITY MutexLock {
 public:
  [[nodiscard]] explicit MutexLock(Mutex& mu) RRP_ACQUIRE(mu)
      : lock_(mu.mu_) {}

  // Body (not `= default`) because GNU-style attributes are not
  // accepted on defaulted members by every compiler; the unique_lock
  // member performs the actual unlock.
  ~MutexLock() RRP_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Releases the mutex before the end of scope; balance with lock().
  void unlock() RRP_RELEASE() { lock_.unlock(); }

  /// Re-acquires after an unlock().
  void lock() RRP_ACQUIRE() { lock_.lock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable paired with Mutex/MutexLock.  wait() atomically
/// releases and re-acquires the lock; to keep the analysis sound, write
/// wait loops explicitly —
///
///   MutexLock lock(mutex_);
///   while (!ready_) cv_.wait(lock);   // ready_ is RRP_GUARDED_BY(mutex_)
///
/// — rather than with a predicate lambda (the lambda body would be
/// analysed without the caller's capability set and warn spuriously).
class CondVar {
 public:
  CondVar() = default;

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified; `lock` must hold the mutex guarding the
  /// predicate state.  The lock is held again when wait returns.
  void wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  /// Blocks until notified or `timeout` elapses.
  template <typename Rep, typename Period>
  std::cv_status wait_for(MutexLock& lock,
                          const std::chrono::duration<Rep, Period>& timeout) {
    return cv_.wait_for(lock.lock_, timeout);
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace rrp
