// Special functions backing the statistical tests in the predictability
// study: normal CDF/quantile (Shapiro-Wilk weights, confidence bands),
// and the regularised incomplete gamma (chi-square p-values for the
// Ljung-Box portmanteau test).
#pragma once

namespace rrp::special {

/// Standard normal probability density.
double normal_pdf(double x);

/// Standard normal cumulative distribution function.
double normal_cdf(double x);

/// Inverse of the standard normal CDF (Acklam's rational approximation
/// with one Halley refinement; |error| < 1e-12).  Requires p in (0, 1).
double normal_quantile(double p);

/// Regularised lower incomplete gamma P(a, x), a > 0, x >= 0.
double gamma_p(double a, double x);

/// Chi-square CDF with k > 0 degrees of freedom.
double chi_square_cdf(double x, double k);

/// Upper-tail chi-square p-value.
double chi_square_sf(double x, double k);

}  // namespace rrp::special
