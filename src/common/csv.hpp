// Minimal CSV reading/writing: enough to load real spot-price traces
// (timestamp,price rows) and to dump experiment series for plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace rrp::csv {

/// A parsed CSV document: optional header plus string cells.
struct Document {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};

/// Parses CSV text.  Supports quoted fields with embedded commas and
/// doubled quotes; trims \r at line ends.  If `has_header`, the first
/// record populates `header`.
Document parse(const std::string& text, bool has_header);

/// Reads and parses a CSV file.  Throws rrp::Error on I/O failure.
Document read_file(const std::string& path, bool has_header);

/// Writes rows (with optional header) as RFC-4180 CSV.
void write(std::ostream& os, const Document& doc);

/// Quotes a single field if it contains a comma, quote, or newline.
std::string escape_field(const std::string& field);

}  // namespace rrp::csv
