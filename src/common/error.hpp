// Error handling primitives shared by every rrp module.
//
// Follows the C++ Core Guidelines contract style: preconditions are
// checked with RRP_EXPECTS, postconditions/invariants with RRP_ENSURES.
// Violations throw rrp::ContractViolation (derived from rrp::Error) so
// tests can assert on them; library code never calls std::abort.
#pragma once

#include <stdexcept>
#include <string>

namespace rrp {

/// Base class for every exception thrown by the rrp library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a precondition/postcondition/invariant check fails.
class ContractViolation : public Error {
 public:
  ContractViolation(const char* kind, const char* cond, const char* file,
                    int line, const std::string& detail = {})
      : Error(std::string(kind) + " failed: " + cond + " at " + file + ":" +
              std::to_string(line) +
              (detail.empty() ? std::string() : " (" + detail + ")")),
        file_(file),
        line_(line) {}

  const char* file() const noexcept { return file_; }
  int line() const noexcept { return line_; }

 private:
  const char* file_;
  int line_;
};

/// Thrown when an input value is outside the documented domain.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown when a numerical routine fails to converge or degenerates.
class NumericalError : public Error {
 public:
  explicit NumericalError(const std::string& what) : Error(what) {}
};

/// Thrown when a deadline expires inside an exact solver that has no
/// anytime fallback (the Wagner-Whitin and scenario-tree DP paths).
/// Anytime solvers (branch & bound) return a TimeLimit *status* with
/// their best incumbent instead; the DPs have no partial answer that is
/// sound to return, so expiry surfaces as this exception.
class TimeLimitExceeded : public Error {
 public:
  explicit TimeLimitExceeded(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* cond,
                                       const char* file, int line) {
  throw ContractViolation(kind, cond, file, line);
}
}  // namespace detail

}  // namespace rrp

#define RRP_EXPECTS(cond)                                                  \
  do {                                                                     \
    if (!(cond))                                                           \
      ::rrp::detail::contract_fail("precondition", #cond, __FILE__,        \
                                   __LINE__);                              \
  } while (false)

#define RRP_ENSURES(cond)                                                  \
  do {                                                                     \
    if (!(cond))                                                           \
      ::rrp::detail::contract_fail("postcondition", #cond, __FILE__,       \
                                   __LINE__);                              \
  } while (false)
