#include "common/invariant.hpp"

#include <atomic>

namespace rrp {

namespace {
std::atomic<std::uint64_t> g_checks{0};
}  // namespace

std::uint64_t invariant_checks_executed() noexcept {
  return g_checks.load(std::memory_order_relaxed);
}

namespace detail {

void count_invariant_check() noexcept {
  g_checks.fetch_add(1, std::memory_order_relaxed);
}

void invariant_fail(const char* kind, const char* cond, const char* file,
                    int line, const std::string& detail) {
  throw ContractViolation(kind, cond, file, line, detail);
}

}  // namespace detail
}  // namespace rrp
