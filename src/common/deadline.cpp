#include "common/deadline.hpp"

#include <chrono>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace rrp::common {

namespace {

class SteadyClock final : public Clock {
 public:
  double now_seconds() const override {
    const auto t = std::chrono::steady_clock::now().time_since_epoch();
    return std::chrono::duration<double>(t).count();
  }
};

}  // namespace

const Clock& real_clock() {
  static const SteadyClock clock;
  return clock;
}

Deadline Deadline::after(double seconds) {
  return after(seconds, real_clock());
}

Deadline Deadline::after(double seconds, const Clock& clock) {
  RRP_EXPECTS(!std::isnan(seconds));
  if (std::isinf(seconds) && seconds > 0.0) return unlimited();
  return Deadline(&clock, clock.now_seconds() + seconds);
}

double Deadline::remaining_seconds() const {
  if (clock_ == nullptr) return std::numeric_limits<double>::infinity();
  return expires_at_ - clock_->now_seconds();
}

}  // namespace rrp::common
