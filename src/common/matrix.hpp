// Dense row-major matrix of doubles.  Sized for the basis algebra of the
// revised simplex (hundreds to a few thousand rows), not BLAS-scale work.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace rrp {

class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix initialised to `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c);
  double operator()(std::size_t r, std::size_t c) const;

  /// Contiguous view of row r.
  std::span<double> row(std::size_t r);
  std::span<const double> row(std::size_t r) const;

  /// y = A x.  Requires x.size() == cols().
  std::vector<double> multiply(std::span<const double> x) const;

  /// y = A^T x.  Requires x.size() == rows().
  std::vector<double> multiply_transpose(std::span<const double> x) const;

  Matrix operator*(const Matrix& rhs) const;

  /// In-place Gauss-Jordan inverse with partial pivoting.  Throws
  /// rrp::NumericalError if (numerically) singular.
  Matrix inverse() const;

  /// Solves A x = b by Gaussian elimination with partial pivoting.
  std::vector<double> solve(std::span<const double> b) const;

  /// Max-abs difference to another matrix of identical shape.
  double max_abs_diff(const Matrix& other) const;

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<double> data_;
};

}  // namespace rrp
