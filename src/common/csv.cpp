#include "common/csv.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace rrp::csv {

namespace {

std::vector<std::string> parse_record(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else if (c != '\r') {
      cur.push_back(c);
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

}  // namespace

Document parse(const std::string& text, bool has_header) {
  Document doc;
  std::istringstream in(text);
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (line.empty() || line == "\r") continue;
    auto fields = parse_record(line);
    if (first && has_header) {
      doc.header = std::move(fields);
    } else {
      doc.rows.push_back(std::move(fields));
    }
    first = false;
  }
  return doc;
}

Document read_file(const std::string& path, bool has_header) {
  std::ifstream in(path);
  if (!in) throw Error("csv: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str(), has_header);
}

std::string escape_field(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void write(std::ostream& os, const Document& doc) {
  auto write_row = [&os](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      os << escape_field(row[i]);
    }
    os << '\n';
  };
  if (!doc.header.empty()) write_row(doc.header);
  for (const auto& row : doc.rows) write_row(row);
}

}  // namespace rrp::csv
