#include "common/table.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace rrp {

void Table::set_header(std::vector<std::string> header) {
  RRP_EXPECTS(rows_.empty());
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  RRP_EXPECTS(header_.empty() || row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

std::string Table::pct(double fraction, int precision) {
  return num(100.0 * fraction, precision) + "%";
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto grow = [&widths](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());
  };
  grow(header_);
  for (const auto& r : rows_) grow(r);

  os << "== " << title_ << " ==\n";
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << "  " << row[i]
         << std::string(widths[i] - row[i].size(), ' ');
    }
    os << '\n';
  };
  if (!header_.empty()) {
    print_row(header_);
    std::size_t total = 0;
    for (auto w : widths) total += w + 2;
    os << "  " << std::string(total > 2 ? total - 2 : 0, '-') << '\n';
  }
  for (const auto& r : rows_) print_row(r);
  os << '\n';
}

std::string sparkline(const std::vector<double>& values, int width) {
  if (values.empty() || width <= 0) return {};
  static const char* levels[] = {"_", ".", ":", "-", "=", "+", "*", "#"};
  const double lo = *std::min_element(values.begin(), values.end());
  const double hi = *std::max_element(values.begin(), values.end());
  const double span = (hi > lo) ? hi - lo : 1.0;
  std::string out;
  const auto n = static_cast<double>(values.size());
  for (int i = 0; i < width; ++i) {
    const auto idx = static_cast<std::size_t>(
        std::min(n - 1.0, std::floor(n * i / width)));
    const double frac = (values[idx] - lo) / span;
    const int lvl = std::clamp(static_cast<int>(frac * 7.999), 0, 7);
    out += levels[lvl];
  }
  return out;
}

}  // namespace rrp
