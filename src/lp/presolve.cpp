#include "lp/presolve.hpp"

#include <cmath>

#include "lp/simplex.hpp"

namespace rrp::lp {

namespace {

constexpr double kFeasTol = 1e-9;

struct WorkingState {
  std::vector<double> lo, hi, obj;       // per original variable
  std::vector<std::vector<Entry>> rows;  // live rows (entries on live vars)
  std::vector<double> row_lo, row_hi;
  std::vector<bool> row_live;
  std::vector<bool> var_live;
  double offset = 0.0;
  bool infeasible = false;
  std::size_t rows_removed = 0;
};

/// Fixes variable j at value v: moves its contribution into row bounds
/// and the objective offset.
void fix_variable(WorkingState& s, std::size_t j, double v) {
  s.var_live[j] = false;
  s.offset += s.obj[j] * v;
  s.lo[j] = s.hi[j] = v;
  for (std::size_t r = 0; r < s.rows.size(); ++r) {
    if (!s.row_live[r]) continue;
    for (auto it = s.rows[r].begin(); it != s.rows[r].end(); ++it) {
      if (it->col == j) {
        const double shift = it->coeff * v;
        if (s.row_lo[r] > -kInfinity) s.row_lo[r] -= shift;
        if (s.row_hi[r] < kInfinity) s.row_hi[r] -= shift;
        s.rows[r].erase(it);
        break;
      }
    }
  }
}

/// One reduction sweep; returns true if anything changed.
bool sweep(WorkingState& s) {
  bool changed = false;
  // Newly fixed variables (bounds collapsed by singleton rows).
  for (std::size_t j = 0; j < s.var_live.size(); ++j) {
    if (!s.var_live[j]) continue;
    if (s.lo[j] > s.hi[j] + kFeasTol) {
      s.infeasible = true;
      return false;
    }
    if (s.hi[j] - s.lo[j] <= kFeasTol) {
      fix_variable(s, j, 0.5 * (s.lo[j] + s.hi[j]));
      changed = true;
    }
  }
  for (std::size_t r = 0; r < s.rows.size(); ++r) {
    if (!s.row_live[r]) continue;
    if (s.rows[r].empty()) {
      // Empty row: 0 must satisfy the bounds.
      if (s.row_lo[r] > kFeasTol || s.row_hi[r] < -kFeasTol) {
        s.infeasible = true;
        return false;
      }
      s.row_live[r] = false;
      ++s.rows_removed;
      changed = true;
      continue;
    }
    if (s.rows[r].size() == 1) {
      // Singleton row a*x in [lo, hi] -> bound tightening on x.
      const Entry e = s.rows[r].front();
      double lo = s.row_lo[r], hi = s.row_hi[r];
      if (e.coeff < 0.0) std::swap(lo, hi);
      const double new_lo =
          lo <= -kInfinity || lo >= kInfinity ? -kInfinity : lo / e.coeff;
      const double new_hi =
          hi >= kInfinity || hi <= -kInfinity ? kInfinity : hi / e.coeff;
      if (new_lo > s.lo[e.col]) {
        s.lo[e.col] = new_lo;
        changed = true;
      }
      if (new_hi < s.hi[e.col]) {
        s.hi[e.col] = new_hi;
        changed = true;
      }
      if (s.lo[e.col] > s.hi[e.col] + kFeasTol) {
        s.infeasible = true;
        return false;
      }
      s.row_live[r] = false;
      ++s.rows_removed;
      changed = true;
    }
  }
  return changed;
}

}  // namespace

std::vector<double> PresolvedLp::restore(
    const std::vector<double>& reduced_x) const {
  RRP_EXPECTS(reduced_x.size() == var_map.size());
  std::vector<double> x(fixed.size(), 0.0);
  for (std::size_t j = 0; j < fixed.size(); ++j)
    if (fixed[j].has_value()) x[j] = *fixed[j];
  for (std::size_t k = 0; k < var_map.size(); ++k)
    x[var_map[k]] = reduced_x[k];
  return x;
}

PresolvedLp presolve(const LinearProgram& lp) {
  WorkingState s;
  const std::size_t n = lp.num_variables();
  s.lo.resize(n);
  s.hi.resize(n);
  s.obj.resize(n);
  s.var_live.assign(n, true);
  for (std::size_t j = 0; j < n; ++j) {
    s.lo[j] = lp.variable(j).lo;
    s.hi[j] = lp.variable(j).hi;
    s.obj[j] = lp.variable(j).objective;
  }
  for (std::size_t r = 0; r < lp.num_rows(); ++r) {
    s.rows.push_back(lp.row(r).entries);
    s.row_lo.push_back(lp.row(r).lo);
    s.row_hi.push_back(lp.row(r).hi);
    s.row_live.push_back(true);
  }

  while (sweep(s)) {
  }

  PresolvedLp out;
  out.fixed.assign(n, std::nullopt);
  if (s.infeasible) {
    out.infeasible = true;
    return out;
  }
  out.objective_offset = s.offset;
  out.rows_removed = s.rows_removed;

  // Rebuild the reduced program over the surviving variables/rows.
  std::vector<std::size_t> new_index(n, static_cast<std::size_t>(-1));
  out.reduced.set_sense(lp.sense());
  for (std::size_t j = 0; j < n; ++j) {
    if (!s.var_live[j]) {
      out.fixed[j] = s.lo[j];
      ++out.vars_removed;
      continue;
    }
    new_index[j] = out.reduced.add_variable(s.lo[j], s.hi[j], s.obj[j],
                                            lp.variable(j).name);
    out.var_map.push_back(j);
  }
  for (std::size_t r = 0; r < s.rows.size(); ++r) {
    if (!s.row_live[r]) continue;
    std::vector<Entry> entries;
    entries.reserve(s.rows[r].size());
    for (const Entry& e : s.rows[r])
      entries.push_back(Entry{new_index[e.col], e.coeff});
    out.reduced.add_row(std::move(entries), s.row_lo[r], s.row_hi[r],
                        lp.row(r).name);
  }
  return out;
}

Solution presolve_and_solve(const LinearProgram& lp,
                            const SimplexOptions& options) {
  const PresolvedLp pre = presolve(lp);
  Solution sol;
  if (pre.infeasible) {
    sol.status = SolveStatus::Infeasible;
    return sol;
  }
  const Solution reduced = solve(pre.reduced, options);
  sol.status = reduced.status;
  sol.iterations = reduced.iterations;
  if (reduced.status != SolveStatus::Optimal) return sol;
  sol.x = pre.restore(reduced.x);
  sol.objective = lp.objective_value(sol.x);
  return sol;
}

}  // namespace rrp::lp
