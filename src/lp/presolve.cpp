#include "lp/presolve.hpp"

#include <algorithm>
#include <cmath>

#include "lp/simplex.hpp"
#include "obs/obs.hpp"

namespace rrp::lp {

namespace {

constexpr double kFeasTol = 1e-9;
/// Minimum improvement for an activity-derived bound to be applied —
/// keeps marginal tightenings from ping-ponging the fixpoint loop.
constexpr double kTightenTol = 1e-7;
/// Fixpoint sweep cap (bound tightening converges geometrically on
/// pathological cyclic programs; 100 sweeps is far past useful).
constexpr int kMaxSweeps = 100;

struct WorkingState {
  std::vector<double> lo, hi, obj;       // per original variable
  std::vector<std::vector<Entry>> rows;  // live rows (entries on live vars)
  std::vector<double> row_lo, row_hi;
  std::vector<bool> row_live;
  std::vector<bool> var_live;
  /// Variables removed as zero-cost column singletons (value recovered
  /// by PresolvedLp::restore, not by a fixed value).
  std::vector<bool> var_singleton;
  std::vector<PresolvedLp::SingletonRestore> singletons;
  double offset = 0.0;
  /// +1 for Minimize, -1 for Maximize (orients empty-column fixing).
  double sense_sign = 1.0;
  bool infeasible = false;
  std::size_t rows_removed = 0;
};

/// Min/max achievable value of `coeff * x` for x in [lo, hi].
struct TermRange {
  double min = 0.0, max = 0.0;
};

TermRange term_range(double coeff, double lo, double hi) {
  const double a = coeff * lo;
  const double b = coeff * hi;
  return coeff >= 0.0 ? TermRange{a, b} : TermRange{b, a};
}

/// Row activity bounds with infinite contributions tracked separately,
/// so "activity excluding variable j" never computes inf - inf.
struct ActivityBounds {
  double min_finite = 0.0, max_finite = 0.0;
  int min_inf = 0, max_inf = 0;

  double min(int drop_inf = 0, double drop_finite = 0.0) const {
    return min_inf > drop_inf ? -kInfinity : min_finite - drop_finite;
  }
  double max(int drop_inf = 0, double drop_finite = 0.0) const {
    return max_inf > drop_inf ? kInfinity : max_finite - drop_finite;
  }
};

ActivityBounds row_activity(const WorkingState& s, std::size_t r) {
  ActivityBounds act;
  for (const Entry& e : s.rows[r]) {
    const TermRange t = term_range(e.coeff, s.lo[e.col], s.hi[e.col]);
    if (t.min <= -kInfinity)
      ++act.min_inf;
    else
      act.min_finite += t.min;
    if (t.max >= kInfinity)
      ++act.max_inf;
    else
      act.max_finite += t.max;
  }
  return act;
}

/// Fixes variable j at value v: moves its contribution into row bounds
/// and the objective offset.
void fix_variable(WorkingState& s, std::size_t j, double v) {
  s.var_live[j] = false;
  s.offset += s.obj[j] * v;
  s.lo[j] = s.hi[j] = v;
  for (std::size_t r = 0; r < s.rows.size(); ++r) {
    if (!s.row_live[r]) continue;
    for (auto it = s.rows[r].begin(); it != s.rows[r].end(); ++it) {
      if (it->col == j) {
        const double shift = it->coeff * v;
        if (s.row_lo[r] > -kInfinity) s.row_lo[r] -= shift;
        if (s.row_hi[r] < kInfinity) s.row_hi[r] -= shift;
        s.rows[r].erase(it);
        break;
      }
    }
  }
}

/// One reduction sweep; returns true if anything changed.
bool sweep(WorkingState& s) {
  bool changed = false;
  // Newly fixed variables (bounds collapsed by singleton rows).
  for (std::size_t j = 0; j < s.var_live.size(); ++j) {
    if (!s.var_live[j]) continue;
    if (s.lo[j] > s.hi[j] + kFeasTol) {
      s.infeasible = true;
      return false;
    }
    if (s.hi[j] - s.lo[j] <= kFeasTol) {
      fix_variable(s, j, 0.5 * (s.lo[j] + s.hi[j]));
      changed = true;
    }
  }
  for (std::size_t r = 0; r < s.rows.size(); ++r) {
    if (!s.row_live[r]) continue;
    if (s.rows[r].empty()) {
      // Empty row: 0 must satisfy the bounds.
      if (s.row_lo[r] > kFeasTol || s.row_hi[r] < -kFeasTol) {
        s.infeasible = true;
        return false;
      }
      s.row_live[r] = false;
      ++s.rows_removed;
      changed = true;
      continue;
    }
    if (s.rows[r].size() == 1) {
      // Singleton row a*x in [lo, hi] -> bound tightening on x.
      const Entry e = s.rows[r].front();
      double lo = s.row_lo[r], hi = s.row_hi[r];
      if (e.coeff < 0.0) std::swap(lo, hi);
      const double new_lo =
          lo <= -kInfinity || lo >= kInfinity ? -kInfinity : lo / e.coeff;
      const double new_hi =
          hi >= kInfinity || hi <= -kInfinity ? kInfinity : hi / e.coeff;
      if (new_lo > s.lo[e.col]) {
        s.lo[e.col] = new_lo;
        changed = true;
      }
      if (new_hi < s.hi[e.col]) {
        s.hi[e.col] = new_hi;
        changed = true;
      }
      if (s.lo[e.col] > s.hi[e.col] + kFeasTol) {
        s.infeasible = true;
        return false;
      }
      s.row_live[r] = false;
      ++s.rows_removed;
      changed = true;
      continue;
    }
    // Multi-entry rows: activity analysis.
    const ActivityBounds act = row_activity(s, r);
    const double act_min = act.min();
    const double act_max = act.max();
    if (act_min > s.row_hi[r] + kFeasTol || act_max < s.row_lo[r] - kFeasTol) {
      s.infeasible = true;
      return false;
    }
    if (act_min >= s.row_lo[r] - kFeasTol && act_max <= s.row_hi[r] + kFeasTol) {
      // Redundant: every point within variable bounds satisfies it.
      s.row_live[r] = false;
      ++s.rows_removed;
      changed = true;
      continue;
    }
    const bool force_min = act_min > -kInfinity && s.row_hi[r] < kInfinity &&
                           act_min >= s.row_hi[r] - kFeasTol;
    const bool force_max = act_max < kInfinity && s.row_lo[r] > -kInfinity &&
                           act_max <= s.row_lo[r] + kFeasTol;
    if (force_min || force_max) {
      // Forcing constraint: the row is only satisfiable at one extreme
      // activity, pinning every variable to the bound achieving it.
      const std::vector<Entry> entries = s.rows[r];
      for (const Entry& e : entries) {
        const bool at_lo = (e.coeff > 0.0) == force_min;
        fix_variable(s, e.col, at_lo ? s.lo[e.col] : s.hi[e.col]);
      }
      s.row_live[r] = false;
      ++s.rows_removed;
      changed = true;
      continue;
    }
    // Implied variable bounds: a_j x_j must fit between the row bounds
    // minus the extreme activity of the OTHER variables.
    for (const Entry& e : s.rows[r]) {
      const TermRange t = term_range(e.coeff, s.lo[e.col], s.hi[e.col]);
      const double others_min =
          act.min(t.min <= -kInfinity ? 1 : 0,
                  t.min <= -kInfinity ? 0.0 : t.min);
      const double others_max =
          act.max(t.max >= kInfinity ? 1 : 0,
                  t.max >= kInfinity ? 0.0 : t.max);
      // a_j x_j <= row_hi - others_min and a_j x_j >= row_lo - others_max.
      double term_hi = kInfinity, term_lo = -kInfinity;
      if (s.row_hi[r] < kInfinity && others_min > -kInfinity)
        term_hi = s.row_hi[r] - others_min;
      if (s.row_lo[r] > -kInfinity && others_max < kInfinity)
        term_lo = s.row_lo[r] - others_max;
      double new_lo = -kInfinity, new_hi = kInfinity;
      if (e.coeff > 0.0) {
        if (term_lo > -kInfinity) new_lo = term_lo / e.coeff;
        if (term_hi < kInfinity) new_hi = term_hi / e.coeff;
      } else {
        if (term_hi < kInfinity) new_lo = term_hi / e.coeff;
        if (term_lo > -kInfinity) new_hi = term_lo / e.coeff;
      }
      if (new_lo > s.lo[e.col] + kTightenTol * (1.0 + std::fabs(new_lo))) {
        s.lo[e.col] = new_lo;
        changed = true;
      }
      if (new_hi < s.hi[e.col] - kTightenTol * (1.0 + std::fabs(new_hi))) {
        s.hi[e.col] = new_hi;
        changed = true;
      }
      if (s.lo[e.col] > s.hi[e.col] + kFeasTol) {
        s.infeasible = true;
        return false;
      }
    }
  }
  // Column pass: occurrence counts over the live rows.
  std::vector<std::size_t> col_count(s.var_live.size(), 0);
  std::vector<std::size_t> col_row(s.var_live.size(), 0);
  for (std::size_t r = 0; r < s.rows.size(); ++r) {
    if (!s.row_live[r]) continue;
    for (const Entry& e : s.rows[r]) {
      ++col_count[e.col];
      col_row[e.col] = r;
    }
  }
  for (std::size_t j = 0; j < s.var_live.size(); ++j) {
    if (!s.var_live[j]) continue;
    if (col_count[j] == 0) {
      // Empty column: fix at the objective-optimising bound.  An
      // infinite optimising bound means the LP is unbounded in x_j;
      // leave it for the simplex to report.
      const double c = s.sense_sign * s.obj[j];
      const double v = c > 0.0   ? s.lo[j]
                       : c < 0.0 ? s.hi[j]
                                 : std::min(std::max(0.0, s.lo[j]), s.hi[j]);
      if (std::isfinite(v)) {
        fix_variable(s, j, v);
        changed = true;
      }
      continue;
    }
    if (col_count[j] != 1 || s.obj[j] != 0.0) continue;
    // Zero-cost column singleton: eliminate the variable AND its row
    // when a_j x_j can absorb any feasible activity of the rest.
    const std::size_t r = col_row[j];
    double coeff = 0.0;
    ActivityBounds rest;
    std::vector<Entry> others;
    for (const Entry& e : s.rows[r]) {
      if (e.col == j) {
        coeff = e.coeff;
        continue;
      }
      others.push_back(e);
      const TermRange t = term_range(e.coeff, s.lo[e.col], s.hi[e.col]);
      if (t.min <= -kInfinity)
        ++rest.min_inf;
      else
        rest.min_finite += t.min;
      if (t.max >= kInfinity)
        ++rest.max_inf;
      else
        rest.max_finite += t.max;
    }
    const TermRange span = term_range(coeff, s.lo[j], s.hi[j]);
    // Need row_lo - rest <= span.max and row_hi - rest >= span.min for
    // every reachable rest, i.e. at the extreme rests.
    const bool lo_ok = s.row_lo[r] <= -kInfinity || span.max >= kInfinity ||
                       (rest.min() > -kInfinity &&
                        s.row_lo[r] - rest.min() <= span.max + kFeasTol);
    const bool hi_ok = s.row_hi[r] >= kInfinity || span.min <= -kInfinity ||
                       (rest.max() < kInfinity &&
                        s.row_hi[r] - rest.max() >= span.min - kFeasTol);
    if (!lo_ok || !hi_ok) continue;
    s.singletons.push_back({j, coeff, s.lo[j], s.hi[j], s.row_lo[r],
                            s.row_hi[r], std::move(others)});
    s.var_live[j] = false;
    s.var_singleton[j] = true;
    s.row_live[r] = false;
    ++s.rows_removed;
    changed = true;
  }
  return changed;
}

}  // namespace

std::vector<double> PresolvedLp::restore(
    const std::vector<double>& reduced_x) const {
  RRP_EXPECTS(reduced_x.size() == var_map.size());
  std::vector<double> x(fixed.size(), 0.0);
  for (std::size_t j = 0; j < fixed.size(); ++j)
    if (fixed[j].has_value()) x[j] = *fixed[j];
  for (std::size_t k = 0; k < var_map.size(); ++k)
    x[var_map[k]] = reduced_x[k];
  // Recompute eliminated column singletons in reverse elimination
  // order: a record's `others` may reference variables recovered by a
  // later record.
  for (auto it = singletons.rbegin(); it != singletons.rend(); ++it) {
    double rest = 0.0;
    for (const Entry& e : it->others) rest += e.coeff * x[e.col];
    const TermRange span = term_range(it->coeff, it->var_lo, it->var_hi);
    double t_lo = span.min, t_hi = span.max;
    if (it->row_lo > -kInfinity) t_lo = std::max(t_lo, it->row_lo - rest);
    if (it->row_hi < kInfinity) t_hi = std::min(t_hi, it->row_hi - rest);
    // Elimination guaranteed [t_lo, t_hi] nonempty (up to tolerance);
    // prefer 0 for a tidy solution vector.
    const double t = std::min(std::max(0.0, t_lo), std::max(t_lo, t_hi));
    x[it->var] = t / it->coeff;
  }
  return x;
}

PresolvedLp presolve(const LinearProgram& lp) {
  RRP_TRACE_SPAN("lp.presolve");
  RRP_COUNTER_ADD("rrp.presolve.calls", 1);
  WorkingState s;
  const std::size_t n = lp.num_variables();
  s.lo.resize(n);
  s.hi.resize(n);
  s.obj.resize(n);
  s.var_live.assign(n, true);
  s.var_singleton.assign(n, false);
  s.sense_sign = lp.sense() == Sense::Minimize ? 1.0 : -1.0;
  for (std::size_t j = 0; j < n; ++j) {
    s.lo[j] = lp.variable(j).lo;
    s.hi[j] = lp.variable(j).hi;
    s.obj[j] = lp.variable(j).objective;
  }
  for (std::size_t r = 0; r < lp.num_rows(); ++r) {
    s.rows.push_back(lp.row(r).entries);
    s.row_lo.push_back(lp.row(r).lo);
    s.row_hi.push_back(lp.row(r).hi);
    s.row_live.push_back(true);
  }

  for (int pass = 0; pass < kMaxSweeps && sweep(s); ++pass) {
  }

  PresolvedLp out;
  out.fixed.assign(n, std::nullopt);
  if (s.infeasible) {
    out.infeasible = true;
    return out;
  }
  out.objective_offset = s.offset;
  out.rows_removed = s.rows_removed;
  out.singletons = std::move(s.singletons);

  // Rebuild the reduced program over the surviving variables/rows.
  std::vector<std::size_t> new_index(n, static_cast<std::size_t>(-1));
  out.reduced.set_sense(lp.sense());
  for (std::size_t j = 0; j < n; ++j) {
    if (!s.var_live[j]) {
      // Singleton-eliminated variables are recovered by restore(), not
      // by a fixed value.
      if (!s.var_singleton[j]) out.fixed[j] = s.lo[j];
      ++out.vars_removed;
      continue;
    }
    new_index[j] = out.reduced.add_variable(s.lo[j], s.hi[j], s.obj[j],
                                            lp.variable(j).name);
    out.var_map.push_back(j);
  }
  for (std::size_t r = 0; r < s.rows.size(); ++r) {
    if (!s.row_live[r]) continue;
    std::vector<Entry> entries;
    entries.reserve(s.rows[r].size());
    for (const Entry& e : s.rows[r])
      entries.push_back(Entry{new_index[e.col], e.coeff});
    out.reduced.add_row(std::move(entries), s.row_lo[r], s.row_hi[r],
                        lp.row(r).name);
  }
  RRP_COUNTER_ADD("rrp.presolve.rows_removed", out.rows_removed);
  RRP_COUNTER_ADD("rrp.presolve.vars_removed", out.vars_removed);
  RRP_TRACE_ARG("rows_removed", out.rows_removed);
  RRP_TRACE_ARG("vars_removed", out.vars_removed);
  return out;
}

Solution presolve_and_solve(const LinearProgram& lp,
                            const SimplexOptions& options) {
  const PresolvedLp pre = presolve(lp);
  Solution sol;
  if (pre.infeasible) {
    sol.status = SolveStatus::Infeasible;
    return sol;
  }
  const Solution reduced = solve(pre.reduced, options);
  sol.status = reduced.status;
  sol.iterations = reduced.iterations;
  if (reduced.status != SolveStatus::Optimal) return sol;
  sol.x = pre.restore(reduced.x);
  sol.objective = lp.objective_value(sol.x);
  return sol;
}

}  // namespace rrp::lp
