#include "lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/fault_injection.hpp"
#include "common/invariant.hpp"
#include "common/matrix.hpp"

namespace rrp::lp {

namespace {

enum class VarStatus : unsigned char { Basic, AtLower, AtUpper, FreeAtZero };

enum class PhaseResult { Optimal, Unbounded, IterationLimit, TimeLimit };

/// The working state of a bounded-variable simplex solve.  Variable
/// layout: [0, n) structural, [n, n+m) slacks, [n+m, n+2m) artificials.
class Worker {
 public:
  Worker(const LinearProgram& lp, const SimplexOptions& opt);

  Solution run();

 private:
  PhaseResult run_phase(const std::vector<double>& cost,
                        std::size_t max_iters);
  void pivot_out_artificials();
  void refactorize();
  void recompute_basic_values();
  std::vector<double> compute_duals(const std::vector<double>& cost) const;
  double reduced_cost(std::size_t j, const std::vector<double>& cost,
                      const std::vector<double>& y) const;
  std::vector<double> ftran(std::size_t j) const;  ///< Binv * A_j
  double current_objective(const std::vector<double>& cost) const;

  /// RRP_CHECK_INVARIANTS hooks (no-ops otherwise).  `check_basis`
  /// verifies structural basis/status consistency plus (as a dcheck)
  /// Binv * B ~= I; `check_optimality` verifies primal feasibility and
  /// bounded reduced costs of the final point.
  void check_basis() const;
  void check_optimality(const std::vector<double>& cost) const;

  const LinearProgram& lp_;
  const SimplexOptions& opt_;
  std::size_t m_ = 0;        ///< rows
  std::size_t n_ = 0;        ///< structural variables
  std::size_t total_ = 0;    ///< structural + slack + artificial
  std::size_t art_begin_ = 0;

  std::vector<std::vector<Entry>> cols_;  ///< column-sparse A (rows indices)
  std::vector<double> lb_, ub_;
  std::vector<VarStatus> status_;
  std::vector<double> value_;   ///< meaningful for nonbasic variables
  std::vector<std::size_t> basis_;  ///< variable index per basis position
  std::vector<double> xb_;          ///< basic variable values
  Matrix binv_;
  std::size_t pivots_since_refactor_ = 0;
  std::size_t iterations_ = 0;
};

Worker::Worker(const LinearProgram& lp, const SimplexOptions& opt)
    : lp_(lp), opt_(opt) {
  m_ = lp.num_rows();
  n_ = lp.num_variables();
  art_begin_ = n_ + m_;
  total_ = n_ + 2 * m_;

  cols_.resize(total_);
  lb_.assign(total_, 0.0);
  ub_.assign(total_, kInfinity);
  for (std::size_t j = 0; j < n_; ++j) {
    lb_[j] = lp.variable(j).lo;
    ub_[j] = lp.variable(j).hi;
  }
  for (std::size_t r = 0; r < m_; ++r) {
    for (const Entry& e : lp.row(r).entries) {
      cols_[e.col].push_back(Entry{r, e.coeff});
    }
    // Slack: a'x - s = 0, s in [row.lo, row.hi].
    const std::size_t s = n_ + r;
    cols_[s].push_back(Entry{r, -1.0});
    lb_[s] = lp.row(r).lo;
    ub_[s] = lp.row(r).hi;
  }

  // Initial nonbasic point: every structural/slack at its finite bound
  // nearest zero (0 for free variables).
  status_.assign(total_, VarStatus::AtLower);
  value_.assign(total_, 0.0);
  for (std::size_t j = 0; j < art_begin_; ++j) {
    const bool lo_finite = lb_[j] > -kInfinity;
    const bool hi_finite = ub_[j] < kInfinity;
    if (lo_finite && hi_finite) {
      if (std::fabs(lb_[j]) <= std::fabs(ub_[j])) {
        status_[j] = VarStatus::AtLower;
        value_[j] = lb_[j];
      } else {
        status_[j] = VarStatus::AtUpper;
        value_[j] = ub_[j];
      }
    } else if (lo_finite) {
      status_[j] = VarStatus::AtLower;
      value_[j] = lb_[j];
    } else if (hi_finite) {
      status_[j] = VarStatus::AtUpper;
      value_[j] = ub_[j];
    } else {
      status_[j] = VarStatus::FreeAtZero;
      value_[j] = 0.0;
    }
  }

  // Residual of Ax = 0 at the initial point determines artificial signs.
  std::vector<double> resid(m_, 0.0);
  for (std::size_t j = 0; j < art_begin_; ++j) {
    if (value_[j] == 0.0) continue;
    for (const Entry& e : cols_[j]) resid[e.col] -= e.coeff * value_[j];
  }
  basis_.resize(m_);
  xb_.resize(m_);
  binv_ = Matrix(m_, m_);
  for (std::size_t r = 0; r < m_; ++r) {
    const double sign = resid[r] >= 0.0 ? 1.0 : -1.0;
    const std::size_t a = art_begin_ + r;
    cols_[a].push_back(Entry{r, sign});
    lb_[a] = 0.0;
    ub_[a] = kInfinity;
    basis_[r] = a;
    status_[a] = VarStatus::Basic;
    xb_[r] = std::fabs(resid[r]);
    binv_(r, r) = sign;  // inverse of diag(sign)
  }
}

std::vector<double> Worker::ftran(std::size_t j) const {
  std::vector<double> w(m_, 0.0);
  for (const Entry& e : cols_[j]) {
    const double c = e.coeff;
    for (std::size_t i = 0; i < m_; ++i) w[i] += c * binv_(i, e.col);
  }
  return w;
}

std::vector<double> Worker::compute_duals(
    const std::vector<double>& cost) const {
  // y = c_B^T * Binv.
  std::vector<double> y(m_, 0.0);
  for (std::size_t i = 0; i < m_; ++i) {
    const double cb = cost[basis_[i]];
    if (cb == 0.0) continue;
    for (std::size_t k = 0; k < m_; ++k) y[k] += cb * binv_(i, k);
  }
  return y;
}

double Worker::reduced_cost(std::size_t j, const std::vector<double>& cost,
                            const std::vector<double>& y) const {
  double d = cost[j];
  for (const Entry& e : cols_[j]) d -= y[e.col] * e.coeff;
  return d;
}

void Worker::refactorize() {
  Matrix b(m_, m_);
  for (std::size_t pos = 0; pos < m_; ++pos) {
    for (const Entry& e : cols_[basis_[pos]]) b(e.col, pos) = e.coeff;
  }
  binv_ = b.inverse();
  pivots_since_refactor_ = 0;
  recompute_basic_values();
#if RRP_INVARIANTS_ENABLED
  // Cheap structural check on every refactorization; the expensive
  // Binv*B dcheck runs only at phase boundaries (see run()).
  verify_basis(m_, total_, basis_);
#endif
}

void Worker::recompute_basic_values() {
  // x_B = Binv * (0 - sum_nonbasic A_j v_j).
  std::vector<double> rhs(m_, 0.0);
  for (std::size_t j = 0; j < total_; ++j) {
    if (status_[j] == VarStatus::Basic || value_[j] == 0.0) continue;
    for (const Entry& e : cols_[j]) rhs[e.col] -= e.coeff * value_[j];
  }
  for (std::size_t i = 0; i < m_; ++i) {
    double acc = 0.0;
    for (std::size_t k = 0; k < m_; ++k) acc += binv_(i, k) * rhs[k];
    xb_[i] = acc;
  }
}

void Worker::check_basis() const {
#if RRP_INVARIANTS_ENABLED
  verify_basis(m_, total_, basis_);
  std::size_t basic_count = 0;
  for (std::size_t j = 0; j < total_; ++j)
    if (status_[j] == VarStatus::Basic) ++basic_count;
  RRP_INVARIANT_MSG(basic_count == m_,
                    std::to_string(basic_count) + " variables marked basic");
  for (std::size_t i = 0; i < m_; ++i)
    RRP_INVARIANT(status_[basis_[i]] == VarStatus::Basic);
  // Expensive factorization dcheck: Binv * B ~= I column by column.
  for (std::size_t pos = 0; pos < m_; ++pos) {
    const std::vector<double> w = ftran(basis_[pos]);
    for (std::size_t i = 0; i < m_; ++i) {
      const double expect = i == pos ? 1.0 : 0.0;
      RRP_DCHECK_MSG(std::fabs(w[i] - expect) <= 1e-5,
                     "Binv*B deviates at (" + std::to_string(i) + "," +
                         std::to_string(pos) + ")");
    }
  }
#endif
}

void Worker::check_optimality(const std::vector<double>& cost) const {
#if RRP_INVARIANTS_ENABLED
  // Primal feasibility: every basic value within its bounds.
  for (std::size_t i = 0; i < m_; ++i) {
    const std::size_t bi = basis_[i];
    const double ptol = 1e-5 * (1.0 + std::fabs(xb_[i]));
    RRP_INVARIANT_MSG(xb_[i] >= lb_[bi] - ptol && xb_[i] <= ub_[bi] + ptol,
                      "basic variable " + std::to_string(bi) +
                          " out of bounds: " + std::to_string(xb_[i]));
  }
  // Dual: reduced costs bounded — no nonbasic variable may price out as
  // an improving direction beyond tolerance at a claimed optimum.
  double cscale = 0.0;
  for (double c : cost) cscale = std::max(cscale, std::fabs(c));
  const double dtol = 1e-4 * (1.0 + cscale);
  const std::vector<double> y = compute_duals(cost);
  for (std::size_t j = 0; j < total_; ++j) {
    if (status_[j] == VarStatus::Basic) continue;
    if (lb_[j] == ub_[j]) continue;  // fixed: any reduced cost is fine
    const double d = reduced_cost(j, cost, y);
    RRP_INVARIANT_MSG(std::isfinite(d),
                      "reduced cost of " + std::to_string(j) + " not finite");
    switch (status_[j]) {
      case VarStatus::AtLower:
        RRP_INVARIANT_MSG(d >= -dtol, "improving reduced cost " +
                                          std::to_string(d) + " at lower");
        break;
      case VarStatus::AtUpper:
        RRP_INVARIANT_MSG(d <= dtol, "improving reduced cost " +
                                         std::to_string(d) + " at upper");
        break;
      case VarStatus::FreeAtZero:
        RRP_INVARIANT_MSG(std::fabs(d) <= dtol,
                          "free variable with nonzero reduced cost " +
                              std::to_string(d));
        break;
      case VarStatus::Basic:
        break;
    }
  }
#else
  (void)cost;
#endif
}

double Worker::current_objective(const std::vector<double>& cost) const {
  double obj = 0.0;
  for (std::size_t j = 0; j < total_; ++j) {
    if (status_[j] != VarStatus::Basic && cost[j] != 0.0)
      obj += cost[j] * value_[j];
  }
  for (std::size_t i = 0; i < m_; ++i) obj += cost[basis_[i]] * xb_[i];
  return obj;
}

PhaseResult Worker::run_phase(const std::vector<double>& cost,
                              std::size_t max_iters) {
  const double dtol = opt_.optimality_tol;
  std::size_t stall = 0;
  double last_obj = current_objective(cost);
  bool use_bland = opt_.pricing == Pricing::Bland;

  for (std::size_t iter = 0; iter < max_iters; ++iter, ++iterations_) {
    // One deadline poll per pivot; a pointer compare when unlimited.
    if (opt_.deadline.expired()) return PhaseResult::TimeLimit;
    const std::vector<double> y = compute_duals(cost);

    // --- Pricing: choose the entering variable and its direction. ---
    std::size_t enter = total_;
    int dir = 0;
    double best_score = dtol;
    for (std::size_t j = 0; j < total_; ++j) {
      if (status_[j] == VarStatus::Basic) continue;
      if (lb_[j] == ub_[j]) continue;  // fixed: can never move
      const double d = reduced_cost(j, cost, y);
      int cand_dir = 0;
      double score = 0.0;
      switch (status_[j]) {
        case VarStatus::AtLower:
          if (d < -dtol) { cand_dir = +1; score = -d; }
          break;
        case VarStatus::AtUpper:
          if (d > dtol) { cand_dir = -1; score = d; }
          break;
        case VarStatus::FreeAtZero:
          if (std::fabs(d) > dtol) {
            cand_dir = d < 0.0 ? +1 : -1;
            score = std::fabs(d);
          }
          break;
        case VarStatus::Basic:
          break;
      }
      if (cand_dir == 0) continue;
      if (use_bland) {  // first eligible index
        enter = j;
        dir = cand_dir;
        break;
      }
      if (score > best_score) {
        best_score = score;
        enter = j;
        dir = cand_dir;
      }
    }
    if (enter == total_) return PhaseResult::Optimal;

    // --- Ratio test. ---
    const std::vector<double> w = ftran(enter);
    // Limit from the entering variable's own opposite bound.
    double t_max = kInfinity;
    int limit_kind = 0;  // 0: own bound flip, 1: basic leaves
    std::size_t leave_pos = m_;
    bool leave_at_upper = false;
    if (dir > 0 && ub_[enter] < kInfinity) t_max = ub_[enter] - value_[enter];
    if (dir < 0 && lb_[enter] > -kInfinity) t_max = value_[enter] - lb_[enter];

    const double piv_tol = 1e-9;
    for (std::size_t i = 0; i < m_; ++i) {
      const double delta = -static_cast<double>(dir) * w[i];  // d x_B[i]/dt
      if (std::fabs(delta) <= piv_tol) continue;
      const std::size_t bi = basis_[i];
      double t_i = kInfinity;
      bool hits_upper = false;
      if (delta < 0.0) {
        if (lb_[bi] > -kInfinity) t_i = (xb_[i] - lb_[bi]) / (-delta);
      } else {
        if (ub_[bi] < kInfinity) {
          t_i = (ub_[bi] - xb_[i]) / delta;
          hits_upper = true;
        }
      }
      if (t_i < -opt_.feasibility_tol) t_i = 0.0;  // clamp tiny negatives
      t_i = std::max(t_i, 0.0);
      // Prefer strictly smaller ratios; among near-ties keep the larger
      // pivot element for numerical stability.
      if (t_i < t_max - 1e-12 ||
          (t_i < t_max + 1e-12 && limit_kind == 1 &&
           std::fabs(w[i]) > std::fabs(w[leave_pos]))) {
        t_max = t_i;
        limit_kind = 1;
        leave_pos = i;
        leave_at_upper = hits_upper;
      }
    }

    if (t_max == kInfinity) return PhaseResult::Unbounded;

    // --- Apply the step. ---
    const double step = std::max(t_max, 0.0);
    for (std::size_t i = 0; i < m_; ++i)
      xb_[i] -= static_cast<double>(dir) * step * w[i];

    if (limit_kind == 0) {
      // Bound flip: the entering variable moves to its other bound.
      value_[enter] += static_cast<double>(dir) * step;
      status_[enter] =
          dir > 0 ? VarStatus::AtUpper : VarStatus::AtLower;
    } else {
      const std::size_t leave = basis_[leave_pos];
      // Snap the leaving variable exactly onto its bound.
      value_[leave] = leave_at_upper ? ub_[leave] : lb_[leave];
      status_[leave] =
          leave_at_upper ? VarStatus::AtUpper : VarStatus::AtLower;
      const double enter_val = value_[enter] + static_cast<double>(dir) * step;
      basis_[leave_pos] = enter;
      status_[enter] = VarStatus::Basic;
      xb_[leave_pos] = enter_val;
      // Eta update of the basis inverse.
      const double piv = w[leave_pos];
      if (std::fabs(piv) < piv_tol)
        throw NumericalError("simplex: vanishing pivot element");
      auto prow = binv_.row(leave_pos);
      for (double& v : prow) v /= piv;
      for (std::size_t i = 0; i < m_; ++i) {
        if (i == leave_pos || w[i] == 0.0) continue;
        const double f = w[i];
        auto irow = binv_.row(i);
        for (std::size_t k = 0; k < m_; ++k) irow[k] -= f * prow[k];
      }
      if (++pivots_since_refactor_ >= opt_.refactor_every) refactorize();
    }

    // --- Stall detection -> Bland fallback. ---
    const double obj = current_objective(cost);
    if (obj < last_obj - 1e-10 * (1.0 + std::fabs(last_obj))) {
      stall = 0;
      if (opt_.pricing != Pricing::Bland) use_bland = false;
      last_obj = obj;
    } else if (++stall >= opt_.stall_limit) {
      use_bland = true;
    }
  }
  return PhaseResult::IterationLimit;
}

void Worker::pivot_out_artificials() {
  for (std::size_t pos = 0; pos < m_; ++pos) {
    if (basis_[pos] < art_begin_) continue;
    // Find a non-artificial, non-basic column with a usable pivot element
    // in this basis row and swap it in (a degenerate pivot: the primal
    // point is unchanged because the artificial sits at zero).
    for (std::size_t j = 0; j < art_begin_; ++j) {
      if (status_[j] == VarStatus::Basic) continue;
      double wpos = 0.0;
      for (const Entry& e : cols_[j]) wpos += binv_(pos, e.col) * e.coeff;
      if (std::fabs(wpos) < 1e-7) continue;
      const std::size_t art = basis_[pos];
      status_[art] = VarStatus::AtLower;
      value_[art] = 0.0;
      basis_[pos] = j;
      status_[j] = VarStatus::Basic;
      refactorize();
      break;
    }
  }
  // Whatever artificials remain basic correspond to redundant rows; pin
  // every artificial to zero so phase 2 cannot move them.
  for (std::size_t r = 0; r < m_; ++r) {
    ub_[art_begin_ + r] = 0.0;
  }
  recompute_basic_values();
}

Solution Worker::run() {
  Solution sol;

  // Phase 1: minimise the artificial mass.
  std::vector<double> phase1_cost(total_, 0.0);
  for (std::size_t r = 0; r < m_; ++r) phase1_cost[art_begin_ + r] = 1.0;
  PhaseResult p1 = run_phase(phase1_cost, opt_.max_iterations);
  if (p1 == PhaseResult::IterationLimit || p1 == PhaseResult::TimeLimit) {
    sol.status = p1 == PhaseResult::TimeLimit ? SolveStatus::TimeLimit
                                              : SolveStatus::IterationLimit;
    sol.iterations = iterations_;
    return sol;
  }
  refactorize();
  check_basis();
  const double infeasibility = current_objective(phase1_cost);
  if (infeasibility > 1e-6) {
    sol.status = SolveStatus::Infeasible;
    sol.iterations = iterations_;
    return sol;
  }
  pivot_out_artificials();

  // Phase 2: the model objective (negated internally for Maximize).
  const double sense = lp_.sense() == Sense::Maximize ? -1.0 : 1.0;
  std::vector<double> cost(total_, 0.0);
  for (std::size_t j = 0; j < n_; ++j)
    cost[j] = sense * lp_.variable(j).objective;
  PhaseResult p2 = run_phase(cost, opt_.max_iterations);
  if (p2 == PhaseResult::IterationLimit || p2 == PhaseResult::TimeLimit) {
    sol.status = p2 == PhaseResult::TimeLimit ? SolveStatus::TimeLimit
                                              : SolveStatus::IterationLimit;
    sol.iterations = iterations_;
    return sol;
  }
  if (p2 == PhaseResult::Unbounded) {
    sol.status = SolveStatus::Unbounded;
    sol.iterations = iterations_;
    return sol;
  }

  refactorize();
  check_basis();
  check_optimality(cost);
  sol.status = SolveStatus::Optimal;
  sol.iterations = iterations_;
  sol.x.assign(n_, 0.0);
  for (std::size_t j = 0; j < n_; ++j)
    if (status_[j] != VarStatus::Basic) sol.x[j] = value_[j];
  for (std::size_t i = 0; i < m_; ++i)
    if (basis_[i] < n_) sol.x[basis_[i]] = xb_[i];
  sol.objective = lp_.objective_value(sol.x);
  const std::vector<double> y = compute_duals(cost);
  sol.duals = y;
  sol.reduced_costs.assign(n_, 0.0);
  for (std::size_t j = 0; j < n_; ++j)
    sol.reduced_costs[j] = reduced_cost(j, cost, y);
  return sol;
}

}  // namespace

void verify_basis(std::size_t num_rows, std::size_t num_columns,
                  std::span<const std::size_t> basis) {
  if (basis.size() != num_rows) {
    ::rrp::detail::invariant_fail(
        "invariant", "basis.size() == num_rows", __FILE__, __LINE__,
        "basis has " + std::to_string(basis.size()) + " entries for " +
            std::to_string(num_rows) + " rows");
  }
  std::vector<char> seen(num_columns, 0);
  for (std::size_t pos = 0; pos < basis.size(); ++pos) {
    const std::size_t j = basis[pos];
    if (j >= num_columns) {
      ::rrp::detail::invariant_fail(
          "invariant", "basis[pos] < num_columns", __FILE__, __LINE__,
          "position " + std::to_string(pos) + " holds out-of-range column " +
              std::to_string(j));
    }
    if (seen[j]) {
      ::rrp::detail::invariant_fail(
          "invariant", "basis entries are distinct", __FILE__, __LINE__,
          "column " + std::to_string(j) + " is basic in two positions");
    }
    seen[j] = 1;
  }
}

Solution solve(const LinearProgram& lp, const SimplexOptions& options) {
  if (options.fault_injector != nullptr &&
      options.fault_injector->consume_lp_fault()) {
    throw NumericalError("simplex: injected numerical failure");
  }
  if (options.deadline.expired()) {
    Solution sol;
    sol.status = SolveStatus::TimeLimit;
    return sol;
  }
  if (lp.num_rows() == 0) {
    // Pure bound problem: each variable sits at its cheapest finite bound.
    Solution sol;
    sol.status = SolveStatus::Optimal;
    sol.x.assign(lp.num_variables(), 0.0);
    const double sense = lp.sense() == Sense::Maximize ? -1.0 : 1.0;
    for (std::size_t j = 0; j < lp.num_variables(); ++j) {
      const Variable& v = lp.variable(j);
      const double c = sense * v.objective;
      if (c > 0.0) {
        if (v.lo == -kInfinity) {
          sol.status = SolveStatus::Unbounded;
          return sol;
        }
        sol.x[j] = v.lo;
      } else if (c < 0.0) {
        if (v.hi == kInfinity) {
          sol.status = SolveStatus::Unbounded;
          return sol;
        }
        sol.x[j] = v.hi;
      } else {
        sol.x[j] = std::clamp(0.0, v.lo, v.hi);
      }
    }
    sol.objective = lp.objective_value(sol.x);
    sol.reduced_costs.assign(lp.num_variables(), 0.0);
    for (std::size_t j = 0; j < lp.num_variables(); ++j)
      sol.reduced_costs[j] = sense * lp.variable(j).objective;
    return sol;
  }
  Worker worker(lp, options);
  return worker.run();
}

}  // namespace rrp::lp
