#include "lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/fault_injection.hpp"
#include "common/invariant.hpp"
#include "obs/obs.hpp"

namespace rrp::lp {

namespace {
constexpr double kPivotTol = 1e-9;

// Factorisation telemetry feeds the registry unconditionally (not via
// the compile-out macros): the milp::MipResult compatibility view reads
// these counters at solve end, so they must stay correct in
// RRP_OBSERVABILITY=OFF builds too.  One sharded relaxed add per event;
// the registry lookup runs once per process.
obs::Counter& refactorizations_counter() {
  static obs::Counter& c =
      obs::global_registry().counter("rrp.lp.refactorizations");
  return c;
}
obs::Counter& eta_updates_counter() {
  static obs::Counter& c =
      obs::global_registry().counter("rrp.lp.eta_updates");
  return c;
}
obs::Gauge& fill_ratio_sum_gauge() {
  static obs::Gauge& g =
      obs::global_registry().gauge("rrp.lp.fill_ratio_sum");
  return g;
}
}  // namespace

SimplexSolver::SimplexSolver(const LinearProgram& lp) {
  m_ = lp.num_rows();
  n_ = lp.num_variables();
  art_begin_ = n_ + m_;
  total_ = n_ + 2 * m_;
  sense_ = lp.sense();

  cols_.resize(total_);
  lb_.assign(total_, 0.0);
  ub_.assign(total_, kInfinity);
  obj_.assign(n_, 0.0);
  for (std::size_t j = 0; j < n_; ++j) {
    lb_[j] = lp.variable(j).lo;
    ub_[j] = lp.variable(j).hi;
    obj_[j] = lp.variable(j).objective;
  }
  for (std::size_t r = 0; r < m_; ++r) {
    for (const Entry& e : lp.row(r).entries) {
      cols_[e.col].push_back(Entry{r, e.coeff});
    }
    // Slack: a'x - s = 0, s in [row.lo, row.hi].
    const std::size_t s = n_ + r;
    cols_[s].push_back(Entry{r, -1.0});
    lb_[s] = lp.row(r).lo;
    ub_[s] = lp.row(r).hi;
    // Artificial column: single +/-1 entry whose sign is fixed per cold
    // start from the residual of the initial nonbasic point.
    const std::size_t a = art_begin_ + r;
    cols_[a].push_back(Entry{r, 1.0});
  }

  status_.assign(total_, BasisStatus::AtLower);
  value_.assign(total_, 0.0);
  basis_.resize(m_);
  xb_.resize(m_);
  w_.resize(m_);
  y_.resize(m_);
  rho_.resize(m_);
  rhs_.resize(m_);
  cost_.assign(total_, 0.0);
}

void SimplexSolver::set_variable_bounds(std::size_t j, double lo, double hi) {
  RRP_EXPECTS(j < n_);
  RRP_EXPECTS(lo <= hi);
  lb_[j] = lo;
  ub_[j] = hi;
}

void SimplexSolver::set_objective(std::size_t j, double coeff) {
  RRP_EXPECTS(j < n_);
  RRP_EXPECTS(std::isfinite(coeff));
  obj_[j] = coeff;
}

void SimplexSolver::ftran(std::size_t j) const {
  // w = Binv * A_j, via the sparse solve B w = A_j.
  std::fill(w_.begin(), w_.end(), 0.0);
  for (const Entry& e : cols_[j]) w_[e.col] += e.coeff;
  lu_.ftran(w_);
}

void SimplexSolver::compute_duals(const std::vector<double>& cost) const {
  // y = c_B^T * Binv, via the sparse solve B^T y = c_B.
  for (std::size_t i = 0; i < m_; ++i) y_[i] = cost[basis_[i]];
  lu_.btran(y_);
}

double SimplexSolver::reduced_cost(std::size_t j,
                                   const std::vector<double>& cost) const {
  double d = cost[j];
  for (const Entry& e : cols_[j]) d -= y_[e.col] * e.coeff;
  return d;
}

void SimplexSolver::refactorize() {
  RRP_TRACE_SPAN("lp.refactor");
  lu_.factorize(m_, cols_, basis_);  // throws NumericalError if singular
  const double fill = lu_.fill_ratio();
  ++factor_stats_.refactorizations;
  factor_stats_.fill_ratio_sum += fill;
  refactorizations_counter().add(1);
  fill_ratio_sum_gauge().add(fill);
  RRP_TRACE_ARG("fill_ratio", fill);
  RRP_HISTOGRAM_OBSERVE("rrp.lp.fill_ratio", fill,
                        {1.0, 1.5, 2.0, 3.0, 5.0, 8.0});
  // Fill trigger for the eta file: once the accumulated eta nonzeros
  // outgrow the factor itself, replaying them costs more than a fresh
  // factorisation would.
  eta_nnz_cap_ = std::max<std::size_t>(4 * m_, 2 * lu_.factor_nonzeros());
  pivots_since_refactor_ = 0;
  recompute_basic_values();
#if RRP_INVARIANTS_ENABLED
  // Cheap structural check on every refactorization; the expensive
  // Binv*B dcheck runs only at phase boundaries (see check_basis()).
  verify_basis(m_, total_, basis_);
#endif
}

void SimplexSolver::recompute_basic_values() {
  // x_B = Binv * (0 - sum_nonbasic A_j v_j).
  std::fill(rhs_.begin(), rhs_.end(), 0.0);
  for (std::size_t j = 0; j < total_; ++j) {
    if (status_[j] == BasisStatus::Basic || value_[j] == 0.0) continue;
    for (const Entry& e : cols_[j]) rhs_[e.col] -= e.coeff * value_[j];
  }
  xb_ = rhs_;
  lu_.ftran(xb_);
}

void SimplexSolver::check_basis() const {
#if RRP_INVARIANTS_ENABLED
  verify_basis(m_, total_, basis_);
  std::size_t basic_count = 0;
  for (std::size_t j = 0; j < total_; ++j)
    if (status_[j] == BasisStatus::Basic) ++basic_count;
  RRP_INVARIANT_MSG(basic_count == m_,
                    std::to_string(basic_count) + " variables marked basic");
  for (std::size_t i = 0; i < m_; ++i)
    RRP_INVARIANT(status_[basis_[i]] == BasisStatus::Basic);
  // Factorization dcheck: Binv * B ~= I, verified column by column via
  // FTRAN.  The full sweep is O(m^2) solves — prohibitive at the sparse
  // solver's problem sizes — so by default a deterministic sample of at
  // most 8 columns is checked; define RRP_EXPENSIVE_INVARIANTS to
  // opt in to the exhaustive sweep.
#if defined(RRP_EXPENSIVE_INVARIANTS)
  const std::size_t stride = 1;
#else
  const std::size_t stride = std::max<std::size_t>(1, m_ / 8);
#endif
  for (std::size_t pos = 0; pos < m_; pos += stride) {
    ftran(basis_[pos]);
    for (std::size_t i = 0; i < m_; ++i) {
      const double expect = i == pos ? 1.0 : 0.0;
      RRP_DCHECK_MSG(std::fabs(w_[i] - expect) <= 1e-5,
                     "Binv*B deviates at (" + std::to_string(i) + "," +
                         std::to_string(pos) + ")");
    }
  }
#endif
}

void SimplexSolver::check_optimality(const std::vector<double>& cost) const {
#if RRP_INVARIANTS_ENABLED
  // Primal feasibility: every basic value within its bounds.
  for (std::size_t i = 0; i < m_; ++i) {
    const std::size_t bi = basis_[i];
    const double ptol = 1e-5 * (1.0 + std::fabs(xb_[i]));
    RRP_INVARIANT_MSG(xb_[i] >= lb_[bi] - ptol && xb_[i] <= ub_[bi] + ptol,
                      "basic variable " + std::to_string(bi) +
                          " out of bounds: " + std::to_string(xb_[i]));
  }
  // Dual: reduced costs bounded — no nonbasic variable may price out as
  // an improving direction beyond tolerance at a claimed optimum.
  double cscale = 0.0;
  for (double c : cost) cscale = std::max(cscale, std::fabs(c));
  const double dtol = 1e-4 * (1.0 + cscale);
  compute_duals(cost);
  for (std::size_t j = 0; j < total_; ++j) {
    if (status_[j] == BasisStatus::Basic) continue;
    if (lb_[j] == ub_[j])  // rrp-lint: allow(float-equality)
      continue;  // fixed: any reduced cost is fine
    const double d = reduced_cost(j, cost);
    RRP_INVARIANT_MSG(std::isfinite(d),
                      "reduced cost of " + std::to_string(j) + " not finite");
    switch (status_[j]) {
      case BasisStatus::AtLower:
        RRP_INVARIANT_MSG(d >= -dtol, "improving reduced cost " +
                                          std::to_string(d) + " at lower");
        break;
      case BasisStatus::AtUpper:
        RRP_INVARIANT_MSG(d <= dtol, "improving reduced cost " +
                                         std::to_string(d) + " at upper");
        break;
      case BasisStatus::FreeAtZero:
        RRP_INVARIANT_MSG(std::fabs(d) <= dtol,
                          "free variable with nonzero reduced cost " +
                              std::to_string(d));
        break;
      case BasisStatus::Basic:
        break;
    }
  }
#else
  (void)cost;
#endif
}

double SimplexSolver::current_objective(const std::vector<double>& cost)
    const {
  double obj = 0.0;
  for (std::size_t j = 0; j < total_; ++j) {
    if (status_[j] != BasisStatus::Basic && cost[j] != 0.0)
      obj += cost[j] * value_[j];
  }
  for (std::size_t i = 0; i < m_; ++i) obj += cost[basis_[i]] * xb_[i];
  return obj;
}

SimplexSolver::PhaseResult SimplexSolver::run_phase(
    const std::vector<double>& cost, std::size_t max_iters) {
  const double dtol = opt_->optimality_tol;
  std::size_t stall = 0;
  double last_obj = current_objective(cost);
  bool use_bland = opt_->pricing == Pricing::Bland;

  for (std::size_t iter = 0; iter < max_iters; ++iter, ++iterations_) {
    // One deadline poll per pivot; a pointer compare when unlimited.
    if (opt_->deadline.expired()) return PhaseResult::TimeLimit;
    RRP_COUNTER_ADD("rrp.lp.pivots.primal", 1);
    compute_duals(cost);

    // --- Pricing: choose the entering variable and its direction. ---
    std::size_t enter = total_;
    int dir = 0;
    double best_score = dtol;
    for (std::size_t j = 0; j < total_; ++j) {
      if (status_[j] == BasisStatus::Basic) continue;
      if (lb_[j] == ub_[j])  // rrp-lint: allow(float-equality)
        continue;  // fixed: can never move
      const double d = reduced_cost(j, cost);
      int cand_dir = 0;
      double score = 0.0;
      switch (status_[j]) {
        case BasisStatus::AtLower:
          if (d < -dtol) { cand_dir = +1; score = -d; }
          break;
        case BasisStatus::AtUpper:
          if (d > dtol) { cand_dir = -1; score = d; }
          break;
        case BasisStatus::FreeAtZero:
          if (std::fabs(d) > dtol) {
            cand_dir = d < 0.0 ? +1 : -1;
            score = std::fabs(d);
          }
          break;
        case BasisStatus::Basic:
          break;
      }
      if (cand_dir == 0) continue;
      if (use_bland) {  // first eligible index
        enter = j;
        dir = cand_dir;
        break;
      }
      if (score > best_score) {
        best_score = score;
        enter = j;
        dir = cand_dir;
      }
    }
    if (enter == total_) return PhaseResult::Optimal;

    // --- Ratio test. ---
    ftran(enter);
    // Limit from the entering variable's own opposite bound.
    double t_max = kInfinity;
    int limit_kind = 0;  // 0: own bound flip, 1: basic leaves
    std::size_t leave_pos = m_;
    bool leave_at_upper = false;
    if (dir > 0 && ub_[enter] < kInfinity) t_max = ub_[enter] - value_[enter];
    if (dir < 0 && lb_[enter] > -kInfinity) t_max = value_[enter] - lb_[enter];

    for (std::size_t i = 0; i < m_; ++i) {
      const double delta = -static_cast<double>(dir) * w_[i];  // d x_B[i]/dt
      if (std::fabs(delta) <= kPivotTol) continue;
      const std::size_t bi = basis_[i];
      double t_i = kInfinity;
      bool hits_upper = false;
      if (delta < 0.0) {
        if (lb_[bi] > -kInfinity) t_i = (xb_[i] - lb_[bi]) / (-delta);
      } else {
        if (ub_[bi] < kInfinity) {
          t_i = (ub_[bi] - xb_[i]) / delta;
          hits_upper = true;
        }
      }
      if (t_i < -opt_->feasibility_tol) t_i = 0.0;  // clamp tiny negatives
      t_i = std::max(t_i, 0.0);
      // Prefer strictly smaller ratios; among near-ties keep the larger
      // pivot element for numerical stability.
      if (t_i < t_max - 1e-12 ||
          (t_i < t_max + 1e-12 && limit_kind == 1 &&
           std::fabs(w_[i]) > std::fabs(w_[leave_pos]))) {
        t_max = t_i;
        limit_kind = 1;
        leave_pos = i;
        leave_at_upper = hits_upper;
      }
    }

    if (t_max == kInfinity) return PhaseResult::Unbounded;

    // --- Apply the step. ---
    const double step = std::max(t_max, 0.0);
    for (std::size_t i = 0; i < m_; ++i)
      xb_[i] -= static_cast<double>(dir) * step * w_[i];

    if (limit_kind == 0) {
      // Bound flip: the entering variable moves to its other bound.
      value_[enter] += static_cast<double>(dir) * step;
      status_[enter] =
          dir > 0 ? BasisStatus::AtUpper : BasisStatus::AtLower;
    } else {
      const std::size_t leave = basis_[leave_pos];
      // Snap the leaving variable exactly onto its bound.
      value_[leave] = leave_at_upper ? ub_[leave] : lb_[leave];
      status_[leave] =
          leave_at_upper ? BasisStatus::AtUpper : BasisStatus::AtLower;
      const double enter_val = value_[enter] + static_cast<double>(dir) * step;
      basis_[leave_pos] = enter;
      status_[enter] = BasisStatus::Basic;
      xb_[leave_pos] = enter_val;
      // Product-form eta update of the factorisation.
      const double piv = w_[leave_pos];
      if (std::fabs(piv) < kPivotTol)
        throw NumericalError("simplex: vanishing pivot element");
      lu_.update(leave_pos, w_);
      ++factor_stats_.eta_updates;
      eta_updates_counter().add(1);
      if (++pivots_since_refactor_ >= opt_->refactor_every ||
          lu_.eta_nonzeros() > eta_nnz_cap_)
        refactorize();
    }

    // --- Stall detection -> Bland fallback. ---
    const double obj = current_objective(cost);
    if (obj < last_obj - 1e-10 * (1.0 + std::fabs(last_obj))) {
      stall = 0;
      if (opt_->pricing != Pricing::Bland) use_bland = false;
      last_obj = obj;
    } else if (++stall >= opt_->stall_limit) {
      use_bland = true;
    }
  }
  return PhaseResult::IterationLimit;
}

SimplexSolver::DualResult SimplexSolver::run_dual(
    const std::vector<double>& cost, std::size_t max_iters) {
  // Bounded-variable dual simplex: pick the basic variable with the
  // largest bound violation, drive it exactly onto the violated bound,
  // and admit the entering column by the dual ratio test (min |d|/|a|),
  // which preserves dual feasibility of the warm-started basis.  When
  // no column can move the leaving row toward its bound, row r is a
  // primal infeasibility certificate independent of the objective.
  for (std::size_t iter = 0; iter < max_iters; ++iter, ++iterations_) {
    if (opt_->deadline.expired()) return DualResult::TimeLimit;
    RRP_COUNTER_ADD("rrp.lp.pivots.dual", 1);

    // --- Leaving row: most violated basic variable. ---
    std::size_t r = m_;
    bool below = false;
    double worst = 0.0;
    for (std::size_t i = 0; i < m_; ++i) {
      const std::size_t bi = basis_[i];
      const double tol = opt_->feasibility_tol * (1.0 + std::fabs(xb_[i]));
      const double under = lb_[bi] - xb_[i];
      const double over = xb_[i] - ub_[bi];
      if (under > tol && under > worst) {
        worst = under;
        r = i;
        below = true;
      }
      if (over > tol && over > worst) {
        worst = over;
        r = i;
        below = false;
      }
    }
    if (r == m_) return DualResult::Feasible;

    const std::size_t leave = basis_[r];
    const double target = below ? lb_[leave] : ub_[leave];
    const double sigma = below ? +1.0 : -1.0;  // required sign of d xb_r
    compute_duals(cost);
    // Row r of the basis inverse: BTRAN of the r-th unit vector.
    std::fill(rho_.begin(), rho_.end(), 0.0);
    rho_[r] = 1.0;
    lu_.btran(rho_);

    // --- Entering column: dual ratio test over eligible nonbasics. ---
    std::size_t enter = total_;
    int enter_dir = 0;
    double enter_alpha = 0.0;
    double best_ratio = kInfinity;
    for (std::size_t j = 0; j < total_; ++j) {
      if (status_[j] == BasisStatus::Basic) continue;
      if (lb_[j] == ub_[j])  // rrp-lint: allow(float-equality)
        continue;  // fixed (includes pinned artificials)
      double alpha = 0.0;
      for (const Entry& e : cols_[j]) alpha += rho_[e.col] * e.coeff;
      if (std::fabs(alpha) <= kPivotTol) continue;
      int dir = 0;
      switch (status_[j]) {
        case BasisStatus::AtLower: dir = +1; break;
        case BasisStatus::AtUpper: dir = -1; break;
        case BasisStatus::FreeAtZero:
          dir = sigma * alpha < 0.0 ? +1 : -1;
          break;
        case BasisStatus::Basic: break;
      }
      // Moving x_j by dir changes xb_r by -alpha*dir; require the move
      // to push xb_r toward its violated bound.
      if (sigma * alpha * static_cast<double>(dir) >= 0.0) continue;
      const double d = reduced_cost(j, cost);
      const double ratio = std::fabs(d) / std::fabs(alpha);
      if (ratio < best_ratio - 1e-12 ||
          (ratio < best_ratio + 1e-12 &&
           std::fabs(alpha) > std::fabs(enter_alpha))) {
        best_ratio = ratio;
        enter = j;
        enter_dir = dir;
        enter_alpha = alpha;
      }
    }
    if (enter == total_) return DualResult::Infeasible;

    // --- Pivot: land xb_r exactly on its violated bound. ---
    ftran(enter);
    // Accuracy trigger: the FTRAN pivot and the BTRAN-derived alpha are
    // the same number through exact arithmetic; disagreement means the
    // eta file has drifted, so rebuild the factorisation and retry.
    if (std::fabs(w_[r] - enter_alpha) >
        1e-7 * (1.0 + std::fabs(enter_alpha))) {
      refactorize();
      ftran(enter);
    }
    const double piv = w_[r];
    if (std::fabs(piv) < kPivotTol)
      throw NumericalError("dual simplex: vanishing pivot element");
    const double denom = -piv * static_cast<double>(enter_dir);
    const double t = std::max((target - xb_[r]) / denom, 0.0);
    for (std::size_t i = 0; i < m_; ++i)
      xb_[i] -= static_cast<double>(enter_dir) * t * w_[i];
    value_[leave] = target;
    status_[leave] = below ? BasisStatus::AtLower : BasisStatus::AtUpper;
    const double enter_val =
        value_[enter] + static_cast<double>(enter_dir) * t;
    basis_[r] = enter;
    status_[enter] = BasisStatus::Basic;
    xb_[r] = enter_val;
    lu_.update(r, w_);
    ++factor_stats_.eta_updates;
    eta_updates_counter().add(1);
    if (++pivots_since_refactor_ >= opt_->refactor_every ||
        lu_.eta_nonzeros() > eta_nnz_cap_)
      refactorize();
  }
  return DualResult::Stalled;
}

void SimplexSolver::pivot_out_artificials() {
  for (std::size_t pos = 0; pos < m_; ++pos) {
    if (basis_[pos] < art_begin_) continue;
    // Find a non-artificial, non-basic column with a usable pivot element
    // in this basis row and swap it in (a degenerate pivot: the primal
    // point is unchanged because the artificial sits at zero).  Row `pos`
    // of the basis inverse is the BTRAN of the pos-th unit vector.
    std::fill(rho_.begin(), rho_.end(), 0.0);
    rho_[pos] = 1.0;
    lu_.btran(rho_);
    for (std::size_t j = 0; j < art_begin_; ++j) {
      if (status_[j] == BasisStatus::Basic) continue;
      double wpos = 0.0;
      for (const Entry& e : cols_[j]) wpos += rho_[e.col] * e.coeff;
      if (std::fabs(wpos) < 1e-7) continue;
      const std::size_t art = basis_[pos];
      status_[art] = BasisStatus::AtLower;
      value_[art] = 0.0;
      basis_[pos] = j;
      status_[j] = BasisStatus::Basic;
      refactorize();
      break;
    }
  }
  // Whatever artificials remain basic correspond to redundant rows; pin
  // every artificial to zero so phase 2 cannot move them.
  for (std::size_t r = 0; r < m_; ++r) {
    ub_[art_begin_ + r] = 0.0;
  }
  recompute_basic_values();
}

const std::vector<double>& SimplexSolver::phase2_cost() {
  const double sense = sense_ == Sense::Maximize ? -1.0 : 1.0;
  std::fill(cost_.begin(), cost_.end(), 0.0);
  for (std::size_t j = 0; j < n_; ++j) cost_[j] = sense * obj_[j];
  return cost_;
}

Solution SimplexSolver::finish_phase2() {
  Solution sol;
  const std::vector<double>& cost = phase2_cost();
  PhaseResult p2 = run_phase(cost, opt_->max_iterations);
  if (p2 == PhaseResult::IterationLimit || p2 == PhaseResult::TimeLimit) {
    sol.status = p2 == PhaseResult::TimeLimit ? SolveStatus::TimeLimit
                                              : SolveStatus::IterationLimit;
    sol.iterations = iterations_;
    return sol;
  }
  if (p2 == PhaseResult::Unbounded) {
    sol.status = SolveStatus::Unbounded;
    sol.iterations = iterations_;
    return sol;
  }

  refactorize();
  check_basis();
  check_optimality(cost);
  sol.status = SolveStatus::Optimal;
  sol.iterations = iterations_;
  sol.x.assign(n_, 0.0);
  for (std::size_t j = 0; j < n_; ++j)
    if (status_[j] != BasisStatus::Basic) sol.x[j] = value_[j];
  for (std::size_t i = 0; i < m_; ++i)
    if (basis_[i] < n_) sol.x[basis_[i]] = xb_[i];
  double objective = 0.0;
  for (std::size_t j = 0; j < n_; ++j) objective += obj_[j] * sol.x[j];
  sol.objective = objective;
  compute_duals(cost);
  sol.duals = y_;
  sol.reduced_costs.assign(n_, 0.0);
  for (std::size_t j = 0; j < n_; ++j)
    sol.reduced_costs[j] = reduced_cost(j, cost);
  last_optimal_ = true;
  return sol;
}

Solution SimplexSolver::cold_solve() {
  RRP_TRACE_SPAN("lp.cold_solve");
  RRP_TRACE_ARG("rows", m_);
  // Initial nonbasic point: every structural/slack at its finite bound
  // nearest zero (0 for free variables).
  for (std::size_t j = 0; j < art_begin_; ++j) {
    const bool lo_finite = lb_[j] > -kInfinity;
    const bool hi_finite = ub_[j] < kInfinity;
    if (lo_finite && hi_finite) {
      if (std::fabs(lb_[j]) <= std::fabs(ub_[j])) {
        status_[j] = BasisStatus::AtLower;
        value_[j] = lb_[j];
      } else {
        status_[j] = BasisStatus::AtUpper;
        value_[j] = ub_[j];
      }
    } else if (lo_finite) {
      status_[j] = BasisStatus::AtLower;
      value_[j] = lb_[j];
    } else if (hi_finite) {
      status_[j] = BasisStatus::AtUpper;
      value_[j] = ub_[j];
    } else {
      status_[j] = BasisStatus::FreeAtZero;
      value_[j] = 0.0;
    }
  }

  // Residual of Ax = 0 at the initial point determines artificial signs.
  std::fill(rhs_.begin(), rhs_.end(), 0.0);
  for (std::size_t j = 0; j < art_begin_; ++j) {
    if (value_[j] == 0.0) continue;
    for (const Entry& e : cols_[j]) rhs_[e.col] -= e.coeff * value_[j];
  }
  for (std::size_t r = 0; r < m_; ++r) {
    const double sign = rhs_[r] >= 0.0 ? 1.0 : -1.0;
    const std::size_t a = art_begin_ + r;
    cols_[a][0].coeff = sign;
    lb_[a] = 0.0;
    ub_[a] = kInfinity;
    basis_[r] = a;
    status_[a] = BasisStatus::Basic;
    value_[a] = 0.0;
  }
  refactorize();  // diagonal basis; also recomputes xb_ = |rhs_|

  Solution sol;
  // Phase 1: minimise the artificial mass.
  std::fill(cost_.begin(), cost_.end(), 0.0);
  for (std::size_t r = 0; r < m_; ++r) cost_[r + art_begin_] = 1.0;
  const std::vector<double> phase1_cost = cost_;
  PhaseResult p1 = run_phase(phase1_cost, opt_->max_iterations);
  if (p1 == PhaseResult::IterationLimit || p1 == PhaseResult::TimeLimit) {
    sol.status = p1 == PhaseResult::TimeLimit ? SolveStatus::TimeLimit
                                              : SolveStatus::IterationLimit;
    sol.iterations = iterations_;
    return sol;
  }
  refactorize();
  check_basis();
  const double infeasibility = current_objective(phase1_cost);
  if (infeasibility > 1e-6) {
    sol.status = SolveStatus::Infeasible;
    sol.iterations = iterations_;
    return sol;
  }
  pivot_out_artificials();

  // Phase 2: the model objective (negated internally for Maximize).
  return finish_phase2();
}

bool SimplexSolver::install_basis(const Basis& start) {
  if (start.basic.size() != m_ || start.status.size() != art_begin_)
    return false;
  // Structural consistency: basic entries distinct, in the structural +
  // slack range, and agreeing with the status vector.
  std::vector<char> seen(art_begin_, 0);
  for (std::size_t pos = 0; pos < m_; ++pos) {
    const std::size_t j = start.basic[pos];
    if (j >= art_begin_ || seen[j] != 0) return false;
    if (start.status[j] != BasisStatus::Basic) return false;
    seen[j] = 1;
  }
  for (std::size_t j = 0; j < art_begin_; ++j) {
    if (start.status[j] == BasisStatus::Basic && seen[j] == 0) return false;
  }

  for (std::size_t j = 0; j < art_begin_; ++j) {
    BasisStatus s = start.status[j];
    // Re-anchor nonbasic variables whose preferred bound is (or became)
    // infinite; bounds may have moved since the basis was exported.
    if (s == BasisStatus::AtLower && lb_[j] <= -kInfinity)
      s = ub_[j] < kInfinity ? BasisStatus::AtUpper : BasisStatus::FreeAtZero;
    if (s == BasisStatus::AtUpper && ub_[j] >= kInfinity)
      s = lb_[j] > -kInfinity ? BasisStatus::AtLower : BasisStatus::FreeAtZero;
    if (s == BasisStatus::FreeAtZero &&
        (lb_[j] > -kInfinity || ub_[j] < kInfinity))
      s = lb_[j] > -kInfinity ? BasisStatus::AtLower : BasisStatus::AtUpper;
    status_[j] = s;
    switch (s) {
      case BasisStatus::AtLower: value_[j] = lb_[j]; break;
      case BasisStatus::AtUpper: value_[j] = ub_[j]; break;
      default: value_[j] = 0.0; break;
    }
  }
  // Artificials stay pinned out of the warm-started problem.
  for (std::size_t r = 0; r < m_; ++r) {
    const std::size_t a = art_begin_ + r;
    status_[a] = BasisStatus::AtLower;
    value_[a] = 0.0;
    lb_[a] = 0.0;
    ub_[a] = 0.0;
  }
  std::copy(start.basic.begin(), start.basic.end(), basis_.begin());
  try {
    refactorize();  // throws NumericalError when the start basis is singular
  } catch (const NumericalError&) {
    return false;
  }
  return true;
}

Solution SimplexSolver::solve_bound_only() const {
  // Pure bound problem: each variable sits at its cheapest finite bound.
  Solution sol;
  sol.status = SolveStatus::Optimal;
  sol.x.assign(n_, 0.0);
  const double sense = sense_ == Sense::Maximize ? -1.0 : 1.0;
  for (std::size_t j = 0; j < n_; ++j) {
    const double c = sense * obj_[j];
    if (c > 0.0) {
      if (lb_[j] == -kInfinity) {
        sol.status = SolveStatus::Unbounded;
        return sol;
      }
      sol.x[j] = lb_[j];
    } else if (c < 0.0) {
      if (ub_[j] == kInfinity) {
        sol.status = SolveStatus::Unbounded;
        return sol;
      }
      sol.x[j] = ub_[j];
    } else {
      sol.x[j] = std::clamp(0.0, lb_[j], ub_[j]);
    }
  }
  double objective = 0.0;
  for (std::size_t j = 0; j < n_; ++j) objective += obj_[j] * sol.x[j];
  sol.objective = objective;
  sol.reduced_costs.assign(n_, 0.0);
  for (std::size_t j = 0; j < n_; ++j)
    sol.reduced_costs[j] = sense * obj_[j];
  return sol;
}

Solution SimplexSolver::solve(const SimplexOptions& options) {
  last_warm_ = false;
  last_optimal_ = false;
  iterations_ = 0;
  if (options.fault_injector != nullptr &&
      options.fault_injector->consume_lp_fault()) {
    throw NumericalError("simplex: injected numerical failure");
  }
  if (options.deadline.expired()) {
    Solution sol;
    sol.status = SolveStatus::TimeLimit;
    return sol;
  }
  if (m_ == 0) return solve_bound_only();
  opt_ = &options;
  return cold_solve();
}

Solution SimplexSolver::solve_from(const Basis& start,
                                   const SimplexOptions& options) {
  last_warm_ = false;
  last_optimal_ = false;
  iterations_ = 0;
  if (options.fault_injector != nullptr &&
      options.fault_injector->consume_lp_fault()) {
    throw NumericalError("simplex: injected numerical failure");
  }
  if (options.deadline.expired()) {
    Solution sol;
    sol.status = SolveStatus::TimeLimit;
    return sol;
  }
  if (m_ == 0) return solve_bound_only();
  opt_ = &options;
  if (start.empty() || !install_basis(start)) return cold_solve();

  RRP_TRACE_SPAN("lp.warm_solve");
  RRP_TRACE_ARG("rows", m_);
  // Re-optimise: dual simplex restores primal feasibility (bound changes
  // leave the parent basis dual feasible), then primal phase 2 cleans up
  // any residual dual infeasibility.  Numerical trouble on the warm path
  // is never fatal — fall back to the cold two-phase solve instead.
  try {
    const DualResult dres = run_dual(phase2_cost(), opt_->max_iterations);
    if (dres == DualResult::TimeLimit) {
      Solution sol;
      sol.status = SolveStatus::TimeLimit;
      sol.iterations = iterations_;
      return sol;
    }
    if (dres == DualResult::Infeasible) {
      Solution sol;
      sol.status = SolveStatus::Infeasible;
      sol.iterations = iterations_;
      last_warm_ = true;
      return sol;
    }
    if (dres == DualResult::Stalled) return cold_solve();
    Solution sol = finish_phase2();
    last_warm_ = true;
    return sol;
  } catch (const NumericalError&) {
    return cold_solve();
  }
}

Basis SimplexSolver::basis() const {
  Basis b;
  if (!last_optimal_) return b;
  for (std::size_t i = 0; i < m_; ++i)
    if (basis_[i] >= art_begin_) return b;  // redundant row: not exportable
  b.basic = basis_;
  b.status.assign(status_.begin(),
                  status_.begin() + static_cast<std::ptrdiff_t>(art_begin_));
  return b;
}

void verify_basis(std::size_t num_rows, std::size_t num_columns,
                  std::span<const std::size_t> basis) {
  if (basis.size() != num_rows) {
    ::rrp::detail::invariant_fail(
        "invariant", "basis.size() == num_rows", __FILE__, __LINE__,
        "basis has " + std::to_string(basis.size()) + " entries for " +
            std::to_string(num_rows) + " rows");
  }
  std::vector<char> seen(num_columns, 0);
  for (std::size_t pos = 0; pos < basis.size(); ++pos) {
    const std::size_t j = basis[pos];
    if (j >= num_columns) {
      ::rrp::detail::invariant_fail(
          "invariant", "basis[pos] < num_columns", __FILE__, __LINE__,
          "position " + std::to_string(pos) + " holds out-of-range column " +
              std::to_string(j));
    }
    if (seen[j]) {
      ::rrp::detail::invariant_fail(
          "invariant", "basis entries are distinct", __FILE__, __LINE__,
          "column " + std::to_string(j) + " is basic in two positions");
    }
    seen[j] = 1;
  }
}

Solution solve(const LinearProgram& lp, const SimplexOptions& options) {
  SimplexSolver solver(lp);
  return solver.solve(options);
}

}  // namespace rrp::lp
