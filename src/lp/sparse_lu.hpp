// Sparse LU factorisation of a simplex basis with product-form updates.
//
// The basis matrix B of the revised simplex over the DRRP/SRRP
// deterministic equivalents is a staircase: balance rows couple each
// slot (or tree vertex) only to its parent, forcing rows are near
// diagonal, and slack/artificial columns are singletons.  A dense
// m x m inverse throws that structure away — every FTRAN/BTRAN and
// every eta update costs O(m^2), and each refactorisation O(m^3).
// This class keeps B = P^T L U Q^T with sparse column-stored L and U:
//
//   * factorize() runs a left-looking elimination with threshold
//     partial pivoting.  Columns are processed in ascending-nonzero
//     order and the pivot row is chosen among numerically eligible
//     candidates (|v| >= tau * max) by the smallest static row count —
//     a cheap Markowitz proxy that keeps fill-in near zero on
//     staircase bases.
//   * ftran()/btran() solve B x = b and B^T y = c by permuted sparse
//     triangular solves, skipping structural zeros, then replay the
//     product-form eta file.
//   * update() appends one eta matrix per basis exchange (the
//     product-form of the inverse), so a pivot costs O(nnz(w)) instead
//     of a dense O(m^2) row transformation.
//
// The owner (lp::SimplexSolver) decides *when* to refactorise; the
// fill/accuracy counters exposed here (eta_nonzeros, fill_ratio) feed
// those triggers and the factorisation telemetry reported through
// milp::MipResult.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "lp/model.hpp"

namespace rrp::lp {

class SparseLu {
 public:
  /// Factorises the basis whose column at position `pos` is
  /// `cols[basis[pos]]` (entries are (row, coeff) pairs; duplicate rows
  /// within a column are summed).  Clears any pending eta updates.
  /// Throws rrp::NumericalError when the basis is numerically singular.
  void factorize(std::size_t m, const std::vector<std::vector<Entry>>& cols,
                 std::span<const std::size_t> basis);

  /// Solves B x = b in place: `x` enters holding b (size m, row space)
  /// and leaves holding the solution in basis-position space.
  void ftran(std::vector<double>& x) const;

  /// Solves B^T y = c in place: `y` enters holding c (size m,
  /// basis-position space) and leaves holding the duals in row space.
  void btran(std::vector<double>& y) const;

  /// Appends the product-form eta for replacing basis position `pos`
  /// with a column whose FTRAN image is `w` (dense, size m).  Requires
  /// |w[pos]| > 0; the caller checks pivot magnitude before committing.
  void update(std::size_t pos, const std::vector<double>& w);

  std::size_t size() const { return m_; }
  bool factorized() const { return m_ > 0 && udiag_.size() == m_; }

  /// Eta matrices appended since the last factorize().
  std::size_t eta_count() const { return etas_.size(); }
  /// Total off-pivot nonzeros across the eta file (fill proxy).
  std::size_t eta_nonzeros() const { return eta_nnz_; }
  /// nnz(L + U) / nnz(B) of the last factorisation (>= 1; 0 before the
  /// first factorize).
  double fill_ratio() const {
    return base_nnz_ == 0 ? 0.0
                          : static_cast<double>(factor_nnz_) /
                                static_cast<double>(base_nnz_);
  }
  std::size_t factor_nonzeros() const { return factor_nnz_; }

 private:
  struct Eta {
    std::size_t pos = 0;          ///< pivotal basis position
    double pivot = 0.0;           ///< w[pos]
    std::vector<Entry> entries;   ///< (position, w_i) for i != pos
  };

  std::size_t m_ = 0;
  // Permutations, all in "step" space (step k = k-th pivot):
  std::vector<std::size_t> row_of_step_;  ///< original pivot row of step k
  std::vector<std::size_t> col_of_step_;  ///< basis position handled at k
  std::vector<std::size_t> step_of_row_;  ///< inverse of row_of_step_
  // L (unit diagonal, multipliers below) and U (diagonal in udiag_),
  // both stored column-wise over steps; Entry::col is a step index.
  std::vector<std::vector<Entry>> lcols_;
  std::vector<std::vector<Entry>> ucols_;
  std::vector<double> udiag_;
  std::vector<Eta> etas_;
  std::size_t eta_nnz_ = 0;
  std::size_t base_nnz_ = 0;
  std::size_t factor_nnz_ = 0;
  mutable std::vector<double> work_;  ///< step-space scratch for solves
};

}  // namespace rrp::lp
