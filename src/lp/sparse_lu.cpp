#include "lp/sparse_lu.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/error.hpp"

namespace rrp::lp {

namespace {
/// Relative threshold for partial pivoting: a row is numerically
/// eligible when its magnitude is within this factor of the column
/// maximum, leaving room to prefer sparsity among eligible rows.
constexpr double kPivotThreshold = 0.1;
/// Below this absolute magnitude a column has no usable pivot and the
/// basis is declared singular (matches the dense Matrix::inverse gate).
constexpr double kSingularTol = 1e-12;
}  // namespace

void SparseLu::factorize(std::size_t m,
                         const std::vector<std::vector<Entry>>& cols,
                         std::span<const std::size_t> basis) {
  m_ = m;
  etas_.clear();
  eta_nnz_ = 0;
  row_of_step_.assign(m, m);
  col_of_step_.assign(m, m);
  step_of_row_.assign(m, m);
  lcols_.assign(m, {});
  ucols_.assign(m, {});
  udiag_.assign(m, 0.0);
  work_.assign(m, 0.0);
  if (m == 0) {
    base_nnz_ = factor_nnz_ = 0;
    return;
  }

  // Static Markowitz data: row counts over the basis columns, and a
  // column order by ascending nonzero count (stable, so ties resolve by
  // basis position — deterministic across runs).
  std::vector<std::size_t> row_count(m, 0);
  base_nnz_ = 0;
  for (std::size_t pos = 0; pos < m; ++pos) {
    const auto& col = cols[basis[pos]];
    base_nnz_ += col.size();
    for (const Entry& e : col) ++row_count[e.col];
  }
  std::vector<std::size_t> order(m);
  for (std::size_t pos = 0; pos < m; ++pos) order[pos] = pos;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return cols[basis[a]].size() < cols[basis[b]].size();
                   });

  // Left-looking elimination over a dense scratch column.  `touched`
  // tracks every row written so the scratch is re-zeroed in O(nnz).
  std::vector<std::size_t> touched;
  touched.reserve(m);
  factor_nnz_ = 0;
  for (std::size_t k = 0; k < m; ++k) {
    const std::size_t pos = order[k];
    touched.clear();
    for (const Entry& e : cols[basis[pos]]) {
      if (work_[e.col] == 0.0) touched.push_back(e.col);
      work_[e.col] += e.coeff;
    }
    // Apply the first k elimination steps in order; L multipliers still
    // reference original rows at this point.
    for (std::size_t s = 0; s < k; ++s) {
      const double val = work_[row_of_step_[s]];
      if (val == 0.0) continue;
      ucols_[k].push_back(Entry{s, val});
      for (const Entry& l : lcols_[s]) {
        if (work_[l.col] == 0.0) touched.push_back(l.col);
        work_[l.col] -= l.coeff * val;
      }
    }
    // Threshold partial pivot over the unpivoted rows: numerically
    // eligible candidates compete on static sparsity, then magnitude,
    // then row index (full determinism).
    double vmax = 0.0;
    for (std::size_t r : touched) {
      if (step_of_row_[r] != m) continue;
      vmax = std::max(vmax, std::fabs(work_[r]));
    }
    if (vmax < kSingularTol) {
      for (std::size_t r : touched) work_[r] = 0.0;
      udiag_.clear();  // leave the object in a "not factorized" state
      throw NumericalError("SparseLu: singular basis at step " +
                           std::to_string(k));
    }
    const double eligible = kPivotThreshold * vmax;
    std::size_t prow = m;
    for (std::size_t r : touched) {
      if (step_of_row_[r] != m) continue;
      const double v = std::fabs(work_[r]);
      if (v < eligible || v < kSingularTol) continue;
      if (prow == m || row_count[r] < row_count[prow] ||
          (row_count[r] == row_count[prow] &&
           (v > std::fabs(work_[prow]) ||
            (v == std::fabs(work_[prow]) && r < prow)))) {
        prow = r;
      }
    }
    const double diag = work_[prow];
    row_of_step_[k] = prow;
    step_of_row_[prow] = k;
    col_of_step_[k] = pos;
    udiag_[k] = diag;
    for (std::size_t r : touched) {
      const double v = work_[r];
      work_[r] = 0.0;
      if (r == prow || v == 0.0 || step_of_row_[r] != m) continue;
      lcols_[k].push_back(Entry{r, v / diag});
    }
    factor_nnz_ += lcols_[k].size() + ucols_[k].size() + 1;
  }
  // Remap L multiplier rows from original-row space to step space (all
  // targets are pivoted by now, and always at a later step).
  for (std::size_t k = 0; k < m; ++k)
    for (Entry& l : lcols_[k]) l.col = step_of_row_[l.col];
}

void SparseLu::ftran(std::vector<double>& x) const {
  // Permute b into step space.
  for (std::size_t k = 0; k < m_; ++k) work_[k] = x[row_of_step_[k]];
  // Forward solve L z = P b (unit diagonal).
  for (std::size_t k = 0; k < m_; ++k) {
    const double v = work_[k];
    if (v == 0.0) continue;
    for (const Entry& l : lcols_[k]) work_[l.col] -= l.coeff * v;
  }
  // Backward solve U w = z, column oriented.
  for (std::size_t k = m_; k-- > 0;) {
    double v = work_[k];
    if (v == 0.0) continue;
    v /= udiag_[k];
    work_[k] = v;
    for (const Entry& u : ucols_[k]) work_[u.col] -= u.coeff * v;
  }
  // Scatter to basis-position space and replay the eta file forward.
  for (std::size_t k = 0; k < m_; ++k) x[col_of_step_[k]] = work_[k];
  for (const Eta& e : etas_) {
    const double t = x[e.pos];
    if (t == 0.0) continue;
    const double scaled = t / e.pivot;
    x[e.pos] = scaled;
    for (const Entry& en : e.entries) x[en.col] -= en.coeff * scaled;
  }
}

void SparseLu::btran(std::vector<double>& y) const {
  // Eta transposes apply in reverse order; each touches one component.
  for (auto it = etas_.rbegin(); it != etas_.rend(); ++it) {
    double s = y[it->pos];
    for (const Entry& en : it->entries) s -= en.coeff * y[en.col];
    y[it->pos] = s / it->pivot;
  }
  // Permute c into step space.
  for (std::size_t k = 0; k < m_; ++k) work_[k] = y[col_of_step_[k]];
  // Forward solve U^T z = c: row k of U^T is column k of U.
  for (std::size_t k = 0; k < m_; ++k) {
    double s = work_[k];
    for (const Entry& u : ucols_[k]) s -= u.coeff * work_[u.col];
    work_[k] = s / udiag_[k];
  }
  // Backward solve L^T w = z (unit diagonal).
  for (std::size_t k = m_; k-- > 0;) {
    double s = work_[k];
    for (const Entry& l : lcols_[k]) s -= l.coeff * work_[l.col];
    work_[k] = s;
  }
  // Scatter to row space.
  for (std::size_t k = 0; k < m_; ++k) y[row_of_step_[k]] = work_[k];
}

void SparseLu::update(std::size_t pos, const std::vector<double>& w) {
  Eta eta;
  eta.pos = pos;
  eta.pivot = w[pos];
  for (std::size_t i = 0; i < m_; ++i) {
    if (i == pos || w[i] == 0.0) continue;
    eta.entries.push_back(Entry{i, w[i]});
  }
  eta_nnz_ += eta.entries.size();
  etas_.push_back(std::move(eta));
}

}  // namespace rrp::lp
