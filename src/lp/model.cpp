#include "lp/model.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace rrp::lp {

std::size_t LinearProgram::add_variable(double lo, double hi,
                                        double objective, std::string name) {
  RRP_EXPECTS(lo <= hi);
  RRP_EXPECTS(std::isfinite(objective));
  RRP_EXPECTS(!(lo == kInfinity) && !(hi == -kInfinity));
  variables_.push_back(Variable{lo, hi, objective, std::move(name)});
  return variables_.size() - 1;
}

std::size_t LinearProgram::add_row(std::vector<Entry> entries, double lo,
                                   double hi, std::string name) {
  RRP_EXPECTS(lo <= hi);
  RRP_EXPECTS(lo < kInfinity && hi > -kInfinity);
  // Merge duplicate columns and validate indices.
  std::map<std::size_t, double> merged;
  for (const Entry& e : entries) {
    RRP_EXPECTS(e.col < variables_.size());
    RRP_EXPECTS(std::isfinite(e.coeff));
    merged[e.col] += e.coeff;
  }
  std::vector<Entry> cleaned;
  cleaned.reserve(merged.size());
  for (const auto& [col, coeff] : merged) {
    if (coeff != 0.0) cleaned.push_back(Entry{col, coeff});
  }
  rows_.push_back(Row{std::move(cleaned), lo, hi, std::move(name)});
  return rows_.size() - 1;
}

void LinearProgram::set_objective(std::size_t var, double coeff) {
  RRP_EXPECTS(var < variables_.size());
  RRP_EXPECTS(std::isfinite(coeff));
  variables_[var].objective = coeff;
}

void LinearProgram::set_variable_bounds(std::size_t var, double lo,
                                        double hi) {
  RRP_EXPECTS(var < variables_.size());
  RRP_EXPECTS(lo <= hi);
  variables_[var].lo = lo;
  variables_[var].hi = hi;
}

double LinearProgram::objective_value(const std::vector<double>& x) const {
  RRP_EXPECTS(x.size() == variables_.size());
  double obj = 0.0;
  for (std::size_t i = 0; i < variables_.size(); ++i)
    obj += variables_[i].objective * x[i];
  return obj;
}

double LinearProgram::max_violation(const std::vector<double>& x) const {
  RRP_EXPECTS(x.size() == variables_.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < variables_.size(); ++i) {
    worst = std::max(worst, variables_[i].lo - x[i]);
    worst = std::max(worst, x[i] - variables_[i].hi);
  }
  for (const Row& r : rows_) {
    double ax = 0.0;
    for (const Entry& e : r.entries) ax += e.coeff * x[e.col];
    worst = std::max(worst, r.lo - ax);
    worst = std::max(worst, ax - r.hi);
  }
  return std::max(worst, 0.0);
}

const char* to_string(SolveStatus status) {
  switch (status) {
    case SolveStatus::Optimal: return "optimal";
    case SolveStatus::Infeasible: return "infeasible";
    case SolveStatus::Unbounded: return "unbounded";
    case SolveStatus::IterationLimit: return "iteration-limit";
    case SolveStatus::TimeLimit: return "time-limit";
  }
  return "unknown";
}

}  // namespace rrp::lp
