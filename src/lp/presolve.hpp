// LP presolve: standard reductions applied before the simplex.
//
//  * empty rows   — dropped (or proven infeasible);
//  * singleton rows — converted into variable-bound tightenings;
//  * fixed variables (lo == hi) — substituted into rows and the
//    objective, shrinking the problem;
//  * activity bound tightening — each row's min/max activity implies
//    bounds on every participating variable (and proves rows redundant
//    or infeasible);
//  * forcing constraints — a row whose minimum activity equals its
//    upper bound (or maximum equals its lower) pins every variable in
//    it to the corresponding extreme bound;
//  * empty columns — fixed at the objective-minimising finite bound;
//  * zero-cost column singletons — when the variable's range can absorb
//    any feasible activity of the rest of its only row, both the column
//    and the row are removed; `restore()` recomputes the value from the
//    surviving variables (records replayed in reverse order).
// iterated to a fixpoint (a singleton row may fix a variable, whose
// substitution creates new singletons), capped at 100 sweeps.
//
// Presolve is opt-in: `presolve()` produces a reduced program plus the
// bookkeeping needed to map a reduced solution back to the original
// variable space.  The planners' models are already minimal, but
// user-supplied programs (via the public rrp::lp API) often are not.
#pragma once

#include <optional>
#include <vector>

#include "lp/model.hpp"
#include "lp/simplex.hpp"

namespace rrp::lp {

struct PresolvedLp {
  /// The reduced program (empty when `infeasible`).
  LinearProgram reduced;
  /// Detected infeasibility during reduction (bounds crossed).
  bool infeasible = false;
  /// Per original variable: its fixed value, or nullopt if it survives
  /// into `reduced`.
  std::vector<std::optional<double>> fixed;
  /// reduced variable index -> original variable index.
  std::vector<std::size_t> var_map;
  /// Objective contribution of the eliminated variables.
  double objective_offset = 0.0;
  std::size_t rows_removed = 0;
  std::size_t vars_removed = 0;

  /// A zero-cost column singleton eliminated together with its row; the
  /// variable's value is recomputed during restore() from the values of
  /// the row's other variables (original indices, bounds as of the
  /// elimination).  Replayed in REVERSE creation order, so a record may
  /// reference variables eliminated by later records.
  struct SingletonRestore {
    std::size_t var = 0;
    double coeff = 0.0;          ///< the singleton's row coefficient
    double var_lo = 0.0, var_hi = 0.0;
    double row_lo = 0.0, row_hi = 0.0;
    std::vector<Entry> others;   ///< remaining row entries
  };
  std::vector<SingletonRestore> singletons;

  /// Lifts a reduced-space solution vector back to original indices.
  std::vector<double> restore(const std::vector<double>& reduced_x) const;
};

/// Applies the reductions.  The input program is not modified.
PresolvedLp presolve(const LinearProgram& lp);

/// Convenience: presolve, solve the reduction, and lift the result
/// (objective/status refer to the ORIGINAL program).
Solution presolve_and_solve(const LinearProgram& lp,
                            const SimplexOptions& options = {});

}  // namespace rrp::lp
