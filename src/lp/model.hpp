// Linear program container.
//
// A program is `min/max c'x  s.t.  lo_r <= a_r' x <= hi_r,  l <= x <= u`,
// with +/-infinity bounds expressed via rrp::lp::kInfinity.  The simplex
// solver consumes this structure directly; rrp::milp builds instances of
// it from the higher-level modelling API.
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace rrp::lp {

inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

enum class Sense { Minimize, Maximize };

/// One nonzero of a constraint row.
struct Entry {
  std::size_t col = 0;
  double coeff = 0.0;
};

/// A ranged constraint row lo <= a'x <= hi (lo == hi for equalities).
struct Row {
  std::vector<Entry> entries;
  double lo = -kInfinity;
  double hi = kInfinity;
  std::string name;
};

/// Variable bounds and objective coefficient.
struct Variable {
  double lo = 0.0;
  double hi = kInfinity;
  double objective = 0.0;
  std::string name;
};

class LinearProgram {
 public:
  /// Adds a variable with bounds [lo, hi] and the given objective
  /// coefficient.  Requires lo <= hi and finite objective.
  std::size_t add_variable(double lo, double hi, double objective,
                           std::string name = {});

  /// Adds a ranged row.  Column indices must reference existing
  /// variables; duplicate columns within a row are summed.
  std::size_t add_row(std::vector<Entry> entries, double lo, double hi,
                      std::string name = {});

  void set_sense(Sense sense) { sense_ = sense; }
  Sense sense() const { return sense_; }

  void set_objective(std::size_t var, double coeff);
  void set_variable_bounds(std::size_t var, double lo, double hi);

  std::size_t num_variables() const { return variables_.size(); }
  std::size_t num_rows() const { return rows_.size(); }

  const Variable& variable(std::size_t i) const { return variables_[i]; }
  const Row& row(std::size_t r) const { return rows_[r]; }

  /// Evaluates the objective at a point (no feasibility check).
  double objective_value(const std::vector<double>& x) const;

  /// Max constraint/bound violation at a point; 0 means feasible.
  double max_violation(const std::vector<double>& x) const;

 private:
  std::vector<Variable> variables_;
  std::vector<Row> rows_;
  Sense sense_ = Sense::Minimize;
};

enum class SolveStatus {
  Optimal,
  Infeasible,
  Unbounded,
  IterationLimit,
  /// The SimplexOptions deadline expired before optimality was proven.
  TimeLimit,
};

const char* to_string(SolveStatus status);

/// Result of a simplex solve.
struct Solution {
  SolveStatus status = SolveStatus::IterationLimit;
  double objective = 0.0;             ///< in the model's original sense
  std::vector<double> x;              ///< primal values, one per variable
  std::vector<double> duals;          ///< one per row (minimisation sign)
  std::vector<double> reduced_costs;  ///< one per variable
  std::size_t iterations = 0;
};

}  // namespace rrp::lp
