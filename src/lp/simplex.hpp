// Bounded-variable revised primal simplex.
//
// Internals: every ranged row `lo <= a'x <= hi` gets a slack variable
// bounded by [lo, hi] so the system becomes Ax = 0 with box-constrained
// variables; feasibility is established by a phase-1 minimisation of
// artificial variables, after which the original objective is optimised
// (phase 2).  The basis is held as a sparse LU factorisation
// (lp::SparseLu) with product-form eta updates per pivot; FTRAN/BTRAN
// are sparse triangular solves, and refactorisation is triggered by
// eta-file fill-in and a dual-pivot accuracy check in addition to the
// SimplexOptions::refactor_every pivot cap.  Dantzig pricing switches
// to Bland's rule during stalls to guarantee finiteness under
// degeneracy.
//
// Two entry points share that engine:
//
//   * `solve(lp, options)` — one-shot: build the working arrays, solve,
//     throw them away.
//   * `SimplexSolver` — a persistent solver object that keeps the
//     column structure, factorised basis and preallocated work buffers
//     alive across calls, supports `set_variable_bounds` /
//     `set_objective` without rebuilding the model, and can re-optimise
//     from a caller-supplied starting basis (`solve_from`).  A bound
//     change against an optimal parent basis leaves the basis dual
//     feasible, so re-optimisation runs the dual simplex until primal
//     feasibility is restored and finishes with (usually zero) primal
//     pivots — the warm-start path under rrp::milp's branch & bound.
//     Any structural or numerical trouble with the starting basis
//     (wrong shape, singular factorisation, stalling) silently falls
//     back to a cold two-phase solve, so `solve_from` is never less
//     robust than `solve`.
//
// This is the LP engine under rrp::milp's branch & bound, which in turn
// solves the paper's DRRP and SRRP mixed-integer programs.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/deadline.hpp"
#include "lp/model.hpp"
#include "lp/sparse_lu.hpp"

namespace rrp::testing {
class FaultInjector;
}  // namespace rrp::testing

namespace rrp::lp {

enum class Pricing {
  Dantzig,  ///< most negative reduced cost (default)
  Bland,    ///< least index; slow but never cycles
};

struct SimplexOptions {
  Pricing pricing = Pricing::Dantzig;
  std::size_t max_iterations = 50000;
  /// Upper bound on eta updates between sparse-LU refactorisations.
  /// Fill-in growth and the dual-pivot accuracy check can refactorise
  /// earlier; this cap is the recovery lever (the branch & bound
  /// ladder sets it to 1 to eliminate eta drift entirely).
  std::size_t refactor_every = 64;
  /// Consecutive non-improving pivots before falling back to Bland.
  std::size_t stall_limit = 200;
  double feasibility_tol = 1e-7;
  double optimality_tol = 1e-7;
  /// Wall-clock budget; polled once per pivot.  On expiry the solve
  /// returns SolveStatus::TimeLimit instead of iterating further.
  /// Defaults to unlimited (a single pointer compare per pivot).
  common::Deadline deadline;
  /// Test hook: when set, each solve() call first consumes one armed LP
  /// failure from the injector and throws rrp::NumericalError if armed.
  /// Production callers leave this null.
  const testing::FaultInjector* fault_injector = nullptr;
};

/// Where a column sits in an exported basis snapshot.
enum class BasisStatus : unsigned char {
  Basic,
  AtLower,
  AtUpper,
  FreeAtZero,  ///< free variable resting at zero
};

/// A snapshot of a simplex basis over the structural + slack columns
/// (artificials are never part of an exportable basis).  Produced by
/// SimplexSolver::basis() after an optimal solve and consumed by
/// SimplexSolver::solve_from() to warm start a re-optimisation; a
/// default-constructed (empty) basis means "no warm start available".
struct Basis {
  std::vector<std::size_t> basic;   ///< basic variable index per row
  std::vector<BasisStatus> status;  ///< one per structural + slack column

  bool empty() const { return basic.empty(); }
};

/// Solves the LP.  Never throws on infeasible/unbounded inputs (that is
/// reported through Solution::status); throws rrp::NumericalError only
/// if the basis algebra degenerates beyond repair.
Solution solve(const LinearProgram& lp, const SimplexOptions& options = {});

/// Verifies that `basis` is a structurally consistent simplex basis for
/// a system with `num_rows` rows and `num_columns` columns (structural +
/// slack + artificial): exactly one entry per row, every index in range,
/// no variable basic in two positions.  Throws rrp::ContractViolation on
/// the first inconsistency.  Used by the solver's internal invariant
/// checks (RRP_CHECK_INVARIANTS builds) and exposed so tests can feed it
/// a deliberately corrupted basis.
void verify_basis(std::size_t num_rows, std::size_t num_columns,
                  std::span<const std::size_t> basis);

/// Cumulative sparse-factorisation telemetry over a SimplexSolver's
/// lifetime; aggregated across B&B workers into milp::MipResult and
/// surfaced by bench_solvers_json (fill-in ratio, refactor cadence).
struct FactorizationStats {
  std::size_t refactorizations = 0;  ///< sparse LU rebuilds
  std::size_t eta_updates = 0;       ///< pivots absorbed as eta updates

  double fill_ratio_sum = 0.0;  ///< sum of nnz(L+U)/nnz(B) over rebuilds

  /// Mean fill-in ratio per refactorisation (1.0 = no fill).
  double mean_fill_ratio() const {
    return refactorizations == 0
               ? 0.0
               : fill_ratio_sum / static_cast<double>(refactorizations);
  }
  /// Mean eta updates absorbed between consecutive refactorisations.
  double refactor_cadence() const {
    return refactorizations == 0
               ? 0.0
               : static_cast<double>(eta_updates) /
                     static_cast<double>(refactorizations);
  }

  FactorizationStats& operator+=(const FactorizationStats& o) {
    refactorizations += o.refactorizations;
    eta_updates += o.eta_updates;
    fill_ratio_sum += o.fill_ratio_sum;
    return *this;
  }
};

/// Persistent simplex solver: copies the problem structure once at
/// construction and reuses every working array across solves.  Not
/// thread safe — give each thread its own instance (cheap: one copy of
/// the column structure plus the sparse basis factorisation).
class SimplexSolver {
 public:
  /// Snapshots the program (columns, bounds, objective, sense); the
  /// LinearProgram itself is not referenced afterwards.
  explicit SimplexSolver(const LinearProgram& lp);

  std::size_t num_variables() const { return n_; }
  std::size_t num_rows() const { return m_; }

  /// Replaces the bounds of structural variable `j` without rebuilding
  /// anything.  Requires lo <= hi.
  void set_variable_bounds(std::size_t j, double lo, double hi);
  double lower_bound(std::size_t j) const { return lb_[j]; }
  double upper_bound(std::size_t j) const { return ub_[j]; }

  /// Replaces the objective coefficient of structural variable `j`.
  void set_objective(std::size_t j, double coeff);
  double objective_coefficient(std::size_t j) const { return obj_[j]; }

  /// Cold solve: two-phase simplex from scratch, identical in behaviour
  /// to the free solve() function.
  Solution solve(const SimplexOptions& options = {});

  /// Re-optimises from `start` (typically the parent B&B node's optimal
  /// basis).  Restores primal feasibility with the dual simplex, then
  /// finishes with primal phase-2 pivots.  Falls back to a cold solve
  /// when the start basis is empty, structurally unusable, singular, or
  /// the re-optimisation stalls; last_solve_was_warm() reports which
  /// path produced the returned solution.
  Solution solve_from(const Basis& start, const SimplexOptions& options = {});

  /// Basis of the most recent Optimal solve, or an empty basis when the
  /// last solve did not finish Optimal or ended with an artificial
  /// still basic (redundant rows — not worth warm starting from).
  Basis basis() const;

  /// True when the last solve() / solve_from() answered via the
  /// warm-start path (no phase 1); false for cold solves and fallbacks.
  bool last_solve_was_warm() const { return last_warm_; }

  /// Cumulative factorisation telemetry since construction.
  const FactorizationStats& factor_stats() const { return factor_stats_; }

 private:
  enum class PhaseResult { Optimal, Unbounded, IterationLimit, TimeLimit };
  enum class DualResult { Feasible, Infeasible, Stalled, TimeLimit };

  Solution solve_bound_only() const;  ///< closed form for m_ == 0
  Solution cold_solve();
  bool install_basis(const Basis& start);
  DualResult run_dual(const std::vector<double>& cost, std::size_t max_iters);
  PhaseResult run_phase(const std::vector<double>& cost,
                        std::size_t max_iters);
  Solution finish_phase2();
  const std::vector<double>& phase2_cost();
  void pivot_out_artificials();
  void refactorize();
  void recompute_basic_values();
  void compute_duals(const std::vector<double>& cost) const;  ///< into y_
  double reduced_cost(std::size_t j, const std::vector<double>& cost) const;
  void ftran(std::size_t j) const;  ///< Binv * A_j into w_
  double current_objective(const std::vector<double>& cost) const;
  void check_basis() const;
  void check_optimality(const std::vector<double>& cost) const;

  // Problem data (bounds/objective mutable via setters).
  std::size_t m_ = 0;      ///< rows
  std::size_t n_ = 0;      ///< structural variables
  std::size_t total_ = 0;  ///< structural + slack + artificial
  std::size_t art_begin_ = 0;
  Sense sense_ = Sense::Minimize;
  std::vector<std::vector<Entry>> cols_;  ///< column-sparse A (row indices)
  std::vector<double> lb_, ub_;
  std::vector<double> obj_;  ///< structural objective coefficients

  // Persistent solve state (valid between calls; rebuilt as needed).
  std::vector<BasisStatus> status_;
  std::vector<double> value_;       ///< meaningful for nonbasic variables
  std::vector<std::size_t> basis_;  ///< variable index per basis position
  std::vector<double> xb_;          ///< basic variable values
  SparseLu lu_;                     ///< B = P^T L U Q^T + eta file
  /// Eta-file fill trigger: refactorise when the eta nonzeros outgrow
  /// this cap (set from the factor size at each refactorisation).
  std::size_t eta_nnz_cap_ = 0;
  FactorizationStats factor_stats_;
  std::size_t pivots_since_refactor_ = 0;
  std::size_t iterations_ = 0;
  bool last_optimal_ = false;
  bool last_warm_ = false;
  const SimplexOptions* opt_ = nullptr;  ///< options of the active solve

  // Preallocated work buffers (one allocation for the solver lifetime).
  mutable std::vector<double> w_;  ///< ftran result
  mutable std::vector<double> y_;  ///< duals
  std::vector<double> rho_;        ///< btran of a unit vector (dual row)
  std::vector<double> rhs_;
  std::vector<double> cost_;       ///< phase-2 cost cache
};

}  // namespace rrp::lp
