// Bounded-variable revised primal simplex.
//
// Internals: every ranged row `lo <= a'x <= hi` gets a slack variable
// bounded by [lo, hi] so the system becomes Ax = 0 with box-constrained
// variables; feasibility is established by a phase-1 minimisation of
// artificial variables, after which the original objective is optimised
// (phase 2).  The basis inverse is kept explicitly and refactorised
// periodically; Dantzig pricing switches to Bland's rule during stalls
// to guarantee finiteness under degeneracy.
//
// This is the LP engine under rrp::milp's branch & bound, which in turn
// solves the paper's DRRP and SRRP mixed-integer programs.
#pragma once

#include <cstddef>
#include <span>

#include "common/deadline.hpp"
#include "lp/model.hpp"

namespace rrp::testing {
class FaultInjector;
}  // namespace rrp::testing

namespace rrp::lp {

enum class Pricing {
  Dantzig,  ///< most negative reduced cost (default)
  Bland,    ///< least index; slow but never cycles
};

struct SimplexOptions {
  Pricing pricing = Pricing::Dantzig;
  std::size_t max_iterations = 50000;
  /// Rebuild the basis inverse from scratch every this many pivots.
  std::size_t refactor_every = 64;
  /// Consecutive non-improving pivots before falling back to Bland.
  std::size_t stall_limit = 200;
  double feasibility_tol = 1e-7;
  double optimality_tol = 1e-7;
  /// Wall-clock budget; polled once per pivot.  On expiry the solve
  /// returns SolveStatus::TimeLimit instead of iterating further.
  /// Defaults to unlimited (a single pointer compare per pivot).
  common::Deadline deadline;
  /// Test hook: when set, each solve() call first consumes one armed LP
  /// failure from the injector and throws rrp::NumericalError if armed.
  /// Production callers leave this null.
  const testing::FaultInjector* fault_injector = nullptr;
};

/// Solves the LP.  Never throws on infeasible/unbounded inputs (that is
/// reported through Solution::status); throws rrp::NumericalError only
/// if the basis algebra degenerates beyond repair.
Solution solve(const LinearProgram& lp, const SimplexOptions& options = {});

/// Verifies that `basis` is a structurally consistent simplex basis for
/// a system with `num_rows` rows and `num_columns` columns (structural +
/// slack + artificial): exactly one entry per row, every index in range,
/// no variable basic in two positions.  Throws rrp::ContractViolation on
/// the first inconsistency.  Used by the solver's internal invariant
/// checks (RRP_CHECK_INVARIANTS builds) and exposed so tests can feed it
/// a deliberately corrupted basis.
void verify_basis(std::size_t num_rows, std::size_t num_columns,
                  std::span<const std::size_t> basis);

}  // namespace rrp::lp
