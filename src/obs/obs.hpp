// Umbrella header for the observability layer: compile-out-able
// instrumentation macros over obs/registry.hpp, obs/trace.hpp and
// obs/events.hpp.
//
// Like RRP_INVARIANT (common/invariant.hpp), every macro below is
// governed by one CMake option:
//
//   RRP_OBSERVABILITY=ON  (default) defines RRP_ENABLE_OBSERVABILITY and
//     the macros expand to real instrumentation — registry updates,
//     scoped trace spans, structured events;
//   RRP_OBSERVABILITY=OFF leaves it undefined and every macro expands to
//     a no-op that never evaluates its value arguments (the off-build
//     probe TU tests/obs_off_probe.cpp proves this), so the hot paths
//     carry zero instrumentation cost.
//
// RRP_OBSERVABILITY_FORCE_OFF overrides per translation unit, mirroring
// RRP_INVARIANTS_FORCE_OFF.
//
// The obs *classes* are compiled unconditionally: cold epilogue code —
// the MipResult/SimulationResult compatibility views, --metrics-out —
// talks to the registry directly so result structs stay correct in
// every build flavour; only the hot-path macro sites compile away.
//
// Macro site cost with RRP_OBSERVABILITY=ON:
//   RRP_COUNTER_ADD    one relaxed fetch_add on a thread-sharded cell
//                      (the registry lookup runs once per site, cached
//                      in a function-local static reference);
//   RRP_GAUGE_SET/ADD  one relaxed store / CAS add;
//   RRP_HISTOGRAM_OBSERVE
//                      bucket scan (few bounds) + two relaxed adds;
//   RRP_TRACE_SPAN     one relaxed load when tracing is disabled; two
//                      Clock reads and one ring append when enabled;
//   RRP_OBS_EVENT      one relaxed load when no sink is installed.
#pragma once

#if defined(RRP_OBSERVABILITY_FORCE_OFF)
#define RRP_OBSERVABILITY_ENABLED 0
#elif defined(RRP_ENABLE_OBSERVABILITY)
#define RRP_OBSERVABILITY_ENABLED 1
#else
#define RRP_OBSERVABILITY_ENABLED 0
#endif

#include "obs/events.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

#if RRP_OBSERVABILITY_ENABLED

/// Adds `n` to the named process-wide counter.  `name` must be a string
/// literal (one registry lookup per site, then cached).
#define RRP_COUNTER_ADD(name, n)                               \
  do {                                                         \
    static ::rrp::obs::Counter& rrp_obs_counter_site =         \
        ::rrp::obs::global_registry().counter(name);           \
    rrp_obs_counter_site.add(static_cast<std::uint64_t>(n));   \
  } while (false)

/// Sets the named gauge to `v`.
#define RRP_GAUGE_SET(name, v)                             \
  do {                                                     \
    static ::rrp::obs::Gauge& rrp_obs_gauge_site =         \
        ::rrp::obs::global_registry().gauge(name);         \
    rrp_obs_gauge_site.set(static_cast<double>(v));        \
  } while (false)

/// Adds `v` to the named gauge (accumulated doubles, e.g. fill ratios).
#define RRP_GAUGE_ADD(name, v)                             \
  do {                                                     \
    static ::rrp::obs::Gauge& rrp_obs_gauge_site =         \
        ::rrp::obs::global_registry().gauge(name);         \
    rrp_obs_gauge_site.add(static_cast<double>(v));        \
  } while (false)

/// Observes `v` in the named histogram; `bounds_init` is a braced list
/// of upper bounds used on first registration, e.g.
/// RRP_HISTOGRAM_OBSERVE("lp.eta_fill", fill, {1.0, 2.0, 4.0, 8.0}).
#define RRP_HISTOGRAM_OBSERVE(name, v, ...)                        \
  do {                                                             \
    static ::rrp::obs::Histogram& rrp_obs_histogram_site =         \
        ::rrp::obs::global_registry().histogram(name, __VA_ARGS__);\
    rrp_obs_histogram_site.observe(static_cast<double>(v));        \
  } while (false)

#define RRP_OBS_CONCAT_INNER_(a, b) a##b
#define RRP_OBS_CONCAT_(a, b) RRP_OBS_CONCAT_INNER_(a, b)

/// Opens a scoped trace span covering the rest of the enclosing block.
/// `name` must be a string literal.
#define RRP_TRACE_SPAN(name) \
  ::rrp::obs::TraceSpan RRP_OBS_CONCAT_(rrp_obs_span_, __COUNTER__)(name)

/// Attaches a numeric arg to the innermost open span on this thread.
#define RRP_TRACE_ARG(key, v) \
  ::rrp::obs::TraceSpan::current_arg(key, static_cast<double>(v))

/// Emits a structured event: RRP_OBS_EVENT("rh", "fallback",
/// {{"slot", t}, {"reason", to_string(r)}}).  The variadic passthrough
/// keeps the braced field list intact through the macro.
#define RRP_OBS_EVENT(...) \
  ::rrp::obs::EventLog::instance().emit(__VA_ARGS__)

#else  // !RRP_OBSERVABILITY_ENABLED

// No-op expansions mirroring common/invariant.hpp: numeric value
// arguments are parsed (sizeof) but never evaluated; names and braced
// lists are discarded.
#define RRP_COUNTER_ADD(name, n) \
  do {                           \
    (void)sizeof((n));           \
  } while (false)
#define RRP_GAUGE_SET(name, v) \
  do {                         \
    (void)sizeof((v));         \
  } while (false)
#define RRP_GAUGE_ADD(name, v) \
  do {                         \
    (void)sizeof((v));         \
  } while (false)
#define RRP_HISTOGRAM_OBSERVE(name, v, ...) \
  do {                                      \
    (void)sizeof((v));                      \
  } while (false)
#define RRP_TRACE_SPAN(name) \
  do {                       \
  } while (false)
#define RRP_TRACE_ARG(key, v) \
  do {                        \
    (void)sizeof((v));        \
  } while (false)
#define RRP_OBS_EVENT(...) \
  do {                     \
  } while (false)

#endif  // RRP_OBSERVABILITY_ENABLED
