#include "obs/trace.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace rrp::obs {

namespace detail {

SpanRing::SpanRing(std::uint32_t tid, std::size_t capacity)
    : tid_(tid), records_(capacity) {}

void SpanRing::push(const SpanRecord& record) {
  MutexLock lock(mu_);
  records_[next_] = record;
  next_ = (next_ + 1) % records_.size();
  if (size_ < records_.size())
    ++size_;
  else
    ++dropped_;
}

void SpanRing::snapshot(std::vector<SpanRecord>& out) const {
  MutexLock lock(mu_);
  const std::size_t start = (next_ + records_.size() - size_) %
                            records_.size();
  for (std::size_t i = 0; i < size_; ++i)
    out.push_back(records_[(start + i) % records_.size()]);
}

void SpanRing::clear() {
  MutexLock lock(mu_);
  next_ = 0;
  size_ = 0;
  dropped_ = 0;
}

std::uint64_t SpanRing::dropped() const {
  MutexLock lock(mu_);
  return dropped_;
}

namespace {

/// Innermost open span of the calling thread (RRP_TRACE_ARG target) and
/// its nesting depth.  Plain thread-locals: only this thread touches
/// them.
thread_local TraceSpan* t_open_span = nullptr;
thread_local std::uint32_t t_depth = 0;
thread_local std::shared_ptr<SpanRing> t_ring;

}  // namespace

}  // namespace detail

TraceRecorder::TraceRecorder() : clock_(&common::real_clock()) {}

TraceRecorder& TraceRecorder::instance() {
  static TraceRecorder recorder;
  return recorder;
}

void TraceRecorder::set_ring_capacity(std::size_t spans) {
  ring_capacity_.store(spans == 0 ? 1 : spans, std::memory_order_relaxed);
}

detail::SpanRing& TraceRecorder::local_ring() {
  if (detail::t_ring == nullptr) {
    MutexLock lock(mu_);
    detail::t_ring = std::make_shared<detail::SpanRing>(
        next_tid_++, ring_capacity_.load(std::memory_order_relaxed));
    rings_.push_back(detail::t_ring);
  }
  return *detail::t_ring;
}

std::vector<SpanRecord> TraceRecorder::collect() const {
  std::vector<std::shared_ptr<detail::SpanRing>> rings;
  {
    MutexLock lock(mu_);
    rings = rings_;
  }
  std::vector<SpanRecord> out;
  for (const auto& ring : rings) ring->snapshot(out);
  return out;
}

std::uint64_t TraceRecorder::dropped() const {
  std::vector<std::shared_ptr<detail::SpanRing>> rings;
  {
    MutexLock lock(mu_);
    rings = rings_;
  }
  std::uint64_t total = 0;
  for (const auto& ring : rings) total += ring->dropped();
  return total;
}

void TraceRecorder::clear() {
  std::vector<std::shared_ptr<detail::SpanRing>> rings;
  {
    MutexLock lock(mu_);
    rings = rings_;
  }
  for (const auto& ring : rings) ring->clear();
}

namespace {

/// JSON number formatting for timestamps: fixed-point microseconds.
std::string format_us(double seconds) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  os << seconds * 1e6;
  return os.str();
}

}  // namespace

void TraceRecorder::write_chrome_trace(std::ostream& out) const {
  std::vector<SpanRecord> spans = collect();
  // Chrome's importer wants complete events in start order; ties broken
  // by longer span first so parents precede their children.
  std::stable_sort(spans.begin(), spans.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     if (a.start_seconds < b.start_seconds) return true;
                     if (b.start_seconds < a.start_seconds) return false;
                     return a.dur_seconds > b.dur_seconds;
                   });
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  const char* sep = "";
  for (const auto& s : spans) {
    out << sep << "{\"name\":\"" << s.name
        << "\",\"cat\":\"rrp\",\"ph\":\"X\",\"ts\":"
        << format_us(s.start_seconds)
        << ",\"dur\":" << format_us(s.dur_seconds) << ",\"pid\":1,\"tid\":"
        << s.tid;
    if (s.num_args > 0) {
      out << ",\"args\":{";
      for (std::uint32_t i = 0; i < s.num_args; ++i) {
        std::ostringstream val;
        val << s.args[i].value;
        out << (i ? "," : "") << '"' << s.args[i].key
            << "\":" << val.str();
      }
      out << '}';
    }
    out << '}';
    sep = ",";
  }
  out << "]}";
}

TraceSpan::TraceSpan(const char* name) {
  TraceRecorder& recorder = TraceRecorder::instance();
  if (!recorder.enabled()) return;
  active_ = true;
  record_.name = name;
  record_.depth = detail::t_depth++;
  record_.tid = recorder.local_ring().tid();
  prev_open_ = detail::t_open_span;
  detail::t_open_span = this;
  record_.start_seconds = recorder.now_seconds();
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  TraceRecorder& recorder = TraceRecorder::instance();
  record_.dur_seconds =
      std::max(0.0, recorder.now_seconds() - record_.start_seconds);
  detail::t_open_span = prev_open_;
  --detail::t_depth;
  recorder.local_ring().push(record_);
}

void TraceSpan::arg(const char* key, double value) noexcept {
  if (!active_ || record_.num_args >= kMaxSpanArgs) return;
  record_.args[record_.num_args] = SpanArg{key, value};
  ++record_.num_args;
}

void TraceSpan::current_arg(const char* key, double value) noexcept {
  if (detail::t_open_span != nullptr) detail::t_open_span->arg(key, value);
}

}  // namespace rrp::obs
