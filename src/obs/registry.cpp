#include "obs/registry.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"

namespace rrp::obs {

namespace detail {

namespace {
std::atomic<std::size_t> g_next_shard{0};
}  // namespace

std::size_t shard_index() noexcept {
  thread_local const std::size_t idx =
      g_next_shard.fetch_add(1, std::memory_order_relaxed) % kCounterShards;
  return idx;
}

void atomic_add(std::atomic<double>& target, double delta) noexcept {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace detail

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      counts_(bounds_.size() + 1) {
  RRP_EXPECTS(!bounds_.empty());
  RRP_EXPECTS(std::is_sorted(bounds_.begin(), bounds_.end()));
}

void Histogram::observe(double v) noexcept {
  std::size_t bucket = bounds_.size();  // overflow unless a bound fits
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (v <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add(sum_, v);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i)
    out[i] = counts_[i].load(std::memory_order_relaxed);
  return out;
}

Counter& Registry::counter(std::string_view name) {
  MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<double> upper_bounds) {
  MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(upper_bounds)))
             .first;
  return *it->second;
}

MetricsSnapshot Registry::scrape() const {
  MetricsSnapshot snap;
  MutexLock lock(mu_);
  snap.samples.reserve(counters_.size() + gauges_.size() +
                       histograms_.size());
  for (const auto& [name, c] : counters_) {
    MetricSample s;
    s.kind = MetricSample::Kind::Counter;
    s.name = name;
    s.value = static_cast<double>(c->value());
    snap.samples.push_back(std::move(s));
  }
  for (const auto& [name, g] : gauges_) {
    MetricSample s;
    s.kind = MetricSample::Kind::Gauge;
    s.name = name;
    s.value = g->value();
    snap.samples.push_back(std::move(s));
  }
  for (const auto& [name, h] : histograms_) {
    MetricSample s;
    s.kind = MetricSample::Kind::Histogram;
    s.name = name;
    s.value = h->sum();
    s.count = h->count();
    s.bounds = h->upper_bounds();
    s.bucket_counts = h->bucket_counts();
    snap.samples.push_back(std::move(s));
  }
  return snap;
}

namespace {

/// Trims trailing zeros off the default double formatting so metric
/// text stays diff-friendly.
std::string format_number(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

std::string MetricsSnapshot::to_text() const {
  std::ostringstream os;
  for (const auto& s : samples) {
    switch (s.kind) {
      case MetricSample::Kind::Counter:
      case MetricSample::Kind::Gauge:
        os << s.name << ' ' << format_number(s.value) << '\n';
        break;
      case MetricSample::Kind::Histogram: {
        os << s.name << "_count " << s.count << '\n';
        os << s.name << "_sum " << format_number(s.value) << '\n';
        for (std::size_t i = 0; i < s.bucket_counts.size(); ++i) {
          os << s.name << "_bucket{le=\"";
          if (i < s.bounds.size())
            os << format_number(s.bounds[i]);
          else
            os << "+inf";
          os << "\"} " << s.bucket_counts[i] << '\n';
        }
        break;
      }
    }
  }
  return os.str();
}

std::string MetricsSnapshot::to_json() const {
  std::ostringstream os;
  os << '{';
  const char* sep = "";
  os << "\"counters\":{";
  for (const auto& s : samples) {
    if (s.kind != MetricSample::Kind::Counter) continue;
    os << sep << '"' << s.name << "\":"
       << static_cast<std::uint64_t>(s.value);
    sep = ",";
  }
  os << "},\"gauges\":{";
  sep = "";
  for (const auto& s : samples) {
    if (s.kind != MetricSample::Kind::Gauge) continue;
    os << sep << '"' << s.name << "\":" << format_number(s.value);
    sep = ",";
  }
  os << "},\"histograms\":{";
  sep = "";
  for (const auto& s : samples) {
    if (s.kind != MetricSample::Kind::Histogram) continue;
    os << sep << '"' << s.name << "\":{\"count\":" << s.count
       << ",\"sum\":" << format_number(s.value) << ",\"bounds\":[";
    for (std::size_t i = 0; i < s.bounds.size(); ++i)
      os << (i ? "," : "") << format_number(s.bounds[i]);
    os << "],\"counts\":[";
    for (std::size_t i = 0; i < s.bucket_counts.size(); ++i)
      os << (i ? "," : "") << s.bucket_counts[i];
    os << "]}";
    sep = ",";
  }
  os << "}}";
  return os.str();
}

std::uint64_t MetricsSnapshot::counter(std::string_view name) const {
  for (const auto& s : samples)
    if (s.kind == MetricSample::Kind::Counter && s.name == name)
      return static_cast<std::uint64_t>(s.value);
  return 0;
}

double MetricsSnapshot::gauge(std::string_view name) const {
  for (const auto& s : samples)
    if (s.kind == MetricSample::Kind::Gauge && s.name == name)
      return s.value;
  return 0.0;
}

Registry& global_registry() {
  static Registry registry;
  return registry;
}

}  // namespace rrp::obs
