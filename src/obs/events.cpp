#include "obs/events.hpp"

#include <sstream>

namespace rrp::obs {

namespace {

/// Minimal JSON string escaping (quotes, backslashes, control chars).
void append_escaped(std::ostringstream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      case '\r':
        os << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          os << ' ';  // other control chars: blank out
        else
          os << c;
    }
  }
}

}  // namespace

std::string event_to_jsonl(const Event& event) {
  std::ostringstream os;
  os << "{\"ts\":" << event.ts_seconds << ",\"cat\":\"" << event.category
     << "\",\"event\":\"" << event.name << '"';
  for (const auto& f : event.fields) {
    os << ",\"" << f.key << "\":";
    if (f.is_string) {
      os << '"';
      append_escaped(os, f.str);
      os << '"';
    } else {
      os << f.num;
    }
  }
  os << '}';
  return os.str();
}

JsonlFileSink::JsonlFileSink(const std::string& path) : out_(path) {}

bool JsonlFileSink::ok() const {
  MutexLock lock(mu_);
  return out_.good();
}

void JsonlFileSink::write(const Event& event) {
  const std::string line = event_to_jsonl(event);
  MutexLock lock(mu_);
  out_ << line << '\n';
}

void VectorSink::write(const Event& event) {
  MutexLock lock(mu_);
  events_.push_back(event);
}

std::vector<Event> VectorSink::events() const {
  MutexLock lock(mu_);
  return events_;
}

EventLog::EventLog() : clock_(&common::real_clock()) {}

EventLog& EventLog::instance() {
  static EventLog log;
  return log;
}

void EventLog::set_sink(std::shared_ptr<EventSink> sink) {
  MutexLock lock(mu_);
  sink_ = std::move(sink);
  has_sink_.store(sink_ != nullptr, std::memory_order_relaxed);
}

void EventLog::emit(const char* category, const char* name,
                    std::initializer_list<EventField> fields) {
  if (!enabled()) return;
  std::shared_ptr<EventSink> sink;
  {
    MutexLock lock(mu_);
    sink = sink_;
  }
  if (sink == nullptr) return;
  Event event;
  event.ts_seconds =
      clock_.load(std::memory_order_relaxed)->now_seconds();
  event.category = category;
  event.name = name;
  event.fields.assign(fields.begin(), fields.end());
  sink->write(event);
}

}  // namespace rrp::obs
