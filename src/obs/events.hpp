// Structured event log: the one sink for the discrete happenings that
// used to be ad-hoc telemetry vectors — rolling-horizon fallbacks
// (core::FallbackEvent), spot revocations and migrations, price-feed
// faults, LP recovery-ladder rungs.  Emission sites go through the
// RRP_OBS_EVENT macro (obs/obs.hpp) so they compile out under
// RRP_OBSERVABILITY=OFF; with no sink installed an emission costs one
// relaxed atomic load.
//
// The stock sink writes JSONL (one JSON object per line) — the
// --events-out CLI format — but anything implementing EventSink can be
// installed: an rrpd request handler would install a per-tenant buffer.
#pragma once

#include <atomic>
#include <cstdint>
#include <fstream>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "common/deadline.hpp"
#include "common/sync.hpp"

namespace rrp::obs {

/// One key/value of an event payload; numeric or string.
struct EventField {
  EventField(const char* k, double v) : key(k), num(v) {}
  EventField(const char* k, std::uint64_t v)
      : key(k), num(static_cast<double>(v)) {}
  EventField(const char* k, int v) : key(k), num(v) {}
  EventField(const char* k, const char* v)
      : key(k), is_string(true), str(v) {}
  EventField(const char* k, std::string v)
      : key(k), is_string(true), str(std::move(v)) {}

  const char* key;
  bool is_string = false;
  double num = 0.0;
  std::string str;
};

/// One structured event.
struct Event {
  double ts_seconds = 0.0;
  const char* category = "";  ///< subsystem ("rh", "lp", "market", ...)
  const char* name = "";      ///< event kind ("fallback", "revocation", ...)
  std::vector<EventField> fields;
};

/// Where emitted events go.  Implementations serialise internally; the
/// log calls write() from whatever thread emitted.
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void write(const Event& event) = 0;
};

/// JSONL file sink: {"ts":..., "cat":..., "event":..., <fields>} per line.
class JsonlFileSink final : public EventSink {
 public:
  explicit JsonlFileSink(const std::string& path);

  bool ok() const;
  void write(const Event& event) override RRP_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::ofstream out_ RRP_GUARDED_BY(mu_);
};

/// In-memory sink for tests.
class VectorSink final : public EventSink {
 public:
  void write(const Event& event) override RRP_EXCLUDES(mu_);
  std::vector<Event> events() const RRP_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::vector<Event> events_ RRP_GUARDED_BY(mu_);
};

/// Process-wide event log.  emit() is a no-op until a sink is installed.
class EventLog {
 public:
  static EventLog& instance();

  /// Installs (or, with nullptr, removes) the sink.
  void set_sink(std::shared_ptr<EventSink> sink) RRP_EXCLUDES(mu_);
  bool enabled() const noexcept {
    return has_sink_.load(std::memory_order_relaxed);
  }

  /// Injects a clock for deterministic tests; nullptr restores the
  /// process monotonic clock.
  void set_clock(const common::Clock* clock) {
    clock_.store(clock != nullptr ? clock : &common::real_clock(),
                 std::memory_order_relaxed);
  }

  void emit(const char* category, const char* name,
            std::initializer_list<EventField> fields) RRP_EXCLUDES(mu_);

 private:
  EventLog();

  std::atomic<bool> has_sink_{false};
  std::atomic<const common::Clock*> clock_;
  mutable Mutex mu_;
  std::shared_ptr<EventSink> sink_ RRP_GUARDED_BY(mu_);
};

/// Writes `event` as one JSONL line (the JsonlFileSink format); exposed
/// for tests and ad-hoc sinks.
std::string event_to_jsonl(const Event& event);

}  // namespace rrp::obs
