// Process-wide metrics registry: named counters, gauges and fixed-bucket
// histograms for the solver, simulator and time-series hot paths.
//
// Design (see DESIGN.md "Observability"):
//
//   * Counters are monotone and sharded: each holds kShards cache-line-
//     padded atomic cells, and a thread adds to the cell picked by its
//     round-robin-assigned shard index, so concurrent workers (parallel
//     branch & bound, the ThreadPool) never contend on one cache line.
//     `value()` aggregates the cells on scrape with relaxed loads —
//     scrapes are wait-free and race-free (TSan-clean) but see a
//     point-in-time-ish sum, which is all a monitoring read needs.
//   * Gauges are last-writer-wins doubles (plus an additive mode used
//     for accumulated ratios such as LU fill).
//   * Histograms have fixed upper bounds declared at registration;
//     observation is one relaxed fetch_add on the matching bucket.
//
// Registration (name -> metric) is the only locked path and uses the
// annotated rrp::Mutex from PR 6; instrumentation sites cache the
// returned reference (metrics are never deleted, so references stay
// valid for the process lifetime).  The hot-path macros that feed this
// registry live in obs/obs.hpp and compile out under
// RRP_OBSERVABILITY=OFF; the registry itself is always built so cold
// epilogue code (result-struct compatibility views, --metrics-out) works
// in every build flavour.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/sync.hpp"

namespace rrp::obs {

namespace detail {

/// Number of counter cells; covers the worker counts used by the
/// parallel branch & bound and the ThreadPool without contention.
inline constexpr std::size_t kCounterShards = 16;

/// Stable per-thread shard index in [0, kCounterShards): assigned
/// round-robin on first use so the first kCounterShards threads get
/// distinct cells.
std::size_t shard_index() noexcept;

struct alignas(64) CounterCell {
  std::atomic<std::uint64_t> value{0};
};

/// Relaxed add for atomic<double> via CAS (portable; avoids relying on
/// the C++20 floating fetch_add across toolchains).
void atomic_add(std::atomic<double>& target, double delta) noexcept;

}  // namespace detail

/// Monotone counter.  add() is wait-free on the caller's shard cell.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    cells_[detail::shard_index()].value.fetch_add(n,
                                                  std::memory_order_relaxed);
  }

  /// Sum across shards (relaxed; concurrent adds may or may not be seen).
  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& cell : cells_)
      total += cell.value.load(std::memory_order_relaxed);
    return total;
  }

 private:
  std::array<detail::CounterCell, detail::kCounterShards> cells_;
};

/// Last-writer-wins double, with an additive mode for accumulated sums
/// (e.g. LU fill ratios) where the double-ness matters.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) noexcept { detail::atomic_add(value_, delta); }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: bucket i counts observations <= bounds[i],
/// with an implicit +inf overflow bucket, plus a running sum/count so
/// scrapes can report means.
class Histogram {
 public:
  /// `upper_bounds` must be strictly increasing and non-empty.
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v) noexcept;

  const std::vector<double>& upper_bounds() const { return bounds_; }
  /// Per-bucket counts; size is upper_bounds().size() + 1 (overflow last).
  std::vector<std::uint64_t> bucket_counts() const;
  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> counts_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// One metric's value at scrape time.
struct MetricSample {
  enum class Kind { Counter, Gauge, Histogram };
  Kind kind = Kind::Counter;
  std::string name;
  double value = 0.0;  ///< counter total or gauge value; sum for histograms
  // Histogram-only:
  std::uint64_t count = 0;
  std::vector<double> bounds;
  std::vector<std::uint64_t> bucket_counts;
};

/// Point-in-time view of every registered metric, name-sorted.
struct MetricsSnapshot {
  std::vector<MetricSample> samples;

  /// `name value` per line (histograms expand to _count/_sum/_bucket
  /// lines), stable order — the --metrics-out text format.
  std::string to_text() const;
  /// {"counters":{...},"gauges":{...},"histograms":{...}} — the
  /// bench_solvers_json metrics block.
  std::string to_json() const;

  /// Convenience lookups for tests and compatibility views; 0 when the
  /// metric does not exist.
  std::uint64_t counter(std::string_view name) const;
  double gauge(std::string_view name) const;
};

/// Name -> metric registry.  Metrics are created on first use and live
/// for the process lifetime; the returned references are stable.
class Registry {
 public:
  Counter& counter(std::string_view name) RRP_EXCLUDES(mu_);
  Gauge& gauge(std::string_view name) RRP_EXCLUDES(mu_);
  /// First registration fixes the bucket bounds; later calls with the
  /// same name return the existing histogram regardless of `bounds`.
  Histogram& histogram(std::string_view name,
                       std::vector<double> upper_bounds) RRP_EXCLUDES(mu_);

  MetricsSnapshot scrape() const RRP_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      RRP_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      RRP_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      RRP_GUARDED_BY(mu_);
};

/// The process-wide registry every instrumentation macro feeds.  (A
/// future rrpd would hold one Registry per tenant next to this one.)
Registry& global_registry();

}  // namespace rrp::obs
