// Scoped trace spans recorded into per-thread ring buffers, flushed on
// demand as Chrome trace-event JSON (load in Perfetto / chrome://tracing).
//
// A span is an RAII object opened by RRP_TRACE_SPAN("bnb.node") (see
// obs/obs.hpp); its constructor and destructor read the recorder's
// injectable common::Clock — never std::chrono directly — so tests drive
// span durations with a FakeClock and the no-raw-clock lint holds.  Span
// args (node id, refactorisation count, cut round, ...) attach to the
// innermost open span via RRP_TRACE_ARG.
//
// Recording is off by default: a disabled recorder costs one relaxed
// atomic load per span site.  When enabled, closing a span appends one
// fixed-size record to the calling thread's ring buffer under that
// ring's own mutex (uncontended: one ring per thread); full rings drop
// the oldest records and count the drops.  Records are written at span
// *close*, so a ring never holds a child without having room for its
// parent later — wrap-around keeps the flushed trace properly nested.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "common/deadline.hpp"
#include "common/sync.hpp"

namespace rrp::obs {

/// Numeric key/value attached to a span ("node", 17).  Keys must be
/// string literals (stored by pointer).
struct SpanArg {
  const char* key = nullptr;
  double value = 0.0;
};

inline constexpr std::size_t kMaxSpanArgs = 4;

/// One closed span, as stored in a ring buffer.
struct SpanRecord {
  const char* name = nullptr;  ///< string literal
  double start_seconds = 0.0;
  double dur_seconds = 0.0;
  std::uint32_t tid = 0;    ///< recorder-assigned thread index
  std::uint32_t depth = 0;  ///< nesting depth at open (0 = top level)
  std::array<SpanArg, kMaxSpanArgs> args{};
  std::uint32_t num_args = 0;
};

namespace detail {

/// Per-thread span ring.  Shared ownership between the thread-local
/// handle (writer) and the recorder's flush list (reader), so records
/// survive thread exit until flushed.
class SpanRing {
 public:
  SpanRing(std::uint32_t tid, std::size_t capacity);

  void push(const SpanRecord& record) RRP_EXCLUDES(mu_);
  /// Appends this ring's records (oldest first) to `out`.
  void snapshot(std::vector<SpanRecord>& out) const RRP_EXCLUDES(mu_);
  void clear() RRP_EXCLUDES(mu_);
  std::uint64_t dropped() const RRP_EXCLUDES(mu_);
  std::uint32_t tid() const { return tid_; }

 private:
  const std::uint32_t tid_;
  mutable Mutex mu_;
  std::vector<SpanRecord> records_ RRP_GUARDED_BY(mu_);  // capacity fixed
  std::size_t next_ RRP_GUARDED_BY(mu_) = 0;   ///< write cursor
  std::size_t size_ RRP_GUARDED_BY(mu_) = 0;   ///< records held
  std::uint64_t dropped_ RRP_GUARDED_BY(mu_) = 0;
};

}  // namespace detail

class TraceSpan;

/// Process-wide span recorder: owns the per-thread rings and the clock.
class TraceRecorder {
 public:
  static TraceRecorder& instance();

  /// Start recording spans.  Sites check enabled() first, so flipping
  /// this is the only cost when tracing is off.
  void enable() { enabled_.store(true, std::memory_order_relaxed); }
  void disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Injects a clock for deterministic tests; nullptr restores the
  /// process monotonic clock.  Call while no spans are open.
  void set_clock(const common::Clock* clock) {
    clock_.store(clock != nullptr ? clock : &common::real_clock(),
                 std::memory_order_relaxed);
  }

  double now_seconds() const {
    return clock_.load(std::memory_order_relaxed)->now_seconds();
  }

  /// Ring capacity (spans per thread) for rings created afterwards.
  void set_ring_capacity(std::size_t spans);

  /// All recorded spans across threads, oldest-first per thread.
  std::vector<SpanRecord> collect() const RRP_EXCLUDES(mu_);
  /// Total spans discarded to ring wrap-around.
  std::uint64_t dropped() const RRP_EXCLUDES(mu_);
  /// Drops every recorded span (rings stay registered).
  void clear() RRP_EXCLUDES(mu_);

  /// Writes the Chrome trace-event JSON ("X" complete events, ts/dur in
  /// microseconds) for everything recorded so far.
  void write_chrome_trace(std::ostream& out) const;

 private:
  friend class TraceSpan;

  TraceRecorder();

  /// The calling thread's ring, created and registered on first use.
  detail::SpanRing& local_ring() RRP_EXCLUDES(mu_);

  std::atomic<bool> enabled_{false};
  std::atomic<const common::Clock*> clock_;
  std::atomic<std::size_t> ring_capacity_{8192};
  mutable Mutex mu_;
  std::vector<std::shared_ptr<detail::SpanRing>> rings_ RRP_GUARDED_BY(mu_);
  std::uint32_t next_tid_ RRP_GUARDED_BY(mu_) = 0;
};

/// RAII scoped span; use through RRP_TRACE_SPAN / RRP_TRACE_ARG so span
/// sites compile out under RRP_OBSERVABILITY=OFF.  `name` must be a
/// string literal.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches a numeric arg to this span (ignored past kMaxSpanArgs).
  void arg(const char* key, double value) noexcept;

  /// Attaches an arg to the innermost open span on this thread, if any.
  static void current_arg(const char* key, double value) noexcept;

 private:
  bool active_ = false;
  TraceSpan* prev_open_ = nullptr;  ///< enclosing span on this thread
  SpanRecord record_;
};

}  // namespace rrp::obs
