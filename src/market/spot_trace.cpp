#include "market/spot_trace.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "common/csv.hpp"
#include "common/error.hpp"

namespace rrp::market {

SpotTrace::SpotTrace(VmClass vm, std::vector<ts::Tick> ticks)
    : vm_(vm), ticks_(std::move(ticks)) {
  RRP_EXPECTS(!ticks_.empty());
  RRP_EXPECTS(std::is_sorted(ticks_.begin(), ticks_.end(),
                             [](const ts::Tick& a, const ts::Tick& b) {
                               return a.time_hours < b.time_hours;
                             }));
  for (const ts::Tick& t : ticks_) RRP_EXPECTS(t.value > 0.0);
}

double SpotTrace::duration_hours() const {
  return ticks_.back().time_hours - ticks_.front().time_hours;
}

std::vector<double> SpotTrace::prices() const {
  std::vector<double> out;
  out.reserve(ticks_.size());
  for (const ts::Tick& t : ticks_) out.push_back(t.value);
  return out;
}

std::vector<double> SpotTrace::hourly(long first_hour, long last_hour) const {
  return ts::hourly_locf(ticks_, first_hour, last_hour);
}

std::vector<double> SpotTrace::hourly() const {
  const long last =
      static_cast<long>(std::ceil(ticks_.back().time_hours)) + 1;
  return hourly(static_cast<long>(std::floor(ticks_.front().time_hours)),
                last);
}

std::vector<std::size_t> SpotTrace::daily_update_counts() const {
  return ts::daily_update_counts(ticks_);
}

SpotTrace SpotTrace::load_csv(const std::string& path, VmClass vm) {
  const auto doc = csv::read_file(path, /*has_header=*/false);
  std::vector<ts::Tick> ticks;
  ticks.reserve(doc.rows.size());
  for (std::size_t i = 0; i < doc.rows.size(); ++i) {
    const auto& row = doc.rows[i];
    if (row.size() < 2) throw Error("spot trace CSV: short row in " + path);
    try {
      ticks.push_back(ts::Tick{std::stod(row[0]), std::stod(row[1])});
    } catch (const std::exception&) {
      if (i == 0) continue;  // tolerate a header line
      throw Error("spot trace CSV: bad numeric field in " + path);
    }
  }
  std::sort(ticks.begin(), ticks.end(),
            [](const ts::Tick& a, const ts::Tick& b) {
              return a.time_hours < b.time_hours;
            });
  return SpotTrace(vm, std::move(ticks));
}

void SpotTrace::save_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw Error("spot trace CSV: cannot write " + path);
  out << "time_hours,price\n";
  out.precision(10);
  for (const ts::Tick& t : ticks_) out << t.time_hours << ',' << t.value
                                       << '\n';
}

}  // namespace rrp::market
