#include "market/spot_trace.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "common/csv.hpp"
#include "common/error.hpp"

namespace rrp::market {

SpotTrace::SpotTrace(VmClass vm, std::vector<ts::Tick> ticks,
                     std::vector<RevocationMarker> revocations)
    : vm_(vm),
      ticks_(std::move(ticks)),
      revocations_(std::move(revocations)) {
  RRP_EXPECTS(!ticks_.empty());
  RRP_EXPECTS(std::is_sorted(ticks_.begin(), ticks_.end(),
                             [](const ts::Tick& a, const ts::Tick& b) {
                               return a.time_hours < b.time_hours;
                             }));
  for (const ts::Tick& t : ticks_) RRP_EXPECTS(t.value > 0.0);
  RRP_EXPECTS(std::is_sorted(
      revocations_.begin(), revocations_.end(),
      [](const RevocationMarker& a, const RevocationMarker& b) {
        return a.tick_index < b.tick_index;
      }));
  for (const RevocationMarker& m : revocations_)
    RRP_EXPECTS(m.tick_index < ticks_.size());
}

double SpotTrace::duration_hours() const {
  return ticks_.back().time_hours - ticks_.front().time_hours;
}

std::vector<double> SpotTrace::prices() const {
  std::vector<double> out;
  out.reserve(ticks_.size());
  for (const ts::Tick& t : ticks_) out.push_back(t.value);
  return out;
}

std::vector<double> SpotTrace::hourly(long first_hour, long last_hour) const {
  return ts::hourly_locf(ticks_, first_hour, last_hour);
}

std::vector<double> SpotTrace::hourly() const {
  const long last =
      static_cast<long>(std::ceil(ticks_.back().time_hours)) + 1;
  return hourly(static_cast<long>(std::floor(ticks_.front().time_hours)),
                last);
}

std::vector<double> SpotTrace::hourly_max(long first_hour,
                                          long last_hour) const {
  std::vector<double> out = hourly(first_hour, last_hour);
  for (const ts::Tick& t : ticks_) {
    const double h = std::floor(t.time_hours);
    if (h < static_cast<double>(first_hour) ||
        h >= static_cast<double>(last_hour))
      continue;
    const auto idx = static_cast<std::size_t>(
        static_cast<long>(h) - first_hour);
    out[idx] = std::max(out[idx], t.value);
  }
  return out;
}

std::vector<HourlyRevocation> SpotTrace::hourly_revocations(
    long first_hour, long last_hour) const {
  RRP_EXPECTS(first_hour <= last_hour);
  std::vector<HourlyRevocation> out(
      static_cast<std::size_t>(last_hour - first_hour),
      HourlyRevocation::None);
  for (const RevocationMarker& m : revocations_) {
    const double h = std::floor(ticks_[m.tick_index].time_hours);
    if (h < static_cast<double>(first_hour) ||
        h >= static_cast<double>(last_hour))
      continue;
    auto& slot = out[static_cast<std::size_t>(
        static_cast<long>(h) - first_hour)];
    if (m.storm)
      slot = HourlyRevocation::Storm;
    else if (slot == HourlyRevocation::None)
      slot = HourlyRevocation::Single;
  }
  return out;
}

std::vector<std::size_t> SpotTrace::daily_update_counts() const {
  return ts::daily_update_counts(ticks_);
}

namespace {

/// Parses one numeric CSV field; throws InvalidArgument naming the row
/// (1-based, as in the file) and field on any malformed value.
double parse_field(const std::string& raw, const std::string& path,
                   std::size_t row, const char* field) {
  const std::string at = "spot trace CSV " + path + " row " +
                         std::to_string(row) + ": " + field;
  double value = 0.0;
  std::size_t consumed = 0;
  try {
    value = std::stod(raw, &consumed);
  } catch (const std::exception&) {
    throw InvalidArgument(at + " is not numeric: \"" + raw + "\"");
  }
  if (consumed != raw.size())
    throw InvalidArgument(at + " has trailing characters: \"" + raw + "\"");
  if (std::isnan(value)) throw InvalidArgument(at + " is NaN");
  if (!std::isfinite(value))
    throw InvalidArgument(at + " is not finite: \"" + raw + "\"");
  return value;
}

bool looks_like_header(const std::vector<std::string>& row) {
  if (row.empty()) return false;
  try {
    std::size_t consumed = 0;
    (void)std::stod(row[0], &consumed);
    return consumed != row[0].size();
  } catch (const std::exception&) {
    return true;
  }
}

}  // namespace

SpotTrace SpotTrace::load_csv(const std::string& path, VmClass vm) {
  const auto doc = csv::read_file(path, /*has_header=*/false);
  std::vector<ts::Tick> ticks;
  std::vector<RevocationMarker> revocations;
  ticks.reserve(doc.rows.size());
  for (std::size_t i = 0; i < doc.rows.size(); ++i) {
    const auto& row = doc.rows[i];
    const std::size_t row_no = i + 1;
    if (i == 0 && looks_like_header(row)) continue;
    if (row.size() < 2)
      throw InvalidArgument("spot trace CSV " + path + " row " +
                            std::to_string(row_no) + ": expected "
                            "time_hours,price[,event], got " +
                            std::to_string(row.size()) + " field(s)");
    const double time = parse_field(row[0], path, row_no, "time_hours");
    const double price = parse_field(row[1], path, row_no, "price");
    if (time < 0.0)
      throw InvalidArgument("spot trace CSV " + path + " row " +
                            std::to_string(row_no) +
                            ": time_hours must be non-negative, got " +
                            std::to_string(time));
    if (price <= 0.0)
      throw InvalidArgument("spot trace CSV " + path + " row " +
                            std::to_string(row_no) +
                            ": price must be positive, got " +
                            std::to_string(price));
    if (!ticks.empty() && time <= ticks.back().time_hours)
      throw InvalidArgument(
          "spot trace CSV " + path + " row " + std::to_string(row_no) +
          ": time_hours " + std::to_string(time) +
          (time == ticks.back().time_hours ? " duplicates" : " precedes") +
          " the previous row's " +
          std::to_string(ticks.back().time_hours) +
          " (rows must be strictly increasing in time)");
    if (row.size() >= 3 && !row[2].empty()) {
      if (row[2] == "revoke")
        revocations.push_back(RevocationMarker{ticks.size(), false});
      else if (row[2] == "storm")
        revocations.push_back(RevocationMarker{ticks.size(), true});
      else
        throw InvalidArgument("spot trace CSV " + path + " row " +
                              std::to_string(row_no) +
                              ": event must be empty, \"revoke\" or "
                              "\"storm\", got \"" + row[2] + "\"");
    }
    ticks.push_back(ts::Tick{time, price});
  }
  if (ticks.empty())
    throw InvalidArgument("spot trace CSV " + path +
                          ": no data rows (empty file or header only)");
  return SpotTrace(vm, std::move(ticks), std::move(revocations));
}

void SpotTrace::save_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw Error("spot trace CSV: cannot write " + path);
  out.precision(10);
  if (revocations_.empty()) {
    out << "time_hours,price\n";
    for (const ts::Tick& t : ticks_)
      out << t.time_hours << ',' << t.value << '\n';
    return;
  }
  out << "time_hours,price,event\n";
  std::size_t next = 0;
  for (std::size_t i = 0; i < ticks_.size(); ++i) {
    out << ticks_[i].time_hours << ',' << ticks_[i].value << ',';
    if (next < revocations_.size() && revocations_[next].tick_index == i) {
      out << (revocations_[next].storm ? "storm" : "revoke");
      ++next;
    }
    out << '\n';
  }
}

}  // namespace rrp::market
