// Spot auction semantics (paper Section IV assumptions):
//
//  * uniform-price auction — a winner pays the spot price (the lowest
//    winning bid), not their own bid;
//  * an out-of-bid event occurs when the bid is below the spot price;
//    the ASP must then rent the instance from the on-demand market at
//    lambda_i to meet demand.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "market/instance_types.hpp"

namespace rrp::market {

struct AuctionOutcome {
  bool won = false;          ///< bid >= spot price
  double price_paid = 0.0;   ///< spot if won, on-demand lambda otherwise
};

/// Settles one slot's acquisition attempt.
AuctionOutcome settle(double bid, double spot_price, double on_demand_price);

/// Settles a whole horizon of bids against realised spot prices.
std::vector<AuctionOutcome> settle_horizon(std::span<const double> bids,
                                           std::span<const double> spot,
                                           double on_demand_price);

/// Summary statistics of a settled horizon.
struct AuctionStats {
  std::size_t slots = 0;
  std::size_t out_of_bid_events = 0;
  double total_paid = 0.0;
  double out_of_bid_rate() const {
    return slots == 0 ? 0.0
                      : static_cast<double>(out_of_bid_events) /
                            static_cast<double>(slots);
  }
};

AuctionStats summarize(std::span<const AuctionOutcome> outcomes);

/// Availability of a persistent bid against an hourly price series —
/// the concern the paper raises in Section II/IV ("The biggest concern
/// for utilizing spot instances is that it is hard to guarantee
/// resource availability", cf. refs [19][20]): a spot instance is held
/// only while bid >= spot.
struct AvailabilityReport {
  double uptime_fraction = 0.0;     ///< share of slots the bid holds
  std::size_t interruptions = 0;    ///< up -> down transitions
  double mean_uptime_run = 0.0;     ///< average up-run length, slots
  double mean_downtime_run = 0.0;   ///< average down-run length, slots
  double mean_price_paid = 0.0;     ///< average spot price over up slots
};

/// Analyses a constant bid against realised hourly prices.
AvailabilityReport analyze_availability(std::span<const double> hourly,
                                        double bid);

}  // namespace rrp::market
