#include "market/cost_model.hpp"

#include "common/error.hpp"

namespace rrp::market {

CostModel::CostModel(Parameters params) : p_(params) {
  RRP_EXPECTS(p_.storage_per_gb_slot >= 0.0);
  RRP_EXPECTS(p_.io_per_gb_slot >= 0.0);
  RRP_EXPECTS(p_.transfer_in_per_gb >= 0.0);
  RRP_EXPECTS(p_.transfer_out_per_gb >= 0.0);
  RRP_EXPECTS(p_.input_output_ratio >= 0.0);
}

CostModel CostModel::paper_defaults() {
  Parameters p;
  p.storage_per_gb_slot = 0.1 / 730.0;  // $0.1 per GB-month, hourly slots
  p.io_per_gb_slot = 0.2;               // normalised Montage I/O cost
  p.transfer_in_per_gb = 0.1;
  p.transfer_out_per_gb = 0.17;
  p.input_output_ratio = 0.5;           // Phi_i for all classes
  return CostModel(p);
}

CostModel CostModel::with_io_scaled(double factor) const {
  RRP_EXPECTS(factor >= 0.0);
  Parameters p = p_;
  p.io_per_gb_slot *= factor;
  return CostModel(p);
}

}  // namespace rrp::market
