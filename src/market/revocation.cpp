#include "market/revocation.hpp"

#include <cmath>
#include <string>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "obs/obs.hpp"

namespace rrp::market {

const char* to_string(RevocationKind kind) {
  switch (kind) {
    case RevocationKind::BidCross: return "bid-cross";
    case RevocationKind::Hazard: return "hazard";
    case RevocationKind::Storm: return "storm";
  }
  return "unknown";
}

namespace {

void check_probability(double v, const char* field) {
  if (std::isnan(v))
    throw InvalidArgument(std::string("RevocationConfig: ") + field +
                          " is NaN");
  if (v < 0.0 || v > 1.0 || !std::isfinite(v))
    throw InvalidArgument(std::string("RevocationConfig: ") + field +
                          " must be in [0, 1], got " + std::to_string(v));
}

void check_cost(double v, const char* field) {
  if (std::isnan(v))
    throw InvalidArgument(std::string("RevocationConfig: ") + field +
                          " is NaN");
  if (v < 0.0 || !std::isfinite(v))
    throw InvalidArgument(std::string("RevocationConfig: ") + field +
                          " must be non-negative and finite, got " +
                          std::to_string(v));
}

}  // namespace

void RevocationConfig::validate() const {
  check_probability(hazard_per_slot, "hazard_per_slot");
  check_probability(storm_rate, "storm_rate");
  check_probability(storm_severity, "storm_severity");
  check_probability(checkpoint_overhead, "checkpoint_overhead");
  if (std::isnan(checkpoint_interval) || checkpoint_interval <= 0.0 ||
      checkpoint_interval > 1.0)
    throw InvalidArgument(
        "RevocationConfig: checkpoint_interval must be in (0, 1], got " +
        std::to_string(checkpoint_interval));
  check_cost(restart_cost, "restart_cost");
  check_cost(migration_cost, "migration_cost");
}

RevocationConfig RevocationConfig::calm() {
  RevocationConfig cfg;
  cfg.enabled = true;
  cfg.hazard_per_slot = 0.0;
  cfg.storm_rate = 0.0;
  return cfg;
}

RevocationConfig RevocationConfig::bid_crossing() {
  RevocationConfig cfg;
  cfg.enabled = true;
  cfg.hazard_per_slot = 0.04;
  cfg.storm_rate = 0.0;
  return cfg;
}

RevocationConfig RevocationConfig::storm() {
  RevocationConfig cfg;
  cfg.enabled = true;
  cfg.hazard_per_slot = 0.04;
  cfg.storm_rate = 0.08;
  cfg.storm_severity = 1.0;
  return cfg;
}

RevocationConfig RevocationConfig::regime(const std::string& name) {
  if (name == "calm") return calm();
  if (name == "bid-cross" || name == "bid-crossing") return bid_crossing();
  if (name == "storm") return storm();
  throw InvalidArgument(
      "RevocationConfig: unknown regime \"" + name +
      "\" (want calm | bid-cross | storm)");
}

RevocationModel::RevocationModel(const RevocationConfig& config,
                                 std::size_t horizon)
    : cfg_(config) {
  cfg_.validate();
  hazard_u_.reserve(horizon);
  storm_u_.reserve(horizon);
  severity_u_.reserve(horizon);
  fraction_.reserve(horizon);
  // One stream per process keeps each slot's draw independent of how
  // many draws the other processes consume.
  Rng rng(cfg_.seed ^ 0x5e70ca7105ULL);
  Rng hazard_rng = rng.split();
  Rng storm_rng = rng.split();
  Rng severity_rng = rng.split();
  Rng fraction_rng = rng.split();
  for (std::size_t t = 0; t < horizon; ++t) {
    hazard_u_.push_back(hazard_rng.uniform());
    storm_u_.push_back(storm_rng.uniform());
    severity_u_.push_back(severity_rng.uniform());
    // Keep the interruption point away from the slot edges: a crash in
    // the first or last instants degenerates to "lost nothing" /
    // "lost the whole slot" and hides checkpoint arithmetic bugs.
    fraction_.push_back(fraction_rng.uniform(0.05, 0.95));
  }
}

bool RevocationModel::storm_at(std::size_t t) const {
  RRP_EXPECTS(t < storm_u_.size());
  return cfg_.enabled && storm_u_[t] < cfg_.storm_rate;
}

std::optional<RevocationKind> RevocationModel::revocation(
    std::size_t t, double bid, double intra_slot_max) const {
  RRP_EXPECTS(t < fraction_.size());
  if (!cfg_.enabled) return std::nullopt;
  if (storm_at(t) && severity_u_[t] < cfg_.storm_severity) {
    RRP_COUNTER_ADD("rrp.market.revocations_drawn.storm", 1);
    return RevocationKind::Storm;
  }
  if (intra_slot_max > bid) {
    RRP_COUNTER_ADD("rrp.market.revocations_drawn.bid_cross", 1);
    return RevocationKind::BidCross;
  }
  if (hazard_u_[t] < cfg_.hazard_per_slot) {
    RRP_COUNTER_ADD("rrp.market.revocations_drawn.hazard", 1);
    return RevocationKind::Hazard;
  }
  return std::nullopt;
}

double RevocationModel::interruption_fraction(std::size_t t) const {
  RRP_EXPECTS(t < fraction_.size());
  return fraction_[t];
}

double RevocationModel::preserved_work(double fraction) const {
  RRP_EXPECTS(fraction >= 0.0 && fraction <= 1.0);
  const double preserved =
      std::floor(fraction / cfg_.checkpoint_interval) *
      cfg_.checkpoint_interval;
  return std::min(preserved, fraction);
}

}  // namespace rrp::market
