// Spot-price trace container: the irregular update stream published by
// the provider (the cloudexchange.org format the paper collected), plus
// conversions to the hourly decision-point series used everywhere else.
//
// Traces may additionally carry *revocation events* — out-of-band
// instance reclaims and correlated revocation storms observed in the
// market (ISSUE 7) — attached to the tick at which they struck, so both
// generated and CSV traces can drive the interruption-aware simulator.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "market/instance_types.hpp"
#include "timeseries/regularize.hpp"

namespace rrp::market {

/// One out-of-band revocation event recorded in a trace, attached to
/// the tick published at (or immediately after) the reclaim.
struct RevocationMarker {
  std::size_t tick_index = 0;  ///< index into SpotTrace::ticks()
  bool storm = false;          ///< correlated class-wide storm vs single
};

/// Per-hour revocation view of a trace window (see hourly_revocations).
enum class HourlyRevocation : std::uint8_t {
  None = 0,
  Single = 1,  ///< at least one single-instance reclaim in the hour
  Storm = 2,   ///< at least one storm in the hour (dominates Single)
};

class SpotTrace {
 public:
  SpotTrace(VmClass vm, std::vector<ts::Tick> ticks,
            std::vector<RevocationMarker> revocations = {});

  VmClass vm_class() const { return vm_; }
  const std::vector<ts::Tick>& ticks() const { return ticks_; }
  const std::vector<RevocationMarker>& revocations() const {
    return revocations_;
  }
  double duration_hours() const;

  /// All update prices, one per tick (the raw sample Figure 3/5 uses).
  std::vector<double> prices() const;

  /// Hourly last-observation-carried-forward series over hour indices
  /// [first_hour, last_hour) (paper Section IV-A2 regularisation).
  std::vector<double> hourly(long first_hour, long last_hour) const;

  /// Whole-trace hourly series starting at hour 0.
  std::vector<double> hourly() const;

  /// Per-hour *maximum* tick price over [first_hour, last_hour): the
  /// highest price published inside each hour, floored at the LOCF
  /// hourly value for hours without updates.  This is the intra-slot
  /// view the revocation model checks bids against — a bid can clear
  /// the hour-start price yet be crossed by an update mid-hour.
  std::vector<double> hourly_max(long first_hour, long last_hour) const;

  /// Per-hour revocation events over [first_hour, last_hour); a storm
  /// in an hour dominates any single reclaim in the same hour.
  std::vector<HourlyRevocation> hourly_revocations(long first_hour,
                                                   long last_hour) const;

  /// Updates per day (Figure 4).
  std::vector<std::size_t> daily_update_counts() const;

  /// Loads "time_hours,price[,event]" CSV rows (header optional,
  /// detected by a non-numeric first field; event is empty, "revoke" or
  /// "storm").  Malformed input — short rows, non-numeric fields, NaN /
  /// non-positive / non-finite prices, negative times, unsorted or
  /// duplicate timestamps, unknown event labels — throws
  /// rrp::InvalidArgument naming the offending row and field.
  static SpotTrace load_csv(const std::string& path, VmClass vm);

  /// Writes "time_hours,price" rows with a header; traces carrying
  /// revocation markers write "time_hours,price,event" instead.
  void save_csv(const std::string& path) const;

 private:
  VmClass vm_;
  std::vector<ts::Tick> ticks_;
  std::vector<RevocationMarker> revocations_;  ///< sorted by tick_index
};

}  // namespace rrp::market
