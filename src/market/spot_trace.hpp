// Spot-price trace container: the irregular update stream published by
// the provider (the cloudexchange.org format the paper collected), plus
// conversions to the hourly decision-point series used everywhere else.
#pragma once

#include <string>
#include <vector>

#include "market/instance_types.hpp"
#include "timeseries/regularize.hpp"

namespace rrp::market {

class SpotTrace {
 public:
  SpotTrace(VmClass vm, std::vector<ts::Tick> ticks);

  VmClass vm_class() const { return vm_; }
  const std::vector<ts::Tick>& ticks() const { return ticks_; }
  double duration_hours() const;

  /// All update prices, one per tick (the raw sample Figure 3/5 uses).
  std::vector<double> prices() const;

  /// Hourly last-observation-carried-forward series over hour indices
  /// [first_hour, last_hour) (paper Section IV-A2 regularisation).
  std::vector<double> hourly(long first_hour, long last_hour) const;

  /// Whole-trace hourly series starting at hour 0.
  std::vector<double> hourly() const;

  /// Updates per day (Figure 4).
  std::vector<std::size_t> daily_update_counts() const;

  /// Loads "time_hours,price" CSV rows (header optional, detected by a
  /// non-numeric first field).  Ticks are sorted by time.
  static SpotTrace load_csv(const std::string& path, VmClass vm);

  /// Writes "time_hours,price" rows with a header.
  void save_csv(const std::string& path) const;

 private:
  VmClass vm_;
  std::vector<ts::Tick> ticks_;
};

}  // namespace rrp::market
