#include "market/instance_types.hpp"

#include <array>
#include <string>

#include "common/error.hpp"

namespace rrp::market {

namespace {

// On-demand prices follow the paper's Section V-A ({0.2, 0.4, 0.8} for
// the three evaluation classes); c1.xlarge is extrapolated on the same
// scale (8x c1.medium, matching EC2's 2011 relative pricing).  Spot
// process parameters are calibrated so the generated traces reproduce
// the Figure 3 pattern: bigger classes fluctuate more and show more
// outliers, while outliers stay under ~3% of updates.
// The body volatility is kept small relative to the spike layer so the
// marginal distribution is right-skewed, as the real market's was: most
// updates sit in a tight band near the floor and the mean is dragged
// above the median by rare upward excursions.  (This is also what makes
// "bid the historical mean" win most auctions in Figure 12(a).)
constexpr std::array<VmClassInfo, 4> kClasses = {{
    {VmClass::C1Medium, "c1.medium", 0.2, 0.30, 0.015, 0.010},
    {VmClass::M1Large, "m1.large", 0.4, 0.31, 0.016, 0.015},
    {VmClass::M1Xlarge, "m1.xlarge", 0.8, 0.32, 0.018, 0.020},
    {VmClass::C1Xlarge, "c1.xlarge", 1.6, 0.32, 0.020, 0.024},
}};

constexpr std::array<VmClass, 3> kEvaluationClasses = {
    VmClass::C1Medium, VmClass::M1Large, VmClass::M1Xlarge};

}  // namespace

std::span<const VmClassInfo> all_classes() { return kClasses; }

std::span<const VmClass> evaluation_classes() { return kEvaluationClasses; }

const VmClassInfo& info(VmClass vm) {
  for (const VmClassInfo& c : kClasses) {
    if (c.id == vm) return c;
  }
  throw InvalidArgument("unknown VM class");
}

VmClass from_name(std::string_view name) {
  for (const VmClassInfo& c : kClasses) {
    if (c.name == name) return c.id;
  }
  throw InvalidArgument("unknown VM class name: " + std::string(name));
}

}  // namespace rrp::market
