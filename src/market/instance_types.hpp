// VM classes and on-demand pricing.
//
// The paper evaluates on Amazon EC2 linux instances in us-east-1.  Its
// planning experiments (Section V-A) use I = {c1.medium, m1.large,
// m1.xlarge} with hourly on-demand rental costs {$0.2, $0.4, $0.8}; the
// predictability study (Figure 3) additionally covers c1.xlarge.
#pragma once

#include <span>
#include <string_view>

namespace rrp::market {

enum class VmClass {
  C1Medium,
  M1Large,
  M1Xlarge,
  C1Xlarge,
};

struct VmClassInfo {
  VmClass id;
  std::string_view name;           ///< EC2-style name, e.g. "c1.medium"
  double on_demand_hourly;         ///< lambda_i: on-demand price per hour
  /// Long-run mean of the spot price as a fraction of on-demand (spot
  /// instances historically cleared well below on-demand; ~60%+ savings
  /// per the paper's reference [23]).
  double spot_mean_ratio;
  /// Relative volatility of the spot process; larger classes showed
  /// more price dynamics / outliers in Figure 3.
  double spot_volatility;
  /// Per-update probability of an outlier spike, also growing with
  /// class size in Figure 3 (but < 3% overall).
  double spike_probability;
};

/// All four classes of the predictability study, in Figure 3's order
/// semantics (by increasing capability: c1.medium < m1.large <
/// m1.xlarge < c1.xlarge in rental price).
std::span<const VmClassInfo> all_classes();

/// The three classes of the planning evaluation (Section V-A).
std::span<const VmClass> evaluation_classes();

const VmClassInfo& info(VmClass vm);

/// Lookup by EC2-style name ("c1.medium"); throws InvalidArgument for
/// unknown names.
VmClass from_name(std::string_view name);

}  // namespace rrp::market
