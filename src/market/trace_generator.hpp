// Synthetic spot-price trace generator.
//
// SUBSTITUTION (see DESIGN.md): the paper analyses a cloudexchange.org
// dump of Amazon EC2 spot prices (Feb 2010 - Jun 2011, us-east-1,
// linux), which is not redistributable here.  The planner and the
// predictability study only interact with that data through three
// statistics, which this generator reproduces:
//
//  1. the marginal price distribution — tightly clustered around a
//     level well below on-demand, non-normal, with rare high outliers
//     (< 3% of updates), more pronounced for larger classes (Fig. 3/5);
//  2. weak autocorrelation with a mild daily cycle and no trend
//     (Fig. 6/7), which caps achievable forecast accuracy (Fig. 8);
//  3. irregular update times whose daily frequency itself drifts
//     (Fig. 4).
//
// Mechanism: an Ornstein-Uhlenbeck process on log-price around a level
// with a small daily sinusoid, sampled at Poisson-arriving update times
// whose daily rate follows a slow AR(1), plus occasional multiplicative
// spikes that can exceed the on-demand price (out-of-bid risk).
#pragma once

#include "common/rng.hpp"
#include "market/spot_trace.hpp"

namespace rrp::market {

struct TraceGeneratorConfig {
  double days = 507;              ///< paper window: 2/1/2010 - 6/22/2011
  double base_price = 0.06;      ///< long-run mean spot price
  double reversion_per_hour = 0.08;  ///< OU pull toward the level
  double volatility = 0.012;     ///< OU innovation sd (log scale, per step)
  double daily_amplitude = 0.01; ///< relative amplitude of the 24h cycle
  double mean_updates_per_day = 12.0;
  double update_rate_persistence = 0.97;  ///< AR(1) on the daily rate
  double update_rate_noise = 1.5;
  double spike_probability = 0.02;  ///< per update
  double spike_min_factor = 1.4;
  double spike_max_factor = 4.0;
  double floor_factor = 0.55;    ///< price floor relative to base
  double quantum = 0.001;        ///< prices quantised like EC2 ($0.001)

  // --- Revocation events carried by the trace (ISSUE 7) --------------
  /// Expected out-of-band single-instance reclaims per day; each is
  /// attached to an update tick as a RevocationMarker.  0 disables the
  /// process (and consumes no randomness, so traces generated with the
  /// default config are bit-identical to pre-revocation builds).
  double revocations_per_day = 0.0;
  /// Expected correlated revocation storms per day.  A storm marks a
  /// tick as a class-wide reclaim and pushes its price up by
  /// storm_spike_factor (the pool emptied: the clearing price jumps).
  double storms_per_day = 0.0;
  double storm_spike_factor = 2.5;
};

/// Default configuration for a VM class: level = on-demand price times
/// the class's spot_mean_ratio, volatility/spikes from the class info.
TraceGeneratorConfig default_config(VmClass vm);

/// Generates a trace; consumes randomness from `rng` deterministically.
SpotTrace generate_trace(VmClass vm, const TraceGeneratorConfig& config,
                         Rng& rng);

/// Convenience: default configuration + a stream derived from `seed`.
SpotTrace generate_trace(VmClass vm, std::uint64_t seed);

}  // namespace rrp::market
