// The per-instance rental cost model of paper Section III (Figure 2 /
// objective (1)) with the Section V-A parameter values:
//
//   * compute rental  Cp(i,t)   — per class-i instance per slot;
//   * storage         Cs(t)     — per data unit per slot ($0.1/GB-month
//                                  via EBS);
//   * I/O             Cio(t)    — per data unit per slot, normalised to
//                                  $0.2/GB from the Montage 3-year cost
//                                  study (Berriman et al.);
//   * transfer in/out C+f, C-f  — $0.1 / $0.17 per GB;
//   * input-output ratio Phi_i = 0.5 for all classes.
//
// Time-varying hooks are provided (every accessor takes the slot) even
// though the paper's evaluation holds the non-compute parameters fixed.
#pragma once

#include <cstddef>

#include "market/instance_types.hpp"

namespace rrp::market {

class CostModel {
 public:
  struct Parameters {
    double storage_per_gb_slot;    ///< Cs
    double io_per_gb_slot;         ///< Cio
    double transfer_in_per_gb;     ///< C+f
    double transfer_out_per_gb;    ///< C-f
    double input_output_ratio;     ///< Phi (input GB fetched per output GB)
  };

  explicit CostModel(Parameters params);

  /// The paper's Section V-A values.  Slots are hours: EBS storage at
  /// $0.1 per GB-month is ~0.000137 per GB-hour.
  static CostModel paper_defaults();

  double storage(std::size_t /*slot*/) const { return p_.storage_per_gb_slot; }
  double io(std::size_t /*slot*/) const { return p_.io_per_gb_slot; }
  double transfer_in(std::size_t /*slot*/) const {
    return p_.transfer_in_per_gb;
  }
  double transfer_out(std::size_t /*slot*/) const {
    return p_.transfer_out_per_gb;
  }
  double input_output_ratio() const { return p_.input_output_ratio; }

  /// Cs + Cio: the per-slot unit cost of holding generated data, the
  /// inventory term multiplying beta in objective (1).
  double holding(std::size_t slot) const { return storage(slot) + io(slot); }

  /// Cost of generating `alpha` data units in `slot` excluding compute:
  /// the transfer-in of the required input data.
  double generation_cost(double alpha, std::size_t slot) const {
    return transfer_in(slot) * p_.input_output_ratio * alpha;
  }

  /// Cost of delivering `demand` data units to customers in `slot`.
  double delivery_cost(double demand, std::size_t slot) const {
    return transfer_out(slot) * demand;
  }

  const Parameters& parameters() const { return p_; }

  /// Returns a copy with the I/O price scaled by `factor` (sensitivity
  /// analysis of Figure 11).
  CostModel with_io_scaled(double factor) const;

 private:
  Parameters p_;
};

}  // namespace rrp::market
