#include "market/auction.hpp"

#include "common/error.hpp"

namespace rrp::market {

AuctionOutcome settle(double bid, double spot_price,
                      double on_demand_price) {
  RRP_EXPECTS(bid >= 0.0);
  RRP_EXPECTS(spot_price > 0.0);
  RRP_EXPECTS(on_demand_price > 0.0);
  AuctionOutcome out;
  out.won = bid >= spot_price;
  out.price_paid = out.won ? spot_price : on_demand_price;
  return out;
}

std::vector<AuctionOutcome> settle_horizon(std::span<const double> bids,
                                           std::span<const double> spot,
                                           double on_demand_price) {
  RRP_EXPECTS(bids.size() == spot.size());
  std::vector<AuctionOutcome> out;
  out.reserve(bids.size());
  for (std::size_t t = 0; t < bids.size(); ++t)
    out.push_back(settle(bids[t], spot[t], on_demand_price));
  return out;
}

AvailabilityReport analyze_availability(std::span<const double> hourly,
                                        double bid) {
  RRP_EXPECTS(!hourly.empty());
  RRP_EXPECTS(bid > 0.0);
  AvailabilityReport r;
  std::size_t up_slots = 0;
  std::size_t up_runs = 0, down_runs = 0;
  double paid = 0.0;
  bool prev_up = false;
  for (std::size_t t = 0; t < hourly.size(); ++t) {
    RRP_EXPECTS(hourly[t] > 0.0);
    const bool up = bid >= hourly[t];
    if (up) {
      ++up_slots;
      paid += hourly[t];
      if (!prev_up) ++up_runs;
    } else {
      if (prev_up && t > 0) ++r.interruptions;
      if (prev_up || t == 0) ++down_runs;
    }
    prev_up = up;
  }
  const double n = static_cast<double>(hourly.size());
  r.uptime_fraction = static_cast<double>(up_slots) / n;
  r.mean_uptime_run =
      up_runs == 0 ? 0.0
                   : static_cast<double>(up_slots) /
                         static_cast<double>(up_runs);
  const std::size_t down_slots = hourly.size() - up_slots;
  r.mean_downtime_run =
      down_runs == 0 ? 0.0
                     : static_cast<double>(down_slots) /
                           static_cast<double>(down_runs);
  r.mean_price_paid = up_slots == 0 ? 0.0
                                    : paid / static_cast<double>(up_slots);
  return r;
}

AuctionStats summarize(std::span<const AuctionOutcome> outcomes) {
  AuctionStats s;
  s.slots = outcomes.size();
  for (const AuctionOutcome& o : outcomes) {
    if (!o.won) ++s.out_of_bid_events;
    s.total_paid += o.price_paid;
  }
  return s;
}

}  // namespace rrp::market
