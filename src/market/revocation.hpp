// Spot-instance revocation risk (ISSUE 7; PAPERS.md: Voorsluys et al.,
// Shastri & Irwin).
//
// The paper's planners price *price* risk — an out-of-bid slot simply
// falls back to on-demand — but assume that a won spot instance survives
// the whole slot.  Real spot markets revoke instances mid-slot.  This
// module models three revocation sources:
//
//  1. bid-crossing — the spot price rises above the effective bid
//     *inside* the slot (detected against the intra-slot maximum tick);
//  2. hazard — seeded out-of-band revocations (capacity reclaim) that
//     strike a held instance even while its bid clears the price;
//  3. storms — seeded correlated events that revoke spot capacity for a
//     whole class in one slot (the "revocation storm" of spot folklore:
//     a demand surge empties the pool, everyone is evicted at once).
//
// Consequences are parameterised by the same config: work since the
// last checkpoint is lost, every rented spot slot pays a checkpoint
// overhead, and the replacement instance pays a restart or migration
// cost.  All randomness is drawn up-front from the config seed, so a
// model's decisions are a pure function of (config, horizon) — identical
// across runs, thread counts, and policies sharing the config.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace rrp::market {

/// Why a held spot instance was revoked.
enum class RevocationKind {
  BidCross,  ///< intra-slot price crossed above the effective bid
  Hazard,    ///< out-of-band single-instance reclaim
  Storm,     ///< correlated class-wide revocation event
};

const char* to_string(RevocationKind kind);

struct RevocationConfig {
  /// Gates the *model* (hazard/storm/bid-cross processes).  The
  /// consequence parameters below are consulted whenever a revocation
  /// fires, including injector-armed revocations with enabled == false.
  bool enabled = false;

  /// Per-held-slot probability of an out-of-band (hazard) revocation.
  double hazard_per_slot = 0.0;
  /// Per-slot probability that a revocation storm hits the class.
  double storm_rate = 0.0;
  /// Probability that a given held instance is taken out by a storm
  /// (1.0 = the storm empties the whole pool).
  double storm_severity = 1.0;

  /// Fraction of a slot between checkpoints, in (0, 1].  On a
  /// revocation at slot fraction f, the work preserved is
  /// floor(f / interval) * interval; 1.0 means no intra-slot
  /// checkpoints, so the whole partial slot is lost.
  double checkpoint_interval = 0.25;
  /// Per-rented-spot-slot overhead of writing checkpoints, as a
  /// fraction of that slot's price (the `--checkpoint-cost` CLI knob).
  double checkpoint_overhead = 0.02;
  /// Fixed cost of restarting on a replacement instance of the same
  /// class (re-acquired spot or the on-demand backstop).
  double restart_cost = 0.01;
  /// Fixed cost of migrating the checkpoint to another instance type.
  double migration_cost = 0.02;

  /// Interruption-aware degradation rungs (tried in order; the
  /// on-demand backstop is always available):
  bool allow_spot_reacquire = true;  ///< rung 1, hazard revocations only
  bool allow_migration = true;       ///< rung 2, cross-type diversification

  std::uint64_t seed = 0;

  /// Throws rrp::InvalidArgument naming the offending field when any
  /// rate/fraction is outside its documented domain or non-finite.
  void validate() const;

  // --- Named regimes for the hostile-market evaluation ---------------
  /// Revocation layer on, but no hazard or storms: only bid-crossing
  /// can interrupt, and only when intra-slot prices actually cross.
  static RevocationConfig calm();
  /// Elevated volatility consequences: frequent single-instance
  /// revocations (hazard + bid-crossing), no storms.
  static RevocationConfig bid_crossing();
  /// Correlated storms on top of the bid-crossing regime.
  static RevocationConfig storm();
  /// Looks up a regime by name ("calm" | "bid-cross" | "storm");
  /// throws rrp::InvalidArgument for unknown names.
  static RevocationConfig regime(const std::string& name);
};

/// Deterministic per-slot revocation decisions for one simulation.  All
/// draws happen at construction from config.seed, so two models built
/// from the same (config, horizon) agree slot for slot regardless of
/// what the policy does in between.
class RevocationModel {
 public:
  RevocationModel(const RevocationConfig& config, std::size_t horizon);

  const RevocationConfig& config() const { return cfg_; }
  std::size_t horizon() const { return fraction_.size(); }

  /// True when a storm sweeps the class at slot t (independent of
  /// whether anything is held; storms exist market-wide).
  bool storm_at(std::size_t t) const;

  /// The authoritative decision for a held spot instance at slot t.
  /// `bid` is the effective bid the instance is held at;
  /// `intra_slot_max` the maximum spot price observed inside the slot
  /// (pass the settled slot price when no intra-slot view exists).
  /// Priority when several sources fire at once: Storm > BidCross >
  /// Hazard.  Returns nullopt when the instance survives the slot.
  std::optional<RevocationKind> revocation(std::size_t t, double bid,
                                           double intra_slot_max) const;

  /// The slot fraction at which slot t's revocation strikes, in
  /// (0, 1).  Seeded per slot; meaningful whether or not the model
  /// itself revoked (injector-armed revocations reuse it).
  double interruption_fraction(std::size_t t) const;

  /// Work preserved by checkpointing when revoked at slot fraction f:
  /// floor(f / checkpoint_interval) * checkpoint_interval.
  double preserved_work(double fraction) const;

 private:
  RevocationConfig cfg_;
  std::vector<double> hazard_u_;    ///< per-slot uniform vs hazard_per_slot
  std::vector<double> storm_u_;     ///< per-slot uniform vs storm_rate
  std::vector<double> severity_u_;  ///< per-slot uniform vs storm_severity
  std::vector<double> fraction_;    ///< per-slot interruption point
};

}  // namespace rrp::market
