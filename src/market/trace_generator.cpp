#include "market/trace_generator.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace rrp::market {

TraceGeneratorConfig default_config(VmClass vm) {
  const VmClassInfo& c = info(vm);
  TraceGeneratorConfig cfg;
  cfg.base_price = c.on_demand_hourly * c.spot_mean_ratio;
  cfg.volatility = c.spot_volatility;
  cfg.spike_probability = c.spike_probability;
  // Spikes may exceed on-demand: cap the factor so a spike lands in
  // (1.5x base, ~1.3x on-demand].
  cfg.spike_max_factor = 1.3 / c.spot_mean_ratio;
  return cfg;
}

SpotTrace generate_trace(VmClass vm, const TraceGeneratorConfig& cfg,
                         Rng& rng) {
  RRP_EXPECTS(cfg.days > 0.0);
  RRP_EXPECTS(cfg.base_price > 0.0);
  RRP_EXPECTS(cfg.mean_updates_per_day > 0.0);
  RRP_EXPECTS(cfg.spike_min_factor >= 1.0);
  RRP_EXPECTS(cfg.spike_max_factor >= cfg.spike_min_factor);
  RRP_EXPECTS(cfg.quantum > 0.0);
  RRP_EXPECTS(cfg.revocations_per_day >= 0.0);
  RRP_EXPECTS(cfg.storms_per_day >= 0.0);
  RRP_EXPECTS(cfg.storm_spike_factor >= 1.0);

  const auto n_days = static_cast<std::size_t>(std::ceil(cfg.days));
  std::vector<ts::Tick> ticks;
  std::vector<RevocationMarker> revocations;
  ticks.reserve(n_days *
                static_cast<std::size_t>(cfg.mean_updates_per_day + 1));

  double log_dev = 0.0;  // OU deviation from the (cyclic) level, log scale
  double rate = cfg.mean_updates_per_day;
  double last_time = -1.0;

  // Seed tick at t = 0 so hourly regularisation always has a value.
  auto level_at = [&cfg](double hours) {
    const double cycle =
        cfg.daily_amplitude *
        std::sin(2.0 * M_PI * std::fmod(hours, 24.0) / 24.0);
    return cfg.base_price * (1.0 + cycle);
  };
  auto emit = [&](double hours) {
    double price = level_at(hours) * std::exp(log_dev);
    if (rng.uniform() < cfg.spike_probability) {
      price *= rng.uniform(cfg.spike_min_factor, cfg.spike_max_factor);
    }
    // Revocation processes (rate 0 consumes no randomness, keeping
    // default-config traces bit-identical to pre-revocation builds).
    bool storm = false;
    bool revoke = false;
    if (cfg.storms_per_day > 0.0 &&
        rng.uniform() <
            std::min(cfg.storms_per_day / cfg.mean_updates_per_day, 1.0)) {
      storm = true;
      price *= cfg.storm_spike_factor;  // the pool emptied: price jumps
    }
    if (!storm && cfg.revocations_per_day > 0.0 &&
        rng.uniform() <
            std::min(cfg.revocations_per_day / cfg.mean_updates_per_day,
                     1.0)) {
      revoke = true;
    }
    price = std::max(price, cfg.floor_factor * cfg.base_price);
    price = std::round(price / cfg.quantum) * cfg.quantum;
    // Strictly increasing timestamps keep downstream invariants simple.
    if (hours <= last_time) hours = last_time + 1e-4;
    last_time = hours;
    if (storm || revoke)
      revocations.push_back(RevocationMarker{ticks.size(), storm});
    ticks.push_back(ts::Tick{hours, price});
  };

  emit(0.0);
  for (std::size_t day = 0; day < n_days; ++day) {
    // Slowly drifting daily update intensity (Figure 4's variation).
    rate = cfg.update_rate_persistence * rate +
           (1.0 - cfg.update_rate_persistence) * cfg.mean_updates_per_day +
           rng.normal(0.0, cfg.update_rate_noise);
    rate = std::clamp(rate, 1.0, 4.0 * cfg.mean_updates_per_day);
    const auto updates = static_cast<std::size_t>(
        std::max<std::int64_t>(rng.poisson(rate), 1));

    // Update instants uniform within the day, in order.
    std::vector<double> times(updates);
    for (auto& t : times)
      t = (static_cast<double>(day) + rng.uniform()) * 24.0;
    std::sort(times.begin(), times.end());

    double prev_time = static_cast<double>(day) * 24.0;
    for (double t : times) {
      // OU step sized by the elapsed time between updates.
      const double dt = std::max(t - prev_time, 1e-3);
      const double decay = std::exp(-cfg.reversion_per_hour * dt);
      log_dev = decay * log_dev +
                cfg.volatility * std::sqrt(1.0 - decay * decay) /
                    std::sqrt(2.0 * cfg.reversion_per_hour) *
                    rng.normal();
      prev_time = t;
      emit(t);
    }
  }
  return SpotTrace(vm, std::move(ticks), std::move(revocations));
}

SpotTrace generate_trace(VmClass vm, std::uint64_t seed) {
  Rng rng(seed ^ (static_cast<std::uint64_t>(vm) << 32));
  return generate_trace(vm, default_config(vm), rng);
}

}  // namespace rrp::market
