#include "milp/model.hpp"

#include <cmath>

namespace rrp::milp {

Var Model::add_continuous(double lo, double hi, std::string name) {
  RRP_EXPECTS(lo <= hi);
  vars_.push_back(VarInfo{VarType::Continuous, lo, hi, std::move(name)});
  return Var{vars_.size() - 1};
}

Var Model::add_integer(double lo, double hi, std::string name) {
  RRP_EXPECTS(lo <= hi);
  vars_.push_back(VarInfo{VarType::Integer, lo, hi, std::move(name)});
  return Var{vars_.size() - 1};
}

Var Model::add_binary(std::string name) {
  vars_.push_back(VarInfo{VarType::Binary, 0.0, 1.0, std::move(name)});
  return Var{vars_.size() - 1};
}

std::size_t Model::add_constraint(Constraint c, std::string name) {
  c.expr.normalize();
  for (const Term& t : c.expr.terms()) RRP_EXPECTS(t.var < vars_.size());
  const double shift = c.expr.constant();
  StoredConstraint stored;
  stored.expr = std::move(c.expr);
  stored.lo = c.lo == -lp::kInfinity ? -lp::kInfinity : c.lo - shift;
  stored.hi = c.hi == lp::kInfinity ? lp::kInfinity : c.hi - shift;
  stored.name = std::move(name);
  constraints_.push_back(std::move(stored));
  return constraints_.size() - 1;
}

void Model::set_objective(LinExpr expr, Objective sense) {
  expr.normalize();
  for (const Term& t : expr.terms()) RRP_EXPECTS(t.var < vars_.size());
  objective_ = std::move(expr);
  sense_ = sense;
}

std::size_t Model::num_integer_variables() const {
  std::size_t n = 0;
  for (const VarInfo& v : vars_)
    if (v.type != VarType::Continuous) ++n;
  return n;
}

bool Model::is_integral(std::size_t id) const {
  RRP_EXPECTS(id < vars_.size());
  return vars_[id].type != VarType::Continuous;
}

lp::LinearProgram Model::to_lp() const {
  lp::LinearProgram prog;
  prog.set_sense(sense_ == Objective::Minimize ? lp::Sense::Minimize
                                               : lp::Sense::Maximize);
  for (const VarInfo& v : vars_) prog.add_variable(v.lo, v.hi, 0.0, v.name);
  for (const Term& t : objective_.terms()) prog.set_objective(t.var, t.coeff);
  for (const StoredConstraint& c : constraints_) {
    std::vector<lp::Entry> entries;
    entries.reserve(c.expr.terms().size());
    for (const Term& t : c.expr.terms())
      entries.push_back(lp::Entry{t.var, t.coeff});
    prog.add_row(std::move(entries), c.lo, c.hi, c.name);
  }
  return prog;
}

double Model::objective_value(const std::vector<double>& x) const {
  RRP_EXPECTS(x.size() == vars_.size());
  double obj = objective_.constant();
  for (const Term& t : objective_.terms()) obj += t.coeff * x[t.var];
  return obj;
}

}  // namespace rrp::milp
