// Branch & bound over the simplex LP relaxation.
//
// The paper solves DRRP and the deterministic-equivalent SRRP with a
// commercial B&B (CPLEX via AIMMS); this module is the from-scratch
// replacement.  It supports best-bound and depth-first node selection,
// most-fractional / first-fractional / pseudocost branching, a rounding
// heuristic for early incumbents, and relative/absolute gap termination.
#pragma once

#include <cstddef>
#include <vector>

#include "lp/simplex.hpp"
#include "milp/model.hpp"

namespace rrp::milp {

enum class NodeSelection {
  BestBound,   ///< explore the node with the most promising relaxation
  DepthFirst,  ///< dive; finds incumbents fast, default for rolling use
};

enum class Branching {
  MostFractional,
  FirstFractional,
  PseudoCost,  ///< most-fractional until pseudocosts are initialised
};

enum class MipStatus {
  Optimal,
  Infeasible,
  Unbounded,
  NodeLimit,      ///< best incumbent returned, optimality not proven
  NoIncumbent,    ///< node/time limit hit before any feasible point found
  TimeLimit,      ///< deadline expired; best incumbent + proven bound
};

const char* to_string(MipStatus status);

struct BnbOptions {
  NodeSelection node_selection = NodeSelection::BestBound;
  Branching branching = Branching::MostFractional;
  double integrality_tol = 1e-6;
  double relative_gap = 1e-6;
  double absolute_gap = 1e-9;
  std::size_t max_nodes = 200000;
  bool rounding_heuristic = true;
  /// Wall-clock budget for the whole solve (anytime contract): polled
  /// once per node and inherited by node LPs; on expiry the best
  /// incumbent and a valid proven bound are returned with status
  /// TimeLimit (NoIncumbent when nothing feasible was found in time).
  common::Deadline deadline;
  lp::SimplexOptions lp;
};

struct MipResult {
  MipStatus status = MipStatus::NoIncumbent;
  double objective = 0.0;     ///< incumbent objective (model sense)
  double best_bound = 0.0;    ///< proven bound on the optimum
  std::vector<double> x;      ///< incumbent point (empty if none)
  std::size_t nodes_explored = 0;
  std::size_t lp_iterations = 0;
  /// Node LPs that threw rrp::NumericalError and succeeded on a retry
  /// (Bland pricing, forced refactorisation, or cost perturbation).
  std::size_t lp_failures_recovered = 0;

  /// Relative optimality gap; 0 when proven optimal, +infinity when
  /// there is no incumbent or the proven bound is not finite.
  double gap() const;
};

/// Solves the MILP.  Infeasible/unbounded inputs are reported via
/// MipResult::status.
MipResult solve(const Model& model, const BnbOptions& options = {});

}  // namespace rrp::milp
