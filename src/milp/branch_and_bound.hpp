// Branch & bound over the simplex LP relaxation.
//
// The paper solves DRRP and the deterministic-equivalent SRRP with a
// commercial B&B (CPLEX via AIMMS); this module is the from-scratch
// replacement.  It supports best-bound and depth-first node selection,
// most-fractional / first-fractional / pseudocost branching, a rounding
// heuristic for early incumbents, and relative/absolute gap termination.
//
// Two performance levers sit on top of the plain tree search:
//
//   * Warm starts — each node carries its parent's optimal basis and the
//     node LP re-optimises from it with the dual simplex (a bound change
//     keeps the parent basis dual feasible), via a persistent
//     lp::SimplexSolver that reuses its factorisation and work buffers
//     across nodes.  MipResult::warm_started_nodes /
//     cold_solved_nodes report the split.
//   * Parallel tree search — `jobs` workers pull nodes from a shared
//     frontier (mutex-protected heap/stack on common::ThreadPool), each
//     owning a thread-local SimplexSolver.  Pruning, deadline and
//     anytime semantics are preserved exactly: a node whose LP times
//     out returns to the frontier so the proven bound stays sound, and
//     with zero gap tolerances the optimal objective is identical
//     across any jobs count.
#pragma once

#include <cstddef>
#include <vector>

#include "lp/simplex.hpp"
#include "milp/model.hpp"

namespace rrp::milp {

class CutGenerator;  // milp/cuts.hpp

enum class NodeSelection {
  BestBound,   ///< explore the node with the most promising relaxation
  DepthFirst,  ///< dive; finds incumbents fast, default for rolling use
};

enum class Branching {
  MostFractional,
  FirstFractional,
  PseudoCost,  ///< most-fractional until pseudocosts are initialised
};

enum class MipStatus {
  Optimal,
  Infeasible,
  Unbounded,
  NodeLimit,      ///< best incumbent returned, optimality not proven
  NoIncumbent,    ///< node/time limit hit before any feasible point found
  TimeLimit,      ///< deadline expired; best incumbent + proven bound
};

const char* to_string(MipStatus status);

struct BnbOptions {
  NodeSelection node_selection = NodeSelection::BestBound;
  Branching branching = Branching::MostFractional;
  double integrality_tol = 1e-6;
  double relative_gap = 1e-6;
  double absolute_gap = 1e-9;
  std::size_t max_nodes = 200000;
  bool rounding_heuristic = true;
  /// Warm start node LPs from the parent node's optimal basis (dual
  /// simplex re-optimisation).  Off = every node pays a cold two-phase
  /// solve; kept as a switch so benchmarks and tests can compare.
  bool warm_start = true;
  /// Worker threads for the tree search.  1 (default) runs inline on
  /// the calling thread; 0 means hardware concurrency; N > 1 fans the
  /// frontier out over the shared rrp::ThreadPool.
  std::size_t jobs = 1;
  /// Wall-clock budget for the whole solve (anytime contract): polled
  /// once per node and inherited by node LPs; on expiry the best
  /// incumbent and a valid proven bound are returned with status
  /// TimeLimit (NoIncumbent when nothing feasible was found in time).
  common::Deadline deadline;
  /// Optional root-node cut separator (borrowed, not owned; must outlive
  /// the solve).  Null = no cutting planes.
  const CutGenerator* cut_generator = nullptr;
  /// Master switch for root-node cut separation; with a generator set,
  /// separation runs in rounds on the root relaxation before the tree
  /// search starts, re-optimising with the dual simplex per round.
  bool root_cuts = true;
  /// Separation rounds at the root (each round re-solves the LP).
  std::size_t max_cut_rounds = 8;
  /// Minimum violation for a separated cut to be added.
  double cut_violation_tol = 1e-6;
  lp::SimplexOptions lp;
};

struct MipResult {
  MipStatus status = MipStatus::NoIncumbent;
  double objective = 0.0;     ///< incumbent objective (model sense)
  double best_bound = 0.0;    ///< proven bound on the optimum
  std::vector<double> x;      ///< incumbent point (empty if none)
  std::size_t nodes_explored = 0;
  std::size_t lp_iterations = 0;
  /// Node LPs that threw rrp::NumericalError and succeeded on a retry
  /// (Bland pricing, forced refactorisation, or cost perturbation).
  std::size_t lp_failures_recovered = 0;
  /// Node relaxations re-optimised from the parent basis vs. solved by
  /// the cold two-phase simplex (root nodes, failed warm starts, and
  /// all nodes when BnbOptions::warm_start is off).
  std::size_t warm_started_nodes = 0;
  std::size_t cold_solved_nodes = 0;
  /// Root-node cutting planes appended to the relaxation.
  std::size_t cuts_added = 0;
  /// Fraction of the root-LP-to-incumbent gap closed by the root cuts,
  /// in [0, 1]; 0 when no cuts were separated or no incumbent exists.
  double root_gap_closed = 0.0;
  /// Sparse-factorisation telemetry aggregated over the root cut loop
  /// and every worker's node solver.
  lp::FactorizationStats factor_stats;

  /// Relative optimality gap; 0 when proven optimal, +infinity when
  /// there is no incumbent or the proven bound is not finite.
  double gap() const;
};

/// Solves the MILP.  Infeasible/unbounded inputs are reported via
/// MipResult::status.
MipResult solve(const Model& model, const BnbOptions& options = {});

}  // namespace rrp::milp
