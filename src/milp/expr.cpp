#include "milp/expr.hpp"

#include <algorithm>
#include <limits>

namespace rrp::milp {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

LinExpr::LinExpr(double constant) : constant_(constant) {}

LinExpr::LinExpr(Var v) { terms_.push_back(Term{v.id, 1.0}); }

LinExpr& LinExpr::operator+=(const LinExpr& rhs) {
  terms_.insert(terms_.end(), rhs.terms_.begin(), rhs.terms_.end());
  constant_ += rhs.constant_;
  return *this;
}

LinExpr& LinExpr::operator-=(const LinExpr& rhs) {
  for (const Term& t : rhs.terms_) terms_.push_back(Term{t.var, -t.coeff});
  constant_ -= rhs.constant_;
  return *this;
}

LinExpr& LinExpr::operator*=(double k) {
  for (Term& t : terms_) t.coeff *= k;
  constant_ *= k;
  return *this;
}

void LinExpr::normalize() {
  std::sort(terms_.begin(), terms_.end(),
            [](const Term& a, const Term& b) { return a.var < b.var; });
  std::vector<Term> merged;
  merged.reserve(terms_.size());
  for (const Term& t : terms_) {
    if (!merged.empty() && merged.back().var == t.var) {
      merged.back().coeff += t.coeff;
    } else {
      merged.push_back(t);
    }
  }
  merged.erase(std::remove_if(merged.begin(), merged.end(),
                              [](const Term& t) { return t.coeff == 0.0; }),
               merged.end());
  terms_ = std::move(merged);
}

LinExpr operator+(LinExpr lhs, const LinExpr& rhs) {
  lhs += rhs;
  return lhs;
}

LinExpr operator-(LinExpr lhs, const LinExpr& rhs) {
  lhs -= rhs;
  return lhs;
}

LinExpr operator*(double k, LinExpr expr) {
  expr *= k;
  return expr;
}

LinExpr operator*(LinExpr expr, double k) {
  expr *= k;
  return expr;
}

LinExpr operator-(LinExpr expr) {
  expr *= -1.0;
  return expr;
}

Constraint operator<=(LinExpr lhs, double rhs) {
  return Constraint{std::move(lhs), -kInf, rhs};
}

Constraint operator>=(LinExpr lhs, double rhs) {
  return Constraint{std::move(lhs), rhs, kInf};
}

Constraint operator==(LinExpr lhs, double rhs) {
  return Constraint{std::move(lhs), rhs, rhs};
}

Constraint operator<=(LinExpr lhs, LinExpr rhs) {
  lhs -= rhs;
  return std::move(lhs) <= 0.0;
}

Constraint operator>=(LinExpr lhs, LinExpr rhs) {
  lhs -= rhs;
  return std::move(lhs) >= 0.0;
}

Constraint operator==(LinExpr lhs, LinExpr rhs) {
  lhs -= rhs;
  return std::move(lhs) == 0.0;
}

}  // namespace rrp::milp
