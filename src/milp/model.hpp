// Mixed integer linear programming model.
//
// This is the modelling surface used by the DRRP and SRRP builders in
// rrp::core.  A model owns variables (continuous / integer / binary),
// ranged linear constraints, and a linear objective; `to_lp()` lowers it
// to the rrp::lp relaxation consumed by branch & bound.
#pragma once

#include <string>
#include <vector>

#include "lp/model.hpp"
#include "milp/expr.hpp"

namespace rrp::milp {

enum class VarType { Continuous, Integer, Binary };

enum class Objective { Minimize, Maximize };

struct VarInfo {
  VarType type = VarType::Continuous;
  double lo = 0.0;
  double hi = lp::kInfinity;
  std::string name;
};

class Model {
 public:
  /// Adds a continuous variable in [lo, hi].
  Var add_continuous(double lo, double hi, std::string name = {});

  /// Adds a general integer variable in [lo, hi].
  Var add_integer(double lo, double hi, std::string name = {});

  /// Adds a {0, 1} variable.
  Var add_binary(std::string name = {});

  /// Adds `lo <= expr <= hi` (the expression's constant is folded into
  /// the bounds).  Returns the row index.
  std::size_t add_constraint(Constraint c, std::string name = {});

  void set_objective(LinExpr expr, Objective sense);

  std::size_t num_variables() const { return vars_.size(); }
  std::size_t num_constraints() const { return constraints_.size(); }
  std::size_t num_integer_variables() const;
  const VarInfo& variable(std::size_t id) const { return vars_[id]; }
  Objective objective_sense() const { return sense_; }
  const LinExpr& objective() const { return objective_; }
  double objective_constant() const { return objective_.constant(); }

  /// True if variable `id` must take an integral value.
  bool is_integral(std::size_t id) const;

  /// Lowers to the LP relaxation (integrality dropped; binary bounds
  /// become [0, 1]).  The variable indexing is preserved 1:1.
  lp::LinearProgram to_lp() const;

  /// Evaluates the objective (including constant) at a point.
  double objective_value(const std::vector<double>& x) const;

 private:
  struct StoredConstraint {
    LinExpr expr;
    double lo, hi;
    std::string name;
  };

  std::vector<VarInfo> vars_;
  std::vector<StoredConstraint> constraints_;
  LinExpr objective_;
  Objective sense_ = Objective::Minimize;
};

}  // namespace rrp::milp
