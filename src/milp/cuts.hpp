// Valid-inequality generation for the branch & bound root node.
//
// DRRP's acquire/hold structure is single-item uncapacitated lot-sizing:
// reserved capacity acquired in slot t (alpha_t, with a fixed-charge
// indicator chi_t) serves demand in t and later slots.  The classic
// (l,S) inequalities of Barany, Van Roy and Wolsey,
//
//   sum_{t in S} alpha_t + sum_{t in L\S} delta_{tl} chi_t >= Delta_l,
//   L = {1..l},  delta_{tl} = min(D_t + ... + D_l, Delta_l),
//
// are valid for every S subseteq L and describe the convex hull of the
// uncapacitated problem.  Exact separation is O(T^2) per chain: at a
// fractional point, period t joins S exactly when
// alpha*_t < delta_{tl} chi*_t.
//
// The SRRP deterministic equivalent is a lot-sizing problem per
// root-to-leaf path of the scenario tree (each path is one demand
// chain; cuts per path are valid because they only constrain that
// scenario's variables), so the generator works over explicit "chains"
// that the model builders in rrp::core register.
//
// milp::branch_and_bound drives separation in rounds at the root node
// only; CutPool keeps the added rows duplicate-free across rounds and
// across chains that share a tree prefix.
#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "lp/model.hpp"

namespace rrp::milp {

/// A globally valid inequality `lo <= sum coeff_j x_j <= hi` over the
/// model's variables (1:1 with LP-relaxation columns).
struct Cut {
  std::vector<lp::Entry> entries;
  double lo = -lp::kInfinity;
  double hi = lp::kInfinity;

  /// Amount by which point `x` violates the cut (<= 0 means satisfied).
  double violation(const std::vector<double>& x) const;
};

/// Interface for root-node cut separators.  Implementations must be
/// const-callable (branch & bound may hold the generator by pointer
/// across a multi-round loop) and must only return inequalities valid
/// for every integer-feasible point of the model.
class CutGenerator {
 public:
  virtual ~CutGenerator() = default;

  /// Returns cuts violated by more than `min_violation` at `x` (the
  /// current LP-relaxation optimum, one value per model variable).
  virtual std::vector<Cut> separate(const std::vector<double>& x,
                                    double min_violation) const = 0;
};

/// One period of a lot-sizing chain: the acquire quantity variable, its
/// fixed-charge indicator (alpha_t > 0 forces chi_t = 1 in the model),
/// and the demand served in the period.
struct LotSlot {
  std::size_t alpha = 0;  ///< continuous acquisition variable index
  std::size_t chi = 0;    ///< binary setup indicator variable index
  double demand = 0.0;    ///< demand of this period
};

/// Exact (l,S) separation over registered demand chains.
class LotSizingCutGenerator : public CutGenerator {
 public:
  /// Registers one lot-sizing chain (periods in time order).  Inventory
  /// carried into the first period reduces the cumulative demands.
  void add_chain(std::vector<LotSlot> slots, double initial_inventory = 0.0);

  std::size_t num_chains() const { return chains_.size(); }

  std::vector<Cut> separate(const std::vector<double>& x,
                            double min_violation) const override;

 private:
  struct Chain {
    std::vector<LotSlot> slots;
    double initial_inventory = 0.0;
  };
  std::vector<Chain> chains_;
};

/// Duplicate filter over cut support: two cuts with the same rounded
/// coefficient pattern and bounds are the same row.  Chains sharing a
/// scenario-tree prefix separate identical cuts; the pool admits one.
class CutPool {
 public:
  /// True when the cut is new (and now recorded), false for duplicates.
  bool add(const Cut& cut);

  std::size_t size() const { return keys_.size(); }

 private:
  std::set<std::string> keys_;
};

}  // namespace rrp::milp
