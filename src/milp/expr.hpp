// Linear expression building blocks for the MILP modelling API.
//
// Usage mirrors algebraic notation:
//   LinExpr cost = 0.2 * x + 0.1 * y;
//   model.add_constraint(x + y == demand, "balance");
#pragma once

#include <cstddef>
#include <vector>

namespace rrp::milp {

/// Opaque handle to a model variable.
struct Var {
  std::size_t id = static_cast<std::size_t>(-1);
  bool valid() const { return id != static_cast<std::size_t>(-1); }
};

/// One `coeff * var` term.
struct Term {
  std::size_t var = 0;
  double coeff = 0.0;
};

/// A linear expression: sum of terms plus a constant offset.
class LinExpr {
 public:
  LinExpr() = default;
  LinExpr(double constant);  // NOLINT(google-explicit-constructor)
  LinExpr(Var v);            // NOLINT(google-explicit-constructor)

  LinExpr& operator+=(const LinExpr& rhs);
  LinExpr& operator-=(const LinExpr& rhs);
  LinExpr& operator*=(double k);

  /// Merges duplicate variables and drops zero coefficients.
  void normalize();

  const std::vector<Term>& terms() const { return terms_; }
  double constant() const { return constant_; }

 private:
  std::vector<Term> terms_;
  double constant_ = 0.0;
};

LinExpr operator+(LinExpr lhs, const LinExpr& rhs);
LinExpr operator-(LinExpr lhs, const LinExpr& rhs);
LinExpr operator*(double k, LinExpr expr);
LinExpr operator*(LinExpr expr, double k);
LinExpr operator-(LinExpr expr);

/// A one- or two-sided linear constraint lo <= expr <= hi (the constant
/// part of `expr` is folded into the bounds by the model).
struct Constraint {
  LinExpr expr;
  double lo;
  double hi;
};

Constraint operator<=(LinExpr lhs, double rhs);
Constraint operator>=(LinExpr lhs, double rhs);
Constraint operator==(LinExpr lhs, double rhs);
Constraint operator<=(LinExpr lhs, LinExpr rhs);
Constraint operator>=(LinExpr lhs, LinExpr rhs);
Constraint operator==(LinExpr lhs, LinExpr rhs);

}  // namespace rrp::milp
