#include "milp/cuts.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/invariant.hpp"
#include "obs/obs.hpp"

namespace rrp::milp {

double Cut::violation(const std::vector<double>& x) const {
  double activity = 0.0;
  for (const lp::Entry& e : entries) activity += e.coeff * x[e.col];
  double v = 0.0;
  if (lo > -lp::kInfinity) v = std::max(v, lo - activity);
  if (hi < lp::kInfinity) v = std::max(v, activity - hi);
  return v;
}

void LotSizingCutGenerator::add_chain(std::vector<LotSlot> slots,
                                      double initial_inventory) {
  RRP_EXPECTS(initial_inventory >= 0.0);
  chains_.push_back(Chain{std::move(slots), initial_inventory});
}

std::vector<Cut> LotSizingCutGenerator::separate(
    const std::vector<double>& x, double min_violation) const {
  RRP_TRACE_SPAN("cuts.separate");
  RRP_COUNTER_ADD("rrp.cuts.separation_calls", 1);
  std::vector<Cut> cuts;
  std::vector<double> cum;  // cumulative net demand through period l
  for (const Chain& chain : chains_) {
    const std::size_t horizon = chain.slots.size();
    cum.assign(horizon, 0.0);
    double running = -chain.initial_inventory;
    for (std::size_t t = 0; t < horizon; ++t) {
      running += chain.slots[t].demand;
      cum[t] = running;
    }
    for (std::size_t l = 0; l < horizon; ++l) {
      const double delta_l = std::max(cum[l], 0.0);
      if (delta_l <= 0.0) continue;  // no net demand to cover yet
      // Greedy exact separation: period t enters S when its alpha* is
      // below the capped-demand term it would otherwise contribute.
      Cut cut;
      cut.lo = delta_l;
      double lhs = 0.0;
      std::size_t setup_terms = 0;
      for (std::size_t t = 0; t <= l; ++t) {
        // Net demand of periods t..l after inventory absorption: the
        // standard transformation nets initial stock off the earliest
        // demands, so the netted cumulative through u is max(cum[u], 0)
        // and delta_tl = Delta_l - max(cum[t-1], 0) (capped at Delta_l
        // automatically, with cum[-1] = -initial_inventory).
        const double prev = t == 0 ? -chain.initial_inventory : cum[t - 1];
        const double delta_tl = std::max(delta_l - std::max(prev, 0.0), 0.0);
        const LotSlot& slot = chain.slots[t];
        const double alpha_val = x[slot.alpha];
        const double setup_val = delta_tl * x[slot.chi];
        if (alpha_val < setup_val) {
          cut.entries.push_back(lp::Entry{slot.alpha, 1.0});
          lhs += alpha_val;
        } else {
          if (delta_tl > 0.0)
            cut.entries.push_back(lp::Entry{slot.chi, delta_tl});
          lhs += setup_val;
          ++setup_terms;
        }
      }
      // S == L reproduces the aggregate flow-balance bound
      // sum alpha >= Delta_l, already implied by the model rows.
      if (setup_terms == 0) continue;
      if (delta_l - lhs > min_violation) cuts.push_back(std::move(cut));
    }
  }
  RRP_TRACE_ARG("violated", cuts.size());
  return cuts;
}

bool CutPool::add(const Cut& cut) {
  // Canonical key: sorted (column, rounded coefficient) pairs + bounds.
  std::vector<lp::Entry> sorted = cut.entries;
  std::sort(sorted.begin(), sorted.end(),
            [](const lp::Entry& a, const lp::Entry& b) {
              return a.col < b.col;
            });
  std::string key;
  key.reserve(sorted.size() * 24 + 48);
  char buf[64];
  for (const lp::Entry& e : sorted) {
    std::snprintf(buf, sizeof buf, "%zu:%.9g;", e.col, e.coeff);
    key += buf;
  }
  std::snprintf(buf, sizeof buf, "|%.9g|%.9g", cut.lo, cut.hi);
  key += buf;
  return keys_.insert(std::move(key)).second;
}

}  // namespace rrp::milp
