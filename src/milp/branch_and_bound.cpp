#include "milp/branch_and_bound.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <deque>
#include <exception>
#include <limits>
#include <memory>
#include <queue>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/invariant.hpp"
#include "common/sync.hpp"
#include "common/thread_pool.hpp"
#include "milp/cuts.hpp"
#include "obs/obs.hpp"

namespace rrp::milp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Process-wide solve telemetry, fed unconditionally (not through the
/// compile-out macros): the MipResult compatibility fields are computed
/// as before/after deltas over these counters in Solver::run(), so they
/// must advance in RRP_OBSERVABILITY=OFF builds too.  A sharded relaxed
/// add per event keeps the workers race free without per-worker structs
/// reduced at join.  The rrp.lp.* entries are written by the simplex
/// layer (src/lp/simplex.cpp); they are looked up here only to snapshot
/// factorisation deltas.
struct SolveCounters {
  obs::Counter& nodes = obs::global_registry().counter("rrp.bnb.nodes");
  obs::Counter& lp_iterations =
      obs::global_registry().counter("rrp.bnb.lp_iterations");
  obs::Counter& recoveries =
      obs::global_registry().counter("rrp.bnb.lp_recoveries");
  obs::Counter& warm_nodes =
      obs::global_registry().counter("rrp.bnb.warm_nodes");
  obs::Counter& cold_nodes =
      obs::global_registry().counter("rrp.bnb.cold_nodes");
  obs::Counter& cuts = obs::global_registry().counter("rrp.bnb.cuts_added");
  obs::Counter& refactorizations =
      obs::global_registry().counter("rrp.lp.refactorizations");
  obs::Counter& eta_updates =
      obs::global_registry().counter("rrp.lp.eta_updates");
  obs::Gauge& fill_ratio_sum =
      obs::global_registry().gauge("rrp.lp.fill_ratio_sum");
};

SolveCounters& solve_counters() {
  static SolveCounters counters;
  return counters;
}

struct Node {
  // Bound overrides for the integer variables only, indexed by the
  // position of the variable in the integer-variable list.
  std::vector<double> lo;
  std::vector<double> hi;
  double bound = -kInf;  ///< parent relaxation value (internal min sense)
  std::size_t depth = 0;
  /// Parent node's optimal basis; shared between the two children and
  /// consumed by SimplexSolver::solve_from.  Null = cold solve.
  std::shared_ptr<const lp::Basis> start;
};

struct NodeBoundGreater {
  bool operator()(const Node& a, const Node& b) const {
    return a.bound > b.bound;
  }
};

/// Simple pseudocost store: average objective degradation per unit of
/// fractionality, per integer variable and branching direction.
struct Pseudocosts {
  std::vector<double> down_sum, up_sum;
  std::vector<std::size_t> down_n, up_n;

  explicit Pseudocosts(std::size_t n)
      : down_sum(n, 0.0), up_sum(n, 0.0), down_n(n, 0), up_n(n, 0) {}

  void record(std::size_t idx, bool up, double frac, double degradation) {
    if (frac <= 1e-9) return;
    const double unit = degradation / (up ? (1.0 - frac) : frac);
    if (up) {
      up_sum[idx] += std::max(unit, 0.0);
      ++up_n[idx];
    } else {
      down_sum[idx] += std::max(unit, 0.0);
      ++down_n[idx];
    }
  }

  double score(std::size_t idx, double frac) const {
    if (down_n[idx] == 0 || up_n[idx] == 0) return -1.0;  // uninitialised
    const double down = down_sum[idx] / static_cast<double>(down_n[idx]);
    const double up = up_sum[idx] / static_cast<double>(up_n[idx]);
    // Product rule (standard in MIP solvers): rewards balanced impact.
    return std::max(down * frac, 1e-12) * std::max(up * (1.0 - frac), 1e-12);
  }
};

/// Everything a tree-search worker owns privately: a persistent simplex
/// solver whose factorised basis and work buffers live across the nodes
/// this worker processes.  Telemetry goes straight to the sharded obs
/// registry (see SolveCounters) instead of per-worker fields.
struct WorkerState {
  explicit WorkerState(const lp::LinearProgram& lp) : solver(lp) {}

  lp::SimplexSolver solver;
};

/// Restores the bounds of the given variables on destruction, so the
/// rounding heuristic's fixings can never leak into sibling nodes even
/// on an exception path.
class BoundsGuard {
 public:
  BoundsGuard(lp::SimplexSolver& solver, const std::vector<std::size_t>& vars)
      : solver_(solver), vars_(vars) {
    saved_.reserve(vars.size());
    for (std::size_t j : vars)
      saved_.emplace_back(solver.lower_bound(j), solver.upper_bound(j));
  }
  ~BoundsGuard() {
    for (std::size_t k = 0; k < vars_.size(); ++k)
      solver_.set_variable_bounds(vars_[k], saved_[k].first,
                                  saved_[k].second);
  }
  BoundsGuard(const BoundsGuard&) = delete;
  BoundsGuard& operator=(const BoundsGuard&) = delete;

 private:
  lp::SimplexSolver& solver_;
  const std::vector<std::size_t>& vars_;
  std::vector<std::pair<double, double>> saved_;
};

/// Restores the full objective vector on destruction; used by the cost
/// perturbation recovery rung so the perturbed coefficients cannot
/// survive into later solves (and no model copy is needed).
class ObjectiveGuard {
 public:
  explicit ObjectiveGuard(lp::SimplexSolver& solver) : solver_(solver) {
    saved_.reserve(solver.num_variables());
    for (std::size_t j = 0; j < solver.num_variables(); ++j)
      saved_.push_back(solver.objective_coefficient(j));
  }
  ~ObjectiveGuard() {
    for (std::size_t j = 0; j < saved_.size(); ++j)
      solver_.set_objective(j, saved_[j]);
  }
  ObjectiveGuard(const ObjectiveGuard&) = delete;
  ObjectiveGuard& operator=(const ObjectiveGuard&) = delete;

 private:
  lp::SimplexSolver& solver_;
  std::vector<double> saved_;
};

class Solver {
 public:
  Solver(const Model& model, const BnbOptions& opt)
      : model_(model),
        opt_(opt),
        relaxation_(model.to_lp()),
        sense_mult_(model.objective_sense() == Objective::Minimize ? 1.0
                                                                   : -1.0),
        pseudo_(model.num_variables()) {
    for (std::size_t j = 0; j < model.num_variables(); ++j)
      if (model.is_integral(j)) int_vars_.push_back(j);
    // Node LPs inherit the global deadline unless the caller set a
    // dedicated per-LP budget.
    lp_opt_ = opt.lp;
    if (lp_opt_.deadline.is_unlimited()) lp_opt_.deadline = opt.deadline;
    compute_incumbent_feas_tol();
  }

  MipResult run();

 private:
  /// Recomputed after root cuts extend the relaxation: snapping each
  /// integer variable moves it by at most integrality_tol, so a row can
  /// drift by at most its L1 coefficient norm times that.
  void compute_incumbent_feas_tol() {
#if RRP_INVARIANTS_ENABLED
    double max_row_l1 = 0.0;
    for (std::size_t r = 0; r < relaxation_.num_rows(); ++r) {
      double l1 = 0.0;
      for (const lp::Entry& e : relaxation_.row(r).entries)
        l1 += std::fabs(e.coeff);
      max_row_l1 = std::max(max_row_l1, l1);
    }
    incumbent_feas_tol_ =
        1e-6 + 10.0 * opt_.integrality_tol * (1.0 + max_row_l1);
#endif
  }

  /// Root cut loop: solve the root relaxation, separate violated valid
  /// inequalities, append them as rows, and re-optimise from the
  /// extended parent basis (new cut slacks enter basic — the extension
  /// is block triangular, hence nonsingular and dual feasible) until no
  /// cut is violated or the round limit is hit.  Runs strictly before
  /// any worker copies the relaxation.  Returns the final root basis
  /// for seeding the tree (null when unusable) and sets `root_bound` to
  /// the strengthened relaxation value (internal minimisation space).
  std::shared_ptr<const lp::Basis> run_root_cuts(double& root_bound);

  // -- tree search ------------------------------------------------------
  void worker(std::size_t w, WorkerState& ws);
  void process_node(WorkerState& ws, Node& node, std::size_t node_number);

  /// Applies the node's integer bounds to the worker's solver and runs
  /// the recovery ladder (warm started from node.start when enabled).
  lp::Solution solve_node_lp(WorkerState& ws, const Node& node);

  /// Solves the worker's current LP state through the failure-recovery
  /// ladder: warm/cold attempt, then on rrp::NumericalError retry with
  /// Bland pricing, then forced refactorisation, then a bounded
  /// deterministic in-place cost perturbation; rethrows only when every
  /// rung fails.
  lp::Solution solve_with_recovery(WorkerState& ws, const lp::Basis* start);

  /// Returns the index (into int_vars_) of the branching variable, or
  /// int_vars_.size() when the point is integral.
  std::size_t pick_branch_var(const std::vector<double>& x);

  void try_rounding_heuristic(WorkerState& ws, const Node& node,
                              const std::vector<double>& x,
                              const lp::Basis* start);

  void offer_incumbent(const std::vector<double>& x, double internal_obj);

  double prune_margin(double incumbent) const {
    return std::max(opt_.absolute_gap,
                    opt_.relative_gap * (1.0 + std::fabs(incumbent)));
  }

  // -- frontier helpers (compile-time contract: caller holds mtx_) ------
  bool frontier_empty_locked() const RRP_REQUIRES(mtx_) {
    return heap_.empty() && stack_.empty();
  }
  void push_locked(Node&& n) RRP_REQUIRES(mtx_) {
    if (opt_.node_selection == NodeSelection::BestBound)
      heap_.push(std::move(n));
    else
      stack_.push_back(std::move(n));
  }
  Node pop_locked() RRP_REQUIRES(mtx_) {
    if (opt_.node_selection == NodeSelection::BestBound) {
      Node n = heap_.top();
      heap_.pop();
      return n;
    }
    Node n = std::move(stack_.back());
    stack_.pop_back();
    return n;
  }
  double frontier_best_locked() const RRP_REQUIRES(mtx_) {
    if (opt_.node_selection == NodeSelection::BestBound)
      return heap_.empty() ? kInf : heap_.top().bound;
    double best = kInf;
    for (const Node& n : stack_) best = std::min(best, n.bound);
    return best;
  }
  /// Proven global bound: the frontier plus every node currently being
  /// processed by a worker (whose slot holds the node's parent bound, a
  /// valid underestimate of its subtree).
  double global_bound_locked() const RRP_REQUIRES(mtx_) {
    double best = frontier_best_locked();
    for (double b : in_flight_) best = std::min(best, b);
    return best;
  }

  const Model& model_;
  const BnbOptions& opt_;
  /// The LP relaxation.  Extended by root cuts before the tree search
  /// starts; immutable from the moment workers copy it.
  lp::LinearProgram relaxation_;
  lp::SimplexOptions lp_opt_;  ///< opt_.lp with the inherited deadline
  double sense_mult_;
  std::vector<std::size_t> int_vars_;
  Mutex pseudo_mtx_;  ///< pseudocost state is shared advisory data
  Pseudocosts pseudo_ RRP_GUARDED_BY(pseudo_mtx_);

  // Shared tree-search state, guarded by mtx_ unless noted.
  Mutex mtx_;
  CondVar cv_;
  std::priority_queue<Node, std::vector<Node>, NodeBoundGreater> heap_
      RRP_GUARDED_BY(mtx_);
  std::deque<Node> stack_ RRP_GUARDED_BY(mtx_);
  /// Per-worker bound slot; kInf = idle.
  std::vector<double> in_flight_ RRP_GUARDED_BY(mtx_);
  /// Workers currently processing a node.
  std::size_t active_ RRP_GUARDED_BY(mtx_) = 0;
  bool stop_ RRP_GUARDED_BY(mtx_) = false;
  bool hit_node_limit_ RRP_GUARDED_BY(mtx_) = false;
  bool hit_time_limit_ RRP_GUARDED_BY(mtx_) = false;
  bool gap_met_ RRP_GUARDED_BY(mtx_) = false;
  bool unbounded_ RRP_GUARDED_BY(mtx_) = false;
  std::exception_ptr error_ RRP_GUARDED_BY(mtx_);

  bool have_incumbent_ RRP_GUARDED_BY(mtx_) = false;
  /// Internal (minimisation) space.
  double incumbent_obj_ RRP_GUARDED_BY(mtx_) = kInf;
  std::vector<double> incumbent_x_ RRP_GUARDED_BY(mtx_);
  /// Lock-free mirror of incumbent_obj_ for pruning reads on the hot
  /// path; lowered by compare-exchange, never raised.
  std::atomic<double> incumbent_atomic_{kInf};
  std::atomic<std::size_t> nodes_count_{0};  ///< nodes popped so far
#if RRP_INVARIANTS_ENABLED
  double incumbent_feas_tol_ = 1e-6;
#endif

  // Root cut telemetry, written before the workers start (internal
  // minimisation space) and read in the single-threaded epilogue.  Cut
  // and factorisation counts live in the obs registry (SolveCounters).
  double root_lp_obj_ = kInf;   ///< root relaxation value before cuts
  double root_cut_obj_ = kInf;  ///< root relaxation value after cuts
};

std::shared_ptr<const lp::Basis> Solver::run_root_cuts(double& root_bound) {
  RRP_TRACE_SPAN("bnb.root_cuts");
  lp::SimplexSolver solver(relaxation_);
  lp::Solution sol;
  try {
    sol = solver.solve(lp_opt_);
  } catch (const NumericalError&) {
    return nullptr;
  }
  if (sol.status != lp::SolveStatus::Optimal) return nullptr;
  root_lp_obj_ = root_cut_obj_ = sense_mult_ * model_.objective_value(sol.x);

  CutPool pool;
  bool usable = true;
  for (std::size_t round = 0; round < opt_.max_cut_rounds; ++round) {
    RRP_TRACE_SPAN("bnb.cut_round");
    RRP_TRACE_ARG("round", round);
    const std::vector<Cut> cuts =
        opt_.cut_generator->separate(sol.x, opt_.cut_violation_tol);
    const std::size_t old_rows = relaxation_.num_rows();
    lp::Basis parent = solver.basis();
    std::size_t added = 0;
    for (const Cut& c : cuts) {
      if (!pool.add(c)) continue;
      relaxation_.add_row(c.entries, c.lo, c.hi);
      ++added;
    }
    RRP_TRACE_ARG("added", added);
    if (added == 0) break;
    solve_counters().cuts.add(added);
    RRP_OBS_EVENT("bnb", "cut_round",
                  {{"round", static_cast<std::uint64_t>(round)},
                   {"added", static_cast<std::uint64_t>(added)}});

    // Rebuild the solver over the extended program; the parent basis
    // plus the new cut slacks (basic) warm starts the dual simplex.
    solver = lp::SimplexSolver(relaxation_);
    lp::Basis start;
    if (!parent.empty()) {
      const std::size_t n = model_.num_variables();
      start = std::move(parent);
      for (std::size_t r = old_rows; r < relaxation_.num_rows(); ++r) {
        start.basic.push_back(n + r);
        start.status.push_back(lp::BasisStatus::Basic);
      }
    }
    try {
      sol = start.empty() ? solver.solve(lp_opt_)
                          : solver.solve_from(start, lp_opt_);
    } catch (const NumericalError&) {
      usable = false;  // the added rows stay (they are valid); bound from
      break;           // the weaker relaxation remains proven
    }
    if (sol.status != lp::SolveStatus::Optimal) {
      usable = false;
      break;
    }
    root_cut_obj_ = sense_mult_ * model_.objective_value(sol.x);
  }
  compute_incumbent_feas_tol();  // cut rows change the max row L1 norm

  if (!usable) return nullptr;
  root_bound = root_cut_obj_;
  lp::Basis b = solver.basis();
  if (opt_.warm_start && !b.empty())
    return std::make_shared<const lp::Basis>(std::move(b));
  return nullptr;
}

lp::Solution Solver::solve_node_lp(WorkerState& ws, const Node& node) {
  for (std::size_t k = 0; k < int_vars_.size(); ++k)
    ws.solver.set_variable_bounds(int_vars_[k], node.lo[k], node.hi[k]);
  lp::Solution sol = solve_with_recovery(ws, node.start.get());
  solve_counters().lp_iterations.add(sol.iterations);
  if (ws.solver.last_solve_was_warm())
    solve_counters().warm_nodes.add(1);
  else
    solve_counters().cold_nodes.add(1);
  return sol;
}

lp::Solution Solver::solve_with_recovery(WorkerState& ws,
                                         const lp::Basis* start) {
  const bool warm = opt_.warm_start && start != nullptr && !start->empty();
  try {
    return warm ? ws.solver.solve_from(*start, lp_opt_)
                : ws.solver.solve(lp_opt_);
  } catch (const NumericalError&) {
    // Fall through to the recovery ladder (always cold from here on).
  }

  // Rung 1: Bland pricing — slower pivots, but immune to the cycling and
  // stall pathologies that usually underlie a degenerate basis.
  lp::SimplexOptions retry = lp_opt_;
  retry.pricing = lp::Pricing::Bland;
  try {
    lp::Solution sol = ws.solver.solve(retry);
    solve_counters().recoveries.add(1);
    RRP_OBS_EVENT("lp", "recovery", {{"rung", 1}, {"ladder", "bland"}});
    return sol;
  } catch (const NumericalError&) {
  }

  // Rung 2: additionally rebuild the basis inverse after every pivot so
  // accumulated eta-update drift cannot produce a vanishing pivot.
  retry.refactor_every = 1;
  try {
    lp::Solution sol = ws.solver.solve(retry);
    solve_counters().recoveries.add(1);
    RRP_OBS_EVENT("lp", "recovery", {{"rung", 2}, {"ladder", "refactor"}});
    return sol;
  } catch (const NumericalError&) {
  }

  // Rung 3: bounded deterministic cost perturbation, applied in place on
  // the persistent solver and rolled back by the guard, breaks exact
  // dual ties.  The relative shift is <= 2^-30 per coefficient, far
  // below the solver tolerances, so the perturbed optimum is
  // interchangeable with the true one at MIP precision.
  ObjectiveGuard guard(ws.solver);
  for (std::size_t j = 0; j < ws.solver.num_variables(); ++j) {
    const double c = ws.solver.objective_coefficient(j);
    const double jitter =
        static_cast<double>((j * 2654435761ULL + 1ULL) % 1024ULL) / 1024.0;
    ws.solver.set_objective(
        j, c + 9.3e-10 * (1.0 + std::fabs(c)) * (jitter - 0.5));
  }
  lp::Solution sol = ws.solver.solve(retry);  // rethrows on failure
  solve_counters().recoveries.add(1);
  RRP_OBS_EVENT("lp", "recovery", {{"rung", 3}, {"ladder", "perturb"}});
  return sol;
}

std::size_t Solver::pick_branch_var(const std::vector<double>& x) {
  std::size_t best = int_vars_.size();
  double best_score = -kInf;
  // The pseudocost store is only read under PseudoCost branching, but
  // the lock is taken unconditionally: conditionally-held capabilities
  // are inexpressible in the static contract, and outside PseudoCost
  // mode pseudo_mtx_ is uncontended, so the acquire is a few nanoseconds
  // against a per-node LP solve.
  MutexLock pseudo_lock(pseudo_mtx_);
  for (std::size_t k = 0; k < int_vars_.size(); ++k) {
    const double v = x[int_vars_[k]];
    const double frac = v - std::floor(v);
    const double dist = std::min(frac, 1.0 - frac);
    if (dist <= opt_.integrality_tol) continue;
    double score = 0.0;
    switch (opt_.branching) {
      case Branching::FirstFractional:
        return k;
      case Branching::MostFractional:
        score = dist;
        break;
      case Branching::PseudoCost: {
        score = pseudo_.score(int_vars_[k], frac);
        if (score < 0.0) score = dist * 1e-6;  // fall back until initialised
        break;
      }
    }
    if (score > best_score) {
      best_score = score;
      best = k;
    }
  }
  return best;
}

void Solver::offer_incumbent(const std::vector<double>& x,
                             double internal_obj) {
  // Monotone minimum on the lock-free mirror first, so concurrent
  // workers prune against the freshest value without taking the lock.
  double cur = incumbent_atomic_.load(std::memory_order_relaxed);
  while (internal_obj < cur &&
         !incumbent_atomic_.compare_exchange_weak(cur, internal_obj,
                                                  std::memory_order_relaxed)) {
  }
  MutexLock lock(mtx_);
  if (have_incumbent_ && internal_obj >= incumbent_obj_) return;
  have_incumbent_ = true;
  incumbent_obj_ = internal_obj;
  incumbent_x_ = x;
  RRP_COUNTER_ADD("rrp.bnb.incumbent_updates", 1);
  RRP_GAUGE_SET("rrp.bnb.incumbent_objective", sense_mult_ * internal_obj);
  RRP_OBS_EVENT(
      "bnb", "incumbent",
      {{"objective", sense_mult_ * internal_obj},
       {"nodes", static_cast<std::uint64_t>(
                     nodes_count_.load(std::memory_order_relaxed))}});
  // Snap integer variables exactly.
  for (std::size_t j : int_vars_)
    incumbent_x_[j] = std::round(incumbent_x_[j]);
#if RRP_INVARIANTS_ENABLED
  // Incumbent feasibility: the snapped point must satisfy the original
  // model (rows and bounds) and be exactly integral where required.
  // The comparison is exact by construction (just assigned a round()).
  for (std::size_t j : int_vars_)
    RRP_INVARIANT(incumbent_x_[j] ==  // rrp-lint: allow(float-equality)
                  std::round(incumbent_x_[j]));
  const double viol = relaxation_.max_violation(incumbent_x_);
  RRP_INVARIANT_MSG(viol <= incumbent_feas_tol_,
                    "incumbent violates the model by " + std::to_string(viol));
#endif
}

void Solver::try_rounding_heuristic(WorkerState& ws, const Node& node,
                                    const std::vector<double>& x,
                                    const lp::Basis* start) {
  // Fix every integer variable to the nearest integer inside the node
  // bounds, then re-solve the LP for the continuous variables.  The
  // guard restores the node's bounds even when the solve throws.
  RRP_TRACE_SPAN("bnb.heuristic");
  BoundsGuard guard(ws.solver, int_vars_);
  for (std::size_t k = 0; k < int_vars_.size(); ++k) {
    double v = std::round(x[int_vars_[k]]);
    v = std::clamp(v, node.lo[k], node.hi[k]);
    ws.solver.set_variable_bounds(int_vars_[k], v, v);
  }
  lp::Solution sol = solve_with_recovery(ws, start);
  solve_counters().lp_iterations.add(sol.iterations);
  if (sol.status == lp::SolveStatus::Optimal) {
    offer_incumbent(sol.x, sense_mult_ * model_.objective_value(sol.x));
  }
}

void Solver::process_node(WorkerState& ws, Node& node,
                          std::size_t node_number) {
  RRP_TRACE_SPAN("bnb.node");
  RRP_TRACE_ARG("node", node_number);
  RRP_TRACE_ARG("depth", node.depth);
  // Bound-based pruning against the incumbent, honouring both gap
  // tolerances: a node whose bound cannot improve the incumbent by more
  // than the configured gap is not worth expanding.
  {
    const double inc = incumbent_atomic_.load(std::memory_order_relaxed);
    if (inc < kInf && node.bound >= inc - prune_margin(inc)) return;
  }

  lp::Solution sol = solve_node_lp(ws, node);
  if (sol.status == lp::SolveStatus::TimeLimit) {
    // The node's relaxation did not finish: return the node to the
    // frontier (its parent bound is still valid) so the proven bound
    // stays sound, then wind the search down.
    MutexLock lock(mtx_);
    push_locked(std::move(node));
    hit_time_limit_ = true;
    stop_ = true;
    cv_.notify_all();
    return;
  }
  if (sol.status == lp::SolveStatus::Infeasible) return;
  if (sol.status == lp::SolveStatus::Unbounded) {
    // A relaxation unbounded at the root means the MILP is unbounded or
    // infeasible; report unbounded (standard convention).
    MutexLock lock(mtx_);
    unbounded_ = true;
    stop_ = true;
    cv_.notify_all();
    return;
  }
  if (sol.status != lp::SolveStatus::Optimal) return;  // iter limit

  const double node_obj = sense_mult_ * model_.objective_value(sol.x);
  // Bound monotonicity: a child's relaxation can only tighten (grow, in
  // minimisation space) relative to the bound inherited from its parent;
  // a violation means the LP layer returned an inconsistent optimum or
  // node bookkeeping got corrupted.
  RRP_INVARIANT_MSG(
      node_obj >= node.bound - 1e-5 * (1.0 + std::fabs(node_obj) +
                                       std::fabs(node.bound)),
      "child relaxation " + std::to_string(node_obj) +
          " beats parent bound " + std::to_string(node.bound));
  {
    const double inc = incumbent_atomic_.load(std::memory_order_relaxed);
    if (inc < kInf && node_obj >= inc - prune_margin(inc)) return;
  }

  // Export the node's basis immediately — heuristic probes below reuse
  // the solver and would overwrite it.
  std::shared_ptr<const lp::Basis> basis;
  if (opt_.warm_start) {
    lp::Basis b = ws.solver.basis();
    if (!b.empty()) basis = std::make_shared<const lp::Basis>(std::move(b));
  }

  const std::size_t k = pick_branch_var(sol.x);
  if (k == int_vars_.size()) {
    offer_incumbent(sol.x, node_obj);
    return;
  }

  if (opt_.rounding_heuristic && (node_number == 1 || node_number % 64 == 0))
    try_rounding_heuristic(ws, node, sol.x, basis.get());

  const std::size_t var = int_vars_[k];
  const double v = sol.x[var];
  const double frac = v - std::floor(v);

  Node down = node;
  down.hi[k] = std::floor(v);
  down.bound = node_obj;
  down.depth = node.depth + 1;
  down.start = basis;
  Node up = node;
  up.lo[k] = std::ceil(v);
  up.bound = node_obj;
  up.depth = node.depth + 1;
  up.start = basis;

  // Record pseudocosts lazily by peeking at the children right away when
  // pseudocost branching is active (strong-branching-lite).
  if (opt_.branching == Branching::PseudoCost && node.depth < 4) {
    lp::Solution dsol = solve_node_lp(ws, down);
    lp::Solution usol = solve_node_lp(ws, up);
    MutexLock plock(pseudo_mtx_);
    if (dsol.status == lp::SolveStatus::Optimal)
      pseudo_.record(var, false, frac,
                     sense_mult_ * model_.objective_value(dsol.x) - node_obj);
    if (usol.status == lp::SolveStatus::Optimal)
      pseudo_.record(var, true, frac,
                     sense_mult_ * model_.objective_value(usol.x) - node_obj);
  }

  MutexLock lock(mtx_);
  // DFS dives toward the nearer integer first (pushed last).
  if (frac >= 0.5) {
    push_locked(std::move(down));
    push_locked(std::move(up));
  } else {
    push_locked(std::move(up));
    push_locked(std::move(down));
  }
  // Gap-based early termination against the proven global bound.
  if (have_incumbent_) {
    const double bound = std::min(global_bound_locked(), node_obj);
    const double gap = incumbent_obj_ - bound;
    if (gap <= opt_.absolute_gap ||
        gap <= opt_.relative_gap * (1.0 + std::fabs(incumbent_obj_))) {
      gap_met_ = true;
      stop_ = true;
    }
  }
  cv_.notify_all();
}

void Solver::worker(std::size_t w, WorkerState& ws) {
  MutexLock lock(mtx_);
  for (;;) {
    while (!stop_ && frontier_empty_locked() && active_ != 0) cv_.wait(lock);
    if (stop_) return;
    if (frontier_empty_locked()) return;  // active_ == 0: tree exhausted
    if (nodes_count_.load(std::memory_order_relaxed) >= opt_.max_nodes) {
      hit_node_limit_ = true;
      stop_ = true;
      cv_.notify_all();
      return;
    }
    // Anytime contract: one deadline poll per node, taken outside the
    // frontier lock (an injected FakeClock serialises internally).
    lock.unlock();
    const bool expired = opt_.deadline.expired();
    lock.lock();
    if (stop_) return;
    if (expired) {
      hit_time_limit_ = true;
      stop_ = true;
      cv_.notify_all();
      return;
    }
    if (frontier_empty_locked()) continue;  // raced: another worker won
    Node node = pop_locked();
    const std::size_t node_number =
        nodes_count_.fetch_add(1, std::memory_order_relaxed) + 1;
    solve_counters().nodes.add(1);
    RRP_GAUGE_SET("rrp.bnb.frontier_depth", heap_.size() + stack_.size());
    ++active_;
    in_flight_[w] = node.bound;
    lock.unlock();
    // Capture rather than handle under the lock: no capability
    // transition may span the try/catch boundary (the static analysis
    // does not model exceptional edges).
    std::exception_ptr err;
    try {
      process_node(ws, node, node_number);
    } catch (...) {
      err = std::current_exception();
    }
    lock.lock();
    --active_;
    in_flight_[w] = kInf;
    if (err) {
      if (!error_) error_ = err;
      stop_ = true;
      cv_.notify_all();
      return;
    }
    if (stop_ || (frontier_empty_locked() && active_ == 0)) cv_.notify_all();
  }
}

MipResult Solver::run() {
  RRP_TRACE_SPAN("bnb.solve");
  MipResult result;

  // Snapshot the process-wide telemetry counters so the epilogue can
  // fill the MipResult compatibility fields from the deltas this solve
  // produced.  Exact: no two solves run concurrently in one process
  // (solves on worker threads nest under this call via TaskGroup).
  const SolveCounters& tel = solve_counters();
  const std::uint64_t lp_iterations0 = tel.lp_iterations.value();
  const std::uint64_t recoveries0 = tel.recoveries.value();
  const std::uint64_t warm0 = tel.warm_nodes.value();
  const std::uint64_t cold0 = tel.cold_nodes.value();
  const std::uint64_t cuts0 = tel.cuts.value();
  const std::uint64_t refactorizations0 = tel.refactorizations.value();
  const std::uint64_t eta0 = tel.eta_updates.value();
  const double fill_sum0 = tel.fill_ratio_sum.value();

  std::size_t jobs = opt_.jobs;
  if (jobs == 0)
    jobs = std::max<std::size_t>(1, std::thread::hardware_concurrency());

  // Strengthen the shared relaxation with root cuts before any worker
  // copies it; the final root basis and bound seed the root node.
  std::shared_ptr<const lp::Basis> root_start;
  double root_bound = -kInf;
  if (opt_.root_cuts && opt_.cut_generator != nullptr && !int_vars_.empty())
    root_start = run_root_cuts(root_bound);

  {
    // No worker is running yet, but the frontier fields carry a
    // compile-time "hold mtx_" contract with no single-threaded
    // exemption — and the uncontended acquire is free.
    MutexLock lock(mtx_);
    Node root;
    root.lo.resize(int_vars_.size());
    root.hi.resize(int_vars_.size());
    for (std::size_t k = 0; k < int_vars_.size(); ++k) {
      root.lo[k] = model_.variable(int_vars_[k]).lo;
      root.hi[k] = model_.variable(int_vars_[k]).hi;
    }
    root.bound = root_bound;
    root.start = std::move(root_start);
    push_locked(std::move(root));
    in_flight_.assign(jobs, kInf);
  }

  std::vector<WorkerState> states;
  states.reserve(jobs);
  for (std::size_t w = 0; w < jobs; ++w) states.emplace_back(relaxation_);

  if (jobs == 1) {
    worker(0, states[0]);
  } else {
    TaskGroup group(global_pool());
    for (std::size_t w = 1; w < jobs; ++w)
      group.run([this, w, &states] { worker(w, states[w]); });
    worker(0, states[0]);  // the caller participates
    group.wait();
  }

  // All workers have joined (TaskGroup::wait above), so this lock is
  // uncontended; it closes the epilogue reads under the same capability
  // contract the workers used, instead of relying on the join for
  // visibility.
  MutexLock lock(mtx_);
  if (error_) std::rethrow_exception(error_);

  // Compatibility view over the obs registry: the public MipResult
  // telemetry fields are counter deltas across this solve, mirroring
  // the per-worker field reduction they replace exactly (every counting
  // site below and in src/lp/simplex.cpp advances unconditionally, so
  // the fields stay correct under RRP_OBSERVABILITY=OFF).
  result.nodes_explored = nodes_count_.load(std::memory_order_relaxed);
  result.lp_iterations =
      static_cast<std::size_t>(tel.lp_iterations.value() - lp_iterations0);
  result.lp_failures_recovered =
      static_cast<std::size_t>(tel.recoveries.value() - recoveries0);
  result.warm_started_nodes =
      static_cast<std::size_t>(tel.warm_nodes.value() - warm0);
  result.cold_solved_nodes =
      static_cast<std::size_t>(tel.cold_nodes.value() - cold0);
  result.cuts_added = static_cast<std::size_t>(tel.cuts.value() - cuts0);
  result.factor_stats.refactorizations = static_cast<std::size_t>(
      tel.refactorizations.value() - refactorizations0);
  result.factor_stats.eta_updates =
      static_cast<std::size_t>(tel.eta_updates.value() - eta0);
  result.factor_stats.fill_ratio_sum = tel.fill_ratio_sum.value() - fill_sum0;
  if (result.cuts_added > 0 && have_incumbent_ && std::isfinite(root_lp_obj_)) {
    const double denom = incumbent_obj_ - root_lp_obj_;
    if (denom > 1e-12)
      result.root_gap_closed =
          std::clamp((root_cut_obj_ - root_lp_obj_) / denom, 0.0, 1.0);
  }

  if (unbounded_) {
    result.status = MipStatus::Unbounded;
    return result;
  }

  const bool hit_limit = hit_node_limit_ || hit_time_limit_;
  if (!have_incumbent_) {
    // Without an incumbent a drained frontier proves infeasibility;
    // stopping on a limit proves nothing.
    result.status = hit_limit ? MipStatus::NoIncumbent : MipStatus::Infeasible;
    result.best_bound = sense_mult_ * frontier_best_locked();
    return result;
  }
  if (gap_met_)
    result.status = MipStatus::Optimal;  // the gap proof beats a limit
  else if (hit_limit)
    result.status =
        hit_time_limit_ ? MipStatus::TimeLimit : MipStatus::NodeLimit;
  else
    result.status = MipStatus::Optimal;

  const double internal_bound =
      result.status == MipStatus::Optimal
          ? incumbent_obj_
          : std::min(frontier_best_locked(), incumbent_obj_);
  result.objective = sense_mult_ * incumbent_obj_;
  result.best_bound = sense_mult_ * internal_bound;
  result.x = incumbent_x_;
  return result;
}

}  // namespace

const char* to_string(MipStatus status) {
  switch (status) {
    case MipStatus::Optimal: return "optimal";
    case MipStatus::Infeasible: return "infeasible";
    case MipStatus::Unbounded: return "unbounded";
    case MipStatus::NodeLimit: return "node-limit";
    case MipStatus::NoIncumbent: return "no-incumbent";
    case MipStatus::TimeLimit: return "time-limit";
  }
  return "unknown";
}

double MipResult::gap() const {
  if (x.empty()) return kInf;
  if (!std::isfinite(best_bound)) return kInf;
  const double denom = 1.0 + std::fabs(objective);
  return std::fabs(objective - best_bound) / denom;
}

MipResult solve(const Model& model, const BnbOptions& options) {
  if (options.deadline.expired()) {
    // Expired on entry: honour the anytime contract in O(1) — no node
    // exploration, no incumbent, and a trivially valid (infinite) bound.
    MipResult result;
    result.status = MipStatus::NoIncumbent;
    result.best_bound = model.objective_sense() == Objective::Minimize
                            ? -kInf
                            : kInf;
    return result;
  }
  Solver solver(model, options);
  return solver.run();
}

}  // namespace rrp::milp
