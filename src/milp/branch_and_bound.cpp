#include "milp/branch_and_bound.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <queue>
#include <string>

#include "common/invariant.hpp"

namespace rrp::milp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Node {
  // Bound overrides for the integer variables only, indexed by the
  // position of the variable in the integer-variable list.
  std::vector<double> lo;
  std::vector<double> hi;
  double bound = -kInf;  ///< parent relaxation value (internal min sense)
  std::size_t depth = 0;
};

struct NodeBoundGreater {
  bool operator()(const Node& a, const Node& b) const {
    return a.bound > b.bound;
  }
};

/// Simple pseudocost store: average objective degradation per unit of
/// fractionality, per integer variable and branching direction.
struct Pseudocosts {
  std::vector<double> down_sum, up_sum;
  std::vector<std::size_t> down_n, up_n;

  explicit Pseudocosts(std::size_t n)
      : down_sum(n, 0.0), up_sum(n, 0.0), down_n(n, 0), up_n(n, 0) {}

  void record(std::size_t idx, bool up, double frac, double degradation) {
    if (frac <= 1e-9) return;
    const double unit = degradation / (up ? (1.0 - frac) : frac);
    if (up) {
      up_sum[idx] += std::max(unit, 0.0);
      ++up_n[idx];
    } else {
      down_sum[idx] += std::max(unit, 0.0);
      ++down_n[idx];
    }
  }

  double score(std::size_t idx, double frac) const {
    if (down_n[idx] == 0 || up_n[idx] == 0) return -1.0;  // uninitialised
    const double down = down_sum[idx] / static_cast<double>(down_n[idx]);
    const double up = up_sum[idx] / static_cast<double>(up_n[idx]);
    // Product rule (standard in MIP solvers): rewards balanced impact.
    return std::max(down * frac, 1e-12) * std::max(up * (1.0 - frac), 1e-12);
  }
};

class Solver {
 public:
  Solver(const Model& model, const BnbOptions& opt)
      : model_(model),
        opt_(opt),
        relaxation_(model.to_lp()),
        sense_mult_(model.objective_sense() == Objective::Minimize ? 1.0
                                                                   : -1.0),
        pseudo_(model.num_variables()) {
    for (std::size_t j = 0; j < model.num_variables(); ++j)
      if (model.is_integral(j)) int_vars_.push_back(j);
    // Node LPs inherit the global deadline unless the caller set a
    // dedicated per-LP budget.
    lp_opt_ = opt.lp;
    if (lp_opt_.deadline.is_unlimited()) lp_opt_.deadline = opt.deadline;
#if RRP_INVARIANTS_ENABLED
    // Feasibility tolerance for incumbent checks: snapping each integer
    // variable moves it by at most integrality_tol, so a row can drift
    // by at most its L1 coefficient norm times that.
    double max_row_l1 = 0.0;
    for (std::size_t r = 0; r < relaxation_.num_rows(); ++r) {
      double l1 = 0.0;
      for (const lp::Entry& e : relaxation_.row(r).entries)
        l1 += std::fabs(e.coeff);
      max_row_l1 = std::max(max_row_l1, l1);
    }
    incumbent_feas_tol_ =
        1e-6 + 10.0 * opt_.integrality_tol * (1.0 + max_row_l1);
    pristine_lp_ = relaxation_;
#endif
  }

  MipResult run();

 private:
  /// Applies node bounds and solves the relaxation.
  lp::Solution solve_relaxation(const Node& node);

  /// Solves relaxation_ through the failure-recovery ladder: on
  /// rrp::NumericalError retry with Bland pricing, then forced
  /// refactorisation, then a bounded deterministic cost perturbation;
  /// rethrows only when every rung fails.
  lp::Solution solve_with_recovery();

  /// Returns the index (into int_vars_) of the branching variable, or
  /// int_vars_.size() when the point is integral.
  std::size_t pick_branch_var(const std::vector<double>& x) const;

  void try_rounding_heuristic(const Node& node, const std::vector<double>& x);

  void offer_incumbent(const std::vector<double>& x, double internal_obj);

  const Model& model_;
  const BnbOptions& opt_;
  lp::LinearProgram relaxation_;
  lp::SimplexOptions lp_opt_;  ///< opt_.lp with the inherited deadline
  double sense_mult_;
  std::vector<std::size_t> int_vars_;
  Pseudocosts pseudo_;

  bool have_incumbent_ = false;
  double incumbent_obj_ = kInf;  ///< internal (minimisation) space
  std::vector<double> incumbent_x_;
  std::size_t nodes_ = 0;
  std::size_t lp_iterations_ = 0;
  std::size_t lp_recoveries_ = 0;
#if RRP_INVARIANTS_ENABLED
  double incumbent_feas_tol_ = 1e-6;
  /// Unmodified relaxation (solve_relaxation mutates relaxation_'s
  /// variable bounds); incumbents are checked against this copy.
  lp::LinearProgram pristine_lp_;
#endif
};

lp::Solution Solver::solve_relaxation(const Node& node) {
  for (std::size_t k = 0; k < int_vars_.size(); ++k) {
    relaxation_.set_variable_bounds(int_vars_[k], node.lo[k], node.hi[k]);
  }
  lp::Solution sol = solve_with_recovery();
  lp_iterations_ += sol.iterations;
  return sol;
}

lp::Solution Solver::solve_with_recovery() {
  try {
    return lp::solve(relaxation_, lp_opt_);
  } catch (const NumericalError&) {
    // Fall through to the recovery ladder.
  }

  // Rung 1: Bland pricing — slower pivots, but immune to the cycling and
  // stall pathologies that usually underlie a degenerate basis.
  lp::SimplexOptions retry = lp_opt_;
  retry.pricing = lp::Pricing::Bland;
  try {
    lp::Solution sol = lp::solve(relaxation_, retry);
    ++lp_recoveries_;
    return sol;
  } catch (const NumericalError&) {
  }

  // Rung 2: additionally rebuild the basis inverse after every pivot so
  // accumulated eta-update drift cannot produce a vanishing pivot.
  retry.refactor_every = 1;
  try {
    lp::Solution sol = lp::solve(relaxation_, retry);
    ++lp_recoveries_;
    return sol;
  } catch (const NumericalError&) {
  }

  // Rung 3: bounded deterministic cost perturbation on a copy of the
  // relaxation breaks exact dual ties.  The relative shift is <= 2^-30
  // per coefficient, far below the solver tolerances, so the perturbed
  // optimum is interchangeable with the true one at MIP precision.
  lp::LinearProgram perturbed = relaxation_;
  for (std::size_t j = 0; j < perturbed.num_variables(); ++j) {
    const double c = perturbed.variable(j).objective;
    const double jitter =
        static_cast<double>((j * 2654435761ULL + 1ULL) % 1024ULL) / 1024.0;
    perturbed.set_objective(
        j, c + 9.3e-10 * (1.0 + std::fabs(c)) * (jitter - 0.5));
  }
  lp::Solution sol = lp::solve(perturbed, retry);  // rethrows on failure
  ++lp_recoveries_;
  return sol;
}

std::size_t Solver::pick_branch_var(const std::vector<double>& x) const {
  std::size_t best = int_vars_.size();
  double best_score = -kInf;
  for (std::size_t k = 0; k < int_vars_.size(); ++k) {
    const double v = x[int_vars_[k]];
    const double frac = v - std::floor(v);
    const double dist = std::min(frac, 1.0 - frac);
    if (dist <= opt_.integrality_tol) continue;
    double score = 0.0;
    switch (opt_.branching) {
      case Branching::FirstFractional:
        return k;
      case Branching::MostFractional:
        score = dist;
        break;
      case Branching::PseudoCost: {
        score = pseudo_.score(int_vars_[k], frac);
        if (score < 0.0) score = dist * 1e-6;  // fall back until initialised
        break;
      }
    }
    if (score > best_score) {
      best_score = score;
      best = k;
    }
  }
  return best;
}

void Solver::offer_incumbent(const std::vector<double>& x,
                             double internal_obj) {
  if (!have_incumbent_ || internal_obj < incumbent_obj_) {
    have_incumbent_ = true;
    incumbent_obj_ = internal_obj;
    incumbent_x_ = x;
    // Snap integer variables exactly.
    for (std::size_t j : int_vars_)
      incumbent_x_[j] = std::round(incumbent_x_[j]);
#if RRP_INVARIANTS_ENABLED
    // Incumbent feasibility: the snapped point must satisfy the original
    // model (rows and bounds) and be exactly integral where required.
    for (std::size_t j : int_vars_)
      RRP_INVARIANT(incumbent_x_[j] == std::round(incumbent_x_[j]));
    const double viol = pristine_lp_.max_violation(incumbent_x_);
    RRP_INVARIANT_MSG(viol <= incumbent_feas_tol_,
                      "incumbent violates the model by " +
                          std::to_string(viol));
#endif
  }
}

void Solver::try_rounding_heuristic(const Node& node,
                                    const std::vector<double>& x) {
  // Fix every integer variable to the nearest integer inside the node
  // bounds, then re-solve the LP for the continuous variables.
  Node fixed = node;
  for (std::size_t k = 0; k < int_vars_.size(); ++k) {
    double v = std::round(x[int_vars_[k]]);
    v = std::clamp(v, node.lo[k], node.hi[k]);
    fixed.lo[k] = v;
    fixed.hi[k] = v;
  }
  lp::Solution sol = solve_relaxation(fixed);
  if (sol.status == lp::SolveStatus::Optimal) {
    offer_incumbent(sol.x, sense_mult_ * model_.objective_value(sol.x));
  }
}

MipResult Solver::run() {
  MipResult result;

  Node root;
  root.lo.resize(int_vars_.size());
  root.hi.resize(int_vars_.size());
  for (std::size_t k = 0; k < int_vars_.size(); ++k) {
    root.lo[k] = model_.variable(int_vars_[k]).lo;
    root.hi[k] = model_.variable(int_vars_[k]).hi;
  }

  // Two interchangeable frontiers: a heap for best-bound, a stack for DFS.
  std::priority_queue<Node, std::vector<Node>, NodeBoundGreater> heap;
  std::deque<Node> stack;
  auto push = [&](Node&& n) {
    if (opt_.node_selection == NodeSelection::BestBound)
      heap.push(std::move(n));
    else
      stack.push_back(std::move(n));
  };
  auto empty = [&] { return heap.empty() && stack.empty(); };
  auto pop = [&] {
    if (opt_.node_selection == NodeSelection::BestBound) {
      Node n = heap.top();
      heap.pop();
      return n;
    }
    Node n = std::move(stack.back());
    stack.pop_back();
    return n;
  };
  auto frontier_best_bound = [&] {
    if (opt_.node_selection == NodeSelection::BestBound)
      return heap.empty() ? kInf : heap.top().bound;
    double best = kInf;
    for (const Node& n : stack) best = std::min(best, n.bound);
    return best;
  };

  push(std::move(root));
  double explored_bound_floor = -kInf;  // max lower bound among processed
  bool hit_node_limit = false;
  bool hit_time_limit = false;

  while (!empty()) {
    if (nodes_ >= opt_.max_nodes) {
      hit_node_limit = true;
      break;
    }
    // Anytime contract: one deadline poll per node; on expiry stop with
    // the incumbent found so far and the frontier's proven bound.
    if (opt_.deadline.expired()) {
      hit_time_limit = true;
      break;
    }
    Node node = pop();
    ++nodes_;

    // Bound-based pruning against the incumbent, honouring both gap
    // tolerances: a node whose bound cannot improve the incumbent by
    // more than the configured gap is not worth expanding.
    const double prune_margin =
        have_incumbent_
            ? std::max(opt_.absolute_gap,
                       opt_.relative_gap * (1.0 + std::fabs(incumbent_obj_)))
            : 0.0;
    if (have_incumbent_ && node.bound >= incumbent_obj_ - prune_margin)
      continue;

    lp::Solution sol = solve_relaxation(node);
    if (sol.status == lp::SolveStatus::TimeLimit) {
      // The node's relaxation did not finish: return the node to the
      // frontier (its parent bound is still valid) so the proven bound
      // stays sound, then wind down.
      push(std::move(node));
      hit_time_limit = true;
      break;
    }
    if (sol.status == lp::SolveStatus::Infeasible) continue;
    if (sol.status == lp::SolveStatus::Unbounded) {
      // A relaxation unbounded at the root means the MILP is unbounded
      // or infeasible; report unbounded (standard convention).
      result.status = MipStatus::Unbounded;
      result.nodes_explored = nodes_;
      result.lp_iterations = lp_iterations_;
      return result;
    }
    if (sol.status != lp::SolveStatus::Optimal) continue;  // iter limit

    const double node_obj = sense_mult_ * model_.objective_value(sol.x);
    // Bound monotonicity: a child's relaxation can only tighten (grow,
    // in minimisation space) relative to the bound inherited from its
    // parent; a violation means the LP layer returned an inconsistent
    // optimum or node bookkeeping got corrupted.
    RRP_INVARIANT_MSG(
        node_obj >=
            node.bound - 1e-5 * (1.0 + std::fabs(node_obj) +
                                 std::fabs(node.bound)),
        "child relaxation " + std::to_string(node_obj) +
            " beats parent bound " + std::to_string(node.bound));
    explored_bound_floor = std::max(explored_bound_floor, node.bound);
    if (have_incumbent_ && node_obj >= incumbent_obj_ - prune_margin)
      continue;

    const std::size_t k = pick_branch_var(sol.x);
    if (k == int_vars_.size()) {
      offer_incumbent(sol.x, node_obj);
      continue;
    }

    if (opt_.rounding_heuristic && (nodes_ == 1 || nodes_ % 64 == 0))
      try_rounding_heuristic(node, sol.x);

    const std::size_t var = int_vars_[k];
    const double v = sol.x[var];
    const double frac = v - std::floor(v);

    Node down = node;
    down.hi[k] = std::floor(v);
    down.bound = node_obj;
    down.depth = node.depth + 1;
    Node up = node;
    up.lo[k] = std::ceil(v);
    up.bound = node_obj;
    up.depth = node.depth + 1;

    // Record pseudocosts lazily by peeking at the children right away
    // when pseudocost branching is active (strong-branching-lite).
    if (opt_.branching == Branching::PseudoCost && node.depth < 4) {
      lp::Solution dsol = solve_relaxation(down);
      if (dsol.status == lp::SolveStatus::Optimal)
        pseudo_.record(var, false, frac,
                       sense_mult_ * model_.objective_value(dsol.x) -
                           node_obj);
      lp::Solution usol = solve_relaxation(up);
      if (usol.status == lp::SolveStatus::Optimal)
        pseudo_.record(var, true, frac,
                       sense_mult_ * model_.objective_value(usol.x) -
                           node_obj);
    }

    // DFS dives toward the nearer integer first (pushed last).
    if (frac >= 0.5) {
      push(std::move(down));
      push(std::move(up));
    } else {
      push(std::move(up));
      push(std::move(down));
    }

    // Gap-based early termination.
    if (have_incumbent_) {
      const double bound = std::min(frontier_best_bound(), node_obj);
      const double gap = incumbent_obj_ - bound;
      if (gap <= opt_.absolute_gap ||
          gap <= opt_.relative_gap * (1.0 + std::fabs(incumbent_obj_))) {
        result.status = MipStatus::Optimal;
        break;
      }
    }
  }

  result.nodes_explored = nodes_;
  result.lp_iterations = lp_iterations_;
  result.lp_failures_recovered = lp_recoveries_;
  const bool hit_limit = hit_node_limit || hit_time_limit;
  if (!have_incumbent_) {
    // Without an incumbent a drained frontier proves infeasibility;
    // stopping on a limit proves nothing.
    result.status = hit_limit ? MipStatus::NoIncumbent : MipStatus::Infeasible;
    result.best_bound = sense_mult_ * frontier_best_bound();
    return result;
  }
  if (hit_limit)
    result.status =
        hit_time_limit ? MipStatus::TimeLimit : MipStatus::NodeLimit;
  else if (result.status != MipStatus::Optimal)
    result.status = MipStatus::Optimal;

  const double internal_bound =
      result.status == MipStatus::Optimal
          ? incumbent_obj_
          : std::min(frontier_best_bound(), incumbent_obj_);
  result.objective = sense_mult_ * incumbent_obj_;
  result.best_bound = sense_mult_ * internal_bound;
  result.x = incumbent_x_;
  return result;
}

}  // namespace

const char* to_string(MipStatus status) {
  switch (status) {
    case MipStatus::Optimal: return "optimal";
    case MipStatus::Infeasible: return "infeasible";
    case MipStatus::Unbounded: return "unbounded";
    case MipStatus::NodeLimit: return "node-limit";
    case MipStatus::NoIncumbent: return "no-incumbent";
    case MipStatus::TimeLimit: return "time-limit";
  }
  return "unknown";
}

double MipResult::gap() const {
  if (x.empty()) return kInf;
  if (!std::isfinite(best_bound)) return kInf;
  const double denom = 1.0 + std::fabs(objective);
  return std::fabs(objective - best_bound) / denom;
}

MipResult solve(const Model& model, const BnbOptions& options) {
  if (options.deadline.expired()) {
    // Expired on entry: honour the anytime contract in O(1) — no node
    // exploration, no incumbent, and a trivially valid (infinite) bound.
    MipResult result;
    result.status = MipStatus::NoIncumbent;
    result.best_bound = model.objective_sense() == Objective::Minimize
                            ? -kInf
                            : kInf;
    return result;
  }
  Solver solver(model, options);
  return solver.run();
}

}  // namespace rrp::milp
