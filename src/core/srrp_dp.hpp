// Exact dynamic program for the stochastic uncapacitated lot-sizing
// structure of SRRP (the tree analogue of Wagner-Whitin; cf. Guan &
// Miller's polynomial algorithms for stochastic ULS).
//
// Structural property (extreme-point argument on the fixed-chi min-cost
// flow, plus "alpha cannot be reduced" optimality): some optimal
// solution has, for every producing vertex v, a descendant w such that
// the post-production inventory level equals the exact demand of the
// path v..w.  Consequently the inventory entering any vertex v takes a
// value from the O(|V|) candidate set { D(path to w) - D(path to
// parent(v)) } plus the initial-storage offset, and a memoised DP over
// (vertex, entering inventory) solves SRRP exactly in roughly
// O(|V|^3) time — microseconds at the paper's tree sizes, versus
// seconds-to-hours for branch & bound on the deterministic equivalent.
//
// Requires an uncapacitated instance (like Wagner-Whitin for DRRP).
#pragma once

#include "common/deadline.hpp"
#include "core/srrp.hpp"

namespace rrp::core {

/// Solves SRRP exactly by dynamic programming over the scenario tree.
/// Throws InvalidArgument when the bottleneck constraint is active.
/// The deadline is polled once per uncached (vertex, inventory) state;
/// on expiry the solve throws rrp::TimeLimitExceeded (the memo table
/// holds no sound partial policy).
SrrpPolicy solve_srrp_tree_dp(
    const SrrpInstance& instance,
    const common::Deadline& deadline = common::Deadline::unlimited());

}  // namespace rrp::core
