#include "core/evaluation.hpp"

#include <cmath>
#include <functional>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "market/trace_generator.hpp"

namespace rrp::core {

const PolicyStats& EvaluationResult::by_name(const std::string& name) const {
  for (const PolicyStats& p : policies) {
    if (p.policy == name) return p;
  }
  throw InvalidArgument("no such policy in the evaluation: " + name);
}

SimulationInputs make_trial_inputs(const EvaluationConfig& cfg,
                                   std::size_t trial) {
  RRP_EXPECTS(cfg.eval_hours >= 1);
  RRP_EXPECTS(cfg.history_hours >= 48);
  const auto trace = market::generate_trace(cfg.vm, cfg.seed);
  const auto hourly = trace.hourly();
  const std::size_t start = cfg.window_shift_hours * trial;
  RRP_EXPECTS(start + cfg.history_hours + cfg.eval_hours <= hourly.size());

  SimulationInputs in;
  in.vm = cfg.vm;
  in.history.assign(
      hourly.begin() + static_cast<long>(start),
      hourly.begin() + static_cast<long>(start + cfg.history_hours));
  in.actual_spot.assign(
      hourly.begin() + static_cast<long>(start + cfg.history_hours),
      hourly.begin() +
          static_cast<long>(start + cfg.history_hours + cfg.eval_hours));
  Rng rng(cfg.seed * 1315423911ULL + trial * 2654435761ULL);
  in.demand = generate_demand(cfg.eval_hours, cfg.demand, rng);
  in.initial_storage = cfg.initial_storage;

  // Revocation wiring: each trial gets its own hazard/storm draws, and
  // every policy within the trial shares them (paired comparisons).
  in.revocation = cfg.revocation;
  in.revocation.seed =
      cfg.revocation.seed ^ (cfg.seed + trial * 0x9e3779b97f4a7c15ULL);
  if (cfg.revocation.enabled) {
    const auto first = static_cast<long>(start + cfg.history_hours);
    const auto last =
        static_cast<long>(start + cfg.history_hours + cfg.eval_hours);
    in.intra_slot_max = trace.hourly_max(first, last);
    in.trace_revocations = trace.hourly_revocations(first, last);
  }
  return in;
}

EvaluationResult evaluate_policies(
    const EvaluationConfig& cfg, const std::vector<PolicyConfig>& policies) {
  RRP_EXPECTS(cfg.trials >= 2);
  RRP_EXPECTS(!policies.empty());
  for (const PolicyConfig& p : policies) p.validate();

  const std::size_t P = policies.size();
  std::vector<std::vector<double>> costs(P,
                                         std::vector<double>(cfg.trials));
  std::vector<std::vector<double>> overpays(
      P, std::vector<double>(cfg.trials));
  std::vector<std::vector<double>> oob(P, std::vector<double>(cfg.trials));
  std::vector<std::vector<double>> revoked(P,
                                           std::vector<double>(cfg.trials));
  std::vector<std::vector<double>> lost(P, std::vector<double>(cfg.trials));
  std::vector<std::vector<double>> interruption(
      P, std::vector<double>(cfg.trials));
  std::vector<double> ideals(cfg.trials);

  global_pool().parallel_for(cfg.trials, [&](std::size_t trial) {
    const SimulationInputs in = make_trial_inputs(cfg, trial);
    const double ideal = ideal_case_cost(in);
    ideals[trial] = ideal;
    for (std::size_t p = 0; p < P; ++p) {
      const SimulationResult r = simulate_policy(in, policies[p]);
      costs[p][trial] = r.total_cost();
      overpays[p][trial] = overpay_fraction(r.total_cost(), ideal);
      oob[p][trial] = static_cast<double>(r.out_of_bid_events);
      revoked[p][trial] = static_cast<double>(r.revoked_slots());
      lost[p][trial] = r.work_lost;
      interruption[p][trial] = r.interruption_cost();
    }
  });

  EvaluationResult result;
  result.mean_ideal_cost = stats::mean(ideals);
  const double z95 = 1.959963984540054;
  for (std::size_t p = 0; p < P; ++p) {
    PolicyStats s;
    s.policy = policies[p].name;
    s.per_trial_cost = costs[p];
    s.mean_cost = stats::mean(costs[p]);
    s.stddev_cost = stats::stddev(costs[p]);
    s.ci_half_width =
        z95 * s.stddev_cost / std::sqrt(static_cast<double>(cfg.trials));
    s.mean_overpay = stats::mean(overpays[p]);
    s.mean_out_of_bid = stats::mean(oob[p]);
    s.mean_revocations = stats::mean(revoked[p]);
    s.mean_work_lost = stats::mean(lost[p]);
    s.mean_interruption_cost = stats::mean(interruption[p]);
    result.policies.push_back(std::move(s));
  }
  return result;
}

std::vector<InterruptionRegime> standard_interruption_regimes() {
  return {
      {"calm", market::RevocationConfig::calm()},
      {"bid-cross", market::RevocationConfig::bid_crossing()},
      {"storm", market::RevocationConfig::storm()},
  };
}

std::vector<RegimeResult> evaluate_under_regimes(
    const EvaluationConfig& cfg, const std::vector<PolicyConfig>& policies,
    const std::vector<InterruptionRegime>& regimes) {
  RRP_EXPECTS(!regimes.empty());
  std::vector<RegimeResult> results;
  results.reserve(regimes.size());
  for (const InterruptionRegime& regime : regimes) {
    EvaluationConfig rcfg = cfg;
    rcfg.revocation = regime.config;
    // Keep the derived per-trial model seeds distinct per regime even
    // when a caller leaves every regime config's own seed at 0.
    rcfg.revocation.seed ^= std::hash<std::string>{}(regime.name);
    results.push_back(RegimeResult{regime.name,
                                   evaluate_policies(rcfg, policies)});
  }
  return results;
}

}  // namespace rrp::core
