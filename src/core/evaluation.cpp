#include "core/evaluation.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "market/trace_generator.hpp"

namespace rrp::core {

const PolicyStats& EvaluationResult::by_name(const std::string& name) const {
  for (const PolicyStats& p : policies) {
    if (p.policy == name) return p;
  }
  throw InvalidArgument("no such policy in the evaluation: " + name);
}

SimulationInputs make_trial_inputs(const EvaluationConfig& cfg,
                                   std::size_t trial) {
  RRP_EXPECTS(cfg.eval_hours >= 1);
  RRP_EXPECTS(cfg.history_hours >= 48);
  const auto trace = market::generate_trace(cfg.vm, cfg.seed);
  const auto hourly = trace.hourly();
  const std::size_t start = cfg.window_shift_hours * trial;
  RRP_EXPECTS(start + cfg.history_hours + cfg.eval_hours <= hourly.size());

  SimulationInputs in;
  in.vm = cfg.vm;
  in.history.assign(
      hourly.begin() + static_cast<long>(start),
      hourly.begin() + static_cast<long>(start + cfg.history_hours));
  in.actual_spot.assign(
      hourly.begin() + static_cast<long>(start + cfg.history_hours),
      hourly.begin() +
          static_cast<long>(start + cfg.history_hours + cfg.eval_hours));
  Rng rng(cfg.seed * 1315423911ULL + trial * 2654435761ULL);
  in.demand = generate_demand(cfg.eval_hours, cfg.demand, rng);
  in.initial_storage = cfg.initial_storage;
  return in;
}

EvaluationResult evaluate_policies(
    const EvaluationConfig& cfg, const std::vector<PolicyConfig>& policies) {
  RRP_EXPECTS(cfg.trials >= 2);
  RRP_EXPECTS(!policies.empty());
  for (const PolicyConfig& p : policies) p.validate();

  const std::size_t P = policies.size();
  std::vector<std::vector<double>> costs(P,
                                         std::vector<double>(cfg.trials));
  std::vector<std::vector<double>> overpays(
      P, std::vector<double>(cfg.trials));
  std::vector<std::vector<double>> oob(P, std::vector<double>(cfg.trials));
  std::vector<double> ideals(cfg.trials);

  global_pool().parallel_for(cfg.trials, [&](std::size_t trial) {
    const SimulationInputs in = make_trial_inputs(cfg, trial);
    const double ideal = ideal_case_cost(in);
    ideals[trial] = ideal;
    for (std::size_t p = 0; p < P; ++p) {
      const SimulationResult r = simulate_policy(in, policies[p]);
      costs[p][trial] = r.total_cost();
      overpays[p][trial] = overpay_fraction(r.total_cost(), ideal);
      oob[p][trial] = static_cast<double>(r.out_of_bid_events);
    }
  });

  EvaluationResult result;
  result.mean_ideal_cost = stats::mean(ideals);
  const double z95 = 1.959963984540054;
  for (std::size_t p = 0; p < P; ++p) {
    PolicyStats s;
    s.policy = policies[p].name;
    s.per_trial_cost = costs[p];
    s.mean_cost = stats::mean(costs[p]);
    s.stddev_cost = stats::stddev(costs[p]);
    s.ci_half_width =
        z95 * s.stddev_cost / std::sqrt(static_cast<double>(cfg.trials));
    s.mean_overpay = stats::mean(overpays[p]);
    s.mean_out_of_bid = stats::mean(oob[p]);
    result.policies.push_back(std::move(s));
  }
  return result;
}

}  // namespace rrp::core
