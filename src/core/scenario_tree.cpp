#include "core/scenario_tree.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace rrp::core {

ScenarioTree ScenarioTree::build(
    std::span<const std::vector<PricePoint>> stage_supports) {
  RRP_EXPECTS(!stage_supports.empty());
  for (const auto& support : stage_supports) {
    RRP_EXPECTS(!support.empty());
    double total = 0.0;
    for (const PricePoint& p : support) {
      RRP_EXPECTS(p.price > 0.0);
      RRP_EXPECTS(p.prob > 0.0);
      total += p.prob;
    }
    RRP_EXPECTS(std::fabs(total - 1.0) < 1e-6);
  }

  ScenarioTree tree;
  tree.num_stages_ = stage_supports.size();
  tree.vertices_.push_back(ScenarioVertex{});  // root
  tree.by_stage_.assign(tree.num_stages_ + 1, {});
  tree.by_stage_[0].push_back(0);

  std::vector<std::size_t> frontier = {0};
  for (std::size_t stage = 1; stage <= tree.num_stages_; ++stage) {
    const auto& support = stage_supports[stage - 1];
    std::vector<std::size_t> next;
    next.reserve(frontier.size() * support.size());
    for (std::size_t parent : frontier) {
      for (const PricePoint& p : support) {
        ScenarioVertex v;
        v.parent = parent;
        v.stage = stage;
        v.price = p.price;
        v.out_of_bid = p.out_of_bid;
        v.branch_prob = p.prob;
        v.path_prob = tree.vertices_[parent].path_prob * p.prob;
        tree.vertices_.push_back(v);
        next.push_back(tree.vertices_.size() - 1);
        tree.by_stage_[stage].push_back(tree.vertices_.size() - 1);
      }
    }
    frontier = std::move(next);
  }

  tree.children_.assign(tree.vertices_.size(), {});
  for (std::size_t v = 1; v < tree.vertices_.size(); ++v)
    tree.children_[tree.vertices_[v].parent].push_back(v);
  return tree;
}

ScenarioTree ScenarioTree::build_conditional(
    const std::vector<PricePoint>& initial, std::size_t stages,
    const ConditionalSupport& conditional) {
  RRP_EXPECTS(stages >= 1);
  auto check = [](const std::vector<PricePoint>& support) {
    RRP_EXPECTS(!support.empty());
    double total = 0.0;
    for (const PricePoint& p : support) {
      RRP_EXPECTS(p.price > 0.0);
      RRP_EXPECTS(p.prob > 0.0);
      total += p.prob;
    }
    RRP_EXPECTS(std::fabs(total - 1.0) < 1e-6);
  };
  check(initial);

  ScenarioTree tree;
  tree.num_stages_ = stages;
  tree.vertices_.push_back(ScenarioVertex{});  // root
  tree.by_stage_.assign(stages + 1, {});
  tree.by_stage_[0].push_back(0);

  std::vector<std::size_t> frontier = {0};
  for (std::size_t stage = 1; stage <= stages; ++stage) {
    std::vector<std::size_t> next;
    for (std::size_t parent : frontier) {
      const std::vector<PricePoint> support =
          stage == 1 ? initial
                     : conditional(tree.vertices_[parent], stage);
      if (stage > 1) check(support);
      for (const PricePoint& p : support) {
        ScenarioVertex v;
        v.parent = parent;
        v.stage = stage;
        v.price = p.price;
        v.out_of_bid = p.out_of_bid;
        v.branch_prob = p.prob;
        v.path_prob = tree.vertices_[parent].path_prob * p.prob;
        tree.vertices_.push_back(v);
        next.push_back(tree.vertices_.size() - 1);
        tree.by_stage_[stage].push_back(tree.vertices_.size() - 1);
      }
    }
    frontier = std::move(next);
  }

  tree.children_.assign(tree.vertices_.size(), {});
  for (std::size_t v = 1; v < tree.vertices_.size(); ++v)
    tree.children_[tree.vertices_[v].parent].push_back(v);
  return tree;
}

std::span<const std::size_t> ScenarioTree::children(std::size_t v) const {
  RRP_EXPECTS(v < vertices_.size());
  return children_[v];
}

const std::vector<std::size_t>& ScenarioTree::stage_vertices(
    std::size_t stage) const {
  RRP_EXPECTS(stage < by_stage_.size());
  return by_stage_[stage];
}

const std::vector<std::size_t>& ScenarioTree::leaves() const {
  return by_stage_[num_stages_];
}

std::vector<std::size_t> ScenarioTree::path_from_root(std::size_t v) const {
  RRP_EXPECTS(v < vertices_.size());
  std::vector<std::size_t> path;
  while (v != 0) {
    path.push_back(v);
    v = vertices_[v].parent;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

double ScenarioTree::stage_probability_mass(std::size_t stage) const {
  double mass = 0.0;
  for (std::size_t v : stage_vertices(stage)) mass += vertices_[v].path_prob;
  return mass;
}

}  // namespace rrp::core
