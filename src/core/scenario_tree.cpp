#include "core/scenario_tree.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/error.hpp"
#include "common/invariant.hpp"
#include "obs/obs.hpp"

namespace rrp::core {

ScenarioTree ScenarioTree::build(
    std::span<const std::vector<PricePoint>> stage_supports) {
  RRP_EXPECTS(!stage_supports.empty());
  for (const auto& support : stage_supports) {
    RRP_EXPECTS(!support.empty());
    double total = 0.0;
    for (const PricePoint& p : support) {
      RRP_EXPECTS(p.price > 0.0);
      RRP_EXPECTS(p.prob > 0.0);
      total += p.prob;
    }
    RRP_EXPECTS(std::fabs(total - 1.0) < 1e-6);
  }

  ScenarioTree tree;
  tree.num_stages_ = stage_supports.size();
  tree.vertices_.push_back(ScenarioVertex{});  // root
  tree.by_stage_.assign(tree.num_stages_ + 1, {});
  tree.by_stage_[0].push_back(0);

  std::vector<std::size_t> frontier = {0};
  for (std::size_t stage = 1; stage <= tree.num_stages_; ++stage) {
    const auto& support = stage_supports[stage - 1];
    std::vector<std::size_t> next;
    next.reserve(frontier.size() * support.size());
    for (std::size_t parent : frontier) {
      for (const PricePoint& p : support) {
        ScenarioVertex v;
        v.parent = parent;
        v.stage = stage;
        v.price = p.price;
        v.out_of_bid = p.out_of_bid;
        v.branch_prob = p.prob;
        v.path_prob = tree.vertices_[parent].path_prob * p.prob;
        tree.vertices_.push_back(v);
        next.push_back(tree.vertices_.size() - 1);
        tree.by_stage_[stage].push_back(tree.vertices_.size() - 1);
      }
    }
    frontier = std::move(next);
  }

  tree.children_.assign(tree.vertices_.size(), {});
  for (std::size_t v = 1; v < tree.vertices_.size(); ++v)
    tree.children_[tree.vertices_[v].parent].push_back(v);
#if RRP_INVARIANTS_ENABLED
  tree.validate();
#endif
  return tree;
}

ScenarioTree ScenarioTree::build_conditional(
    const std::vector<PricePoint>& initial, std::size_t stages,
    const ConditionalSupport& conditional) {
  RRP_EXPECTS(stages >= 1);
  auto check = [](const std::vector<PricePoint>& support) {
    RRP_EXPECTS(!support.empty());
    double total = 0.0;
    for (const PricePoint& p : support) {
      RRP_EXPECTS(p.price > 0.0);
      RRP_EXPECTS(p.prob > 0.0);
      total += p.prob;
    }
    RRP_EXPECTS(std::fabs(total - 1.0) < 1e-6);
  };
  check(initial);

  ScenarioTree tree;
  tree.num_stages_ = stages;
  tree.vertices_.push_back(ScenarioVertex{});  // root
  tree.by_stage_.assign(stages + 1, {});
  tree.by_stage_[0].push_back(0);

  std::vector<std::size_t> frontier = {0};
  for (std::size_t stage = 1; stage <= stages; ++stage) {
    std::vector<std::size_t> next;
    for (std::size_t parent : frontier) {
      const std::vector<PricePoint> support =
          stage == 1 ? initial
                     : conditional(tree.vertices_[parent], stage);
      if (stage > 1) check(support);
      for (const PricePoint& p : support) {
        ScenarioVertex v;
        v.parent = parent;
        v.stage = stage;
        v.price = p.price;
        v.out_of_bid = p.out_of_bid;
        v.branch_prob = p.prob;
        v.path_prob = tree.vertices_[parent].path_prob * p.prob;
        tree.vertices_.push_back(v);
        next.push_back(tree.vertices_.size() - 1);
        tree.by_stage_[stage].push_back(tree.vertices_.size() - 1);
      }
    }
    frontier = std::move(next);
  }

  tree.children_.assign(tree.vertices_.size(), {});
  for (std::size_t v = 1; v < tree.vertices_.size(); ++v)
    tree.children_[tree.vertices_[v].parent].push_back(v);
#if RRP_INVARIANTS_ENABLED
  tree.validate();
#endif
  return tree;
}

bool ScenarioTree::repair(
    std::span<const std::vector<PricePoint>> stage_supports) {
  RRP_EXPECTS(!stage_supports.empty());
  for (const auto& support : stage_supports) {
    RRP_EXPECTS(!support.empty());
    double total = 0.0;
    for (const PricePoint& p : support) {
      RRP_EXPECTS(p.price > 0.0);
      RRP_EXPECTS(p.prob > 0.0);
      total += p.prob;
    }
    RRP_EXPECTS(std::fabs(total - 1.0) < 1e-6);
  }

  const std::size_t new_stages = stage_supports.size();
  const std::size_t keep = std::min(num_stages_, new_stages);

  // Shape checks first, so a refusal leaves the tree untouched.  Every
  // overlapping stage must branch with the new support's width
  // (conditional trees with per-parent supports fail here)...
  for (std::size_t stage = 1; stage <= keep; ++stage) {
    const std::size_t width = stage_supports[stage - 1].size();
    for (std::size_t parent : by_stage_[stage - 1])
      if (children_[parent].size() != width) return false;
  }
  // ...and retiring stages slices the vertex array, which needs the
  // stage-contiguous id layout build() produces.
  std::size_t retained = 0;
  for (std::size_t stage = 0; stage <= keep; ++stage) {
    for (std::size_t v : by_stage_[stage])
      if (v != retained++) return false;
  }

  RRP_TRACE_SPAN("tree.repair");
  RRP_TRACE_ARG("stages", new_stages);
  RRP_COUNTER_ADD("rrp.tree.repairs", 1);

  if (new_stages < num_stages_) {
    vertices_.resize(retained);
    by_stage_.resize(new_stages + 1);
  }

  // Rewrite the surviving stages in build order: a parent's path
  // probability is final before any child is touched, so every product
  // below is the exact multiplication build() would perform.
  for (std::size_t stage = 1; stage <= keep; ++stage) {
    const auto& support = stage_supports[stage - 1];
    for (std::size_t parent : by_stage_[stage - 1]) {
      for (std::size_t j = 0; j < support.size(); ++j) {
        const PricePoint& p = support[j];
        ScenarioVertex& v = vertices_[children_[parent][j]];
        v.price = p.price;
        v.out_of_bid = p.out_of_bid;
        v.branch_prob = p.prob;
        v.path_prob = vertices_[parent].path_prob * p.prob;
      }
    }
  }

  // Extend with the frontier loop build() uses for brand-new stages.
  if (new_stages > num_stages_) {
    by_stage_.resize(new_stages + 1);
    std::vector<std::size_t> frontier = by_stage_[num_stages_];
    for (std::size_t stage = num_stages_ + 1; stage <= new_stages;
         ++stage) {
      const auto& support = stage_supports[stage - 1];
      std::vector<std::size_t> next;
      next.reserve(frontier.size() * support.size());
      for (std::size_t parent : frontier) {
        for (const PricePoint& p : support) {
          ScenarioVertex v;
          v.parent = parent;
          v.stage = stage;
          v.price = p.price;
          v.out_of_bid = p.out_of_bid;
          v.branch_prob = p.prob;
          v.path_prob = vertices_[parent].path_prob * p.prob;
          vertices_.push_back(v);
          next.push_back(vertices_.size() - 1);
          by_stage_[stage].push_back(vertices_.size() - 1);
        }
      }
      frontier = std::move(next);
    }
  }

  num_stages_ = new_stages;
  children_.assign(vertices_.size(), {});
  for (std::size_t v = 1; v < vertices_.size(); ++v)
    children_[vertices_[v].parent].push_back(v);

#if RRP_INVARIANTS_ENABLED
  validate();
  // The repair-vs-rebuild contract, checked literally: the repaired
  // tree must be the tree a fresh build would produce.
  const ScenarioTree rebuilt = build(stage_supports);
  auto fail = [](const char* cond, const std::string& detail) {
    ::rrp::detail::invariant_fail("invariant", cond, __FILE__, __LINE__,
                                  detail);
  };
  if (vertices_.size() != rebuilt.vertices_.size())
    fail("repaired tree has rebuild's vertex count",
         std::to_string(vertices_.size()) + " vs " +
             std::to_string(rebuilt.vertices_.size()));
  for (std::size_t v = 0; v < vertices_.size(); ++v) {
    const ScenarioVertex& a = vertices_[v];
    const ScenarioVertex& b = rebuilt.vertices_[v];
    if (a.parent != b.parent || a.stage != b.stage ||
        a.out_of_bid != b.out_of_bid ||
        std::fabs(a.price - b.price) > 1e-12 ||
        std::fabs(a.branch_prob - b.branch_prob) > 1e-12 ||
        std::fabs(a.path_prob - b.path_prob) > 1e-12)
      fail("repaired vertex matches rebuilt vertex",
           "vertex " + std::to_string(v));
  }
#endif
  return true;
}

std::span<const std::size_t> ScenarioTree::children(std::size_t v) const {
  RRP_EXPECTS(v < vertices_.size());
  return children_[v];
}

const std::vector<std::size_t>& ScenarioTree::stage_vertices(
    std::size_t stage) const {
  RRP_EXPECTS(stage < by_stage_.size());
  return by_stage_[stage];
}

const std::vector<std::size_t>& ScenarioTree::leaves() const {
  return by_stage_[num_stages_];
}

std::vector<std::size_t> ScenarioTree::path_from_root(std::size_t v) const {
  RRP_EXPECTS(v < vertices_.size());
  std::vector<std::size_t> path;
  while (v != 0) {
    path.push_back(v);
    v = vertices_[v].parent;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

double ScenarioTree::stage_probability_mass(std::size_t stage) const {
  double mass = 0.0;
  for (std::size_t v : stage_vertices(stage)) mass += vertices_[v].path_prob;
  return mass;
}

void ScenarioTree::validate() const {
  auto fail = [](const char* cond, const std::string& detail) {
    ::rrp::detail::invariant_fail("invariant", cond, __FILE__, __LINE__,
                                  detail);
  };
  if (vertices_.empty() || children_.size() != vertices_.size())
    fail("tree arrays are consistent", "vertex/children size mismatch");

  for (std::size_t v = 1; v < vertices_.size(); ++v) {
    const ScenarioVertex& vert = vertices_[v];
    if (vert.parent >= vertices_.size() || vert.parent == v)
      fail("vertex parent is a valid earlier vertex",
           "vertex " + std::to_string(v));
    const ScenarioVertex& par = vertices_[vert.parent];
    if (vert.stage != par.stage + 1)
      fail("child stage == parent stage + 1",
           "vertex " + std::to_string(v) + " at stage " +
               std::to_string(vert.stage) + " under stage " +
               std::to_string(par.stage));
    if (!(vert.branch_prob > 0.0) || vert.branch_prob > 1.0 + 1e-9)
      fail("branch probability in (0, 1]", "vertex " + std::to_string(v));
    if (std::fabs(vert.path_prob - par.path_prob * vert.branch_prob) >
        1e-12 + 1e-9 * par.path_prob)
      fail("path_prob == parent.path_prob * branch_prob",
           "vertex " + std::to_string(v));
    const auto& sibs = children_[vert.parent];
    if (std::find(sibs.begin(), sibs.end(), v) == sibs.end())
      fail("child is listed under its parent", "vertex " + std::to_string(v));
  }
  // Branch probabilities of every expanded vertex sum to 1.
  for (std::size_t v = 0; v < vertices_.size(); ++v) {
    if (children_[v].empty()) continue;
    double total = 0.0;
    for (std::size_t c : children_[v]) {
      if (vertices_[c].parent != v)
        fail("children point back to their parent",
             "vertex " + std::to_string(c));
      total += vertices_[c].branch_prob;
    }
    if (std::fabs(total - 1.0) > 1e-6)
      fail("branch probabilities sum to 1",
           "vertex " + std::to_string(v) + " sums to " +
               std::to_string(total));
  }
  // Every fully-expanded stage carries unit probability mass.
  for (std::size_t stage = 0; stage <= num_stages_; ++stage) {
    const double mass = stage_probability_mass(stage);
    if (std::fabs(mass - 1.0) > 1e-6)
      fail("stage probability mass is 1", "stage " + std::to_string(stage) +
                                              " has mass " +
                                              std::to_string(mass));
  }
}

}  // namespace rrp::core
