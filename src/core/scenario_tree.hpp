// Multistage scenario tree (paper Section IV-D, Figure 9).
//
// Stage 0 is the root ("the current state of the world"); each stage
// t in {1..T} corresponds to time slot t, and a vertex at stage t is a
// distinguishable price state reachable at that slot.  Every non-root
// vertex stores the slot's realised compute price (a spot support
// point, or the on-demand price for an out-of-bid state) together with
// its conditional branch probability; path probabilities multiply down
// the tree and sum to 1 within each stage.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "core/price_distribution.hpp"

namespace rrp::core {

struct ScenarioVertex {
  std::size_t parent = 0;       ///< root points to itself
  std::size_t stage = 0;        ///< tau(v); root is stage 0
  double price = 0.0;           ///< Cp realisation (unused at the root)
  bool out_of_bid = false;
  double branch_prob = 1.0;     ///< conditional probability given parent
  double path_prob = 1.0;       ///< p_v: product along the root path
};

class ScenarioTree {
 public:
  /// Builds a tree with `stage_supports.size()` decision stages; every
  /// vertex at stage t-1 branches into stage_supports[t-1]'s points.
  /// Each stage's probabilities must sum to 1.
  static ScenarioTree build(
      std::span<const std::vector<PricePoint>> stage_supports);

  /// Builds a tree whose branch distributions are *conditional on the
  /// parent state*: stage-1 vertices come from `initial`, and every
  /// other vertex's children come from `conditional(parent_point,
  /// stage)` — e.g. a Markov price model where tomorrow's distribution
  /// depends on today's price bucket.  Each returned support must be
  /// non-empty with probabilities summing to 1.
  using ConditionalSupport = std::function<std::vector<PricePoint>(
      const ScenarioVertex& parent, std::size_t stage)>;
  static ScenarioTree build_conditional(
      const std::vector<PricePoint>& initial, std::size_t stages,
      const ConditionalSupport& conditional);

  /// Incremental repair (ISSUE 10): reshapes this tree in place so it
  /// represents `stage_supports` — rewrites prices and probabilities in
  /// stage order, retires trailing stages, extends new ones — instead
  /// of reallocating the whole tree.  Requires the per-stage branching
  /// widths to match on overlapping stages and the stage-contiguous
  /// vertex layout build() produces; returns false with the tree
  /// untouched when the shape does not fit (e.g. conditional trees with
  /// per-parent widths, or changed stage widths), in which case the
  /// caller rebuilds.  A successful repair is arithmetically identical
  /// to build(stage_supports) — the same products in the same order —
  /// and RRP_CHECK_INVARIANTS builds verify that field by field against
  /// a fresh build.
  bool repair(std::span<const std::vector<PricePoint>> stage_supports);

  std::size_t num_vertices() const { return vertices_.size(); }
  std::size_t num_stages() const { return num_stages_; }  ///< T
  const ScenarioVertex& vertex(std::size_t v) const { return vertices_[v]; }
  std::size_t root() const { return 0; }

  /// Children of a vertex, in support order.
  std::span<const std::size_t> children(std::size_t v) const;

  /// All vertices at a given stage (stage 0 = {root}).
  const std::vector<std::size_t>& stage_vertices(std::size_t stage) const;

  /// Leaves (= scenarios, paper's set S).
  const std::vector<std::size_t>& leaves() const;

  /// Root-to-v path, excluding the root (P(v) in the paper).
  std::vector<std::size_t> path_from_root(std::size_t v) const;

  /// Sum of path probabilities over a stage (should be ~1; exposed for
  /// validation and tests).
  double stage_probability_mass(std::size_t stage) const;

  /// Full structural validation: parent/child pointers agree, stages
  /// layer correctly (child stage = parent stage + 1), every non-leaf's
  /// branch probabilities sum to 1, path probabilities multiply down the
  /// tree, and each stage's probability mass is ~1.  Throws
  /// rrp::ContractViolation on the first inconsistency.  Runs
  /// automatically after build()/build_conditional() in
  /// RRP_CHECK_INVARIANTS builds; callable directly from tests.
  void validate() const;

 private:
  std::vector<ScenarioVertex> vertices_;
  std::vector<std::vector<std::size_t>> children_;
  std::vector<std::vector<std::size_t>> by_stage_;
  std::size_t num_stages_ = 0;
};

}  // namespace rrp::core
