// Rental policies for the spot-market experiments (paper Section V-C).
//
// A policy describes (a) which planner runs at each decision point
// (none / DRRP / SRRP), (b) how bids are formed (SARIMA prediction,
// the historical expected mean, always-on-demand, or oracle foresight)
// and (c) the planning lookahead.  Figure 12(a)'s five curves map to:
//
//   on-demand     : DRRP planner, on-demand prices, no auction
//   det-predict   : DRRP with SARIMA-predicted prices as bids
//   sto-predict   : SRRP with SARIMA-predicted bids
//   det-exp-mean  : DRRP bidding the historical mean price
//   sto-exp-mean  : SRRP bidding the historical mean price
//
// plus the oracle (DRRP on the realised prices) as the ideal-case
// denominator.
#pragma once

#include <string>
#include <vector>

#include "common/deadline.hpp"
#include "milp/branch_and_bound.hpp"
#include "timeseries/arima.hpp"

namespace rrp::core {

enum class PlannerKind { NoPlan, Drrp, Srrp };

/// How a re-plan refreshes its models (ISSUE 10).  Incremental is the
/// default: sliding-window distributions, warm SARIMA refits and
/// scenario-tree repair make the per-replan cost a function of new
/// data since the last refresh.  Rebuild recomputes everything from the
/// full window each time and serves as the equivalence oracle: for
/// expected-mean policies both modes produce bit-identical plans
/// (property-tested in test_replan_equivalence.cpp).
enum class ReplanMode { Rebuild, Incremental };

const char* to_string(ReplanMode mode);

/// The SARIMA refit defaults used by every policy: the historical
/// 4000-evaluation Nelder-Mead budget for cold fits, the stock drift
/// thresholds for warm maintenance.
ts::SarimaRefitOptions default_policy_sarima_refit();

enum class BidStrategy {
  Predicted,       ///< SARIMA day-ahead forecasts (Section IV-A)
  ExpectedMean,    ///< fixed bid at the historical mean price
  FixedValue,      ///< fixed bid at PolicyConfig::fixed_bid
  OnDemandAlways,  ///< no auction: rent on-demand at lambda
  Oracle,          ///< perfect foresight of realised prices
  /// Realised prices deviated by PolicyConfig::bid_deviation — the
  /// artificial +/-2%..10% bids of Figure 12(b)'s precision study.
  OracleDeviated,
};

/// Which exact solver executes the per-slot plans.
enum class PlannerBackend {
  /// Wagner-Whitin (DRRP) / tree DP (SRRP): exact and near-instant for
  /// the uncapacitated instances the rolling simulator produces.
  DynamicProgramming,
  /// The MILP deterministic equivalents; identical optima, orders of
  /// magnitude slower.  Kept selectable for cross-validation.
  Milp,
};

struct PolicyConfig {
  std::string name;
  PlannerKind planner = PlannerKind::Drrp;
  PlannerBackend backend = PlannerBackend::DynamicProgramming;
  BidStrategy bids = BidStrategy::ExpectedMean;
  double fixed_bid = 0.0;        ///< used by BidStrategy::FixedValue
  double bid_deviation = 0.0;    ///< used by BidStrategy::OracleDeviated
  std::size_t lookahead = 24;    ///< DRRP horizon (paper: 24h)
  /// Re-plan cadence (paper Section V-D: "a revised plan is issued
  /// periodically (after a few slots of the whole planning horizon)").
  /// 1 = re-plan every slot.  Between re-plans a DRRP policy executes
  /// its cached schedule; an SRRP policy follows the scenario-tree path
  /// matching the realised prices (true multistage recourse).
  std::size_t replan_every = 1;
  /// SRRP scenario-tree branching per stage, bushy-early lean-late;
  /// resized to the lookahead (padded with 1s) when shorter.
  std::vector<std::size_t> stage_widths = {4, 3, 2, 1, 1, 1};
  std::size_t distribution_support = 12;  ///< base distribution clusters
  /// SRRP only: build the scenario tree from a fitted Markov price
  /// chain (stage distributions conditional on the parent state)
  /// instead of the paper's unconditional base distribution.
  bool markov_tree = false;
  /// Hours of history used for the base distribution / SARIMA fit.
  std::size_t fit_window = 24 * 60;
  /// Hours of trailing history fed to the SARIMA forecaster at each
  /// re-plan (bounded so forecast cost does not grow with total
  /// history); clamped to the observations available.
  std::size_t forecast_window = 24 * 14;
  /// Refresh the price models every this many re-plans; 0 (default)
  /// keeps the classic fit-once behaviour where models are estimated at
  /// construction and never touched again.
  std::size_t model_update_every = 0;
  /// Model-refresh strategy when model_update_every > 0; see ReplanMode.
  ReplanMode replan_mode = ReplanMode::Incremental;
  /// Drift thresholds and warm-start budget for incremental SARIMA
  /// maintenance; `sarima_refit.scratch` is also the option set for the
  /// construction-time fit and every Rebuild-mode fit.
  ts::SarimaRefitOptions sarima_refit = default_policy_sarima_refit();
  milp::BnbOptions solver;
  /// Wall-clock budget (seconds) for each re-plan solve; 0 disables.
  /// On expiry the MILP backend returns its best incumbent (anytime
  /// contract); when no plan is usable the rolling-horizon recovery
  /// ladder degrades the slot instead of aborting the simulation.
  double replan_time_limit = 0.0;
  /// Clock behind the per-re-plan deadlines; tests inject a FakeClock
  /// here for deterministic expiry.  nullptr = process monotonic clock.
  const common::Clock* clock = nullptr;

  void validate() const;
};

/// Figure 10's baseline: rent every slot with positive demand.
PolicyConfig no_plan_policy();

/// Figure 12(a) policies (paper names).
PolicyConfig on_demand_policy();
PolicyConfig det_predict_policy();
PolicyConfig sto_predict_policy();
PolicyConfig det_exp_mean_policy();
PolicyConfig sto_exp_mean_policy();

/// The ideal-case planner: DRRP fed the realised spot prices.
PolicyConfig oracle_policy();

/// Extension: SRRP over a Markov-conditional scenario tree (stage
/// distributions conditioned on the parent price state) with
/// expected-mean bids.
PolicyConfig sto_markov_policy();

/// All five evaluated policies of Figure 12(a), in plot order.
std::vector<PolicyConfig> figure12a_policies();

/// The hostile-market comparison set (revocation-aware evaluation):
/// no-plan, on-demand, DRRP and SRRP with expected-mean bids, plus a
/// "wagner-whitin" cadence variant that commits its DRRP schedule for 6
/// slots — maximally exposed to mid-plan revocations, which is exactly
/// what the interruption table is meant to surface.
std::vector<PolicyConfig> interruption_policies();

}  // namespace rrp::core
