#include "core/demand.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace rrp::core {

std::vector<double> generate_demand(std::size_t slots,
                                    const DemandConfig& config, Rng& rng) {
  RRP_EXPECTS(config.sd > 0.0);
  RRP_EXPECTS(config.mean > config.floor);
  std::vector<double> d(slots);
  for (auto& v : d)
    v = rng.truncated_normal(config.mean, config.sd, config.floor);
  return d;
}

std::vector<double> constant_demand(std::size_t slots, double level) {
  RRP_EXPECTS(level >= 0.0);
  return std::vector<double>(slots, level);
}

std::vector<double> diurnal_demand(std::size_t slots, double base,
                                   double amplitude) {
  RRP_EXPECTS(base >= 0.0);
  RRP_EXPECTS(amplitude >= 0.0);
  std::vector<double> d(slots);
  for (std::size_t t = 0; t < slots; ++t) {
    const double v =
        base * (1.0 + amplitude *
                          std::sin(2.0 * M_PI * static_cast<double>(t % 24) /
                                   24.0));
    d[t] = std::max(v, 0.0);
  }
  return d;
}

}  // namespace rrp::core
