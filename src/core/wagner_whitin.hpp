// Exact Wagner-Whitin dynamic program for DRRP.
//
// The paper notes that DRRP "is consistent with the dynamic lot-sizing
// problem commonly met in the field of production planning"; when the
// bottleneck constraint (3) is inactive (as in the paper's evaluation),
// the instance is an *uncapacitated* single-item lot-sizing problem and
// the classic Wagner-Whitin zero-inventory-ordering property applies:
// an optimal plan generates data only in slots where inventory has run
// out, and each generation covers a consecutive block of future demand.
// That yields an O(T^2) dynamic program producing the same optimum as
// the MILP — used as the fast planning path inside the rolling-horizon
// simulator and as an independent oracle in the test suite.
#pragma once

#include "common/deadline.hpp"
#include "core/drrp.hpp"

namespace rrp::core {

/// Solves the instance exactly by dynamic programming.  Requires the
/// bottleneck constraint to be inactive (bottleneck_rate == 0 or no
/// capacities); throws InvalidArgument otherwise.  The deadline is
/// polled once per DP stage; on expiry the solve throws
/// rrp::TimeLimitExceeded (an exact DP has no sound partial answer).
RentalPlan solve_drrp_wagner_whitin(
    const DrrpInstance& instance,
    const common::Deadline& deadline = common::Deadline::unlimited());

}  // namespace rrp::core
