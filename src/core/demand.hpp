// Customer demand streams D(i,t).
//
// The paper samples hourly data-service demand from N(0.4, 0.2) GB,
// truncated to positive values (Section V-A), and sweeps the mean from
// 0.2 to 1.6 GB/h in the Figure 11 sensitivity analysis.  Deterministic
// patterns are provided for tests and examples.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"

namespace rrp::core {

struct DemandConfig {
  double mean = 0.4;  ///< GB per slot
  double sd = 0.2;
  double floor = 0.0;  ///< demand is always positive in the paper
};

/// Samples `slots` demands from the truncated normal.
std::vector<double> generate_demand(std::size_t slots,
                                    const DemandConfig& config, Rng& rng);

/// Constant demand (useful for analytic test cases).
std::vector<double> constant_demand(std::size_t slots, double level);

/// Day-shaped demand: base * (1 + amplitude * sin(2*pi*t/24)), clamped
/// at zero.
std::vector<double> diurnal_demand(std::size_t slots, double base,
                                   double amplitude);

}  // namespace rrp::core
