#include "core/markov_prices.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace rrp::core {

MarkovPriceModel MarkovPriceModel::fit(std::span<const double> hourly,
                                       std::size_t states) {
  RRP_EXPECTS(states >= 2);
  RRP_EXPECTS(hourly.size() >= 4 * states);
  for (double p : hourly) RRP_EXPECTS(p > 0.0);

  MarkovPriceModel model;
  // Quantile bucket boundaries; duplicates (heavily quantised data)
  // are collapsed, so the effective state count may be smaller.
  std::vector<double> bounds;
  for (std::size_t k = 1; k < states; ++k) {
    const double q = stats::quantile(
        hourly, static_cast<double>(k) / static_cast<double>(states));
    if (bounds.empty() || q > bounds.back() + 1e-12) bounds.push_back(q);
  }
  model.boundaries_ = bounds;
  const std::size_t n_states = bounds.size() + 1;

  // Representatives: mean price within each bucket.
  std::vector<double> sums(n_states, 0.0);
  std::vector<std::size_t> counts(n_states, 0);
  auto bucket = [&bounds](double price) {
    return static_cast<std::size_t>(
        std::upper_bound(bounds.begin(), bounds.end(), price) -
        bounds.begin());
  };
  for (double p : hourly) {
    const std::size_t b = bucket(p);
    sums[b] += p;
    ++counts[b];
  }
  model.prices_.resize(n_states);
  for (std::size_t b = 0; b < n_states; ++b) {
    // An empty interior bucket can only arise from pathological
    // boundary collapse; fall back to the midpoint of its bounds.
    if (counts[b] > 0) {
      model.prices_[b] = sums[b] / static_cast<double>(counts[b]);
    } else if (b == 0) {
      model.prices_[b] = bounds.front();
    } else if (b == n_states - 1) {
      model.prices_[b] = bounds.back();
    } else {
      model.prices_[b] = 0.5 * (bounds[b - 1] + bounds[b]);
    }
  }

  // Transition counts with Laplace smoothing.
  model.transition_.assign(n_states, std::vector<double>(n_states, 0.1));
  for (std::size_t t = 1; t < hourly.size(); ++t)
    model.transition_[bucket(hourly[t - 1])][bucket(hourly[t])] += 1.0;
  for (auto& row : model.transition_) {
    double total = 0.0;
    for (double v : row) total += v;
    for (double& v : row) v /= total;
  }
  return model;
}

std::size_t MarkovPriceModel::state_of(double price) const {
  return static_cast<std::size_t>(
      std::upper_bound(boundaries_.begin(), boundaries_.end(), price) -
      boundaries_.begin());
}

std::vector<PricePoint> MarkovPriceModel::conditional_support(
    std::size_t state) const {
  RRP_EXPECTS(state < num_states());
  std::vector<PricePoint> out;
  out.reserve(num_states());
  for (std::size_t next = 0; next < num_states(); ++next) {
    out.push_back(
        PricePoint{prices_[next], transition_[state][next], false});
  }
  return out;
}

std::vector<PricePoint> MarkovPriceModel::conditional_truncated(
    std::size_t state, double bid, double lambda,
    std::size_t max_points) const {
  RRP_EXPECTS(bid >= 0.0);
  RRP_EXPECTS(lambda > 0.0);
  RRP_EXPECTS(max_points >= 1);
  // Bid truncation (paper eq. (10)) applied to the conditional row.
  std::vector<PricePoint> kept;
  double in_bid = 0.0;
  for (const PricePoint& p : conditional_support(state)) {
    if (p.price <= bid) {
      kept.push_back(p);
      in_bid += p.prob;
    }
  }
  const double oob = 1.0 - in_bid;
  if (oob > 1e-12) {
    kept.push_back(PricePoint{lambda, oob, true});
  } else if (!kept.empty()) {
    kept.back().prob += oob;
  }
  RRP_ENSURES(!kept.empty());
  return reduce_support(kept, max_points);
}

ScenarioTree MarkovPriceModel::build_tree(
    double current_price, std::span<const double> bids, double lambda,
    std::span<const std::size_t> widths) const {
  RRP_EXPECTS(!bids.empty());
  RRP_EXPECTS(widths.size() == bids.size());
  const std::vector<double> bids_copy(bids.begin(), bids.end());
  const std::vector<std::size_t> widths_copy(widths.begin(), widths.end());

  const auto initial = conditional_truncated(
      state_of(current_price), bids_copy[0], lambda, widths_copy[0]);
  return ScenarioTree::build_conditional(
      initial, bids_copy.size(),
      [this, bids_copy, widths_copy, lambda](const ScenarioVertex& parent,
                                             std::size_t stage) {
        // An out-of-bid parent carries price = lambda, which clamps to
        // the highest bucket — conditioning on "the market was above
        // our bid".
        const std::size_t state = state_of(parent.price);
        return conditional_truncated(state, bids_copy[stage - 1], lambda,
                                     widths_copy[stage - 1]);
      });
}

}  // namespace rrp::core
