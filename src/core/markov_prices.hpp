// Markov spot-price model: an upgrade of the paper's base distribution.
//
// The paper's bid-dependent dynamic sampling draws every stage from the
// same unconditional empirical distribution (Section IV-C), discarding
// the serial dependence its own ACF analysis found (lag-1 correlation
// well above the white-noise band, Figure 7).  This module estimates a
// first-order Markov chain over quantile price buckets from the hourly
// history and builds *conditional* scenario trees: stage-1 states are
// drawn given the currently observed price, and each deeper stage given
// its parent state.  Bid truncation and support reduction compose with
// it unchanged.
#pragma once

#include <span>
#include <vector>

#include "core/scenario_tree.hpp"

namespace rrp::core {

class MarkovPriceModel {
 public:
  /// Estimates the chain from an hourly price series: `states`
  /// equal-probability quantile buckets (represented by their in-bucket
  /// means) and a row-normalised transition matrix over consecutive
  /// hours (Laplace-smoothed so every row is a distribution).
  static MarkovPriceModel fit(std::span<const double> hourly,
                              std::size_t states = 8);

  std::size_t num_states() const { return prices_.size(); }
  /// Representative price of each state, ascending.
  const std::vector<double>& state_prices() const { return prices_; }

  /// Bucket of a price (boundaries from the fitted quantiles; prices
  /// beyond the extremes clamp to the first/last bucket).
  std::size_t state_of(double price) const;

  /// P(next state | current state), as price points over the
  /// representatives.
  std::vector<PricePoint> conditional_support(std::size_t state) const;

  /// Conditional support truncated at `bid` (out-of-bid mass collapsed
  /// onto lambda, paper eq. (10)) and reduced to `max_points`.
  std::vector<PricePoint> conditional_truncated(std::size_t state,
                                                double bid, double lambda,
                                                std::size_t max_points) const;

  /// Builds the SRRP scenario tree conditioned on the price currently
  /// observed: stage t's branch distribution depends on the parent
  /// vertex's state (an out-of-bid parent conditions on the top
  /// bucket).  `bids` gives the per-stage bid; `widths` the per-stage
  /// support budgets.
  ScenarioTree build_tree(double current_price,
                          std::span<const double> bids, double lambda,
                          std::span<const std::size_t> widths) const;

 private:
  std::vector<double> prices_;      ///< bucket representatives
  std::vector<double> boundaries_;  ///< bucket upper bounds (size n-1)
  std::vector<std::vector<double>> transition_;  ///< row-stochastic
};

}  // namespace rrp::core
