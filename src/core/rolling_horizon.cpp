#include "core/rolling_horizon.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "core/markov_prices.hpp"
#include "core/srrp.hpp"
#include "core/srrp_dp.hpp"
#include "core/wagner_whitin.hpp"
#include "market/auction.hpp"
#include "timeseries/arima.hpp"

namespace rrp::core {

void SimulationInputs::validate() const {
  RRP_EXPECTS(!demand.empty());
  RRP_EXPECTS(actual_spot.size() == demand.size());
  RRP_EXPECTS(!history.empty());
  for (double d : demand) RRP_EXPECTS(d >= 0.0);
  for (double p : actual_spot) RRP_EXPECTS(p > 0.0);
  for (double p : history) RRP_EXPECTS(p > 0.0);
  RRP_EXPECTS(initial_storage >= 0.0);
}

namespace {

constexpr double kPriceFloor = 1e-4;

/// Execution engine for one (inputs, policy) pair.
class PolicyRunner {
 public:
  PolicyRunner(const SimulationInputs& inputs, const PolicyConfig& policy)
      : in_(inputs),
        cfg_(policy),
        lambda_(market::info(inputs.vm).on_demand_hourly) {
    in_.validate();
    cfg_.validate();

    // Fit window: the tail of the pre-evaluation history.
    const std::size_t window = std::min(cfg_.fit_window, in_.history.size());
    fit_series_.assign(in_.history.end() - static_cast<long>(window),
                       in_.history.end());
    history_mean_ = rrp::stats::mean(fit_series_);
    base_dist_ = EmpiricalPriceDistribution::from_history(
        fit_series_, cfg_.distribution_support);

    if (cfg_.planner == PlannerKind::Srrp && cfg_.markov_tree) {
      markov_ = MarkovPriceModel::fit(fit_series_,
                                      cfg_.distribution_support);
    }
    if (cfg_.bids == BidStrategy::Predicted) {
      // The paper's selected order for hourly spot prices:
      // SARIMA(2,0,1)(2,0,0)_24 (Section IV-A2).
      ts::SarimaOrder order;
      order.p = 2;
      order.q = 1;
      order.P = 2;
      order.s = 24;
      ts::SarimaFitOptions fit;
      fit.optimizer.max_evaluations = 4000;
      sarima_ = ts::fit_sarima(fit_series_, order, fit);
    }

    observed_ = fit_series_;  // grows as spot prices realise
  }

  SimulationResult run();

 private:
  /// Per-slot bid/price estimates for the next `w` slots.
  std::vector<double> price_estimates(std::size_t t, std::size_t w);

  SlotRecord execute_drrp_like(std::size_t t, std::size_t w, double store);
  SlotRecord execute_srrp(std::size_t t, std::size_t w, double store);
  SlotRecord execute_no_plan(std::size_t t, double store);

  /// True when slot t should trigger a fresh plan (cadence reached or
  /// the cached plan exhausted).
  bool needs_replan(std::size_t t) const;

  /// Settles acquisition of one instance-slot given the decision to
  /// rent; fills rented/won/bid/price_paid.
  void settle_rental(SlotRecord& rec, std::size_t t, double bid);

  SimulationInputs in_;
  PolicyConfig cfg_;
  double lambda_;
  std::vector<double> fit_series_;
  std::vector<double> observed_;
  double history_mean_ = 0.0;
  EmpiricalPriceDistribution base_dist_{{1.0}, {1.0}};
  std::optional<ts::SarimaModel> sarima_;
  std::optional<MarkovPriceModel> markov_;

  // --- Cached plan state (replan_every > 1, paper Section V-D). ---
  std::size_t plan_origin_ = 0;      ///< slot the cached plan was made at
  bool have_plan_ = false;
  RentalPlan cached_plan_;           ///< DRRP schedule from plan_origin_
  std::vector<double> cached_bids_;  ///< plan-time price estimates
  SrrpPolicy cached_policy_;         ///< SRRP recourse policy
  ScenarioTree cached_tree_;
  std::size_t tree_cursor_ = 0;      ///< vertex executed at the previous
                                     ///< slot (root before stage 1)
};

std::vector<double> PolicyRunner::price_estimates(std::size_t t,
                                                  std::size_t w) {
  switch (cfg_.bids) {
    case BidStrategy::OnDemandAlways:
      return std::vector<double>(w, lambda_);
    case BidStrategy::Oracle:
      return {in_.actual_spot.begin() + static_cast<long>(t),
              in_.actual_spot.begin() + static_cast<long>(t + w)};
    case BidStrategy::OracleDeviated: {
      std::vector<double> bids(
          in_.actual_spot.begin() + static_cast<long>(t),
          in_.actual_spot.begin() + static_cast<long>(t + w));
      for (double& b : bids)
        b = std::max(b * (1.0 + cfg_.bid_deviation), kPriceFloor);
      return bids;
    }
    case BidStrategy::ExpectedMean:
      return std::vector<double>(w, history_mean_);
    case BidStrategy::FixedValue:
      return std::vector<double>(w, cfg_.fixed_bid);
    case BidStrategy::Predicted: {
      // Forecast from the observed series; a bounded tail suffices
      // because the expanded SARIMA lags reach back ~2 seasons.
      const std::size_t tail =
          std::min<std::size_t>(observed_.size(), 24 * 14);
      std::vector<double> recent(observed_.end() - static_cast<long>(tail),
                                 observed_.end());
      auto f = ts::forecast(*sarima_, recent, w);
      for (double& v : f) v = std::max(v, kPriceFloor);
      return f;
    }
  }
  throw InvalidArgument("unknown bid strategy");
}

void PolicyRunner::settle_rental(SlotRecord& rec, std::size_t t,
                                 double bid) {
  rec.rented = true;
  if (cfg_.bids == BidStrategy::OnDemandAlways) {
    rec.won = true;  // no auction: a guaranteed on-demand rental
    rec.bid = lambda_;
    rec.price_paid = lambda_;
    return;
  }
  if (cfg_.bids == BidStrategy::Oracle) {
    rec.won = true;  // perfect foresight never loses
    rec.bid = in_.actual_spot[t];
    rec.price_paid = in_.actual_spot[t];
    return;
  }
  const auto outcome =
      market::settle(bid, in_.actual_spot[t], lambda_);
  rec.won = outcome.won;
  rec.bid = bid;
  rec.price_paid = outcome.price_paid;
}

SlotRecord PolicyRunner::execute_no_plan(std::size_t t, double store) {
  SlotRecord rec;
  rec.alpha = std::max(in_.demand[t] - store, 0.0);
  if (rec.alpha > 0.0) settle_rental(rec, t, lambda_);
  return rec;
}

bool PolicyRunner::needs_replan(std::size_t t) const {
  if (!have_plan_) return true;
  const std::size_t age = t - plan_origin_;
  if (age >= cfg_.replan_every) return true;
  // The cached plan must still cover this slot.
  if (cfg_.planner == PlannerKind::Drrp)
    return age >= cached_plan_.alpha.size();
  return age >= cached_tree_.num_stages();
}

SlotRecord PolicyRunner::execute_drrp_like(std::size_t t, std::size_t w,
                                           double store) {
  if (needs_replan(t)) {
    const std::vector<double> estimates = price_estimates(t, w);
    DrrpInstance inst;
    inst.vm = in_.vm;
    inst.demand.assign(in_.demand.begin() + static_cast<long>(t),
                       in_.demand.begin() + static_cast<long>(t + w));
    inst.compute_price = estimates;
    inst.costs = in_.costs;
    inst.initial_storage = store;
    cached_plan_ = cfg_.backend == PlannerBackend::DynamicProgramming
                       ? solve_drrp_wagner_whitin(inst)
                       : solve_drrp(inst, cfg_.solver);
    RRP_ENSURES(cached_plan_.feasible());
    cached_bids_ = estimates;
    plan_origin_ = t;
    have_plan_ = true;
  }
  // Execute the cached schedule at this slot's offset.  The schedule's
  // inventory path is followed exactly (alpha is generated even when
  // the auction is lost, on the fallback on-demand instance), so the
  // plan stays consistent until the next re-plan.
  const std::size_t offset = t - plan_origin_;
  SlotRecord rec;
  rec.alpha = cached_plan_.alpha[offset];
  if (cached_plan_.chi[offset])
    settle_rental(rec, t, cached_bids_[offset]);
  return rec;
}

SlotRecord PolicyRunner::execute_srrp(std::size_t t, std::size_t w,
                                      double store) {
  if (needs_replan(t)) {
    const std::vector<double> bids = price_estimates(t, w);
    std::vector<std::size_t> widths(w, 1);
    for (std::size_t i = 0; i < w && i < cfg_.stage_widths.size(); ++i)
      widths[i] = cfg_.stage_widths[i];

    SrrpInstance inst;
    inst.vm = in_.vm;
    inst.demand.assign(in_.demand.begin() + static_cast<long>(t),
                       in_.demand.begin() + static_cast<long>(t + w));
    if (markov_.has_value()) {
      // Conditional tree rooted at the price currently in force.
      inst.tree =
          markov_->build_tree(observed_.back(), bids, lambda_, widths);
    } else {
      inst.tree = ScenarioTree::build(
          make_stage_supports(base_dist_, bids, lambda_, widths));
    }
    inst.costs = in_.costs;
    inst.initial_storage = store;
    cached_policy_ = cfg_.backend == PlannerBackend::DynamicProgramming
                         ? solve_srrp_tree_dp(inst)
                         : solve_srrp(inst, cfg_.solver);
    RRP_ENSURES(cached_policy_.feasible());
    cached_tree_ = inst.tree;
    cached_bids_ = bids;
    tree_cursor_ = cached_tree_.root();
    plan_origin_ = t;
    have_plan_ = true;
  }

  // Multistage recourse execution: descend one tree stage per slot,
  // picking the child state that matches the realised acquisition.
  const std::size_t offset = t - plan_origin_;
  const auto children = cached_tree_.children(tree_cursor_);
  RRP_ENSURES(!children.empty());

  bool any_rents = false;
  for (std::size_t u : children)
    if (cached_policy_.chi[u]) any_rents = true;

  SlotRecord rec;
  const double spot = in_.actual_spot[t];
  auto pick_child = [&](bool won) {
    std::size_t best = children.front();
    double best_dist = std::numeric_limits<double>::infinity();
    bool found = false;
    for (std::size_t u : children) {
      if (cached_tree_.vertex(u).out_of_bid != !won) continue;
      const double dist = std::fabs(cached_tree_.vertex(u).price - spot);
      if (dist < best_dist) {
        best_dist = dist;
        best = u;
        found = true;
      }
    }
    if (!found) {
      for (std::size_t u : children) {
        const double dist = std::fabs(cached_tree_.vertex(u).price - spot);
        if (dist < best_dist) {
          best_dist = dist;
          best = u;
        }
      }
    }
    return best;
  };

  std::size_t u;
  if (!any_rents) {
    // Recourse: no state at this stage rents, so no bid is placed.
    u = pick_child(/*won=*/true);
    rec.alpha = cached_policy_.alpha[u];
  } else {
    const double bid = cached_bids_[offset];
    const bool won = bid >= spot;
    u = pick_child(won);
    rec.alpha = cached_policy_.alpha[u];
    if (cached_policy_.chi[u]) {
      rec.rented = true;
      rec.won = won;
      rec.bid = bid;
      rec.price_paid = won ? spot : lambda_;
    }
  }
  tree_cursor_ = u;
  return rec;
}

SimulationResult PolicyRunner::run() {
  SimulationResult result;
  const std::size_t T = in_.horizon();
  result.slots.reserve(T);
  double store = in_.initial_storage;

  for (std::size_t t = 0; t < T; ++t) {
    const std::size_t w = std::min(cfg_.lookahead, T - t);
    SlotRecord rec;
    switch (cfg_.planner) {
      case PlannerKind::NoPlan:
        rec = execute_no_plan(t, store);
        break;
      case PlannerKind::Drrp:
        rec = execute_drrp_like(t, w, store);
        break;
      case PlannerKind::Srrp:
        rec = execute_srrp(t, w, store);
        break;
    }

    // Inventory update; the planners guarantee coverage.
    store += rec.alpha - in_.demand[t];
    RRP_ENSURES(store > -1e-6);
    store = std::max(store, 0.0);
    rec.inventory = store;

    // Realised cost accounting.
    if (rec.rented) {
      result.cost.compute += rec.price_paid;
      ++result.rentals;
      if (!rec.won) ++result.out_of_bid_events;
    }
    result.cost.holding += in_.costs.holding(t) * store;
    result.cost.transfer_in += in_.costs.generation_cost(rec.alpha, t);
    result.cost.transfer_out += in_.costs.delivery_cost(in_.demand[t], t);

    result.slots.push_back(rec);
    observed_.push_back(in_.actual_spot[t]);
  }
  return result;
}

}  // namespace

SimulationResult simulate_policy(const SimulationInputs& inputs,
                                 const PolicyConfig& policy) {
  PolicyRunner runner(inputs, policy);
  return runner.run();
}

double ideal_case_cost(const SimulationInputs& inputs) {
  inputs.validate();
  DrrpInstance inst;
  inst.vm = inputs.vm;
  inst.demand = inputs.demand;
  inst.compute_price = inputs.actual_spot;
  inst.costs = inputs.costs;
  inst.initial_storage = inputs.initial_storage;
  return solve_drrp_wagner_whitin(inst).cost.total();
}

double overpay_fraction(double policy_cost, double ideal_cost) {
  RRP_EXPECTS(ideal_cost > 0.0);
  return (policy_cost - ideal_cost) / ideal_cost;
}

}  // namespace rrp::core
