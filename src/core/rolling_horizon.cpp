#include "core/rolling_horizon.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <string>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "core/markov_prices.hpp"
#include "core/srrp.hpp"
#include "core/srrp_dp.hpp"
#include "core/wagner_whitin.hpp"
#include "market/auction.hpp"
#include "obs/obs.hpp"
#include "timeseries/arima.hpp"

namespace rrp::core {

namespace {

void reject(const std::string& what) { throw InvalidArgument(what); }

void check_prices(const std::vector<double>& prices, const char* field) {
  for (std::size_t t = 0; t < prices.size(); ++t) {
    const double p = prices[t];
    const std::string at =
        std::string("SimulationInputs: ") + field + "[" + std::to_string(t) +
        "]";
    if (std::isnan(p)) reject(at + " is NaN");
    if (p <= 0.0 || !std::isfinite(p))
      reject(at + " must be a positive finite price, got " +
             std::to_string(p));
  }
}

}  // namespace

void SimulationInputs::validate() const {
  if (demand.empty()) reject("SimulationInputs: demand is empty");
  if (actual_spot.size() != demand.size())
    reject("SimulationInputs: actual_spot has " +
           std::to_string(actual_spot.size()) + " slots but demand has " +
           std::to_string(demand.size()));
  if (history.empty()) reject("SimulationInputs: price history is empty");
  for (std::size_t t = 0; t < demand.size(); ++t) {
    const double d = demand[t];
    const std::string at =
        "SimulationInputs: demand[" + std::to_string(t) + "]";
    if (std::isnan(d)) reject(at + " is NaN");
    if (d < 0.0 || !std::isfinite(d))
      reject(at + " must be non-negative and finite, got " +
             std::to_string(d));
  }
  check_prices(actual_spot, "actual_spot");
  check_prices(history, "history");
  if (!intra_slot_max.empty() && intra_slot_max.size() != demand.size())
    reject("SimulationInputs: intra_slot_max has " +
           std::to_string(intra_slot_max.size()) +
           " slots but demand has " + std::to_string(demand.size()));
  check_prices(intra_slot_max, "intra_slot_max");
  if (!trace_revocations.empty() &&
      trace_revocations.size() != demand.size())
    reject("SimulationInputs: trace_revocations has " +
           std::to_string(trace_revocations.size()) +
           " slots but demand has " + std::to_string(demand.size()));
  revocation.validate();
  if (std::isnan(initial_storage))
    reject("SimulationInputs: initial_storage is NaN");
  if (initial_storage < 0.0 || !std::isfinite(initial_storage))
    reject("SimulationInputs: initial_storage must be non-negative and "
           "finite, got " +
           std::to_string(initial_storage));
}

const char* to_string(FallbackReason reason) {
  switch (reason) {
    case FallbackReason::SolverTimeout: return "solver-timeout";
    case FallbackReason::NumericalFailure: return "numerical-failure";
    case FallbackReason::PlanRejected: return "plan-rejected";
  }
  return "unknown";
}

const char* to_string(FallbackAction action) {
  switch (action) {
    case FallbackAction::ReusedPlanTail: return "reused-plan-tail";
    case FallbackAction::HeuristicPlan: return "heuristic-plan";
    case FallbackAction::OnDemand: return "on-demand";
  }
  return "unknown";
}

const char* to_string(RevocationRecovery recovery) {
  switch (recovery) {
    case RevocationRecovery::ReacquiredSpot: return "reacquired-spot";
    case RevocationRecovery::MigratedType: return "migrated-type";
    case RevocationRecovery::OnDemandBackstop: return "on-demand-backstop";
  }
  return "unknown";
}

namespace {

constexpr double kPriceFloor = 1e-4;

/// Process-wide degradation telemetry, fed unconditionally (not through
/// the compile-out macros): the SimulationResult fallback counters are
/// computed as before/after deltas over these in PolicyRunner::run(),
/// so they must advance in RRP_OBSERVABILITY=OFF builds too.  (Same
/// pattern as SolveCounters in milp/branch_and_bound.cpp.)
struct RhCounters {
  obs::Counter& replans = obs::global_registry().counter("rrp.rh.replans");
  obs::Counter& replan_timeouts =
      obs::global_registry().counter("rrp.rh.replan_timeouts");
  obs::Counter& replan_numerical_failures =
      obs::global_registry().counter("rrp.rh.replan_numerical_failures");
  obs::Counter& replans_rejected =
      obs::global_registry().counter("rrp.rh.replans_rejected");
  obs::Counter& fallback_reused_tail =
      obs::global_registry().counter("rrp.rh.fallback_reused_tail");
  obs::Counter& fallback_heuristic =
      obs::global_registry().counter("rrp.rh.fallback_heuristic");
  obs::Counter& fallback_on_demand =
      obs::global_registry().counter("rrp.rh.fallback_on_demand");
};

RhCounters& rh_counters() {
  static RhCounters counters;
  return counters;
}

/// Execution engine for one (inputs, policy) pair.
class PolicyRunner {
 public:
  PolicyRunner(const SimulationInputs& inputs, const PolicyConfig& policy,
               const testing::FaultInjector* injector)
      : in_(inputs),
        cfg_(policy),
        injector_(injector),
        lambda_(market::info(inputs.vm).on_demand_hourly) {
    in_.validate();
    cfg_.validate();

    // Constructed even when the model is disabled: injector-armed
    // revocations still need the per-slot interruption fractions and the
    // checkpoint arithmetic, and an unconditional member keeps the
    // decision stream a pure function of (revocation config, horizon).
    revocation_.emplace(in_.revocation, in_.horizon());

    // Fit window: the tail of the pre-evaluation history.
    const std::size_t window = std::min(cfg_.fit_window, in_.history.size());
    fit_series_.assign(in_.history.end() - static_cast<long>(window),
                       in_.history.end());
    history_mean_ = rrp::stats::mean(fit_series_);
    base_dist_ = EmpiricalPriceDistribution::from_history(
        fit_series_, cfg_.distribution_support);

    if (cfg_.planner == PlannerKind::Srrp && cfg_.markov_tree) {
      markov_ = MarkovPriceModel::fit(fit_series_,
                                      cfg_.distribution_support);
    }
    if (cfg_.bids == BidStrategy::Predicted) {
      // The paper's selected order for hourly spot prices:
      // SARIMA(2,0,1)(2,0,0)_24 (Section IV-A2).
      sarima_order_.p = 2;
      sarima_order_.q = 1;
      sarima_order_.P = 2;
      sarima_order_.s = 24;
      sarima_ = ts::fit_sarima(fit_series_, sarima_order_,
                               cfg_.sarima_refit.scratch);
    }

    observed_ = fit_series_;  // grows as spot prices realise

    // Incremental maintenance keeps the fit window as a sliding
    // distribution, fed in lockstep with observed_, so a refresh reads
    // the window off the index instead of re-scanning history.
    if (cfg_.model_update_every > 0 &&
        cfg_.replan_mode == ReplanMode::Incremental) {
      sliding_.emplace(cfg_.fit_window);
      for (double p : fit_series_) sliding_->push(p);
    }
  }

  SimulationResult run();

 private:
  /// What kind of plan currently drives execution.  None both before the
  /// first plan and after a full degradation to on-demand.
  enum class PlanMode { None, Schedule, Tree };

  /// Per-slot bid/price estimates for the next `w` slots.
  std::vector<double> price_estimates(std::size_t t, std::size_t w);

  DrrpInstance drrp_instance(std::size_t t, std::size_t w, double store,
                             const std::vector<double>& estimates) const;

  /// Attempts a fresh plan for slot t.  Solver faults from the injector
  /// fire here; on any failure (injected or real) control moves to
  /// degrade() and the slot is still served.
  void replan(std::size_t t, std::size_t w, double store);

  /// Model refresh at the re-plan cadence (model_update_every > 0):
  /// either from scratch over the full window (Rebuild, the oracle) or
  /// via the incremental layer (sliding distribution, warm SARIMA
  /// refit).  Timed into model_maintenance_seconds.
  void refresh_models();
  void refresh_rebuild();
  void refresh_incremental();

  /// The recovery ladder: reuse the cached plan's tail, else plan with
  /// the Wagner-Whitin heuristic, else serve the slot on demand.
  void degrade(std::size_t t, std::size_t w, double store,
               const std::vector<double>& estimates, FallbackReason reason);

  void commit_schedule(std::size_t t, RentalPlan plan,
                       const std::vector<double>& estimates);
  void commit_tree(std::size_t t, SrrpPolicy policy, ScenarioTree tree,
                   const std::vector<double>& bids);

  SlotRecord execute_schedule(std::size_t t);
  SlotRecord execute_tree(std::size_t t);
  SlotRecord execute_no_plan(std::size_t t, double store);

  /// True when the cached plan has a decision for slot t.
  bool plan_covers(std::size_t t) const;

  /// True when slot t should trigger a fresh plan (no plan yet, cadence
  /// reached, or the cached plan exhausted).
  bool needs_replan(std::size_t t) const;

  /// Settles acquisition of one instance-slot given the decision to
  /// rent; fills rented/won/spot/bid/price_paid.
  void settle_rental(SlotRecord& rec, std::size_t t, double bid);

  /// Revocation consequences for slot t's acquisition: charges the
  /// checkpoint insurance on held spot instances, asks the model (or an
  /// injector-armed fault) whether the instance dies mid-slot, and if so
  /// reprices the slot through the interruption-recovery ladder
  /// (re-acquire spot -> migrate type -> on-demand backstop).
  void apply_revocation(std::size_t t, SlotRecord& rec);

  /// Cross-type migration target: the first evaluation class that is
  /// not the instance's own (Shastri & Irwin style diversification).
  market::VmClass migration_target() const;

  /// Appends slot t's price tick to the observed series, routing it
  /// through the injector (feed faults) and the sanitiser.  Settlement
  /// is unaffected: only the policy's observations degrade.
  void observe_tick(std::size_t t);

  /// Replaces unusable ticks (non-finite, non-positive, or implausibly
  /// far above on-demand) with the last good observation.
  double sanitize_tick(double tick, double last) const;

  SimulationInputs in_;
  PolicyConfig cfg_;
  const testing::FaultInjector* injector_;
  double lambda_;
  std::vector<double> fit_series_;
  std::vector<double> observed_;
  double history_mean_ = 0.0;
  EmpiricalPriceDistribution base_dist_{{1.0}, {1.0}};
  std::optional<SlidingEmpiricalDistribution> sliding_;
  ts::SarimaOrder sarima_order_;
  std::optional<ts::SarimaModel> sarima_;
  std::optional<MarkovPriceModel> markov_;
  std::optional<market::RevocationModel> revocation_;
  SimulationResult result_;
  std::size_t replans_done_ = 0;  ///< replan() calls so far

  // --- Cached plan state (replan_every > 1, paper Section V-D). ---
  PlanMode mode_ = PlanMode::None;
  std::size_t plan_origin_ = 0;      ///< slot the cached plan was made at
  RentalPlan cached_plan_;           ///< DRRP schedule from plan_origin_
  std::vector<double> cached_bids_;  ///< plan-time price estimates
  SrrpPolicy cached_policy_;         ///< SRRP recourse policy
  ScenarioTree cached_tree_;
  std::size_t tree_cursor_ = 0;      ///< vertex executed at the previous
                                     ///< slot (root before stage 1)
};

std::vector<double> PolicyRunner::price_estimates(std::size_t t,
                                                  std::size_t w) {
  switch (cfg_.bids) {
    case BidStrategy::OnDemandAlways:
      return std::vector<double>(w, lambda_);
    case BidStrategy::Oracle:
      return {in_.actual_spot.begin() + static_cast<long>(t),
              in_.actual_spot.begin() + static_cast<long>(t + w)};
    case BidStrategy::OracleDeviated: {
      std::vector<double> bids(
          in_.actual_spot.begin() + static_cast<long>(t),
          in_.actual_spot.begin() + static_cast<long>(t + w));
      for (double& b : bids)
        b = std::max(b * (1.0 + cfg_.bid_deviation), kPriceFloor);
      return bids;
    }
    case BidStrategy::ExpectedMean:
      return std::vector<double>(w, history_mean_);
    case BidStrategy::FixedValue:
      return std::vector<double>(w, cfg_.fixed_bid);
    case BidStrategy::Predicted: {
      // Forecast from the observed series; a bounded tail suffices
      // because the expanded SARIMA lags reach back ~2 seasons.
      const std::size_t tail =
          std::min<std::size_t>(observed_.size(), cfg_.forecast_window);
      std::vector<double> recent(observed_.end() - static_cast<long>(tail),
                                 observed_.end());
      auto f = ts::forecast(*sarima_, recent, w);
      for (double& v : f) v = std::max(v, kPriceFloor);
      return f;
    }
  }
  throw InvalidArgument("unknown bid strategy");
}

DrrpInstance PolicyRunner::drrp_instance(
    std::size_t t, std::size_t w, double store,
    const std::vector<double>& estimates) const {
  DrrpInstance inst;
  inst.vm = in_.vm;
  inst.demand.assign(in_.demand.begin() + static_cast<long>(t),
                     in_.demand.begin() + static_cast<long>(t + w));
  inst.compute_price = estimates;
  inst.costs = in_.costs;
  inst.initial_storage = store;
  return inst;
}

void PolicyRunner::settle_rental(SlotRecord& rec, std::size_t t,
                                 double bid) {
  rec.rented = true;
  if (cfg_.bids == BidStrategy::OnDemandAlways) {
    rec.won = true;  // no auction: a guaranteed on-demand rental
    rec.spot = false;
    rec.bid = lambda_;
    rec.price_paid = lambda_;
    return;
  }
  if (cfg_.bids == BidStrategy::Oracle) {
    rec.won = true;  // perfect foresight never loses
    rec.spot = true;
    rec.bid = in_.actual_spot[t];
    rec.price_paid = in_.actual_spot[t];
    return;
  }
  const auto outcome =
      market::settle(bid, in_.actual_spot[t], lambda_);
  rec.won = outcome.won;
  rec.spot = outcome.won;  // a lost auction rents on demand instead
  rec.bid = bid;
  rec.price_paid = outcome.price_paid;
}

SlotRecord PolicyRunner::execute_no_plan(std::size_t t, double store) {
  SlotRecord rec;
  rec.alpha = std::max(in_.demand[t] - store, 0.0);
  if (rec.alpha > 0.0) settle_rental(rec, t, lambda_);
  return rec;
}

bool PolicyRunner::plan_covers(std::size_t t) const {
  if (mode_ == PlanMode::None) return false;
  const std::size_t age = t - plan_origin_;
  if (mode_ == PlanMode::Schedule) return age < cached_plan_.alpha.size();
  return age < cached_tree_.num_stages();
}

bool PolicyRunner::needs_replan(std::size_t t) const {
  if (mode_ == PlanMode::None) return true;
  if (t - plan_origin_ >= cfg_.replan_every) return true;
  // The cached plan must still cover this slot.
  return !plan_covers(t);
}

void PolicyRunner::commit_schedule(std::size_t t, RentalPlan plan,
                                   const std::vector<double>& estimates) {
  cached_plan_ = std::move(plan);
  cached_bids_ = estimates;
  plan_origin_ = t;
  mode_ = PlanMode::Schedule;
}

void PolicyRunner::commit_tree(std::size_t t, SrrpPolicy policy,
                               ScenarioTree tree,
                               const std::vector<double>& bids) {
  cached_policy_ = std::move(policy);
  cached_tree_ = std::move(tree);
  cached_bids_ = bids;
  tree_cursor_ = cached_tree_.root();
  plan_origin_ = t;
  mode_ = PlanMode::Tree;
}

void PolicyRunner::refresh_rebuild() {
  // The oracle path: recompute every model from the full fit window,
  // exactly as construction does.  O(window) + a cold SARIMA fit.
  const std::size_t window = std::min(cfg_.fit_window, observed_.size());
  const std::vector<double> tail(observed_.end() - static_cast<long>(window),
                                 observed_.end());
  history_mean_ = rrp::stats::mean(tail);
  base_dist_ = EmpiricalPriceDistribution::from_history(
      tail, cfg_.distribution_support);
  if (markov_.has_value())
    markov_ = MarkovPriceModel::fit(tail, cfg_.distribution_support);
  if (sarima_.has_value()) {
    sarima_ =
        ts::fit_sarima(tail, sarima_order_, cfg_.sarima_refit.scratch);
    ++result_.sarima_scratch_refits;
  }
}

void PolicyRunner::refresh_incremental() {
  RRP_TRACE_SPAN("rh.replan_incremental");
  RRP_COUNTER_ADD("rrp.rh.replan_incremental", 1);
  // mean() and snapshot() are bit-identical to the rebuild path over
  // the same window (shared clustering kernel, same summation order).
  history_mean_ = sliding_->mean();
  base_dist_ = sliding_->snapshot(cfg_.distribution_support);
  if (markov_.has_value()) {
    const std::vector<double> tail = sliding_->window();
    markov_ = MarkovPriceModel::fit(tail, cfg_.distribution_support);
  }
  if (sarima_.has_value()) {
    const std::size_t window = std::min(cfg_.fit_window, observed_.size());
    auto refit = ts::refit_sarima(
        *sarima_, std::span<const double>(observed_).last(window),
        cfg_.sarima_refit);
    switch (refit.action) {
      case ts::SarimaRefitAction::Kept:
        ++result_.sarima_refits_kept;
        break;
      case ts::SarimaRefitAction::WarmRefit:
        ++result_.sarima_warm_refits;
        break;
      case ts::SarimaRefitAction::ScratchRefit:
        ++result_.sarima_scratch_refits;
        break;
    }
    sarima_ = std::move(refit.model);
  }
}

void PolicyRunner::refresh_models() {
  const common::Clock& wall = common::real_clock();
  const double t0 = wall.now_seconds();
  ++result_.model_refreshes;
  if (cfg_.replan_mode == ReplanMode::Rebuild) {
    refresh_rebuild();
  } else {
    refresh_incremental();
  }
  result_.model_maintenance_seconds += wall.now_seconds() - t0;
}

void PolicyRunner::replan(std::size_t t, std::size_t w, double store) {
  RRP_TRACE_SPAN("rh.replan");
  RRP_TRACE_ARG("slot", t);
  RRP_TRACE_ARG("window", w);
  rh_counters().replans.add(1);
  // Refresh models at the configured cadence; the construction-time fit
  // covers the first plan.
  if (cfg_.model_update_every > 0 && replans_done_ > 0 &&
      replans_done_ % cfg_.model_update_every == 0)
    refresh_models();
  ++replans_done_;
  milp::BnbOptions solver = cfg_.solver;
  if (cfg_.replan_time_limit > 0.0) {
    const common::Clock& clock =
        cfg_.clock != nullptr ? *cfg_.clock : common::real_clock();
    solver.deadline = common::Deadline::after(cfg_.replan_time_limit, clock);
  }

  std::vector<double> estimates;
  std::optional<FallbackReason> failure;
  std::optional<testing::SolverFaultKind> injected;
  if (injector_ != nullptr) injected = injector_->solver_fault(t);
  if (injected.has_value() &&
      *injected == testing::SolverFaultKind::Timeout) {
    // Modelled as the budget burning down before the solve gets
    // anywhere; injecting above the solver keeps the fault uniform
    // across the DP backend (which has no internal clock) and the MILP.
    failure = FallbackReason::SolverTimeout;
  } else {
    try {
      estimates = price_estimates(t, w);
      if (injected.has_value() &&
          *injected == testing::SolverFaultKind::NumericalFailure)
        throw NumericalError("injected numerical failure at slot " +
                             std::to_string(t));
      if (cfg_.planner == PlannerKind::Drrp) {
        DrrpInstance inst = drrp_instance(t, w, store, estimates);
        RentalPlan plan =
            cfg_.backend == PlannerBackend::DynamicProgramming
                ? solve_drrp_wagner_whitin(inst)
                : solve_drrp(inst, solver);
        result_.solver_nodes_explored += plan.nodes_explored;
        result_.solver_warm_started_nodes += plan.warm_started_nodes;
        result_.solver_cold_solved_nodes += plan.cold_solved_nodes;
        result_.solver_cuts_added += plan.cuts_added;
        if (plan.feasible()) {
          commit_schedule(t, std::move(plan), estimates);
          return;
        }
        failure = solver.deadline.expired() ? FallbackReason::SolverTimeout
                                            : FallbackReason::PlanRejected;
      } else {
        std::vector<std::size_t> widths(w, 1);
        for (std::size_t i = 0; i < w && i < cfg_.stage_widths.size(); ++i)
          widths[i] = cfg_.stage_widths[i];

        SrrpInstance inst;
        inst.vm = in_.vm;
        inst.demand.assign(in_.demand.begin() + static_cast<long>(t),
                           in_.demand.begin() + static_cast<long>(t + w));
        if (markov_.has_value()) {
          // Conditional tree rooted at the price currently in force.
          // Per-parent widths make conditional trees unrepairable, so
          // this path always rebuilds.
          inst.tree = markov_->build_tree(observed_.back(), estimates,
                                          lambda_, widths);
          ++result_.tree_rebuilds;
        } else {
          const auto supports =
              make_stage_supports(base_dist_, estimates, lambda_, widths);
          bool repaired = false;
          if (cfg_.replan_mode == ReplanMode::Incremental &&
              mode_ == PlanMode::Tree) {
            // Repair the cached tree in place (on a copy, so a refusal
            // costs nothing): arithmetically identical to a rebuild.
            inst.tree = cached_tree_;
            repaired = inst.tree.repair(supports);
          }
          if (repaired) {
            ++result_.tree_repairs;
          } else {
            inst.tree = ScenarioTree::build(supports);
            ++result_.tree_rebuilds;
          }
        }
        inst.costs = in_.costs;
        inst.initial_storage = store;
        SrrpPolicy policy =
            cfg_.backend == PlannerBackend::DynamicProgramming
                ? solve_srrp_tree_dp(inst)
                : solve_srrp(inst, solver);
        result_.solver_nodes_explored += policy.nodes_explored;
        result_.solver_warm_started_nodes += policy.warm_started_nodes;
        result_.solver_cold_solved_nodes += policy.cold_solved_nodes;
        result_.solver_cuts_added += policy.cuts_added;
        if (policy.feasible()) {
          commit_tree(t, std::move(policy), std::move(inst.tree), estimates);
          return;
        }
        failure = solver.deadline.expired() ? FallbackReason::SolverTimeout
                                            : FallbackReason::PlanRejected;
      }
    } catch (const NumericalError&) {
      failure = FallbackReason::NumericalFailure;
    }
  }
  // The heuristic rung needs estimates even when the failure happened
  // before/inside price estimation; the historical mean is always
  // available and always valid.
  if (estimates.size() != w)
    estimates.assign(w, std::max(history_mean_, kPriceFloor));
  degrade(t, w, store, estimates, *failure);
}

void PolicyRunner::degrade(std::size_t t, std::size_t w, double store,
                           const std::vector<double>& estimates,
                           FallbackReason reason) {
  switch (reason) {
    case FallbackReason::SolverTimeout:
      rh_counters().replan_timeouts.add(1);
      break;
    case FallbackReason::NumericalFailure:
      rh_counters().replan_numerical_failures.add(1);
      break;
    case FallbackReason::PlanRejected:
      rh_counters().replans_rejected.add(1);
      break;
  }
  FallbackEvent ev;
  ev.slot = t;
  ev.reason = reason;
  bool handled = false;

  // Rung 1: the previous plan's tail still serves this slot (exactly the
  // cadence > 1 execution path, so the inventory trajectory stays
  // plan-consistent).
  if (plan_covers(t)) {
    ev.action = FallbackAction::ReusedPlanTail;
    rh_counters().fallback_reused_tail.add(1);
    handled = true;
  }

  // Rung 2: Wagner-Whitin on the current estimates — exact for the
  // uncapacitated lot-sizing shape and runs in microseconds, so it
  // cannot itself time out.
  if (!handled) {
    try {
      RentalPlan plan =
          solve_drrp_wagner_whitin(drrp_instance(t, w, store, estimates));
      if (plan.feasible()) {
        commit_schedule(t, std::move(plan), estimates);
        ev.action = FallbackAction::HeuristicPlan;
        rh_counters().fallback_heuristic.add(1);
        handled = true;
      }
    } catch (const Error&) {
      // Fall through to the last rung.
    }
  }

  // Rung 3: serve this slot's net demand on demand; planning is retried
  // at the next slot.
  if (!handled) {
    mode_ = PlanMode::None;
    ev.action = FallbackAction::OnDemand;
    rh_counters().fallback_on_demand.add(1);
  }

  // Single exit: exactly one FallbackEvent per degraded re-plan, no
  // matter how many faults (say a timeout and a revocation) coincide at
  // the same slot.
  RRP_OBS_EVENT("rh", "fallback",
                {{"slot", static_cast<std::uint64_t>(t)},
                 {"reason", to_string(reason)},
                 {"action", to_string(ev.action)}});
  result_.fallbacks.push_back(ev);
}

SlotRecord PolicyRunner::execute_schedule(std::size_t t) {
  // Execute the cached schedule at this slot's offset.  The schedule's
  // inventory path is followed exactly (alpha is generated even when
  // the auction is lost, on the fallback on-demand instance), so the
  // plan stays consistent until the next re-plan.
  const std::size_t offset = t - plan_origin_;
  SlotRecord rec;
  rec.alpha = cached_plan_.alpha[offset];
  if (cached_plan_.chi[offset])
    settle_rental(rec, t, cached_bids_[offset]);
  return rec;
}

SlotRecord PolicyRunner::execute_tree(std::size_t t) {
  // Multistage recourse execution: descend one tree stage per slot,
  // picking the child state that matches the realised acquisition.
  const std::size_t offset = t - plan_origin_;
  const auto children = cached_tree_.children(tree_cursor_);
  RRP_ENSURES(!children.empty());

  bool any_rents = false;
  for (std::size_t u : children)
    if (cached_policy_.chi[u]) any_rents = true;

  SlotRecord rec;
  const double spot = in_.actual_spot[t];
  auto pick_child = [&](bool won) {
    std::size_t best = children.front();
    double best_dist = std::numeric_limits<double>::infinity();
    bool found = false;
    for (std::size_t u : children) {
      if (cached_tree_.vertex(u).out_of_bid != !won) continue;
      const double dist = std::fabs(cached_tree_.vertex(u).price - spot);
      if (dist < best_dist) {
        best_dist = dist;
        best = u;
        found = true;
      }
    }
    if (!found) {
      for (std::size_t u : children) {
        const double dist = std::fabs(cached_tree_.vertex(u).price - spot);
        if (dist < best_dist) {
          best_dist = dist;
          best = u;
        }
      }
    }
    return best;
  };

  std::size_t u;
  if (!any_rents) {
    // Recourse: no state at this stage rents, so no bid is placed.
    u = pick_child(/*won=*/true);
    rec.alpha = cached_policy_.alpha[u];
  } else {
    const double bid = cached_bids_[offset];
    const bool won = bid >= spot;
    u = pick_child(won);
    rec.alpha = cached_policy_.alpha[u];
    if (cached_policy_.chi[u]) {
      rec.rented = true;
      rec.won = won;
      rec.spot = won;  // a lost auction rents on demand instead
      rec.bid = bid;
      rec.price_paid = won ? spot : lambda_;
    }
  }
  tree_cursor_ = u;
  return rec;
}

market::VmClass PolicyRunner::migration_target() const {
  for (market::VmClass vm : market::evaluation_classes())
    if (vm != in_.vm) return vm;
  return in_.vm;  // unreachable: evaluation_classes() has three entries
}

void PolicyRunner::apply_revocation(std::size_t t, SlotRecord& rec) {
  if (!rec.rented || !rec.spot) return;
  const market::RevocationConfig& rcfg = in_.revocation;

  // Checkpoint insurance accrues on every held spot slot while the
  // layer is on, struck or not — that is the cost of being revocable.
  if (rcfg.enabled && rcfg.checkpoint_overhead > 0.0) {
    const double overhead = rcfg.checkpoint_overhead * rec.price_paid;
    result_.cost.interruption += overhead;
    result_.checkpoint_overhead_cost += overhead;
  }

  // Decide whether (and why) the instance dies mid-slot.  An
  // injector-armed fault is authoritative — chaos schedules must fire
  // regardless of the model's own draws — then trace-carried storms,
  // then the seeded model, then trace-carried single reclaims.
  std::optional<market::RevocationKind> kind;
  double fraction = 0.0;
  std::optional<testing::RevocationFault> armed;
  if (injector_ != nullptr) armed = injector_->revocation_fault(t);
  if (armed.has_value()) {
    kind = armed->storm ? market::RevocationKind::Storm
                        : market::RevocationKind::Hazard;
    fraction = armed->fraction;
  } else if (rcfg.enabled) {
    if (t < in_.trace_revocations.size() &&
        in_.trace_revocations[t] == market::HourlyRevocation::Storm) {
      kind = market::RevocationKind::Storm;
    } else {
      // Without an intra-slot view the settled price stands in for the
      // slot maximum; a winning bid then never crosses, which is
      // exactly the documented "bid-cross disabled" behaviour.
      const double slot_max =
          t < in_.intra_slot_max.size()
              ? std::max(in_.intra_slot_max[t], in_.actual_spot[t])
              : in_.actual_spot[t];
      kind = revocation_->revocation(t, rec.bid, slot_max);
      if (!kind.has_value() && t < in_.trace_revocations.size() &&
          in_.trace_revocations[t] == market::HourlyRevocation::Single) {
        kind = market::RevocationKind::Hazard;
      }
    }
    if (kind.has_value()) fraction = revocation_->interruption_fraction(t);
  }
  if (!kind.has_value()) return;

  const double preserved = revocation_->preserved_work(fraction);
  const double lost = fraction - preserved;
  const double remaining = 1.0 - preserved;

  // Interruption-recovery ladder.  Re-acquiring spot is only credible
  // for out-of-band reclaims: a crossed bid or an emptied pool cannot
  // be re-bought at the same bid within the slot.
  RevocationRecovery recovery = RevocationRecovery::OnDemandBackstop;
  double replacement_price = lambda_;
  double fixed_fee = rcfg.restart_cost;
  if (*kind == market::RevocationKind::Hazard &&
      rcfg.allow_spot_reacquire) {
    recovery = RevocationRecovery::ReacquiredSpot;
    replacement_price = in_.actual_spot[t];
    ++result_.recovered_spot;
  } else if (rcfg.allow_migration) {
    recovery = RevocationRecovery::MigratedType;
    const market::VmClassInfo& alt = market::info(migration_target());
    replacement_price = alt.on_demand_hourly * alt.spot_mean_ratio;
    fixed_fee = rcfg.migration_cost;
    ++result_.recovered_migration;
    result_.migrations.push_back(
        MigrationEvent{t, in_.vm, alt.id, rcfg.migration_cost});
  } else {
    ++result_.recovered_on_demand;
  }

  // The interrupted instance bills its partial slot; the replacement
  // bills the remaining work including the redo of the un-checkpointed
  // part.  Both are compute spend, so the inventory-balance invariant
  // (compute == sum of price_paid) holds untouched; only the fixed fees
  // land in the interruption bucket.  The replacement itself is never
  // re-revoked within the same slot.
  rec.revoked = true;
  rec.price_paid = fraction * rec.price_paid + remaining * replacement_price;
  result_.cost.interruption += fixed_fee;
  result_.work_lost += lost;
  switch (*kind) {
    case market::RevocationKind::BidCross:
      ++result_.revoked_bid_cross;
      break;
    case market::RevocationKind::Hazard:
      ++result_.revoked_hazard;
      break;
    case market::RevocationKind::Storm:
      ++result_.revoked_storm;
      break;
  }
  RRP_COUNTER_ADD("rrp.rh.revocations", 1);
  RRP_OBS_EVENT("rh", "revocation",
                {{"slot", static_cast<std::uint64_t>(t)},
                 {"kind", market::to_string(*kind)},
                 {"fraction", fraction},
                 {"lost_work", lost},
                 {"recovery", to_string(recovery)}});
  result_.revocations.push_back(
      RevocationEvent{t, *kind, fraction, lost, recovery});
}

double PolicyRunner::sanitize_tick(double tick, double last) const {
  if (!std::isfinite(tick) || tick <= 0.0) return last;
  // A tick an order of magnitude above on-demand is a feed glitch, not a
  // market move (spot occasionally exceeds lambda, never by 10x).
  if (tick > 10.0 * lambda_) return last;
  return std::max(tick, kPriceFloor);
}

void PolicyRunner::observe_tick(std::size_t t) {
  const double actual = in_.actual_spot[t];
  double used = actual;
  if (injector_ != nullptr) {
    if (const auto fault = injector_->price_fault(t)) {
      const double last = observed_.back();
      double raw = actual;
      switch (fault->kind) {
        case testing::PriceFaultKind::Gap:
        case testing::PriceFaultKind::Nan:
          // No tick / an unusable tick arrived.
          raw = std::numeric_limits<double>::quiet_NaN();
          break;
        case testing::PriceFaultKind::Spike:
          raw = actual * fault->spike_factor;
          break;
        case testing::PriceFaultKind::Delayed:
          raw = last;  // the previous tick is re-delivered late
          break;
      }
      used = sanitize_tick(raw, last);
      PriceFeedEvent ev;
      ev.slot = t;
      ev.kind = fault->kind;
      ev.raw = raw;
      ev.used = used;
      RRP_COUNTER_ADD("rrp.rh.price_faults", 1);
      RRP_OBS_EVENT("rh", "price_fault",
                    {{"slot", static_cast<std::uint64_t>(t)},
                     {"kind", testing::to_string(fault->kind)},
                     {"used", used}});
      result_.price_faults.push_back(ev);
    }
  }
  observed_.push_back(used);
  // The sliding window sees exactly what observed_ sees: sanitised
  // ticks, in order.
  if (sliding_.has_value()) sliding_->push(used);
}

SimulationResult PolicyRunner::run() {
  RRP_TRACE_SPAN("rh.simulate");
  // Compatibility view: the SimulationResult degradation counters are
  // deltas over the process-wide registry across this simulation.
  // Exact whenever simulations do not overlap in one process; under
  // evaluate_policies' parallel trials the overlapping windows can
  // cross-attribute these diagnostics, but that path consumes only
  // costs and per-slot records, never the fallback counts.
  const RhCounters& tel = rh_counters();
  const std::uint64_t timeouts0 = tel.replan_timeouts.value();
  const std::uint64_t numerical0 = tel.replan_numerical_failures.value();
  const std::uint64_t rejected0 = tel.replans_rejected.value();
  const std::uint64_t reused0 = tel.fallback_reused_tail.value();
  const std::uint64_t heuristic0 = tel.fallback_heuristic.value();
  const std::uint64_t on_demand0 = tel.fallback_on_demand.value();

  const std::size_t T = in_.horizon();
  result_.slots.reserve(T);
  double store = in_.initial_storage;

  for (std::size_t t = 0; t < T; ++t) {
    const std::size_t w = std::min(cfg_.lookahead, T - t);
    SlotRecord rec;
    if (cfg_.planner == PlannerKind::NoPlan) {
      rec = execute_no_plan(t, store);
    } else {
      if (needs_replan(t)) {
        // Latency on the process wall clock, never cfg_.clock: a test
        // FakeClock auto-advances on reads and would count them.
        const common::Clock& wall = common::real_clock();
        const double r0 = wall.now_seconds();
        replan(t, w, store);
        result_.replan_seconds.push_back(wall.now_seconds() - r0);
      }
      switch (mode_) {
        case PlanMode::None:
          rec = execute_no_plan(t, store);
          break;
        case PlanMode::Schedule:
          rec = execute_schedule(t);
          break;
        case PlanMode::Tree:
          rec = execute_tree(t);
          break;
      }
    }

    // Mid-slot revocation of a held spot instance: the recovery ladder
    // finishes the slot, so alpha is still fully generated and the
    // inventory trajectory is unchanged — only the price and telemetry
    // move.
    apply_revocation(t, rec);

    // Inventory update; the planners guarantee coverage.
    store += rec.alpha - in_.demand[t];
    RRP_ENSURES(store > -1e-6);
    store = std::max(store, 0.0);
    rec.inventory = store;

    // Realised cost accounting.
    if (rec.rented) {
      result_.cost.compute += rec.price_paid;
      ++result_.rentals;
      if (!rec.won) ++result_.out_of_bid_events;
    }
    result_.cost.holding += in_.costs.holding(t) * store;
    result_.cost.transfer_in += in_.costs.generation_cost(rec.alpha, t);
    result_.cost.transfer_out += in_.costs.delivery_cost(in_.demand[t], t);

    result_.slots.push_back(rec);
    observe_tick(t);
  }

  result_.replan_timeouts =
      static_cast<std::size_t>(tel.replan_timeouts.value() - timeouts0);
  result_.replan_numerical_failures = static_cast<std::size_t>(
      tel.replan_numerical_failures.value() - numerical0);
  result_.replans_rejected =
      static_cast<std::size_t>(tel.replans_rejected.value() - rejected0);
  result_.fallback_reused_tail =
      static_cast<std::size_t>(tel.fallback_reused_tail.value() - reused0);
  result_.fallback_heuristic =
      static_cast<std::size_t>(tel.fallback_heuristic.value() - heuristic0);
  result_.fallback_on_demand =
      static_cast<std::size_t>(tel.fallback_on_demand.value() - on_demand0);
  return std::move(result_);
}

}  // namespace

SimulationResult simulate_policy(const SimulationInputs& inputs,
                                 const PolicyConfig& policy) {
  return simulate_policy(inputs, policy, nullptr);
}

SimulationResult simulate_policy(const SimulationInputs& inputs,
                                 const PolicyConfig& policy,
                                 const testing::FaultInjector* injector) {
  PolicyRunner runner(inputs, policy, injector);
  return runner.run();
}

double ideal_case_cost(const SimulationInputs& inputs) {
  inputs.validate();
  DrrpInstance inst;
  inst.vm = inputs.vm;
  inst.demand = inputs.demand;
  inst.compute_price = inputs.actual_spot;
  inst.costs = inputs.costs;
  inst.initial_storage = inputs.initial_storage;
  return solve_drrp_wagner_whitin(inst).cost.total();
}

double overpay_fraction(double policy_cost, double ideal_cost) {
  RRP_EXPECTS(ideal_cost > 0.0);
  return (policy_cost - ideal_cost) / ideal_cost;
}

double latency_percentile(std::span<const double> samples, double pct) {
  RRP_EXPECTS(pct >= 0.0 && pct <= 100.0);
  if (samples.empty()) return 0.0;
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank =
      pct / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  return sorted[lo] + (rank - static_cast<double>(lo)) *
                          (sorted[hi] - sorted[lo]);
}

}  // namespace rrp::core
