#include "core/wagner_whitin.hpp"

#include <algorithm>
#include <limits>
#include <string>

#include "common/error.hpp"

namespace rrp::core {

RentalPlan solve_drrp_wagner_whitin(const DrrpInstance& inst,
                                    const common::Deadline& deadline) {
  inst.validate();
  if (inst.bottleneck_rate > 0.0 && !inst.bottleneck_capacity.empty()) {
    throw InvalidArgument(
        "Wagner-Whitin requires an uncapacitated instance; use the MILP "
        "for bottleneck-constrained planning");
  }
  const std::size_t T = inst.horizon();

  // Net the initial storage against the earliest demand (optimal since
  // holding costs are non-negative: epsilon serves demand as early as
  // possible or is held — both accounted below).
  std::vector<double> net = inst.demand;
  double eps = inst.initial_storage;
  for (std::size_t t = 0; t < T && eps > 0.0; ++t) {
    const double used = std::min(eps, net[t]);
    net[t] -= used;
    eps -= used;
  }

  // Prefix sums of the per-slot holding price: H(t, s) = sum_{u=t}^{s-1}
  // holding(u) is the cost of carrying one unit from slot t to slot s.
  std::vector<double> hold_prefix(T + 1, 0.0);
  for (std::size_t u = 0; u < T; ++u)
    hold_prefix[u + 1] = hold_prefix[u] + inst.costs.holding(u);

  // f[t] = cheapest way to serve net demand of slots t..T-1 starting
  // with zero inventory; choice[t] = k > t when renting at t to cover
  // slots [t, k), or t when slot t is skipped (possible only if
  // net[t] == 0).
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> f(T + 1, kInf);
  std::vector<std::size_t> choice(T, 0);
  f[T] = 0.0;
  for (std::size_t t = T; t-- > 0;) {
    // One poll per stage: O(T) clock reads against O(T^2) DP work.
    if (deadline.expired()) {
      throw TimeLimitExceeded(
          "solve_drrp_wagner_whitin: deadline expired at stage " +
          std::to_string(t) + " of " + std::to_string(T));
    }
    if (net[t] == 0.0) {
      f[t] = f[t + 1];
      choice[t] = t;  // skip
    }
    const double gen_unit =
        inst.costs.transfer_in(t) * inst.costs.input_output_ratio();
    double block = 0.0;  // generation + carrying cost of the block
    for (std::size_t k = t + 1; k <= T; ++k) {
      block += net[k - 1] *
               (gen_unit + hold_prefix[k - 1] - hold_prefix[t]);
      const double candidate = inst.compute_price[t] + block + f[k];
      if (candidate < f[t]) {
        f[t] = candidate;
        choice[t] = k;
      }
    }
  }

  RentalPlan plan;
  plan.status = milp::MipStatus::Optimal;
  plan.alpha.assign(T, 0.0);
  plan.beta.assign(T, 0.0);
  plan.chi.assign(T, 0);
  std::size_t t = 0;
  while (t < T) {
    if (choice[t] == t) {
      ++t;
      continue;
    }
    const std::size_t k = choice[t];
    double block_demand = 0.0;
    for (std::size_t s = t; s < k; ++s) block_demand += net[s];
    plan.alpha[t] = block_demand;
    plan.chi[t] = 1;
    t = k;
  }
  // Reconstruct beta from the balance equation with the original
  // demand and epsilon, and account the exact cost decomposition.
  plan.cost = evaluate_schedule(inst, plan.alpha, plan.chi);
  double store = inst.initial_storage;
  for (std::size_t s = 0; s < T; ++s) {
    store += plan.alpha[s] - inst.demand[s];
    store = std::max(store, 0.0);
    plan.beta[s] = store;
  }
  return plan;
}

}  // namespace rrp::core
