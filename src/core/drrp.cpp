#include "core/drrp.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/error.hpp"
#include "common/invariant.hpp"
#include "milp/cuts.hpp"

namespace rrp::core {

void DrrpInstance::validate() const {
  RRP_EXPECTS(!demand.empty());
  RRP_EXPECTS(compute_price.size() == demand.size());
  for (double d : demand) RRP_EXPECTS(d >= 0.0);
  for (double p : compute_price) RRP_EXPECTS(p > 0.0);
  RRP_EXPECTS(initial_storage >= 0.0);
  RRP_EXPECTS(bottleneck_rate >= 0.0);
  if (!bottleneck_capacity.empty())
    RRP_EXPECTS(bottleneck_capacity.size() == demand.size());
}

milp::Model build_drrp(const DrrpInstance& inst, DrrpVariables* vars) {
  inst.validate();
  const std::size_t T = inst.horizon();
  milp::Model model;
  DrrpVariables v;
  v.alpha.reserve(T);
  v.beta.reserve(T);
  v.chi.reserve(T);

  // Remaining demand from slot t onward, minus what the initial
  // inventory already covers: a valid tight forcing bound (any optimal
  // solution never generates more than future demand still unserved).
  std::vector<double> remaining(T + 1, 0.0);
  for (std::size_t t = T; t-- > 0;) remaining[t] = remaining[t + 1] +
                                                   inst.demand[t];
  const double loose_bound = remaining[0] + inst.initial_storage + 1.0;

  // Names are composed with += rather than `"alpha" + suffix` to dodge
  // a GCC 12 -Wrestrict false positive (PR105651) under -Werror.
  auto indexed = [](const char* base, std::size_t t) {
    std::string name(base);
    name += '[';
    name += std::to_string(t);
    name += ']';
    return name;
  };
  for (std::size_t t = 0; t < T; ++t) {
    v.alpha.push_back(
        model.add_continuous(0.0, lp::kInfinity, indexed("alpha", t)));
    v.beta.push_back(
        model.add_continuous(0.0, lp::kInfinity, indexed("beta", t)));
    v.chi.push_back(model.add_binary(indexed("chi", t)));
  }

  // Objective (1): transfer-in of inputs + holding of inventory +
  // transfer-out of served demand (a constant) + compute rental.
  milp::LinExpr objective;
  for (std::size_t t = 0; t < T; ++t) {
    objective += inst.costs.transfer_in(t) * inst.costs.input_output_ratio() *
                 milp::LinExpr(v.alpha[t]);
    objective += inst.costs.holding(t) * milp::LinExpr(v.beta[t]);
    objective += inst.costs.delivery_cost(inst.demand[t], t);  // constant
    objective += inst.compute_price[t] * milp::LinExpr(v.chi[t]);
  }
  model.set_objective(std::move(objective), milp::Objective::Minimize);

  for (std::size_t t = 0; t < T; ++t) {
    // (2) inventory balance; beta_{-1} is the epsilon of (5).
    milp::LinExpr balance = milp::LinExpr(v.alpha[t]) -
                            milp::LinExpr(v.beta[t]);
    if (t == 0) {
      balance += inst.initial_storage;
    } else {
      balance += milp::LinExpr(v.beta[t - 1]);
    }
    model.add_constraint(std::move(balance) == inst.demand[t],
                         "balance[" + std::to_string(t) + "]");

    // (4) forcing constraint with the lot-sizing-tight bound.
    const double big_b = inst.tighten_forcing_bound
                             ? std::max(remaining[t], 1e-9)
                             : loose_bound;
    model.add_constraint(milp::LinExpr(v.alpha[t]) -
                                 big_b * milp::LinExpr(v.chi[t]) <=
                             0.0,
                         "forcing[" + std::to_string(t) + "]");

    // (3) bottleneck resource, when modelled.
    if (inst.bottleneck_rate > 0.0 && !inst.bottleneck_capacity.empty()) {
      model.add_constraint(inst.bottleneck_rate * milp::LinExpr(v.alpha[t]) <=
                               inst.bottleneck_capacity[t],
                           "bottleneck[" + std::to_string(t) + "]");
    }
  }

  if (vars != nullptr) *vars = std::move(v);
  return model;
}

milp::Model build_drrp_facility_location(const DrrpInstance& inst,
                                         DrrpFlVariables* vars) {
  inst.validate();
  if (inst.bottleneck_rate > 0.0 && !inst.bottleneck_capacity.empty()) {
    throw InvalidArgument(
        "facility-location formulation requires an uncapacitated "
        "instance");
  }
  const std::size_t T = inst.horizon();
  milp::Model model;
  DrrpFlVariables v;

  std::vector<double> hold_prefix(T + 1, 0.0);
  for (std::size_t u = 0; u < T; ++u)
    hold_prefix[u + 1] = hold_prefix[u] + inst.costs.holding(u);

  for (std::size_t t = 0; t < T; ++t)
    v.chi.push_back(model.add_binary("chi[" + std::to_string(t) + "]"));

  const bool has_eps = inst.initial_storage > 0.0;
  milp::LinExpr objective;
  // Arcs t -> s: generate at t, serve demand of slot s.  Cost per GB is
  // the transfer-in of inputs at t plus carrying from t to s.
  v.arcs.reserve(T * (T + 1) / 2);
  for (std::size_t s = 0; s < T; ++s) {
    if (inst.demand[s] <= 0.0) continue;
    for (std::size_t t = 0; t <= s; ++t) {
      DrrpFlVariables::Arc arc;
      arc.from = t;
      arc.to = s;
      arc.amount = model.add_continuous(
          0.0, inst.demand[s],
          "y[" + std::to_string(t) + "," + std::to_string(s) + "]");
      const double unit_cost =
          inst.costs.transfer_in(t) * inst.costs.input_output_ratio() +
          (hold_prefix[s] - hold_prefix[t]);
      objective += unit_cost * milp::LinExpr(arc.amount);
      v.arcs.push_back(arc);
    }
  }
  // eps_use[s]: GB of the initial storage consumed in slot s.  A unit
  // consumed at s was held through slots 0..s-1; a unit never consumed
  // is held through the whole horizon (constant epsilon * H(0,T) with a
  // credit of H(s,T) per consumed unit -- equivalently charge H(0,s)
  // and the constant separately, which is what we do).
  if (has_eps) {
    // One eps_use per positive-demand slot; entries for zero-demand
    // slots stay invalid (a consumed unit must serve demand, otherwise
    // its holding credit would be a free lunch).
    v.eps_use.assign(T, milp::Var{});
    milp::LinExpr eps_total;
    for (std::size_t s = 0; s < T; ++s) {
      if (inst.demand[s] <= 0.0) continue;
      v.eps_use[s] = model.add_continuous(
          0.0, std::min(inst.initial_storage, inst.demand[s]),
          "eps[" + std::to_string(s) + "]");
      objective += (hold_prefix[s] - hold_prefix[T]) *
                   milp::LinExpr(v.eps_use[s]);
      eps_total += milp::LinExpr(v.eps_use[s]);
    }
    objective += inst.initial_storage * hold_prefix[T];  // constant
    model.add_constraint(std::move(eps_total) <= inst.initial_storage,
                         "eps-budget");
  }
  for (std::size_t t = 0; t < T; ++t) {
    objective += inst.compute_price[t] * milp::LinExpr(v.chi[t]);
    objective += inst.costs.delivery_cost(inst.demand[t], t);
  }
  model.set_objective(std::move(objective), milp::Objective::Minimize);

  // Demand satisfaction per slot, and arc-chi coupling.
  std::vector<milp::LinExpr> supply(T);
  for (const auto& arc : v.arcs) {
    supply[arc.to] += milp::LinExpr(arc.amount);
    model.add_constraint(milp::LinExpr(arc.amount) -
                             inst.demand[arc.to] *
                                 milp::LinExpr(v.chi[arc.from]) <=
                         0.0);
  }
  for (std::size_t s = 0; s < T; ++s) {
    if (inst.demand[s] <= 0.0) continue;
    milp::LinExpr row = std::move(supply[s]);
    if (has_eps && v.eps_use[s].valid()) row += milp::LinExpr(v.eps_use[s]);
    model.add_constraint(std::move(row) == inst.demand[s],
                         "demand[" + std::to_string(s) + "]");
  }

  if (vars != nullptr) *vars = std::move(v);
  return model;
}

namespace {

CostBreakdown breakdown_from_solution(const DrrpInstance& inst,
                                      const std::vector<double>& alpha,
                                      const std::vector<double>& beta,
                                      const std::vector<char>& chi) {
  CostBreakdown c;
  for (std::size_t t = 0; t < inst.horizon(); ++t) {
    c.compute += chi[t] ? inst.compute_price[t] : 0.0;
    c.holding += inst.costs.holding(t) * beta[t];
    c.transfer_in += inst.costs.generation_cost(alpha[t], t);
    c.transfer_out += inst.costs.delivery_cost(inst.demand[t], t);
  }
  return c;
}

}  // namespace

namespace {

#if RRP_INVARIANTS_ENABLED
/// Inventory-balance verification of a returned plan: generation plus
/// carried-over inventory covers each slot's demand exactly, inventory
/// never goes negative, and the forcing constraint (alpha > 0 implies a
/// rented machine) holds.
void verify_plan_balance(const DrrpInstance& inst, const RentalPlan& plan) {
  if (plan.alpha.empty()) return;
  RRP_INVARIANT(plan.alpha.size() == inst.horizon());
  RRP_INVARIANT(plan.beta.size() == inst.horizon());
  RRP_INVARIANT(plan.chi.size() == inst.horizon());
  double carry = inst.initial_storage;
  for (std::size_t t = 0; t < inst.horizon(); ++t) {
    RRP_INVARIANT_MSG(plan.alpha[t] >= -1e-9,
                      "negative generation at slot " + std::to_string(t));
    RRP_INVARIANT_MSG(plan.beta[t] >= -1e-9,
                      "negative inventory at slot " + std::to_string(t));
    RRP_INVARIANT(plan.chi[t] == 0 || plan.chi[t] == 1);
    const double scale = 1.0 + std::fabs(carry) + inst.demand[t];
    RRP_INVARIANT_MSG(plan.chi[t] == 1 || plan.alpha[t] <= 1e-6 * scale,
                      "generation without a rented machine at slot " +
                          std::to_string(t));
    carry += plan.alpha[t] - inst.demand[t];
    RRP_INVARIANT_MSG(std::fabs(plan.beta[t] - carry) <= 1e-5 * scale,
                      "inventory balance off by " +
                          std::to_string(plan.beta[t] - carry) + " at slot " +
                          std::to_string(t));
    carry = plan.beta[t];
  }
}
#endif

RentalPlan solve_drrp_aggregated(const DrrpInstance& inst,
                                 const milp::BnbOptions& options) {
  DrrpVariables vars;
  const milp::Model model = build_drrp(inst, &vars);

  // The aggregated formulation is single-item lot-sizing, so (l,S)
  // inequalities separated at the root tighten its weak relaxation.
  milp::LotSizingCutGenerator lot_cuts;
  milp::BnbOptions opt = options;
  if (opt.root_cuts && opt.cut_generator == nullptr) {
    std::vector<milp::LotSlot> slots(inst.horizon());
    for (std::size_t t = 0; t < inst.horizon(); ++t)
      slots[t] = milp::LotSlot{vars.alpha[t].id, vars.chi[t].id,
                               inst.demand[t]};
    lot_cuts.add_chain(std::move(slots), inst.initial_storage);
    opt.cut_generator = &lot_cuts;
  }
  const milp::MipResult result = milp::solve(model, opt);

  RentalPlan plan;
  plan.status = result.status;
  plan.nodes_explored = result.nodes_explored;
  plan.warm_started_nodes = result.warm_started_nodes;
  plan.cold_solved_nodes = result.cold_solved_nodes;
  plan.factor_stats = result.factor_stats;
  plan.cuts_added = result.cuts_added;
  plan.root_gap_closed = result.root_gap_closed;
  if (result.x.empty()) return plan;

  const std::size_t T = inst.horizon();
  plan.alpha.resize(T);
  plan.beta.resize(T);
  plan.chi.resize(T);
  for (std::size_t t = 0; t < T; ++t) {
    plan.alpha[t] = std::max(result.x[vars.alpha[t].id], 0.0);
    plan.beta[t] = std::max(result.x[vars.beta[t].id], 0.0);
    plan.chi[t] = result.x[vars.chi[t].id] > 0.5 ? 1 : 0;
  }
  plan.cost = breakdown_from_solution(inst, plan.alpha, plan.beta, plan.chi);
#if RRP_INVARIANTS_ENABLED
  verify_plan_balance(inst, plan);
#endif
  return plan;
}

RentalPlan solve_drrp_fl(const DrrpInstance& inst,
                         const milp::BnbOptions& options) {
  DrrpFlVariables vars;
  const milp::Model model = build_drrp_facility_location(inst, &vars);
  const milp::MipResult result = milp::solve(model, options);

  RentalPlan plan;
  plan.status = result.status;
  plan.nodes_explored = result.nodes_explored;
  plan.warm_started_nodes = result.warm_started_nodes;
  plan.cold_solved_nodes = result.cold_solved_nodes;
  plan.factor_stats = result.factor_stats;
  if (result.x.empty()) return plan;

  const std::size_t T = inst.horizon();
  plan.alpha.assign(T, 0.0);
  plan.beta.assign(T, 0.0);
  plan.chi.assign(T, 0);
  for (const auto& arc : vars.arcs)
    plan.alpha[arc.from] += std::max(result.x[arc.amount.id], 0.0);
  for (std::size_t t = 0; t < T; ++t) {
    plan.chi[t] = result.x[vars.chi[t].id] > 0.5 ? 1 : 0;
    if (plan.alpha[t] < 1e-9) plan.alpha[t] = 0.0;
  }
  double store = inst.initial_storage;
  for (std::size_t t = 0; t < T; ++t) {
    store += plan.alpha[t] - inst.demand[t];
    store = std::max(store, 0.0);
    plan.beta[t] = store;
  }
  plan.cost = breakdown_from_solution(inst, plan.alpha, plan.beta, plan.chi);
#if RRP_INVARIANTS_ENABLED
  verify_plan_balance(inst, plan);
#endif
  return plan;
}

}  // namespace

RentalPlan solve_drrp(const DrrpInstance& inst,
                      const milp::BnbOptions& options,
                      DrrpFormulation formulation) {
  const bool capacitated =
      inst.bottleneck_rate > 0.0 && !inst.bottleneck_capacity.empty();
  if (formulation == DrrpFormulation::Auto) {
    formulation = capacitated ? DrrpFormulation::Aggregated
                              : DrrpFormulation::FacilityLocation;
  }
  if (formulation == DrrpFormulation::FacilityLocation)
    return solve_drrp_fl(inst, options);
  return solve_drrp_aggregated(inst, options);
}

RentalPlan no_plan_schedule(const DrrpInstance& inst) {
  inst.validate();
  const std::size_t T = inst.horizon();
  RentalPlan plan;
  plan.status = milp::MipStatus::Optimal;  // trivially feasible
  plan.alpha.resize(T, 0.0);
  plan.beta.resize(T, 0.0);
  plan.chi.resize(T, 0);
  double carry = inst.initial_storage;  // epsilon serves earliest demand
  for (std::size_t t = 0; t < T; ++t) {
    const double used = std::min(carry, inst.demand[t]);
    carry -= used;
    plan.alpha[t] = inst.demand[t] - used;
    plan.beta[t] = carry;
    plan.chi[t] = plan.alpha[t] > 0.0 ? 1 : 0;
  }
  plan.cost = breakdown_from_solution(inst, plan.alpha, plan.beta, plan.chi);
#if RRP_INVARIANTS_ENABLED
  verify_plan_balance(inst, plan);
#endif
  return plan;
}

CostBreakdown evaluate_schedule(const DrrpInstance& inst,
                                const std::vector<double>& alpha,
                                const std::vector<char>& chi) {
  inst.validate();
  RRP_EXPECTS(alpha.size() == inst.horizon());
  RRP_EXPECTS(chi.size() == inst.horizon());
  std::vector<double> beta(inst.horizon(), 0.0);
  double carry = inst.initial_storage;
  for (std::size_t t = 0; t < inst.horizon(); ++t) {
    RRP_EXPECTS(alpha[t] >= 0.0);
    RRP_EXPECTS(chi[t] == 1 || alpha[t] == 0.0);  // forcing constraint
    carry += alpha[t] - inst.demand[t];
    if (carry < -1e-7)
      throw InvalidArgument("schedule under-serves demand at slot " +
                            std::to_string(t));
    carry = std::max(carry, 0.0);
    beta[t] = carry;
  }
  return breakdown_from_solution(inst, alpha, beta, chi);
}

}  // namespace rrp::core
