#include "core/price_distribution.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/error.hpp"

namespace rrp::core {

namespace {
constexpr double kProbEps = 1e-12;
}

EmpiricalPriceDistribution::EmpiricalPriceDistribution(
    std::vector<double> values, std::vector<double> probs)
    : values_(std::move(values)), probs_(std::move(probs)) {
  RRP_EXPECTS(!values_.empty());
  RRP_EXPECTS(values_.size() == probs_.size());
  double total = 0.0;
  for (std::size_t i = 0; i < values_.size(); ++i) {
    RRP_EXPECTS(values_[i] > 0.0);
    RRP_EXPECTS(probs_[i] > 0.0);
    if (i > 0) RRP_EXPECTS(values_[i] > values_[i - 1]);
    total += probs_[i];
  }
  RRP_EXPECTS(std::fabs(total - 1.0) < 1e-9);
}

EmpiricalPriceDistribution EmpiricalPriceDistribution::from_history(
    std::span<const double> prices, std::size_t max_support) {
  RRP_EXPECTS(!prices.empty());
  RRP_EXPECTS(max_support >= 1);

  // Exact empirical distribution over distinct values first.
  std::map<double, std::size_t> counts;
  for (double p : prices) {
    RRP_EXPECTS(p > 0.0);
    ++counts[p];
  }
  const double n = static_cast<double>(prices.size());

  if (counts.size() <= max_support) {
    std::vector<double> values, probs;
    values.reserve(counts.size());
    probs.reserve(counts.size());
    for (const auto& [value, count] : counts) {
      values.push_back(value);
      probs.push_back(static_cast<double>(count) / n);
    }
    return EmpiricalPriceDistribution(std::move(values), std::move(probs));
  }

  // Quantile clustering: walk the sorted distinct values accumulating
  // probability mass into max_support equal buckets; each bucket is
  // replaced by its probability-weighted mean.
  std::vector<double> values, probs;
  const double target = 1.0 / static_cast<double>(max_support);
  double bucket_mass = 0.0, bucket_weighted = 0.0, consumed = 0.0;
  std::size_t buckets_done = 0;
  for (const auto& [value, count] : counts) {
    const double mass = static_cast<double>(count) / n;
    bucket_mass += mass;
    bucket_weighted += mass * value;
    consumed += mass;
    const bool last_bucket = buckets_done + 1 == max_support;
    if (!last_bucket &&
        consumed >= target * static_cast<double>(buckets_done + 1)) {
      values.push_back(bucket_weighted / bucket_mass);
      probs.push_back(bucket_mass);
      bucket_mass = bucket_weighted = 0.0;
      ++buckets_done;
    }
  }
  if (bucket_mass > kProbEps) {
    values.push_back(bucket_weighted / bucket_mass);
    probs.push_back(bucket_mass);
  }
  // Weighted means of consecutive buckets are strictly increasing by
  // construction; normalise any floating-point drift.
  double total = 0.0;
  for (double p : probs) total += p;
  for (double& p : probs) p /= total;
  return EmpiricalPriceDistribution(std::move(values), std::move(probs));
}

double EmpiricalPriceDistribution::mean() const {
  double m = 0.0;
  for (std::size_t i = 0; i < values_.size(); ++i)
    m += values_[i] * probs_[i];
  return m;
}

double EmpiricalPriceDistribution::out_of_bid_probability(double bid) const {
  double mass = 0.0;
  for (std::size_t i = 0; i < values_.size(); ++i)
    if (values_[i] > bid) mass += probs_[i];
  return mass;
}

std::vector<PricePoint> EmpiricalPriceDistribution::truncate_at_bid(
    double bid, double lambda) const {
  RRP_EXPECTS(bid >= 0.0);
  RRP_EXPECTS(lambda > 0.0);
  std::vector<PricePoint> out;
  double in_bid_mass = 0.0;
  for (std::size_t i = 0; i < values_.size(); ++i) {
    if (values_[i] <= bid) {
      out.push_back(PricePoint{values_[i], probs_[i], false});
      in_bid_mass += probs_[i];
    }
  }
  const double oob = 1.0 - in_bid_mass;
  if (oob > kProbEps) {
    out.push_back(PricePoint{lambda, oob, true});
  } else if (!out.empty()) {
    out.back().prob += oob;  // absorb rounding so the mass is exactly 1
  }
  RRP_ENSURES(!out.empty());
  return out;
}

std::vector<PricePoint> reduce_support(std::span<const PricePoint> points,
                                       std::size_t max_points) {
  RRP_EXPECTS(max_points >= 1);
  RRP_EXPECTS(!points.empty());

  std::vector<PricePoint> regular;
  PricePoint oob{};
  bool has_oob = false;
  for (const PricePoint& p : points) {
    RRP_EXPECTS(p.prob >= 0.0);
    if (p.out_of_bid) {
      RRP_EXPECTS(!has_oob);
      has_oob = true;
      oob = p;
    } else {
      regular.push_back(p);
    }
  }
  std::sort(regular.begin(), regular.end(),
            [](const PricePoint& a, const PricePoint& b) {
              return a.price < b.price;
            });

  std::vector<PricePoint> out;
  if (max_points == 1) {
    // Expected-value collapse: one point carrying the full mass at the
    // probability-weighted mean price (the out-of-bid distinction is
    // deliberately given up; "lean late" scenario-tree stages do this).
    if (regular.empty()) {
      out.push_back(oob);
      return out;
    }
    double total = 0.0, weighted = 0.0;
    for (const PricePoint& p : regular) {
      total += p.prob;
      weighted += p.prob * p.price;
    }
    if (has_oob) {
      total += oob.prob;
      weighted += oob.prob * oob.price;
    }
    out.push_back(PricePoint{weighted / total, total, false});
    return out;
  }
  const std::size_t budget = max_points - (has_oob ? 1 : 0);

  if (regular.size() <= budget) {
    out = regular;
  } else {
    double total = 0.0;
    for (const auto& p : regular) total += p.prob;
    const double target = total / static_cast<double>(budget);
    double bucket_mass = 0.0, bucket_weighted = 0.0, consumed = 0.0;
    std::size_t buckets_done = 0;
    for (const PricePoint& p : regular) {
      bucket_mass += p.prob;
      bucket_weighted += p.prob * p.price;
      consumed += p.prob;
      const bool last_bucket = buckets_done + 1 == budget;
      if (!last_bucket &&
          consumed >= target * static_cast<double>(buckets_done + 1)) {
        out.push_back(
            PricePoint{bucket_weighted / bucket_mass, bucket_mass, false});
        bucket_mass = bucket_weighted = 0.0;
        ++buckets_done;
      }
    }
    if (bucket_mass > kProbEps) {
      out.push_back(
          PricePoint{bucket_weighted / bucket_mass, bucket_mass, false});
    }
  }
  if (has_oob) out.push_back(oob);
  return out;
}

double mean_of(std::span<const PricePoint> points) {
  double m = 0.0, total = 0.0;
  for (const PricePoint& p : points) {
    m += p.price * p.prob;
    total += p.prob;
  }
  RRP_EXPECTS(total > 0.0);
  return m / total;
}

}  // namespace rrp::core
