#include "core/price_distribution.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/error.hpp"

namespace rrp::core {

namespace {

constexpr double kProbEps = 1e-12;

/// The one clustering kernel behind both the batch path (from_history)
/// and the sliding snapshot: given the sorted distinct values of a
/// window with their multiplicities, produce the (at most max_support
/// point) distribution.  Sharing the exact arithmetic — the same walk
/// order, the same mass accumulation, the same normalisation — is what
/// makes SlidingEmpiricalDistribution::snapshot() bit-identical to
/// EmpiricalPriceDistribution::from_history() by construction.
EmpiricalPriceDistribution distribution_from_counts(
    std::span<const double> distinct_values,
    std::span<const std::size_t> value_counts, double n,
    std::size_t max_support) {
  if (distinct_values.size() <= max_support) {
    std::vector<double> values, probs;
    values.reserve(distinct_values.size());
    probs.reserve(distinct_values.size());
    for (std::size_t i = 0; i < distinct_values.size(); ++i) {
      values.push_back(distinct_values[i]);
      probs.push_back(static_cast<double>(value_counts[i]) / n);
    }
    return EmpiricalPriceDistribution(std::move(values), std::move(probs));
  }

  // Quantile clustering: walk the sorted distinct values accumulating
  // probability mass into max_support equal buckets; each bucket is
  // replaced by its probability-weighted mean.
  std::vector<double> values, probs;
  const double target = 1.0 / static_cast<double>(max_support);
  double bucket_mass = 0.0, bucket_weighted = 0.0, consumed = 0.0;
  std::size_t buckets_done = 0;
  for (std::size_t i = 0; i < distinct_values.size(); ++i) {
    const double value = distinct_values[i];
    const double mass = static_cast<double>(value_counts[i]) / n;
    bucket_mass += mass;
    bucket_weighted += mass * value;
    consumed += mass;
    const bool last_bucket = buckets_done + 1 == max_support;
    if (!last_bucket &&
        consumed >= target * static_cast<double>(buckets_done + 1)) {
      values.push_back(bucket_weighted / bucket_mass);
      probs.push_back(bucket_mass);
      bucket_mass = bucket_weighted = 0.0;
      ++buckets_done;
    }
  }
  if (bucket_mass > kProbEps) {
    values.push_back(bucket_weighted / bucket_mass);
    probs.push_back(bucket_mass);
  }
  // Weighted means of consecutive buckets are strictly increasing by
  // construction; normalise any floating-point drift.
  double total = 0.0;
  for (double p : probs) total += p;
  for (double& p : probs) p /= total;
  return EmpiricalPriceDistribution(std::move(values), std::move(probs));
}

}  // namespace

EmpiricalPriceDistribution::EmpiricalPriceDistribution(
    std::vector<double> values, std::vector<double> probs)
    : values_(std::move(values)), probs_(std::move(probs)) {
  RRP_EXPECTS(!values_.empty());
  RRP_EXPECTS(values_.size() == probs_.size());
  double total = 0.0;
  for (std::size_t i = 0; i < values_.size(); ++i) {
    RRP_EXPECTS(values_[i] > 0.0);
    RRP_EXPECTS(probs_[i] > 0.0);
    if (i > 0) RRP_EXPECTS(values_[i] > values_[i - 1]);
    total += probs_[i];
  }
  RRP_EXPECTS(std::fabs(total - 1.0) < 1e-9);
}

EmpiricalPriceDistribution EmpiricalPriceDistribution::from_history(
    std::span<const double> prices, std::size_t max_support) {
  RRP_EXPECTS(!prices.empty());
  RRP_EXPECTS(max_support >= 1);

  // Exact empirical counts over sorted distinct values, then the shared
  // clustering kernel.
  std::map<double, std::size_t> counts;
  for (double p : prices) {
    RRP_EXPECTS(p > 0.0);
    ++counts[p];
  }
  std::vector<double> distinct_values;
  std::vector<std::size_t> value_counts;
  distinct_values.reserve(counts.size());
  value_counts.reserve(counts.size());
  for (const auto& [value, count] : counts) {
    distinct_values.push_back(value);
    value_counts.push_back(count);
  }
  return distribution_from_counts(distinct_values, value_counts,
                                  static_cast<double>(prices.size()),
                                  max_support);
}

SlidingEmpiricalDistribution::SlidingEmpiricalDistribution(
    std::size_t capacity)
    : ring_(capacity, 0.0) {
  RRP_EXPECTS(capacity >= 1);
}

void SlidingEmpiricalDistribution::add_value(double price) {
  const auto it = std::lower_bound(values_.begin(), values_.end(), price);
  const auto idx = static_cast<std::size_t>(it - values_.begin());
  if (it != values_.end() && *it == price) {
    ++counts_[idx];
  } else {
    values_.insert(it, price);
    counts_.insert(counts_.begin() + static_cast<long>(idx), 1);
  }
}

void SlidingEmpiricalDistribution::remove_value(double price) {
  const auto it = std::lower_bound(values_.begin(), values_.end(), price);
  RRP_EXPECTS(it != values_.end() && *it == price);
  const auto idx = static_cast<std::size_t>(it - values_.begin());
  if (--counts_[idx] == 0) {
    values_.erase(it);
    counts_.erase(counts_.begin() + static_cast<long>(idx));
  }
}

void SlidingEmpiricalDistribution::push(double price) {
  RRP_EXPECTS(std::isfinite(price) && price > 0.0);
  if (count_ == ring_.size()) {
    remove_value(ring_[head_]);  // head_ is also the oldest slot when full
  } else {
    ++count_;
  }
  ring_[head_] = price;
  head_ = (head_ + 1) % ring_.size();
  add_value(price);
}

double SlidingEmpiricalDistribution::mean() const {
  RRP_EXPECTS(count_ > 0);
  // Oldest-to-newest plain accumulation: the identical operation order
  // rrp::stats::mean applies to the window vector, hence bit-identical.
  // The ring wraps at most once, so walk it as two contiguous segments
  // rather than paying a modulo division per element.
  const std::size_t oldest = full() ? head_ : 0;
  const std::size_t first = std::min(count_, ring_.size() - oldest);
  double s = 0.0;
  for (std::size_t i = 0; i < first; ++i) s += ring_[oldest + i];
  for (std::size_t i = 0; i + first < count_; ++i) s += ring_[i];
  return s / static_cast<double>(count_);
}

std::vector<double> SlidingEmpiricalDistribution::window() const {
  const std::size_t oldest = full() ? head_ : 0;
  const std::size_t first = std::min(count_, ring_.size() - oldest);
  std::vector<double> out;
  out.reserve(count_);
  out.insert(out.end(), ring_.begin() + static_cast<long>(oldest),
             ring_.begin() + static_cast<long>(oldest + first));
  out.insert(out.end(), ring_.begin(),
             ring_.begin() + static_cast<long>(count_ - first));
  return out;
}

EmpiricalPriceDistribution SlidingEmpiricalDistribution::snapshot(
    std::size_t max_support) const {
  RRP_EXPECTS(count_ > 0);
  RRP_EXPECTS(max_support >= 1);
  return distribution_from_counts(values_, counts_,
                                  static_cast<double>(count_), max_support);
}

double EmpiricalPriceDistribution::mean() const {
  double m = 0.0;
  for (std::size_t i = 0; i < values_.size(); ++i)
    m += values_[i] * probs_[i];
  return m;
}

double EmpiricalPriceDistribution::out_of_bid_probability(double bid) const {
  double mass = 0.0;
  for (std::size_t i = 0; i < values_.size(); ++i)
    if (values_[i] > bid) mass += probs_[i];
  return mass;
}

std::vector<PricePoint> EmpiricalPriceDistribution::truncate_at_bid(
    double bid, double lambda) const {
  RRP_EXPECTS(bid >= 0.0);
  RRP_EXPECTS(lambda > 0.0);
  std::vector<PricePoint> out;
  double in_bid_mass = 0.0;
  for (std::size_t i = 0; i < values_.size(); ++i) {
    if (values_[i] <= bid) {
      out.push_back(PricePoint{values_[i], probs_[i], false});
      in_bid_mass += probs_[i];
    }
  }
  const double oob = 1.0 - in_bid_mass;
  if (oob > kProbEps) {
    out.push_back(PricePoint{lambda, oob, true});
  } else if (!out.empty()) {
    out.back().prob += oob;  // absorb rounding so the mass is exactly 1
  }
  RRP_ENSURES(!out.empty());
  return out;
}

std::vector<PricePoint> reduce_support(std::span<const PricePoint> points,
                                       std::size_t max_points) {
  RRP_EXPECTS(max_points >= 1);
  RRP_EXPECTS(!points.empty());

  std::vector<PricePoint> regular;
  PricePoint oob{};
  bool has_oob = false;
  for (const PricePoint& p : points) {
    RRP_EXPECTS(p.prob >= 0.0);
    if (p.out_of_bid) {
      RRP_EXPECTS(!has_oob);
      has_oob = true;
      oob = p;
    } else {
      regular.push_back(p);
    }
  }
  // Deliberate batch-path sort: reduce_support takes an arbitrary point
  // set, not the maintained sliding window.
  std::sort(regular.begin(), regular.end(),  // rrp-lint: allow(batch-sort)
            [](const PricePoint& a, const PricePoint& b) {
              return a.price < b.price;
            });

  std::vector<PricePoint> out;
  if (max_points == 1) {
    // Expected-value collapse: one point carrying the full mass at the
    // probability-weighted mean price (the out-of-bid distinction is
    // deliberately given up; "lean late" scenario-tree stages do this).
    if (regular.empty()) {
      out.push_back(oob);
      return out;
    }
    double total = 0.0, weighted = 0.0;
    for (const PricePoint& p : regular) {
      total += p.prob;
      weighted += p.prob * p.price;
    }
    if (has_oob) {
      total += oob.prob;
      weighted += oob.prob * oob.price;
    }
    out.push_back(PricePoint{weighted / total, total, false});
    return out;
  }
  const std::size_t budget = max_points - (has_oob ? 1 : 0);

  if (regular.size() <= budget) {
    out = regular;
  } else {
    double total = 0.0;
    for (const auto& p : regular) total += p.prob;
    const double target = total / static_cast<double>(budget);
    double bucket_mass = 0.0, bucket_weighted = 0.0, consumed = 0.0;
    std::size_t buckets_done = 0;
    for (const PricePoint& p : regular) {
      bucket_mass += p.prob;
      bucket_weighted += p.prob * p.price;
      consumed += p.prob;
      const bool last_bucket = buckets_done + 1 == budget;
      if (!last_bucket &&
          consumed >= target * static_cast<double>(buckets_done + 1)) {
        out.push_back(
            PricePoint{bucket_weighted / bucket_mass, bucket_mass, false});
        bucket_mass = bucket_weighted = 0.0;
        ++buckets_done;
      }
    }
    if (bucket_mass > kProbEps) {
      out.push_back(
          PricePoint{bucket_weighted / bucket_mass, bucket_mass, false});
    }
  }
  if (has_oob) out.push_back(oob);
  return out;
}

double mean_of(std::span<const PricePoint> points) {
  double m = 0.0, total = 0.0;
  for (const PricePoint& p : points) {
    m += p.price * p.prob;
    total += p.prob;
  }
  RRP_EXPECTS(total > 0.0);
  return m / total;
}

}  // namespace rrp::core
