#include "core/srrp_dp.hpp"

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>

#include "common/error.hpp"

namespace rrp::core {

namespace {

constexpr double kEps = 1e-9;

/// DP engine over (vertex, entering inventory).
class TreeDp {
 public:
  TreeDp(const SrrpInstance& inst, const common::Deadline& deadline)
      : inst_(inst),
        deadline_(deadline),
        tree_(inst.tree),
        V_(tree_.num_vertices()) {
    cum_.assign(V_, 0.0);
    for (std::size_t u = 1; u < V_; ++u) {
      const auto& vert = tree_.vertex(u);
      const double parent_cum =
          vert.parent == tree_.root() ? 0.0 : cum_[vert.parent];
      cum_[u] = parent_cum + demand_at(u);
    }
    // Descendants of each vertex (for production-level candidates).
    descendants_.assign(V_, {});
    for (std::size_t u = V_; u-- > 1;) {
      descendants_[u].push_back(u);
      for (std::size_t c : tree_.children(u)) {
        descendants_[u].insert(descendants_[u].end(),
                               descendants_[c].begin(),
                               descendants_[c].end());
      }
    }
    memo_.resize(V_);
  }

  SrrpPolicy run() {
    SrrpPolicy policy;
    policy.status = milp::MipStatus::Optimal;
    policy.alpha.assign(V_, 0.0);
    policy.beta.assign(V_, 0.0);
    policy.chi.assign(V_, 0);

    double total = 0.0;
    for (std::size_t c : tree_.children(tree_.root()))
      total += value(c, inst_.initial_storage);
    policy.expected_cost = total;

    for (std::size_t c : tree_.children(tree_.root()))
      extract(c, inst_.initial_storage, policy);
    return policy;
  }

 private:
  double demand_at(std::size_t u) const {
    return inst_.demand_at_vertex(u);
  }
  double prob(std::size_t u) const { return tree_.vertex(u).path_prob; }
  std::size_t slot_of(std::size_t u) const {
    return tree_.vertex(u).stage - 1;
  }

  static std::int64_t key_of(double x) {
    return static_cast<std::int64_t>(std::llround(x * 1e9));
  }

  struct Entry {
    double value = std::numeric_limits<double>::infinity();
    // Decision: produce up to level `level` (chi = 1) or pass through
    // (produce = false; requires x >= demand).
    bool produce = false;
    double level = 0.0;
  };

  /// Cost of serving vertex u's subtree given entering inventory x.
  double value(std::size_t u, double x) {
    auto& table = memo_[u];
    const auto it = table.find(key_of(x));
    if (it != table.end()) return it->second.value;

    // One poll per uncached state, the unit of real DP work (cache hits
    // stay poll-free so a memo-heavy solve costs no clock reads).
    if (deadline_.expired()) {
      throw TimeLimitExceeded(
          "solve_srrp_tree_dp: deadline expired while evaluating vertex " +
          std::to_string(u));
    }

    const double d = demand_at(u);
    const double p = prob(u);
    const std::size_t slot = slot_of(u);
    const double delivery = p * inst_.costs.delivery_cost(d, slot);
    const double hold_price = p * inst_.costs.holding(slot);
    const double gen_unit = p * inst_.costs.transfer_in(slot) *
                            inst_.costs.input_output_ratio();
    const double rent = p * tree_.vertex(u).price;

    Entry best;
    // Option 1: no production; feasible when inventory covers demand.
    if (x + kEps >= d) {
      const double out = std::max(x - d, 0.0);
      double cost = delivery + hold_price * out;
      for (std::size_t c : tree_.children(u)) cost += value(c, out);
      if (cost < best.value) {
        best.value = cost;
        best.produce = false;
        best.level = out;
      }
    }
    // Option 2: produce up to an exact path-demand level D(u..w).
    for (std::size_t w : descendants_[u]) {
      const double level = cum_[w] - (cum_[u] - d);  // D(path u..w)
      if (level <= x + kEps) continue;  // nothing to produce
      const double out = level - d;
      double cost = delivery + rent + gen_unit * (level - x) +
                    hold_price * out;
      for (std::size_t c : tree_.children(u)) cost += value(c, out);
      if (cost < best.value) {
        best.value = cost;
        best.produce = true;
        best.level = level;
      }
    }
    RRP_ENSURES(best.value < std::numeric_limits<double>::infinity());
    table.emplace(key_of(x), best);
    return best.value;
  }

  void extract(std::size_t u, double x, SrrpPolicy& policy) {
    const Entry& e = memo_[u].at(key_of(x));
    const double d = demand_at(u);
    double out;
    if (e.produce) {
      policy.chi[u] = 1;
      policy.alpha[u] = e.level - x;
      out = e.level - d;
    } else {
      policy.alpha[u] = 0.0;
      out = std::max(x - d, 0.0);
    }
    policy.beta[u] = out;
    for (std::size_t c : tree_.children(u)) extract(c, out, policy);
  }

  const SrrpInstance& inst_;
  const common::Deadline& deadline_;
  const ScenarioTree& tree_;
  std::size_t V_;
  std::vector<double> cum_;  ///< demand sum along the root path, per vertex
  std::vector<std::vector<std::size_t>> descendants_;
  std::vector<std::unordered_map<std::int64_t, Entry>> memo_;
};

}  // namespace

SrrpPolicy solve_srrp_tree_dp(const SrrpInstance& inst,
                              const common::Deadline& deadline) {
  inst.validate();
  if (inst.bottleneck_rate > 0.0 && !inst.bottleneck_capacity.empty()) {
    throw InvalidArgument(
        "the tree DP requires an uncapacitated instance; use the MILP "
        "for bottleneck-constrained planning");
  }
  TreeDp dp(inst, deadline);
  return dp.run();
}

}  // namespace rrp::core
