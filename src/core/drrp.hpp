// Deterministic Resource Rental Planning (DRRP) — paper Section III.
//
// Given known demand D(i,t) and deterministic cost parameters over a
// horizon, DRRP chooses per-slot data generation alpha, inventory beta
// and rental decisions chi minimising objective (1) subject to:
//   (2) inventory balance  beta_{t-1} + alpha_t - beta_t = D_t
//   (3) bottleneck         P * alpha_t <= Q_t           (optional)
//   (4) forcing            alpha_t <= B * chi_t
//   (5) initial inventory  beta_0 = epsilon
//   (6,7) domains          alpha,beta >= 0, chi binary
//
// This is a dynamic lot-sizing MILP; one instance covers a single VM
// class (the paper's multi-class objective is separable across classes,
// so rrp solves one model per class — exactly equivalent and faster).
#pragma once

#include <cstddef>
#include <vector>

#include "market/cost_model.hpp"
#include "market/instance_types.hpp"
#include "milp/branch_and_bound.hpp"

namespace rrp::core {

/// One DRRP problem for one VM class.
struct DrrpInstance {
  market::VmClass vm = market::VmClass::C1Medium;
  std::vector<double> demand;         ///< D(t), one per slot; all >= 0
  std::vector<double> compute_price;  ///< Cp(t), one per slot; all > 0
  market::CostModel costs = market::CostModel::paper_defaults();
  double initial_storage = 0.0;       ///< epsilon in constraint (5)
  /// Bottleneck resource (constraint (3)); rate == 0 disables it, as in
  /// the paper's evaluation where VMs are amply provisioned.
  double bottleneck_rate = 0.0;                 ///< P(i)
  std::vector<double> bottleneck_capacity;      ///< Q(t); empty = +inf
  /// Use the lot-sizing-tight forcing bound B_t = remaining demand
  /// instead of one loose global constant (see DESIGN.md ablation 1).
  bool tighten_forcing_bound = true;

  std::size_t horizon() const { return demand.size(); }
  void validate() const;
};

/// Cost decomposition in the terms of paper Figure 10 (lower panel),
/// plus the interruption term of the revocation-aware simulator.
struct CostBreakdown {
  double compute = 0.0;       ///< sum Cp * chi
  double holding = 0.0;       ///< sum (Cs + Cio) * beta — "I/O+Storage"
  double transfer_in = 0.0;   ///< sum C+f * Phi * alpha
  double transfer_out = 0.0;  ///< sum C-f * D
  /// Revocation consequences (checkpoint overhead, restart and
  /// migration fees); always 0 for planned schedules — only the
  /// rolling-horizon simulator realises interruptions (ISSUE 7).
  double interruption = 0.0;
  double total() const {
    return compute + holding + transfer_in + transfer_out + interruption;
  }
  /// "Transfer" as plotted by the paper: in + out.
  double transfer() const { return transfer_in + transfer_out; }
};

/// An executed or planned rental schedule.
struct RentalPlan {
  milp::MipStatus status = milp::MipStatus::NoIncumbent;
  std::vector<double> alpha;  ///< data generated per slot
  std::vector<double> beta;   ///< inventory at the end of each slot
  std::vector<char> chi;      ///< rental decision per slot
  CostBreakdown cost;
  std::size_t nodes_explored = 0;
  /// Node LPs re-optimised from the parent basis vs. cold-solved (see
  /// milp::MipResult); zero for non-MILP backends (Wagner-Whitin, DP).
  std::size_t warm_started_nodes = 0;
  std::size_t cold_solved_nodes = 0;
  /// Root-node (l,S) lot-sizing cuts added to the MILP and the fraction
  /// of the root gap they closed (milp::MipResult); zero for non-MILP
  /// backends.
  std::size_t cuts_added = 0;
  double root_gap_closed = 0.0;
  /// Sparse-LU telemetry aggregated over every node LP solver.
  lp::FactorizationStats factor_stats;

  bool feasible() const {
    return status == milp::MipStatus::Optimal ||
           status == milp::MipStatus::NodeLimit ||
           status == milp::MipStatus::TimeLimit;
  }
};

/// MILP formulation choice for solve_drrp.
enum class DrrpFormulation {
  /// Pick FacilityLocation when the instance is uncapacitated,
  /// Aggregated otherwise.
  Auto,
  /// The paper's objective (1) with constraints (2)-(7).  Exact, but
  /// its LP relaxation is weak (fractional chi = alpha/B), so branch &
  /// bound explores many nodes.
  Aggregated,
  /// Krarup-Bilde disaggregation: y[t][s] units generated in slot t to
  /// serve slot s, with y <= D_s * chi_t.  Provably equivalent, and the
  /// LP relaxation of uncapacitated lot-sizing in this form is
  /// integral, so branch & bound usually finishes at the root.
  FacilityLocation,
};

/// Variable handles into the MILP built by build_drrp (slot-major).
struct DrrpVariables {
  std::vector<milp::Var> alpha, beta, chi;
};

/// Handles into the facility-location MILP.
struct DrrpFlVariables {
  struct Arc {
    std::size_t from;  ///< generation slot t
    std::size_t to;    ///< served slot s >= t
    milp::Var amount;  ///< GB generated at t for s
  };
  std::vector<milp::Var> chi;      ///< per slot
  std::vector<Arc> arcs;
  std::vector<milp::Var> eps_use;  ///< GB of initial storage used per slot
};

/// Lowers a DRRP instance to the paper's aggregated MILP.
milp::Model build_drrp(const DrrpInstance& instance, DrrpVariables* vars);

/// Lowers to the facility-location MILP (uncapacitated instances only).
milp::Model build_drrp_facility_location(const DrrpInstance& instance,
                                         DrrpFlVariables* vars);

/// Builds and solves; extracts the plan and its cost decomposition.
RentalPlan solve_drrp(const DrrpInstance& instance,
                      const milp::BnbOptions& options = {},
                      DrrpFormulation formulation = DrrpFormulation::Auto);

/// The no-planning baseline of Figure 10: every slot generates exactly
/// that slot's demand on a freshly rented instance (chi_t = 1 whenever
/// D_t > 0; no inventory is carried beyond the initial epsilon, which
/// serves the earliest demand).
RentalPlan no_plan_schedule(const DrrpInstance& instance);

/// Evaluates the cost decomposition of an arbitrary (alpha, chi)
/// schedule on an instance, reconstructing beta from the balance
/// equation.  Throws if the schedule under-serves demand.
CostBreakdown evaluate_schedule(const DrrpInstance& instance,
                                const std::vector<double>& alpha,
                                const std::vector<char>& chi);

}  // namespace rrp::core
