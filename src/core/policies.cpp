#include "core/policies.hpp"

#include "common/error.hpp"

namespace rrp::core {

const char* to_string(ReplanMode mode) {
  switch (mode) {
    case ReplanMode::Rebuild:
      return "rebuild";
    case ReplanMode::Incremental:
      return "incremental";
  }
  return "unknown";
}

ts::SarimaRefitOptions default_policy_sarima_refit() {
  ts::SarimaRefitOptions refit;
  // The evaluation budget every policy fit has always used.
  refit.scratch.optimizer.max_evaluations = 4000;
  return refit;
}

void PolicyConfig::validate() const {
  RRP_EXPECTS(lookahead >= 1);
  // Rejects negatives and NaN; +infinity is an explicit "no limit".
  RRP_EXPECTS(replan_time_limit >= 0.0);
  RRP_EXPECTS(replan_every >= 1);
  RRP_EXPECTS(replan_every <= lookahead);
  RRP_EXPECTS(distribution_support >= 2);
  RRP_EXPECTS(fit_window >= 48);
  RRP_EXPECTS(forecast_window >= 48);
  if (planner == PlannerKind::Srrp) {
    RRP_EXPECTS(!stage_widths.empty());
    for (std::size_t w : stage_widths) RRP_EXPECTS(w >= 1);
    // Stage 1 needs >= 2 states whenever an out-of-bid point exists.
    RRP_EXPECTS(stage_widths.front() >= 2);
  }
  if (bids == BidStrategy::FixedValue) RRP_EXPECTS(fixed_bid > 0.0);
  if (bids == BidStrategy::OracleDeviated)
    RRP_EXPECTS(bid_deviation > -1.0);
}

namespace {

PolicyConfig base_drrp(std::string name, BidStrategy bids) {
  PolicyConfig cfg;
  cfg.name = std::move(name);
  cfg.planner = PlannerKind::Drrp;
  cfg.bids = bids;
  cfg.lookahead = 24;  // paper: DRRP plans over 24 hours
  return cfg;
}

PolicyConfig base_srrp(std::string name, BidStrategy bids) {
  PolicyConfig cfg;
  cfg.name = std::move(name);
  cfg.planner = PlannerKind::Srrp;
  cfg.bids = bids;
  cfg.lookahead = 6;  // paper: SRRP plans over 6 hours
  cfg.stage_widths = {4, 3, 2, 1, 1, 1};
  // Only consulted by the MILP backend: re-planning happens hourly, so
  // a 0.1% per-plan optimality gap is far below realised-cost noise.
  cfg.solver.relative_gap = 1e-3;
  return cfg;
}

}  // namespace

PolicyConfig no_plan_policy() {
  PolicyConfig cfg;
  cfg.name = "no-plan";
  cfg.planner = PlannerKind::NoPlan;
  cfg.bids = BidStrategy::OnDemandAlways;
  cfg.lookahead = 1;
  return cfg;
}

PolicyConfig on_demand_policy() {
  return base_drrp("on-demand", BidStrategy::OnDemandAlways);
}

PolicyConfig det_predict_policy() {
  return base_drrp("det-predict", BidStrategy::Predicted);
}

PolicyConfig sto_predict_policy() {
  return base_srrp("sto-predict", BidStrategy::Predicted);
}

PolicyConfig det_exp_mean_policy() {
  return base_drrp("det-exp-mean", BidStrategy::ExpectedMean);
}

PolicyConfig sto_exp_mean_policy() {
  return base_srrp("sto-exp-mean", BidStrategy::ExpectedMean);
}

PolicyConfig oracle_policy() {
  return base_drrp("oracle", BidStrategy::Oracle);
}

PolicyConfig sto_markov_policy() {
  PolicyConfig cfg = base_srrp("sto-markov", BidStrategy::ExpectedMean);
  cfg.markov_tree = true;
  return cfg;
}

std::vector<PolicyConfig> figure12a_policies() {
  return {on_demand_policy(), det_predict_policy(), sto_predict_policy(),
          det_exp_mean_policy(), sto_exp_mean_policy()};
}

std::vector<PolicyConfig> interruption_policies() {
  PolicyConfig ww = det_exp_mean_policy();
  ww.name = "wagner-whitin";
  ww.replan_every = 6;  // committed schedule rides through revocations
  return {no_plan_policy(), on_demand_policy(), det_exp_mean_policy(),
          std::move(ww), sto_exp_mean_policy()};
}

}  // namespace rrp::core
