// Rolling-horizon execution of rental policies against realised spot
// prices (paper Section V-C / V-D: "the resource rental planning is
// often conducted in a rolling horizon fashion, i.e., a revised plan is
// issued periodically to include the new information").
//
// Each hour the policy re-plans over its lookahead using only
// information available so far (price history, its bid strategy, the
// current inventory), commits the first-slot decision, and the market
// settles it against the actual spot price: a lost auction forces an
// on-demand rental at lambda to keep serving demand.
#pragma once

#include <vector>

#include "common/fault_injection.hpp"
#include "core/drrp.hpp"
#include "core/policies.hpp"
#include "market/cost_model.hpp"
#include "market/instance_types.hpp"

namespace rrp::core {

struct SimulationInputs {
  market::VmClass vm = market::VmClass::C1Medium;
  std::vector<double> demand;       ///< per evaluation slot; known ahead
  std::vector<double> actual_spot;  ///< realised hourly spot prices
  std::vector<double> history;      ///< hourly prices before slot 0
  market::CostModel costs = market::CostModel::paper_defaults();
  double initial_storage = 0.0;

  std::size_t horizon() const { return demand.size(); }

  /// Throws rrp::InvalidArgument with a message naming the offending
  /// field/slot when: demand is empty, NaN, negative or infinite; a
  /// price (actual_spot or history) is NaN, non-positive or infinite;
  /// the price horizon does not match the demand horizon; the history
  /// is empty; or initial_storage is NaN, negative or infinite.
  void validate() const;
};

struct SlotRecord {
  bool rented = false;
  bool won = false;          ///< auction outcome (true if no auction ran)
  double bid = 0.0;
  double price_paid = 0.0;   ///< 0 when not rented
  double alpha = 0.0;
  double inventory = 0.0;    ///< end-of-slot beta
};

/// Why a re-plan attempt at some slot produced no usable plan.
enum class FallbackReason {
  SolverTimeout,     ///< the re-plan deadline expired (real or injected)
  NumericalFailure,  ///< the solver escalated rrp::NumericalError
  PlanRejected,      ///< the solver finished without a usable incumbent
};

/// What the recovery ladder executed instead of a fresh plan, in
/// preference order.
enum class FallbackAction {
  ReusedPlanTail,  ///< the previous plan still covered the slot
  HeuristicPlan,   ///< fresh Wagner-Whitin plan on the current estimates
  OnDemand,        ///< rent on demand for exactly this slot's demand
};

const char* to_string(FallbackReason reason);
const char* to_string(FallbackAction action);

/// One degraded re-plan: the slot it happened at, why the fresh plan was
/// unavailable, and which ladder rung served the slot instead.
struct FallbackEvent {
  std::size_t slot = 0;
  FallbackReason reason = FallbackReason::PlanRejected;
  FallbackAction action = FallbackAction::OnDemand;
};

/// One sanitised price-feed fault: the tick as (not) delivered by the
/// faulty feed and the value the models actually consumed.  Settlement
/// always uses the true market price; only the policy's observations
/// degrade.
struct PriceFeedEvent {
  std::size_t slot = 0;
  testing::PriceFaultKind kind = testing::PriceFaultKind::Gap;
  double raw = 0.0;   ///< faulted tick (NaN when nothing arrived)
  double used = 0.0;  ///< sanitised value fed to the models
};

struct SimulationResult {
  CostBreakdown cost;        ///< realised, not planned
  std::vector<SlotRecord> slots;
  std::size_t out_of_bid_events = 0;
  std::size_t rentals = 0;

  // --- Degradation telemetry (one FallbackEvent per failed re-plan). ---
  std::vector<FallbackEvent> fallbacks;
  std::vector<PriceFeedEvent> price_faults;
  std::size_t replan_timeouts = 0;
  std::size_t replan_numerical_failures = 0;
  std::size_t replans_rejected = 0;
  std::size_t fallback_reused_tail = 0;
  std::size_t fallback_heuristic = 0;
  std::size_t fallback_on_demand = 0;

  // --- Solver telemetry (MILP backend; all zero for the DP backend). ---
  std::size_t solver_nodes_explored = 0;   ///< summed over all re-plans
  std::size_t solver_warm_started_nodes = 0;
  std::size_t solver_cold_solved_nodes = 0;

  std::size_t degraded_replans() const { return fallbacks.size(); }

  double total_cost() const { return cost.total(); }
};

/// Runs the policy over the evaluation window.  Deterministic given the
/// inputs (any model fitting inside is deterministic).
SimulationResult simulate_policy(const SimulationInputs& inputs,
                                 const PolicyConfig& policy);

/// Same, with an optional fault injector (tests / chaos experiments):
/// solver faults fire when the policy attempts a re-plan at the faulted
/// slot; price-feed faults corrupt the observed tick before it reaches
/// the models.  Every injected fault is absorbed by the recovery ladder
/// and recorded in the result's telemetry — the simulation always
/// completes.  A null injector is identical to the two-argument
/// overload.
SimulationResult simulate_policy(const SimulationInputs& inputs,
                                 const PolicyConfig& policy,
                                 const testing::FaultInjector* injector);

/// The paper's ideal case: "an oracle who knows all the future
/// realization of spot instance price in advance, and takes them as
/// input to the DRRP model" — a single full-horizon DRRP solve on the
/// realised prices.  This is a certified lower bound on the realised
/// cost of ANY policy (every policy's executed schedule is feasible for
/// that DRRP, and wins pay spot while losses pay more).
double ideal_case_cost(const SimulationInputs& inputs);

/// Overpay of a policy relative to the ideal-case (oracle) cost, the
/// y-axis of Figure 12(a): (cost - ideal) / ideal.
double overpay_fraction(double policy_cost, double ideal_cost);

}  // namespace rrp::core
