// Rolling-horizon execution of rental policies against realised spot
// prices (paper Section V-C / V-D: "the resource rental planning is
// often conducted in a rolling horizon fashion, i.e., a revised plan is
// issued periodically to include the new information").
//
// Each hour the policy re-plans over its lookahead using only
// information available so far (price history, its bid strategy, the
// current inventory), commits the first-slot decision, and the market
// settles it against the actual spot price: a lost auction forces an
// on-demand rental at lambda to keep serving demand.
#pragma once

#include <span>
#include <vector>

#include "common/fault_injection.hpp"
#include "core/drrp.hpp"
#include "core/policies.hpp"
#include "market/cost_model.hpp"
#include "market/instance_types.hpp"
#include "market/revocation.hpp"
#include "market/spot_trace.hpp"

namespace rrp::core {

struct SimulationInputs {
  market::VmClass vm = market::VmClass::C1Medium;
  std::vector<double> demand;       ///< per evaluation slot; known ahead
  std::vector<double> actual_spot;  ///< realised hourly spot prices
  std::vector<double> history;      ///< hourly prices before slot 0
  market::CostModel costs = market::CostModel::paper_defaults();
  double initial_storage = 0.0;

  // --- Revocation risk (ISSUE 7) -------------------------------------
  /// Interruption model and consequence parameters.  `enabled` gates
  /// the hazard/storm/bid-cross processes; the consequence knobs
  /// (checkpoint, restart, migration) also govern injector-armed
  /// revocations when the model itself is off.
  market::RevocationConfig revocation;
  /// Per-slot maximum intra-slot spot price (SpotTrace::hourly_max);
  /// empty means "no intra-slot view" and disables bid-cross
  /// revocations (the settled price never exceeds a winning bid).
  std::vector<double> intra_slot_max;
  /// Per-slot revocation events carried by the trace
  /// (SpotTrace::hourly_revocations); empty means none.  Honoured only
  /// while revocation.enabled.
  std::vector<market::HourlyRevocation> trace_revocations;

  std::size_t horizon() const { return demand.size(); }

  /// Throws rrp::InvalidArgument with a message naming the offending
  /// field/slot when: demand is empty, NaN, negative or infinite; a
  /// price (actual_spot, history or intra_slot_max) is NaN,
  /// non-positive or infinite; a price/revocation series does not match
  /// the demand horizon; the history is empty; initial_storage is NaN,
  /// negative or infinite; or a revocation parameter is outside its
  /// domain.
  void validate() const;
};

struct SlotRecord {
  bool rented = false;
  bool won = false;          ///< auction outcome (true if no auction ran)
  bool spot = false;         ///< acquisition was a won spot instance
  bool revoked = false;      ///< the spot instance was revoked mid-slot
  double bid = 0.0;
  double price_paid = 0.0;   ///< 0 when not rented
  double alpha = 0.0;
  double inventory = 0.0;    ///< end-of-slot beta
};

/// Why a re-plan attempt at some slot produced no usable plan.
enum class FallbackReason {
  SolverTimeout,     ///< the re-plan deadline expired (real or injected)
  NumericalFailure,  ///< the solver escalated rrp::NumericalError
  PlanRejected,      ///< the solver finished without a usable incumbent
};

/// What the recovery ladder executed instead of a fresh plan, in
/// preference order.
enum class FallbackAction {
  ReusedPlanTail,  ///< the previous plan still covered the slot
  HeuristicPlan,   ///< fresh Wagner-Whitin plan on the current estimates
  OnDemand,        ///< rent on demand for exactly this slot's demand
};

const char* to_string(FallbackReason reason);
const char* to_string(FallbackAction action);

/// One degraded re-plan: the slot it happened at, why the fresh plan was
/// unavailable, and which ladder rung served the slot instead.
struct FallbackEvent {
  std::size_t slot = 0;
  FallbackReason reason = FallbackReason::PlanRejected;
  FallbackAction action = FallbackAction::OnDemand;
};

/// One sanitised price-feed fault: the tick as (not) delivered by the
/// faulty feed and the value the models actually consumed.  Settlement
/// always uses the true market price; only the policy's observations
/// degrade.
struct PriceFeedEvent {
  std::size_t slot = 0;
  testing::PriceFaultKind kind = testing::PriceFaultKind::Gap;
  double raw = 0.0;   ///< faulted tick (NaN when nothing arrived)
  double used = 0.0;  ///< sanitised value fed to the models
};

/// Which interruption-recovery rung replaced a revoked spot instance,
/// in preference order (re-acquire spot → migrate type → on-demand).
enum class RevocationRecovery {
  ReacquiredSpot,    ///< same class, same bid (hazard reclaims only)
  MigratedType,      ///< checkpoint moved to another instance type
  OnDemandBackstop,  ///< guaranteed on-demand finishes the slot
};

const char* to_string(RevocationRecovery recovery);

/// One mid-slot revocation of a held spot instance: why it struck, how
/// far into the slot, how much un-checkpointed work was lost, and which
/// recovery rung finished the slot.
struct RevocationEvent {
  std::size_t slot = 0;
  market::RevocationKind kind = market::RevocationKind::Hazard;
  double fraction = 0.0;   ///< slot fraction at which the instance died
  double lost_work = 0.0;  ///< slot fraction of work redone (f - preserved)
  RevocationRecovery recovery = RevocationRecovery::OnDemandBackstop;
};

/// One cross-type migration performed by the recovery ladder.
struct MigrationEvent {
  std::size_t slot = 0;
  market::VmClass from = market::VmClass::C1Medium;
  market::VmClass to = market::VmClass::C1Medium;
  double cost = 0.0;  ///< fixed migration fee paid (checkpoint transfer)
};

struct SimulationResult {
  CostBreakdown cost;        ///< realised, not planned
  std::vector<SlotRecord> slots;
  std::size_t out_of_bid_events = 0;
  std::size_t rentals = 0;

  // --- Degradation telemetry (one FallbackEvent per failed re-plan). ---
  std::vector<FallbackEvent> fallbacks;
  std::vector<PriceFeedEvent> price_faults;
  std::size_t replan_timeouts = 0;
  std::size_t replan_numerical_failures = 0;
  std::size_t replans_rejected = 0;
  std::size_t fallback_reused_tail = 0;
  std::size_t fallback_heuristic = 0;
  std::size_t fallback_on_demand = 0;

  // --- Solver telemetry (MILP backend; all zero for the DP backend). ---
  std::size_t solver_nodes_explored = 0;   ///< summed over all re-plans
  std::size_t solver_warm_started_nodes = 0;
  std::size_t solver_cold_solved_nodes = 0;
  std::size_t solver_cuts_added = 0;       ///< root (l,S) cuts, summed

  // --- Re-plan latency & model maintenance (ISSUE 10). -----------------
  /// Wall-clock seconds of each executed re-plan (model refresh
  /// included), in execution order; feeds the CLI p50/p95 footer and
  /// bench_replan_json.
  std::vector<double> replan_seconds;
  /// Seconds of replan_seconds spent refreshing models (distribution,
  /// SARIMA, Markov chain) as opposed to solving.
  double model_maintenance_seconds = 0.0;
  std::size_t model_refreshes = 0;
  std::size_t sarima_refits_kept = 0;
  std::size_t sarima_warm_refits = 0;
  std::size_t sarima_scratch_refits = 0;
  std::size_t tree_repairs = 0;   ///< scenario trees repaired in place
  std::size_t tree_rebuilds = 0;  ///< scenario trees built from scratch

  // --- Revocation telemetry (one RevocationEvent per revoked slot). ---
  std::vector<RevocationEvent> revocations;
  std::vector<MigrationEvent> migrations;
  std::size_t revoked_bid_cross = 0;
  std::size_t revoked_hazard = 0;
  std::size_t revoked_storm = 0;
  std::size_t recovered_spot = 0;       ///< rung 1: spot re-acquired
  std::size_t recovered_migration = 0;  ///< rung 2: migrated type
  std::size_t recovered_on_demand = 0;  ///< rung 3: on-demand backstop
  double work_lost = 0.0;               ///< slot-fraction units redone
  double checkpoint_overhead_cost = 0.0;

  std::size_t degraded_replans() const { return fallbacks.size(); }
  std::size_t revoked_slots() const { return revocations.size(); }
  /// Realised interruption spend (checkpoint + restart + migration).
  double interruption_cost() const { return cost.interruption; }

  double total_cost() const { return cost.total(); }
};

/// Runs the policy over the evaluation window.  Deterministic given the
/// inputs (any model fitting inside is deterministic).
SimulationResult simulate_policy(const SimulationInputs& inputs,
                                 const PolicyConfig& policy);

/// Same, with an optional fault injector (tests / chaos experiments):
/// solver faults fire when the policy attempts a re-plan at the faulted
/// slot; price-feed faults corrupt the observed tick before it reaches
/// the models.  Every injected fault is absorbed by the recovery ladder
/// and recorded in the result's telemetry — the simulation always
/// completes.  A null injector is identical to the two-argument
/// overload.
SimulationResult simulate_policy(const SimulationInputs& inputs,
                                 const PolicyConfig& policy,
                                 const testing::FaultInjector* injector);

/// The paper's ideal case: "an oracle who knows all the future
/// realization of spot instance price in advance, and takes them as
/// input to the DRRP model" — a single full-horizon DRRP solve on the
/// realised prices.  This is a certified lower bound on the realised
/// cost of ANY policy (every policy's executed schedule is feasible for
/// that DRRP, and wins pay spot while losses pay more).
double ideal_case_cost(const SimulationInputs& inputs);

/// Overpay of a policy relative to the ideal-case (oracle) cost, the
/// y-axis of Figure 12(a): (cost - ideal) / ideal.
double overpay_fraction(double policy_cost, double ideal_cost);

/// Linear-interpolated percentile (0..100) of a sample set; 0 when
/// empty.  Used for the re-plan latency p50/p95 reported by the CLI and
/// the replan bench.
double latency_percentile(std::span<const double> samples, double pct);

}  // namespace rrp::core
