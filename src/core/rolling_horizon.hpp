// Rolling-horizon execution of rental policies against realised spot
// prices (paper Section V-C / V-D: "the resource rental planning is
// often conducted in a rolling horizon fashion, i.e., a revised plan is
// issued periodically to include the new information").
//
// Each hour the policy re-plans over its lookahead using only
// information available so far (price history, its bid strategy, the
// current inventory), commits the first-slot decision, and the market
// settles it against the actual spot price: a lost auction forces an
// on-demand rental at lambda to keep serving demand.
#pragma once

#include <vector>

#include "core/drrp.hpp"
#include "core/policies.hpp"
#include "market/cost_model.hpp"
#include "market/instance_types.hpp"

namespace rrp::core {

struct SimulationInputs {
  market::VmClass vm = market::VmClass::C1Medium;
  std::vector<double> demand;       ///< per evaluation slot; known ahead
  std::vector<double> actual_spot;  ///< realised hourly spot prices
  std::vector<double> history;      ///< hourly prices before slot 0
  market::CostModel costs = market::CostModel::paper_defaults();
  double initial_storage = 0.0;

  std::size_t horizon() const { return demand.size(); }
  void validate() const;
};

struct SlotRecord {
  bool rented = false;
  bool won = false;          ///< auction outcome (true if no auction ran)
  double bid = 0.0;
  double price_paid = 0.0;   ///< 0 when not rented
  double alpha = 0.0;
  double inventory = 0.0;    ///< end-of-slot beta
};

struct SimulationResult {
  CostBreakdown cost;        ///< realised, not planned
  std::vector<SlotRecord> slots;
  std::size_t out_of_bid_events = 0;
  std::size_t rentals = 0;

  double total_cost() const { return cost.total(); }
};

/// Runs the policy over the evaluation window.  Deterministic given the
/// inputs (any model fitting inside is deterministic).
SimulationResult simulate_policy(const SimulationInputs& inputs,
                                 const PolicyConfig& policy);

/// The paper's ideal case: "an oracle who knows all the future
/// realization of spot instance price in advance, and takes them as
/// input to the DRRP model" — a single full-horizon DRRP solve on the
/// realised prices.  This is a certified lower bound on the realised
/// cost of ANY policy (every policy's executed schedule is feasible for
/// that DRRP, and wins pay spot while losses pay more).
double ideal_case_cost(const SimulationInputs& inputs);

/// Overpay of a policy relative to the ideal-case (oracle) cost, the
/// y-axis of Figure 12(a): (cost - ideal) / ideal.
double overpay_fraction(double policy_cost, double ideal_cost);

}  // namespace rrp::core
