// Stochastic Resource Rental Planning (SRRP) — paper Section IV.
//
// SRRP minimises the *expected* rental cost (9) over a multistage
// scenario tree of spot-price realisations, via the deterministic
// equivalent MILP (13)-(19): every tree vertex v carries its own
// recourse variables alpha_v, beta_v, chi_v, probability-weighted in
// the objective and chained through the tree's parent relation in the
// inventory balance (non-anticipativity holds by construction, since a
// vertex's decision is shared by every scenario passing through it).
#pragma once

#include "core/drrp.hpp"
#include "core/scenario_tree.hpp"

namespace rrp::core {

struct SrrpInstance {
  market::VmClass vm = market::VmClass::C1Medium;
  std::vector<double> demand;  ///< D(t) for t = 1..T (index 0 = slot 1)
  ScenarioTree tree;           ///< num_stages() must equal demand.size()
  market::CostModel costs = market::CostModel::paper_defaults();
  double initial_storage = 0.0;
  double bottleneck_rate = 0.0;
  std::vector<double> bottleneck_capacity;  ///< per stage; empty = +inf
  bool tighten_forcing_bound = true;
  /// Optional per-vertex demand (size = tree.num_vertices(); entry 0
  /// unused), overriding the per-stage `demand` — this is the paper's
  /// future-work extension to *time-varying workloads*: scenario-tree
  /// vertices then carry joint (price, demand) states.
  std::vector<double> vertex_demand;

  std::size_t horizon() const { return demand.size(); }
  /// Demand at a tree vertex (stage demand unless overridden).
  double demand_at_vertex(std::size_t v) const;
  void validate() const;
};

/// One joint (price, demand) state used to build stage supports for the
/// demand-uncertainty extension.
struct JointPoint {
  PricePoint price;
  double demand = 0.0;
};

/// Builds a scenario tree whose vertices carry joint (price, demand)
/// realisations, and the matching per-vertex demand vector.  Each
/// stage's joint points must have probabilities summing to 1.
std::pair<ScenarioTree, std::vector<double>> build_joint_tree(
    std::span<const std::vector<JointPoint>> stage_supports);

/// SRRP solution: one decision triple per tree vertex (vertex 0 is the
/// root and carries no decision; its entries are zero).
struct SrrpPolicy {
  milp::MipStatus status = milp::MipStatus::NoIncumbent;
  std::vector<double> alpha, beta;
  std::vector<char> chi;
  double expected_cost = 0.0;
  std::size_t nodes_explored = 0;
  /// Node LPs re-optimised from the parent basis vs. cold-solved (see
  /// milp::MipResult); zero for the tree-DP backend.
  std::size_t warm_started_nodes = 0;
  std::size_t cold_solved_nodes = 0;
  /// Root-node (l,S) lot-sizing cuts (one chain per scenario path) and
  /// the root-gap fraction they closed; zero outside the aggregated
  /// MILP backend.
  std::size_t cuts_added = 0;
  double root_gap_closed = 0.0;
  /// Sparse-LU telemetry aggregated over every node LP solver.
  lp::FactorizationStats factor_stats;

  bool feasible() const {
    return status == milp::MipStatus::Optimal ||
           status == milp::MipStatus::NodeLimit ||
           status == milp::MipStatus::TimeLimit;
  }
};

/// Variable handles into the MILP, indexed by vertex (entry 0 unused).
struct SrrpVariables {
  std::vector<milp::Var> alpha, beta, chi;
};

/// Formulation of the deterministic equivalent.
enum class SrrpFormulation {
  Auto,         ///< FacilityLocation unless the bottleneck is active
  /// The paper's (13)-(19) verbatim.  Weak LP relaxation: branch &
  /// bound over ~|V| binaries explodes beyond toy trees.
  Aggregated,
  /// Path-arc strengthened deterministic equivalent: the aggregated
  /// variables and objective, plus redundant coverage arcs
  /// y[u][v] <= D_v * chi_u (u an ancestor-or-self of v) tied to the
  /// production variables per scenario path.  On a chain this is
  /// exactly the Krarup-Bilde facility-location strength; on a tree a
  /// naive pairwise FL would be WRONG (one unit of inventory may serve
  /// different demands in mutually exclusive branches), so the arcs
  /// here only *cut* the relaxation while alpha/beta keep the exact
  /// cost semantics.
  FacilityLocation,
};

/// Handles into the strengthened MILP.
struct SrrpFlVariables {
  struct Arc {
    std::size_t from;  ///< generating vertex u
    std::size_t to;    ///< served vertex v (u is an ancestor-or-self)
    milp::Var amount;
  };
  std::vector<milp::Var> alpha, beta, chi;  ///< per vertex (entry 0 unused)
  std::vector<Arc> arcs;
  std::vector<milp::Var> eps_use;  ///< per vertex (invalid if absent)
};

/// Lowers to the paper's aggregated deterministic equivalent.
milp::Model build_srrp(const SrrpInstance& instance, SrrpVariables* vars);

/// Lowers to the tree facility-location MILP (uncapacitated only).
milp::Model build_srrp_facility_location(const SrrpInstance& instance,
                                         SrrpFlVariables* vars);

/// Builds and solves the deterministic equivalent.
SrrpPolicy solve_srrp(const SrrpInstance& instance,
                      const milp::BnbOptions& options = {},
                      SrrpFormulation formulation = SrrpFormulation::Auto);

/// Builds per-stage branch supports for the tree via bid-dependent
/// dynamic sampling: stage t uses bid[t] against the base distribution,
/// out-of-bid mass collapsing onto lambda; each stage's support is then
/// reduced to stage_widths[t] points (out-of-bid state preserved).
std::vector<std::vector<PricePoint>> make_stage_supports(
    const EmpiricalPriceDistribution& base, std::span<const double> bids,
    double lambda, std::span<const std::size_t> stage_widths);

/// Picks the stage-1 vertex matching a realised acquisition: the
/// out-of-bid vertex when the bid lost, otherwise the in-bid vertex
/// whose price is nearest the realised spot price.
std::size_t match_stage1_vertex(const ScenarioTree& tree, bool won,
                                double realized_price);

}  // namespace rrp::core
