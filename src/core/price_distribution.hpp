// Empirical spot-price distributions and bid-dependent dynamic sampling
// (paper Section IV-C).
//
// The base distribution summarises a historical price series as a
// discrete distribution over a sorted support.  For a bid price b and
// on-demand price lambda, the sampled distribution keeps every support
// point s <= b (the bid wins) and collapses the remaining mass onto
// lambda — the out-of-bid event in which the ASP falls back to the
// on-demand market (equation (10)).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace rrp::core {

/// One support point of a discrete price distribution.
struct PricePoint {
  double price = 0.0;
  double prob = 0.0;
  bool out_of_bid = false;  ///< this point is the lambda fallback state
};

class EmpiricalPriceDistribution {
 public:
  /// Summarises a price history.  When the number of distinct values
  /// exceeds `max_support`, values are clustered into `max_support`
  /// equal-probability quantile buckets (probability-weighted means),
  /// keeping the scenario tree tractable (DESIGN.md decision 3).
  static EmpiricalPriceDistribution from_history(
      std::span<const double> prices, std::size_t max_support = 16);

  /// Exact discrete distribution from explicit support/probabilities
  /// (sorted ascending, probabilities summing to 1).
  EmpiricalPriceDistribution(std::vector<double> values,
                             std::vector<double> probs);

  const std::vector<double>& values() const { return values_; }
  const std::vector<double>& probabilities() const { return probs_; }
  std::size_t support_size() const { return values_.size(); }

  double mean() const;

  /// Probability that the price exceeds `bid` (out-of-bid likelihood).
  double out_of_bid_probability(double bid) const;

  /// Bid-dependent dynamic sampling (paper eq. (10)): support points
  /// <= bid keep their probability; the remainder becomes a single
  /// point at the on-demand price `lambda`.  Probabilities always sum
  /// to 1; the lambda point is dropped when its mass is ~0.
  std::vector<PricePoint> truncate_at_bid(double bid, double lambda) const;

 private:
  std::vector<double> values_;  ///< sorted ascending, distinct
  std::vector<double> probs_;
};

/// Sliding-window empirical distribution with incremental maintenance
/// (ISSUE 10): a ring buffer of the last `capacity` observations plus a
/// bucketed count index over the sorted distinct values, so adding a
/// tick updates one bucket instead of re-sorting the window.  Add/evict
/// is O(log k) to locate the bucket plus an O(k) shift only when a
/// distinct value appears or dies (k = distinct values in the window,
/// typically far below the window length); no call ever sorts the full
/// history, which is what the `batch-sort` AST-lint rule enforces for
/// this file.
///
/// snapshot() and mean() are bit-identical to the batch path on the
/// same window (EmpiricalPriceDistribution::from_history and
/// rrp::stats::mean respectively): both walk the identical sorted
/// (value, count) sequence through the identical clustering
/// arithmetic, property-tested in test_price_distribution.cpp.
class SlidingEmpiricalDistribution {
 public:
  explicit SlidingEmpiricalDistribution(std::size_t capacity);

  /// Appends one observation (> 0, finite), evicting the oldest when
  /// the window is full.
  void push(double price);

  std::size_t size() const { return count_; }
  std::size_t capacity() const { return ring_.size(); }
  bool full() const { return count_ == ring_.size(); }
  /// Distinct values currently in the window (the index size k).
  std::size_t distinct() const { return values_.size(); }

  /// Mean of the window, summed oldest-to-newest — the same order and
  /// arithmetic as rrp::stats::mean over the window vector.
  double mean() const;

  /// The window as a vector, oldest first (the series from_history
  /// would receive); exposed for equivalence tests.
  std::vector<double> window() const;

  /// The batch-equivalent distribution of the current window.
  EmpiricalPriceDistribution snapshot(std::size_t max_support = 16) const;

 private:
  void add_value(double price);
  void remove_value(double price);

  std::vector<double> ring_;         ///< fixed capacity, circular
  std::size_t head_ = 0;             ///< next write position
  std::size_t count_ = 0;            ///< observations held (<= capacity)
  std::vector<double> values_;       ///< sorted distinct window values
  std::vector<std::size_t> counts_;  ///< multiplicity per distinct value
};

/// Reduces a discrete set of price points to at most `max_points` by
/// quantile clustering (probability-weighted); preserves any out-of-bid
/// point exactly.  Used to bound per-stage branching in scenario trees.
std::vector<PricePoint> reduce_support(std::span<const PricePoint> points,
                                       std::size_t max_points);

/// Probability-weighted mean of a point set.
double mean_of(std::span<const PricePoint> points);

}  // namespace rrp::core
