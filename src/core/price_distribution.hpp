// Empirical spot-price distributions and bid-dependent dynamic sampling
// (paper Section IV-C).
//
// The base distribution summarises a historical price series as a
// discrete distribution over a sorted support.  For a bid price b and
// on-demand price lambda, the sampled distribution keeps every support
// point s <= b (the bid wins) and collapses the remaining mass onto
// lambda — the out-of-bid event in which the ASP falls back to the
// on-demand market (equation (10)).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace rrp::core {

/// One support point of a discrete price distribution.
struct PricePoint {
  double price = 0.0;
  double prob = 0.0;
  bool out_of_bid = false;  ///< this point is the lambda fallback state
};

class EmpiricalPriceDistribution {
 public:
  /// Summarises a price history.  When the number of distinct values
  /// exceeds `max_support`, values are clustered into `max_support`
  /// equal-probability quantile buckets (probability-weighted means),
  /// keeping the scenario tree tractable (DESIGN.md decision 3).
  static EmpiricalPriceDistribution from_history(
      std::span<const double> prices, std::size_t max_support = 16);

  /// Exact discrete distribution from explicit support/probabilities
  /// (sorted ascending, probabilities summing to 1).
  EmpiricalPriceDistribution(std::vector<double> values,
                             std::vector<double> probs);

  const std::vector<double>& values() const { return values_; }
  const std::vector<double>& probabilities() const { return probs_; }
  std::size_t support_size() const { return values_.size(); }

  double mean() const;

  /// Probability that the price exceeds `bid` (out-of-bid likelihood).
  double out_of_bid_probability(double bid) const;

  /// Bid-dependent dynamic sampling (paper eq. (10)): support points
  /// <= bid keep their probability; the remainder becomes a single
  /// point at the on-demand price `lambda`.  Probabilities always sum
  /// to 1; the lambda point is dropped when its mass is ~0.
  std::vector<PricePoint> truncate_at_bid(double bid, double lambda) const;

 private:
  std::vector<double> values_;  ///< sorted ascending, distinct
  std::vector<double> probs_;
};

/// Reduces a discrete set of price points to at most `max_points` by
/// quantile clustering (probability-weighted); preserves any out-of-bid
/// point exactly.  Used to bound per-stage branching in scenario trees.
std::vector<PricePoint> reduce_support(std::span<const PricePoint> points,
                                       std::size_t max_points);

/// Probability-weighted mean of a point set.
double mean_of(std::span<const PricePoint> points);

}  // namespace rrp::core
