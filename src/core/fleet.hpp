// Fleet-level planning: the paper's full objective over the VM-class
// set I (Section III-B).
//
// "Considering an ASP rents n compute instances of the same VM class
// from the cloud market, each serving 1/n of the total demand ... the
// overall resource cost is calculated as n times the rental cost
// associated with a single compute instance ... Since n for each
// instance class is fixed, our proposed resource rental planning scheme
// is conducted on a per-instance basis."
//
// This module packages that decomposition: each class entry carries its
// total demand and instance count; planning solves one per-instance
// DRRP per class (in parallel) and aggregates the per-class costs into
// the fleet total the paper's objective (1) sums.
#pragma once

#include <vector>

#include "common/deadline.hpp"
#include "core/drrp.hpp"

namespace rrp::core {

/// One VM class of the fleet.
struct FleetEntry {
  market::VmClass vm = market::VmClass::C1Medium;
  std::size_t instances = 1;          ///< n_i, fixed over the horizon
  std::vector<double> total_demand;   ///< aggregate D(i,t) across instances
  /// Per-slot compute price; empty = the class's on-demand price.
  std::vector<double> compute_price;
  double initial_storage_per_instance = 0.0;
};

struct FleetClassPlan {
  market::VmClass vm = market::VmClass::C1Medium;
  std::size_t instances = 1;
  RentalPlan per_instance;     ///< the per-instance optimal plan
  CostBreakdown class_cost;    ///< per-instance cost scaled by n
};

struct FleetPlan {
  std::vector<FleetClassPlan> classes;
  CostBreakdown total;         ///< summed over classes

  double total_cost() const { return total.total(); }
};

/// Plans every class of the fleet (classes are independent, solved in
/// parallel on the global thread pool).  Requires equal horizons across
/// entries and instances >= 1.  The deadline is shared by every
/// per-class solve; on expiry the whole plan throws
/// rrp::TimeLimitExceeded (per-class Wagner-Whitin contract).
FleetPlan plan_fleet(const std::vector<FleetEntry>& entries,
                     const market::CostModel& costs =
                         market::CostModel::paper_defaults(),
                     const common::Deadline& deadline =
                         common::Deadline::unlimited());

/// The no-planning fleet baseline (Figure 10 aggregated over classes).
FleetPlan no_plan_fleet(const std::vector<FleetEntry>& entries,
                        const market::CostModel& costs =
                            market::CostModel::paper_defaults());

}  // namespace rrp::core
