#include "core/srrp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "common/error.hpp"
#include "common/invariant.hpp"
#include "milp/cuts.hpp"

namespace rrp::core {

namespace {

// Composed with += rather than `"alpha" + suffix` to dodge a GCC 12
// -Wrestrict false positive (PR105651) under -Werror.
std::string vertex_name(const char* base, std::size_t u) {
  std::string name(base);
  name += "[v";
  name += std::to_string(u);
  name += ']';
  return name;
}

}  // namespace

void SrrpInstance::validate() const {
  RRP_EXPECTS(!demand.empty());
  RRP_EXPECTS(tree.num_stages() == demand.size());
  for (double d : demand) RRP_EXPECTS(d >= 0.0);
  if (!vertex_demand.empty()) {
    RRP_EXPECTS(vertex_demand.size() == tree.num_vertices());
    for (std::size_t v = 1; v < vertex_demand.size(); ++v)
      RRP_EXPECTS(vertex_demand[v] >= 0.0);
  }
  RRP_EXPECTS(initial_storage >= 0.0);
  RRP_EXPECTS(bottleneck_rate >= 0.0);
  if (!bottleneck_capacity.empty())
    RRP_EXPECTS(bottleneck_capacity.size() == demand.size());
}

double SrrpInstance::demand_at_vertex(std::size_t v) const {
  RRP_EXPECTS(v >= 1 && v < tree.num_vertices());
  if (!vertex_demand.empty()) return vertex_demand[v];
  return demand[tree.vertex(v).stage - 1];
}

std::pair<ScenarioTree, std::vector<double>> build_joint_tree(
    std::span<const std::vector<JointPoint>> stage_supports) {
  RRP_EXPECTS(!stage_supports.empty());
  std::vector<std::vector<PricePoint>> price_supports;
  price_supports.reserve(stage_supports.size());
  for (const auto& stage : stage_supports) {
    RRP_EXPECTS(!stage.empty());
    std::vector<PricePoint> prices;
    prices.reserve(stage.size());
    for (const JointPoint& p : stage) {
      RRP_EXPECTS(p.demand >= 0.0);
      prices.push_back(p.price);
    }
    price_supports.push_back(std::move(prices));
  }
  ScenarioTree tree = ScenarioTree::build(price_supports);
  // Vertices at each stage are created parent-major, support-minor, so
  // the joint point for a vertex is its index modulo the support size.
  std::vector<double> vertex_demand(tree.num_vertices(), 0.0);
  for (std::size_t stage = 1; stage <= tree.num_stages(); ++stage) {
    const auto& verts = tree.stage_vertices(stage);
    const auto& support = stage_supports[stage - 1];
    for (std::size_t i = 0; i < verts.size(); ++i)
      vertex_demand[verts[i]] = support[i % support.size()].demand;
  }
  return {std::move(tree), std::move(vertex_demand)};
}

milp::Model build_srrp(const SrrpInstance& inst, SrrpVariables* vars) {
  inst.validate();
  const ScenarioTree& tree = inst.tree;
  const std::size_t V = tree.num_vertices();

  milp::Model model;
  SrrpVariables v;
  v.alpha.resize(V);
  v.beta.resize(V);
  v.chi.resize(V);

  // Worst-case remaining demand below each vertex (max over paths):
  // a valid tight forcing bound even with per-vertex demand.
  std::vector<double> remaining(V, 0.0);
  for (std::size_t u = V; u-- > 1;) {
    double best_child = 0.0;
    for (std::size_t c : tree.children(u))
      best_child = std::max(best_child, remaining[c]);
    remaining[u] = inst.demand_at_vertex(u) + best_child;
  }
  double loose_bound = inst.initial_storage + 1.0;
  for (std::size_t c : tree.children(tree.root()))
    loose_bound = std::max(loose_bound, remaining[c] + inst.initial_storage + 1.0);

  for (std::size_t u = 1; u < V; ++u) {
    v.alpha[u] =
        model.add_continuous(0.0, lp::kInfinity, vertex_name("alpha", u));
    v.beta[u] =
        model.add_continuous(0.0, lp::kInfinity, vertex_name("beta", u));
    v.chi[u] = model.add_binary(vertex_name("chi", u));
  }

  // Objective (13): probability-weighted per-vertex costs.  tau(v) = t
  // means slot t, whose demand is demand[t-1].
  milp::LinExpr objective;
  for (std::size_t u = 1; u < V; ++u) {
    const ScenarioVertex& vert = tree.vertex(u);
    const std::size_t slot = vert.stage - 1;
    const double pv = vert.path_prob;
    objective += pv * inst.costs.transfer_in(slot) *
                 inst.costs.input_output_ratio() * milp::LinExpr(v.alpha[u]);
    objective += pv * inst.costs.holding(slot) * milp::LinExpr(v.beta[u]);
    objective += pv * inst.costs.delivery_cost(inst.demand_at_vertex(u), slot);
    objective += pv * vert.price * milp::LinExpr(v.chi[u]);
  }
  model.set_objective(std::move(objective), milp::Objective::Minimize);

  for (std::size_t u = 1; u < V; ++u) {
    const ScenarioVertex& vert = tree.vertex(u);
    const std::size_t slot = vert.stage - 1;

    // (14) inventory balance along the tree; the root's inventory is
    // the epsilon of (17).
    milp::LinExpr balance =
        milp::LinExpr(v.alpha[u]) - milp::LinExpr(v.beta[u]);
    if (vert.parent == tree.root()) {
      balance += inst.initial_storage;
    } else {
      balance += milp::LinExpr(v.beta[vert.parent]);
    }
    model.add_constraint(std::move(balance) == inst.demand_at_vertex(u));

    // (16) forcing with the lot-sizing-tight bound.
    const double big_b = inst.tighten_forcing_bound
                             ? std::max(remaining[u], 1e-9)
                             : loose_bound;
    model.add_constraint(
        milp::LinExpr(v.alpha[u]) - big_b * milp::LinExpr(v.chi[u]) <= 0.0);

    // (15) bottleneck, when modelled.
    if (inst.bottleneck_rate > 0.0 && !inst.bottleneck_capacity.empty()) {
      model.add_constraint(inst.bottleneck_rate *
                               milp::LinExpr(v.alpha[u]) <=
                           inst.bottleneck_capacity[slot]);
    }
  }

  if (vars != nullptr) *vars = std::move(v);
  return model;
}

milp::Model build_srrp_facility_location(const SrrpInstance& inst,
                                         SrrpFlVariables* vars) {
  inst.validate();
  if (inst.bottleneck_rate > 0.0 && !inst.bottleneck_capacity.empty()) {
    throw InvalidArgument(
        "the strengthened formulation requires an uncapacitated "
        "instance");
  }
  const ScenarioTree& tree = inst.tree;
  const std::size_t V = tree.num_vertices();
  milp::Model model;
  SrrpFlVariables v;
  v.alpha.assign(V, milp::Var{});
  v.beta.assign(V, milp::Var{});
  v.chi.assign(V, milp::Var{});
  v.eps_use.assign(V, milp::Var{});

  auto slot_of = [&tree](std::size_t u) { return tree.vertex(u).stage - 1; };
  auto demand_at = [&](std::size_t u) { return inst.demand_at_vertex(u); };

  // Worst-case remaining demand below each vertex (max over paths).
  std::vector<double> remaining(V, 0.0);
  for (std::size_t u = V; u-- > 1;) {
    double best_child = 0.0;
    for (std::size_t c : tree.children(u))
      best_child = std::max(best_child, remaining[c]);
    remaining[u] = demand_at(u) + best_child;
  }

  // --- Aggregated core: exact objective and balance semantics. ---
  for (std::size_t u = 1; u < V; ++u) {
    v.alpha[u] =
        model.add_continuous(0.0, lp::kInfinity, vertex_name("alpha", u));
    v.beta[u] =
        model.add_continuous(0.0, lp::kInfinity, vertex_name("beta", u));
    v.chi[u] = model.add_binary(vertex_name("chi", u));
  }
  milp::LinExpr objective;
  for (std::size_t u = 1; u < V; ++u) {
    const ScenarioVertex& vert = tree.vertex(u);
    const std::size_t slot = slot_of(u);
    const double pv = vert.path_prob;
    objective += pv * inst.costs.transfer_in(slot) *
                 inst.costs.input_output_ratio() * milp::LinExpr(v.alpha[u]);
    objective += pv * inst.costs.holding(slot) * milp::LinExpr(v.beta[u]);
    objective += pv * inst.costs.delivery_cost(demand_at(u), slot);
    objective += pv * vert.price * milp::LinExpr(v.chi[u]);
  }
  model.set_objective(std::move(objective), milp::Objective::Minimize);

  for (std::size_t u = 1; u < V; ++u) {
    const ScenarioVertex& vert = tree.vertex(u);
    milp::LinExpr balance =
        milp::LinExpr(v.alpha[u]) - milp::LinExpr(v.beta[u]);
    if (vert.parent == tree.root()) {
      balance += inst.initial_storage;
    } else {
      balance += milp::LinExpr(v.beta[vert.parent]);
    }
    model.add_constraint(std::move(balance) == demand_at(u));
    model.add_constraint(milp::LinExpr(v.alpha[u]) -
                             std::max(remaining[u], 1e-9) *
                                 milp::LinExpr(v.chi[u]) <=
                         0.0);
  }

  // --- Strengthening block: coverage arcs. ---
  //
  // y[u][vtx] decomposes how vtx's demand is covered along its root
  // path (FIFO decomposition always exists for a feasible plan, so the
  // block never changes the optimum).  Its power is the disaggregated
  // coupling y <= D * chi, the facility-location cut that makes the LP
  // relaxation nearly integral.
  const bool has_eps = inst.initial_storage > 0.0;
  std::vector<milp::LinExpr> supply(V);          // per demand vertex
  std::vector<milp::LinExpr> path_use(V);        // per producing vertex:
                                                 // filled leaf-wise below
  for (std::size_t vtx = 1; vtx < V; ++vtx) {
    const double dv = demand_at(vtx);
    if (dv <= 0.0) continue;
    std::size_t u = vtx;
    for (;;) {
      SrrpFlVariables::Arc arc;
      arc.from = u;
      arc.to = vtx;
      arc.amount = model.add_continuous(
          0.0, dv,
          "y[v" + std::to_string(u) + ",v" + std::to_string(vtx) + "]");
      supply[vtx] += milp::LinExpr(arc.amount);
      model.add_constraint(milp::LinExpr(arc.amount) -
                               dv * milp::LinExpr(v.chi[u]) <=
                           0.0);
      v.arcs.push_back(arc);
      if (tree.vertex(u).parent == tree.root()) break;
      u = tree.vertex(u).parent;
    }
    if (has_eps) {
      v.eps_use[vtx] = model.add_continuous(
          0.0, std::min(inst.initial_storage, dv),
          "eps[v" + std::to_string(vtx) + "]");
      supply[vtx] += milp::LinExpr(v.eps_use[vtx]);
    }
  }
  for (std::size_t vtx = 1; vtx < V; ++vtx) {
    if (demand_at(vtx) <= 0.0) continue;
    model.add_constraint(std::move(supply[vtx]) == demand_at(vtx));
  }
  // Per-scenario production links: along any root-to-leaf path, the
  // arcs drawn from a producing vertex u cannot exceed alpha_u; and the
  // epsilon drawn cannot exceed the initial storage.
  for (std::size_t leaf : tree.leaves()) {
    const auto path = tree.path_from_root(leaf);
    // Collect arc usage per producer restricted to this path.
    for (std::size_t u : path) path_use[u] = milp::LinExpr();
    milp::LinExpr eps_on_path;
    bool any_eps = false;
    for (const auto& arc : v.arcs) {
      // arc.to on this path?  path vertices are one per stage.
      const std::size_t stage_idx = tree.vertex(arc.to).stage - 1;
      if (stage_idx < path.size() && path[stage_idx] == arc.to) {
        path_use[arc.from] += milp::LinExpr(arc.amount);
      }
    }
    for (std::size_t u : path) {
      if (v.eps_use[u].valid()) {
        eps_on_path += milp::LinExpr(v.eps_use[u]);
        any_eps = true;
      }
      if (!path_use[u].terms().empty()) {
        model.add_constraint(std::move(path_use[u]) -
                                 milp::LinExpr(v.alpha[u]) <=
                             0.0);
      }
      path_use[u] = milp::LinExpr();
    }
    if (any_eps)
      model.add_constraint(std::move(eps_on_path) <= inst.initial_storage);
  }

  if (vars != nullptr) *vars = std::move(v);
  return model;
}

namespace {

#if RRP_INVARIANTS_ENABLED
/// Inventory-balance verification of a returned policy along every tree
/// edge: each vertex's inventory equals its parent's inventory (or the
/// initial storage for stage-1 vertices) plus generation minus demand,
/// and generation forces a rented machine.
void verify_policy_balance(const SrrpInstance& inst,
                           const SrrpPolicy& policy) {
  if (policy.alpha.empty()) return;
  const ScenarioTree& tree = inst.tree;
  const std::size_t V = tree.num_vertices();
  RRP_INVARIANT(policy.alpha.size() == V);
  RRP_INVARIANT(policy.beta.size() == V);
  RRP_INVARIANT(policy.chi.size() == V);
  for (std::size_t u = 1; u < V; ++u) {
    const ScenarioVertex& vert = tree.vertex(u);
    const double inflow = vert.parent == tree.root()
                              ? inst.initial_storage
                              : policy.beta[vert.parent];
    const double demand = inst.demand_at_vertex(u);
    const double expected = inflow + policy.alpha[u] - demand;
    const double scale = 1.0 + std::fabs(inflow) + demand;
    RRP_INVARIANT_MSG(policy.alpha[u] >= -1e-9,
                      "negative generation at vertex " + std::to_string(u));
    RRP_INVARIANT_MSG(policy.beta[u] >= -1e-9,
                      "negative inventory at vertex " + std::to_string(u));
    RRP_INVARIANT(policy.chi[u] == 0 || policy.chi[u] == 1);
    RRP_INVARIANT_MSG(policy.chi[u] == 1 || policy.alpha[u] <= 1e-6 * scale,
                      "generation without a rented machine at vertex " +
                          std::to_string(u));
    RRP_INVARIANT_MSG(std::fabs(policy.beta[u] - expected) <= 1e-5 * scale,
                      "tree inventory balance off by " +
                          std::to_string(policy.beta[u] - expected) +
                          " at vertex " + std::to_string(u));
  }
}
#endif

SrrpPolicy solve_srrp_aggregated(const SrrpInstance& inst,
                                 const milp::BnbOptions& options) {
  SrrpVariables vars;
  const milp::Model model = build_srrp(inst, &vars);

  // Each root-to-leaf path of the scenario tree is one single-item
  // lot-sizing chain (the (l,S) cuts only involve that scenario's
  // variables, so they are valid per path); chains sharing a tree
  // prefix separate duplicate cuts, which the B&B cut pool drops.
  milp::LotSizingCutGenerator lot_cuts;
  milp::BnbOptions opt = options;
  if (opt.root_cuts && opt.cut_generator == nullptr) {
    for (std::size_t leaf : inst.tree.leaves()) {
      const auto path = inst.tree.path_from_root(leaf);
      std::vector<milp::LotSlot> slots;
      slots.reserve(path.size());
      for (std::size_t u : path) {
        if (u == inst.tree.root()) continue;
        slots.push_back(milp::LotSlot{vars.alpha[u].id, vars.chi[u].id,
                                      inst.demand_at_vertex(u)});
      }
      if (!slots.empty()) lot_cuts.add_chain(std::move(slots),
                                             inst.initial_storage);
    }
    opt.cut_generator = &lot_cuts;
  }
  const milp::MipResult result = milp::solve(model, opt);

  SrrpPolicy policy;
  policy.status = result.status;
  policy.nodes_explored = result.nodes_explored;
  policy.warm_started_nodes = result.warm_started_nodes;
  policy.cold_solved_nodes = result.cold_solved_nodes;
  policy.factor_stats = result.factor_stats;
  policy.cuts_added = result.cuts_added;
  policy.root_gap_closed = result.root_gap_closed;
  if (result.x.empty()) return policy;

  const std::size_t V = inst.tree.num_vertices();
  policy.alpha.assign(V, 0.0);
  policy.beta.assign(V, 0.0);
  policy.chi.assign(V, 0);
  for (std::size_t u = 1; u < V; ++u) {
    policy.alpha[u] = std::max(result.x[vars.alpha[u].id], 0.0);
    policy.beta[u] = std::max(result.x[vars.beta[u].id], 0.0);
    policy.chi[u] = result.x[vars.chi[u].id] > 0.5 ? 1 : 0;
  }
  policy.expected_cost = result.objective;
#if RRP_INVARIANTS_ENABLED
  verify_policy_balance(inst, policy);
#endif
  return policy;
}

SrrpPolicy solve_srrp_fl(const SrrpInstance& inst,
                         const milp::BnbOptions& options) {
  SrrpFlVariables vars;
  const milp::Model model = build_srrp_facility_location(inst, &vars);
  const milp::MipResult result = milp::solve(model, options);

  SrrpPolicy policy;
  policy.status = result.status;
  policy.nodes_explored = result.nodes_explored;
  policy.warm_started_nodes = result.warm_started_nodes;
  policy.cold_solved_nodes = result.cold_solved_nodes;
  policy.factor_stats = result.factor_stats;
  if (result.x.empty()) return policy;

  const std::size_t V = inst.tree.num_vertices();
  policy.alpha.assign(V, 0.0);
  policy.beta.assign(V, 0.0);
  policy.chi.assign(V, 0);
  for (std::size_t u = 1; u < V; ++u) {
    policy.alpha[u] = std::max(result.x[vars.alpha[u].id], 0.0);
    policy.beta[u] = std::max(result.x[vars.beta[u].id], 0.0);
    policy.chi[u] = result.x[vars.chi[u].id] > 0.5 ? 1 : 0;
  }
  policy.expected_cost = result.objective;
#if RRP_INVARIANTS_ENABLED
  verify_policy_balance(inst, policy);
#endif
  return policy;
}

}  // namespace

SrrpPolicy solve_srrp(const SrrpInstance& inst,
                      const milp::BnbOptions& options,
                      SrrpFormulation formulation) {
  const bool capacitated =
      inst.bottleneck_rate > 0.0 && !inst.bottleneck_capacity.empty();
  if (formulation == SrrpFormulation::Auto) {
    formulation = capacitated ? SrrpFormulation::Aggregated
                              : SrrpFormulation::FacilityLocation;
  }
  if (formulation == SrrpFormulation::FacilityLocation)
    return solve_srrp_fl(inst, options);
  return solve_srrp_aggregated(inst, options);
}

std::vector<std::vector<PricePoint>> make_stage_supports(
    const EmpiricalPriceDistribution& base, std::span<const double> bids,
    double lambda, std::span<const std::size_t> stage_widths) {
  RRP_EXPECTS(!bids.empty());
  RRP_EXPECTS(stage_widths.size() == bids.size());
  std::vector<std::vector<PricePoint>> supports;
  supports.reserve(bids.size());
  for (std::size_t t = 0; t < bids.size(); ++t) {
    RRP_EXPECTS(stage_widths[t] >= 1);
    auto points = base.truncate_at_bid(bids[t], lambda);
    supports.push_back(reduce_support(points, stage_widths[t]));
  }
  return supports;
}

std::size_t match_stage1_vertex(const ScenarioTree& tree, bool won,
                                double realized_price) {
  const auto& stage1 = tree.stage_vertices(1);
  RRP_EXPECTS(!stage1.empty());
  std::size_t best = stage1.front();
  double best_dist = std::numeric_limits<double>::infinity();
  bool found = false;
  for (std::size_t u : stage1) {
    const ScenarioVertex& vert = tree.vertex(u);
    if (vert.out_of_bid != !won) continue;
    const double dist = std::fabs(vert.price - realized_price);
    if (dist < best_dist) {
      best_dist = dist;
      best = u;
      found = true;
    }
  }
  if (!found) {
    // No vertex of the realised kind (e.g. the model gave out-of-bid
    // zero probability but it happened): fall back to the nearest
    // vertex by price.
    for (std::size_t u : stage1) {
      const double dist = std::fabs(tree.vertex(u).price - realized_price);
      if (dist < best_dist) {
        best_dist = dist;
        best = u;
      }
    }
  }
  return best;
}

}  // namespace rrp::core
