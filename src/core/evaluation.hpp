// Monte Carlo evaluation harness: repeated rolling-horizon simulations
// over demand realisations and market windows, with mean and normal-
// approximation confidence intervals per policy.  This is how the
// paper's "simulations over a wide range of experimental scenarios"
// become statistically grounded comparisons rather than single draws.
#pragma once

#include <string>
#include <vector>

#include "core/demand.hpp"
#include "core/rolling_horizon.hpp"

namespace rrp::core {

struct EvaluationConfig {
  market::VmClass vm = market::VmClass::C1Medium;
  std::size_t eval_hours = 72;
  std::size_t trials = 10;
  /// History window start is shifted by this many hours per trial so
  /// different trials see different market conditions.
  std::size_t window_shift_hours = 72;
  std::size_t history_hours = 24 * 60;
  DemandConfig demand;
  double initial_storage = 0.0;
  std::uint64_t seed = 2012;
  /// Revocation regime the trials run under (default: disabled, which
  /// reproduces the pre-revocation evaluation bit for bit).  Each trial
  /// derives its own model seed from this config's seed + trial index.
  market::RevocationConfig revocation;
};

struct PolicyStats {
  std::string policy;
  double mean_cost = 0.0;
  double stddev_cost = 0.0;
  double mean_overpay = 0.0;     ///< vs the per-trial ideal case
  double ci_half_width = 0.0;    ///< 95% CI on the mean cost
  double mean_out_of_bid = 0.0;
  // --- Interruption-aware columns (all zero with revocations off) ---
  double mean_revocations = 0.0;        ///< revoked slots per trial
  double mean_work_lost = 0.0;          ///< slot-fractions redone per trial
  double mean_interruption_cost = 0.0;  ///< checkpoint + restart + migration
  std::vector<double> per_trial_cost;
};

struct EvaluationResult {
  std::vector<PolicyStats> policies;  ///< same order as the input
  double mean_ideal_cost = 0.0;

  const PolicyStats& by_name(const std::string& name) const;
};

/// Builds the inputs for one trial of the configuration (exposed so
/// tests and benches can reproduce individual trials).
SimulationInputs make_trial_inputs(const EvaluationConfig& config,
                                   std::size_t trial);

/// Simulates every policy on every trial (trials run in parallel on the
/// global pool; each trial reuses the same inputs across policies, so
/// differences are paired).
EvaluationResult evaluate_policies(const EvaluationConfig& config,
                                   const std::vector<PolicyConfig>& policies);

/// One named interruption regime of the hostile-market study.
struct InterruptionRegime {
  std::string name;
  market::RevocationConfig config;
};

/// The three regimes of the revocation evaluation: "calm" (bid-crossing
/// only), "bid-cross" (plus out-of-band hazards) and "storm" (plus
/// correlated storms).
std::vector<InterruptionRegime> standard_interruption_regimes();

struct RegimeResult {
  std::string regime;
  EvaluationResult result;
};

/// Runs evaluate_policies once per regime (same trials, same market
/// windows — only the revocation process changes), so the table isolates
/// how each policy degrades as the market turns hostile.
std::vector<RegimeResult> evaluate_under_regimes(
    const EvaluationConfig& config, const std::vector<PolicyConfig>& policies,
    const std::vector<InterruptionRegime>& regimes);

}  // namespace rrp::core
