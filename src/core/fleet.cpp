#include "core/fleet.hpp"

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "core/wagner_whitin.hpp"

namespace rrp::core {

namespace {

void validate_entries(const std::vector<FleetEntry>& entries) {
  RRP_EXPECTS(!entries.empty());
  const std::size_t horizon = entries.front().total_demand.size();
  RRP_EXPECTS(horizon >= 1);
  for (const FleetEntry& e : entries) {
    RRP_EXPECTS(e.instances >= 1);
    RRP_EXPECTS(e.total_demand.size() == horizon);
    RRP_EXPECTS(e.compute_price.empty() ||
                e.compute_price.size() == horizon);
    RRP_EXPECTS(e.initial_storage_per_instance >= 0.0);
  }
}

DrrpInstance per_instance_problem(const FleetEntry& e,
                                  const market::CostModel& costs) {
  DrrpInstance inst;
  inst.vm = e.vm;
  inst.costs = costs;
  inst.initial_storage = e.initial_storage_per_instance;
  const double n = static_cast<double>(e.instances);
  inst.demand.reserve(e.total_demand.size());
  for (double d : e.total_demand) {
    RRP_EXPECTS(d >= 0.0);
    inst.demand.push_back(d / n);  // each instance serves 1/n
  }
  if (e.compute_price.empty()) {
    inst.compute_price.assign(e.total_demand.size(),
                              market::info(e.vm).on_demand_hourly);
  } else {
    inst.compute_price = e.compute_price;
  }
  return inst;
}

CostBreakdown scale(const CostBreakdown& c, double n) {
  CostBreakdown out;
  out.compute = c.compute * n;
  out.holding = c.holding * n;
  out.transfer_in = c.transfer_in * n;
  out.transfer_out = c.transfer_out * n;
  return out;
}

FleetPlan aggregate(std::vector<FleetClassPlan> classes) {
  FleetPlan plan;
  for (const FleetClassPlan& c : classes) {
    plan.total.compute += c.class_cost.compute;
    plan.total.holding += c.class_cost.holding;
    plan.total.transfer_in += c.class_cost.transfer_in;
    plan.total.transfer_out += c.class_cost.transfer_out;
  }
  plan.classes = std::move(classes);
  return plan;
}

}  // namespace

FleetPlan plan_fleet(const std::vector<FleetEntry>& entries,
                     const market::CostModel& costs,
                     const common::Deadline& deadline) {
  validate_entries(entries);
  std::vector<FleetClassPlan> classes(entries.size());
  global_pool().parallel_for(entries.size(), [&](std::size_t i) {
    const FleetEntry& e = entries[i];
    const DrrpInstance inst = per_instance_problem(e, costs);
    FleetClassPlan& out = classes[i];
    out.vm = e.vm;
    out.instances = e.instances;
    out.per_instance = solve_drrp_wagner_whitin(inst, deadline);
    out.class_cost = scale(out.per_instance.cost,
                           static_cast<double>(e.instances));
  });
  return aggregate(std::move(classes));
}

FleetPlan no_plan_fleet(const std::vector<FleetEntry>& entries,
                        const market::CostModel& costs) {
  validate_entries(entries);
  std::vector<FleetClassPlan> classes(entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const FleetEntry& e = entries[i];
    const DrrpInstance inst = per_instance_problem(e, costs);
    classes[i].vm = e.vm;
    classes[i].instances = e.instances;
    classes[i].per_instance = no_plan_schedule(inst);
    classes[i].class_cost = scale(classes[i].per_instance.cost,
                                  static_cast<double>(e.instances));
  }
  return aggregate(std::move(classes));
}

}  // namespace rrp::core
