#!/usr/bin/env python3
"""Perf-smoke gate: compare a BENCH_solvers.json run against the
checked-in baseline (bench/BENCH_solvers.baseline.json).

The baseline stores deliberately conservative node-throughput floors
(roughly a third of a developer workstation) so that normal CI-runner
variance passes, while a real regression — e.g. warm starts silently
disabled, or a per-node allocation creeping back in — trips the gate.

Failure conditions:
  * a benchmark's nodes_per_second drops more than --tolerance (default
    25%) below its baseline floor;
  * a benchmark explores more nodes than its baseline `max_nodes` cap
    (node counts are deterministic at jobs=1, so a cap catches cut or
    branching regressions that wall-time floors would miss);
  * srrp_warm_speedup falls below the baseline's min_srrp_warm_speedup
    (the ISSUE 5 acceptance bar: warm starts must at least double B&B
    node throughput on the SRRP deterministic equivalent);
  * a baseline benchmark is missing from the measured file.

On failure, each offending line reports the measured-vs-floor ratio so
the log shows how far off the run was without a manual division.

Usage: check_perf.py MEASURED_JSON BASELINE_JSON [--tolerance 0.25]
"""

import argparse
import json
import sys


def ratio_str(actual: float, floor: float) -> str:
    if floor <= 0:
        return "n/a"
    return f"{actual / floor:.2f}x"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("measured")
    parser.add_argument("baseline")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional drop below the baseline "
                             "floor (default 0.25)")
    args = parser.parse_args()

    with open(args.measured) as f:
        measured = json.load(f)
    with open(args.baseline) as f:
        baseline = json.load(f)

    measured_by_name = {r["name"]: r for r in measured.get("results", [])}
    failures = []

    for base in baseline.get("results", []):
        name = base["name"]
        gates_nps = "nodes_per_second" in base
        gates_nodes = "max_nodes" in base
        if not gates_nps and not gates_nodes:
            continue
        got = measured_by_name.get(name)
        if got is None:
            failures.append(f"{name}: missing from measured results")
            continue
        if gates_nps:
            floor = base["nodes_per_second"] * (1.0 - args.tolerance)
            actual = got.get("nodes_per_second", 0.0)
            status = "ok" if actual >= floor else "FAIL"
            print(f"{status:4} {name}: {actual:.0f} nodes/s "
                  f"(floor {floor:.0f}, baseline "
                  f"{base['nodes_per_second']:.0f}, "
                  f"{ratio_str(actual, floor)} of floor)")
            if actual < floor:
                failures.append(
                    f"{name}: {actual:.0f} nodes/s below floor {floor:.0f} "
                    f"({ratio_str(actual, floor)} of floor)")
        if gates_nodes:
            cap = base["max_nodes"]
            nodes = got.get("nodes", 0)
            status = "ok" if nodes <= cap else "FAIL"
            print(f"{status:4} {name}: {nodes} nodes (cap {cap})")
            if nodes > cap:
                failures.append(
                    f"{name}: {nodes} nodes exceeds cap {cap} "
                    f"({nodes / cap:.2f}x of cap)")

    min_speedup = baseline.get("min_srrp_warm_speedup")
    if min_speedup is not None:
        speedup = measured.get("srrp_warm_speedup", 0.0)
        status = "ok" if speedup >= min_speedup else "FAIL"
        print(f"{status:4} srrp_warm_speedup: {speedup:.2f}x "
              f"(minimum {min_speedup:.2f}x)")
        if speedup < min_speedup:
            failures.append(
                f"srrp_warm_speedup {speedup:.2f}x below {min_speedup:.2f}x "
                f"({ratio_str(speedup, min_speedup)} of minimum)")

    if failures:
        print("\nperf-smoke FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nperf-smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
