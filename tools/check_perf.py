#!/usr/bin/env python3
"""Perf-smoke gate: compare a BENCH_solvers.json run against the
checked-in baseline (bench/BENCH_solvers.baseline.json).

The baseline stores deliberately conservative node-throughput floors
(roughly a third of a developer workstation) so that normal CI-runner
variance passes, while a real regression — e.g. warm starts silently
disabled, or a per-node allocation creeping back in — trips the gate.

Failure conditions:
  * a benchmark's nodes_per_second drops more than --tolerance (default
    25%) below its baseline floor;
  * srrp_warm_speedup falls below the baseline's min_srrp_warm_speedup
    (the ISSUE 5 acceptance bar: warm starts must at least double B&B
    node throughput on the SRRP deterministic equivalent);
  * a baseline benchmark is missing from the measured file.

Usage: check_perf.py MEASURED_JSON BASELINE_JSON [--tolerance 0.25]
"""

import argparse
import json
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("measured")
    parser.add_argument("baseline")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional drop below the baseline "
                             "floor (default 0.25)")
    args = parser.parse_args()

    with open(args.measured) as f:
        measured = json.load(f)
    with open(args.baseline) as f:
        baseline = json.load(f)

    measured_by_name = {r["name"]: r for r in measured.get("results", [])}
    failures = []

    for base in baseline.get("results", []):
        name = base["name"]
        if "nodes_per_second" not in base:
            continue
        got = measured_by_name.get(name)
        if got is None:
            failures.append(f"{name}: missing from measured results")
            continue
        floor = base["nodes_per_second"] * (1.0 - args.tolerance)
        actual = got.get("nodes_per_second", 0.0)
        status = "ok" if actual >= floor else "FAIL"
        print(f"{status:4} {name}: {actual:.0f} nodes/s "
              f"(floor {floor:.0f}, baseline {base['nodes_per_second']:.0f})")
        if actual < floor:
            failures.append(
                f"{name}: {actual:.0f} nodes/s below floor {floor:.0f}")

    min_speedup = baseline.get("min_srrp_warm_speedup")
    if min_speedup is not None:
        speedup = measured.get("srrp_warm_speedup", 0.0)
        status = "ok" if speedup >= min_speedup else "FAIL"
        print(f"{status:4} srrp_warm_speedup: {speedup:.2f}x "
              f"(minimum {min_speedup:.2f}x)")
        if speedup < min_speedup:
            failures.append(
                f"srrp_warm_speedup {speedup:.2f}x below {min_speedup:.2f}x")

    if failures:
        print("\nperf-smoke FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nperf-smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
