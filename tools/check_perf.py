#!/usr/bin/env python3
"""Perf-smoke gate: compare a BENCH_solvers.json run against the
checked-in baseline (bench/BENCH_solvers.baseline.json).

The baseline stores deliberately conservative node-throughput floors
(roughly a third of a developer workstation) so that normal CI-runner
variance passes, while a real regression — e.g. warm starts silently
disabled, or a per-node allocation creeping back in — trips the gate.

Failure conditions:
  * a benchmark's nodes_per_second drops more than --tolerance (default
    25%) below its baseline floor;
  * a benchmark explores more nodes than its baseline `max_nodes` cap
    (node counts are deterministic at jobs=1, so a cap catches cut or
    branching regressions that wall-time floors would miss);
  * srrp_warm_speedup falls below the baseline's min_srrp_warm_speedup
    (the ISSUE 5 acceptance bar: warm starts must at least double B&B
    node throughput on the SRRP deterministic equivalent);
  * a baseline benchmark is missing from the measured file;
  * with --obs-off OBSOFF_JSON (a run from an RRP_OBSERVABILITY=OFF
    build): the obs-ON SRRP warm node throughput (--obs-row) drops more
    than --obs-tolerance (default 2%) below the obs-OFF run — the
    instrumentation-overhead budget.  Both files carry an
    "observability" flag so the gate refuses a mismatched pair.

On failure, each offending line reports the measured-vs-floor ratio so
the log shows how far off the run was without a manual division.

The same script also gates the re-plan latency suite: when the baseline
file carries "schema": "rrp-bench-replan-v1" (bench/BENCH_replan.
baseline.json vs a BENCH_replan.json run from bench_replan_json), the
checks switch to:
  * flatness — the incremental mode's mean re-plan latency at
    `to_history` may be at most `max_ratio` times its latency at
    `from_history` (the ISSUE 10 bar: incremental maintenance cost is a
    function of new data, not total history);
  * min_incremental_speedup — at the pinned history, the rebuild mode's
    mean re-plan latency must be at least `min` times the incremental
    mode's (CI floor: incremental beats full rebuild >= 5x at 2048h).

Usage: check_perf.py MEASURED_JSON BASELINE_JSON [--tolerance 0.25]
                     [--obs-off OBSOFF_JSON] [--obs-tolerance 0.02]
"""

import argparse
import json
import sys


def ratio_str(actual: float, floor: float) -> str:
    if floor <= 0:
        return "n/a"
    return f"{actual / floor:.2f}x"


def check_replan(measured: dict, baseline: dict) -> int:
    """Gate a rrp-bench-replan-v1 run (re-plan latency suite)."""
    if measured.get("schema") != "rrp-bench-replan-v1":
        print("replan gate: measured file does not carry "
              "schema rrp-bench-replan-v1", file=sys.stderr)
        return 1

    by_key = {(r["history"], r["mode"]): r
              for r in measured.get("results", [])}
    failures = []

    def latency(history: int, mode: str):
        row = by_key.get((history, mode))
        if row is None:
            failures.append(f"missing measured row: history={history} "
                            f"mode={mode}")
            return None
        return row["mean_replan_seconds"]

    flat = baseline.get("flatness")
    if flat is not None:
        small = latency(flat["from_history"], flat["mode"])
        large = latency(flat["to_history"], flat["mode"])
        if small is not None and large is not None:
            if small <= 0:
                failures.append(f"flatness: non-positive latency at "
                                f"history {flat['from_history']}")
            else:
                ratio = large / small
                cap = flat["max_ratio"]
                status = "ok" if ratio <= cap else "FAIL"
                print(f"{status:4} {flat['mode']} flatness "
                      f"{flat['from_history']}h -> {flat['to_history']}h: "
                      f"{small * 1e3:.3f} ms -> {large * 1e3:.3f} ms "
                      f"({ratio:.2f}x, cap {cap:.2f}x)")
                if ratio > cap:
                    failures.append(
                        f"flatness: {flat['mode']} latency grew {ratio:.2f}x "
                        f"from {flat['from_history']}h to "
                        f"{flat['to_history']}h (cap {cap:.2f}x)")

    speed = baseline.get("min_incremental_speedup")
    if speed is not None:
        inc = latency(speed["history"], "incremental")
        reb = latency(speed["history"], "rebuild")
        if inc is not None and reb is not None:
            if inc <= 0:
                failures.append(f"speedup: non-positive incremental latency "
                                f"at history {speed['history']}")
            else:
                speedup = reb / inc
                floor = speed["min"]
                status = "ok" if speedup >= floor else "FAIL"
                print(f"{status:4} incremental speedup @ "
                      f"{speed['history']}h: rebuild {reb * 1e3:.3f} ms vs "
                      f"incremental {inc * 1e3:.3f} ms "
                      f"({speedup:.2f}x, minimum {floor:.2f}x)")
                if speedup < floor:
                    failures.append(
                        f"speedup: incremental only {speedup:.2f}x faster "
                        f"than rebuild at {speed['history']}h "
                        f"(minimum {floor:.2f}x)")

    if failures:
        print("\nperf-smoke (replan) FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nperf-smoke (replan) passed")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("measured")
    parser.add_argument("baseline")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional drop below the baseline "
                             "floor (default 0.25)")
    parser.add_argument("--obs-off",
                        help="BENCH_solvers.json from an "
                             "RRP_OBSERVABILITY=OFF build; enables the "
                             "instrumentation-overhead gate")
    parser.add_argument("--obs-row", default="srrp_aggregated_w3_warm",
                        help="benchmark entry the overhead gate compares "
                             "(default srrp_aggregated_w3_warm)")
    parser.add_argument("--obs-tolerance", type=float, default=0.02,
                        help="allowed fractional node-throughput drop of "
                             "the obs-ON run vs the obs-OFF run "
                             "(default 0.02)")
    args = parser.parse_args()

    with open(args.measured) as f:
        measured = json.load(f)
    with open(args.baseline) as f:
        baseline = json.load(f)

    if baseline.get("schema") == "rrp-bench-replan-v1":
        return check_replan(measured, baseline)

    measured_by_name = {r["name"]: r for r in measured.get("results", [])}
    failures = []

    for base in baseline.get("results", []):
        name = base["name"]
        gates_nps = "nodes_per_second" in base
        gates_nodes = "max_nodes" in base
        if not gates_nps and not gates_nodes:
            continue
        got = measured_by_name.get(name)
        if got is None:
            failures.append(f"{name}: missing from measured results")
            continue
        if gates_nps:
            floor = base["nodes_per_second"] * (1.0 - args.tolerance)
            actual = got.get("nodes_per_second", 0.0)
            status = "ok" if actual >= floor else "FAIL"
            print(f"{status:4} {name}: {actual:.0f} nodes/s "
                  f"(floor {floor:.0f}, baseline "
                  f"{base['nodes_per_second']:.0f}, "
                  f"{ratio_str(actual, floor)} of floor)")
            if actual < floor:
                failures.append(
                    f"{name}: {actual:.0f} nodes/s below floor {floor:.0f} "
                    f"({ratio_str(actual, floor)} of floor)")
        if gates_nodes:
            cap = base["max_nodes"]
            nodes = got.get("nodes", 0)
            status = "ok" if nodes <= cap else "FAIL"
            print(f"{status:4} {name}: {nodes} nodes (cap {cap})")
            if nodes > cap:
                failures.append(
                    f"{name}: {nodes} nodes exceeds cap {cap} "
                    f"({nodes / cap:.2f}x of cap)")

    min_speedup = baseline.get("min_srrp_warm_speedup")
    if min_speedup is not None:
        speedup = measured.get("srrp_warm_speedup", 0.0)
        status = "ok" if speedup >= min_speedup else "FAIL"
        print(f"{status:4} srrp_warm_speedup: {speedup:.2f}x "
              f"(minimum {min_speedup:.2f}x)")
        if speedup < min_speedup:
            failures.append(
                f"srrp_warm_speedup {speedup:.2f}x below {min_speedup:.2f}x "
                f"({ratio_str(speedup, min_speedup)} of minimum)")

    if args.obs_off:
        with open(args.obs_off) as f:
            obs_off = json.load(f)
        if measured.get("observability") is not True:
            failures.append("obs gate: MEASURED_JSON was not produced by an "
                            "RRP_OBSERVABILITY=ON build")
        if obs_off.get("observability") is not False:
            failures.append("obs gate: --obs-off file was not produced by an "
                            "RRP_OBSERVABILITY=OFF build")
        off_by_name = {r["name"]: r for r in obs_off.get("results", [])}
        on_row = measured_by_name.get(args.obs_row)
        off_row = off_by_name.get(args.obs_row)
        if on_row is None or off_row is None:
            failures.append(f"obs gate: {args.obs_row} missing from "
                            "measured and/or --obs-off results")
        else:
            on_nps = on_row.get("nodes_per_second", 0.0)
            off_nps = off_row.get("nodes_per_second", 0.0)
            floor = off_nps * (1.0 - args.obs_tolerance)
            status = "ok" if on_nps >= floor else "FAIL"
            print(f"{status:4} obs overhead on {args.obs_row}: "
                  f"{on_nps:.0f} nodes/s with obs vs {off_nps:.0f} without "
                  f"(floor {floor:.0f}, {ratio_str(on_nps, floor)} of floor)")
            if on_nps < floor:
                overhead = 1.0 - on_nps / off_nps if off_nps > 0 else 0.0
                failures.append(
                    f"obs gate: instrumentation costs {overhead:.1%} of "
                    f"{args.obs_row} node throughput, budget is "
                    f"{args.obs_tolerance:.1%}")

    if failures:
        print("\nperf-smoke FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nperf-smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
