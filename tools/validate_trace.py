#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file produced by --trace-out.

Checks that the file is what ui.perfetto.dev / chrome://tracing will
accept and that the spans are physically plausible:

  * top level is an object with "traceEvents" (a list) and the
    "displayTimeUnit" hint the recorder writes;
  * every event is a complete event (ph == "X") with a non-empty name,
    category "rrp", numeric ts/dur in microseconds (ts >= 0, dur >= 0),
    integer pid/tid, and args (when present) a flat object of numbers
    or strings;
  * per thread, spans nest: sorted by start time, any two spans are
    either disjoint or one contains the other.  Partial overlap means
    the recorder emitted a physically impossible interleaving.

Exit status 0 when valid; 1 with a diagnostic otherwise.  Used by the
CI obs-off job (README "Observability") and usable standalone:

    python3 tools/validate_trace.py plan_trace.json
"""

from __future__ import annotations

import json
import sys

REQUIRED_EVENT_KEYS = ("name", "ph", "ts", "dur", "pid", "tid")

# Spans closing in the same clock read as their parent are legal; allow
# exact boundary touching but reject real partial overlap.
_EPS_US = 0.0


def fail(msg: str) -> "NoReturn":
    print(f"validate_trace: FAIL: {msg}", file=sys.stderr)
    raise SystemExit(1)


def check_event(ev: object, index: int) -> dict:
    if not isinstance(ev, dict):
        fail(f"traceEvents[{index}] is not an object")
    for key in REQUIRED_EVENT_KEYS:
        if key not in ev:
            fail(f"traceEvents[{index}] missing key {key!r}")
    if not isinstance(ev["name"], str) or not ev["name"]:
        fail(f"traceEvents[{index}] has empty or non-string name")
    if ev["ph"] != "X":
        fail(f"traceEvents[{index}] ({ev['name']}): ph {ev['ph']!r}, "
             "expected complete event 'X'")
    if ev.get("cat") != "rrp":
        fail(f"traceEvents[{index}] ({ev['name']}): cat {ev.get('cat')!r}, "
             "expected 'rrp'")
    for key in ("ts", "dur"):
        value = ev[key]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            fail(f"traceEvents[{index}] ({ev['name']}): {key} not numeric")
        if value < 0:
            fail(f"traceEvents[{index}] ({ev['name']}): {key} = {value} < 0")
    for key in ("pid", "tid"):
        if isinstance(ev[key], bool) or not isinstance(ev[key], int):
            fail(f"traceEvents[{index}] ({ev['name']}): {key} not an int")
    if "args" in ev:
        args = ev["args"]
        if not isinstance(args, dict):
            fail(f"traceEvents[{index}] ({ev['name']}): args not an object")
        for akey, aval in args.items():
            if not isinstance(akey, str):
                fail(f"traceEvents[{index}] ({ev['name']}): non-string "
                     "args key")
            if isinstance(aval, bool) or not isinstance(aval,
                                                        (int, float, str)):
                fail(f"traceEvents[{index}] ({ev['name']}): args[{akey!r}] "
                     "is not a number or string")
    return ev


def check_nesting(events: list) -> None:
    by_tid: dict = {}
    for ev in events:
        by_tid.setdefault(ev["tid"], []).append(ev)
    for tid, spans in sorted(by_tid.items()):
        # Longest-first at equal start so a parent precedes the children
        # it contains.
        spans.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack: list = []  # open (name, start, end) intervals
        for ev in spans:
            start, end = ev["ts"], ev["ts"] + ev["dur"]
            while stack and stack[-1][2] <= start + _EPS_US:
                stack.pop()
            if stack and end > stack[-1][2] + _EPS_US:
                pname, pstart, pend = stack[-1]
                fail(f"tid {tid}: span {ev['name']!r} "
                     f"[{start}, {end}] partially overlaps "
                     f"{pname!r} [{pstart}, {pend}] — spans must nest")
            stack.append((ev["name"], start, end))


def main(argv: list) -> int:
    if len(argv) != 2:
        print("usage: validate_trace.py TRACE_JSON", file=sys.stderr)
        return 2
    path = argv[1]
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except OSError as exc:
        fail(f"cannot read {path}: {exc}")
    except json.JSONDecodeError as exc:
        fail(f"{path} is not valid JSON: {exc}")
    if not isinstance(doc, dict):
        fail("top level is not an object")
    if doc.get("displayTimeUnit") != "ms":
        fail(f"displayTimeUnit {doc.get('displayTimeUnit')!r}, expected 'ms'")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail("traceEvents missing or not a list")
    checked = [check_event(ev, i) for i, ev in enumerate(events)]
    check_nesting(checked)
    tids = {ev["tid"] for ev in checked}
    print(f"validate_trace: OK: {len(checked)} spans across "
          f"{len(tids)} thread(s) in {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
