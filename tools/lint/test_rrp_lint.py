#!/usr/bin/env python3
"""Unit tests for rrp_lint and rrp_lint_ast: each rule must fire on a
seeded violation and stay quiet on clean input, so CI can trust a clean
run.  The AST rules are tested twice: rule logic on synthetic Node trees
(runs everywhere, no libclang needed) and end-to-end on real parses
(skipped when libclang is unavailable)."""

import contextlib
import io
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import rrp_lint  # noqa: E402
import rrp_lint_ast  # noqa: E402
from rrp_lint_ast import FileContext, Node, link_parents  # noqa: E402

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "..")
)


class FakeTree:
    """A throwaway source tree (no git) for seeding violations."""

    def __init__(self):
        self._dir = tempfile.TemporaryDirectory(prefix="rrp_lint_test_")
        self.root = self._dir.name

    def write(self, relpath, content):
        path = os.path.join(self.root, relpath)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(content)

    def cleanup(self):
        self._dir.cleanup()


class RuleTests(unittest.TestCase):
    def setUp(self):
        self.tree = FakeTree()
        self.addCleanup(self.tree.cleanup)

    def rules_fired(self):
        return {v.rule for v in rrp_lint.lint(self.tree.root)}

    def test_clean_tree_passes(self):
        self.tree.write(
            "src/lp/ok.cpp",
            '#include "lp/ok.hpp"\n'
            "double f(double x) { return x * 2.0; }\n",
        )
        self.tree.write(
            "src/lp/ok.hpp", "#pragma once\ndouble f(double x);\n"
        )
        self.assertEqual(rrp_lint.lint(self.tree.root), [])

    def test_abort_in_library_fires(self):
        self.tree.write(
            "src/core/bad.cpp",
            "#include <cstdlib>\nvoid f() { std::abort(); }\n",
        )
        self.assertIn("no-abort-assert", self.rules_fired())

    def test_raw_assert_in_library_fires(self):
        self.tree.write(
            "src/core/bad.cpp",
            "#include <cassert>\nvoid f(int x) { assert(x > 0); }\n",
        )
        self.assertIn("no-abort-assert", self.rules_fired())

    def test_static_assert_is_allowed(self):
        self.tree.write(
            "src/core/ok.cpp",
            "static_assert(sizeof(double) == 8, \"ieee754\");\n",
        )
        self.assertEqual(rrp_lint.lint(self.tree.root), [])

    def test_abort_in_comment_is_allowed(self):
        self.tree.write(
            "src/core/ok.cpp",
            "// library code never calls std::abort().\n"
            "/* nor assert(x) */\n"
            'const char* s = "abort(";\n',
        )
        self.assertEqual(rrp_lint.lint(self.tree.root), [])

    def test_abort_outside_library_is_allowed(self):
        self.tree.write(
            "tests/test_x.cpp", "void f() { std::abort(); }\n"
        )
        self.assertNotIn("no-abort-assert", self.rules_fired())

    def test_float_in_solver_numerics_fires(self):
        self.tree.write(
            "src/milp/bad.cpp", "float relax(float x) { return x; }\n"
        )
        self.assertIn("no-float-numerics", self.rules_fired())

    def test_float_outside_numeric_dirs_is_allowed(self):
        self.tree.write(
            "src/common/ok.cpp", "float narrow(float x) { return x; }\n"
        )
        self.assertNotIn("no-float-numerics", self.rules_fired())

    def test_naked_new_fires(self):
        self.tree.write(
            "src/core/bad.cpp", "int* f() { return new int(3); }\n"
        )
        self.assertIn("no-naked-new", self.rules_fired())

    def test_missing_pragma_once_fires(self):
        self.tree.write("src/core/bad.hpp", "int f();\n")
        self.assertIn("pragma-once", self.rules_fired())

    def test_ifndef_guard_fires(self):
        self.tree.write(
            "src/core/bad.hpp",
            "#ifndef RRP_BAD_HPP\n#define RRP_BAD_HPP\n#pragma once\n"
            "#endif\n",
        )
        self.assertIn("pragma-once", self.rules_fired())

    def test_raw_clock_outside_common_fires(self):
        self.tree.write(
            "src/lp/bad.cpp",
            "#include <chrono>\n"
            "double t() { return std::chrono::steady_clock::now()"
            ".time_since_epoch().count(); }\n",
        )
        self.assertIn("no-raw-clock", self.rules_fired())

    def test_raw_clock_in_tests_fires(self):
        self.tree.write(
            "tests/test_bad.cpp",
            "auto t0 = std::chrono::high_resolution_clock::now();\n",
        )
        self.assertIn("no-raw-clock", self.rules_fired())

    def test_raw_clock_in_common_is_allowed(self):
        self.tree.write(
            "src/common/deadline.cpp",
            "#include <chrono>\n"
            "double now() { return std::chrono::steady_clock::now()"
            ".time_since_epoch().count(); }\n",
        )
        self.assertNotIn("no-raw-clock", self.rules_fired())

    def test_raw_clock_in_comment_or_string_is_allowed(self):
        self.tree.write(
            "src/lp/ok.cpp",
            "// never call steady_clock::now( ) here\n"
            'const char* s = "system_clock::now(";\n',
        )
        self.assertNotIn("no-raw-clock", self.rules_fired())

    def test_committed_build_artifact_fires(self):
        self.tree.write("build/CMakeCache.txt", "CMAKE_BUILD_TYPE=Release\n")
        self.tree.write("src/obj.o", "\x7fELF")
        rules = self.rules_fired()
        self.assertIn("no-build-artifacts", rules)
        violations = [
            v
            for v in rrp_lint.lint(self.tree.root)
            if v.rule == "no-build-artifacts"
        ]
        self.assertEqual(len(violations), 2)


class CliTests(unittest.TestCase):
    def test_missing_root_is_an_error_not_clean(self):
        with contextlib.redirect_stderr(io.StringIO()) as err:
            rc = rrp_lint.main(["/nonexistent/lint/root"])
        self.assertEqual(rc, 2)
        self.assertIn("no such directory", err.getvalue())


class RepoTests(unittest.TestCase):
    def test_repository_is_clean(self):
        violations = rrp_lint.lint(REPO_ROOT)
        self.assertEqual(
            violations, [], "\n".join(str(v) for v in violations)
        )


# ---------------------------------------------------------------------------
# AST lint: rule logic on synthetic Node trees (libclang-free).
# ---------------------------------------------------------------------------


def N(kind, *children, **kw):
    """Shorthand Node constructor for synthetic trees."""
    return Node(kind=kind, children=list(children), **kw)


def fired(tree, path, allow=None):
    root = link_parents(N("TRANSLATION_UNIT", tree))
    ctx = FileContext(path=path, allow=allow or {})
    return {f.rule for f in rrp_lint_ast.run_rules(root, ctx)}


class AstRawSyncPrimitiveTests(unittest.TestCase):
    def test_std_mutex_member_fires(self):
        tree = N("FIELD_DECL", spelling="mu_", type="std::mutex", line=4)
        self.assertIn("raw-sync-primitive", fired(tree, "src/milp/x.cpp"))

    def test_libcxx_inline_namespace_fires(self):
        tree = N(
            "VAR_DECL",
            spelling="lk",
            type="std::__1::unique_lock<std::__1::mutex>",
            line=2,
        )
        self.assertIn("raw-sync-primitive", fired(tree, "tests/t.cpp"))

    def test_sync_home_is_exempt(self):
        tree = N("FIELD_DECL", type="std::condition_variable", line=9)
        self.assertNotIn(
            "raw-sync-primitive", fired(tree, "src/common/sync.hpp")
        )

    def test_wrapped_types_pass(self):
        tree = N("FIELD_DECL", spelling="mu_", type="rrp::Mutex", line=4)
        self.assertNotIn("raw-sync-primitive", fired(tree, "src/milp/x.cpp"))

    def test_lookalike_names_pass(self):
        # my::mutex or a spelling containing "mutex" must not fire.
        tree = N("VAR_DECL", spelling="m", type="rrpd::mutex_stats", line=1)
        self.assertNotIn("raw-sync-primitive", fired(tree, "src/core/x.cpp"))

    def test_decl_and_type_ref_same_line_reported_once(self):
        tree = N(
            "VAR_DECL",
            N("TYPE_REF", type="std::mutex", line=7),
            spelling="mu",
            type="std::mutex",
            line=7,
        )
        root = link_parents(N("TRANSLATION_UNIT", tree))
        ctx = FileContext(path="src/lp/x.cpp")
        hits = [
            f
            for f in rrp_lint_ast.run_rules(root, ctx)
            if f.rule == "raw-sync-primitive"
        ]
        self.assertEqual(len(hits), 1)


class AstUnnamedLockTemporaryTests(unittest.TestCase):
    def _temporary(self, type_spelling):
        # CompoundStmt > ExprWithCleanups (UNEXPOSED_EXPR) > ctor expr:
        # the shape libclang gives `MutexLock{mu};` as a statement.
        return N(
            "COMPOUND_STMT",
            N(
                "UNEXPOSED_EXPR",
                N(
                    "CXX_FUNCTIONAL_CAST_EXPR",
                    type=type_spelling,
                    line=3,
                ),
            ),
        )

    def test_discarded_mutexlock_temporary_fires(self):
        tree = self._temporary("rrp::MutexLock")
        self.assertIn("unnamed-lock-temporary", fired(tree, "src/lp/x.cpp"))

    def test_discarded_std_lock_guard_fires(self):
        tree = self._temporary("std::lock_guard<std::mutex>")
        self.assertIn("unnamed-lock-temporary", fired(tree, "tests/t.cpp"))

    def test_named_lock_passes(self):
        tree = N(
            "COMPOUND_STMT",
            N(
                "DECL_STMT",
                N(
                    "VAR_DECL",
                    N("CALL_EXPR", type="rrp::MutexLock", line=3),
                    spelling="lock",
                    type="rrp::MutexLock",
                    line=3,
                ),
            ),
        )
        self.assertNotIn(
            "unnamed-lock-temporary", fired(tree, "src/lp/x.cpp")
        )

    def test_lock_passed_as_argument_passes(self):
        tree = N(
            "COMPOUND_STMT",
            N(
                "CALL_EXPR",
                N("CXX_TEMPORARY_OBJECT_EXPR", type="rrp::MutexLock", line=3),
                spelling="with_lock",
                line=3,
            ),
        )
        self.assertNotIn(
            "unnamed-lock-temporary", fired(tree, "src/lp/x.cpp")
        )


class AstSolverDeadlineParamTests(unittest.TestCase):
    def _solver(self, name, *param_types):
        params = [
            N("PARM_DECL", type=t, line=2) for t in param_types
        ]
        fn = N("FUNCTION_DECL", *params, spelling=name, line=2)
        return N("NAMESPACE", fn, spelling="core", line=1)

    def test_solver_without_deadline_fires(self):
        tree = self._solver("solve_fast", "const rrp::core::DrrpInstance &")
        self.assertIn(
            "solver-deadline-param", fired(tree, "src/core/fast.hpp")
        )

    def test_deadline_param_passes(self):
        tree = self._solver(
            "solve_fast",
            "const rrp::core::DrrpInstance &",
            "const rrp::common::Deadline &",
        )
        self.assertNotIn(
            "solver-deadline-param", fired(tree, "src/core/fast.hpp")
        )

    def test_options_carrier_passes(self):
        tree = self._solver(
            "solve", "const rrp::milp::Model &", "const rrp::milp::BnbOptions &"
        )
        self.assertNotIn(
            "solver-deadline-param", fired(tree, "src/milp/bnb.hpp")
        )

    def test_non_solver_names_pass(self):
        tree = self._solver("no_plan_fleet", "const std::vector<int> &")
        self.assertNotIn(
            "solver-deadline-param", fired(tree, "src/core/fleet.hpp")
        )

    def test_source_files_and_other_dirs_pass(self):
        tree = self._solver("solve_fast", "int")
        self.assertNotIn(
            "solver-deadline-param", fired(tree, "src/core/fast.cpp")
        )
        self.assertNotIn(
            "solver-deadline-param", fired(tree, "src/lp/fast.hpp")
        )

    def test_method_named_solve_passes(self):
        # Member functions are CXX_METHOD (and sit under CLASS_DECL);
        # the rule targets free functions only.
        fn = N(
            "CXX_METHOD",
            N("PARM_DECL", type="int", line=3),
            spelling="solve",
            line=3,
        )
        tree = N("CLASS_DECL", fn, spelling="Solver", line=1)
        self.assertNotIn(
            "solver-deadline-param", fired(tree, "src/milp/bnb.hpp")
        )


class AstFloatEqualityTests(unittest.TestCase):
    def _cmp(self, opcode, lhs, rhs, line=5):
        return N(
            "BINARY_OPERATOR", lhs, rhs, opcode=opcode, line=line,
            end_line=line,
        )

    def _ref(self, spelling="x", type="double"):
        return N("DECL_REF_EXPR", spelling=spelling, type=type, line=5)

    def test_exact_double_equality_fires(self):
        tree = self._cmp("==", self._ref("a"), self._ref("b"))
        self.assertIn("float-equality", fired(tree, "src/lp/simplex.cpp"))

    def test_exact_double_inequality_fires(self):
        tree = self._cmp("!=", self._ref("a"), self._ref("b"))
        self.assertIn("float-equality", fired(tree, "src/milp/bnb.cpp"))

    def test_literal_zero_is_exempt(self):
        zero = N(
            "UNEXPOSED_EXPR",
            N("FLOATING_LITERAL", type="double", tokens=("0.0",), line=5),
            type="double",
            line=5,
        )
        tree = self._cmp("==", self._ref("coeff"), zero)
        self.assertNotIn("float-equality", fired(tree, "src/lp/model.cpp"))

    def test_nonzero_literal_fires(self):
        one = N(
            "UNEXPOSED_EXPR",
            N("FLOATING_LITERAL", type="double", tokens=("1.0",), line=5),
            type="double",
            line=5,
        )
        tree = self._cmp("==", self._ref("ratio"), one)
        self.assertIn("float-equality", fired(tree, "src/lp/model.cpp"))

    def test_infinity_sentinel_is_exempt(self):
        tree = self._cmp(
            "==", self._ref("bound"), self._ref("kInfinity")
        )
        self.assertNotIn("float-equality", fired(tree, "src/lp/model.cpp"))

    def test_negated_infinity_sentinel_is_exempt(self):
        neg = N(
            "UNARY_OPERATOR",
            self._ref("kInfinity"),
            type="double",
            line=5,
        )
        tree = self._cmp("==", self._ref("lo"), neg)
        self.assertNotIn("float-equality", fired(tree, "src/lp/model.cpp"))

    def test_allow_comment_suppresses(self):
        tree = self._cmp("==", self._ref("a"), self._ref("b"))
        rules = fired(
            tree, "src/milp/bnb.cpp", allow={5: {"float-equality"}}
        )
        self.assertNotIn("float-equality", rules)

    def test_allow_comment_on_expression_tail_suppresses(self):
        # Multi-line comparison: the allow() marker may sit on any line
        # the expression covers.
        tree = self._cmp("==", self._ref("a"), self._ref("b"), line=5)
        tree.end_line = 6
        rules = fired(
            tree, "src/milp/bnb.cpp", allow={6: {"float-equality"}}
        )
        self.assertNotIn("float-equality", rules)

    def test_integer_comparison_passes(self):
        tree = self._cmp(
            "==",
            self._ref("n", type="unsigned long"),
            self._ref("m", type="unsigned long"),
        )
        self.assertNotIn("float-equality", fired(tree, "src/lp/x.cpp"))

    def test_ordering_comparison_passes(self):
        tree = self._cmp("<", self._ref("a"), self._ref("b"))
        self.assertNotIn("float-equality", fired(tree, "src/lp/x.cpp"))

    def test_out_of_scope_dirs_pass(self):
        tree = self._cmp("==", self._ref("a"), self._ref("b"))
        self.assertNotIn(
            "float-equality", fired(tree, "src/core/wagner_whitin.cpp")
        )


class AstNakedNewDeleteTests(unittest.TestCase):
    def test_new_expression_fires(self):
        tree = N(
            "CXX_NEW_EXPR", tokens=("new", "int", "(", "3", ")"), line=2
        )
        self.assertIn("naked-new-delete", fired(tree, "src/core/x.cpp"))

    def test_placement_new_is_exempt(self):
        tree = N(
            "CXX_NEW_EXPR",
            tokens=("new", "(", "buf", ")", "Node", "(", ")"),
            line=2,
        )
        self.assertNotIn("naked-new-delete", fired(tree, "src/core/x.cpp"))

    def test_delete_expression_fires(self):
        tree = N("CXX_DELETE_EXPR", tokens=("delete", "p"), line=2)
        self.assertIn("naked-new-delete", fired(tree, "src/lp/x.cpp"))

    def test_outside_library_passes(self):
        tree = N(
            "CXX_NEW_EXPR", tokens=("new", "int", "(", "3", ")"), line=2
        )
        self.assertNotIn("naked-new-delete", fired(tree, "tests/t.cpp"))


class AstDenseMatrixTests(unittest.TestCase):
    DENSE = (
        "std::vector<std::vector<double, std::allocator<double>>, "
        "std::allocator<std::vector<double, std::allocator<double>>>>"
    )

    def test_dense_member_in_lp_fires(self):
        tree = N("FIELD_DECL", spelling="binv_", type=self.DENSE, line=9)
        self.assertIn("dense-matrix", fired(tree, "src/lp/simplex.hpp"))

    def test_libcxx_inline_namespace_fires(self):
        tree = N(
            "VAR_DECL",
            spelling="m",
            type="std::__1::vector<std::__1::vector<double>>",
            line=3,
        )
        self.assertIn("dense-matrix", fired(tree, "src/lp/x.cpp"))

    def test_outside_lp_layer_passes(self):
        tree = N("VAR_DECL", spelling="costs", type=self.DENSE, line=5)
        self.assertNotIn("dense-matrix", fired(tree, "src/core/eval.cpp"))
        self.assertNotIn("dense-matrix", fired(tree, "src/milp/x.cpp"))
        self.assertNotIn("dense-matrix", fired(tree, "tests/t.cpp"))

    def test_sparse_entry_columns_pass(self):
        tree = N(
            "FIELD_DECL",
            spelling="cols_",
            type="std::vector<std::vector<rrp::lp::Entry>>",
            line=4,
        )
        self.assertNotIn("dense-matrix", fired(tree, "src/lp/simplex.hpp"))

    def test_flat_vector_passes(self):
        tree = N(
            "VAR_DECL", spelling="w", type="std::vector<double>", line=2
        )
        self.assertNotIn("dense-matrix", fired(tree, "src/lp/simplex.cpp"))

    def test_allow_comment_suppresses(self):
        tree = N("VAR_DECL", spelling="scratch", type=self.DENSE, line=6)
        self.assertNotIn(
            "dense-matrix",
            fired(tree, "src/lp/x.cpp", allow={6: {"dense-matrix"}}),
        )

    def test_decl_and_type_ref_same_line_reported_once(self):
        tree = N(
            "VAR_DECL",
            N("TYPE_REF", type=self.DENSE, line=7),
            spelling="m",
            type=self.DENSE,
            line=7,
        )
        root = link_parents(N("TRANSLATION_UNIT", tree))
        ctx = FileContext(path="src/lp/x.cpp")
        hits = [
            f
            for f in rrp_lint_ast.run_rules(root, ctx)
            if f.rule == "dense-matrix"
        ]
        self.assertEqual(len(hits), 1)


class AstRawChronoTimingTests(unittest.TestCase):
    STEADY_TP = (
        "std::chrono::time_point<std::chrono::steady_clock, "
        "std::chrono::duration<long, std::ratio<1, 1000000000>>>"
    )

    def _now_call(self, type_spelling, line=4):
        return N(
            "CALL_EXPR", spelling="now", type=type_spelling, line=line
        )

    def test_steady_clock_now_fires(self):
        tree = self._now_call(self.STEADY_TP)
        self.assertIn("raw-chrono-timing", fired(tree, "bench/abl.cpp"))

    def test_aliased_clock_now_fires(self):
        # `using Clock = std::chrono::steady_clock; Clock::now();` —
        # canonical types see through the alias the regex rule misses.
        tree = self._now_call(self.STEADY_TP)
        self.assertIn("raw-chrono-timing", fired(tree, "src/core/x.cpp"))

    def test_libstdcxx_inline_namespace_fires(self):
        tree = self._now_call(
            "std::chrono::time_point<std::chrono::_V2::system_clock, "
            "std::chrono::duration<long, std::ratio<1, 1000000000>>>"
        )
        self.assertIn("raw-chrono-timing", fired(tree, "tests/t.cpp"))

    def test_libcxx_inline_namespace_fires(self):
        tree = self._now_call(
            "std::__1::chrono::time_point<"
            "std::__1::chrono::high_resolution_clock, "
            "std::__1::chrono::duration<long long, "
            "std::__1::ratio<1, 1000000000>>>"
        )
        self.assertIn("raw-chrono-timing", fired(tree, "tools/x.cpp"))

    def test_deadline_home_is_exempt(self):
        tree = self._now_call(self.STEADY_TP)
        self.assertNotIn(
            "raw-chrono-timing", fired(tree, "src/common/deadline.cpp")
        )

    def test_obs_layer_is_exempt(self):
        tree = self._now_call(self.STEADY_TP)
        self.assertNotIn(
            "raw-chrono-timing", fired(tree, "src/obs/trace.cpp")
        )

    def test_rrp_clock_wrapper_passes(self):
        # common::real_clock().now_seconds() is the sanctioned read.
        tree = N(
            "CALL_EXPR", spelling="now_seconds", type="double", line=4
        )
        self.assertNotIn("raw-chrono-timing", fired(tree, "bench/b.cpp"))

    def test_unrelated_now_passes(self):
        # A user-defined now() that never touches std::chrono clocks.
        tree = self._now_call("double")
        self.assertNotIn(
            "raw-chrono-timing", fired(tree, "bench/b.cpp")
        )

    def test_allow_comment_suppresses(self):
        tree = self._now_call(self.STEADY_TP, line=6)
        self.assertNotIn(
            "raw-chrono-timing",
            fired(tree, "bench/b.cpp", allow={6: {"raw-chrono-timing"}}),
        )

    def test_call_and_ref_same_line_reported_once(self):
        tree = N(
            "CALL_EXPR",
            N(
                "DECL_REF_EXPR",
                spelling="now",
                type=self.STEADY_TP + " ()",
                line=7,
            ),
            spelling="now",
            type=self.STEADY_TP,
            line=7,
        )
        root = link_parents(N("TRANSLATION_UNIT", tree))
        ctx = FileContext(path="bench/b.cpp")
        hits = [
            f
            for f in rrp_lint_ast.run_rules(root, ctx)
            if f.rule == "raw-chrono-timing"
        ]
        self.assertEqual(len(hits), 1)


class AstBatchSortTests(unittest.TestCase):
    def _sort_call(self, name="sort", line=4):
        return N("CALL_EXPR", spelling=name, type="void", line=line)

    def test_sort_in_price_distribution_fires(self):
        tree = self._sort_call()
        self.assertIn(
            "batch-sort", fired(tree, "src/core/price_distribution.cpp")
        )

    def test_stable_sort_fires(self):
        tree = self._sort_call("stable_sort")
        self.assertIn(
            "batch-sort", fired(tree, "src/core/price_distribution.hpp")
        )

    def test_outside_sliding_layer_passes(self):
        tree = self._sort_call()
        self.assertNotIn("batch-sort", fired(tree, "src/core/srrp.cpp"))
        self.assertNotIn("batch-sort", fired(tree, "src/lp/simplex.cpp"))

    def test_unrelated_call_passes(self):
        tree = N(
            "CALL_EXPR",
            spelling="snapshot",
            type="rrp::core::EmpiricalPriceDistribution",
            line=4,
        )
        self.assertNotIn(
            "batch-sort", fired(tree, "src/core/price_distribution.cpp")
        )

    def test_allow_comment_suppresses(self):
        tree = self._sort_call(line=6)
        self.assertNotIn(
            "batch-sort",
            fired(
                tree,
                "src/core/price_distribution.cpp",
                allow={6: {"batch-sort"}},
            ),
        )

    def test_call_and_ref_same_line_reported_once(self):
        tree = N(
            "CALL_EXPR",
            N("DECL_REF_EXPR", spelling="sort", type="void ()", line=7),
            spelling="sort",
            type="void",
            line=7,
        )
        root = link_parents(N("TRANSLATION_UNIT", tree))
        ctx = FileContext(path="src/core/price_distribution.cpp")
        hits = [
            f
            for f in rrp_lint_ast.run_rules(root, ctx)
            if f.rule == "batch-sort"
        ]
        self.assertEqual(len(hits), 1)


class AstHelperTests(unittest.TestCase):
    def test_parse_allow_comments(self):
        allow = rrp_lint_ast.parse_allow_comments(
            "double x;\n"
            "x == y;  // rrp-lint: allow(float-equality)\n"
            "// rrp-lint: allow(raw-sync-primitive, naked-new-delete)\n"
        )
        self.assertEqual(allow[2], {"float-equality"})
        self.assertEqual(
            allow[3], {"raw-sync-primitive", "naked-new-delete"}
        )
        self.assertNotIn(1, allow)

    def test_rule_names_are_registered(self):
        self.assertEqual(
            [name for name, _ in rrp_lint_ast.RULES],
            [
                "raw-sync-primitive",
                "unnamed-lock-temporary",
                "solver-deadline-param",
                "float-equality",
                "naked-new-delete",
                "dense-matrix",
                "batch-sort",
                "raw-chrono-timing",
            ],
        )


# ---------------------------------------------------------------------------
# AST lint: end-to-end on real libclang parses (skipped without libclang).
# ---------------------------------------------------------------------------

CINDEX = rrp_lint_ast.load_cindex()


@unittest.skipUnless(CINDEX is not None, "libclang not available")
class AstEndToEndTests(unittest.TestCase):
    def lint_snippet(self, code, pseudo_path, args=("-xc++", "-std=c++17")):
        with tempfile.NamedTemporaryFile(
            "w", suffix=".cpp", delete=False
        ) as f:
            f.write(code)
            path = f.name
        self.addCleanup(os.unlink, path)
        tree = rrp_lint_ast.build_tree(CINDEX, path, list(args))
        ctx = FileContext(
            path=pseudo_path,
            allow=rrp_lint_ast.parse_allow_comments(code),
        )
        return rrp_lint_ast.run_rules(tree, ctx)

    def test_raw_mutex_and_discarded_lock_fire(self):
        findings = self.lint_snippet(
            "#include <mutex>\n"
            "std::mutex g_m;\n"
            "void f() {\n"
            "  std::lock_guard<std::mutex>{g_m};\n"
            "}\n",
            "src/milp/fake.cpp",
        )
        rules = {f.rule for f in findings}
        self.assertIn("raw-sync-primitive", rules)
        self.assertIn("unnamed-lock-temporary", rules)

    def test_named_lock_does_not_fire_unnamed_rule(self):
        findings = self.lint_snippet(
            "#include <mutex>\n"
            "std::mutex g_m;\n"
            "void f() {\n"
            "  std::lock_guard<std::mutex> lock(g_m);\n"
            "}\n",
            "src/milp/fake.cpp",
        )
        rules = {f.rule for f in findings}
        self.assertNotIn("unnamed-lock-temporary", rules)

    def test_float_equality_and_exemptions(self):
        findings = self.lint_snippet(
            "constexpr double kInfinity = 1e300;\n"
            "bool f(double a, double b) {\n"
            "  bool x = (a == b);\n"
            "  bool y = (a == 0.0);\n"
            "  bool z = (a == kInfinity);\n"
            "  bool w = (a == b);  // rrp-lint: allow(float-equality)\n"
            "  return x && y && z && w;\n"
            "}\n",
            "src/lp/fake.cpp",
        )
        lines = [f.line for f in findings if f.rule == "float-equality"]
        self.assertEqual(lines, [3])

    def test_solver_without_deadline_param_fires(self):
        findings = self.lint_snippet(
            "namespace rrp::common { struct Deadline {}; }\n"
            "namespace rrp::core {\n"
            "int solve_thing(int horizon);\n"
            "int solve_bounded(int horizon,\n"
            "                  const rrp::common::Deadline& deadline);\n"
            "}\n",
            "src/core/fake.hpp",
        )
        hits = [f for f in findings if f.rule == "solver-deadline-param"]
        self.assertEqual([f.line for f in hits], [3])

    def test_aliased_chrono_clock_read_fires(self):
        findings = self.lint_snippet(
            "#include <chrono>\n"
            "using Clock = std::chrono::steady_clock;\n"
            "double wall() {\n"
            "  const auto t0 = Clock::now();\n"
            "  const auto t1 = std::chrono::steady_clock::now();\n"
            "  const auto t2 =\n"
            "      Clock::now();  // rrp-lint: allow(raw-chrono-timing)\n"
            "  return std::chrono::duration<double>(t1 - t0).count() +\n"
            "         std::chrono::duration<double>(t1 - t2).count();\n"
            "}\n",
            "bench/fake.cpp",
        )
        lines = sorted(
            f.line for f in findings if f.rule == "raw-chrono-timing"
        )
        self.assertEqual(lines, [4, 5])

    def test_naked_new_fires_and_placement_is_exempt(self):
        findings = self.lint_snippet(
            "#include <new>\n"
            "alignas(int) char buf[sizeof(int)];\n"
            "int* leak() { return new int(3); }\n"
            "int* place() { return new (buf) int(4); }\n"
            "void free_it(int* p) { delete p; }\n",
            "src/core/fake.cpp",
        )
        hits = sorted(
            f.line for f in findings if f.rule == "naked-new-delete"
        )
        self.assertEqual(hits, [3, 5])


@unittest.skipUnless(CINDEX is not None, "libclang not available")
class AstRepoTests(unittest.TestCase):
    def test_repository_is_ast_clean(self):
        args = rrp_lint_ast.default_args(REPO_ROOT)
        findings = []
        for path in rrp_lint_ast.lint_files(REPO_ROOT):
            findings.extend(
                rrp_lint_ast.lint_one(CINDEX, REPO_ROOT, path, args)
            )
        self.assertEqual(
            findings, [], "\n".join(str(f) for f in findings)
        )


if __name__ == "__main__":
    unittest.main()
