#!/usr/bin/env python3
"""Unit tests for rrp_lint: each rule must fire on a seeded violation and
stay quiet on clean input, so CI can trust a clean run."""

import contextlib
import io
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import rrp_lint  # noqa: E402

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "..")
)


class FakeTree:
    """A throwaway source tree (no git) for seeding violations."""

    def __init__(self):
        self._dir = tempfile.TemporaryDirectory(prefix="rrp_lint_test_")
        self.root = self._dir.name

    def write(self, relpath, content):
        path = os.path.join(self.root, relpath)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(content)

    def cleanup(self):
        self._dir.cleanup()


class RuleTests(unittest.TestCase):
    def setUp(self):
        self.tree = FakeTree()
        self.addCleanup(self.tree.cleanup)

    def rules_fired(self):
        return {v.rule for v in rrp_lint.lint(self.tree.root)}

    def test_clean_tree_passes(self):
        self.tree.write(
            "src/lp/ok.cpp",
            '#include "lp/ok.hpp"\n'
            "double f(double x) { return x * 2.0; }\n",
        )
        self.tree.write(
            "src/lp/ok.hpp", "#pragma once\ndouble f(double x);\n"
        )
        self.assertEqual(rrp_lint.lint(self.tree.root), [])

    def test_abort_in_library_fires(self):
        self.tree.write(
            "src/core/bad.cpp",
            "#include <cstdlib>\nvoid f() { std::abort(); }\n",
        )
        self.assertIn("no-abort-assert", self.rules_fired())

    def test_raw_assert_in_library_fires(self):
        self.tree.write(
            "src/core/bad.cpp",
            "#include <cassert>\nvoid f(int x) { assert(x > 0); }\n",
        )
        self.assertIn("no-abort-assert", self.rules_fired())

    def test_static_assert_is_allowed(self):
        self.tree.write(
            "src/core/ok.cpp",
            "static_assert(sizeof(double) == 8, \"ieee754\");\n",
        )
        self.assertEqual(rrp_lint.lint(self.tree.root), [])

    def test_abort_in_comment_is_allowed(self):
        self.tree.write(
            "src/core/ok.cpp",
            "// library code never calls std::abort().\n"
            "/* nor assert(x) */\n"
            'const char* s = "abort(";\n',
        )
        self.assertEqual(rrp_lint.lint(self.tree.root), [])

    def test_abort_outside_library_is_allowed(self):
        self.tree.write(
            "tests/test_x.cpp", "void f() { std::abort(); }\n"
        )
        self.assertNotIn("no-abort-assert", self.rules_fired())

    def test_float_in_solver_numerics_fires(self):
        self.tree.write(
            "src/milp/bad.cpp", "float relax(float x) { return x; }\n"
        )
        self.assertIn("no-float-numerics", self.rules_fired())

    def test_float_outside_numeric_dirs_is_allowed(self):
        self.tree.write(
            "src/common/ok.cpp", "float narrow(float x) { return x; }\n"
        )
        self.assertNotIn("no-float-numerics", self.rules_fired())

    def test_naked_new_fires(self):
        self.tree.write(
            "src/core/bad.cpp", "int* f() { return new int(3); }\n"
        )
        self.assertIn("no-naked-new", self.rules_fired())

    def test_missing_pragma_once_fires(self):
        self.tree.write("src/core/bad.hpp", "int f();\n")
        self.assertIn("pragma-once", self.rules_fired())

    def test_ifndef_guard_fires(self):
        self.tree.write(
            "src/core/bad.hpp",
            "#ifndef RRP_BAD_HPP\n#define RRP_BAD_HPP\n#pragma once\n"
            "#endif\n",
        )
        self.assertIn("pragma-once", self.rules_fired())

    def test_raw_clock_outside_common_fires(self):
        self.tree.write(
            "src/lp/bad.cpp",
            "#include <chrono>\n"
            "double t() { return std::chrono::steady_clock::now()"
            ".time_since_epoch().count(); }\n",
        )
        self.assertIn("no-raw-clock", self.rules_fired())

    def test_raw_clock_in_tests_fires(self):
        self.tree.write(
            "tests/test_bad.cpp",
            "auto t0 = std::chrono::high_resolution_clock::now();\n",
        )
        self.assertIn("no-raw-clock", self.rules_fired())

    def test_raw_clock_in_common_is_allowed(self):
        self.tree.write(
            "src/common/deadline.cpp",
            "#include <chrono>\n"
            "double now() { return std::chrono::steady_clock::now()"
            ".time_since_epoch().count(); }\n",
        )
        self.assertNotIn("no-raw-clock", self.rules_fired())

    def test_raw_clock_in_comment_or_string_is_allowed(self):
        self.tree.write(
            "src/lp/ok.cpp",
            "// never call steady_clock::now( ) here\n"
            'const char* s = "system_clock::now(";\n',
        )
        self.assertNotIn("no-raw-clock", self.rules_fired())

    def test_committed_build_artifact_fires(self):
        self.tree.write("build/CMakeCache.txt", "CMAKE_BUILD_TYPE=Release\n")
        self.tree.write("src/obj.o", "\x7fELF")
        rules = self.rules_fired()
        self.assertIn("no-build-artifacts", rules)
        violations = [
            v
            for v in rrp_lint.lint(self.tree.root)
            if v.rule == "no-build-artifacts"
        ]
        self.assertEqual(len(violations), 2)


class CliTests(unittest.TestCase):
    def test_missing_root_is_an_error_not_clean(self):
        with contextlib.redirect_stderr(io.StringIO()) as err:
            rc = rrp_lint.main(["/nonexistent/lint/root"])
        self.assertEqual(rc, 2)
        self.assertIn("no such directory", err.getvalue())


class RepoTests(unittest.TestCase):
    def test_repository_is_clean(self):
        violations = rrp_lint.lint(REPO_ROOT)
        self.assertEqual(
            violations, [], "\n".join(str(v) for v in violations)
        )


if __name__ == "__main__":
    unittest.main()
