#!/usr/bin/env python3
"""AST-aware semantic linter for the rrp codebase (libclang-based).

Complements the regex linter (rrp_lint.py) with rules that need real
type and scope information:

  raw-sync-primitive     std::mutex / std::lock_guard / std::unique_lock /
                         std::condition_variable and friends are forbidden
                         everywhere except src/common/sync.hpp; all other
                         code must use the annotated rrp::Mutex /
                         rrp::MutexLock / rrp::CondVar wrappers so Clang's
                         -Wthread-safety analysis sees every lock site.
  unnamed-lock-temporary A lock object constructed as a discarded
                         temporary (`MutexLock{mu};`) unlocks at the end
                         of the full expression, not the scope — a
                         classic silent race.  Locks must be named.
  solver-deadline-param  Public solver entry points (free functions named
                         solve_* / plan_* / simulate_* in src/core and
                         src/milp headers) must accept a deadline-carrying
                         parameter (Deadline, BnbOptions, SimplexOptions,
                         PolicyConfig, or SimulationInputs) so no solver
                         can be invoked unboundedly.
  float-equality         Exact ==/!= between floating-point values in
                         solver numerics (src/lp, src/milp) is almost
                         always a tolerance bug.  Comparisons against a
                         literal zero or the kInfinity/kInf sentinels are
                         exempt (exact by construction).
  naked-new-delete       No new/delete expressions in library code
                         (src/); placement new is exempt.
  dense-matrix           std::vector<std::vector<double>> in src/lp/ is
                         the dense-basis representation the sparse-LU
                         simplex replaced; new LP-layer code must use
                         compressed column storage (or mark a deliberate
                         dense scratch with
                         `rrp-lint: allow(dense-matrix)`).
  batch-sort             std::sort / std::stable_sort inside
                         src/core/price_distribution.* — the sliding
                         window keeps its support ordered incrementally
                         (O(1) amortized), so a full-history sort there
                         silently reintroduces the O(n log n) re-sort
                         the incremental replan pipeline removed.  The
                         deliberate batch paths carry
                         `rrp-lint: allow(batch-sort)`.
  raw-chrono-timing      Direct std::chrono clock reads
                         (steady_clock / system_clock /
                         high_resolution_clock ::now()) outside
                         src/common/deadline.* and src/obs/.  Unlike the
                         regex linter's no-raw-clock rule this sees
                         through type aliases (`using Clock =
                         std::chrono::steady_clock; Clock::now();`)
                         because it matches canonical types.  Time must
                         flow through rrp::common::Clock so deadlines
                         and trace timestamps stay injectable.

Suppression: append `rrp-lint: allow(<rule>[, <rule>...])` in a comment
on any line covered by the offending expression.

The linter degrades gracefully: when libclang (python3-clang) is not
installed it prints a notice and exits 0, so local checkouts without
LLVM tooling are not blocked; CI passes --require to turn the missing
dependency into a hard failure (exit 3).

Architecture note: libclang cursors are converted into plain `Node`
records (kind / spelling / canonical type / location / opcode /
tokens) and every rule operates only on that neutral tree.  This keeps
rule logic unit-testable with synthetic trees on machines without
libclang (see test_rrp_lint.py).

Usage: rrp_lint_ast.py [ROOT] [--quiet] [--require] [--list-rules]
Exit status: 0 clean, 1 violations, 2 parse failure, 3 libclang missing
(with --require).
"""

from __future__ import annotations

import argparse
import glob as globmod
import os
import re
import sys
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

CPP_EXTENSIONS = (".cpp", ".cc", ".cxx", ".hpp", ".h", ".hh")
HEADER_EXTENSIONS = (".hpp", ".h", ".hh")

LINT_DIRS = ("src", "tools", "tests", "bench", "examples")
# Deliberately-broken negative-compile TUs live here.
EXCLUDE_DIRS = ("tests/negative_compile",)
SYNC_HOME = "src/common/sync.hpp"  # the one home of raw std primitives

ALLOW_RE = re.compile(r"rrp-lint:\s*allow\(([a-z0-9_,\s-]+)\)")

# ---------------------------------------------------------------------------
# Neutral AST representation (libclang-independent).
# ---------------------------------------------------------------------------


@dataclass
class Node:
    """One AST node, reduced to what the rules need.

    `kind` is the libclang CursorKind name (e.g. "VAR_DECL");
    `type` is the *canonical* type spelling ("" when absent);
    `opcode` is the operator token for BINARY_OPERATOR nodes;
    `tokens` is populated only for literals and new-expressions.
    """

    kind: str
    spelling: str = ""
    type: str = ""
    line: int = 0
    col: int = 0
    end_line: int = 0
    opcode: str = ""
    tokens: tuple = ()
    children: list = field(default_factory=list)
    parent: Optional["Node"] = None

    def walk(self):
        yield self
        for c in self.children:
            yield from c.walk()


def link_parents(node: Node, parent: Optional[Node] = None) -> Node:
    """Fills in parent pointers; returns `node` (test helper + walker)."""
    node.parent = parent
    for c in node.children:
        link_parents(c, node)
    return node


@dataclass
class Finding:
    rule: str
    path: str  # repo-relative, forward slashes
    line: int
    message: str
    end_line: int = 0  # last line of the offending expression

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class FileContext:
    """Per-file inputs shared by every rule."""

    path: str  # repo-relative, forward slashes
    # line number -> set of rule names suppressed on that line
    allow: dict = field(default_factory=dict)

    def suppressed(self, rule: str, start_line: int, end_line: int) -> bool:
        # An allow() comment anywhere on the offending expression's
        # lines suppresses it (capped so a huge extent cannot slurp an
        # unrelated suppression).
        hi = max(start_line, min(end_line, start_line + 4))
        for line in range(start_line, hi + 1):
            if rule in self.allow.get(line, ()):
                return True
        return False


def parse_allow_comments(text: str) -> dict:
    allow: dict = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        m = ALLOW_RE.search(line)
        if m:
            rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
            allow.setdefault(lineno, set()).update(rules)
    return allow


# ---------------------------------------------------------------------------
# Rules.  Each is a pure function (root Node, FileContext) -> [Finding].
# ---------------------------------------------------------------------------

# std::mutex et al., tolerating implementation inline namespaces
# (std::__1::mutex under libc++).
RAW_SYNC_RE = re.compile(
    r"\bstd::(__\w+::)?("
    r"mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|"
    r"condition_variable|condition_variable_any|"
    r"lock_guard|unique_lock|scoped_lock|shared_lock"
    r")\b"
)

# Scope-guard lock types whose discarded temporaries are races.
LOCK_TYPE_RE = re.compile(
    r"\b(rrp::MutexLock|std::(__\w+::)?"
    r"(lock_guard|unique_lock|scoped_lock|shared_lock))\b"
)

# Wrapper kinds libclang interposes between an expression and its
# syntactic parent (implicit casts, ExprWithCleanups, parens).
TRANSPARENT_KINDS = {"UNEXPOSED_EXPR", "PAREN_EXPR"}

SOLVER_NAME_RE = re.compile(r"^(solve|plan|simulate)(_|$)")
DEADLINE_CARRIER_RE = re.compile(
    r"\b(Deadline|BnbOptions|SimplexOptions|PolicyConfig|SimulationInputs)\b"
)

FLOAT_TYPE_RE = re.compile(r"^(const\s+|volatile\s+)*(float|double|long\s+double)$")
INFINITY_SENTINELS = {"kInfinity", "kInf", "infinity"}

# Node kinds that carry a declared/used type worth checking for rule 1.
TYPED_DECL_KINDS = {
    "VAR_DECL",
    "FIELD_DECL",
    "PARM_DECL",
    "TYPE_REF",
    "TYPE_ALIAS_DECL",
    "TYPEDEF_DECL",
    "CXX_TEMPORARY_OBJECT_EXPR",
    "CXX_FUNCTIONAL_CAST_EXPR",
}


def in_dirs(path: str, dirs: Iterable[str]) -> bool:
    return any(path == d or path.startswith(d + "/") for d in dirs)


def rule_raw_sync_primitive(root: Node, ctx: FileContext) -> list:
    if ctx.path == SYNC_HOME:
        return []
    findings = []
    seen_lines = set()
    for node in root.walk():
        if node.kind not in TYPED_DECL_KINDS:
            continue
        m = RAW_SYNC_RE.search(node.type)
        if not m:
            continue
        if node.line in seen_lines:  # VAR_DECL + its TYPE_REF child
            continue
        seen_lines.add(node.line)
        findings.append(
            Finding(
                "raw-sync-primitive",
                ctx.path,
                node.line,
                f"raw std::{m.group(2)} is forbidden outside "
                f"{SYNC_HOME}; use the annotated rrp::Mutex / "
                "rrp::MutexLock / rrp::CondVar wrappers",
                end_line=node.end_line,
            )
        )
    return findings


def _first_meaningful_ancestor(node: Node) -> Optional[Node]:
    p = node.parent
    while p is not None and p.kind in TRANSPARENT_KINDS:
        p = p.parent
    return p


def rule_unnamed_lock_temporary(root: Node, ctx: FileContext) -> list:
    findings = []
    ctor_kinds = {
        "CXX_TEMPORARY_OBJECT_EXPR",
        "CXX_FUNCTIONAL_CAST_EXPR",
        "CALL_EXPR",
        "CXX_UNRESOLVED_CONSTRUCT_EXPR",
    }
    for node in root.walk():
        if node.kind not in ctor_kinds:
            continue
        m = LOCK_TYPE_RE.search(node.type)
        if not m:
            continue
        anc = _first_meaningful_ancestor(node)
        # Expression-statement position: the construct is a discarded
        # full expression, so the lock is released immediately.
        if anc is not None and anc.kind == "COMPOUND_STMT":
            findings.append(
                Finding(
                    "unnamed-lock-temporary",
                    ctx.path,
                    node.line,
                    f"{m.group(1)} temporary is destroyed at the end of "
                    "this statement, releasing the lock immediately; "
                    "name the guard (e.g. `MutexLock lock(mu);`)",
                    end_line=node.end_line,
                )
            )
    return findings


def rule_solver_deadline_param(root: Node, ctx: FileContext) -> list:
    if not in_dirs(ctx.path, ("src/core", "src/milp")):
        return []
    if not ctx.path.endswith(HEADER_EXTENSIONS):
        return []
    findings = []
    for node in root.walk():
        if node.kind != "FUNCTION_DECL":
            continue
        if not SOLVER_NAME_RE.match(node.spelling):
            continue
        parent = node.parent
        if parent is not None and parent.kind not in (
            "NAMESPACE",
            "TRANSLATION_UNIT",
            "LINKAGE_SPEC",
        ):
            continue  # methods / local declarations are out of scope
        params = [c for c in node.children if c.kind == "PARM_DECL"]
        if any(DEADLINE_CARRIER_RE.search(p.type) for p in params):
            continue
        findings.append(
            Finding(
                "solver-deadline-param",
                ctx.path,
                node.line,
                f"public solver entry point '{node.spelling}' must accept "
                "a deadline-carrying parameter (Deadline, BnbOptions, "
                "SimplexOptions, PolicyConfig, or SimulationInputs) so "
                "callers can bound its runtime",
                end_line=node.line,
            )
        )
    return findings


def _strip_wrappers(node: Node) -> Node:
    while node.kind in TRANSPARENT_KINDS and node.children:
        node = node.children[0]
    return node


def _literal_zero(node: Node) -> bool:
    node = _strip_wrappers(node)
    if node.kind == "UNARY_OPERATOR" and node.children:
        node = _strip_wrappers(node.children[0])
    if node.kind not in ("INTEGER_LITERAL", "FLOATING_LITERAL"):
        return False
    for tok in node.tokens:
        try:
            return float(tok.rstrip("fFlLuU")) == 0.0
        except ValueError:
            continue
    return False


def _mentions_infinity(node: Node) -> bool:
    return any(
        n.spelling in INFINITY_SENTINELS
        for n in node.walk()
        if n.kind in ("DECL_REF_EXPR", "CALL_EXPR", "MEMBER_REF_EXPR")
    )


def rule_float_equality(root: Node, ctx: FileContext) -> list:
    if not in_dirs(ctx.path, ("src/lp", "src/milp")):
        return []
    findings = []
    for node in root.walk():
        if node.kind != "BINARY_OPERATOR" or node.opcode not in ("==", "!="):
            continue
        if len(node.children) != 2:
            continue
        lhs, rhs = node.children
        if not (FLOAT_TYPE_RE.match(lhs.type) and FLOAT_TYPE_RE.match(rhs.type)):
            continue
        if _literal_zero(lhs) or _literal_zero(rhs):
            continue
        if _mentions_infinity(lhs) or _mentions_infinity(rhs):
            continue
        findings.append(
            Finding(
                "float-equality",
                ctx.path,
                node.line,
                f"exact floating-point '{node.opcode}' in solver numerics; "
                "compare against a tolerance, or mark intentional exact "
                "equality with `// rrp-lint: allow(float-equality)`",
                end_line=node.end_line,
            )
        )
    return findings


def _is_placement_new(node: Node) -> bool:
    toks = list(node.tokens)
    for i, t in enumerate(toks):
        if t == "new":
            return i + 1 < len(toks) and toks[i + 1] == "("
    return False


def rule_naked_new_delete(root: Node, ctx: FileContext) -> list:
    if not in_dirs(ctx.path, ("src",)):
        return []
    findings = []
    for node in root.walk():
        if node.kind == "CXX_NEW_EXPR" and not _is_placement_new(node):
            findings.append(
                Finding(
                    "naked-new-delete",
                    ctx.path,
                    node.line,
                    "naked new expression in library code; use containers, "
                    "std::make_unique, or values",
                    end_line=node.end_line,
                )
            )
        elif node.kind == "CXX_DELETE_EXPR":
            findings.append(
                Finding(
                    "naked-new-delete",
                    ctx.path,
                    node.line,
                    "naked delete expression in library code; ownership "
                    "must live in RAII types",
                    end_line=node.end_line,
                )
            )
    return findings


# Nested vector-of-vector-of-double (tolerating inline namespaces and
# spelled-out default allocators in canonical type spellings).
DENSE_MATRIX_RE = re.compile(
    r"std::(__\w+::)?vector<\s*std::(__\w+::)?vector<\s*double\b"
)


def rule_dense_matrix(root: Node, ctx: FileContext) -> list:
    if not in_dirs(ctx.path, ("src/lp",)):
        return []
    findings = []
    seen_lines = set()
    for node in root.walk():
        if node.kind not in TYPED_DECL_KINDS:
            continue
        if not DENSE_MATRIX_RE.search(node.type):
            continue
        if node.line in seen_lines:  # VAR_DECL + its TYPE_REF child
            continue
        seen_lines.add(node.line)
        findings.append(
            Finding(
                "dense-matrix",
                ctx.path,
                node.line,
                "std::vector<std::vector<double>> in the LP layer "
                "reintroduces dense-basis storage; use compressed column "
                "storage, or mark a deliberate dense scratch with "
                "`rrp-lint: allow(dense-matrix)`",
                end_line=node.end_line,
            )
        )
    return findings


# The files whose hot path must maintain order incrementally; any sort
# call here is a batch-path re-sort unless explicitly allowed.
SLIDING_DISTRIBUTION_PREFIX = "src/core/price_distribution."

BATCH_SORT_NAMES = {"sort", "stable_sort"}


def rule_batch_sort(root: Node, ctx: FileContext) -> list:
    if not ctx.path.startswith(SLIDING_DISTRIBUTION_PREFIX):
        return []
    findings = []
    seen_lines = set()
    for node in root.walk():
        # The call shows up as a CALL_EXPR named `sort` plus a
        # DECL_REF_EXPR naming the function; flag whichever libclang
        # exposes, once per line.
        if node.kind not in ("CALL_EXPR", "DECL_REF_EXPR"):
            continue
        if node.spelling not in BATCH_SORT_NAMES:
            continue
        if node.line in seen_lines:
            continue
        seen_lines.add(node.line)
        findings.append(
            Finding(
                "batch-sort",
                ctx.path,
                node.line,
                f"std::{node.spelling} in the sliding-distribution layer "
                "re-sorts a full window; maintain order incrementally "
                "(SlidingEmpiricalDistribution) or mark a deliberate "
                "batch path with `rrp-lint: allow(batch-sort)`",
                end_line=node.end_line,
            )
        )
    return findings


# std::chrono clock types in canonical spellings: libc++ nests the
# inline namespace outside chrono (std::__1::chrono::steady_clock),
# libstdc++ inside it (std::chrono::_V2::steady_clock).
CHRONO_CLOCK_RE = re.compile(
    r"\bstd::(__\w+::)?chrono::(_V\d+::)?"
    r"(steady_clock|system_clock|high_resolution_clock)\b"
)

# The sanctioned homes of raw clock reads: the Clock/Deadline seam
# itself and the observability layer that timestamps trace spans.
CLOCK_HOMES = ("src/common/deadline.", "src/obs/")


def rule_raw_chrono_timing(root: Node, ctx: FileContext) -> list:
    if any(ctx.path.startswith(home) for home in CLOCK_HOMES):
        return []
    findings = []
    seen_lines = set()
    for node in root.walk():
        # A clock read is a call to a member named `now` whose canonical
        # type mentions one of the std::chrono clocks — true for the
        # CALL_EXPR (returns time_point<clock, ...>) and for the
        # DECL_REF_EXPR naming the function, whichever libclang exposes.
        if node.kind not in ("CALL_EXPR", "DECL_REF_EXPR",
                             "MEMBER_REF_EXPR"):
            continue
        if node.spelling != "now":
            continue
        m = CHRONO_CLOCK_RE.search(node.type)
        if not m:
            continue
        if node.line in seen_lines:  # CALL_EXPR + its DECL_REF_EXPR
            continue
        seen_lines.add(node.line)
        findings.append(
            Finding(
                "raw-chrono-timing",
                ctx.path,
                node.line,
                f"direct std::chrono::{m.group(3)}::now() read "
                "(aliases included); route timing through "
                "rrp::common::Clock / common::real_clock() so tests "
                "can inject a FakeClock, or mark a deliberate read "
                "with `rrp-lint: allow(raw-chrono-timing)`",
                end_line=node.end_line,
            )
        )
    return findings


RULES: list = [
    ("raw-sync-primitive", rule_raw_sync_primitive),
    ("unnamed-lock-temporary", rule_unnamed_lock_temporary),
    ("solver-deadline-param", rule_solver_deadline_param),
    ("float-equality", rule_float_equality),
    ("naked-new-delete", rule_naked_new_delete),
    ("dense-matrix", rule_dense_matrix),
    ("batch-sort", rule_batch_sort),
    ("raw-chrono-timing", rule_raw_chrono_timing),
]


def run_rules(root: Node, ctx: FileContext) -> list:
    """Runs every rule on one file's tree, honouring allow() comments."""
    findings = []
    for _, rule in RULES:
        for f in rule(root, ctx):
            end = f.end_line if f.end_line else f.line
            if not ctx.suppressed(f.rule, f.line, end):
                findings.append(f)
    return findings


# ---------------------------------------------------------------------------
# libclang front end.
# ---------------------------------------------------------------------------


def find_libclang() -> Optional[str]:
    env = os.environ.get("RRP_LIBCLANG")
    if env and os.path.exists(env):
        return env
    for pattern in (
        "/usr/lib/llvm-*/lib/libclang.so*",
        "/usr/lib/*/libclang-*.so*",
        "/usr/lib/*/libclang.so*",
        "/usr/local/lib/libclang*.so*",
    ):
        hits = sorted(globmod.glob(pattern), reverse=True)
        if hits:
            return hits[0]
    return None


def load_cindex():
    """Returns a usable clang.cindex module, or None when absent."""
    try:
        from clang import cindex  # type: ignore
    except ImportError:
        return None
    # cindex loads the shared library lazily on first use and cannot
    # re-point afterwards, so pick the library file up front.
    if not getattr(cindex.Config, "loaded", False):
        lib = find_libclang()
        if lib is not None:
            try:
                cindex.Config.set_library_file(lib)
            except Exception:
                pass
    try:
        cindex.Index.create()
        return cindex
    except Exception:
        return None


# Kinds whose (small) token streams the rules inspect.
TOKENIZED_KINDS = {"CXX_NEW_EXPR", "INTEGER_LITERAL", "FLOATING_LITERAL"}


def _safe_tokens(cursor) -> tuple:
    try:
        return tuple(t.spelling for t in cursor.get_tokens())
    except Exception:
        return ()


def _binary_opcode(cursor) -> str:
    """The operator token: first token at/after the left operand's end."""
    children = list(cursor.get_children())
    if len(children) != 2:
        return ""
    try:
        left_end = children[0].extent.end.offset
        for tok in cursor.get_tokens():
            if tok.extent.start.offset >= left_end:
                return tok.spelling
    except Exception:
        pass
    return ""


def build_tree(cindex, path: str, args: list) -> Node:
    """Parses `path` and converts the in-file cursors to a Node tree.

    Raises RuntimeError on hard parse errors (missing headers, syntax
    errors) so broken input cannot silently pass the lint.
    """
    index = cindex.Index.create()
    tu = index.parse(path, args=args)
    errors = [
        d
        for d in tu.diagnostics
        if d.severity >= cindex.Diagnostic.Error
    ]
    if errors:
        detail = "; ".join(str(e) for e in errors[:5])
        raise RuntimeError(f"{path}: parse failed: {detail}")

    target = os.path.realpath(path)

    def in_target(cursor) -> bool:
        f = cursor.location.file
        return f is not None and os.path.realpath(f.name) == target

    def convert(cursor) -> Node:
        kind = cursor.kind.name
        try:
            type_spelling = cursor.type.get_canonical().spelling
        except Exception:
            type_spelling = ""
        node = Node(
            kind=kind,
            spelling=cursor.spelling or "",
            type=type_spelling or "",
            line=cursor.location.line,
            col=cursor.location.column,
            end_line=cursor.extent.end.line,
        )
        if kind == "BINARY_OPERATOR":
            node.opcode = _binary_opcode(cursor)
        if kind in TOKENIZED_KINDS:
            node.tokens = _safe_tokens(cursor)
        for child in cursor.get_children():
            # Declarations pulled in from #includes live in other
            # files; skip their whole subtrees.
            if child.location.file is not None and not in_target(child):
                continue
            node.children.append(convert(child))
        return node

    root = convert(tu.cursor)
    root.kind = "TRANSLATION_UNIT"
    return link_parents(root)


def default_args(root: str) -> list:
    args = ["-xc++", "-std=c++20"]
    for inc in ("src", "tests", "bench"):
        d = os.path.join(root, inc)
        if os.path.isdir(d):
            args.append("-I" + d)
    return args


def lint_files(root: str) -> list:
    files = []
    for top in LINT_DIRS:
        base = os.path.join(root, top)
        if not os.path.isdir(base):
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            rel_dir = os.path.relpath(dirpath, root).replace(os.sep, "/")
            if in_dirs(rel_dir, EXCLUDE_DIRS):
                dirnames[:] = []
                continue
            for name in sorted(filenames):
                if name.endswith(CPP_EXTENSIONS):
                    files.append(os.path.join(dirpath, name))
    return sorted(files)


def lint_one(cindex, root: str, path: str, args: list) -> list:
    rel = os.path.relpath(path, root).replace(os.sep, "/")
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    ctx = FileContext(path=rel, allow=parse_allow_comments(text))
    tree = build_tree(cindex, path, args)
    return run_rules(tree, ctx)


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("root", nargs="?", default=".", help="repo root")
    parser.add_argument("--quiet", action="store_true")
    parser.add_argument(
        "--require",
        action="store_true",
        help="fail (exit 3) when libclang is unavailable instead of skipping",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print rule names and exit"
    )
    opts = parser.parse_args(argv)

    if opts.list_rules:
        for name, _ in RULES:
            print(name)
        return 0

    cindex = load_cindex()
    if cindex is None:
        msg = (
            "rrp_lint_ast: libclang (python3-clang) not available; "
            "AST lint skipped"
        )
        if opts.require:
            print(msg + " (--require: failing)", file=sys.stderr)
            return 3
        print(msg, file=sys.stderr)
        return 0

    root = os.path.abspath(opts.root)
    args = default_args(root)
    findings = []
    parse_errors = []
    for path in lint_files(root):
        try:
            findings.extend(lint_one(cindex, root, path, args))
        except RuntimeError as err:
            parse_errors.append(str(err))

    for err in parse_errors:
        print(f"rrp_lint_ast: {err}", file=sys.stderr)
    for f in sorted(findings, key=lambda f: (f.path, f.line, f.rule)):
        print(f)
    if parse_errors:
        return 2
    if findings:
        if not opts.quiet:
            print(
                f"rrp_lint_ast: {len(findings)} violation(s)",
                file=sys.stderr,
            )
        return 1
    if not opts.quiet:
        print("rrp_lint_ast: clean", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
