#!/usr/bin/env python3
"""Repository linter for the rrp codebase.

Enforces repo-specific correctness rules that generic compiler warnings
cannot express:

  no-abort-assert     Library code (src/) must not call std::abort or use
                      the C `assert` macro; failures must surface as
                      rrp::Error exceptions or RRP_INVARIANT checks so
                      callers and tests can observe them.
  no-float-numerics   Solver numerics (src/lp, src/milp, src/core) are
                      double-precision throughout; a stray `float`
                      silently truncates and corrupts cost figures.
  no-naked-new        No raw `new` expressions in library code; use
                      containers, std::make_unique, or values.
  pragma-once         Every header uses `#pragma once` (no #ifndef-style
                      include guards, no unguarded headers).
  no-build-artifacts  No build outputs (build/, CMakeCache.txt, *.o,
                      LastTest.log, ...) tracked by git.
  no-raw-clock        No direct std::chrono clock reads
                      (steady_clock/system_clock/high_resolution_clock
                      ::now()) outside src/common/; time must flow
                      through rrp::common::Clock / Deadline so solver
                      deadlines stay injectable and tests deterministic.

Usage: rrp_lint.py [ROOT] [--quiet]
Exit status is 0 when clean, 1 when any violation is found.
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
from dataclasses import dataclass

CPP_EXTENSIONS = (".cpp", ".cc", ".cxx", ".hpp", ".h", ".hh")
HEADER_EXTENSIONS = (".hpp", ".h", ".hh")

LIBRARY_DIR = "src"
NUMERIC_DIRS = ("src/lp", "src/milp", "src/core")
CLOCK_DIR = "src/common"  # the one home of raw std::chrono clock reads
HEADER_DIRS = ("src", "tests", "bench", "tools", "examples")

ARTIFACT_PATTERNS = [
    re.compile(p)
    for p in (
        r"(^|/)build(-[^/]+)?/",
        r"(^|/)CMakeCache\.txt$",
        r"(^|/)CMakeFiles/",
        r"(^|/)CTestTestfile\.cmake$",
        r"(^|/)cmake_install\.cmake$",
        r"(^|/)Testing/",
        r"(^|/)LastTest\.log$",
        r"(^|/)DartConfiguration\.tcl$",
        r"\.o$",
        r"\.obj$",
        r"\.a$",
        r"\.so(\.\d+)*$",
        r"\.pyc$",
        r"(^|/)__pycache__/",
    )
]

RE_ABORT = re.compile(r"\b(?:std\s*::\s*)?abort\s*\(")
RE_ASSERT = re.compile(r"(?<![\w])assert\s*\(")
RE_FLOAT = re.compile(r"\bfloat\b")
RE_NEW = re.compile(r"\bnew\b")
RE_RAW_CLOCK = re.compile(
    r"\b(?:steady_clock|system_clock|high_resolution_clock)\s*::\s*now\s*\("
)
RE_PRAGMA_ONCE = re.compile(r"^\s*#\s*pragma\s+once\b")
RE_IFNDEF_GUARD = re.compile(r"^\s*#\s*ifndef\s+\w+_(H|HPP|H_|HPP_)\b")


@dataclass
class Violation:
    path: str
    line: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def tracked_files(root: str) -> list[str]:
    """Repo-relative paths of files subject to lint.

    Prefers `git ls-files` (which also powers the committed-artifact
    rule); falls back to walking the tree when git is unavailable.
    """
    try:
        out = subprocess.run(
            ["git", "-C", root, "ls-files", "-z"],
            capture_output=True,
            check=True,
        )
        files = [f for f in out.stdout.decode().split("\0") if f]
        if files:
            return files
    except (OSError, subprocess.CalledProcessError):
        pass
    files = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d != ".git"]
        for name in filenames:
            rel = os.path.relpath(os.path.join(dirpath, name), root)
            files.append(rel.replace(os.sep, "/"))
    return files


def strip_comments_and_strings(text: str) -> list[str]:
    """Blanks out comments and string/char literals, preserving line
    structure so violation line numbers stay accurate."""
    out: list[str] = []
    state = "code"  # code | block_comment | string | char
    line_chars: list[str] = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "\n":
            out.append("".join(line_chars))
            line_chars = []
            if state == "string" or state == "char":
                state = "code"  # unterminated literal; be forgiving
            i += 1
            continue
        if state == "code":
            if c == "/" and nxt == "/":
                # Line comment: skip to end of line.
                while i < n and text[i] != "\n":
                    i += 1
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                line_chars.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                line_chars.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                line_chars.append(" ")
                i += 1
                continue
            line_chars.append(c)
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                line_chars.append("  ")
                i += 2
            else:
                line_chars.append(" ")
                i += 1
        else:  # string or char literal
            if c == "\\":
                line_chars.append("  ")
                i += 2
            elif (state == "string" and c == '"') or (
                state == "char" and c == "'"
            ):
                state = "code"
                line_chars.append(" ")
                i += 1
            else:
                line_chars.append(" ")
                i += 1
    if line_chars:
        out.append("".join(line_chars))
    return out


def in_dir(path: str, prefix: str) -> bool:
    return path == prefix or path.startswith(prefix + "/")


def check_cpp_file(path: str, text: str) -> list[Violation]:
    violations: list[Violation] = []
    lines = strip_comments_and_strings(text)
    is_library = in_dir(path, LIBRARY_DIR)
    is_numeric = any(in_dir(path, d) for d in NUMERIC_DIRS)
    is_clock_home = in_dir(path, CLOCK_DIR)
    is_header = path.endswith(HEADER_EXTENSIONS) and any(
        in_dir(path, d) for d in HEADER_DIRS
    )

    for lineno, line in enumerate(lines, start=1):
        if is_library:
            if RE_ABORT.search(line):
                violations.append(
                    Violation(
                        path,
                        lineno,
                        "no-abort-assert",
                        "library code must not call abort(); throw "
                        "rrp::Error or use RRP_INVARIANT",
                    )
                )
            m = RE_ASSERT.search(line)
            if m and "static_assert" not in line[: m.start() + len("assert")]:
                violations.append(
                    Violation(
                        path,
                        lineno,
                        "no-abort-assert",
                        "library code must not use the C assert macro; "
                        "use RRP_EXPECTS/RRP_INVARIANT",
                    )
                )
            if RE_NEW.search(line):
                violations.append(
                    Violation(
                        path,
                        lineno,
                        "no-naked-new",
                        "no raw new expressions; use containers or "
                        "std::make_unique",
                    )
                )
        if is_numeric and RE_FLOAT.search(line):
            violations.append(
                Violation(
                    path,
                    lineno,
                    "no-float-numerics",
                    "solver numerics must use double, not float",
                )
            )
        if not is_clock_home and RE_RAW_CLOCK.search(line):
            violations.append(
                Violation(
                    path,
                    lineno,
                    "no-raw-clock",
                    "read time via rrp::common::Clock/Deadline, not "
                    "std::chrono clocks; only src/common/ may touch "
                    "them directly",
                )
            )

    if is_header:
        has_pragma = any(RE_PRAGMA_ONCE.search(l) for l in lines)
        guard_line = next(
            (
                i
                for i, l in enumerate(lines, start=1)
                if RE_IFNDEF_GUARD.search(l)
            ),
            None,
        )
        if not has_pragma:
            violations.append(
                Violation(
                    path,
                    1,
                    "pragma-once",
                    "header is missing #pragma once",
                )
            )
        if guard_line is not None:
            violations.append(
                Violation(
                    path,
                    guard_line,
                    "pragma-once",
                    "use #pragma once instead of #ifndef include guards",
                )
            )
    return violations


def check_artifacts(files: list[str]) -> list[Violation]:
    violations = []
    for path in files:
        for pattern in ARTIFACT_PATTERNS:
            if pattern.search(path):
                violations.append(
                    Violation(
                        path,
                        1,
                        "no-build-artifacts",
                        "build artifact must not be committed "
                        "(add it to .gitignore)",
                    )
                )
                break
    return violations


def lint(root: str) -> list[Violation]:
    files = tracked_files(root)
    violations = check_artifacts(files)
    for path in files:
        if not path.endswith(CPP_EXTENSIONS):
            continue
        abspath = os.path.join(root, path)
        try:
            with open(abspath, encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError:
            continue  # deleted/unreadable tracked file; not a lint issue
        violations.extend(check_cpp_file(path, text))
    violations.sort(key=lambda v: (v.path, v.line, v.rule))
    return violations


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "root",
        nargs="?",
        default=".",
        help="repository root to lint (default: cwd)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the all-clean message"
    )
    args = parser.parse_args(argv)

    root = os.path.abspath(args.root)
    if not os.path.isdir(root):
        print(f"rrp_lint: error: no such directory: {args.root}",
              file=sys.stderr)
        return 2

    violations = lint(root)
    for v in violations:
        print(v)
    if violations:
        print(f"rrp_lint: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    if not args.quiet:
        print("rrp_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
