// rrp — command-line front end to the resource rental planning library.
//
//   rrp trace       generate a synthetic spot-price trace (CSV)
//   rrp analyze     run the predictability study on a trace
//   rrp plan        plan a DRRP schedule for one class
//   rrp simulate    run a rental policy against the spot market
//   rrp availability  profile a fixed bid against a trace
//
// Run `rrp <command> --help` for per-command flags.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/demand.hpp"
#include "core/evaluation.hpp"
#include "core/rolling_horizon.hpp"
#include "core/wagner_whitin.hpp"
#include "market/auction.hpp"
#include "market/trace_generator.hpp"
#include "obs/obs.hpp"
#include "timeseries/acf.hpp"
#include "timeseries/auto_arima.hpp"
#include "timeseries/diagnostics.hpp"

namespace {

using namespace rrp;

/// Tiny flag parser: --key value pairs after the subcommand.
class Args {
 public:
  Args(int argc, char** argv, int start) {
    for (int i = start; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        std::cerr << "unexpected argument: " << key << "\n";
        std::exit(2);
      }
      key = key.substr(2);
      if (key == "help") {
        help_ = true;
        continue;
      }
      if (i + 1 >= argc) {
        std::cerr << "missing value for --" << key << "\n";
        std::exit(2);
      }
      values_[key] = argv[++i];
    }
  }

  bool help() const { return help_; }

  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  double get_double(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stod(it->second);
  }
  std::uint64_t get_u64(const std::string& key, std::uint64_t fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stoull(it->second);
  }
  bool has(const std::string& key) const { return values_.count(key) > 0; }

 private:
  std::map<std::string, std::string> values_;
  bool help_ = false;
};

/// Arms the observability layer from the global flags (valid on every
/// subcommand) and flushes the outputs when the command finishes:
///   --metrics-out FILE  write a registry snapshot, one `name value`
///                       per line
///   --trace-out FILE    record trace spans, write Chrome trace JSON
///                       (load in Perfetto / chrome://tracing)
///   --events-out FILE   stream structured events as JSONL
class ObsSession {
 public:
  explicit ObsSession(const Args& args)
      : metrics_out_(args.get("metrics-out", "")),
        trace_out_(args.get("trace-out", "")) {
    if (!trace_out_.empty()) obs::TraceRecorder::instance().enable();
    const std::string events_out = args.get("events-out", "");
    if (!events_out.empty()) {
      auto sink = std::make_shared<obs::JsonlFileSink>(events_out);
      if (!sink->ok())
        std::cerr << "rrp: cannot open " << events_out
                  << " for --events-out; events disabled\n";
      else
        obs::EventLog::instance().set_sink(std::move(sink));
    }
  }

  ~ObsSession() {
    if (!trace_out_.empty()) {
      obs::TraceRecorder::instance().disable();
      std::ofstream out(trace_out_);
      if (!out)
        std::cerr << "rrp: cannot open " << trace_out_ << " for --trace-out\n";
      else
        obs::TraceRecorder::instance().write_chrome_trace(out);
    }
    if (!metrics_out_.empty()) {
      std::ofstream out(metrics_out_);
      if (!out)
        std::cerr << "rrp: cannot open " << metrics_out_
                  << " for --metrics-out\n";
      else
        out << obs::global_registry().scrape().to_text();
    }
    obs::EventLog::instance().set_sink(nullptr);
  }

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

 private:
  std::string metrics_out_;
  std::string trace_out_;
};

market::SpotTrace load_or_generate(const Args& args, market::VmClass vm) {
  if (args.has("trace"))
    return market::SpotTrace::load_csv(args.get("trace", ""), vm);
  return market::generate_trace(vm, args.get_u64("seed", 2012));
}

int cmd_trace(const Args& args) {
  if (args.help()) {
    std::cout << "rrp trace --out FILE [--class c1.medium] [--seed N] "
                 "[--days N]\n";
    return 0;
  }
  const market::VmClass vm = market::from_name(args.get("class",
                                                        "c1.medium"));
  market::TraceGeneratorConfig cfg = market::default_config(vm);
  cfg.days = args.get_double("days", cfg.days);
  Rng rng(args.get_u64("seed", 2012));
  const auto trace = market::generate_trace(vm, cfg, rng);
  const std::string out = args.get("out", "");
  if (out.empty()) {
    std::cerr << "rrp trace: --out is required\n";
    return 2;
  }
  trace.save_csv(out);
  std::cout << "wrote " << trace.ticks().size() << " updates ("
            << Table::num(trace.duration_hours() / 24.0, 1) << " days) to "
            << out << "\n";
  return 0;
}

int cmd_analyze(const Args& args) {
  if (args.help()) {
    std::cout << "rrp analyze [--trace FILE] [--class c1.medium] "
                 "[--seed N]\n";
    return 0;
  }
  const market::VmClass vm = market::from_name(args.get("class",
                                                        "c1.medium"));
  const auto trace = load_or_generate(args, vm);
  const auto prices = trace.prices();
  const auto box = stats::box_summary(prices);

  Table summary("Trace summary (" + std::string(market::info(vm).name) +
                ")");
  summary.set_header({"metric", "value"});
  summary.add_row({"updates", std::to_string(prices.size())});
  summary.add_row({"days",
                   Table::num(trace.duration_hours() / 24.0, 1)});
  summary.add_row({"mean price", Table::num(stats::mean(prices), 4)});
  summary.add_row({"median", Table::num(box.median, 4)});
  summary.add_row({"outliers", Table::pct(box.outlier_fraction, 2)});
  summary.add_row(
      {"vs on-demand",
       Table::pct(stats::mean(prices) / market::info(vm).on_demand_hourly)});
  summary.print(std::cout);

  const auto hourly = trace.hourly();
  const std::size_t window = std::min<std::size_t>(hourly.size(), 24 * 61);
  std::vector<double> recent(hourly.end() - static_cast<long>(window),
                             hourly.end());
  const auto sw = ts::shapiro_wilk(
      std::span(recent).subspan(0, std::min<std::size_t>(recent.size(),
                                                         5000)));
  const auto kpss = ts::kpss_level(recent);
  const auto r = ts::acf(recent, 3);
  Table tests("Predictability");
  tests.set_header({"check", "value", "reading"});
  tests.add_row({"Shapiro-Wilk p", Table::num(sw.p_value, 5),
                 sw.p_value < 0.05 ? "not normal" : "normal-ish"});
  tests.add_row({"KPSS statistic", Table::num(kpss.statistic, 3),
                 ts::is_level_stationary(recent) ? "stationary"
                                                 : "non-stationary"});
  tests.add_row({"lag-1 ACF", Table::num(r[1], 3),
                 std::abs(r[1]) > 0.9 ? "highly persistent"
                                      : "weakly autocorrelated"});
  tests.print(std::cout);
  return 0;
}

int cmd_plan(const Args& args) {
  if (args.help()) {
    std::cout << "rrp plan [--class m1.large] [--hours 24] [--price P] "
                 "[--demand-mean 0.4] [--demand-sd 0.2] [--storage E] "
                 "[--solver dp|milp] [--jobs N] [--seed N]\n"
                 "  --solver milp solves the exact DRRP MILP by branch & "
                 "bound (--jobs worker\n  threads, 0 = all cores); the "
                 "default dp backend is the Wagner-Whitin recursion.\n";
    return 0;
  }
  const market::VmClass vm = market::from_name(args.get("class",
                                                        "m1.large"));
  const auto hours = static_cast<std::size_t>(args.get_u64("hours", 24));
  core::DrrpInstance inst;
  inst.vm = vm;
  core::DemandConfig demand;
  demand.mean = args.get_double("demand-mean", 0.4);
  demand.sd = args.get_double("demand-sd", 0.2);
  Rng rng(args.get_u64("seed", 42));
  inst.demand = core::generate_demand(hours, demand, rng);
  inst.compute_price.assign(
      hours,
      args.get_double("price", market::info(vm).on_demand_hourly));
  inst.initial_storage = args.get_double("storage", 0.0);

  const std::string solver_name = args.get("solver", "dp");
  core::RentalPlan plan;
  if (solver_name == "milp") {
    milp::BnbOptions solver;
    solver.jobs = static_cast<std::size_t>(args.get_u64("jobs", 0));
    plan = core::solve_drrp(inst, solver);
  } else if (solver_name == "dp") {
    plan = core::solve_drrp_wagner_whitin(inst);
  } else {
    std::cerr << "unknown solver: " << solver_name << " (want dp|milp)\n";
    return 2;
  }
  if (!plan.feasible()) {
    std::cerr << "rrp plan: solver returned " << milp::to_string(plan.status)
              << "\n";
    return 1;
  }
  const auto naive = core::no_plan_schedule(inst);

  Table table("Plan for " + std::string(market::info(vm).name) + ", " +
              std::to_string(hours) + "h");
  table.set_header({"hour", "demand", "rent", "generate", "inventory"});
  for (std::size_t t = 0; t < hours; ++t) {
    table.add_row({std::to_string(t), Table::num(inst.demand[t], 3),
                   plan.chi[t] ? "yes" : "-", Table::num(plan.alpha[t], 3),
                   Table::num(plan.beta[t], 3)});
  }
  table.print(std::cout);
  std::cout << "cost " << Table::num(plan.cost.total(), 3) << " vs no-plan "
            << Table::num(naive.cost.total(), 3) << " (saving "
            << Table::pct(1.0 - plan.cost.total() / naive.cost.total())
            << ")\n";
  if (solver_name == "milp") {
    const std::size_t total_lps =
        plan.warm_started_nodes + plan.cold_solved_nodes;
    std::cout << "b&b nodes " << plan.nodes_explored << ", warm-started LPs "
              << plan.warm_started_nodes << "/" << total_lps;
    if (plan.cuts_added > 0) {
      std::cout << ", root cuts " << plan.cuts_added << " (gap closed "
                << Table::pct(plan.root_gap_closed) << ")";
    }
    std::cout << "\n";
  }
  return 0;
}

/// Applies the revocation flags on top of a named regime's defaults.
market::RevocationConfig revocation_from_args(const Args& args,
                                              const std::string& regime) {
  market::RevocationConfig cfg = market::RevocationConfig::regime(regime);
  cfg.checkpoint_overhead =
      args.get_double("checkpoint-cost", cfg.checkpoint_overhead);
  cfg.storm_rate = args.get_double("storm-rate", cfg.storm_rate);
  cfg.hazard_per_slot = args.get_double("hazard", cfg.hazard_per_slot);
  cfg.seed = args.get_u64("seed", 42);
  cfg.validate();
  return cfg;
}

/// `rrp simulate --revocations REGIME` without --policy: the paper's
/// policy comparison re-run under hostile market regimes, on realised
/// cost AND work lost.
int simulate_regime_table(const Args& args, market::VmClass vm,
                          std::size_t hours) {
  const std::string regime = args.get("revocations", "storm");
  core::EvaluationConfig cfg;
  cfg.vm = vm;
  cfg.eval_hours = hours;
  cfg.trials = static_cast<std::size_t>(args.get_u64("trials", 4));
  cfg.seed = args.get_u64("seed", 2012);

  std::vector<core::InterruptionRegime> regimes;
  if (regime == "all") {
    regimes = core::standard_interruption_regimes();
    for (core::InterruptionRegime& r : regimes) {
      core::InterruptionRegime overridden{r.name,
                                          revocation_from_args(args, r.name)};
      r = std::move(overridden);
    }
  } else {
    regimes.push_back(
        core::InterruptionRegime{regime, revocation_from_args(args, regime)});
  }

  const auto policies = core::interruption_policies();
  const auto results = core::evaluate_under_regimes(cfg, policies, regimes);
  for (const core::RegimeResult& rr : results) {
    Table table("Regime \"" + rr.regime + "\" on " +
                std::string(market::info(vm).name) + " (" +
                std::to_string(cfg.trials) + " trials, " +
                std::to_string(hours) + "h)");
    table.set_header({"policy", "cost", "overpay", "revoked", "work lost",
                      "interruption $"});
    for (const core::PolicyStats& s : rr.result.policies) {
      table.add_row({s.policy, Table::num(s.mean_cost, 3),
                     Table::pct(s.mean_overpay),
                     Table::num(s.mean_revocations, 1),
                     Table::num(s.mean_work_lost, 2),
                     Table::num(s.mean_interruption_cost, 3)});
    }
    table.print(std::cout);
  }
  return 0;
}

int cmd_simulate(const Args& args) {
  if (args.help()) {
    std::cout << "rrp simulate [--class c1.medium] [--hours 48] "
                 "[--policy sto-exp-mean|det-exp-mean|sto-predict|"
                 "det-predict|on-demand|no-plan] [--replan N] "
                 "[--replan-mode rebuild|incremental] [--model-update N] "
                 "[--time-limit SECONDS] [--jobs N] [--seed N] "
                 "[--trace FILE]\n"
                 "            [--revocations calm|bid-cross|storm|all] "
                 "[--hazard P] [--storm-rate P]\n"
                 "            [--checkpoint-cost F] [--trials N]\n"
                 "  --time-limit caps each re-plan solve (0 = unlimited); "
                 "on expiry the best\n  incumbent is used and failed "
                 "re-plans degrade via the recovery ladder.\n"
                 "  --model-update refreshes the price models every N "
                 "re-plans (0 = fit once\n  at start, the default); "
                 "--replan-mode picks how: incremental (sliding\n  "
                 "distributions, warm SARIMA refits, scenario-tree "
                 "repair; default) or\n  rebuild (recompute from the "
                 "full window, the equivalence oracle).\n"
                 "  --jobs sets the branch & bound worker threads per "
                 "re-plan solve\n  (0 = all cores; only the MILP backend "
                 "parallelises).\n"
                 "  --revocations turns on mid-slot spot interruptions. "
                 "Without --policy it\n  prints the policy comparison "
                 "table under the chosen regime(s) (--trials\n  windows, "
                 "<= 10); with --policy it runs one interruption-aware "
                 "simulation.\n  --hazard / --storm-rate / "
                 "--checkpoint-cost override the regime defaults.\n";
    return 0;
  }
  const market::VmClass vm = market::from_name(args.get("class",
                                                        "c1.medium"));
  const auto hours = static_cast<std::size_t>(args.get_u64("hours", 48));
  if (args.has("revocations") && !args.has("policy"))
    return simulate_regime_table(args, vm, hours);
  const auto trace = load_or_generate(args, vm);
  const auto hourly = trace.hourly();
  const std::size_t history = std::min<std::size_t>(
      hourly.size() > hours ? hourly.size() - hours : 0, 24 * 60);
  if (history < 48) {
    std::cerr << "trace too short for " << hours << "h of evaluation\n";
    return 2;
  }
  core::SimulationInputs in;
  in.vm = vm;
  in.history.assign(hourly.end() - static_cast<long>(history + hours),
                    hourly.end() - static_cast<long>(hours));
  in.actual_spot.assign(hourly.end() - static_cast<long>(hours),
                        hourly.end());
  Rng rng(args.get_u64("seed", 42));
  in.demand = core::generate_demand(hours, core::DemandConfig{}, rng);
  if (args.has("revocations")) {
    const std::string regime = args.get("revocations", "storm");
    if (regime == "all") {
      std::cerr << "--revocations all needs the comparison table; drop "
                   "--policy\n";
      return 2;
    }
    in.revocation = revocation_from_args(args, regime);
    const auto last = static_cast<long>(hourly.size());
    const auto first = last - static_cast<long>(hours);
    in.intra_slot_max = trace.hourly_max(first, last);
    in.trace_revocations = trace.hourly_revocations(first, last);
  }

  const std::string name = args.get("policy", "sto-exp-mean");
  core::PolicyConfig policy;
  if (name == "sto-exp-mean") policy = core::sto_exp_mean_policy();
  else if (name == "det-exp-mean") policy = core::det_exp_mean_policy();
  else if (name == "sto-predict") policy = core::sto_predict_policy();
  else if (name == "det-predict") policy = core::det_predict_policy();
  else if (name == "on-demand") policy = core::on_demand_policy();
  else if (name == "no-plan") policy = core::no_plan_policy();
  else {
    std::cerr << "unknown policy: " << name << "\n";
    return 2;
  }
  if (args.has("replan"))
    policy.replan_every = static_cast<std::size_t>(args.get_u64("replan",
                                                                1));
  const double time_limit = args.get_double("time-limit", 0.0);
  if (time_limit < 0.0) {
    std::cerr << "--time-limit must be >= 0\n";
    return 2;
  }
  policy.replan_time_limit = time_limit;
  if (args.has("model-update"))
    policy.model_update_every =
        static_cast<std::size_t>(args.get_u64("model-update", 0));
  const std::string mode = args.get("replan-mode", "incremental");
  if (mode == "rebuild") policy.replan_mode = core::ReplanMode::Rebuild;
  else if (mode == "incremental")
    policy.replan_mode = core::ReplanMode::Incremental;
  else {
    std::cerr << "unknown --replan-mode: " << mode
              << " (want rebuild|incremental)\n";
    return 2;
  }
  const auto jobs = static_cast<std::size_t>(args.get_u64("jobs", 0));
  policy.solver.jobs = jobs;

  const auto result = core::simulate_policy(in, policy);
  const double ideal = core::ideal_case_cost(in);
  Table table("Simulation: " + name + " on " +
              std::string(market::info(vm).name));
  table.set_header({"metric", "value"});
  table.add_row({"realised cost", Table::num(result.total_cost(), 3)});
  table.add_row({"ideal-case cost", Table::num(ideal, 3)});
  table.add_row({"overpay", Table::pct(core::overpay_fraction(
                                result.total_cost(), ideal))});
  table.add_row({"rentals", std::to_string(result.rentals)});
  table.add_row({"out-of-bid events",
                 std::to_string(result.out_of_bid_events)});
  table.add_row({"compute", Table::num(result.cost.compute, 3)});
  table.add_row({"I/O+storage", Table::num(result.cost.holding, 3)});
  table.add_row({"transfer", Table::num(result.cost.transfer(), 3)});
  table.add_row({"solver jobs",
                 jobs == 0 ? "auto" : std::to_string(jobs)});
  if (result.solver_nodes_explored > 0) {
    table.add_row({"b&b nodes explored",
                   std::to_string(result.solver_nodes_explored)});
    const std::size_t total_lps = result.solver_warm_started_nodes +
                                  result.solver_cold_solved_nodes;
    if (total_lps > 0)
      table.add_row(
          {"warm-started LPs",
           Table::pct(static_cast<double>(result.solver_warm_started_nodes) /
                      static_cast<double>(total_lps))});
    if (result.solver_cuts_added > 0)
      table.add_row({"root cuts added",
                     std::to_string(result.solver_cuts_added)});
  }
  table.add_row({"degraded re-plans",
                 std::to_string(result.degraded_replans())});
  if (result.degraded_replans() > 0) {
    table.add_row({"  re-plan timeouts",
                   std::to_string(result.replan_timeouts)});
    table.add_row({"  numerical failures",
                   std::to_string(result.replan_numerical_failures)});
    table.add_row({"  plans rejected",
                   std::to_string(result.replans_rejected)});
    table.add_row({"  served by plan tail",
                   std::to_string(result.fallback_reused_tail)});
    table.add_row({"  served by heuristic",
                   std::to_string(result.fallback_heuristic)});
    table.add_row({"  served on demand",
                   std::to_string(result.fallback_on_demand)});
  }
  if (!result.price_faults.empty())
    table.add_row({"price-feed faults",
                   std::to_string(result.price_faults.size())});
  // Re-plan latency footer (ISSUE 10): wall-clock per executed re-plan,
  // with the model-maintenance share split out from solving.
  if (!result.replan_seconds.empty()) {
    table.add_row({"re-plans executed",
                   std::to_string(result.replan_seconds.size())});
    table.add_row(
        {"re-plan latency p50 (ms)",
         Table::num(core::latency_percentile(result.replan_seconds, 50.0) *
                        1e3, 3)});
    table.add_row(
        {"re-plan latency p95 (ms)",
         Table::num(core::latency_percentile(result.replan_seconds, 95.0) *
                        1e3, 3)});
    if (result.model_refreshes > 0) {
      table.add_row({"model refreshes (" + std::string(core::to_string(
                         policy.replan_mode)) + ")",
                     std::to_string(result.model_refreshes)});
      table.add_row({"model maintenance (ms)",
                     Table::num(result.model_maintenance_seconds * 1e3, 3)});
      if (result.sarima_refits_kept + result.sarima_warm_refits +
              result.sarima_scratch_refits > 0)
        table.add_row(
            {"  sarima kept/warm/scratch",
             std::to_string(result.sarima_refits_kept) + "/" +
                 std::to_string(result.sarima_warm_refits) + "/" +
                 std::to_string(result.sarima_scratch_refits)});
      if (result.tree_repairs + result.tree_rebuilds > 0)
        table.add_row({"  trees repaired/rebuilt",
                       std::to_string(result.tree_repairs) + "/" +
                           std::to_string(result.tree_rebuilds)});
    }
  }
  if (in.revocation.enabled || result.revoked_slots() > 0) {
    table.add_row({"revoked slots",
                   std::to_string(result.revoked_slots())});
    table.add_row({"  bid-cross",
                   std::to_string(result.revoked_bid_cross)});
    table.add_row({"  hazard", std::to_string(result.revoked_hazard)});
    table.add_row({"  storm", std::to_string(result.revoked_storm)});
    table.add_row({"  re-acquired spot",
                   std::to_string(result.recovered_spot)});
    table.add_row({"  migrated type",
                   std::to_string(result.recovered_migration)});
    table.add_row({"  on-demand backstop",
                   std::to_string(result.recovered_on_demand)});
    table.add_row({"work lost (slots)", Table::num(result.work_lost, 2)});
    table.add_row({"checkpoint overhead",
                   Table::num(result.checkpoint_overhead_cost, 3)});
    table.add_row({"interruption cost",
                   Table::num(result.interruption_cost(), 3)});
  }
  table.print(std::cout);
  return 0;
}

int cmd_availability(const Args& args) {
  if (args.help()) {
    std::cout << "rrp availability --bid B [--class c1.medium] "
                 "[--trace FILE] [--seed N]\n";
    return 0;
  }
  const market::VmClass vm = market::from_name(args.get("class",
                                                        "c1.medium"));
  if (!args.has("bid")) {
    std::cerr << "rrp availability: --bid is required\n";
    return 2;
  }
  const double bid = args.get_double("bid", 0.0);
  const auto trace = load_or_generate(args, vm);
  const auto hourly = trace.hourly();
  const auto report = market::analyze_availability(hourly, bid);
  Table table("Availability of bid " + Table::num(bid, 4) + " (" +
              std::string(market::info(vm).name) + ")");
  table.set_header({"metric", "value"});
  table.add_row({"uptime", Table::pct(report.uptime_fraction)});
  table.add_row({"interruptions", std::to_string(report.interruptions)});
  table.add_row({"mean up-run (h)", Table::num(report.mean_uptime_run, 1)});
  table.add_row(
      {"mean down-run (h)", Table::num(report.mean_downtime_run, 1)});
  table.add_row(
      {"mean price paid", Table::num(report.mean_price_paid, 4)});
  table.print(std::cout);
  return 0;
}

void usage() {
  std::cout <<
      "rrp — resource rental planning for elastic cloud applications\n"
      "\n"
      "usage: rrp <command> [flags]   (rrp <command> --help for flags)\n"
      "\n"
      "  trace         generate a synthetic spot-price trace CSV\n"
      "  analyze       summarise a trace and its predictability\n"
      "  plan          optimal DRRP schedule for one VM class\n"
      "  simulate      run a rental policy against the spot market\n"
      "  availability  profile a fixed bid against a trace\n"
      "\n"
      "observability flags (any command):\n"
      "  --metrics-out FILE   write the metrics registry as JSON on exit\n"
      "  --trace-out FILE     record spans, write Chrome trace JSON\n"
      "                       (open in Perfetto or chrome://tracing)\n"
      "  --events-out FILE    stream structured events as JSONL\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  try {
    const Args args(argc, argv, 2);
    ObsSession obs_session(args);
    if (cmd == "trace") return cmd_trace(args);
    if (cmd == "analyze") return cmd_analyze(args);
    if (cmd == "plan") return cmd_plan(args);
    if (cmd == "simulate") return cmd_simulate(args);
    if (cmd == "availability") return cmd_availability(args);
    usage();
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "rrp " << cmd << ": " << e.what() << "\n";
    return 1;
  }
}
