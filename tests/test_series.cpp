#include "timeseries/series.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace {

using namespace rrp::ts;

TEST(Series, FirstDifference) {
  std::vector<double> x = {1.0, 3.0, 6.0, 10.0};
  const auto d = difference(x, 1);
  ASSERT_EQ(d.size(), 3u);
  EXPECT_DOUBLE_EQ(d[0], 2.0);
  EXPECT_DOUBLE_EQ(d[1], 3.0);
  EXPECT_DOUBLE_EQ(d[2], 4.0);
}

TEST(Series, SeasonalDifference) {
  std::vector<double> x = {1.0, 2.0, 3.0, 5.0, 7.0, 9.0};
  const auto d = difference(x, 3);
  ASSERT_EQ(d.size(), 3u);
  EXPECT_DOUBLE_EQ(d[0], 4.0);
  EXPECT_DOUBLE_EQ(d[1], 5.0);
  EXPECT_DOUBLE_EQ(d[2], 6.0);
}

TEST(Series, RepeatedDifferencing) {
  std::vector<double> x = {1.0, 4.0, 9.0, 16.0, 25.0};  // squares
  const auto d2 = difference(x, 1, 2);
  ASSERT_EQ(d2.size(), 3u);
  for (double v : d2) EXPECT_DOUBLE_EQ(v, 2.0);  // constant 2nd difference
}

TEST(Series, DifferenceRequiresEnoughData) {
  std::vector<double> x = {1.0, 2.0};
  EXPECT_THROW(difference(x, 2), rrp::ContractViolation);
  EXPECT_THROW(difference(x, 0), rrp::ContractViolation);
}

TEST(Series, UndifferenceInvertsDifference) {
  rrp::Rng rng(41);
  std::vector<double> x(50);
  for (auto& v : x) v = rng.uniform(-10.0, 10.0);
  for (std::size_t lag : {std::size_t{1}, std::size_t{4}, std::size_t{7}}) {
    const auto d = difference(x, lag);
    // Treat the first `x.size() - 5` points as history, reconstruct the
    // last 5 from their differenced values.
    const std::size_t split = x.size() - 5;
    std::vector<double> history(x.begin(),
                                x.begin() + static_cast<long>(split));
    std::vector<double> tail_d(d.end() - 5, d.end());
    const auto rebuilt = undifference(history, tail_d, lag);
    ASSERT_EQ(rebuilt.size(), 5u);
    for (std::size_t i = 0; i < 5; ++i)
      EXPECT_NEAR(rebuilt[i], x[split + i], 1e-10) << "lag " << lag;
  }
}

TEST(Series, UndifferenceNeedsEnoughHistory) {
  std::vector<double> short_hist = {1.0};
  std::vector<double> d = {0.5};
  EXPECT_THROW(undifference(short_hist, d, 2), rrp::ContractViolation);
}

TEST(Series, SplitAtPartitions) {
  std::vector<double> x = {1, 2, 3, 4, 5};
  const auto [head, tail] = split_at(x, 3);
  EXPECT_EQ(head.size(), 3u);
  EXPECT_EQ(tail.size(), 2u);
  EXPECT_DOUBLE_EQ(tail[0], 4.0);
}

TEST(Series, SplitAtBoundaries) {
  std::vector<double> x = {1, 2};
  EXPECT_TRUE(split_at(x, 0).first.empty());
  EXPECT_TRUE(split_at(x, 2).second.empty());
  EXPECT_THROW(split_at(x, 3), rrp::ContractViolation);
}

TEST(Series, CenterRemovesMean) {
  std::vector<double> x = {1.0, 2.0, 3.0};
  const auto [c, m] = center(x);
  EXPECT_DOUBLE_EQ(m, 2.0);
  EXPECT_DOUBLE_EQ(c[0], -1.0);
  EXPECT_DOUBLE_EQ(c[2], 1.0);
}

}  // namespace
