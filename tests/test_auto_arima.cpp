#include "timeseries/auto_arima.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace {

using namespace rrp::ts;

std::vector<double> ar1(double phi, std::size_t n, std::uint64_t seed) {
  rrp::Rng rng(seed);
  std::vector<double> x(n, 0.0);
  for (std::size_t t = 1; t < n; ++t) x[t] = phi * x[t - 1] + rng.normal();
  return x;
}

TEST(ChooseD, StationarySeriesNeedsNoDifferencing) {
  EXPECT_EQ(choose_d(ar1(0.5, 1000, 91)), 0u);
}

TEST(ChooseD, RandomWalkNeedsOneDifference) {
  rrp::Rng rng(92);
  std::vector<double> x(1000, 0.0);
  for (std::size_t t = 1; t < x.size(); ++t)
    x[t] = x[t - 1] + rng.normal();
  EXPECT_EQ(choose_d(x), 1u);
}

TEST(ChooseD, IntegratedTwiceNeedsTwoDifferences) {
  rrp::Rng rng(93);
  std::vector<double> w(1000, 0.0), x(1000, 0.0);
  for (std::size_t t = 1; t < w.size(); ++t) w[t] = w[t - 1] + rng.normal();
  for (std::size_t t = 1; t < x.size(); ++t) x[t] = x[t - 1] + w[t];
  EXPECT_EQ(choose_d(x), 2u);
}

TEST(ChooseD, CappedAtTwo) {
  rrp::Rng rng(94);
  std::vector<double> a(2000, 0.0), b(2000, 0.0), c(2000, 0.0);
  for (std::size_t t = 1; t < a.size(); ++t) {
    a[t] = a[t - 1] + rng.normal();
    b[t] = b[t - 1] + a[t];
    c[t] = c[t - 1] + b[t];
  }
  EXPECT_LE(choose_d(c), 2u);
}

TEST(ChooseDSeasonal, PureNoiseNeedsNone) {
  rrp::Rng rng(95);
  std::vector<double> x(600);
  for (auto& v : x) v = rng.normal();
  EXPECT_EQ(choose_D(x, 24), 0u);
}

TEST(ChooseDSeasonal, StrongStableSeasonalityTriggers) {
  rrp::Rng rng(96);
  std::vector<double> x(720);
  for (std::size_t t = 0; t < x.size(); ++t) {
    x[t] = 10.0 * std::sin(2.0 * M_PI * static_cast<double>(t % 24) / 24.0) +
           rng.normal(0.0, 0.05);
  }
  EXPECT_EQ(choose_D(x, 24), 1u);
}

TEST(AutoArima, SelectsLowOrderForAr1) {
  const auto x = ar1(0.7, 1500, 97);
  AutoArimaOptions opt;
  opt.max_p = 2;
  opt.max_q = 2;
  const auto r = auto_arima(x, opt);
  EXPECT_GT(r.models_evaluated, 4u);
  // The chosen model must include an AR or MA component capturing the
  // dependence, and must not over-difference.
  EXPECT_EQ(r.model.order.d, 0u);
  EXPECT_GE(r.model.order.p + r.model.order.q, 1u);
}

TEST(AutoArima, ForcedDifferencingRespected) {
  const auto x = ar1(0.5, 800, 98);
  AutoArimaOptions opt;
  opt.max_p = 1;
  opt.max_q = 1;
  opt.d = 1;
  const auto r = auto_arima(x, opt);
  EXPECT_EQ(r.model.order.d, 1u);
}

TEST(AutoArima, SeasonalGridSearched) {
  rrp::Rng rng(99);
  const std::size_t s = 8;  // small period keeps the test fast
  std::vector<double> x(800);
  std::vector<double> seasonal_state(s, 0.0);
  for (std::size_t t = 0; t < x.size(); ++t) {
    const std::size_t phase = t % s;
    seasonal_state[phase] = 0.8 * seasonal_state[phase] + rng.normal();
    x[t] = seasonal_state[phase];
  }
  AutoArimaOptions opt;
  opt.max_p = 1;
  opt.max_q = 1;
  opt.max_P = 1;
  opt.max_Q = 1;
  opt.seasonal_period = s;
  opt.D = 0;
  const auto r = auto_arima(x, opt);
  // A seasonal AR process: the search must pick some seasonal order.
  EXPECT_GE(r.model.order.P + r.model.order.Q, 1u);
}

TEST(AutoArima, CriterionChangesAreHonored) {
  const auto x = ar1(0.6, 600, 100);
  AutoArimaOptions opt;
  opt.max_p = 2;
  opt.max_q = 2;
  opt.criterion = AutoArimaOptions::Criterion::Bic;
  const auto r = auto_arima(x, opt);
  EXPECT_GE(r.model.order.p + r.model.order.q, 1u);
}

TEST(AutoArima, MaxTotalOrderPrunesGrid) {
  const auto x = ar1(0.6, 400, 101);
  AutoArimaOptions wide, narrow;
  wide.max_p = 2;
  wide.max_q = 2;
  narrow.max_p = 2;
  narrow.max_q = 2;
  narrow.max_total_order = 1;
  const auto rw = auto_arima(x, wide);
  const auto rn = auto_arima(x, narrow);
  EXPECT_GT(rw.models_evaluated, rn.models_evaluated);
  EXPECT_LE(rn.model.order.p + rn.model.order.q, 1u);
}

// --- auto_arima_refit (ISSUE 10) ---------------------------------------
//
// The order search is the expensive part of auto_arima; the refit
// wrapper must skip it entirely while the incumbent order still passes
// the drift diagnostics, and only severe drift (ScratchRefit) pays for
// the full grid again.

TEST(AutoArimaRefit, HealthyIncumbentSkipsOrderSearch) {
  const auto x = ar1(0.6, 800, 501);
  AutoArimaOptions opt;
  opt.max_p = 2;
  opt.max_q = 2;
  const auto incumbent = auto_arima(x, opt);
  const auto fresh = ar1(0.6, 400, 502);
  const auto r = auto_arima_refit(incumbent.model, fresh, {}, opt);
  EXPECT_TRUE(r.order_search_skipped);
  EXPECT_EQ(r.models_evaluated, 0u);
  EXPECT_TRUE(r.action == SarimaRefitAction::Kept ||
              r.action == SarimaRefitAction::WarmRefit);
  // The order is the incumbent's order: no re-selection happened.
  EXPECT_EQ(r.model.order.p, incumbent.model.order.p);
  EXPECT_EQ(r.model.order.q, incumbent.model.order.q);
}

TEST(AutoArimaRefit, SevereDriftRerunsTheGridSearch) {
  const auto x = ar1(0.6, 800, 503);
  AutoArimaOptions opt;
  opt.max_p = 2;
  opt.max_q = 2;
  const auto incumbent = auto_arima(x, opt);
  // Scale a fresh stream by 3: innovation variance ~9x the incumbent's,
  // well past the scratch threshold.
  auto drifted = ar1(0.6, 400, 504);
  for (double& v : drifted) v *= 3.0;
  const auto r = auto_arima_refit(incumbent.model, drifted, {}, opt);
  EXPECT_EQ(r.action, SarimaRefitAction::ScratchRefit);
  EXPECT_FALSE(r.order_search_skipped);
  EXPECT_GT(r.models_evaluated, 0u);
}

}  // namespace
