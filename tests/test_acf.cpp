#include "timeseries/acf.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace {

using namespace rrp::ts;

std::vector<double> simulate_ar1(double phi, std::size_t n,
                                 std::uint64_t seed) {
  rrp::Rng rng(seed);
  std::vector<double> x(n, 0.0);
  for (std::size_t t = 1; t < n; ++t) x[t] = phi * x[t - 1] + rng.normal();
  return x;
}

TEST(Acf, LagZeroIsOne) {
  const auto x = simulate_ar1(0.5, 500, 51);
  const auto r = acf(x, 10);
  EXPECT_DOUBLE_EQ(r[0], 1.0);
}

TEST(Acf, WhiteNoiseIsUncorrelated) {
  rrp::Rng rng(52);
  std::vector<double> x(5000);
  for (auto& v : x) v = rng.normal();
  const auto r = acf(x, 20);
  const double band = white_noise_band(x.size());
  int exceed = 0;
  for (std::size_t k = 1; k <= 20; ++k)
    if (std::fabs(r[k]) > band) ++exceed;
  // 95% band: expect ~1 of 20 to exceed; allow up to 3.
  EXPECT_LE(exceed, 3);
}

TEST(Acf, Ar1DecaysGeometrically) {
  const double phi = 0.8;
  const auto x = simulate_ar1(phi, 20000, 53);
  const auto r = acf(x, 5);
  for (std::size_t k = 1; k <= 5; ++k)
    EXPECT_NEAR(r[k], std::pow(phi, static_cast<double>(k)), 0.05)
        << "lag " << k;
}

TEST(Acf, NegativePhiAlternatesSign) {
  const auto x = simulate_ar1(-0.7, 20000, 54);
  const auto r = acf(x, 4);
  EXPECT_LT(r[1], 0.0);
  EXPECT_GT(r[2], 0.0);
  EXPECT_LT(r[3], 0.0);
}

TEST(Acf, RejectsConstantSeries) {
  std::vector<double> x(10, 3.0);
  EXPECT_THROW(acf(x, 3), rrp::ContractViolation);
}

TEST(Pacf, Ar1CutsOffAfterLagOne) {
  const auto x = simulate_ar1(0.8, 20000, 55);
  const auto p = pacf(x, 6);
  EXPECT_NEAR(p[0], 0.8, 0.05);
  for (std::size_t k = 1; k < 6; ++k)
    EXPECT_NEAR(p[k], 0.0, 0.05) << "lag " << (k + 1);
}

TEST(Pacf, Ar2CutsOffAfterLagTwo) {
  rrp::Rng rng(56);
  std::vector<double> x(20000, 0.0);
  for (std::size_t t = 2; t < x.size(); ++t)
    x[t] = 0.5 * x[t - 1] + 0.3 * x[t - 2] + rng.normal();
  const auto p = pacf(x, 5);
  EXPECT_GT(std::fabs(p[0]), 0.3);
  EXPECT_NEAR(p[1], 0.3, 0.05);
  for (std::size_t k = 2; k < 5; ++k) EXPECT_NEAR(p[k], 0.0, 0.05);
}

TEST(WhiteNoiseBand, ShrinksWithSampleSize) {
  EXPECT_NEAR(white_noise_band(100), 0.196, 1e-3);
  EXPECT_GT(white_noise_band(100), white_noise_band(10000));
}

TEST(PacfToAr, SingleLagIdentity) {
  std::vector<double> partial = {0.6};
  const auto phi = pacf_to_ar(partial);
  ASSERT_EQ(phi.size(), 1u);
  EXPECT_DOUBLE_EQ(phi[0], 0.6);
}

TEST(PacfToAr, TwoLagKnownRecursion) {
  // Durbin-Levinson: phi_22 = r2; phi_21 = r1 (1 - r2).
  std::vector<double> partial = {0.5, 0.3};
  const auto phi = pacf_to_ar(partial);
  ASSERT_EQ(phi.size(), 2u);
  EXPECT_NEAR(phi[0], 0.5 * (1.0 - 0.3), 1e-12);
  EXPECT_NEAR(phi[1], 0.3, 1e-12);
}

TEST(PacfToAr, ResultIsStationary) {
  // Any partial sequence in (-1,1) must give a stationary AR; verify
  // by simulating and confirming the series does not explode.
  std::vector<double> partial = {0.9, -0.8, 0.7, -0.6};
  const auto phi = pacf_to_ar(partial);
  rrp::Rng rng(57);
  std::vector<double> x(5000, 0.0);
  for (std::size_t t = phi.size(); t < x.size(); ++t) {
    double v = rng.normal();
    for (std::size_t l = 0; l < phi.size(); ++l)
      v += phi[l] * x[t - 1 - l];
    x[t] = v;
  }
  double max_abs = 0.0;
  for (double v : x) max_abs = std::max(max_abs, std::fabs(v));
  EXPECT_LT(max_abs, 1e3);
}

TEST(PacfToAr, RejectsBoundaryValues) {
  std::vector<double> partial = {1.0};
  EXPECT_THROW(pacf_to_ar(partial), rrp::ContractViolation);
}

// --- ar_to_pacf (ISSUE 10: warm-started refits) ------------------------
//
// Warm refits seed Nelder-Mead at the incumbent by mapping its AR
// coefficients back to the unconstrained partial scale, so the step-down
// must invert pacf_to_ar exactly on the stationary region and stay
// strictly inside (-1, 1) even for coefficients at or past the boundary
// (otherwise re-constraining via atanh/tanh would blow up).

TEST(ArToPacf, RoundTripsStationaryCoefficients) {
  const std::vector<std::vector<double>> partials = {
      {0.6},
      {0.5, -0.3},
      {0.8, 0.15, -0.4},
      {-0.95, 0.7, 0.2, -0.5},
  };
  for (const auto& partial : partials) {
    const auto phi = pacf_to_ar(partial);
    const auto back = ar_to_pacf(phi);
    ASSERT_EQ(back.size(), partial.size());
    for (std::size_t i = 0; i < partial.size(); ++i)
      EXPECT_NEAR(back[i], partial[i], 1e-12) << "lag " << i + 1;
    // And forward again: the AR polynomial is reproduced too.
    const auto phi2 = pacf_to_ar(back);
    for (std::size_t i = 0; i < phi.size(); ++i)
      EXPECT_NEAR(phi2[i], phi[i], 1e-12) << "coef " << i;
  }
}

TEST(ArToPacf, ClampsNonStationaryInputInsideOpenInterval) {
  // A unit-root-or-worse AR coefficient maps to a partial at |1|; the
  // step-down clamps it just inside so the result is always a legal
  // pacf_to_ar input (the warm-start contract).
  const std::vector<std::vector<double>> cases = {
      {1.2}, {1.0}, {1.7, -0.7}, {-1.3}};
  for (const std::vector<double>& ar : cases) {
    const auto partial = ar_to_pacf(ar);
    ASSERT_EQ(partial.size(), ar.size());
    for (double r : partial) EXPECT_LT(std::fabs(r), 1.0);
    EXPECT_NO_THROW(pacf_to_ar(partial));
  }
}

}  // namespace
