#include "common/matrix.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace {

using rrp::Matrix;

TEST(Matrix, IdentityActsAsNeutralElement) {
  const Matrix i3 = Matrix::identity(3);
  std::vector<double> x = {1.0, -2.0, 3.5};
  EXPECT_EQ(i3.multiply(x), x);
}

TEST(Matrix, MultiplyKnownValues) {
  Matrix a(2, 3);
  a(0, 0) = 1; a(0, 1) = 2; a(0, 2) = 3;
  a(1, 0) = 4; a(1, 1) = 5; a(1, 2) = 6;
  std::vector<double> x = {1.0, 0.0, -1.0};
  const auto y = a.multiply(x);
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], -2.0);
  EXPECT_DOUBLE_EQ(y[1], -2.0);
}

TEST(Matrix, MultiplyTransposeMatchesExplicit) {
  Matrix a(2, 3);
  a(0, 0) = 1; a(0, 1) = 2; a(0, 2) = 3;
  a(1, 0) = 4; a(1, 1) = 5; a(1, 2) = 6;
  std::vector<double> y = {1.0, 2.0};
  const auto x = a.multiply_transpose(y);
  ASSERT_EQ(x.size(), 3u);
  EXPECT_DOUBLE_EQ(x[0], 9.0);
  EXPECT_DOUBLE_EQ(x[1], 12.0);
  EXPECT_DOUBLE_EQ(x[2], 15.0);
}

TEST(Matrix, ProductDimensionsChecked) {
  Matrix a(2, 3), b(2, 2);
  EXPECT_THROW(a * b, rrp::ContractViolation);
}

TEST(Matrix, InverseOfIdentityIsIdentity) {
  const Matrix i4 = Matrix::identity(4);
  EXPECT_LT(i4.inverse().max_abs_diff(i4), 1e-14);
}

TEST(Matrix, InverseTimesSelfIsIdentity) {
  rrp::Rng rng(31);
  const std::size_t n = 12;
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      a(i, j) = rng.uniform(-1.0, 1.0) + (i == j ? 4.0 : 0.0);
  const Matrix prod = a * a.inverse();
  EXPECT_LT(prod.max_abs_diff(Matrix::identity(n)), 1e-9);
}

TEST(Matrix, InverseDetectsSingular) {
  Matrix a(2, 2);
  a(0, 0) = 1; a(0, 1) = 2;
  a(1, 0) = 2; a(1, 1) = 4;
  EXPECT_THROW(a.inverse(), rrp::NumericalError);
}

TEST(Matrix, SolveMatchesKnownSystem) {
  Matrix a(2, 2);
  a(0, 0) = 3; a(0, 1) = 1;
  a(1, 0) = 1; a(1, 1) = 2;
  std::vector<double> b = {9.0, 8.0};
  const auto x = a.solve(b);
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Matrix, SolveAgreesWithInverseMultiply) {
  rrp::Rng rng(32);
  const std::size_t n = 15;
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      a(i, j) = rng.uniform(-2.0, 2.0) + (i == j ? 6.0 : 0.0);
  std::vector<double> b(n);
  for (auto& v : b) v = rng.uniform(-5.0, 5.0);
  const auto x1 = a.solve(b);
  const auto x2 = a.inverse().multiply(b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x1[i], x2[i], 1e-9);
}

TEST(Matrix, SolveRequiresPivotableSystem) {
  Matrix zero(3, 3);
  std::vector<double> b = {1.0, 2.0, 3.0};
  EXPECT_THROW(zero.solve(b), rrp::NumericalError);
}

TEST(Matrix, RowSpanAllowsInPlaceEdits) {
  Matrix a(2, 2, 1.0);
  auto r0 = a.row(0);
  for (double& v : r0) v *= 3.0;
  EXPECT_DOUBLE_EQ(a(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(a(1, 0), 1.0);
}

TEST(Matrix, OutOfRangeAccessRejected) {
  Matrix a(2, 2);
  EXPECT_THROW(a(2, 0), rrp::ContractViolation);
  EXPECT_THROW(a(0, 2), rrp::ContractViolation);
}

}  // namespace
