#include "common/deadline.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace {

using rrp::common::Clock;
using rrp::common::Deadline;
using rrp::common::FakeClock;

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(Deadline, DefaultConstructedIsUnlimited) {
  const Deadline d;
  EXPECT_TRUE(d.is_unlimited());
  EXPECT_FALSE(d.expired());
  EXPECT_EQ(d.remaining_seconds(), kInf);
}

TEST(Deadline, UnlimitedFactoryMatchesDefault) {
  const Deadline d = Deadline::unlimited();
  EXPECT_TRUE(d.is_unlimited());
  EXPECT_FALSE(d.expired());
}

TEST(Deadline, InfiniteBudgetIsUnlimited) {
  FakeClock clock;
  EXPECT_TRUE(Deadline::after(kInf, clock).is_unlimited());
  EXPECT_TRUE(Deadline::after(kInf).is_unlimited());
}

TEST(Deadline, NanBudgetRejected) {
  FakeClock clock;
  EXPECT_THROW(Deadline::after(std::nan(""), clock), rrp::ContractViolation);
}

TEST(Deadline, ZeroAndNegativeBudgetsAlreadyExpired) {
  FakeClock clock(100.0);
  EXPECT_TRUE(Deadline::after(0.0, clock).expired());
  EXPECT_TRUE(Deadline::after(-5.0, clock).expired());
}

TEST(Deadline, ExpiresWhenFakeClockAdvances) {
  FakeClock clock;
  const Deadline d = Deadline::after(10.0, clock);
  EXPECT_FALSE(d.is_unlimited());
  EXPECT_FALSE(d.expired());
  clock.advance(9.999);
  EXPECT_FALSE(d.expired());
  clock.advance(0.001);
  EXPECT_TRUE(d.expired());
  // Monotonic: stays expired.
  clock.advance(100.0);
  EXPECT_TRUE(d.expired());
}

TEST(Deadline, RemainingSecondsCountsDown) {
  FakeClock clock(50.0);
  const Deadline d = Deadline::after(10.0, clock);
  EXPECT_DOUBLE_EQ(d.remaining_seconds(), 10.0);
  clock.advance(4.0);
  EXPECT_DOUBLE_EQ(d.remaining_seconds(), 6.0);
  clock.advance(8.0);
  EXPECT_DOUBLE_EQ(d.remaining_seconds(), -2.0);
}

TEST(Deadline, CopiesShareTheClock) {
  FakeClock clock;
  const Deadline d = Deadline::after(5.0, clock);
  const Deadline copy = d;
  clock.advance(6.0);
  EXPECT_TRUE(d.expired());
  EXPECT_TRUE(copy.expired());
}

TEST(FakeClock, AutoAdvanceStepsPerRead) {
  FakeClock clock;
  clock.set_auto_advance(1.0);
  EXPECT_DOUBLE_EQ(clock.now_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(clock.now_seconds(), 1.0);
  EXPECT_DOUBLE_EQ(clock.now_seconds(), 2.0);
  EXPECT_EQ(clock.reads(), 3u);
}

TEST(FakeClock, AutoAdvanceDrivesDeadlineExpiryAfterExactPollCount) {
  FakeClock clock;
  clock.set_auto_advance(1.0);
  // Budget 3.5 against a clock stepping 1s per read: the deadline is
  // created at t=0 (one read) and expires on the poll observing t>=3.5.
  const Deadline d = Deadline::after(3.5, clock);
  EXPECT_FALSE(d.expired());  // observes t=1
  EXPECT_FALSE(d.expired());  // t=2
  EXPECT_FALSE(d.expired());  // t=3
  EXPECT_TRUE(d.expired());   // t=4
}

TEST(FakeClock, ReadsCountsDeadlinePolls) {
  FakeClock clock;
  const Deadline d = Deadline::after(100.0, clock);
  const std::uint64_t base = clock.reads();
  (void)d.expired();
  (void)d.expired();
  EXPECT_EQ(clock.reads(), base + 2);
  // Unlimited deadlines never touch the clock.
  const Deadline unlimited;
  (void)unlimited.expired();
  EXPECT_EQ(clock.reads(), base + 2);
}

TEST(RealClock, IsMonotonicNonDecreasing) {
  const Clock& clock = rrp::common::real_clock();
  const double a = clock.now_seconds();
  const double b = clock.now_seconds();
  EXPECT_GE(b, a);
}

TEST(RealClock, DeadlineAfterLargeBudgetNotExpired) {
  EXPECT_FALSE(Deadline::after(3600.0).expired());
}

}  // namespace
