#include "timeseries/diagnostics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace {

using namespace rrp::ts;

TEST(ShapiroWilk, AcceptsNormalSamples) {
  rrp::Rng rng(111);
  int rejections = 0;
  const int trials = 20;
  for (int trial = 0; trial < trials; ++trial) {
    std::vector<double> x(200);
    for (auto& v : x) v = rng.normal(3.0, 2.0);
    const auto r = shapiro_wilk(x);
    EXPECT_GT(r.statistic, 0.9);
    EXPECT_LE(r.statistic, 1.0);
    if (r.p_value < 0.05) ++rejections;
  }
  // At the 5% level we expect about one false rejection in 20.
  EXPECT_LE(rejections, 4);
}

TEST(ShapiroWilk, RejectsExponentialSamples) {
  rrp::Rng rng(112);
  std::vector<double> x(300);
  for (auto& v : x) v = rng.exponential(1.0);
  const auto r = shapiro_wilk(x);
  EXPECT_LT(r.p_value, 0.01);
}

TEST(ShapiroWilk, RejectsBimodalSamples) {
  rrp::Rng rng(113);
  std::vector<double> x(400);
  for (auto& v : x)
    v = rng.bernoulli(0.5) ? rng.normal(-4.0, 0.5) : rng.normal(4.0, 0.5);
  const auto r = shapiro_wilk(x);
  EXPECT_LT(r.p_value, 0.01);
}

TEST(ShapiroWilk, SmallSampleBranch) {
  rrp::Rng rng(114);
  std::vector<double> x(8);
  for (auto& v : x) v = rng.normal();
  const auto r = shapiro_wilk(x);
  EXPECT_GT(r.statistic, 0.0);
  EXPECT_LE(r.statistic, 1.0);
  EXPECT_GE(r.p_value, 0.0);
  EXPECT_LE(r.p_value, 1.0);
}

TEST(ShapiroWilk, NEqualsThreeExactBranch) {
  std::vector<double> x = {1.0, 2.0, 4.0};
  const auto r = shapiro_wilk(x);
  EXPECT_GT(r.statistic, 0.5);
  EXPECT_LE(r.p_value, 1.0);
}

TEST(ShapiroWilk, BoundsChecked) {
  std::vector<double> two = {1.0, 2.0};
  EXPECT_THROW(shapiro_wilk(two), rrp::ContractViolation);
  std::vector<double> constant(10, 1.0);
  EXPECT_THROW(shapiro_wilk(constant), rrp::ContractViolation);
}

TEST(LjungBox, WhiteNoiseNotRejected) {
  rrp::Rng rng(115);
  std::vector<double> x(1000);
  for (auto& v : x) v = rng.normal();
  const auto r = ljung_box(x, 10);
  EXPECT_GT(r.p_value, 0.01);
}

TEST(LjungBox, Ar1StronglyRejected) {
  rrp::Rng rng(116);
  std::vector<double> x(1000, 0.0);
  for (std::size_t t = 1; t < x.size(); ++t)
    x[t] = 0.8 * x[t - 1] + rng.normal();
  const auto r = ljung_box(x, 10);
  EXPECT_LT(r.p_value, 1e-6);
  EXPECT_GT(r.statistic, 100.0);
}

TEST(LjungBox, FittedParamsReduceDof) {
  rrp::Rng rng(117);
  std::vector<double> x(500);
  for (auto& v : x) v = rng.normal();
  const auto full = ljung_box(x, 10, 0);
  const auto adjusted = ljung_box(x, 10, 3);
  EXPECT_DOUBLE_EQ(full.statistic, adjusted.statistic);
  // Fewer dof -> same Q is more extreme -> smaller p.
  EXPECT_LE(adjusted.p_value, full.p_value + 1e-12);
}

TEST(LjungBox, ParameterValidation) {
  std::vector<double> x(50, 0.0);
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = static_cast<double>(i % 7);
  EXPECT_THROW(ljung_box(x, 0), rrp::ContractViolation);
  EXPECT_THROW(ljung_box(x, 5, 5), rrp::ContractViolation);
}

TEST(JarqueBera, NormalAccepted) {
  rrp::Rng rng(118);
  std::vector<double> x(2000);
  for (auto& v : x) v = rng.normal();
  EXPECT_GT(jarque_bera(x).p_value, 0.01);
}

TEST(JarqueBera, SkewedRejected) {
  rrp::Rng rng(119);
  std::vector<double> x(2000);
  for (auto& v : x) v = rng.exponential(1.0);
  EXPECT_LT(jarque_bera(x).p_value, 1e-6);
}

}  // namespace

// -- KPSS stationarity ---------------------------------------------------

namespace {

using rrp::ts::is_level_stationary;
using rrp::ts::kpss_level;

TEST(Kpss, StationaryAr1NotRejected) {
  rrp::Rng rng(121);
  std::vector<double> x(1000, 0.0);
  for (std::size_t t = 1; t < x.size(); ++t)
    x[t] = 0.5 * x[t - 1] + rng.normal();
  const auto r = kpss_level(x);
  EXPECT_LT(r.statistic, 0.463);  // 5% critical value
  EXPECT_TRUE(is_level_stationary(x));
}

TEST(Kpss, WhiteNoiseNotRejected) {
  rrp::Rng rng(122);
  std::vector<double> x(500);
  for (auto& v : x) v = rng.normal(3.0, 1.0);
  EXPECT_TRUE(is_level_stationary(x));
}

TEST(Kpss, RandomWalkRejected) {
  rrp::Rng rng(123);
  std::vector<double> x(1000, 0.0);
  for (std::size_t t = 1; t < x.size(); ++t)
    x[t] = x[t - 1] + rng.normal();
  const auto r = kpss_level(x);
  EXPECT_GT(r.statistic, 0.739);  // beyond the 1% critical value
  EXPECT_NEAR(r.p_value, 0.01, 1e-12);
  EXPECT_FALSE(is_level_stationary(x));
}

TEST(Kpss, DeterministicTrendRejected) {
  rrp::Rng rng(124);
  std::vector<double> x(600);
  for (std::size_t t = 0; t < x.size(); ++t)
    x[t] = 0.01 * static_cast<double>(t) + rng.normal(0.0, 0.5);
  EXPECT_FALSE(is_level_stationary(x));  // level-KPSS rejects a trend
}

TEST(Kpss, PValueInterpolationMonotone) {
  // Larger statistics must never give larger p-values; probe via
  // series of increasing persistence.
  rrp::Rng rng(125);
  double prev_p = 1.0;
  for (double phi : {0.0, 0.9, 0.995}) {
    std::vector<double> x(800, 0.0);
    for (std::size_t t = 1; t < x.size(); ++t)
      x[t] = phi * x[t - 1] + rng.normal();
    const auto r = kpss_level(x);
    EXPECT_LE(r.p_value, prev_p + 1e-12) << "phi " << phi;
    prev_p = r.p_value;
  }
}

TEST(Kpss, InputValidation) {
  std::vector<double> tiny(5, 1.0);
  EXPECT_THROW(kpss_level(tiny), rrp::ContractViolation);
  rrp::Rng rng(126);
  std::vector<double> x(100);
  for (auto& v : x) v = rng.normal();
  EXPECT_THROW(is_level_stationary(x, 0.5), rrp::ContractViolation);
}

}  // namespace
