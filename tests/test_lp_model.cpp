#include "lp/model.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace {

using namespace rrp::lp;

TEST(LpModel, AddVariableValidatesBounds) {
  LinearProgram lp;
  EXPECT_THROW(lp.add_variable(2.0, 1.0, 0.0), rrp::ContractViolation);
  const auto v = lp.add_variable(0.0, 1.0, 3.0, "x");
  EXPECT_EQ(v, 0u);
  EXPECT_EQ(lp.variable(v).name, "x");
  EXPECT_DOUBLE_EQ(lp.variable(v).objective, 3.0);
}

TEST(LpModel, AddRowMergesDuplicateColumns) {
  LinearProgram lp;
  const auto x = lp.add_variable(0.0, 10.0, 1.0);
  lp.add_row({{x, 1.0}, {x, 2.0}}, 0.0, 5.0);
  ASSERT_EQ(lp.row(0).entries.size(), 1u);
  EXPECT_DOUBLE_EQ(lp.row(0).entries[0].coeff, 3.0);
}

TEST(LpModel, AddRowDropsCancelledColumns) {
  LinearProgram lp;
  const auto x = lp.add_variable(0.0, 10.0, 1.0);
  const auto y = lp.add_variable(0.0, 10.0, 1.0);
  lp.add_row({{x, 1.0}, {x, -1.0}, {y, 2.0}}, 0.0, 5.0);
  ASSERT_EQ(lp.row(0).entries.size(), 1u);
  EXPECT_EQ(lp.row(0).entries[0].col, y);
}

TEST(LpModel, AddRowRejectsUnknownColumn) {
  LinearProgram lp;
  lp.add_variable(0.0, 1.0, 0.0);
  EXPECT_THROW(lp.add_row({{5, 1.0}}, 0.0, 1.0), rrp::ContractViolation);
}

TEST(LpModel, AddRowRejectsInvertedBounds) {
  LinearProgram lp;
  const auto x = lp.add_variable(0.0, 1.0, 0.0);
  EXPECT_THROW(lp.add_row({{x, 1.0}}, 2.0, 1.0), rrp::ContractViolation);
}

TEST(LpModel, ObjectiveValueComputes) {
  LinearProgram lp;
  lp.add_variable(0.0, kInfinity, 2.0);
  lp.add_variable(0.0, kInfinity, -1.0);
  EXPECT_DOUBLE_EQ(lp.objective_value({3.0, 4.0}), 2.0);
}

TEST(LpModel, MaxViolationDetectsBoundAndRowBreaches) {
  LinearProgram lp;
  const auto x = lp.add_variable(0.0, 1.0, 0.0);
  lp.add_row({{x, 1.0}}, 0.5, 0.8);
  EXPECT_DOUBLE_EQ(lp.max_violation({0.6}), 0.0);
  EXPECT_NEAR(lp.max_violation({2.0}), 1.2, 1e-12);  // row breach dominates
  EXPECT_NEAR(lp.max_violation({-0.5}), 1.0, 1e-12);
}

TEST(LpModel, SetBoundsAndObjectiveMutators) {
  LinearProgram lp;
  const auto x = lp.add_variable(0.0, 1.0, 0.0);
  lp.set_variable_bounds(x, -2.0, 2.0);
  lp.set_objective(x, 7.0);
  EXPECT_DOUBLE_EQ(lp.variable(x).lo, -2.0);
  EXPECT_DOUBLE_EQ(lp.variable(x).objective, 7.0);
}

TEST(LpModel, StatusToString) {
  EXPECT_STREQ(to_string(SolveStatus::Optimal), "optimal");
  EXPECT_STREQ(to_string(SolveStatus::Infeasible), "infeasible");
  EXPECT_STREQ(to_string(SolveStatus::Unbounded), "unbounded");
}

}  // namespace
