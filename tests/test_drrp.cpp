#include "core/drrp.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/demand.hpp"

namespace {

using namespace rrp::core;
using rrp::market::CostModel;
using rrp::market::VmClass;

DrrpInstance make_instance(std::vector<double> demand, double cp) {
  DrrpInstance inst;
  inst.demand = std::move(demand);
  inst.compute_price.assign(inst.demand.size(), cp);
  return inst;
}

TEST(Drrp, ValidationCatchesBadInputs) {
  DrrpInstance inst;
  EXPECT_THROW(inst.validate(), rrp::ContractViolation);  // empty demand
  inst = make_instance({0.4, 0.4}, 0.2);
  inst.compute_price.pop_back();
  EXPECT_THROW(inst.validate(), rrp::ContractViolation);
  inst = make_instance({0.4, -0.1}, 0.2);
  EXPECT_THROW(inst.validate(), rrp::ContractViolation);
  inst = make_instance({0.4, 0.4}, 0.0);  // price must be positive
  EXPECT_THROW(inst.validate(), rrp::ContractViolation);
}

TEST(Drrp, PlanServesAllDemand) {
  rrp::Rng rng(131);
  auto inst = make_instance(generate_demand(24, DemandConfig{}, rng), 0.4);
  const RentalPlan plan = solve_drrp(inst);
  ASSERT_EQ(plan.status, rrp::milp::MipStatus::Optimal);
  // Inventory balance holds with beta >= 0 everywhere.
  double store = inst.initial_storage;
  for (std::size_t t = 0; t < 24; ++t) {
    store += plan.alpha[t] - inst.demand[t];
    EXPECT_GT(store, -1e-6) << "slot " << t;
    EXPECT_NEAR(store, plan.beta[t], 1e-6);
  }
}

TEST(Drrp, ForcingConstraintRespected) {
  rrp::Rng rng(132);
  auto inst = make_instance(generate_demand(24, DemandConfig{}, rng), 0.8);
  const RentalPlan plan = solve_drrp(inst);
  ASSERT_TRUE(plan.feasible());
  for (std::size_t t = 0; t < 24; ++t) {
    if (!plan.chi[t]) {
      EXPECT_NEAR(plan.alpha[t], 0.0, 1e-7);
    }
  }
}

TEST(Drrp, NeverCostsMoreThanNoPlan) {
  rrp::Rng rng(133);
  for (double cp : {0.2, 0.4, 0.8}) {
    auto inst = make_instance(generate_demand(24, DemandConfig{}, rng), cp);
    const RentalPlan optimal = solve_drrp(inst);
    const RentalPlan naive = no_plan_schedule(inst);
    ASSERT_TRUE(optimal.feasible());
    EXPECT_LE(optimal.cost.total(), naive.cost.total() + 1e-6);
  }
}

TEST(Drrp, SavingsGrowWithInstancePrice) {
  // Paper Figure 10/11: cost reduction is more salient for expensive
  // compute (the base of the lot-sizing tradeoff).
  rrp::Rng rng(134);
  const auto demand = generate_demand(24, DemandConfig{}, rng);
  double prev_ratio = 1.1;
  for (double cp : {0.2, 0.4, 0.8}) {
    auto inst = make_instance(demand, cp);
    const double opt = solve_drrp(inst).cost.total();
    const double naive = no_plan_schedule(inst).cost.total();
    const double ratio = opt / naive;
    EXPECT_LT(ratio, prev_ratio) << "cp=" << cp;
    prev_ratio = ratio;
  }
}

TEST(Drrp, CheapComputeMeansRentEverySlot) {
  // When holding is expensive relative to compute, batching is useless:
  // the optimal plan degenerates to just-in-time generation.
  auto inst = make_instance(constant_demand(12, 0.4), 0.001);
  const RentalPlan plan = solve_drrp(inst);
  ASSERT_TRUE(plan.feasible());
  for (std::size_t t = 0; t < 12; ++t) {
    EXPECT_EQ(plan.chi[t], 1);
    EXPECT_NEAR(plan.beta[t], 0.0, 1e-6);
  }
}

TEST(Drrp, ExpensiveComputeBatchesGeneration) {
  // Expensive compute + cheap holding: the planner should skip rental
  // slots and serve later demand from inventory.
  auto inst = make_instance(constant_demand(12, 0.4), 2.0);
  const RentalPlan plan = solve_drrp(inst);
  ASSERT_TRUE(plan.feasible());
  const int rentals =
      std::accumulate(plan.chi.begin(), plan.chi.end(), 0,
                      [](int acc, char c) { return acc + (c ? 1 : 0); });
  EXPECT_LT(rentals, 12);
  double max_inventory = 0.0;
  for (double b : plan.beta) max_inventory = std::max(max_inventory, b);
  EXPECT_GT(max_inventory, 0.1);
}

TEST(Drrp, InitialStorageServesEarlyDemand) {
  auto inst = make_instance(constant_demand(4, 0.5), 0.4);
  inst.initial_storage = 1.0;  // covers the first two slots entirely
  const RentalPlan plan = solve_drrp(inst);
  ASSERT_TRUE(plan.feasible());
  EXPECT_NEAR(plan.alpha[0], 0.0, 1e-7);
  EXPECT_NEAR(plan.alpha[1], 0.0, 1e-7);
  EXPECT_EQ(plan.chi[0], 0);
  EXPECT_EQ(plan.chi[1], 0);
}

TEST(Drrp, ZeroDemandSlotsNeedNoRental) {
  auto inst = make_instance({0.0, 0.0, 0.5, 0.0}, 0.4);
  const RentalPlan plan = solve_drrp(inst);
  ASSERT_TRUE(plan.feasible());
  EXPECT_EQ(plan.chi[0], 0);
  EXPECT_EQ(plan.chi[1], 0);
  EXPECT_EQ(plan.chi[3], 0);
  EXPECT_EQ(plan.chi[2], 1);
}

TEST(Drrp, BottleneckConstraintCapsGeneration) {
  auto inst = make_instance(constant_demand(6, 0.4), 2.0);
  inst.bottleneck_rate = 1.0;
  inst.bottleneck_capacity.assign(6, 0.5);  // alpha_t <= 0.5
  const RentalPlan plan = solve_drrp(inst);
  ASSERT_TRUE(plan.feasible());
  for (double a : plan.alpha) EXPECT_LE(a, 0.5 + 1e-7);
  // Total generation of 2.4 GB at <= 0.5 GB/slot needs >= 5 rentals;
  // without the cap this expensive instance would batch into 1-2.
  const int rentals =
      std::accumulate(plan.chi.begin(), plan.chi.end(), 0,
                      [](int acc, char c) { return acc + (c ? 1 : 0); });
  EXPECT_GE(rentals, 5);
}

TEST(Drrp, InfeasibleWhenBottleneckBelowDemand) {
  auto inst = make_instance(constant_demand(4, 0.6), 0.4);
  inst.bottleneck_rate = 1.0;
  inst.bottleneck_capacity.assign(4, 0.5);  // can never cover 0.6/slot
  const RentalPlan plan = solve_drrp(inst);
  EXPECT_EQ(plan.status, rrp::milp::MipStatus::Infeasible);
}

TEST(Drrp, TightAndLooseForcingBoundsAgreeOnOptimum) {
  rrp::Rng rng(135);
  const auto demand = generate_demand(16, DemandConfig{}, rng);
  auto tight = make_instance(demand, 0.8);
  auto loose = make_instance(demand, 0.8);
  loose.tighten_forcing_bound = false;
  const RentalPlan pt = solve_drrp(tight);
  const RentalPlan pl = solve_drrp(loose);
  ASSERT_TRUE(pt.feasible());
  ASSERT_TRUE(pl.feasible());
  EXPECT_NEAR(pt.cost.total(), pl.cost.total(), 1e-5);
}

TEST(Drrp, CostBreakdownSumsToTotalAndMatchesObjective) {
  rrp::Rng rng(136);
  // A short horizon keeps the weak aggregated relaxation solvable fast.
  auto inst = make_instance(generate_demand(10, DemandConfig{}, rng), 0.4);
  DrrpVariables vars;
  const auto model = build_drrp(inst, &vars);
  const auto result = rrp::milp::solve(model);
  ASSERT_EQ(result.status, rrp::milp::MipStatus::Optimal);
  const RentalPlan plan = solve_drrp(inst);
  EXPECT_NEAR(plan.cost.total(), result.objective, 1e-6);
  EXPECT_NEAR(plan.cost.compute + plan.cost.holding +
                  plan.cost.transfer_in + plan.cost.transfer_out,
              plan.cost.total(), 1e-12);
}

TEST(Drrp, TransferOutIsScheduleIndependent) {
  rrp::Rng rng(137);
  auto inst = make_instance(generate_demand(24, DemandConfig{}, rng), 0.8);
  const RentalPlan opt = solve_drrp(inst);
  const RentalPlan naive = no_plan_schedule(inst);
  EXPECT_NEAR(opt.cost.transfer_out, naive.cost.transfer_out, 1e-9);
}

TEST(Drrp, NoPlanScheduleUsesInitialStorageFirst) {
  auto inst = make_instance(constant_demand(3, 0.5), 0.4);
  inst.initial_storage = 0.6;
  const RentalPlan plan = no_plan_schedule(inst);
  EXPECT_NEAR(plan.alpha[0], 0.0, 1e-12);   // 0.5 from storage
  EXPECT_NEAR(plan.alpha[1], 0.4, 1e-12);   // 0.1 left + 0.4 generated
  EXPECT_NEAR(plan.alpha[2], 0.5, 1e-12);
  EXPECT_EQ(plan.chi[0], 0);
}

TEST(Drrp, EvaluateScheduleMatchesSolverAccounting) {
  rrp::Rng rng(138);
  auto inst = make_instance(generate_demand(12, DemandConfig{}, rng), 0.4);
  const RentalPlan plan = solve_drrp(inst);
  const CostBreakdown recomputed =
      evaluate_schedule(inst, plan.alpha, plan.chi);
  EXPECT_NEAR(recomputed.total(), plan.cost.total(), 1e-6);
}

TEST(Drrp, EvaluateScheduleRejectsUnderService) {
  auto inst = make_instance(constant_demand(3, 0.5), 0.4);
  std::vector<double> alpha = {0.5, 0.0, 0.5};  // slot 1 starves
  std::vector<char> chi = {1, 0, 1};
  EXPECT_THROW(evaluate_schedule(inst, alpha, chi), rrp::InvalidArgument);
}

TEST(Drrp, EvaluateScheduleRejectsForcingViolation) {
  auto inst = make_instance(constant_demand(2, 0.5), 0.4);
  std::vector<double> alpha = {1.0, 0.1};
  std::vector<char> chi = {1, 0};  // generates without renting
  EXPECT_THROW(evaluate_schedule(inst, alpha, chi), rrp::ContractViolation);
}

}  // namespace
