// TSan-targeted stress tests for rrp::ThreadPool: concurrent
// submit/wait from many caller threads, overlapping parallel_for calls,
// exception propagation out of tasks, and rapid construct/drain/destroy
// churn.  Run under -fsanitize=thread in CI (see .github/workflows).
#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/error.hpp"

namespace {

TEST(ThreadPoolStress, ConcurrentSubmitAndWaitFromManyThreads) {
  rrp::ThreadPool pool(4);
  std::atomic<int> counter{0};
  constexpr int kThreads = 8;
  constexpr int kTasksPerThread = 128;
  std::vector<std::thread> submitters;
  submitters.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&pool, &counter] {
      std::vector<std::future<void>> futs;
      futs.reserve(kTasksPerThread);
      for (int i = 0; i < kTasksPerThread; ++i) {
        futs.push_back(pool.submit(
            [&counter] { counter.fetch_add(1, std::memory_order_relaxed); }));
      }
      for (auto& f : futs) f.get();
    });
  }
  for (auto& t : submitters) t.join();
  EXPECT_EQ(counter.load(), kThreads * kTasksPerThread);
}

TEST(ThreadPoolStress, OverlappingParallelForCalls) {
  rrp::ThreadPool pool(4);
  constexpr std::size_t kCallers = 4;
  constexpr std::size_t kItems = 256;
  std::vector<std::vector<int>> out(kCallers, std::vector<int>(kItems, 0));
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (std::size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&pool, &out, c] {
      pool.parallel_for(kItems, [&out, c](std::size_t i) {
        out[c][i] = static_cast<int>(i) + 1;
      });
    });
  }
  for (auto& t : callers) t.join();
  for (std::size_t c = 0; c < kCallers; ++c) {
    for (std::size_t i = 0; i < kItems; ++i) {
      ASSERT_EQ(out[c][i], static_cast<int>(i) + 1)
          << "caller " << c << " item " << i;
    }
  }
}

TEST(ThreadPoolStress, SubmitPropagatesTaskException) {
  rrp::ThreadPool pool(2);
  auto fut = pool.submit([] { throw std::runtime_error("task failure"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
  // The pool must stay usable after a throwing task.
  auto ok = pool.submit([] {});
  EXPECT_NO_THROW(ok.get());
}

TEST(ThreadPoolStress, ParallelForPropagatesFirstException) {
  rrp::ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.parallel_for(128,
                        [&ran](std::size_t i) {
                          ran.fetch_add(1, std::memory_order_relaxed);
                          if (i % 17 == 3) throw rrp::Error("boom");
                        }),
      rrp::Error);
  // Every index was visited exactly once despite the failures.
  EXPECT_EQ(ran.load(), 128);
}

TEST(ThreadPoolStress, DestructorDrainsQueuedTasks) {
  std::atomic<int> done{0};
  constexpr int kRounds = 32;
  constexpr int kTasks = 24;
  for (int round = 0; round < kRounds; ++round) {
    rrp::ThreadPool pool(3);
    for (int i = 0; i < kTasks; ++i) {
      // Futures intentionally dropped: shutdown must still run the task.
      (void)pool.submit(
          [&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
  }
  EXPECT_EQ(done.load(), kRounds * kTasks);
}

TEST(ThreadPoolStress, ChurnConstructDestroyWhileBusy) {
  std::atomic<int> alive{0};
  for (int round = 0; round < 16; ++round) {
    rrp::ThreadPool pool(2);
    std::vector<std::future<void>> futs;
    futs.reserve(8);
    for (int i = 0; i < 8; ++i) {
      futs.push_back(pool.submit([&alive] {
        alive.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::yield();
        alive.fetch_sub(1, std::memory_order_relaxed);
      }));
    }
    for (auto& f : futs) f.get();
  }
  EXPECT_EQ(alive.load(), 0);
}

TEST(ThreadPoolStress, GlobalPoolSharedAcrossThreads) {
  std::atomic<int> counter{0};
  std::vector<std::thread> callers;
  callers.reserve(4);
  for (int c = 0; c < 4; ++c) {
    callers.emplace_back([&counter] {
      rrp::global_pool().parallel_for(64, [&counter](std::size_t) {
        counter.fetch_add(1, std::memory_order_relaxed);
      });
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(counter.load(), 4 * 64);
}

}  // namespace
