#include "core/evaluation.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace {

using namespace rrp::core;

EvaluationConfig small_config() {
  EvaluationConfig cfg;
  cfg.vm = rrp::market::VmClass::C1Medium;
  cfg.eval_hours = 24;
  cfg.trials = 4;
  cfg.window_shift_hours = 48;
  cfg.seed = 99;
  return cfg;
}

TEST(Evaluation, TrialInputsAreDistinctButReproducible) {
  const auto cfg = small_config();
  const auto a0 = make_trial_inputs(cfg, 0);
  const auto a0b = make_trial_inputs(cfg, 0);
  const auto a1 = make_trial_inputs(cfg, 1);
  EXPECT_EQ(a0.demand, a0b.demand);
  EXPECT_EQ(a0.actual_spot, a0b.actual_spot);
  EXPECT_NE(a0.demand, a1.demand);
  EXPECT_NE(a0.actual_spot, a1.actual_spot);
}

TEST(Evaluation, StatsAreInternallyConsistent) {
  const auto cfg = small_config();
  const auto result = evaluate_policies(
      cfg, {det_exp_mean_policy(), sto_exp_mean_policy()});
  ASSERT_EQ(result.policies.size(), 2u);
  for (const auto& p : result.policies) {
    ASSERT_EQ(p.per_trial_cost.size(), cfg.trials);
    double mean = 0.0;
    for (double c : p.per_trial_cost) mean += c;
    mean /= static_cast<double>(cfg.trials);
    EXPECT_NEAR(p.mean_cost, mean, 1e-12);
    EXPECT_GE(p.ci_half_width, 0.0);
    EXPECT_GE(p.mean_overpay, -1e-9);  // ideal is a lower bound
  }
  EXPECT_GT(result.mean_ideal_cost, 0.0);
  EXPECT_LT(result.mean_ideal_cost, result.policies[0].mean_cost + 1e-9);
}

TEST(Evaluation, ByNameLookup) {
  const auto cfg = small_config();
  const auto result = evaluate_policies(cfg, {no_plan_policy()});
  EXPECT_EQ(result.by_name("no-plan").policy, "no-plan");
  EXPECT_THROW(result.by_name("nope"), rrp::InvalidArgument);
}

TEST(Evaluation, PairedTrialsShareInputs) {
  // Because trials are paired, the no-plan policy must cost at least as
  // much as det-exp-mean in EVERY trial, not just on average (planning
  // dominates pointwise when prices never exceed lambda... it does not
  // in general, but no-plan pays lambda always while det pays at most
  // lambda per rental and rents no more often than every slot).
  const auto cfg = small_config();
  const auto result = evaluate_policies(
      cfg, {no_plan_policy(), det_exp_mean_policy()});
  const auto& naive = result.by_name("no-plan");
  const auto& det = result.by_name("det-exp-mean");
  for (std::size_t t = 0; t < cfg.trials; ++t)
    EXPECT_LE(det.per_trial_cost[t], naive.per_trial_cost[t] + 1e-6);
}

TEST(EvaluationRevocation, TrialInputsWireTheRegime) {
  auto cfg = small_config();
  cfg.revocation = rrp::market::RevocationConfig::storm();
  const auto in = make_trial_inputs(cfg, 0);
  EXPECT_TRUE(in.revocation.enabled);
  EXPECT_EQ(in.intra_slot_max.size(), cfg.eval_hours);
  EXPECT_EQ(in.trace_revocations.size(), cfg.eval_hours);
  for (std::size_t t = 0; t < cfg.eval_hours; ++t)
    EXPECT_GE(in.intra_slot_max[t], in.actual_spot[t]) << "slot " << t;
  // Different trials get different model seeds, same consequence knobs.
  const auto in1 = make_trial_inputs(cfg, 1);
  EXPECT_NE(in.revocation.seed, in1.revocation.seed);
  EXPECT_EQ(in.revocation.checkpoint_overhead,
            in1.revocation.checkpoint_overhead);
}

TEST(EvaluationRevocation, DisabledRegimeLeavesInputsBare) {
  const auto in = make_trial_inputs(small_config(), 0);
  EXPECT_FALSE(in.revocation.enabled);
  EXPECT_TRUE(in.intra_slot_max.empty());
  EXPECT_TRUE(in.trace_revocations.empty());
}

TEST(EvaluationRevocation, StandardRegimesAreOrderedByHostility) {
  const auto regimes = standard_interruption_regimes();
  ASSERT_EQ(regimes.size(), 3u);
  EXPECT_EQ(regimes[0].name, "calm");
  EXPECT_EQ(regimes[1].name, "bid-cross");
  EXPECT_EQ(regimes[2].name, "storm");
  for (const auto& r : regimes) EXPECT_TRUE(r.config.enabled);
  EXPECT_LT(regimes[0].config.hazard_per_slot,
            regimes[1].config.hazard_per_slot + 1e-12);
  EXPECT_LT(regimes[1].config.storm_rate, regimes[2].config.storm_rate);
}

TEST(EvaluationRevocation, RegimeTableReportsInterruptionColumns) {
  auto cfg = small_config();
  cfg.trials = 2;
  const auto results = evaluate_under_regimes(
      cfg, interruption_policies(), standard_interruption_regimes());
  ASSERT_EQ(results.size(), 3u);
  for (const auto& rr : results) {
    ASSERT_EQ(rr.result.policies.size(), interruption_policies().size());
    for (const auto& p : rr.result.policies) {
      EXPECT_TRUE(std::isfinite(p.mean_cost)) << rr.regime << " " << p.policy;
      EXPECT_GE(p.mean_revocations, 0.0);
      EXPECT_GE(p.mean_work_lost, 0.0);
      EXPECT_GE(p.mean_interruption_cost, 0.0);
      // On-demand never holds spot, so it can never be revoked.
      if (p.policy == "on-demand" || p.policy == "no-plan") {
        EXPECT_EQ(p.mean_revocations, 0.0);
        EXPECT_EQ(p.mean_work_lost, 0.0);
      }
    }
  }
  // The storm regime must interrupt the spot-using policies somewhere.
  const auto& storm = results[2].result;
  double revoked = 0.0;
  for (const auto& p : storm.policies) revoked += p.mean_revocations;
  EXPECT_GT(revoked, 0.0);
}

TEST(Evaluation, Validation) {
  auto cfg = small_config();
  cfg.trials = 1;
  EXPECT_THROW(evaluate_policies(cfg, {no_plan_policy()}),
               rrp::ContractViolation);
  cfg = small_config();
  EXPECT_THROW(evaluate_policies(cfg, {}), rrp::ContractViolation);
  // Window shifted past the trace's end must be caught.
  cfg = small_config();
  cfg.window_shift_hours = 24 * 5000;
  EXPECT_THROW(make_trial_inputs(cfg, 3), rrp::ContractViolation);
}

}  // namespace
