#include "core/evaluation.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace {

using namespace rrp::core;

EvaluationConfig small_config() {
  EvaluationConfig cfg;
  cfg.vm = rrp::market::VmClass::C1Medium;
  cfg.eval_hours = 24;
  cfg.trials = 4;
  cfg.window_shift_hours = 48;
  cfg.seed = 99;
  return cfg;
}

TEST(Evaluation, TrialInputsAreDistinctButReproducible) {
  const auto cfg = small_config();
  const auto a0 = make_trial_inputs(cfg, 0);
  const auto a0b = make_trial_inputs(cfg, 0);
  const auto a1 = make_trial_inputs(cfg, 1);
  EXPECT_EQ(a0.demand, a0b.demand);
  EXPECT_EQ(a0.actual_spot, a0b.actual_spot);
  EXPECT_NE(a0.demand, a1.demand);
  EXPECT_NE(a0.actual_spot, a1.actual_spot);
}

TEST(Evaluation, StatsAreInternallyConsistent) {
  const auto cfg = small_config();
  const auto result = evaluate_policies(
      cfg, {det_exp_mean_policy(), sto_exp_mean_policy()});
  ASSERT_EQ(result.policies.size(), 2u);
  for (const auto& p : result.policies) {
    ASSERT_EQ(p.per_trial_cost.size(), cfg.trials);
    double mean = 0.0;
    for (double c : p.per_trial_cost) mean += c;
    mean /= static_cast<double>(cfg.trials);
    EXPECT_NEAR(p.mean_cost, mean, 1e-12);
    EXPECT_GE(p.ci_half_width, 0.0);
    EXPECT_GE(p.mean_overpay, -1e-9);  // ideal is a lower bound
  }
  EXPECT_GT(result.mean_ideal_cost, 0.0);
  EXPECT_LT(result.mean_ideal_cost, result.policies[0].mean_cost + 1e-9);
}

TEST(Evaluation, ByNameLookup) {
  const auto cfg = small_config();
  const auto result = evaluate_policies(cfg, {no_plan_policy()});
  EXPECT_EQ(result.by_name("no-plan").policy, "no-plan");
  EXPECT_THROW(result.by_name("nope"), rrp::InvalidArgument);
}

TEST(Evaluation, PairedTrialsShareInputs) {
  // Because trials are paired, the no-plan policy must cost at least as
  // much as det-exp-mean in EVERY trial, not just on average (planning
  // dominates pointwise when prices never exceed lambda... it does not
  // in general, but no-plan pays lambda always while det pays at most
  // lambda per rental and rents no more often than every slot).
  const auto cfg = small_config();
  const auto result = evaluate_policies(
      cfg, {no_plan_policy(), det_exp_mean_policy()});
  const auto& naive = result.by_name("no-plan");
  const auto& det = result.by_name("det-exp-mean");
  for (std::size_t t = 0; t < cfg.trials; ++t)
    EXPECT_LE(det.per_trial_cost[t], naive.per_trial_cost[t] + 1e-6);
}

TEST(Evaluation, Validation) {
  auto cfg = small_config();
  cfg.trials = 1;
  EXPECT_THROW(evaluate_policies(cfg, {no_plan_policy()}),
               rrp::ContractViolation);
  cfg = small_config();
  EXPECT_THROW(evaluate_policies(cfg, {}), rrp::ContractViolation);
  // Window shifted past the trace's end must be caught.
  cfg = small_config();
  cfg.window_shift_hours = 24 * 5000;
  EXPECT_THROW(make_trial_inputs(cfg, 3), rrp::ContractViolation);
}

}  // namespace
