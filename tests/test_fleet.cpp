#include "core/fleet.hpp"

#include <gtest/gtest.h>

#include "common/deadline.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/demand.hpp"
#include "core/wagner_whitin.hpp"

namespace {

using namespace rrp::core;
using rrp::market::VmClass;

std::vector<FleetEntry> paper_fleet(std::uint64_t seed,
                                    std::size_t horizon = 24) {
  rrp::Rng rng(seed);
  std::vector<FleetEntry> entries;
  std::size_t n = 2;
  for (VmClass vm : rrp::market::evaluation_classes()) {
    FleetEntry e;
    e.vm = vm;
    e.instances = n++;
    rrp::Rng stream = rng.split();
    // Total demand scales with the instance count.
    DemandConfig cfg;
    cfg.mean = 0.4 * static_cast<double>(e.instances);
    cfg.sd = 0.2;
    e.total_demand = generate_demand(horizon, cfg, stream);
    entries.push_back(std::move(e));
  }
  return entries;
}

TEST(Fleet, ValidationRejectsBadInput) {
  EXPECT_THROW(plan_fleet({}), rrp::ContractViolation);
  auto entries = paper_fleet(1);
  entries[1].total_demand.pop_back();  // horizon mismatch
  EXPECT_THROW(plan_fleet(entries), rrp::ContractViolation);
  entries = paper_fleet(2);
  entries[0].instances = 0;
  EXPECT_THROW(plan_fleet(entries), rrp::ContractViolation);
}

TEST(Fleet, TotalIsSumOfClassCosts) {
  const auto plan = plan_fleet(paper_fleet(3));
  ASSERT_EQ(plan.classes.size(), 3u);
  double sum = 0.0;
  for (const auto& c : plan.classes) sum += c.class_cost.total();
  EXPECT_NEAR(plan.total_cost(), sum, 1e-9);
}

TEST(Fleet, ClassCostIsPerInstanceTimesN) {
  // The paper's decomposition: overall = n x per-instance cost.
  const auto plan = plan_fleet(paper_fleet(4));
  for (const auto& c : plan.classes) {
    EXPECT_NEAR(c.class_cost.total(),
                c.per_instance.cost.total() *
                    static_cast<double>(c.instances),
                1e-9);
  }
}

TEST(Fleet, MatchesIndependentPerInstanceSolves) {
  const auto entries = paper_fleet(5);
  const auto plan = plan_fleet(entries);
  for (std::size_t i = 0; i < entries.size(); ++i) {
    DrrpInstance inst;
    inst.vm = entries[i].vm;
    const double n = static_cast<double>(entries[i].instances);
    for (double d : entries[i].total_demand)
      inst.demand.push_back(d / n);
    inst.compute_price.assign(
        inst.demand.size(),
        rrp::market::info(entries[i].vm).on_demand_hourly);
    const RentalPlan expected = solve_drrp_wagner_whitin(inst);
    EXPECT_NEAR(plan.classes[i].per_instance.cost.total(),
                expected.cost.total(), 1e-9);
  }
}

TEST(Fleet, PlannedNeverWorseThanNoPlan) {
  const auto entries = paper_fleet(6);
  const auto planned = plan_fleet(entries);
  const auto naive = no_plan_fleet(entries);
  EXPECT_LE(planned.total_cost(), naive.total_cost() + 1e-9);
  // And per class as well.
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_LE(planned.classes[i].class_cost.total(),
              naive.classes[i].class_cost.total() + 1e-9);
  }
}

TEST(Fleet, CustomPricesRespected) {
  auto entries = paper_fleet(7, 12);
  entries[0].compute_price.assign(12, 0.01);  // nearly free compute
  const auto plan = plan_fleet(entries);
  // With compute this cheap the planner rents almost every demand slot
  // (no holding); compute share of class 0 cost must be small.
  const auto& c0 = plan.classes[0].class_cost;
  EXPECT_LT(c0.compute / c0.total(), 0.25);
}

TEST(Fleet, SingleClassSingleInstanceDegeneratesToDrrp) {
  rrp::Rng rng(8);
  FleetEntry e;
  e.vm = VmClass::M1Large;
  e.instances = 1;
  e.total_demand = generate_demand(24, DemandConfig{}, rng);
  const auto plan = plan_fleet({e});

  DrrpInstance inst;
  inst.vm = e.vm;
  inst.demand = e.total_demand;
  inst.compute_price.assign(24, 0.4);
  const RentalPlan expected = solve_drrp_wagner_whitin(inst);
  EXPECT_NEAR(plan.total_cost(), expected.cost.total(), 1e-9);
}

TEST(FleetDeadline, ExpiredDeadlineThrowsAcrossThePool) {
  // The per-class solves run on the global thread pool; an expired
  // deadline must surface as TimeLimitExceeded on the calling thread.
  const auto entries = paper_fleet(31);
  rrp::common::FakeClock clock(100.0);
  const auto d = rrp::common::Deadline::after(0.0, clock);
  EXPECT_THROW(
      plan_fleet(entries, rrp::market::CostModel::paper_defaults(), d),
      rrp::TimeLimitExceeded);
}

TEST(FleetDeadline, GenerousDeadlineMatchesUnlimited) {
  const auto entries = paper_fleet(32);
  rrp::common::FakeClock clock;
  const auto d = rrp::common::Deadline::after(1e9, clock);
  const FleetPlan bounded =
      plan_fleet(entries, rrp::market::CostModel::paper_defaults(), d);
  const FleetPlan unbounded = plan_fleet(entries);
  EXPECT_NEAR(bounded.total_cost(), unbounded.total_cost(), 1e-12);
}

}  // namespace
