#include "milp/branch_and_bound.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/deadline.hpp"
#include "common/error.hpp"
#include "common/fault_injection.hpp"
#include "common/rng.hpp"

namespace {

using namespace rrp::milp;

// Knapsack large enough that the solve takes many nodes (for deadline
// tests) but still has a known structure.
Model big_knapsack(std::uint64_t seed, int items = 25) {
  rrp::Rng rng(seed);
  Model m;
  LinExpr value, weight;
  for (int i = 0; i < items; ++i) {
    const Var b = m.add_binary();
    value += rng.uniform(1.0, 30.0) * LinExpr(b);
    weight += rng.uniform(1.0, 12.0) * LinExpr(b);
  }
  m.set_objective(value, Objective::Maximize);
  m.add_constraint(std::move(weight) <= 40.0);
  return m;
}

TEST(BranchAndBound, SolvesPureLpModel) {
  Model m;
  const Var x = m.add_continuous(0.0, 4.0);
  const Var y = m.add_continuous(0.0, 4.0);
  m.set_objective(LinExpr(x) + LinExpr(y), Objective::Maximize);
  m.add_constraint(LinExpr(x) + 2.0 * LinExpr(y) <= 6.0);
  const MipResult r = solve(m);
  ASSERT_EQ(r.status, MipStatus::Optimal);
  EXPECT_NEAR(r.objective, 5.0, 1e-6);  // x=4, y=1
}

TEST(BranchAndBound, SolvesClassicKnapsack) {
  // max 10a + 13b + 7c, 3a + 4b + 2c <= 6, binary -> a=c=1 obj 17? Check:
  // a+c weight 5 value 17; b+c weight 6 value 20. Optimum {b, c} = 20.
  Model m;
  const Var a = m.add_binary("a");
  const Var b = m.add_binary("b");
  const Var c = m.add_binary("c");
  m.set_objective(10.0 * LinExpr(a) + 13.0 * LinExpr(b) + 7.0 * LinExpr(c),
                  Objective::Maximize);
  m.add_constraint(3.0 * LinExpr(a) + 4.0 * LinExpr(b) + 2.0 * LinExpr(c) <=
                   6.0);
  const MipResult r = solve(m);
  ASSERT_EQ(r.status, MipStatus::Optimal);
  EXPECT_NEAR(r.objective, 20.0, 1e-6);
  EXPECT_NEAR(r.x[a.id], 0.0, 1e-6);
  EXPECT_NEAR(r.x[b.id], 1.0, 1e-6);
  EXPECT_NEAR(r.x[c.id], 1.0, 1e-6);
}

TEST(BranchAndBound, IntegerRoundingNotEnough) {
  // max x + y s.t. -2x + 2y >= 1, 3x + y <= 10, x,y integer.
  // LP relaxation is fractional; optimal integer solution differs from
  // naive rounding.
  Model m;
  const Var x = m.add_integer(0.0, 10.0);
  const Var y = m.add_integer(0.0, 10.0);
  m.set_objective(LinExpr(x) + LinExpr(y), Objective::Maximize);
  m.add_constraint(-2.0 * LinExpr(x) + 2.0 * LinExpr(y) >= 1.0);
  m.add_constraint(3.0 * LinExpr(x) + LinExpr(y) <= 10.0);
  const MipResult r = solve(m);
  ASSERT_EQ(r.status, MipStatus::Optimal);
  // y >= x + 0.5 -> y >= x+1; 3x + y <= 10. x=2,y=4 -> 6. Check x=1,y=7:
  // -2+14 >= 1 ok, 3+7=10 ok -> 8. x=0,y=10: 20 >= 1, 10 <= 10 -> 10.
  EXPECT_NEAR(r.objective, 10.0, 1e-6);
}

TEST(BranchAndBound, InfeasibleIntegerModelDetected) {
  // 0.5 <= 2x <= 0.9 has no integer solution.
  Model m;
  const Var x = m.add_integer(0.0, 10.0);
  m.set_objective(LinExpr(x), Objective::Minimize);
  Constraint c{2.0 * LinExpr(x), 0.5, 0.9};
  m.add_constraint(std::move(c));
  const MipResult r = solve(m);
  EXPECT_EQ(r.status, MipStatus::Infeasible);
}

TEST(BranchAndBound, LpInfeasibleModelDetected) {
  Model m;
  const Var x = m.add_binary();
  m.set_objective(LinExpr(x), Objective::Minimize);
  m.add_constraint(LinExpr(x) >= 2.0);
  EXPECT_EQ(solve(m).status, MipStatus::Infeasible);
}

TEST(BranchAndBound, UnboundedModelDetected) {
  Model m;
  const Var x = m.add_continuous(0.0, rrp::lp::kInfinity);
  const Var b = m.add_binary();
  m.set_objective(LinExpr(x) + LinExpr(b), Objective::Maximize);
  m.add_constraint(LinExpr(x) - LinExpr(b) >= 0.0);
  EXPECT_EQ(solve(m).status, MipStatus::Unbounded);
}

TEST(BranchAndBound, ObjectiveConstantIncluded) {
  Model m;
  const Var x = m.add_binary();
  m.set_objective(LinExpr(x) + 100.0, Objective::Minimize);
  m.add_constraint(LinExpr(x) >= 1.0);
  const MipResult r = solve(m);
  ASSERT_EQ(r.status, MipStatus::Optimal);
  EXPECT_NEAR(r.objective, 101.0, 1e-6);
}

TEST(BranchAndBound, DepthFirstAndBestBoundAgree) {
  rrp::Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    Model m;
    std::vector<Var> items;
    LinExpr value, weight;
    for (int i = 0; i < 10; ++i) {
      items.push_back(m.add_binary());
      value += rng.uniform(1.0, 20.0) * LinExpr(items.back());
      weight += rng.uniform(1.0, 10.0) * LinExpr(items.back());
    }
    m.set_objective(value, Objective::Maximize);
    m.add_constraint(std::move(weight) <= 25.0);

    BnbOptions best_bound;
    best_bound.node_selection = NodeSelection::BestBound;
    BnbOptions dfs;
    dfs.node_selection = NodeSelection::DepthFirst;
    const MipResult a = solve(m, best_bound);
    const MipResult b = solve(m, dfs);
    ASSERT_EQ(a.status, MipStatus::Optimal);
    ASSERT_EQ(b.status, MipStatus::Optimal);
    EXPECT_NEAR(a.objective, b.objective, 1e-5) << "trial " << trial;
  }
}

TEST(BranchAndBound, BranchingRulesAgreeOnOptimum) {
  rrp::Rng rng(78);
  for (int trial = 0; trial < 6; ++trial) {
    Model m;
    LinExpr value, w1, w2;
    for (int i = 0; i < 8; ++i) {
      const Var b = m.add_binary();
      value += rng.uniform(1.0, 15.0) * LinExpr(b);
      w1 += rng.uniform(1.0, 8.0) * LinExpr(b);
      w2 += rng.uniform(1.0, 8.0) * LinExpr(b);
    }
    m.set_objective(value, Objective::Maximize);
    m.add_constraint(std::move(w1) <= 18.0);
    m.add_constraint(std::move(w2) <= 15.0);

    double reference = 0.0;
    bool first = true;
    for (Branching rule : {Branching::MostFractional,
                           Branching::FirstFractional,
                           Branching::PseudoCost}) {
      BnbOptions opt;
      opt.branching = rule;
      const MipResult r = solve(m, opt);
      ASSERT_EQ(r.status, MipStatus::Optimal);
      if (first) {
        reference = r.objective;
        first = false;
      } else {
        EXPECT_NEAR(r.objective, reference, 1e-5);
      }
    }
  }
}

TEST(BranchAndBound, SolutionIsIntegral) {
  Model m;
  const Var x = m.add_integer(0.0, 100.0);
  const Var y = m.add_continuous(0.0, 100.0);
  m.set_objective(LinExpr(x) + LinExpr(y), Objective::Maximize);
  m.add_constraint(2.0 * LinExpr(x) + 3.0 * LinExpr(y) <= 12.7);
  const MipResult r = solve(m);
  ASSERT_EQ(r.status, MipStatus::Optimal);
  EXPECT_NEAR(r.x[x.id], std::round(r.x[x.id]), 1e-9);
}

TEST(BranchAndBound, NodeLimitReportsIncumbentState) {
  rrp::Rng rng(79);
  Model m;
  LinExpr value, weight;
  for (int i = 0; i < 25; ++i) {
    const Var b = m.add_binary();
    value += rng.uniform(1.0, 30.0) * LinExpr(b);
    weight += rng.uniform(1.0, 12.0) * LinExpr(b);
  }
  m.set_objective(value, Objective::Maximize);
  m.add_constraint(std::move(weight) <= 40.0);
  BnbOptions opt;
  opt.max_nodes = 3;
  opt.rounding_heuristic = true;
  const MipResult r = solve(m, opt);
  // With only 3 nodes we may or may not have an incumbent from the
  // heuristic, but the status must reflect it faithfully.
  if (r.status == MipStatus::NodeLimit) {
    EXPECT_FALSE(r.x.empty());
    EXPECT_GT(r.gap(), 0.0);
  } else if (r.status == MipStatus::NoIncumbent) {
    EXPECT_TRUE(r.x.empty());
  }
}

TEST(BranchAndBound, GapIsZeroAtProvenOptimum) {
  Model m;
  const Var x = m.add_binary();
  m.set_objective(LinExpr(x), Objective::Maximize);
  const MipResult r = solve(m);
  ASSERT_EQ(r.status, MipStatus::Optimal);
  EXPECT_NEAR(r.gap(), 0.0, 1e-9);
  EXPECT_NEAR(r.objective, 1.0, 1e-9);
}

TEST(BranchAndBound, StatusStrings) {
  EXPECT_STREQ(to_string(MipStatus::Optimal), "optimal");
  EXPECT_STREQ(to_string(MipStatus::NodeLimit), "node-limit");
  EXPECT_STREQ(to_string(MipStatus::TimeLimit), "time-limit");
  EXPECT_STREQ(to_string(MipStatus::NoIncumbent), "no-incumbent");
  EXPECT_STREQ(to_string(MipStatus::Infeasible), "infeasible");
  EXPECT_STREQ(to_string(MipStatus::Unbounded), "unbounded");
}

TEST(BranchAndBound, GapEdgeCases) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  MipResult r;
  // No incumbent (x empty) -> infinite gap regardless of the bound.
  r.best_bound = 12.0;
  EXPECT_EQ(r.gap(), kInf);
  // Incumbent but non-finite proven bound (e.g. deadline expired before
  // any node LP finished) -> still infinite, never NaN.
  r.x = {1.0};
  r.objective = 12.0;
  r.best_bound = -kInf;
  EXPECT_EQ(r.gap(), kInf);
  r.best_bound = std::nan("");
  EXPECT_EQ(r.gap(), kInf);
  // Matching bound -> zero.
  r.best_bound = 12.0;
  EXPECT_NEAR(r.gap(), 0.0, 1e-12);
}

TEST(BranchAndBound, ExpiredDeadlineOnEntryReturnsImmediately) {
  const Model m = big_knapsack(81);
  rrp::common::FakeClock clock(100.0);
  BnbOptions opt;
  opt.deadline = rrp::common::Deadline::after(0.0, clock);
  const std::uint64_t reads_before = clock.reads();
  const MipResult r = solve(m, opt);
  EXPECT_EQ(r.status, MipStatus::NoIncumbent);
  EXPECT_EQ(r.nodes_explored, 0u);
  EXPECT_TRUE(r.x.empty());
  // Bound must stay trivially valid for a maximisation: +infinity.
  EXPECT_EQ(r.best_bound, std::numeric_limits<double>::infinity());
  // O(1): one deadline poll, no node exploration, no LP work.
  EXPECT_EQ(clock.reads(), reads_before + 1);
  EXPECT_EQ(r.lp_iterations, 0u);
}

TEST(BranchAndBound, MidSolveDeadlineReturnsIncumbentWithValidBound) {
  // Minimisation variant so the bound inequality direction is explicit.
  rrp::Rng rng(83);
  Model m;
  LinExpr cost, cover;
  for (int i = 0; i < 20; ++i) {
    const Var b = m.add_binary();
    cost += rng.uniform(1.0, 30.0) * LinExpr(b);
    cover += rng.uniform(1.0, 12.0) * LinExpr(b);
  }
  m.set_objective(cost, Objective::Minimize);
  m.add_constraint(std::move(cover) >= 40.0);

  // Measure the full solve's deadline-poll count with a clock that
  // advances one fake second per read: the generous budget never
  // expires, and reads() tells us how many polls an optimal run takes.
  rrp::common::FakeClock probe;
  probe.set_auto_advance(1.0);
  BnbOptions probe_opt;
  probe_opt.deadline = rrp::common::Deadline::after(1e15, probe);
  const MipResult exact = solve(m, probe_opt);
  ASSERT_EQ(exact.status, MipStatus::Optimal);
  const double total_polls = static_cast<double>(probe.reads());
  ASSERT_GT(total_polls, 8.0) << "model solved too fast to interrupt";

  // Expire the deadline at increasing fractions of the full solve; the
  // pivot/node sequence is deterministic, so some cut-off interrupts
  // after an incumbent exists but before optimality is proven.
  bool interrupted_with_incumbent = false;
  for (const double frac : {0.5, 0.75, 0.9, 0.97}) {
    rrp::common::FakeClock clock;
    clock.set_auto_advance(1.0);
    BnbOptions opt;
    opt.deadline = rrp::common::Deadline::after(frac * total_polls, clock);
    const MipResult r = solve(m, opt);
    ASSERT_NE(r.status, MipStatus::Optimal) << "cut-off did not interrupt";
    if (r.status != MipStatus::TimeLimit) continue;
    EXPECT_GE(r.nodes_explored, 1u);
    ASSERT_FALSE(r.x.empty());
    // Anytime contract (minimisation): bound <= optimum <= incumbent.
    EXPECT_LE(r.best_bound, exact.objective + 1e-6);
    EXPECT_GE(r.objective, exact.objective - 1e-6);
    EXPECT_LE(r.best_bound, r.objective + 1e-6);
    interrupted_with_incumbent = true;
  }
  EXPECT_TRUE(interrupted_with_incumbent);
}

TEST(BranchAndBound, RecoveryLadderRetriesInjectedLpFailures) {
  const Model m = big_knapsack(85, 12);
  const MipResult exact = solve(m);
  ASSERT_EQ(exact.status, MipStatus::Optimal);

  // Failing the first 1..3 lp::solve attempts lands on successive rungs
  // of the ladder (Bland -> forced refactorisation -> perturbation); the
  // solve must still reach the same optimum and report the recovery.
  for (std::size_t failures : {1u, 2u, 3u}) {
    rrp::testing::FaultInjector inj;
    inj.arm_lp_failures(failures);
    BnbOptions opt;
    opt.lp.fault_injector = &inj;
    const MipResult r = solve(m, opt);
    ASSERT_EQ(r.status, MipStatus::Optimal) << failures << " failures";
    EXPECT_NEAR(r.objective, exact.objective, 1e-6);
    EXPECT_GE(r.lp_failures_recovered, 1u);
    EXPECT_EQ(inj.armed_lp_failures(), 0u);
  }
}

TEST(BranchAndBound, RecoveryLadderExhaustionEscalates) {
  const Model m = big_knapsack(85, 12);
  rrp::testing::FaultInjector inj;
  // Initial attempt + three retries all fail -> NumericalError escapes.
  inj.arm_lp_failures(4);
  BnbOptions opt;
  opt.lp.fault_injector = &inj;
  EXPECT_THROW(solve(m, opt), rrp::NumericalError);
}

}  // namespace
