#include "timeseries/optimize.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace {

using namespace rrp::ts;

TEST(NelderMead, MinimizesQuadratic1D) {
  auto fn = [](const std::vector<double>& x) {
    return (x[0] - 3.0) * (x[0] - 3.0);
  };
  const auto r = nelder_mead(fn, {0.0});
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 3.0, 1e-4);
  EXPECT_NEAR(r.value, 0.0, 1e-7);
}

TEST(NelderMead, MinimizesShiftedQuadratic3D) {
  auto fn = [](const std::vector<double>& x) {
    double s = 0.0;
    const double target[3] = {1.0, -2.0, 0.5};
    for (int i = 0; i < 3; ++i) s += (x[i] - target[i]) * (x[i] - target[i]);
    return s;
  };
  const auto r = nelder_mead(fn, {0.0, 0.0, 0.0});
  EXPECT_NEAR(r.x[0], 1.0, 1e-3);
  EXPECT_NEAR(r.x[1], -2.0, 1e-3);
  EXPECT_NEAR(r.x[2], 0.5, 1e-3);
}

TEST(NelderMead, SolvesRosenbrock) {
  auto fn = [](const std::vector<double>& x) {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    return a * a + 100.0 * b * b;
  };
  NelderMeadOptions opt;
  opt.max_evaluations = 50000;
  const auto r = nelder_mead(fn, {-1.2, 1.0}, opt);
  EXPECT_NEAR(r.x[0], 1.0, 1e-3);
  EXPECT_NEAR(r.x[1], 1.0, 1e-3);
}

TEST(NelderMead, HandlesInfiniteRegions) {
  // Constrained region: reject x < 0 with +inf; optimum at boundary-ish.
  auto fn = [](const std::vector<double>& x) {
    if (x[0] < 0.0) return std::numeric_limits<double>::infinity();
    return (x[0] - 0.5) * (x[0] - 0.5) + 1.0;
  };
  const auto r = nelder_mead(fn, {2.0});
  EXPECT_NEAR(r.x[0], 0.5, 1e-3);
  EXPECT_NEAR(r.value, 1.0, 1e-6);
}

TEST(NelderMead, NanTreatedAsRejection) {
  auto fn = [](const std::vector<double>& x) {
    if (x[0] > 10.0) return std::nan("");
    return (x[0] - 1.0) * (x[0] - 1.0);
  };
  const auto r = nelder_mead(fn, {9.5});
  EXPECT_NEAR(r.x[0], 1.0, 1e-3);
}

TEST(NelderMead, RespectsEvaluationBudget) {
  int calls = 0;
  auto fn = [&calls](const std::vector<double>& x) {
    ++calls;
    return x[0] * x[0];
  };
  NelderMeadOptions opt;
  opt.max_evaluations = 50;
  const auto r = nelder_mead(fn, {100.0}, opt);
  EXPECT_LE(r.evaluations, 52u);  // initial simplex + loop granularity
  EXPECT_LE(calls, 52);
}

TEST(NelderMead, EmptyStartRejected) {
  auto fn = [](const std::vector<double>&) { return 0.0; };
  EXPECT_THROW(nelder_mead(fn, {}), rrp::ContractViolation);
}

TEST(NelderMead, ZeroStartPointStillPerturbs) {
  // The initial step must handle coordinates at exactly zero.
  auto fn = [](const std::vector<double>& x) {
    return (x[0] + 4.0) * (x[0] + 4.0);
  };
  const auto r = nelder_mead(fn, {0.0});
  EXPECT_NEAR(r.x[0], -4.0, 1e-3);
}

}  // namespace
