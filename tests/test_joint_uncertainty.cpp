// Joint (price, demand) scenario trees — the paper's stated future
// work ("stochastic optimization solutions for cloud resource
// provisioning with time-varying workloads") implemented on top of the
// per-vertex-demand SRRP generalisation.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/srrp_dp.hpp"

namespace {

using namespace rrp::core;

std::vector<std::vector<JointPoint>> simple_joint(std::size_t stages) {
  // Each stage: (cheap price, low demand) with p=0.5 and (dear price,
  // high demand) with p=0.5.
  std::vector<std::vector<JointPoint>> supports;
  for (std::size_t s = 0; s < stages; ++s) {
    std::vector<JointPoint> stage;
    stage.push_back({PricePoint{0.05, 0.5, false}, 0.2});
    stage.push_back({PricePoint{0.30, 0.5, false}, 0.8});
    supports.push_back(std::move(stage));
  }
  return supports;
}

SrrpInstance joint_instance(std::size_t stages) {
  auto [tree, vertex_demand] = build_joint_tree(simple_joint(stages));
  SrrpInstance inst;
  inst.demand.assign(stages, 0.0);  // placeholder; overridden per vertex
  inst.tree = std::move(tree);
  inst.vertex_demand = std::move(vertex_demand);
  return inst;
}

TEST(JointTree, VertexDemandAssignment) {
  const auto inst = joint_instance(2);
  const auto& s1 = inst.tree.stage_vertices(1);
  ASSERT_EQ(s1.size(), 2u);
  EXPECT_DOUBLE_EQ(inst.demand_at_vertex(s1[0]), 0.2);
  EXPECT_DOUBLE_EQ(inst.demand_at_vertex(s1[1]), 0.8);
  // Stage 2: each parent branches into (0.2, 0.8) again.
  const auto& s2 = inst.tree.stage_vertices(2);
  ASSERT_EQ(s2.size(), 4u);
  EXPECT_DOUBLE_EQ(inst.demand_at_vertex(s2[0]), 0.2);
  EXPECT_DOUBLE_EQ(inst.demand_at_vertex(s2[1]), 0.8);
  EXPECT_DOUBLE_EQ(inst.demand_at_vertex(s2[2]), 0.2);
  EXPECT_DOUBLE_EQ(inst.demand_at_vertex(s2[3]), 0.8);
}

TEST(JointTree, ValidationChecksVertexDemand) {
  auto inst = joint_instance(2);
  inst.vertex_demand.pop_back();
  EXPECT_THROW(inst.validate(), rrp::ContractViolation);
  inst = joint_instance(2);
  inst.vertex_demand[1] = -0.1;
  EXPECT_THROW(inst.validate(), rrp::ContractViolation);
}

TEST(JointUncertainty, DpAndMilpAgree) {
  for (std::size_t stages : {2u, 3u}) {
    const auto inst = joint_instance(stages);
    const auto dp = solve_srrp_tree_dp(inst);
    const auto agg = solve_srrp(inst, {}, SrrpFormulation::Aggregated);
    const auto fl = solve_srrp(inst, {}, SrrpFormulation::FacilityLocation);
    ASSERT_TRUE(agg.feasible());
    ASSERT_TRUE(fl.feasible());
    EXPECT_NEAR(dp.expected_cost, agg.expected_cost, 1e-6)
        << stages << " stages";
    EXPECT_NEAR(dp.expected_cost, fl.expected_cost, 1e-6)
        << stages << " stages";
  }
}

TEST(JointUncertainty, BalanceHoldsPerScenario) {
  const auto inst = joint_instance(3);
  const auto dp = solve_srrp_tree_dp(inst);
  for (std::size_t leaf : inst.tree.leaves()) {
    double store = inst.initial_storage;
    for (std::size_t v : inst.tree.path_from_root(leaf)) {
      store += dp.alpha[v] - inst.demand_at_vertex(v);
      EXPECT_GT(store, -1e-7);
      store = std::max(store, 0.0);
      EXPECT_NEAR(store, dp.beta[v], 1e-7);
    }
  }
}

TEST(JointUncertainty, HighDemandStatesGetMoreGeneration) {
  // Price identical in both states; only demand differs.  The recourse
  // must generate more in high-demand states.
  std::vector<std::vector<JointPoint>> supports = {
      {{PricePoint{0.06, 0.5, false}, 0.2},
       {PricePoint{0.0601, 0.5, false}, 1.0}}};
  auto [tree, vertex_demand] = build_joint_tree(supports);
  SrrpInstance inst;
  inst.demand = {0.0};
  inst.tree = std::move(tree);
  inst.vertex_demand = std::move(vertex_demand);
  const auto dp = solve_srrp_tree_dp(inst);
  const auto& s1 = inst.tree.stage_vertices(1);
  EXPECT_LT(dp.alpha[s1[0]], dp.alpha[s1[1]]);
  EXPECT_NEAR(dp.alpha[s1[0]], 0.2, 1e-9);
  EXPECT_NEAR(dp.alpha[s1[1]], 1.0, 1e-9);
}

TEST(JointUncertainty, StochasticDemandPlanBeatsMeanDemandPlan) {
  // Executing the joint-tree policy across scenarios must cost no more
  // in expectation than planning against the mean demand and patching
  // shortfalls with emergency on-demand generation.
  const auto inst = joint_instance(3);
  const auto dp = solve_srrp_tree_dp(inst);

  // Mean-demand deterministic plan (price known mean, demand mean).
  DrrpInstance det;
  det.demand.assign(3, 0.5);              // E[demand]
  det.compute_price.assign(3, 0.175);     // E[price]
  const RentalPlan fixed = solve_drrp(det);
  ASSERT_TRUE(fixed.feasible());

  // Expected realised cost of the fixed plan on the joint tree with
  // shortfalls patched at the realised price (chi forced where needed).
  double fixed_expected = 0.0;
  for (std::size_t leaf : inst.tree.leaves()) {
    double store = inst.initial_storage;
    double cost = 0.0;
    const auto path = inst.tree.path_from_root(leaf);
    for (std::size_t j = 0; j < path.size(); ++j) {
      const std::size_t v = path[j];
      const double d = inst.demand_at_vertex(v);
      double alpha = fixed.alpha[j];
      bool rented = fixed.chi[j] != 0;
      if (store + alpha < d) {  // emergency top-up
        alpha = d - store;
        rented = true;
      }
      store = std::max(store + alpha - d, 0.0);
      cost += inst.costs.generation_cost(alpha, j) +
              inst.costs.holding(j) * store +
              inst.costs.delivery_cost(d, j) +
              (rented ? inst.tree.vertex(v).price : 0.0);
    }
    fixed_expected += inst.tree.vertex(leaf).path_prob * cost;
  }
  EXPECT_LE(dp.expected_cost, fixed_expected + 1e-6);
}

TEST(JointTree, RejectsEmptySupports) {
  std::vector<std::vector<JointPoint>> empty_stage = {{}};
  EXPECT_THROW(build_joint_tree(empty_stage), rrp::ContractViolation);
  std::vector<std::vector<JointPoint>> neg = {
      {{PricePoint{0.05, 1.0, false}, -0.5}}};
  EXPECT_THROW(build_joint_tree(neg), rrp::ContractViolation);
}

}  // namespace
