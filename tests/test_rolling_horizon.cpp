#include "core/rolling_horizon.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/demand.hpp"
#include "market/trace_generator.hpp"

namespace {

using namespace rrp::core;
using rrp::market::VmClass;

SimulationInputs make_inputs(VmClass vm, std::size_t eval_hours,
                             std::uint64_t seed) {
  const auto trace = rrp::market::generate_trace(vm, seed);
  const auto hourly = trace.hourly();
  const std::size_t history_hours = 24 * 60;
  SimulationInputs in;
  in.vm = vm;
  in.history.assign(hourly.begin(),
                    hourly.begin() + static_cast<long>(history_hours));
  in.actual_spot.assign(
      hourly.begin() + static_cast<long>(history_hours),
      hourly.begin() + static_cast<long>(history_hours + eval_hours));
  rrp::Rng rng(seed ^ 0xdeadbeefULL);
  in.demand = generate_demand(eval_hours, DemandConfig{}, rng);
  return in;
}

// Expects a specific substring in the InvalidArgument message, so the
// error actually names the offending field/slot.
template <typename Fn>
void expect_invalid(Fn&& fn, const std::string& needle) {
  try {
    fn();
    FAIL() << "expected InvalidArgument mentioning \"" << needle << "\"";
  } catch (const rrp::InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "message was: " << e.what();
  }
}

TEST(RollingHorizon, InputValidation) {
  SimulationInputs in;
  expect_invalid([&] { in.validate(); }, "demand is empty");
  in = make_inputs(VmClass::C1Medium, 12, 1);
  in.actual_spot.pop_back();
  expect_invalid([&] { in.validate(); }, "actual_spot has 11 slots");
}

TEST(RollingHorizon, InputValidationRejectsNaNAndNegatives) {
  const auto good = make_inputs(VmClass::C1Medium, 12, 1);
  EXPECT_NO_THROW(good.validate());

  auto in = good;
  in.demand[3] = std::nan("");
  expect_invalid([&] { in.validate(); }, "demand[3] is NaN");

  in = good;
  in.demand[5] = -0.1;
  expect_invalid([&] { in.validate(); }, "demand[5]");

  in = good;
  in.demand[0] = std::numeric_limits<double>::infinity();
  expect_invalid([&] { in.validate(); }, "demand[0]");

  in = good;
  in.actual_spot[7] = std::nan("");
  expect_invalid([&] { in.validate(); }, "actual_spot[7] is NaN");

  in = good;
  in.actual_spot[2] = 0.0;
  expect_invalid([&] { in.validate(); }, "actual_spot[2]");

  in = good;
  in.history[4] = -1.0;
  expect_invalid([&] { in.validate(); }, "history[4]");

  in = good;
  in.history.clear();
  expect_invalid([&] { in.validate(); }, "history is empty");

  in = good;
  in.initial_storage = std::nan("");
  expect_invalid([&] { in.validate(); }, "initial_storage is NaN");

  in = good;
  in.initial_storage = -1.0;
  expect_invalid([&] { in.validate(); }, "initial_storage");
}

TEST(RollingHorizon, NoPlanRentsEverySlotWithDemand) {
  const auto in = make_inputs(VmClass::C1Medium, 24, 2);
  const auto result = simulate_policy(in, no_plan_policy());
  ASSERT_EQ(result.slots.size(), 24u);
  for (std::size_t t = 0; t < 24; ++t) {
    EXPECT_TRUE(result.slots[t].rented) << "slot " << t;
    EXPECT_NEAR(result.slots[t].alpha, in.demand[t], 1e-9);
    EXPECT_NEAR(result.slots[t].inventory, 0.0, 1e-9);
  }
  EXPECT_EQ(result.rentals, 24u);
  // On-demand semantics: every slot pays lambda.
  EXPECT_NEAR(result.cost.compute, 24 * 0.2, 1e-9);
}

TEST(RollingHorizon, OracleNeverLosesAndPaysSpot) {
  const auto in = make_inputs(VmClass::M1Large, 24, 3);
  const auto result = simulate_policy(in, oracle_policy());
  EXPECT_EQ(result.out_of_bid_events, 0u);
  for (const auto& slot : result.slots) {
    if (slot.rented) {
      EXPECT_TRUE(slot.won);
      EXPECT_LT(slot.price_paid, rrp::market::info(VmClass::M1Large)
                                     .on_demand_hourly);
    }
  }
}

TEST(RollingHorizon, OnDemandPolicyAlwaysPaysLambda) {
  const auto in = make_inputs(VmClass::C1Medium, 24, 4);
  const auto result = simulate_policy(in, on_demand_policy());
  for (const auto& slot : result.slots) {
    if (slot.rented) {
      EXPECT_DOUBLE_EQ(slot.price_paid, 0.2);
    }
  }
  EXPECT_EQ(result.out_of_bid_events, 0u);
}

TEST(RollingHorizon, DemandAlwaysServed) {
  const auto in = make_inputs(VmClass::M1Large, 24, 5);
  for (const auto& policy :
       {no_plan_policy(), on_demand_policy(), det_exp_mean_policy(),
        sto_exp_mean_policy(), oracle_policy()}) {
    const auto result = simulate_policy(in, policy);
    double store = in.initial_storage;
    for (std::size_t t = 0; t < in.horizon(); ++t) {
      store += result.slots[t].alpha - in.demand[t];
      EXPECT_GT(store, -1e-6) << policy.name << " slot " << t;
      store = std::max(store, 0.0);
      EXPECT_NEAR(store, result.slots[t].inventory, 1e-6);
    }
  }
}

TEST(RollingHorizon, IdealCaseLowerBoundsEveryPolicy) {
  const auto in = make_inputs(VmClass::M1Large, 30, 6);
  const double ideal = ideal_case_cost(in);
  for (const auto& policy :
       {no_plan_policy(), on_demand_policy(), det_exp_mean_policy(),
        sto_exp_mean_policy(), oracle_policy()}) {
    const double cost = simulate_policy(in, policy).total_cost();
    EXPECT_GE(cost, ideal - 1e-6) << policy.name;
  }
}

TEST(RollingHorizon, RollingOracleNearlyMatchesIdealCase) {
  // The rolling oracle re-plans hourly with a 24h window of perfect
  // information; it should land within a few percent of the single
  // full-horizon clairvoyant solve.
  const auto in = make_inputs(VmClass::M1Large, 30, 6);
  const double ideal = ideal_case_cost(in);
  const double rolling = simulate_policy(in, oracle_policy()).total_cost();
  EXPECT_GE(rolling, ideal - 1e-6);
  EXPECT_LT(rolling, ideal * 1.15);
}

TEST(RollingHorizon, OnDemandOverpaysMost) {
  // Figure 12(a): the on-demand scheme yields the largest overpay.
  const auto in = make_inputs(VmClass::C1Medium, 36, 7);
  const double ideal = ideal_case_cost(in);
  const double on_demand =
      simulate_policy(in, on_demand_policy()).total_cost();
  const double det = simulate_policy(in, det_exp_mean_policy()).total_cost();
  const double sto = simulate_policy(in, sto_exp_mean_policy()).total_cost();
  EXPECT_GT(overpay_fraction(on_demand, ideal),
            overpay_fraction(det, ideal));
  EXPECT_GT(overpay_fraction(on_demand, ideal),
            overpay_fraction(sto, ideal));
}

TEST(RollingHorizon, PoliciesAreDeterministic) {
  const auto in = make_inputs(VmClass::C1Medium, 24, 8);
  const auto a = simulate_policy(in, det_exp_mean_policy());
  const auto b = simulate_policy(in, det_exp_mean_policy());
  EXPECT_DOUBLE_EQ(a.total_cost(), b.total_cost());
  EXPECT_EQ(a.rentals, b.rentals);
}

TEST(RollingHorizon, TransferOutConstantAcrossPolicies) {
  const auto in = make_inputs(VmClass::C1Medium, 24, 9);
  const auto a = simulate_policy(in, no_plan_policy());
  const auto b = simulate_policy(in, det_exp_mean_policy());
  EXPECT_NEAR(a.cost.transfer_out, b.cost.transfer_out, 1e-9);
}

TEST(RollingHorizon, OverpayFraction) {
  EXPECT_NEAR(overpay_fraction(12.0, 10.0), 0.2, 1e-12);
  EXPECT_NEAR(overpay_fraction(10.0, 10.0), 0.0, 1e-12);
  EXPECT_THROW(overpay_fraction(1.0, 0.0), rrp::ContractViolation);
}

TEST(RollingHorizon, LowFixedBidForcesOutOfBidEvents) {
  auto in = make_inputs(VmClass::C1Medium, 24, 10);
  PolicyConfig policy = det_exp_mean_policy();
  policy.name = "det-lowball";
  policy.bids = BidStrategy::FixedValue;
  policy.fixed_bid = 1e-3;  // below every realistic spot price
  const auto result = simulate_policy(in, policy);
  // Whenever the planner rents, the lowball bid loses and pays lambda.
  EXPECT_EQ(result.out_of_bid_events, result.rentals);
  for (const auto& slot : result.slots) {
    if (slot.rented) {
      EXPECT_DOUBLE_EQ(slot.price_paid, 0.2);
    }
  }
}

}  // namespace

// -- Re-plan cadence (paper Section V-D) --------------------------------

namespace {

TEST(ReplanCadence, CadenceOneMatchesOriginalBehaviour) {
  const auto in = make_inputs(VmClass::C1Medium, 24, 20);
  PolicyConfig every_slot = det_exp_mean_policy();
  every_slot.replan_every = 1;
  const auto a = simulate_policy(in, every_slot);
  const auto b = simulate_policy(in, det_exp_mean_policy());
  EXPECT_DOUBLE_EQ(a.total_cost(), b.total_cost());
}

class ReplanCadenceSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ReplanCadenceSweep, DemandServedAtEveryCadence) {
  const auto in = make_inputs(VmClass::M1Large, 30, 21);
  for (auto base : {det_exp_mean_policy(), sto_exp_mean_policy()}) {
    PolicyConfig policy = base;
    policy.replan_every = std::min<std::size_t>(GetParam(),
                                                policy.lookahead);
    const auto result = simulate_policy(in, policy);
    double store = in.initial_storage;
    for (std::size_t t = 0; t < in.horizon(); ++t) {
      store += result.slots[t].alpha - in.demand[t];
      EXPECT_GT(store, -1e-6) << policy.name << " cadence "
                              << policy.replan_every << " slot " << t;
      store = std::max(store, 0.0);
    }
    EXPECT_GE(result.total_cost(), ideal_case_cost(in) - 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ReplanCadenceSweep,
                         ::testing::Values(1, 2, 3, 6));

TEST(ReplanCadence, InfrequentReplanningStillReasonable) {
  // Re-planning every 6 slots must not blow costs up versus hourly:
  // stale plans lose some adaptivity but stay demand-feasible.
  const auto in = make_inputs(VmClass::C1Medium, 36, 22);
  PolicyConfig hourly = det_exp_mean_policy();
  PolicyConfig stale = det_exp_mean_policy();
  stale.replan_every = 6;
  const double c_hourly = simulate_policy(in, hourly).total_cost();
  const double c_stale = simulate_policy(in, stale).total_cost();
  EXPECT_LT(c_stale, 2.0 * c_hourly);
  EXPECT_GT(c_stale, 0.5 * c_hourly);
}

TEST(ReplanCadence, SrrpFollowsScenarioPathBetweenReplans) {
  // With cadence = lookahead the SRRP policy must execute one full tree
  // descent: every executed slot corresponds to one stage.
  const auto in = make_inputs(VmClass::M1Large, 12, 23);
  PolicyConfig policy = sto_exp_mean_policy();
  policy.replan_every = policy.lookahead;  // 6
  const auto result = simulate_policy(in, policy);
  ASSERT_EQ(result.slots.size(), 12u);
  // Costs are finite and demand was served (checked via inventory).
  for (const auto& slot : result.slots) EXPECT_GE(slot.inventory, -1e-9);
}

TEST(ReplanCadence, ValidationRejectsBadCadence) {
  PolicyConfig policy = det_exp_mean_policy();
  policy.replan_every = 0;
  EXPECT_THROW(policy.validate(), rrp::ContractViolation);
  policy.replan_every = policy.lookahead + 1;
  EXPECT_THROW(policy.validate(), rrp::ContractViolation);
}

}  // namespace
