#include "lp/simplex.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/deadline.hpp"
#include "common/error.hpp"
#include "common/fault_injection.hpp"

namespace {

using namespace rrp::lp;

// Multi-pivot LP used by the deadline tests (needs several iterations).
LinearProgram dense_lp() {
  LinearProgram lp;
  std::vector<std::size_t> vars;
  for (int i = 0; i < 12; ++i)
    vars.push_back(lp.add_variable(0.0, 10.0, 1.0 + 0.1 * i));
  lp.set_sense(Sense::Maximize);
  for (int r = 0; r < 8; ++r) {
    std::vector<Entry> row;
    for (int i = 0; i < 12; ++i)
      row.push_back({vars[i], 1.0 + ((r + i) % 3)});
    lp.add_row(std::move(row), -kInfinity, 30.0 + 2.0 * r);
  }
  return lp;
}

TEST(Simplex, SolvesTextbookMaximization) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18, x,y >= 0.
  // Optimum (2, 6) with objective 36 (Dantzig's classic).
  LinearProgram lp;
  const auto x = lp.add_variable(0.0, kInfinity, 3.0, "x");
  const auto y = lp.add_variable(0.0, kInfinity, 5.0, "y");
  lp.set_sense(Sense::Maximize);
  lp.add_row({{x, 1.0}}, -kInfinity, 4.0);
  lp.add_row({{y, 2.0}}, -kInfinity, 12.0);
  lp.add_row({{x, 3.0}, {y, 2.0}}, -kInfinity, 18.0);
  const Solution sol = solve(lp);
  ASSERT_EQ(sol.status, SolveStatus::Optimal);
  EXPECT_NEAR(sol.objective, 36.0, 1e-8);
  EXPECT_NEAR(sol.x[x], 2.0, 1e-8);
  EXPECT_NEAR(sol.x[y], 6.0, 1e-8);
}

TEST(Simplex, SolvesMinimizationWithEqualities) {
  // min x + 2y s.t. x + y = 10, x - y <= 4, x,y >= 0 -> (7,3)? No:
  // min pushes y as low as allowed: x - y <= 4 with x + y = 10 gives
  // x <= 7, y >= 3; objective x + 2y = (10 - y) + 2y = 10 + y -> y = 3.
  LinearProgram lp;
  const auto x = lp.add_variable(0.0, kInfinity, 1.0);
  const auto y = lp.add_variable(0.0, kInfinity, 2.0);
  lp.add_row({{x, 1.0}, {y, 1.0}}, 10.0, 10.0);
  lp.add_row({{x, 1.0}, {y, -1.0}}, -kInfinity, 4.0);
  const Solution sol = solve(lp);
  ASSERT_EQ(sol.status, SolveStatus::Optimal);
  EXPECT_NEAR(sol.objective, 13.0, 1e-8);
  EXPECT_NEAR(sol.x[x], 7.0, 1e-8);
  EXPECT_NEAR(sol.x[y], 3.0, 1e-8);
}

TEST(Simplex, DetectsInfeasibility) {
  LinearProgram lp;
  const auto x = lp.add_variable(0.0, 1.0, 1.0);
  lp.add_row({{x, 1.0}}, 5.0, kInfinity);  // x >= 5 with x <= 1
  EXPECT_EQ(solve(lp).status, SolveStatus::Infeasible);
}

TEST(Simplex, DetectsUnboundedness) {
  LinearProgram lp;
  const auto x = lp.add_variable(0.0, kInfinity, -1.0);  // min -x
  lp.add_row({{x, 1.0}}, 0.0, kInfinity);
  EXPECT_EQ(solve(lp).status, SolveStatus::Unbounded);
}

TEST(Simplex, BoundedAboveIsNotUnbounded) {
  LinearProgram lp;
  const auto x = lp.add_variable(0.0, 9.0, -1.0);
  lp.add_row({{x, 1.0}}, 0.0, kInfinity);
  const Solution sol = solve(lp);
  ASSERT_EQ(sol.status, SolveStatus::Optimal);
  EXPECT_NEAR(sol.x[x], 9.0, 1e-9);
}

TEST(Simplex, HandlesFreeVariables) {
  // min x + y with x free, y >= 0, x + y >= 3, x >= -5 (via row).
  LinearProgram lp;
  const auto x = lp.add_variable(-kInfinity, kInfinity, 1.0);
  const auto y = lp.add_variable(0.0, kInfinity, 1.0);
  lp.add_row({{x, 1.0}, {y, 1.0}}, 3.0, kInfinity);
  lp.add_row({{x, 1.0}}, -5.0, kInfinity);
  const Solution sol = solve(lp);
  ASSERT_EQ(sol.status, SolveStatus::Optimal);
  EXPECT_NEAR(sol.objective, 3.0, 1e-8);
}

TEST(Simplex, HandlesNegativeLowerBounds) {
  // min x s.t. x >= -7 via variable bound.
  LinearProgram lp;
  const auto x = lp.add_variable(-7.0, 3.0, 1.0);
  lp.add_row({{x, 1.0}}, -kInfinity, kInfinity);
  const Solution sol = solve(lp);
  ASSERT_EQ(sol.status, SolveStatus::Optimal);
  EXPECT_NEAR(sol.x[x], -7.0, 1e-9);
}

TEST(Simplex, RangedRowsActOnBothSides) {
  // min x + y s.t. 2 <= x + y <= 5, x,y in [0, 10].
  LinearProgram lp;
  const auto x = lp.add_variable(0.0, 10.0, 1.0);
  const auto y = lp.add_variable(0.0, 10.0, 1.0);
  lp.add_row({{x, 1.0}, {y, 1.0}}, 2.0, 5.0);
  const Solution sol = solve(lp);
  ASSERT_EQ(sol.status, SolveStatus::Optimal);
  EXPECT_NEAR(sol.objective, 2.0, 1e-9);
}

TEST(Simplex, FixedVariablesAreRespected) {
  LinearProgram lp;
  const auto x = lp.add_variable(2.5, 2.5, 1.0);  // fixed
  const auto y = lp.add_variable(0.0, kInfinity, 1.0);
  lp.add_row({{x, 1.0}, {y, 1.0}}, 4.0, kInfinity);
  const Solution sol = solve(lp);
  ASSERT_EQ(sol.status, SolveStatus::Optimal);
  EXPECT_NEAR(sol.x[x], 2.5, 1e-9);
  EXPECT_NEAR(sol.x[y], 1.5, 1e-9);
}

TEST(Simplex, NoRowsPureBoundProblem) {
  LinearProgram lp;
  const auto x = lp.add_variable(1.0, 4.0, 2.0);
  const auto y = lp.add_variable(-3.0, 5.0, -1.0);
  const Solution sol = solve(lp);
  ASSERT_EQ(sol.status, SolveStatus::Optimal);
  EXPECT_NEAR(sol.x[x], 1.0, 1e-12);
  EXPECT_NEAR(sol.x[y], 5.0, 1e-12);
  EXPECT_NEAR(sol.objective, -3.0, 1e-12);
}

TEST(Simplex, NoRowsUnboundedDetected) {
  LinearProgram lp;
  lp.add_variable(0.0, kInfinity, -1.0);
  EXPECT_EQ(solve(lp).status, SolveStatus::Unbounded);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Beale's classic cycling example (min form); Bland fallback must
  // terminate it.
  LinearProgram lp;
  const auto x1 = lp.add_variable(0.0, kInfinity, -0.75);
  const auto x2 = lp.add_variable(0.0, kInfinity, 150.0);
  const auto x3 = lp.add_variable(0.0, kInfinity, -0.02);
  const auto x4 = lp.add_variable(0.0, kInfinity, 6.0);
  lp.add_row({{x1, 0.25}, {x2, -60.0}, {x3, -0.04}, {x4, 9.0}}, -kInfinity,
             0.0);
  lp.add_row({{x1, 0.5}, {x2, -90.0}, {x3, -0.02}, {x4, 3.0}}, -kInfinity,
             0.0);
  lp.add_row({{x3, 1.0}}, -kInfinity, 1.0);
  const Solution sol = solve(lp);
  ASSERT_EQ(sol.status, SolveStatus::Optimal);
  EXPECT_NEAR(sol.objective, -0.05, 1e-8);
}

TEST(Simplex, BlandPricingGivesSameOptimum) {
  LinearProgram lp;
  const auto x = lp.add_variable(0.0, kInfinity, 3.0);
  const auto y = lp.add_variable(0.0, kInfinity, 5.0);
  lp.set_sense(Sense::Maximize);
  lp.add_row({{x, 1.0}}, -kInfinity, 4.0);
  lp.add_row({{y, 2.0}}, -kInfinity, 12.0);
  lp.add_row({{x, 3.0}, {y, 2.0}}, -kInfinity, 18.0);
  SimplexOptions opt;
  opt.pricing = Pricing::Bland;
  const Solution sol = solve(lp, opt);
  ASSERT_EQ(sol.status, SolveStatus::Optimal);
  EXPECT_NEAR(sol.objective, 36.0, 1e-8);
}

TEST(Simplex, DualsSatisfyStrongDualityOnStandardProblem) {
  // max c'x = min b'y; check b'y == c'x at optimum.
  LinearProgram lp;
  const auto x = lp.add_variable(0.0, kInfinity, 3.0);
  const auto y = lp.add_variable(0.0, kInfinity, 5.0);
  lp.set_sense(Sense::Maximize);
  lp.add_row({{x, 1.0}}, -kInfinity, 4.0);
  lp.add_row({{y, 2.0}}, -kInfinity, 12.0);
  lp.add_row({{x, 3.0}, {y, 2.0}}, -kInfinity, 18.0);
  const Solution sol = solve(lp);
  ASSERT_EQ(sol.status, SolveStatus::Optimal);
  // Internal duals are for the minimised (negated) problem over rows
  // a'x - s = 0; strong duality: sum_r hi_r * (-y_r) == -objective.
  double dual_obj = 0.0;
  const double rhs[3] = {4.0, 12.0, 18.0};
  for (int r = 0; r < 3; ++r) dual_obj += rhs[r] * sol.duals[r];
  EXPECT_NEAR(std::fabs(dual_obj), 36.0, 1e-6);
}

TEST(Simplex, TinyEqualityOnlySystem) {
  // x = 3 via equality row.
  LinearProgram lp;
  const auto x = lp.add_variable(0.0, kInfinity, 1.0);
  lp.add_row({{x, 1.0}}, 3.0, 3.0);
  const Solution sol = solve(lp);
  ASSERT_EQ(sol.status, SolveStatus::Optimal);
  EXPECT_NEAR(sol.x[x], 3.0, 1e-9);
}

TEST(Simplex, RedundantRowsDoNotBreakPhase1) {
  LinearProgram lp;
  const auto x = lp.add_variable(0.0, kInfinity, 1.0);
  const auto y = lp.add_variable(0.0, kInfinity, 1.0);
  lp.add_row({{x, 1.0}, {y, 1.0}}, 4.0, 4.0);
  lp.add_row({{x, 2.0}, {y, 2.0}}, 8.0, 8.0);  // same constraint doubled
  const Solution sol = solve(lp);
  ASSERT_EQ(sol.status, SolveStatus::Optimal);
  EXPECT_NEAR(sol.objective, 4.0, 1e-8);
}

TEST(SimplexDeadline, ExpiredOnEntryReturnsTimeLimitWithoutPivoting) {
  rrp::common::FakeClock clock(10.0);
  SimplexOptions opt;
  opt.deadline = rrp::common::Deadline::after(-1.0, clock);
  const Solution sol = solve(dense_lp(), opt);
  EXPECT_EQ(sol.status, SolveStatus::TimeLimit);
  EXPECT_EQ(sol.iterations, 0u);
}

TEST(SimplexDeadline, MidSolveExpiryReturnsTimeLimit) {
  const LinearProgram lp = dense_lp();
  // Reference: unlimited solve is optimal and takes several pivots.
  const Solution exact = solve(lp);
  ASSERT_EQ(exact.status, SolveStatus::Optimal);
  ASSERT_GT(exact.iterations, 2u);

  // One fake second per deadline poll; a 3.5s budget expires after a
  // deterministic handful of pivots, before optimality.
  rrp::common::FakeClock clock;
  clock.set_auto_advance(1.0);
  SimplexOptions opt;
  opt.deadline = rrp::common::Deadline::after(3.5, clock);
  const Solution sol = solve(lp, opt);
  EXPECT_EQ(sol.status, SolveStatus::TimeLimit);
  EXPECT_LT(sol.iterations, exact.iterations);
}

TEST(SimplexDeadline, GenerousDeadlineDoesNotChangeResult) {
  const LinearProgram lp = dense_lp();
  const Solution exact = solve(lp);
  SimplexOptions opt;
  opt.deadline = rrp::common::Deadline::after(3600.0);
  const Solution sol = solve(lp, opt);
  ASSERT_EQ(sol.status, SolveStatus::Optimal);
  EXPECT_DOUBLE_EQ(sol.objective, exact.objective);
  EXPECT_EQ(sol.iterations, exact.iterations);
}

TEST(SimplexDeadline, TimeLimitStatusString) {
  EXPECT_STREQ(to_string(SolveStatus::TimeLimit), "time-limit");
}

TEST(SimplexFaults, ArmedInjectorThrowsNumericalError) {
  rrp::testing::FaultInjector inj;
  inj.arm_lp_failures(1);
  SimplexOptions opt;
  opt.fault_injector = &inj;
  EXPECT_THROW(solve(dense_lp(), opt), rrp::NumericalError);
  // The failure is consumed: the next solve succeeds.
  const Solution sol = solve(dense_lp(), opt);
  EXPECT_EQ(sol.status, SolveStatus::Optimal);
  EXPECT_EQ(inj.armed_lp_failures(), 0u);
}

}  // namespace
