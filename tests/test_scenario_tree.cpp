#include "core/scenario_tree.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace {

using namespace rrp::core;

std::vector<PricePoint> support(std::initializer_list<std::pair<double, double>>
                                    price_probs) {
  std::vector<PricePoint> out;
  for (const auto& [price, prob] : price_probs)
    out.push_back(PricePoint{price, prob, false});
  return out;
}

TEST(ScenarioTree, SingleStageStructure) {
  std::vector<std::vector<PricePoint>> supports = {
      support({{0.05, 0.7}, {0.2, 0.3}})};
  const auto tree = ScenarioTree::build(supports);
  EXPECT_EQ(tree.num_stages(), 1u);
  EXPECT_EQ(tree.num_vertices(), 3u);  // root + 2
  EXPECT_EQ(tree.children(0).size(), 2u);
  EXPECT_EQ(tree.leaves().size(), 2u);
  EXPECT_NEAR(tree.stage_probability_mass(1), 1.0, 1e-12);
}

TEST(ScenarioTree, TwoStageCartesianGrowth) {
  std::vector<std::vector<PricePoint>> supports = {
      support({{0.05, 0.5}, {0.06, 0.5}}),
      support({{0.05, 0.3}, {0.06, 0.3}, {0.07, 0.4}})};
  const auto tree = ScenarioTree::build(supports);
  EXPECT_EQ(tree.stage_vertices(1).size(), 2u);
  EXPECT_EQ(tree.stage_vertices(2).size(), 6u);
  EXPECT_EQ(tree.leaves().size(), 6u);
  EXPECT_NEAR(tree.stage_probability_mass(2), 1.0, 1e-12);
}

TEST(ScenarioTree, PathProbabilitiesMultiply) {
  std::vector<std::vector<PricePoint>> supports = {
      support({{0.05, 0.4}, {0.06, 0.6}}),
      support({{0.05, 0.5}, {0.07, 0.5}})};
  const auto tree = ScenarioTree::build(supports);
  // First stage-2 vertex: child of first stage-1 vertex with prob 0.5.
  const std::size_t v = tree.stage_vertices(2)[0];
  EXPECT_NEAR(tree.vertex(v).path_prob, 0.4 * 0.5, 1e-12);
  EXPECT_NEAR(tree.vertex(v).branch_prob, 0.5, 1e-12);
}

TEST(ScenarioTree, ParentChildConsistency) {
  std::vector<std::vector<PricePoint>> supports = {
      support({{0.05, 1.0}}), support({{0.06, 0.5}, {0.07, 0.5}}),
      support({{0.05, 1.0}})};
  const auto tree = ScenarioTree::build(supports);
  for (std::size_t v = 1; v < tree.num_vertices(); ++v) {
    const auto& vert = tree.vertex(v);
    EXPECT_EQ(tree.vertex(vert.parent).stage + 1, vert.stage);
    bool found = false;
    for (std::size_t c : tree.children(vert.parent))
      if (c == v) found = true;
    EXPECT_TRUE(found);
  }
}

TEST(ScenarioTree, PathFromRootOrdering) {
  std::vector<std::vector<PricePoint>> supports = {
      support({{0.05, 1.0}}), support({{0.06, 1.0}}),
      support({{0.07, 1.0}})};
  const auto tree = ScenarioTree::build(supports);
  const std::size_t leaf = tree.leaves()[0];
  const auto path = tree.path_from_root(leaf);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(tree.vertex(path[0]).stage, 1u);
  EXPECT_EQ(tree.vertex(path[2]).stage, 3u);
  EXPECT_EQ(path[2], leaf);
  EXPECT_NEAR(tree.vertex(path[0]).price, 0.05, 1e-12);
  EXPECT_NEAR(tree.vertex(path[2]).price, 0.07, 1e-12);
}

TEST(ScenarioTree, BalancedDepthAllLeavesAtFinalStage) {
  std::vector<std::vector<PricePoint>> supports = {
      support({{0.05, 0.5}, {0.06, 0.5}}),
      support({{0.05, 0.5}, {0.06, 0.5}}),
      support({{0.05, 1.0}})};
  const auto tree = ScenarioTree::build(supports);
  for (std::size_t leaf : tree.leaves())
    EXPECT_EQ(tree.vertex(leaf).stage, 3u);
}

TEST(ScenarioTree, OutOfBidFlagPropagates) {
  std::vector<PricePoint> stage1 = {{0.05, 0.8, false}, {0.2, 0.2, true}};
  std::vector<std::vector<PricePoint>> supports = {stage1};
  const auto tree = ScenarioTree::build(supports);
  const auto& s1 = tree.stage_vertices(1);
  EXPECT_FALSE(tree.vertex(s1[0]).out_of_bid);
  EXPECT_TRUE(tree.vertex(s1[1]).out_of_bid);
}

TEST(ScenarioTree, ValidationRejectsBadSupports) {
  std::vector<std::vector<PricePoint>> empty_stage = {{}};
  EXPECT_THROW(ScenarioTree::build(empty_stage), rrp::ContractViolation);
  std::vector<std::vector<PricePoint>> bad_mass = {
      support({{0.05, 0.5}, {0.06, 0.4}})};
  EXPECT_THROW(ScenarioTree::build(bad_mass), rrp::ContractViolation);
  std::vector<std::vector<PricePoint>> zero_price = {
      support({{0.0, 1.0}})};
  EXPECT_THROW(ScenarioTree::build(zero_price), rrp::ContractViolation);
}

// --- In-place repair (ISSUE 10) ----------------------------------------
//
// A successful repair must leave the tree EXACTLY equal to a fresh
// build() on the new supports — same vertices, same probabilities to
// the last bit — because the rolling-horizon incremental mode feeds
// repaired trees to the same solver that consumed built ones.

void expect_equals_fresh_build(
    const ScenarioTree& repaired,
    const std::vector<std::vector<PricePoint>>& supports) {
  const auto fresh = ScenarioTree::build(supports);
  ASSERT_EQ(repaired.num_vertices(), fresh.num_vertices());
  ASSERT_EQ(repaired.num_stages(), fresh.num_stages());
  for (std::size_t v = 0; v < fresh.num_vertices(); ++v) {
    SCOPED_TRACE(v);
    EXPECT_EQ(repaired.vertex(v).parent, fresh.vertex(v).parent);
    EXPECT_EQ(repaired.vertex(v).stage, fresh.vertex(v).stage);
    EXPECT_EQ(repaired.vertex(v).price, fresh.vertex(v).price);
    EXPECT_EQ(repaired.vertex(v).out_of_bid, fresh.vertex(v).out_of_bid);
    EXPECT_EQ(repaired.vertex(v).branch_prob, fresh.vertex(v).branch_prob);
    EXPECT_EQ(repaired.vertex(v).path_prob, fresh.vertex(v).path_prob);
    ASSERT_EQ(repaired.children(v).size(), fresh.children(v).size());
    for (std::size_t c = 0; c < fresh.children(v).size(); ++c)
      EXPECT_EQ(repaired.children(v)[c], fresh.children(v)[c]);
  }
  repaired.validate();
}

TEST(ScenarioTreeRepair, ReweightSameShapeMatchesBuild) {
  std::vector<std::vector<PricePoint>> before = {
      support({{0.05, 0.4}, {0.06, 0.6}}),
      support({{0.05, 0.3}, {0.07, 0.7}})};
  auto tree = ScenarioTree::build(before);
  std::vector<std::vector<PricePoint>> after = {
      support({{0.04, 0.5}, {0.08, 0.5}}),
      support({{0.06, 0.2}, {0.09, 0.8}})};
  EXPECT_TRUE(tree.repair(after));
  expect_equals_fresh_build(tree, after);
}

TEST(ScenarioTreeRepair, ExtendAddsStages) {
  std::vector<std::vector<PricePoint>> before = {
      support({{0.05, 1.0}}), support({{0.06, 0.5}, {0.07, 0.5}})};
  auto tree = ScenarioTree::build(before);
  std::vector<std::vector<PricePoint>> after = {
      support({{0.05, 1.0}}), support({{0.06, 0.4}, {0.07, 0.6}}),
      support({{0.05, 0.3}, {0.06, 0.3}, {0.08, 0.4}})};
  EXPECT_TRUE(tree.repair(after));
  expect_equals_fresh_build(tree, after);
  EXPECT_EQ(tree.num_stages(), 3u);
}

TEST(ScenarioTreeRepair, RetireDropsTrailingStages) {
  // The rolling horizon shrinks near the end of the evaluation window:
  // w = min(lookahead, T - t) retires trailing stages every replan.
  std::vector<std::vector<PricePoint>> before = {
      support({{0.05, 0.5}, {0.06, 0.5}}),
      support({{0.05, 0.5}, {0.07, 0.5}}),
      support({{0.06, 1.0}})};
  auto tree = ScenarioTree::build(before);
  std::vector<std::vector<PricePoint>> after = {
      support({{0.04, 0.6}, {0.09, 0.4}})};
  EXPECT_TRUE(tree.repair(after));
  expect_equals_fresh_build(tree, after);
  EXPECT_EQ(tree.num_stages(), 1u);
}

TEST(ScenarioTreeRepair, RepeatedRepairsStayIdentical) {
  // Replan after replan, the same tree object is repaired over and
  // over; drift would compound, so every step must equal a fresh build.
  std::vector<std::vector<PricePoint>> initial = {
      support({{0.05, 0.5}, {0.06, 0.5}}),
      support({{0.07, 0.5}, {0.09, 0.5}})};
  auto tree = ScenarioTree::build(initial);
  for (int step = 0; step < 6; ++step) {
    const double shift = 0.01 * step;
    std::vector<std::vector<PricePoint>> supports = {
        support({{0.05 + shift, 0.4}, {0.06 + shift, 0.6}}),
        support({{0.05 + shift, 0.7}, {0.08 + shift, 0.3}})};
    ASSERT_TRUE(tree.repair(supports));
    expect_equals_fresh_build(tree, supports);
  }
}

TEST(ScenarioTreeRepair, WidthMismatchRefusesAndLeavesTreeIntact) {
  std::vector<std::vector<PricePoint>> before = {
      support({{0.05, 0.4}, {0.06, 0.6}})};
  auto tree = ScenarioTree::build(before);
  std::vector<std::vector<PricePoint>> wider = {
      support({{0.05, 0.3}, {0.06, 0.3}, {0.07, 0.4}})};
  EXPECT_FALSE(tree.repair(wider));
  // Untouched: still the original tree.
  expect_equals_fresh_build(tree, before);
}

TEST(ScenarioTreeRepair, ConditionalTreeRefusesRepair) {
  // Conditional trees have per-parent supports (widths can differ
  // across a stage), which repair's uniform-support contract cannot
  // represent; it must decline rather than guess.
  const std::vector<PricePoint> initial = {{0.05, 0.6, false},
                                           {0.08, 0.4, false}};
  auto tree = ScenarioTree::build_conditional(
      initial, 2,
      [](const ScenarioVertex& parent, std::size_t) {
        // Width depends on the parent price: 1 or 2 children.
        if (parent.price > 0.06)
          return std::vector<PricePoint>{{parent.price, 1.0, false}};
        return std::vector<PricePoint>{{parent.price, 0.5, false},
                                       {parent.price + 0.01, 0.5, false}};
      });
  std::vector<std::vector<PricePoint>> supports = {
      support({{0.05, 0.6}, {0.08, 0.4}}), support({{0.05, 1.0}})};
  EXPECT_FALSE(tree.repair(supports));
}

TEST(ScenarioTreeRepair, RejectsInvalidSupportsLikeBuild) {
  std::vector<std::vector<PricePoint>> initial = {support({{0.05, 1.0}})};
  auto tree = ScenarioTree::build(initial);
  std::vector<std::vector<PricePoint>> bad_mass = {
      support({{0.05, 0.5}, {0.06, 0.4}})};
  EXPECT_THROW(tree.repair(bad_mass), rrp::ContractViolation);
  std::vector<std::vector<PricePoint>> empty_stage = {{}};
  EXPECT_THROW(tree.repair(empty_stage), rrp::ContractViolation);
}

}  // namespace
