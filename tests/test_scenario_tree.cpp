#include "core/scenario_tree.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace {

using namespace rrp::core;

std::vector<PricePoint> support(std::initializer_list<std::pair<double, double>>
                                    price_probs) {
  std::vector<PricePoint> out;
  for (const auto& [price, prob] : price_probs)
    out.push_back(PricePoint{price, prob, false});
  return out;
}

TEST(ScenarioTree, SingleStageStructure) {
  std::vector<std::vector<PricePoint>> supports = {
      support({{0.05, 0.7}, {0.2, 0.3}})};
  const auto tree = ScenarioTree::build(supports);
  EXPECT_EQ(tree.num_stages(), 1u);
  EXPECT_EQ(tree.num_vertices(), 3u);  // root + 2
  EXPECT_EQ(tree.children(0).size(), 2u);
  EXPECT_EQ(tree.leaves().size(), 2u);
  EXPECT_NEAR(tree.stage_probability_mass(1), 1.0, 1e-12);
}

TEST(ScenarioTree, TwoStageCartesianGrowth) {
  std::vector<std::vector<PricePoint>> supports = {
      support({{0.05, 0.5}, {0.06, 0.5}}),
      support({{0.05, 0.3}, {0.06, 0.3}, {0.07, 0.4}})};
  const auto tree = ScenarioTree::build(supports);
  EXPECT_EQ(tree.stage_vertices(1).size(), 2u);
  EXPECT_EQ(tree.stage_vertices(2).size(), 6u);
  EXPECT_EQ(tree.leaves().size(), 6u);
  EXPECT_NEAR(tree.stage_probability_mass(2), 1.0, 1e-12);
}

TEST(ScenarioTree, PathProbabilitiesMultiply) {
  std::vector<std::vector<PricePoint>> supports = {
      support({{0.05, 0.4}, {0.06, 0.6}}),
      support({{0.05, 0.5}, {0.07, 0.5}})};
  const auto tree = ScenarioTree::build(supports);
  // First stage-2 vertex: child of first stage-1 vertex with prob 0.5.
  const std::size_t v = tree.stage_vertices(2)[0];
  EXPECT_NEAR(tree.vertex(v).path_prob, 0.4 * 0.5, 1e-12);
  EXPECT_NEAR(tree.vertex(v).branch_prob, 0.5, 1e-12);
}

TEST(ScenarioTree, ParentChildConsistency) {
  std::vector<std::vector<PricePoint>> supports = {
      support({{0.05, 1.0}}), support({{0.06, 0.5}, {0.07, 0.5}}),
      support({{0.05, 1.0}})};
  const auto tree = ScenarioTree::build(supports);
  for (std::size_t v = 1; v < tree.num_vertices(); ++v) {
    const auto& vert = tree.vertex(v);
    EXPECT_EQ(tree.vertex(vert.parent).stage + 1, vert.stage);
    bool found = false;
    for (std::size_t c : tree.children(vert.parent))
      if (c == v) found = true;
    EXPECT_TRUE(found);
  }
}

TEST(ScenarioTree, PathFromRootOrdering) {
  std::vector<std::vector<PricePoint>> supports = {
      support({{0.05, 1.0}}), support({{0.06, 1.0}}),
      support({{0.07, 1.0}})};
  const auto tree = ScenarioTree::build(supports);
  const std::size_t leaf = tree.leaves()[0];
  const auto path = tree.path_from_root(leaf);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(tree.vertex(path[0]).stage, 1u);
  EXPECT_EQ(tree.vertex(path[2]).stage, 3u);
  EXPECT_EQ(path[2], leaf);
  EXPECT_NEAR(tree.vertex(path[0]).price, 0.05, 1e-12);
  EXPECT_NEAR(tree.vertex(path[2]).price, 0.07, 1e-12);
}

TEST(ScenarioTree, BalancedDepthAllLeavesAtFinalStage) {
  std::vector<std::vector<PricePoint>> supports = {
      support({{0.05, 0.5}, {0.06, 0.5}}),
      support({{0.05, 0.5}, {0.06, 0.5}}),
      support({{0.05, 1.0}})};
  const auto tree = ScenarioTree::build(supports);
  for (std::size_t leaf : tree.leaves())
    EXPECT_EQ(tree.vertex(leaf).stage, 3u);
}

TEST(ScenarioTree, OutOfBidFlagPropagates) {
  std::vector<PricePoint> stage1 = {{0.05, 0.8, false}, {0.2, 0.2, true}};
  std::vector<std::vector<PricePoint>> supports = {stage1};
  const auto tree = ScenarioTree::build(supports);
  const auto& s1 = tree.stage_vertices(1);
  EXPECT_FALSE(tree.vertex(s1[0]).out_of_bid);
  EXPECT_TRUE(tree.vertex(s1[1]).out_of_bid);
}

TEST(ScenarioTree, ValidationRejectsBadSupports) {
  std::vector<std::vector<PricePoint>> empty_stage = {{}};
  EXPECT_THROW(ScenarioTree::build(empty_stage), rrp::ContractViolation);
  std::vector<std::vector<PricePoint>> bad_mass = {
      support({{0.05, 0.5}, {0.06, 0.4}})};
  EXPECT_THROW(ScenarioTree::build(bad_mass), rrp::ContractViolation);
  std::vector<std::vector<PricePoint>> zero_price = {
      support({{0.0, 1.0}})};
  EXPECT_THROW(ScenarioTree::build(zero_price), rrp::ContractViolation);
}

}  // namespace
