// End-to-end integration: the full pipeline a user of the library
// walks — generate a market, regularise it, summarise the price
// distribution, fit a predictor, plan deterministically and
// stochastically, and execute policies in the rolling simulator —
// asserting the cross-module invariants the paper's evaluation relies
// on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/demand.hpp"
#include "core/rolling_horizon.hpp"
#include "core/srrp_dp.hpp"
#include "core/wagner_whitin.hpp"
#include "market/trace_generator.hpp"
#include "timeseries/arima.hpp"
#include "timeseries/diagnostics.hpp"

namespace {

using namespace rrp;

class EndToEnd : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    trace_ = new market::SpotTrace(
        market::generate_trace(market::VmClass::M1Large, 404));
  }
  static void TearDownTestSuite() {
    delete trace_;
    trace_ = nullptr;
  }
  static market::SpotTrace* trace_;
};

market::SpotTrace* EndToEnd::trace_ = nullptr;

TEST_F(EndToEnd, MarketToTimeSeriesPipeline) {
  const auto hourly = trace_->hourly(0, 24 * 61);
  ASSERT_EQ(hourly.size(), 24u * 61u);
  // The regularised series passes the paper's preconditions for SARIMA:
  // stationary, non-normal, weakly autocorrelated.
  EXPECT_TRUE(ts::is_level_stationary(hourly));
  const auto sw = ts::shapiro_wilk(
      std::span(hourly).subspan(0, std::min<std::size_t>(hourly.size(),
                                                         5000)));
  EXPECT_LT(sw.p_value, 0.05);
  // A SARIMA fit on it forecasts finite positive prices.
  ts::SarimaOrder order;
  order.p = 2;
  order.q = 1;
  order.P = 1;
  order.s = 24;
  ts::SarimaFitOptions fit;
  fit.optimizer.max_evaluations = 1500;
  const auto model = ts::fit_sarima(hourly, order, fit);
  const auto f = ts::forecast(model, hourly, 24);
  for (double v : f) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GT(v, 0.0);
  }
}

TEST_F(EndToEnd, DistributionToPlannersPipeline) {
  const auto hourly = trace_->hourly(0, 24 * 60);
  const auto dist = core::EmpiricalPriceDistribution::from_history(hourly,
                                                                   12);
  const double lambda = market::info(trace_->vm_class()).on_demand_hourly;
  const double bid = dist.mean();

  Rng rng(11);
  const auto demand = core::generate_demand(6, core::DemandConfig{}, rng);

  // SRRP over the bid-truncated tree; DRRP on the expected price.
  std::vector<double> bids(6, bid);
  std::vector<std::size_t> widths = {4, 3, 2, 1, 1, 1};
  core::SrrpInstance srrp;
  srrp.vm = trace_->vm_class();
  srrp.demand = demand;
  srrp.tree = core::ScenarioTree::build(
      core::make_stage_supports(dist, bids, lambda, widths));
  const auto policy = core::solve_srrp_tree_dp(srrp);

  core::DrrpInstance drrp;
  drrp.vm = trace_->vm_class();
  drrp.demand = demand;
  // Expected compute price under the truncated distribution.
  const auto pts = dist.truncate_at_bid(bid, lambda);
  drrp.compute_price.assign(6, core::mean_of(pts));
  const auto plan = core::solve_drrp_wagner_whitin(drrp);

  // The stochastic plan can exploit cheap states: its expected cost is
  // no worse than the deterministic plan priced at the expectation
  // (Jensen direction on this recourse structure).
  EXPECT_LE(policy.expected_cost, plan.cost.total() + 1e-6);
  EXPECT_GT(policy.expected_cost, 0.0);
}

TEST_F(EndToEnd, SimulatorConsistencyAcrossBackends) {
  // The DP and MILP backends must produce identical realised costs.
  const auto hourly = trace_->hourly();
  core::SimulationInputs in;
  in.vm = trace_->vm_class();
  in.history.assign(hourly.begin(), hourly.begin() + 24 * 60);
  in.actual_spot.assign(hourly.begin() + 24 * 60,
                        hourly.begin() + 24 * 60 + 8);
  Rng rng(12);
  in.demand = core::generate_demand(8, core::DemandConfig{}, rng);

  for (auto base : {core::det_exp_mean_policy(),
                    core::sto_exp_mean_policy()}) {
    core::PolicyConfig dp = base;
    dp.backend = core::PlannerBackend::DynamicProgramming;
    core::PolicyConfig milp = base;
    milp.backend = core::PlannerBackend::Milp;
    // Narrow trees keep the MILP B&B tractable; a 1e-6 gap is far
    // inside the comparison tolerance below.
    milp.stage_widths = {2, 2, 1, 1, 1, 1};
    dp.stage_widths = milp.stage_widths;
    milp.solver.relative_gap = 1e-6;
    const auto a = core::simulate_policy(in, dp);
    const auto b = core::simulate_policy(in, milp);
    EXPECT_NEAR(a.total_cost(), b.total_cost(),
                1e-4 * (1.0 + a.total_cost()))
        << base.name;
    EXPECT_EQ(a.rentals, b.rentals) << base.name;
  }
}

TEST_F(EndToEnd, FullEvaluationOrdering) {
  // The paper's headline ordering on a fresh window: ideal <= every
  // policy, and planned policies beat no-plan.
  const auto hourly = trace_->hourly();
  core::SimulationInputs in;
  in.vm = trace_->vm_class();
  in.history.assign(hourly.begin(), hourly.begin() + 24 * 55);
  in.actual_spot.assign(hourly.begin() + 24 * 55,
                        hourly.begin() + 24 * 55 + 48);
  Rng rng(13);
  in.demand = core::generate_demand(48, core::DemandConfig{}, rng);

  const double ideal = core::ideal_case_cost(in);
  const double no_plan =
      core::simulate_policy(in, core::no_plan_policy()).total_cost();
  const double det =
      core::simulate_policy(in, core::det_exp_mean_policy()).total_cost();
  const double sto =
      core::simulate_policy(in, core::sto_exp_mean_policy()).total_cost();
  EXPECT_GE(det, ideal - 1e-6);
  EXPECT_GE(sto, ideal - 1e-6);
  EXPECT_LT(det, no_plan);
  EXPECT_LT(sto, no_plan);
}

}  // namespace
