#include "core/policies.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace {

using namespace rrp::core;

TEST(Policies, Figure12aSetMatchesPaperOrder) {
  const auto policies = figure12a_policies();
  ASSERT_EQ(policies.size(), 5u);
  EXPECT_EQ(policies[0].name, "on-demand");
  EXPECT_EQ(policies[1].name, "det-predict");
  EXPECT_EQ(policies[2].name, "sto-predict");
  EXPECT_EQ(policies[3].name, "det-exp-mean");
  EXPECT_EQ(policies[4].name, "sto-exp-mean");
}

TEST(Policies, PaperLookaheads) {
  // Section V-A: 24-hour horizon for DRRP, 6 hours for SRRP.
  EXPECT_EQ(det_predict_policy().lookahead, 24u);
  EXPECT_EQ(det_exp_mean_policy().lookahead, 24u);
  EXPECT_EQ(sto_predict_policy().lookahead, 6u);
  EXPECT_EQ(sto_exp_mean_policy().lookahead, 6u);
}

TEST(Policies, PlannerKinds) {
  EXPECT_EQ(no_plan_policy().planner, PlannerKind::NoPlan);
  EXPECT_EQ(on_demand_policy().planner, PlannerKind::Drrp);
  EXPECT_EQ(sto_predict_policy().planner, PlannerKind::Srrp);
  EXPECT_EQ(oracle_policy().bids, BidStrategy::Oracle);
}

TEST(Policies, SrrpTreesAreBushyEarlyLeanLate) {
  const auto cfg = sto_predict_policy();
  for (std::size_t i = 1; i < cfg.stage_widths.size(); ++i)
    EXPECT_LE(cfg.stage_widths[i], cfg.stage_widths[i - 1]);
  EXPECT_GE(cfg.stage_widths.front(), 2u);
}

TEST(Policies, ValidationCatchesBadConfigs) {
  PolicyConfig cfg = sto_predict_policy();
  cfg.stage_widths = {1, 1};  // stage 1 too narrow for an OOB state
  EXPECT_THROW(cfg.validate(), rrp::ContractViolation);
  cfg = det_predict_policy();
  cfg.bids = BidStrategy::FixedValue;
  cfg.fixed_bid = 0.0;
  EXPECT_THROW(cfg.validate(), rrp::ContractViolation);
  cfg = det_predict_policy();
  cfg.lookahead = 0;
  EXPECT_THROW(cfg.validate(), rrp::ContractViolation);
}

}  // namespace
